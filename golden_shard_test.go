// Golden equivalence for sharding: a single-shard partitioned table is the
// degenerate configuration and must be *byte-identical* to the unsharded
// path — same sample draw, same sorted arena, same compressed size — for
// every pinned golden case the engine can serve. Shard 0 keeps the request
// seed and a one-element merge passes the estimate through verbatim, so
// any drift here means the scatter path changed estimator semantics, not
// just performance.
package samplecf_test

import (
	"context"
	"testing"

	"samplecf"
	"samplecf/internal/db"
	"samplecf/internal/value"
)

// goldenShardedTable loads the golden rows into a db-backed table
// partitioned into the given number of shards (hash on region).
func goldenShardedTable(t *testing.T, d *db.Database, name string, shards int) *db.ShardedTable {
	t.Helper()
	tab := goldenTable(t)
	st, err := d.CreateShardedTable(name, tab.Schema(), db.ShardSpec{
		Shards: shards, Column: "region", By: db.ShardByHash,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = tab.Scan(func(_ int64, row value.Row) error {
		_, err := st.Insert(row)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGoldenSingleShardMatchesUnsharded pins the N=1 sharded configuration
// to the golden table: every engine-eligible case (fixed-r, WR) must
// reproduce the exact pinned {comp, uncomp, r, d'} quadruple through the
// scatter path. FreshSample keeps the draw a pure function of (rows, r,
// seed), independent of the maintained backing sample's instance seed.
func TestGoldenSingleShardMatchesUnsharded(t *testing.T) {
	d := db.New(0)
	st := goldenShardedTable(t, d, "golden1", 1)
	eng := samplecf.NewEngine(samplecf.EngineConfig{CacheEntries: -1})
	defer eng.Close()

	cases := goldenMatrix()
	if len(cases) != len(goldenWant) {
		t.Fatalf("golden table has %d rows, matrix has %d cases", len(goldenWant), len(cases))
	}
	ran := 0
	for i, c := range cases {
		if c.wor || c.rows == 0 {
			continue // engine draws WR with SampleRows
		}
		wantComp, wantUncomp := goldenWant[i][0], goldenWant[i][1]
		wantR, wantD := goldenWant[i][2], goldenWant[i][3]
		t.Run(c.name(), func(t *testing.T) {
			codec, err := samplecf.LookupCodec(c.codec)
			if err != nil {
				t.Fatal(err)
			}
			res := eng.Estimate(context.Background(), samplecf.EngineRequest{
				Table: st, KeyColumns: c.cols, Codec: codec,
				SampleRows: c.rows, Seed: c.seed, FreshSample: true,
			})
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			est := res.Estimate
			if est.Result.CompressedBytes != wantComp ||
				est.Result.UncompressedBytes != wantUncomp ||
				est.SampleRows != wantR ||
				est.SampleDistinct != wantD {
				t.Errorf("single-shard estimate drifted: got {comp=%d, uncomp=%d, r=%d, d'=%d}, want {%d, %d, %d, %d}",
					est.Result.CompressedBytes, est.Result.UncompressedBytes,
					est.SampleRows, est.SampleDistinct,
					wantComp, wantUncomp, wantR, wantD)
			}
			if want := float64(wantComp) / float64(wantUncomp); est.CF != want {
				t.Errorf("CF = %v, want %v", est.CF, want)
			}
		})
		ran++
	}
	if ran == 0 {
		t.Fatal("no golden cases were engine-eligible")
	}
}

// TestGoldenShardedTrueCF pins the shard-parallel ground-truth scan to the
// sequential answer: ExactCF over a 4-shard table must equal ExactCF over
// the same rows unsharded, byte for byte, for a codec whose output depends
// on row order (the shard scan preserves global scan order).
func TestGoldenShardedTrueCF(t *testing.T) {
	d := db.New(0)
	st := goldenShardedTable(t, d, "golden4", 4)
	tab := goldenTable(t)
	for _, codecName := range []string{"nullsuppression", "rle", "pagedict+ns"} {
		codec, err := samplecf.LookupCodec(codecName)
		if err != nil {
			t.Fatal(err)
		}
		cols := []string{"region", "product"}
		seq, err := samplecf.TrueCF(tab, cols, codec, 0)
		if err != nil {
			t.Fatal(err)
		}
		par, err := samplecf.TrueCF(st, cols, codec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if seq.CompressedBytes != par.CompressedBytes ||
			seq.UncompressedBytes != par.UncompressedBytes {
			t.Errorf("%s: sharded TrueCF {comp=%d uncomp=%d} != sequential {comp=%d uncomp=%d}",
				codecName, par.CompressedBytes, par.UncompressedBytes,
				seq.CompressedBytes, seq.UncompressedBytes)
		}
	}
}
