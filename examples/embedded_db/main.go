// Embedded engine on the unified data plane: create a live table, index
// it, and ask the estimation engine what compression would save — while
// the data mutates underneath. Live tables are catalog tables (version
// epochs, maintained samples), so the engine caches estimates per epoch,
// serves repeats in O(1), and recomputes automatically after mutations.
//
//	go run ./examples/embedded_db
package main

import (
	"context"
	"fmt"
	"log"

	"samplecf"
)

func main() {
	dbase := samplecf.NewDatabase(0)

	schema, err := samplecf.NewSchema(
		samplecf.Column{Name: "city", Type: samplecf.Char(24)},
		samplecf.Column{Name: "pop", Type: samplecf.Int32()},
	)
	if err != nil {
		log.Fatal(err)
	}
	cities, err := dbase.CreateTable("cities", schema)
	if err != nil {
		log.Fatal(err)
	}

	// Load: 60k rows over 300 city names; names are short, the column wide.
	names := make([]string, 300)
	for i := range names {
		names[i] = fmt.Sprintf("city-%03d", i)
	}
	for i := 0; i < 60_000; i++ {
		_, err := cities.Insert(samplecf.Row{
			samplecf.String(names[i%len(names)]),
			samplecf.Int(int32(i)),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	rowCodec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		log.Fatal(err)
	}
	ix, err := cities.CreateIndex("ix_city", []string{"city"}, rowCodec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table: %d rows (epoch %d), index %q: %d entries\n\n",
		cities.NumRows(), cities.Epoch(), ix.Name(), ix.NumEntries())

	// The engine serves what-if questions against the live table: the
	// first call draws from the table's maintained sample, the repeat is
	// a pure cache hit keyed on (table instance, epoch).
	eng := samplecf.NewEngine(samplecf.EngineConfig{})
	defer eng.Close()
	ctx := context.Background()
	req := samplecf.EngineRequest{
		Table: cities, KeyColumns: []string{"city"}, Codec: rowCodec,
		Fraction: 0.02, Seed: 1,
	}

	est := eng.Estimate(ctx, req)
	if est.Err != nil {
		log.Fatal(est.Err)
	}
	exact, err := ix.ExactCF(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ROW compression on ix_city:\n")
	fmt.Printf("  estimated CF %.4f (from %d sampled rows)\n", est.Estimate.CF, est.Estimate.SampleRows)
	fmt.Printf("  exact     CF %.4f (from all %d entries)\n", exact.CF(), exact.Rows)

	repeat := eng.Estimate(ctx, req)
	fmt.Printf("  repeat: cache hit = %v (no sampling, no compression)\n\n", repeat.CacheHit)

	// Mutate heavily: delete all rows for half the cities. Every delete
	// bumps the epoch, so the cached estimate is stale the moment the
	// first one lands.
	deleted := 0
	for v := 0; v < len(names)/2; v++ {
		rids, err := ix.Lookup(samplecf.Row{samplecf.String(names[v])})
		if err != nil {
			log.Fatal(err)
		}
		for _, rid := range rids {
			if err := cities.Delete(rid); err != nil {
				log.Fatal(err)
			}
			deleted++
		}
	}
	fmt.Printf("deleted %d rows (%d cities); index now %d entries, epoch %d\n",
		deleted, len(names)/2, ix.NumEntries(), cities.Epoch())

	est2 := eng.Estimate(ctx, req)
	if est2.Err != nil {
		log.Fatal(est2.Err)
	}
	exact2, err := ix.ExactCF(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-mutation estimate %.4f (cache hit = %v) vs exact %.4f — the engine saw the new epoch\n\n",
		est2.Estimate.CF, est2.CacheHit, exact2.CF())

	st := eng.Stats()
	fmt.Printf("engine: %d cache hits, %d misses, %d maintained-sample draws, %d fresh draws\n",
		st.Hits, st.Misses, st.MaintainedHits, st.SamplesDrawn)
}
