// Embedded engine: create a table, index it, and ask the engine what
// compression would save — on live, mutating data. The estimate runs
// against the current table contents, exactly like a what-if call inside a
// commercial engine.
//
//	go run ./examples/embedded_db
package main

import (
	"fmt"
	"log"

	"samplecf"
)

func main() {
	eng := samplecf.NewDatabase(0)

	schema, err := samplecf.NewSchema(
		samplecf.Column{Name: "city", Type: samplecf.Char(24)},
		samplecf.Column{Name: "pop", Type: samplecf.Int32()},
	)
	if err != nil {
		log.Fatal(err)
	}
	cities, err := eng.CreateTable("cities", schema)
	if err != nil {
		log.Fatal(err)
	}

	// Load: 60k rows over 300 city names; names are short, the column wide.
	names := make([]string, 300)
	for i := range names {
		names[i] = fmt.Sprintf("city-%03d", i)
	}
	for i := 0; i < 60_000; i++ {
		_, err := cities.Insert(samplecf.Row{
			samplecf.String(names[i%len(names)]),
			samplecf.Int(int32(i)),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	rowCodec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		log.Fatal(err)
	}
	ix, err := cities.CreateIndex("ix_city", []string{"city"}, rowCodec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table: %d rows, index %q: %d entries\n\n",
		cities.NumRows(), ix.Name(), ix.NumEntries())

	// What-if: estimated from a 2% sample vs the exact answer from
	// compressing the live index.
	est, err := ix.EstimateCF(nil, 0.02, 1)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := ix.ExactCF(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ROW compression on ix_city:\n")
	fmt.Printf("  estimated CF %.4f (from %d sampled rows)\n", est.CF, est.SampleRows)
	fmt.Printf("  exact     CF %.4f (from all %d entries)\n\n", exact.CF(), exact.Rows)

	// Mutate heavily: delete all rows for half the cities, then re-ask.
	deleted := 0
	for v := 0; v < len(names)/2; v++ {
		rids, err := ix.Lookup(samplecf.Row{samplecf.String(names[v])})
		if err != nil {
			log.Fatal(err)
		}
		for _, rid := range rids {
			if err := cities.Delete(rid); err != nil {
				log.Fatal(err)
			}
			deleted++
		}
	}
	fmt.Printf("deleted %d rows (%d cities); index now %d entries\n",
		deleted, len(names)/2, ix.NumEntries())

	est2, err := ix.EstimateCF(nil, 0.02, 2)
	if err != nil {
		log.Fatal(err)
	}
	exact2, err := ix.ExactCF(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-mutation estimate %.4f vs exact %.4f — the estimator sees the live table\n",
		est2.CF, exact2.CF())
}
