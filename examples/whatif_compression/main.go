// What-if compression advisor: for each index of a table, estimate the
// savings under every available codec — the workflow SQL Server exposes as
// sp_estimate_data_compression_savings, which the paper identifies as a
// deployed user of sampling-based CF estimation.
//
// All (index, codec) pairs go through the estimation engine as ONE batch:
// the engine draws a single 2% sample of the table and reuses it for every
// cell of the matrix, and each index's sorted build is shared by all of
// its codecs. The footer reports how much work the sharing saved.
//
//	go run ./examples/whatif_compression
package main

import (
	"context"
	"fmt"
	"log"

	"samplecf"
)

func main() {
	const n = 150_000

	sku, err := samplecf.NewStringColumn(
		samplecf.Char(16), samplecf.Uniform(int64(n)), samplecf.ConstantLen(12), 21)
	if err != nil {
		log.Fatal(err)
	}
	category, err := samplecf.NewStringColumn(
		samplecf.Char(30), samplecf.HotSet(200, 0.1, 0.9), samplecf.UniformLen(5, 20), 22)
	if err != nil {
		log.Fatal(err)
	}
	stock, err := samplecf.NewIntColumn(samplecf.Int32(), samplecf.Uniform(500), 0)
	if err != nil {
		log.Fatal(err)
	}
	items, err := samplecf.Generate(samplecf.TableSpec{
		Name: "items", N: n, Seed: 23,
		Cols: []samplecf.TableColumn{
			{Name: "sku", Gen: sku},
			{Name: "category", Gen: category},
			{Name: "stock", Gen: stock},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	indexes := [][]string{
		{"sku"},
		{"category"},
		{"category", "stock"},
		{"stock"},
	}
	codecs := []string{"nullsuppression", "page", "pagedict+ns", "globaldict"}

	// One engine request per matrix cell; one batch for the whole matrix.
	eng := samplecf.NewEngine(samplecf.EngineConfig{})
	defer eng.Close()
	var reqs []samplecf.EngineRequest
	for _, keyCols := range indexes {
		for _, codecName := range codecs {
			codec, err := samplecf.LookupCodec(codecName)
			if err != nil {
				log.Fatal(err)
			}
			reqs = append(reqs, samplecf.EngineRequest{
				Table:      items,
				KeyColumns: keyCols,
				Codec:      codec,
				Fraction:   0.02,
				Seed:       9,
			})
		}
	}
	results := eng.WhatIf(context.Background(), reqs)

	fmt.Printf("what-if compression savings for table %q (%d rows), f = 2%%\n\n", "items", n)
	fmt.Printf("%-22s", "index \\ codec")
	for _, c := range codecs {
		fmt.Printf("  %-16s", c)
	}
	fmt.Println()
	for i, keyCols := range indexes {
		fmt.Printf("%-22s", fmt.Sprintf("%v", keyCols))
		for j := range codecs {
			res := results[i*len(codecs)+j]
			if res.Err != nil {
				log.Fatal(res.Err)
			}
			fmt.Printf("  CF %.3f (%4.1f%%)", res.Estimate.CF, (1-res.Estimate.CF)*100)
		}
		fmt.Println()
	}
	st := eng.Stats()
	fmt.Printf("\n(percentages are estimated space savings; pick the best codec per index)\n")
	fmt.Printf("engine: %d candidates sized from %d sample draw(s) and %d index build(s)\n",
		st.Evaluated, st.SamplesDrawn, st.IndexesPrepared)
}
