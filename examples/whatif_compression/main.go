// What-if compression advisor: for each index of a table, estimate the
// savings under every available codec — the workflow SQL Server exposes as
// sp_estimate_data_compression_savings, which the paper identifies as a
// deployed user of sampling-based CF estimation.
//
//	go run ./examples/whatif_compression
package main

import (
	"fmt"
	"log"

	"samplecf"
)

func main() {
	const n = 150_000

	sku, err := samplecf.NewStringColumn(
		samplecf.Char(16), samplecf.Uniform(int64(n)), samplecf.ConstantLen(12), 21)
	if err != nil {
		log.Fatal(err)
	}
	category, err := samplecf.NewStringColumn(
		samplecf.Char(30), samplecf.HotSet(200, 0.1, 0.9), samplecf.UniformLen(5, 20), 22)
	if err != nil {
		log.Fatal(err)
	}
	stock, err := samplecf.NewIntColumn(samplecf.Int32(), samplecf.Uniform(500), 0)
	if err != nil {
		log.Fatal(err)
	}
	items, err := samplecf.Generate(samplecf.TableSpec{
		Name: "items", N: n, Seed: 23,
		Cols: []samplecf.TableColumn{
			{Name: "sku", Gen: sku},
			{Name: "category", Gen: category},
			{Name: "stock", Gen: stock},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	indexes := [][]string{
		{"sku"},
		{"category"},
		{"category", "stock"},
		{"stock"},
	}
	codecs := []string{"nullsuppression", "page", "pagedict+ns", "globaldict"}

	fmt.Printf("what-if compression savings for table %q (%d rows), f = 2%%\n\n", "items", n)
	fmt.Printf("%-22s", "index \\ codec")
	for _, c := range codecs {
		fmt.Printf("  %-16s", c)
	}
	fmt.Println()
	for _, keyCols := range indexes {
		fmt.Printf("%-22s", fmt.Sprintf("%v", keyCols))
		for _, codecName := range codecs {
			codec, err := samplecf.LookupCodec(codecName)
			if err != nil {
				log.Fatal(err)
			}
			est, err := samplecf.Estimate(items, samplecf.Options{
				Fraction:   0.02,
				Codec:      codec,
				KeyColumns: keyCols,
				Seed:       9,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  CF %.3f (%4.1f%%)", est.CF, (1-est.CF)*100)
		}
		fmt.Println()
	}
	fmt.Println("\n(percentages are estimated space savings; pick the best codec per index)")
}
