// Capacity planning: size the compressed archival footprint of a large
// table WITHOUT materializing it — the paper's §I application "estimate the
// amount of storage space required for data archival".
//
// The table here is virtual: 100 million rows that exist only as a
// deterministic generator, sampled in constant memory — the same trick the
// E2 experiment uses for the paper's Example 1.
//
//	go run ./examples/capacity_planning
package main

import (
	"fmt"
	"log"

	"samplecf"
)

func main() {
	const n = 100_000_000
	const k = 64 // CHAR(64) description column

	desc, err := samplecf.NewStringColumn(
		samplecf.Char(k), samplecf.Uniform(5_000_000), samplecf.NormalLen(24, 8, 0, k), 11)
	if err != nil {
		log.Fatal(err)
	}
	table, err := samplecf.NewVirtualTable(samplecf.TableSpec{
		Name: "event_log", N: n, Seed: 11,
		Cols: []samplecf.TableColumn{{Name: "description", Gen: desc}},
	})
	if err != nil {
		log.Fatal(err)
	}

	uncompressedGiB := float64(n) * k / (1 << 30)
	fmt.Printf("archival candidate: %s, %d rows, CHAR(%d)\n", "event_log", int64(n), k)
	fmt.Printf("uncompressed size : %.1f GiB\n\n", uncompressedGiB)

	// Capacity planning needs the size to ±1 GiB or so, not to the byte:
	// ask each codec for CF within ±1 point at 95% and let the adaptive
	// sampler spend only the rows that codec's variance actually demands —
	// a fixed "0.1% of 100M" draw would burn 100k rows per codec blind.
	fmt.Printf("%-18s  %-10s  %-14s  %-9s  %s\n", "codec", "est. CF", "est. size", "rows", "sample time")
	var totalRows int64
	for _, name := range []string{"nullsuppression", "page", "globaldict-p4"} {
		codec, err := samplecf.LookupCodec(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := samplecf.EstimateVirtualAdaptive(table,
			samplecf.Options{Codec: codec, Seed: 3},
			samplecf.Precision{TargetError: 0.01, Confidence: 0.95, MaxSampleRows: 1_000_000})
		if err != nil {
			log.Fatal(err)
		}
		est := res.Estimate
		totalRows += est.SampleRows
		fmt.Printf("%-18s  %-10.4f  %6.1f±%.1f GiB  %-9d  %v\n",
			name, est.CF, uncompressedGiB*est.CF, uncompressedGiB*res.AchievedError,
			est.SampleRows,
			est.SampleDuration+est.BuildDuration+est.CompressDuration)
	}
	fmt.Printf("\nnote: %d of 100M rows touched across all codecs (each to ±1 CF point at 95%%);\n", totalRows)
	fmt.Println("the table was never materialized.")
}
