// Capacity planning: size the compressed archival footprint of a large
// table WITHOUT materializing it — the paper's §I application "estimate the
// amount of storage space required for data archival".
//
// The table here is virtual: 100 million rows that exist only as a
// deterministic generator, sampled in constant memory — the same trick the
// E2 experiment uses for the paper's Example 1.
//
//	go run ./examples/capacity_planning
package main

import (
	"fmt"
	"log"

	"samplecf"
)

func main() {
	const n = 100_000_000
	const k = 64 // CHAR(64) description column

	desc, err := samplecf.NewStringColumn(
		samplecf.Char(k), samplecf.Uniform(5_000_000), samplecf.NormalLen(24, 8, 0, k), 11)
	if err != nil {
		log.Fatal(err)
	}
	table, err := samplecf.NewVirtualTable(samplecf.TableSpec{
		Name: "event_log", N: n, Seed: 11,
		Cols: []samplecf.TableColumn{{Name: "description", Gen: desc}},
	})
	if err != nil {
		log.Fatal(err)
	}

	uncompressedGiB := float64(n) * k / (1 << 30)
	fmt.Printf("archival candidate: %s, %d rows, CHAR(%d)\n", "event_log", int64(n), k)
	fmt.Printf("uncompressed size : %.1f GiB\n\n", uncompressedGiB)

	fmt.Printf("%-18s  %-10s  %-12s  %s\n", "codec", "est. CF", "est. size", "sample time")
	for _, name := range []string{"nullsuppression", "page", "globaldict-p4"} {
		codec, err := samplecf.LookupCodec(name)
		if err != nil {
			log.Fatal(err)
		}
		est, err := samplecf.EstimateVirtual(table, samplecf.Options{
			SampleRows: 100_000, // 0.1% of 100M
			Codec:      codec,
			Seed:       3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s  %-10.4f  %8.1f GiB  %v\n",
			name, est.CF, uncompressedGiB*est.CF,
			est.SampleDuration+est.BuildDuration+est.CompressDuration)
	}
	fmt.Println("\nnote: each estimate touched 100k of 100M rows; the table was never materialized.")
}
