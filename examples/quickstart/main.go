// Quickstart: estimate how much an index would compress — without
// compressing it — and compare against the exact answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"samplecf"
)

func main() {
	// A 1M-row table with a CHAR(32) city column: ~2000 distinct values,
	// most of the declared width unused — typical padded text data.
	city, err := samplecf.NewStringColumn(
		samplecf.Char(32), samplecf.Zipf(2000, 0.6), samplecf.UniformLen(4, 18), 7)
	if err != nil {
		log.Fatal(err)
	}
	table, err := samplecf.Generate(samplecf.TableSpec{
		Name: "customers", N: 1_000_000, Seed: 7,
		Cols: []samplecf.TableColumn{{Name: "city", Gen: city}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Estimate the compression fraction of an index on (city) under
	// ROW-style null suppression from a 1% sample.
	codec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		log.Fatal(err)
	}
	est, err := samplecf.Estimate(table, samplecf.Options{
		Fraction: 0.01,
		Codec:    codec,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := samplecf.NSConfidenceInterval(est.CF, est.SampleRows, 2)
	fmt.Printf("sampled %d of %d rows (1%%)\n", est.SampleRows, table.NumRows())
	fmt.Printf("estimated CF      : %.4f  (the index shrinks to %.1f%% of its size)\n", est.CF, est.CF*100)
	fmt.Printf("2σ interval       : [%.4f, %.4f]  (Theorem 1, no data assumptions)\n", lo, hi)
	fmt.Printf("estimation time   : %v\n", est.SampleDuration+est.BuildDuration+est.CompressDuration)

	// The expensive way — build and compress the real thing — to show the
	// estimate is right.
	truth, err := samplecf.TrueCF(table, nil, codec, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact CF          : %.4f  (ratio error %.4f)\n",
		truth.CF(), samplecf.RatioError(est.CF, truth.CF()))
}
