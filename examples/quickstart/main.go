// Quickstart: estimate how much an index would compress — without
// compressing it — and compare against the exact answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"samplecf"
)

func main() {
	// A 1M-row table with a CHAR(32) city column: ~2000 distinct values,
	// most of the declared width unused — typical padded text data.
	city, err := samplecf.NewStringColumn(
		samplecf.Char(32), samplecf.Zipf(2000, 0.6), samplecf.UniformLen(4, 18), 7)
	if err != nil {
		log.Fatal(err)
	}
	table, err := samplecf.Generate(samplecf.TableSpec{
		Name: "customers", N: 1_000_000, Seed: 7,
		Cols: []samplecf.TableColumn{{Name: "city", Gen: city}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Estimate the compression fraction of an index on (city) under
	// ROW-style null suppression — adaptively: ask for CF within ±2 points
	// at 95% confidence and let the sampler grow the sample in resumable
	// rounds until the interval is that tight. No fraction to guess.
	codec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		log.Fatal(err)
	}
	res, err := samplecf.EstimateAdaptive(table,
		samplecf.Options{Codec: codec, Seed: 1},
		samplecf.Precision{TargetError: 0.02, Confidence: 0.95})
	if err != nil {
		log.Fatal(err)
	}
	est := res.Estimate
	fmt.Printf("sampled %d of %d rows (%.2f%%) in %d adaptive rounds\n",
		est.SampleRows, table.NumRows(),
		100*float64(est.SampleRows)/float64(table.NumRows()), res.Rounds)
	fmt.Printf("estimated CF      : %.4f  (the index shrinks to %.1f%% of its size)\n", est.CF, est.CF*100)
	fmt.Printf("achieved interval : [%.4f, %.4f]  (±%.4f ≤ the ±0.02 asked for; %s)\n",
		res.CILo, res.CIHi, res.AchievedError, res.Method)
	fmt.Printf("estimation time   : %v\n", est.SampleDuration+est.BuildDuration+est.CompressDuration)

	// The expensive way — build and compress the real thing — to show the
	// estimate is right.
	truth, err := samplecf.TrueCF(table, nil, codec, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact CF          : %.4f  (ratio error %.4f, inside the interval: %v)\n",
		truth.CF(), samplecf.RatioError(est.CF, truth.CF()),
		truth.CF() >= res.CILo && truth.CF() <= res.CIHi)
}
