// Index advisor: pick indexes — possibly compressed — under a storage
// budget, sizing every compressed candidate with SampleCF instead of
// building it. This is the automated-physical-design application the
// paper's introduction motivates.
//
// Sizing goes through the shared estimation engine: all candidates over
// the sales table reuse ONE sample and one sorted build per key column
// set, and a second advisor run at a different budget is answered almost
// entirely from the engine's result cache (re-planning under a changed
// budget is free — the what-if work is already done).
//
//	go run ./examples/index_advisor
package main

import (
	"fmt"
	"log"

	"samplecf"
)

func main() {
	const n = 200_000

	region, err := samplecf.NewStringColumn(
		samplecf.Char(24), samplecf.Uniform(50), samplecf.UniformLen(4, 12), 1)
	if err != nil {
		log.Fatal(err)
	}
	product, err := samplecf.NewStringColumn(
		samplecf.Char(40), samplecf.Zipf(8000, 0.7), samplecf.UniformLen(10, 30), 2)
	if err != nil {
		log.Fatal(err)
	}
	orderID, err := samplecf.NewIntColumn(samplecf.Int64(), samplecf.Uniform(n), 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	sales, err := samplecf.Generate(samplecf.TableSpec{
		Name: "sales", N: n, Seed: 3,
		Cols: []samplecf.TableColumn{
			{Name: "region", Gen: region},
			{Name: "product", Gen: product},
			{Name: "order_id", Gen: orderID},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	row, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		log.Fatal(err)
	}
	page, err := samplecf.LookupCodec("page")
	if err != nil {
		log.Fatal(err)
	}

	queries := []samplecf.AdvisorQuery{
		{Name: "sales-by-region", Columns: []string{"region"}, Weight: 10, Selectivity: 0.05},
		{Name: "product-drilldown", Columns: []string{"product"}, Weight: 6, Selectivity: 0.002},
		{Name: "order-lookup", Columns: []string{"order_id"}, Weight: 4, Selectivity: 0.00001},
	}
	var candidates []samplecf.AdvisorCandidate
	for _, key := range []string{"region", "product", "order_id"} {
		candidates = append(candidates,
			samplecf.AdvisorCandidate{Name: "ix_" + key, Table: sales, KeyColumns: []string{key}},
			samplecf.AdvisorCandidate{Name: "ix_" + key + "_row", Table: sales, KeyColumns: []string{key}, Codec: row},
			samplecf.AdvisorCandidate{Name: "ix_" + key + "_page", Table: sales, KeyColumns: []string{key}, Codec: page},
		)
	}

	// One engine shared by both advisor runs: the second run's sizing is
	// answered from the result cache.
	eng := samplecf.NewEngine(samplecf.EngineConfig{})
	defer eng.Close()
	opts := samplecf.AdvisorOptions{SampleFraction: 0.02, Seed: 5, Engine: eng}

	budget := int64(n * 45) // bytes — tight enough to force compression
	rec, err := samplecf.Recommend(candidates, queries, budget, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("storage budget: %d KiB\n\nchosen:\n", budget/1024)
	for _, s := range rec.Chosen {
		codecName := "(uncompressed)"
		if s.Codec != nil {
			codecName = s.Codec.Name()
		}
		fmt.Printf("  %-20s %-16s est. CF %.3f  est. size %6d KiB\n",
			s.Name, codecName, s.EstimatedCF, s.EstimatedBytes/1024)
	}
	fmt.Printf("\ntotal estimated: %d KiB of %d KiB budget; workload benefit %.0f weighted page reads saved\n",
		rec.TotalBytes/1024, budget/1024, rec.TotalBenefit)
	if len(rec.Rejected) > 0 {
		fmt.Println("\nrejected:")
		for _, r := range rec.Rejected {
			fmt.Printf("  - %s\n", r)
		}
	}

	st := eng.Stats()
	fmt.Printf("\nfirst run: %d candidates sized from %d sample draw(s); cache %d hit / %d miss\n",
		st.Evaluated, st.SamplesDrawn, st.Hits, st.Misses)

	// What if the budget were halved? Re-planning reuses every estimate.
	rec2, err := samplecf.Recommend(candidates, queries, budget/2, opts)
	if err != nil {
		log.Fatal(err)
	}
	st2 := eng.Stats()
	fmt.Printf("re-plan at %d KiB: %d chosen; cache %d hit / %d miss (no new sampling)\n",
		budget/2/1024, len(rec2.Chosen), st2.Hits-st.Hits, st2.Misses-st.Misses)
}
