// Live advisor: the compression-aware index advisor watching a mutating
// database — the scenario Kimura et al. motivate and the reason SampleCF
// must be cheap enough to call continuously. A live table takes insert
// and delete churn while the advisor re-evaluates its recommendation
// after every burst. The versioned data plane does the heavy lifting:
//
//   - every mutation bumps the table's epoch, so each advisory round
//     keys its estimates on fresh state — no manual cache flushes;
//
//   - unchanged (candidate, codec) estimates within a round share
//     samples and sorted builds; identical rounds are pure cache hits;
//
//   - sample draws come from the table's maintained backing sample,
//     not an O(r) storage scan per round.
//
//     go run ./examples/live_advisor
package main

import (
	"fmt"
	"log"

	"samplecf"
)

func main() {
	dbase := samplecf.NewDatabase(0)
	schema, err := samplecf.NewSchema(
		samplecf.Column{Name: "region", Type: samplecf.Char(20)},
		samplecf.Column{Name: "product", Type: samplecf.Char(32)},
		samplecf.Column{Name: "qty", Type: samplecf.Int32()},
	)
	if err != nil {
		log.Fatal(err)
	}
	sales, err := dbase.CreateTable("sales", schema)
	if err != nil {
		log.Fatal(err)
	}

	insert := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			_, err := sales.Insert(samplecf.Row{
				samplecf.String(fmt.Sprintf("region-%02d", i%25)),
				samplecf.String(fmt.Sprintf("product-%04d", i%900)),
				samplecf.Int(int32(i % 500)),
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	insert(0, 40_000)

	ns, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		log.Fatal(err)
	}
	dict, err := samplecf.LookupCodec("pagedict+ns")
	if err != nil {
		log.Fatal(err)
	}

	cands := []samplecf.AdvisorCandidate{
		{Name: "ix_region(ns)", Table: sales, KeyColumns: []string{"region"}, Codec: ns},
		{Name: "ix_region(dict)", Table: sales, KeyColumns: []string{"region"}, Codec: dict},
		{Name: "ix_product(ns)", Table: sales, KeyColumns: []string{"product"}, Codec: ns},
		{Name: "ix_product(dict)", Table: sales, KeyColumns: []string{"product"}, Codec: dict},
		{Name: "ix_region_product", Table: sales, KeyColumns: []string{"region", "product"}, Codec: dict},
	}
	queries := []samplecf.AdvisorQuery{
		{Name: "by-region", Columns: []string{"region"}, Weight: 3, Selectivity: 0.08},
		{Name: "by-product", Columns: []string{"product"}, Weight: 1, Selectivity: 0.02},
	}

	eng := samplecf.NewEngine(samplecf.EngineConfig{})
	defer eng.Close()
	opts := samplecf.AdvisorOptions{SampleFraction: 0.02, Seed: 7, Engine: eng}
	const budget = 1 << 20 // 1 MiB index budget

	advise := func(round string) {
		before := eng.Stats()
		rec, err := samplecf.Recommend(cands, queries, budget, opts)
		if err != nil {
			log.Fatal(err)
		}
		after := eng.Stats()
		fmt.Printf("%s (epoch %d, %d rows):\n", round, sales.Epoch(), sales.NumRows())
		for _, c := range rec.Chosen {
			fmt.Printf("  choose %-18s CF %.4f  ~%d KiB\n", c.Name, c.EstimatedCF, c.EstimatedBytes/1024)
		}
		fmt.Printf("  engine this round: %d cache hits, %d evaluations, %d maintained-sample draws, %d fresh draws\n\n",
			after.Hits-before.Hits, after.Evaluated-before.Evaluated,
			after.MaintainedHits-before.MaintainedHits, after.SamplesDrawn-before.SamplesDrawn)
	}

	advise("initial recommendation")
	// Re-running against unchanged data is pure cache traffic.
	advise("repeat without churn")

	// Burst of inserts: new products widen the dictionary.
	insert(40_000, 55_000)
	advise("after 15k inserts")

	// Burst of deletes: drop every row of 10 regions.
	deleted := 0
	for r := 0; r < 10; r++ {
		n, err := sales.DeleteWhere("region", samplecf.String(fmt.Sprintf("region-%02d", r)), 0)
		if err != nil {
			log.Fatal(err)
		}
		deleted += n
	}
	fmt.Printf("deleted %d rows across 10 regions\n\n", deleted)
	advise("after regional deletes")

	stats, rebuilds := sales.SampleStats()
	fmt.Printf("maintained sample: %d/%d rows, %d inserts seen, %d deletes (%d hit the sample), %d rebuilds\n",
		stats.Size, stats.Target, stats.Inserted, stats.Deleted, stats.Dropped, rebuilds)
}
