// Package samplecf estimates the compression fraction (CF) of a database
// index from a small random sample, reproducing "Estimating the Compression
// Fraction of an Index using Sampling" (Idreos, Kaushik, Narasayya,
// Ramamurthy; ICDE 2010).
//
// The compression fraction of an index is
//
//	CF = size(compressed index) / size(uncompressed index),
//
// and the estimator — SampleCF — draws a uniform random sample of the
// table, builds an index on the sample, compresses it with the target
// codec, and returns the sample's CF as the estimate. It is agnostic to the
// codec's internals, unbiased with low variance for null suppression
// (Theorem 1), and accurate for dictionary compression in the paper's
// small-d and large-d regimes (Theorems 2-3).
//
// Quick start:
//
//	table, _ := samplecf.Generate(samplecf.TableSpec{...})
//	codec, _ := samplecf.LookupCodec("nullsuppression")
//	est, _ := samplecf.Estimate(table, samplecf.Options{Fraction: 0.01, Codec: codec})
//	fmt.Printf("estimated CF = %.4f ± %.4f\n", est.CF, samplecf.NSStdDevBound(est.SampleRows))
//
// Because the estimate is cheap, the realistic call pattern is *many*
// estimates: a physical design tool sizing hundreds of (index, codec)
// candidates. The estimation Engine serves that shape — a worker pool that
// fans candidates across goroutines, draws one sample per (table,
// fraction, seed) and reuses it for every candidate in a batch, and an LRU
// result cache for repeated traffic:
//
//	eng := samplecf.NewEngine(samplecf.EngineConfig{})
//	defer eng.Close()
//	results := eng.WhatIf(ctx, []samplecf.EngineRequest{
//		{Table: table, KeyColumns: []string{"region"}, Codec: codec, Fraction: 0.01, Seed: 42},
//		{Table: table, KeyColumns: []string{"region"}, Codec: other, Fraction: 0.01, Seed: 42},
//	})
//
// cmd/cfserve exposes the same engine as a long-running HTTP/JSON service
// (/estimate, /whatif, /advise) — see docs/cfserve.md.
//
// The package is a facade over the internal packages; everything a
// downstream user needs — schemas, synthetic and user-supplied tables,
// codecs, the estimator, theorem bounds, distinct-value baselines, the
// batch what-if engine, and the compression-aware index advisor — is
// reachable from here.
package samplecf

import (
	"context"

	"samplecf/internal/catalog"
	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/db"
	"samplecf/internal/distinct"
	"samplecf/internal/distrib"
	"samplecf/internal/engine"
	"samplecf/internal/physdesign"
	"samplecf/internal/stats"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// --- schema & values ---------------------------------------------------------

// Type is a logical column type.
type Type = value.Type

// Column is a named, typed column.
type Column = value.Column

// Schema is an ordered list of columns.
type Schema = value.Schema

// Row is one record: per-column payloads.
type Row = value.Row

// Char returns the CHAR(k) type (space-padded, fixed width k).
func Char(k int) Type { return value.Char(k) }

// VarChar returns the VARCHAR(max) type.
func VarChar(max int) Type { return value.VarChar(max) }

// Int32 returns the 32-bit integer type.
func Int32() Type { return value.Int32() }

// Int64 returns the 64-bit integer type.
func Int64() Type { return value.Int64() }

// NewSchema builds and validates a schema.
func NewSchema(cols ...Column) (*Schema, error) { return value.NewSchema(cols...) }

// String returns the payload bytes for a character value.
func String(s string) []byte { return value.StringValue(s) }

// Int returns the payload bytes for an INT value.
func Int(v int32) []byte { return value.IntValue(v) }

// BigInt returns the payload bytes for a BIGINT value.
func BigInt(v int64) []byte { return value.Int64Value(v) }

// --- tables -------------------------------------------------------------------

// Table is a materialized table usable as an estimation source.
type Table = workload.Table

// VirtualTable is a generator-backed table that is never materialized;
// it supports the paper's 100-million-row Example 1 in constant memory.
type VirtualTable = workload.VirtualTable

// TableSpec describes a synthetic table (see Uniform/Zipf and the length
// distributions for the generator vocabulary).
type TableSpec = workload.Spec

// TableColumn pairs a column name with a generator in a TableSpec.
type TableColumn = workload.SpecColumn

// ColumnStats is exact per-column ground truth (n, d, Σℓ, …).
type ColumnStats = workload.ColumnStats

// Layout selects the physical row order of generated tables.
type Layout = workload.Layout

// Layout values.
const (
	LayoutShuffled  = workload.LayoutShuffled
	LayoutClustered = workload.LayoutClustered
)

// Generate materializes a synthetic table from spec.
func Generate(spec TableSpec) (*Table, error) { return workload.Generate(spec) }

// NewVirtualTable builds a virtual table over spec.
func NewVirtualTable(spec TableSpec) (*VirtualTable, error) { return workload.NewVirtual(spec) }

// NewTable wraps user-supplied rows as a table.
func NewTable(name string, schema *Schema, rows []Row) (*Table, error) {
	return workload.NewTableFromRows(name, schema, rows)
}

// ComputeStats scans a table (materialized or virtual) and returns exact
// per-column statistics: the ground truth estimates are judged against.
func ComputeStats(src workload.Scanner) ([]ColumnStats, error) { return workload.ComputeStats(src) }

// NewStringColumn builds a character column generator: values drawn from
// dist, lengths from lengths. See the distrib helpers below.
func NewStringColumn(t Type, dist distrib.Discrete, lengths distrib.Lengths, seed uint64) (workload.ColumnGen, error) {
	return workload.NewStringColumn(t, dist, lengths, seed)
}

// NewIntColumn builds an integer column generator.
func NewIntColumn(t Type, dist distrib.Discrete, offset int64) (workload.ColumnGen, error) {
	return workload.NewIntColumn(t, dist, offset)
}

// --- distributions ------------------------------------------------------------

// Uniform draws each of d distinct values equally often.
func Uniform(d int64) distrib.Discrete { return distrib.NewUniform(d) }

// Zipf draws d values with skew theta in [0,1).
func Zipf(d int64, theta float64) distrib.Discrete { return distrib.NewZipf(d, theta) }

// HotSet puts hotProb of the draws on the first hotFrac of d values.
func HotSet(d int64, hotFrac, hotProb float64) distrib.Discrete {
	return distrib.NewHotSet(d, hotFrac, hotProb)
}

// ConstantLen makes every value exactly l bytes long.
func ConstantLen(l int) distrib.Lengths { return distrib.NewConstantLen(l) }

// UniformLen draws lengths uniformly in [lo, hi].
func UniformLen(lo, hi int) distrib.Lengths { return distrib.NewUniformLen(lo, hi) }

// NormalLen draws lengths from a clamped normal distribution.
func NormalLen(mu, sigma float64, lo, hi int) distrib.Lengths {
	return distrib.NewNormalLen(mu, sigma, lo, hi)
}

// BimodalLen draws short with probability pShort, long otherwise.
func BimodalLen(short, long int, pShort float64) distrib.Lengths {
	return distrib.NewBimodalLen(short, long, pShort)
}

// --- codecs -------------------------------------------------------------------

// Codec is a compression technique (a closed box to the estimator).
type Codec = compress.Codec

// CompressionResult summarizes one compression run.
type CompressionResult = compress.Result

// LookupCodec returns a registered codec by name; see Codecs for the list.
// Built-ins: "nullsuppression" (ROW-style), "pagedict", "pagedict+ns",
// "pagedict+bitpack", "prefix", "rle", "huffman", "for" (frame-of-
// reference), "page" (pick-best composite), "globaldict", and
// "globaldict-p4" (the paper's simplified analytical model with p=4).
func LookupCodec(name string) (Codec, error) { return compress.Lookup(name) }

// Codecs lists the registered codec names.
func Codecs() []string { return compress.Names() }

// GlobalDict returns the paper's simplified dictionary model with a fixed
// pointer size p in bytes (0 = size pointers from the final dictionary).
func GlobalDict(p int) Codec { return compress.GlobalDict{PointerBytes: p} }

// --- the estimator -------------------------------------------------------------

// Options configure one SampleCF estimation.
type Options = core.Options

// Estimation is the outcome of one SampleCF run.
type Estimation = core.Estimate

// Sampling methods for Options.Method.
const (
	UniformWR     = core.MethodUniformWR
	UniformWOR    = core.MethodUniformWOR
	BlockSampling = core.MethodBlock
)

// Estimate runs the paper's SampleCF estimator (Fig. 2) against the table.
func Estimate(table *Table, opts Options) (Estimation, error) {
	return core.SampleCF(table, table.Schema(), opts)
}

// EstimateVirtual runs SampleCF against a virtual table.
func EstimateVirtual(table *VirtualTable, opts Options) (Estimation, error) {
	return core.SampleCF(table, table.Schema(), opts)
}

// TrueCF computes the exact CF of the index on keyCols by building and
// compressing the whole thing — the expensive ground truth.
func TrueCF(src core.RowScanner, keyCols []string, codec Codec, pageSize int) (CompressionResult, error) {
	return core.TrueCF(src, keyCols, codec, pageSize)
}

// --- adaptive (precision-targeted) estimation ---------------------------------

// Precision is an accuracy target for adaptive estimation: the requested
// CI half-width on CF, the confidence level, and the row budget.
type Precision = core.Precision

// AdaptiveEstimation is the outcome of a precision-targeted estimation:
// the estimate, the achieved confidence interval, the rounds run, and
// whether the target was met within the row budget.
type AdaptiveEstimation = core.AdaptiveResult

// EstimateAdaptive runs SampleCF driven to a precision target instead of a
// fixed sample size: the sample grows in resumable rounds (estimate →
// CI-check → extend, never redrawing earlier rows) until CF is known to
// within target.TargetError at target.Confidence or target.MaxSampleRows
// is exhausted. Options.SampleRows/Fraction, when set, seed the first
// round's size.
func EstimateAdaptive(table *Table, opts Options, target Precision) (AdaptiveEstimation, error) {
	return core.SampleCFAdaptive(table, table.Schema(), opts, target)
}

// EstimateVirtualAdaptive is EstimateAdaptive for a virtual table: the
// constant-memory path for precision-targeting tables too big to hold.
func EstimateVirtualAdaptive(table *VirtualTable, opts Options, target Precision) (AdaptiveEstimation, error) {
	return core.SampleCFAdaptive(table, table.Schema(), opts, target)
}

// BootstrapInterval is a resampling-based confidence interval for a CF
// estimate. Sound for additive codecs (null suppression); biased low for
// cardinality-sensitive codecs — see the core.Bootstrap documentation.
type BootstrapInterval = core.BootstrapCI

// EstimateWithBootstrap runs SampleCF (uniform WR) and derives a percentile
// bootstrap interval from the same sample. resamples ≥ 10; alpha = 0.05
// yields a 95% interval. The sample travels as an arena (the estimator's
// own format), so the bootstrap allocates nothing per row.
func EstimateWithBootstrap(table *Table, opts Options, resamples int, alpha float64) (Estimation, BootstrapInterval, error) {
	est, sample, err := core.SampleCFWithSample(table, table.Schema(), opts)
	if err != nil {
		return Estimation{}, BootstrapInterval{}, err
	}
	ci, err := core.Bootstrap(sample, opts.Codec, opts.PageSize, resamples, alpha, opts.Seed+0x5eed)
	if err != nil {
		return Estimation{}, BootstrapInterval{}, err
	}
	return est, ci, nil
}

// --- accuracy guarantees --------------------------------------------------------

// NSStdDevBound is Theorem 1's distribution-free bound on the standard
// deviation of the NS estimate: 1/(2√r).
func NSStdDevBound(sampleRows int64) float64 { return core.Theorem1StdDevBound(sampleRows) }

// NSConfidenceInterval returns CF' ± z·bound clamped to [0,1].
func NSConfidenceInterval(cf float64, sampleRows int64, z float64) (lo, hi float64) {
	return core.NSConfidenceInterval(cf, sampleRows, z)
}

// DictRatioErrorBoundSmallD is the reconstructed Theorem 2 bound.
func DictRatioErrorBoundSmallD(n, d int64, f float64, k, p int) (float64, error) {
	return core.Theorem2RatioBound(n, d, f, k, p)
}

// DictRatioErrorBoundLargeD is the reconstructed Theorem 3 bound.
func DictRatioErrorBoundLargeD(beta, f float64, k, p int) (float64, error) {
	return core.Theorem3RatioBound(beta, f, k, p)
}

// RatioError is the paper's accuracy metric max(est/true, true/est).
func RatioError(est, truth float64) float64 {
	return stats.RatioError(est, truth)
}

// DesignEffect summarizes a table layout's intra-page correlation for
// block sampling (extension: the cluster-sampling correction to Theorem 1).
type DesignEffect = core.DesignEffect

// EstimateDesignEffect scans a page source and returns ρ, m̄, and
// deff = 1 + (m̄-1)·ρ for the NS statistic.
func EstimateDesignEffect(ps interface {
	NumPages() int
	PageRows(p int) ([]Row, error)
}, keySchema *Schema) (DesignEffect, error) {
	return core.EstimateDesignEffect(ps, keySchema, nil)
}

// BlockSamplingNSStdDevBound is Theorem 1's bound corrected for block
// sampling: √deff / (2√r).
func BlockSamplingNSStdDevBound(sampleRows int64, deff float64) float64 {
	return core.BlockSamplingNSStdDevBound(sampleRows, deff)
}

// --- distinct-value baselines ----------------------------------------------------

// DistinctEstimator estimates a table's distinct count from a sample
// profile (GEE, Chao, Shlosser, …) — the baseline family of experiment E8.
type DistinctEstimator = distinct.Estimator

// DistinctProfile is a sample's frequency-of-frequency summary.
type DistinctProfile = distinct.Profile

// DistinctEstimators returns all built-in estimators.
func DistinctEstimators() []DistinctEstimator { return distinct.All() }

// EstimateDictCF combines a distinct-value estimate with the simplified
// dictionary model: CF = p/k + d̂/n.
func EstimateDictCF(k, p int, profile DistinctProfile, est DistinctEstimator) (float64, error) {
	return core.AnalyticDict(k, p, profile, est)
}

// --- index advisor ----------------------------------------------------------------

// AdvisorQuery, AdvisorCandidate, AdvisorOptions and Recommendation expose
// the compression-aware physical design advisor the paper's introduction
// motivates.
type (
	// AdvisorQuery is one workload statement.
	AdvisorQuery = physdesign.Query
	// AdvisorCandidate is one index design option.
	AdvisorCandidate = physdesign.Candidate
	// AdvisorOptions tune sampling and the cost model.
	AdvisorOptions = physdesign.Options
	// Recommendation is the advisor's output.
	Recommendation = physdesign.Recommendation
)

// Recommend picks indexes under a storage budget, sizing compressed
// candidates with SampleCF. Set AdvisorOptions.Engine to share samples and
// cached estimates across calls; otherwise each call uses a private engine.
func Recommend(cands []AdvisorCandidate, queries []AdvisorQuery, budgetBytes int64, opts AdvisorOptions) (Recommendation, error) {
	return physdesign.Recommend(cands, queries, budgetBytes, opts)
}

// SizeCandidates estimates every candidate's footprint in one batch:
// compressed candidates over the same table share a single sample, and
// every codec of the same key column set shares one sorted index build.
func SizeCandidates(cands []AdvisorCandidate, opts AdvisorOptions) ([]SizedCandidate, error) {
	return physdesign.SizeCandidates(cands, opts)
}

// SizedCandidate is a candidate with its estimated storage footprint.
type SizedCandidate = physdesign.Sized

// --- catalog -----------------------------------------------------------------

// CatalogTable is the versioned table abstraction every estimation
// consumer speaks to: identity (name + process-unique instance id),
// schema, random row access, and a version epoch that mutations bump.
// Synthetic tables, virtual tables, and live database tables all
// implement it, so the engine serves them interchangeably and
// invalidates cached estimates in O(1) when a table changes.
type CatalogTable = catalog.Table

// TableCatalog is a concurrency-safe named registry of catalog tables —
// the mount point services resolve table names through.
type TableCatalog = catalog.Catalog

// NewTableCatalog returns an empty table catalog.
func NewTableCatalog() *TableCatalog { return catalog.New() }

// --- estimation engine -------------------------------------------------------

// Engine is the concurrent what-if estimation engine: a worker pool with
// shared-sample batch estimation and an LRU result cache. Create with
// NewEngine, release with Close. Safe for concurrent use.
type Engine = engine.Engine

// EngineConfig tunes an Engine (workers, cache entries, page size).
type EngineConfig = engine.Config

// EngineRequest is one what-if question: how big would the index on
// Table(KeyColumns) be under Codec, estimated from a Fraction sample drawn
// with Seed?
type EngineRequest = engine.Request

// EngineResult is one candidate's outcome; Err is per-candidate, never
// batch-fatal.
type EngineResult = engine.Result

// EngineStats snapshots the engine's cache and sharing counters.
type EngineStats = engine.Stats

// NewEngine starts an estimation engine.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// WhatIf evaluates a batch of candidates on eng, drawing each distinct
// (table, sample size, seed) sample once. It is eng.WhatIf, re-exported so
// the facade covers the batch path.
func WhatIf(ctx context.Context, eng *Engine, reqs []EngineRequest) []EngineResult {
	return eng.WhatIf(ctx, reqs)
}

// --- embedded engine ---------------------------------------------------------------

// Database is a miniature embedded engine: heap-backed tables with
// maintained B+-tree indexes and first-class CF estimation on live data —
// the shape a commercial engine exposes as
// sp_estimate_data_compression_savings.
type Database = db.Database

// DBTable is a table inside a Database.
type DBTable = db.Table

// DBIndex is a maintained index on a DBTable.
type DBIndex = db.Index

// NewDatabase creates an empty engine; pageSize 0 selects the 8 KiB default.
func NewDatabase(pageSize int) *Database { return db.New(pageSize) }
