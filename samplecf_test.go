package samplecf_test

import (
	"math"
	"testing"

	"samplecf"
)

// demoTable builds a public-API synthetic table.
func demoTable(t testing.TB, n int64, d int64) *samplecf.Table {
	t.Helper()
	col, err := samplecf.NewStringColumn(samplecf.Char(20), samplecf.Uniform(d), samplecf.UniformLen(3, 15), 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := samplecf.Generate(samplecf.TableSpec{
		Name: "demo", N: n, Seed: 2,
		Cols: []samplecf.TableColumn{{Name: "city", Gen: col}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestPublicEstimateFlow(t *testing.T) {
	tab := demoTable(t, 20000, 500)
	codec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		t.Fatal(err)
	}
	est, err := samplecf.Estimate(tab, samplecf.Options{Fraction: 0.02, Codec: codec, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := samplecf.TrueCF(tab, nil, codec, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := samplecf.NSStdDevBound(est.SampleRows)
	if math.Abs(est.CF-truth.CF()) > 4*bound {
		t.Fatalf("estimate %v vs truth %v exceeds 4×bound %v", est.CF, truth.CF(), bound)
	}
	lo, hi := samplecf.NSConfidenceInterval(est.CF, est.SampleRows, 3)
	if truth.CF() < lo || truth.CF() > hi {
		t.Fatalf("truth %v outside 3σ interval [%v,%v]", truth.CF(), lo, hi)
	}
}

func TestPublicCodecRegistry(t *testing.T) {
	names := samplecf.Codecs()
	if len(names) < 8 {
		t.Fatalf("public registry lists %d codecs: %v", len(names), names)
	}
	for _, n := range names {
		if _, err := samplecf.LookupCodec(n); err != nil {
			t.Errorf("LookupCodec(%q): %v", n, err)
		}
	}
}

func TestPublicUserSuppliedRows(t *testing.T) {
	schema, err := samplecf.NewSchema(
		samplecf.Column{Name: "name", Type: samplecf.Char(16)},
		samplecf.Column{Name: "qty", Type: samplecf.Int32()},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := []samplecf.Row{
		{samplecf.String("widget"), samplecf.Int(10)},
		{samplecf.String("gadget"), samplecf.Int(20)},
		{samplecf.String("widget"), samplecf.Int(30)},
	}
	for i := 0; i < 7; i++ { // replicate so sampling has something to chew on
		rows = append(rows, rows[:3]...)
	}
	tab, err := samplecf.NewTable("inventory", schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	codec := samplecf.GlobalDict(4)
	est, err := samplecf.Estimate(tab, samplecf.Options{Fraction: 0.5, Codec: codec, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Only 3 distinct (name, qty) rows exist.
	if est.SampleDistinct > 3 {
		t.Fatalf("d' = %d, table has 3 distinct rows", est.SampleDistinct)
	}
	if est.CF <= 0 {
		t.Fatalf("CF = %v", est.CF)
	}
}

func TestPublicDictBaselines(t *testing.T) {
	tab := demoTable(t, 50000, 2000)
	est, err := samplecf.Estimate(tab, samplecf.Options{
		Fraction: 0.02, Codec: samplecf.GlobalDict(4), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := samplecf.ComputeStats(tab)
	if err != nil {
		t.Fatal(err)
	}
	truth := stats[0].CFGlobalDict(20, 4)
	for _, dv := range samplecf.DistinctEstimators() {
		cf, err := samplecf.EstimateDictCF(20, 4, est.Profile, dv)
		if err != nil {
			t.Errorf("%s: %v", dv.Name(), err)
			continue
		}
		if re := samplecf.RatioError(cf, truth); re > 10 {
			t.Errorf("%s: ratio error %v vs truth %v", dv.Name(), re, truth)
		}
	}
}

func TestPublicVirtualTable(t *testing.T) {
	col, err := samplecf.NewStringColumn(samplecf.Char(20), samplecf.Uniform(1_000_000), samplecf.UniformLen(0, 20), 5)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := samplecf.NewVirtualTable(samplecf.TableSpec{
		Name: "big", N: 10_000_000, Seed: 5,
		Cols: []samplecf.TableColumn{{Name: "a", Gen: col}},
	})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		t.Fatal(err)
	}
	est, err := samplecf.EstimateVirtual(vt, samplecf.Options{SampleRows: 10_000, Codec: codec, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Lengths are unif{0..20} clamped to the 4-char uniqueness prefix:
	// E[ℓ] = (4·5 + Σ₅..₂₀)/21 ≈ 10.48, so CF ≈ (10.48+1)/20 ≈ 0.574.
	if math.Abs(est.CF-0.574) > 0.02 {
		t.Fatalf("virtual estimate %v far from 0.574", est.CF)
	}
}

func TestPublicAdvisor(t *testing.T) {
	tab := demoTable(t, 10000, 100)
	codec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := samplecf.Recommend(
		[]samplecf.AdvisorCandidate{
			{Name: "ix_city", Table: tab, KeyColumns: []string{"city"}},
			{Name: "ix_city_row", Table: tab, KeyColumns: []string{"city"}, Codec: codec},
		},
		[]samplecf.AdvisorQuery{
			{Name: "q", Columns: []string{"city"}, Weight: 1, Selectivity: 0.1},
		},
		1<<30, samplecf.AdvisorOptions{SampleFraction: 0.05, Seed: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chosen) != 1 || rec.Chosen[0].Name != "ix_city_row" {
		t.Fatalf("advisor chose %+v", rec.Chosen)
	}
}

func TestPublicEstimateWithBootstrap(t *testing.T) {
	tab := demoTable(t, 20000, 500)
	codec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		t.Fatal(err)
	}
	est, ci, err := samplecf.EstimateWithBootstrap(tab, samplecf.Options{
		Fraction: 0.02, Codec: codec, Seed: 7,
	}, 100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > est.CF || ci.Hi < est.CF {
		t.Fatalf("NS point estimate %v outside bootstrap interval [%v,%v]", est.CF, ci.Lo, ci.Hi)
	}
	truth, err := samplecf.TrueCF(tab, nil, codec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Loose: a 95% interval from one run usually contains the truth.
	if truth.CF() < ci.Lo-3*ci.SD || truth.CF() > ci.Hi+3*ci.SD {
		t.Fatalf("truth %v wildly outside interval [%v,%v] (sd %v)", truth.CF(), ci.Lo, ci.Hi, ci.SD)
	}
}

func TestPublicEstimateAdaptive(t *testing.T) {
	tab := demoTable(t, 50000, 300)
	codec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		t.Fatal(err)
	}
	res, err := samplecf.EstimateAdaptive(tab,
		samplecf.Options{Codec: codec, Seed: 4},
		samplecf.Precision{TargetError: 0.025, Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.AchievedError > 0.025 {
		t.Fatalf("adaptive run: converged=%v achieved=±%v", res.Converged, res.AchievedError)
	}
	if res.Estimate.SampleRows >= tab.NumRows() {
		t.Fatalf("adaptive spent %d rows on a %d-row table", res.Estimate.SampleRows, tab.NumRows())
	}
	truth, err := samplecf.TrueCF(tab, nil, codec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if truth.CF() < res.CILo || truth.CF() > res.CIHi {
		t.Fatalf("truth %v outside achieved interval [%v,%v]", truth.CF(), res.CILo, res.CIHi)
	}
}
