# Developer entry points. CI runs the same targets.

GO ?= go

.PHONY: build test race bench fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; fi

vet:
	$(GO) vet ./...

# BENCHTIME scales benchmark effort: CI smoke runs use 1x, local perf
# tracking should use the default (or higher) for stable numbers.
BENCHTIME ?= 1s

# bench records the perf trajectory of the hot paths — the engine's
# epoch-keyed cache (must stay O(1) in table size), the maintained-sample
# fast path, and the shared-sample batch — as a machine-readable artifact.
bench:
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -run '^$$' ./internal/engine . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson > BENCH_engine.json
	@echo "wrote BENCH_engine.json"
