# Developer entry points. CI runs the same targets.

GO ?= go

.PHONY: build test race bench bench-diff bench-race fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; fi

vet:
	$(GO) vet ./...

# BENCHTIME scales benchmark effort: CI smoke runs use 1x, local perf
# tracking should use the default (or higher) for stable numbers.
BENCHTIME ?= 1s

# bench records the perf trajectory of the hot paths — the engine's
# epoch-keyed cache (must stay O(1) in table size), the maintained-sample
# fast path, the shared-sample batch, BenchmarkAdaptiveVsFixed's
# rows-sampled-for-equal-accuracy comparison (rows/est + err_pts custom
# metrics), BenchmarkAdaptiveStratifiedZipf's uniform-vs-stratified
# rows-to-±2% pairs on zipf keys, the sort subsystem (BenchmarkPrepareSort's radix-vs-stdsort
# pairs, BenchmarkTrueCFParallel's worker sweep), the telemetry layer
# (BenchmarkObsOverhead's instrumented-vs-noop cost per metric update),
# and the fault-injection switchboard (BenchmarkFaultPointDisarmed's
# zero-cost disarmed contract) — as a machine-readable artifact.
bench:
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -run '^$$' ./internal/engine ./internal/core ./internal/obs ./internal/faults . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson > BENCH_engine.json
	@echo "wrote BENCH_engine.json"

# bench-diff runs the same benchmarks and compares them against the
# committed BENCH_engine.json, exiting nonzero on a >25% ns/op or
# allocs/op regression — and on ANY allocs/op growth in
# BenchmarkEstimateSampleSizes, whose zero-alloc steady state is a hard
# contract of the estimation hot path. CI runs it as a non-blocking report
# (1x iterations are too noisy to gate on); run locally with the default
# BENCHTIME before sending a perf-sensitive change.
bench-diff:
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -run '^$$' ./internal/engine ./internal/core ./internal/obs ./internal/faults . \
		| $(GO) run ./cmd/benchjson -diff BENCH_engine.json -allocs-exact 'BenchmarkEstimateSampleSizes'

# bench-race drives the estimation hot path — pooled codec scratch,
# parallel page compression, shared arenas — the telemetry instruments,
# the stratified adaptive loop (per-stratum resumable streams extending
# concurrently), and the serving-path concurrency machinery (snapshot
# publication racing estimator reads in ConcurrentMixed, the coalescing
# flight group absorbing a CoalescedStampede) under the race detector so
# a data race in pooling, fan-out, stream extension, snapshot swap,
# singleflight hand-off, or metric updates cannot land silently.
bench-race:
	$(GO) test -race -bench EstimateSampleSizes -benchtime 1x -run '^$$' .
	$(GO) test -race -bench ObsOverhead -benchtime 1x -run '^$$' ./internal/obs
	$(GO) test -race -bench AdaptiveStratifiedZipf -benchtime 1x -run '^$$' ./internal/engine
	$(GO) test -race -bench 'ConcurrentMixed|CoalescedStampede' -benchtime 1x -run '^$$' ./internal/engine
