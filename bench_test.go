// Benchmarks regenerating every table and figure of the paper's evaluation,
// one per artifact (see DESIGN.md's experiment index). Each benchmark runs
// the corresponding experiment end-to-end at reduced scale; `cmd/cfbench
// -exp <ID> -scale 1` prints the full-scale tables these are derived from.
//
//	go test -bench=. -benchmem
package samplecf_test

import (
	"context"
	"io"
	"testing"

	"samplecf"
	"samplecf/internal/experiments"
)

// benchScale keeps per-iteration cost low enough for testing.B while
// exercising the full experiment code path.
const benchScale = 0.02

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := experiments.Config{Scale: benchScale, Seed: uint64(i + 1)}
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem1NS regenerates E1: the Theorem 1 bias/spread table and
// the spread-vs-r figure series.
func BenchmarkTheorem1NS(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkExample1 regenerates E2: the paper's Example 1 (σ ≤ 5·10⁻⁴ at
// n=10⁸, r=10⁶), on a virtual table.
func BenchmarkExample1(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkTheorem2SmallD regenerates E3: dictionary ratio error → 1 as
// d/n → 0.
func BenchmarkTheorem2SmallD(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkTheorem3LargeD regenerates E4: dictionary ratio error bounded by
// a constant for d = βn.
func BenchmarkTheorem3LargeD(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkTableII regenerates E5: the paper's Table II summary matrix.
func BenchmarkTableII(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkPagedDictionary regenerates E6: paging effects (Pg(i)) and the
// dictionary-entry-format ablation.
func BenchmarkPagedDictionary(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkBlockSampling regenerates E7: block vs row sampling across
// physical layouts.
func BenchmarkBlockSampling(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkDVBaselines regenerates E8: SampleCF vs distinct-value-estimator
// baselines.
func BenchmarkDVBaselines(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkSampleCFCost regenerates E9: estimation cost vs full
// build-and-compress.
func BenchmarkSampleCFCost(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkAdvisor regenerates E10: the compression-aware index advisor.
func BenchmarkAdvisor(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkMultiColumn regenerates E11: multi-column index estimation and
// the per-column independence check.
func BenchmarkMultiColumn(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkWRvsWOR regenerates E12: the sampling-scheme ablation.
func BenchmarkWRvsWOR(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkBootstrapCI regenerates E13: bootstrap interval coverage.
func BenchmarkBootstrapCI(b *testing.B) { runExperiment(b, "E13") }

// --- public-API microbenchmarks ------------------------------------------------

// benchTable builds the shared microbenchmark table once.
func benchTable(b *testing.B) *samplecf.Table {
	b.Helper()
	col, err := samplecf.NewStringColumn(
		samplecf.Char(20), samplecf.Uniform(10_000), samplecf.UniformLen(2, 18), 1)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := samplecf.Generate(samplecf.TableSpec{
		Name: "bench", N: 500_000, Seed: 1,
		Cols: []samplecf.TableColumn{{Name: "a", Gen: col}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

// BenchmarkEstimate measures one SampleCF estimation per codec at f = 1%.
func BenchmarkEstimate(b *testing.B) {
	tab := benchTable(b)
	for _, name := range []string{"nullsuppression", "pagedict", "page", "globaldict-p4"} {
		codec, err := samplecf.LookupCodec(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := samplecf.Estimate(tab, samplecf.Options{
					Fraction: 0.01, Codec: codec, Seed: uint64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateSampleSizes sweeps r to show estimation cost is O(r),
// not O(n) — the economics of Fig. 2.
func BenchmarkEstimateSampleSizes(b *testing.B) {
	tab := benchTable(b)
	codec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range []int64{100, 1_000, 10_000, 100_000} {
		b.Run(sizeName(r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := samplecf.Estimate(tab, samplecf.Options{
					SampleRows: r, Codec: codec, Seed: uint64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(r int64) string {
	switch {
	case r >= 1_000_000:
		return "r=1M"
	case r >= 1_000:
		return "r=" + itoa(r/1000) + "k"
	default:
		return "r=" + itoa(r)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkTrueCF measures the naive full-compression alternative the
// estimator exists to avoid.
func BenchmarkTrueCF(b *testing.B) {
	tab := benchTable(b)
	codec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := samplecf.TrueCF(tab, nil, codec, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFractionSweep regenerates E14: error vs sampling fraction.
func BenchmarkFractionSweep(b *testing.B) { runExperiment(b, "E14") }

// whatIfBatchTable builds the multi-column table the what-if batch
// benchmark enumerates candidates over.
func whatIfBatchTable(b *testing.B) *samplecf.Table {
	b.Helper()
	region, err := samplecf.NewStringColumn(
		samplecf.Char(24), samplecf.Uniform(50), samplecf.UniformLen(4, 12), 1)
	if err != nil {
		b.Fatal(err)
	}
	product, err := samplecf.NewStringColumn(
		samplecf.Char(40), samplecf.Zipf(8000, 0.7), samplecf.UniformLen(10, 30), 2)
	if err != nil {
		b.Fatal(err)
	}
	qty, err := samplecf.NewIntColumn(samplecf.Int32(), samplecf.Uniform(500), 0)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := samplecf.Generate(samplecf.TableSpec{
		Name: "whatif-bench", N: 200_000, Seed: 3,
		Cols: []samplecf.TableColumn{
			{Name: "region", Gen: region},
			{Name: "product", Gen: product},
			{Name: "qty", Gen: qty},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

// whatIfBatchRequests enumerates the candidate matrix: 4 key column sets ×
// 4 codecs = 16 (index, codec) pairs, all at the same (fraction, seed).
func whatIfBatchRequests(b *testing.B, tab *samplecf.Table, seed uint64) []samplecf.EngineRequest {
	b.Helper()
	colsets := [][]string{{"region"}, {"product"}, {"qty"}, {"region", "product"}}
	codecs := []string{"nullsuppression", "rle", "prefix", "pagedict+ns"}
	var reqs []samplecf.EngineRequest
	for _, cs := range colsets {
		for _, cn := range codecs {
			codec, err := samplecf.LookupCodec(cn)
			if err != nil {
				b.Fatal(err)
			}
			reqs = append(reqs, samplecf.EngineRequest{
				Table: tab, KeyColumns: cs, Codec: codec, Fraction: 0.01, Seed: seed,
			})
		}
	}
	return reqs
}

// BenchmarkWhatIfBatch compares the advisor's two candidate-sizing paths
// over the same 16-candidate batch: "naive" re-runs the full SampleCF
// pipeline (draw, sort, compress) per candidate — the pre-engine advisor
// loop — while "engine" shares one sample draw across the batch and one
// sorted index build per key column set. The engine result cache is
// disabled and the seed varies per iteration, so the ratio measures
// structural sharing plus worker-pool parallelism, not memoization.
func BenchmarkWhatIfBatch(b *testing.B) {
	tab := whatIfBatchTable(b)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, req := range whatIfBatchRequests(b, tab, uint64(i)) {
				_, err := samplecf.Estimate(tab, samplecf.Options{
					Fraction:   req.Fraction,
					Codec:      req.Codec,
					KeyColumns: req.KeyColumns,
					Seed:       req.Seed,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		eng := samplecf.NewEngine(samplecf.EngineConfig{CacheEntries: -1})
		defer eng.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range eng.WhatIf(context.Background(), whatIfBatchRequests(b, tab, uint64(i))) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}
