// Command datagen emits synthetic CSV datasets with known ground truth, for
// feeding cmd/cfest or external tools.
//
//	datagen -n 100000 -d 5000 -k 20 -dist zipf -theta 0.8 -o data.csv
//	datagen -n 10000 -d 100 -lengths bimodal -short 2 -long 18 -stats
//
// -stats prints the exact column statistics (n, d, Σℓ, analytic CFs) so the
// generated file's true compression fraction is known without compressing.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"samplecf/internal/csvio"
	"samplecf/internal/distrib"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int64("n", 100_000, "rows")
		dDistinct = flag.Int64("d", 10_000, "distinct value domain")
		k         = flag.Int("k", 20, "CHAR(k) column width")
		dist      = flag.String("dist", "uniform", "value distribution: uniform, zipf, hotset")
		theta     = flag.Float64("theta", 0.8, "zipf skew (with -dist zipf)")
		lengths   = flag.String("lengths", "uniform", "length distribution: uniform, constant, normal, bimodal")
		lo        = flag.Int("lo", 0, "min length (uniform/normal)")
		hi        = flag.Int("hi", -1, "max length (uniform/normal; default k)")
		constL    = flag.Int("const", 10, "constant length (with -lengths constant)")
		shortL    = flag.Int("short", 2, "short mode length (bimodal)")
		longL     = flag.Int("long", 18, "long mode length (bimodal)")
		pShort    = flag.Float64("pshort", 0.5, "short-mode probability (bimodal)")
		clustered = flag.Bool("clustered", false, "sort rows by value (clustered layout)")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("o", "", "output file (default stdout)")
		stats     = flag.Bool("stats", false, "print exact column statistics to stderr")
		shards    = flag.Int64("shards", 0, "emit a partition-skewed int32 \"shard\" column over this many shards (0 = off)")
		hotFrac   = flag.Float64("hot-shard-frac", 0.8, "fraction of rows landing on the hot shard (with -shards)")
	)
	flag.Parse()
	if *hi < 0 {
		*hi = *k
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative")
	}
	if *shards > 1 && (*hotFrac <= 0 || *hotFrac >= 1) {
		return fmt.Errorf("-hot-shard-frac must be in (0,1)")
	}

	var valueDist distrib.Discrete
	switch *dist {
	case "uniform":
		valueDist = distrib.NewUniform(*dDistinct)
	case "zipf":
		valueDist = distrib.NewZipf(*dDistinct, *theta)
	case "hotset":
		valueDist = distrib.NewHotSet(*dDistinct, 0.1, 0.9)
	default:
		return fmt.Errorf("unknown -dist %q", *dist)
	}
	var lengthDist distrib.Lengths
	switch *lengths {
	case "uniform":
		lengthDist = distrib.NewUniformLen(*lo, *hi)
	case "constant":
		lengthDist = distrib.NewConstantLen(*constL)
	case "normal":
		lengthDist = distrib.NewNormalLen(float64(*lo+*hi)/2, float64(*hi-*lo)/6, *lo, *hi)
	case "bimodal":
		lengthDist = distrib.NewBimodalLen(*shortL, *longL, *pShort)
	default:
		return fmt.Errorf("unknown -lengths %q", *lengths)
	}

	col, err := workload.NewStringColumn(value.Char(*k), valueDist, lengthDist, *seed)
	if err != nil {
		return err
	}
	cols := []workload.SpecColumn{{Name: "a", Gen: col}}
	if *shards > 0 {
		// Partition-skewed shard assignment: shard 0 is hot and draws
		// -hot-shard-frac of the rows, the rest spread uniformly — the
		// workload shape sharded estimation is built for (one churning
		// shard, many quiet ones).
		var shardDist distrib.Discrete = distrib.NewUniform(1)
		if *shards > 1 {
			shardDist = distrib.NewHotSet(*shards, 1/float64(*shards), *hotFrac)
		}
		shardCol, err := workload.NewIntColumn(value.Int32(), shardDist, 0)
		if err != nil {
			return err
		}
		cols = append(cols, workload.SpecColumn{Name: "shard", Gen: shardCol})
	}
	layout := workload.LayoutShuffled
	if *clustered {
		layout = workload.LayoutClustered
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "datagen", N: *n, Seed: *seed, Layout: layout, Cols: cols,
	})
	if err != nil {
		return err
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := csvio.WriteRows(w, tab); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if *stats {
		cs, err := workload.ComputeStats(tab)
		if err != nil {
			return err
		}
		c := cs[0]
		fmt.Fprintf(os.Stderr, "n=%d distinct=%d sumNS=%d meanNS=%.3f varNS=%.3f\n",
			c.N, c.Distinct, c.SumNS, c.MeanNS(), c.VarNS())
		fmt.Fprintf(os.Stderr, "analytic CF: NS=%.6f globaldict(p=4)=%.6f\n",
			c.CFNullSuppression(*k, 1), c.CFGlobalDict(*k, 4))
		if *shards > 0 {
			counts := make([]int64, *shards)
			err := tab.Scan(func(_ int64, row value.Row) error {
				counts[value.DecodeInt32(row[1])]++
				return nil
			})
			if err != nil {
				return err
			}
			for s, cnt := range counts {
				fmt.Fprintf(os.Stderr, "shard %d: %d rows (%.1f%%)\n",
					s, cnt, 100*float64(cnt)/float64(*n))
			}
		}
	}
	return nil
}
