// Command datagen emits synthetic CSV datasets with known ground truth, for
// feeding cmd/cfest or external tools.
//
//	datagen -n 100000 -d 5000 -k 20 -dist zipf -theta 0.8 -o data.csv
//	datagen -n 100000 -d 5000 -k 20 -zipf-theta 0.86 -o skewed.csv
//	datagen -n 10000 -d 100 -lengths bimodal -short 2 -long 18 -stats
//
// -zipf-theta is the one-flag spelling of -dist zipf -theta θ, for
// reproducing the stratified benchmarks from the CLI. -stats prints the
// exact column statistics (n, d, Σℓ, analytic CFs) so the generated file's
// true compression fraction is known without compressing, plus the
// observed top-10 frequency skew.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"samplecf/internal/csvio"
	"samplecf/internal/distrib"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int64("n", 100_000, "rows")
		dDistinct = flag.Int64("d", 10_000, "distinct value domain")
		k         = flag.Int("k", 20, "CHAR(k) column width")
		dist      = flag.String("dist", "uniform", "value distribution: uniform, zipf, hotset")
		theta     = flag.Float64("theta", 0.8, "zipf skew (with -dist zipf)")
		zipfTheta = flag.Float64("zipf-theta", 0, "shortcut: -dist zipf at this skew (overrides -dist and -theta when set)")
		lengths   = flag.String("lengths", "uniform", "length distribution: uniform, constant, normal, bimodal")
		lo        = flag.Int("lo", 0, "min length (uniform/normal)")
		hi        = flag.Int("hi", -1, "max length (uniform/normal; default k)")
		constL    = flag.Int("const", 10, "constant length (with -lengths constant)")
		shortL    = flag.Int("short", 2, "short mode length (bimodal)")
		longL     = flag.Int("long", 18, "long mode length (bimodal)")
		pShort    = flag.Float64("pshort", 0.5, "short-mode probability (bimodal)")
		clustered = flag.Bool("clustered", false, "sort rows by value (clustered layout)")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("o", "", "output file (default stdout)")
		stats     = flag.Bool("stats", false, "print exact column statistics to stderr")
		shards    = flag.Int64("shards", 0, "emit a partition-skewed int32 \"shard\" column over this many shards (0 = off)")
		hotFrac   = flag.Float64("hot-shard-frac", 0.8, "fraction of rows landing on the hot shard (with -shards)")
	)
	flag.Parse()
	if *zipfTheta > 0 {
		*dist, *theta = "zipf", *zipfTheta
	}
	if *hi < 0 {
		*hi = *k
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative")
	}
	if *shards > 1 && (*hotFrac <= 0 || *hotFrac >= 1) {
		return fmt.Errorf("-hot-shard-frac must be in (0,1)")
	}

	var valueDist distrib.Discrete
	switch *dist {
	case "uniform":
		valueDist = distrib.NewUniform(*dDistinct)
	case "zipf":
		valueDist = distrib.NewZipf(*dDistinct, *theta)
	case "hotset":
		valueDist = distrib.NewHotSet(*dDistinct, 0.1, 0.9)
	default:
		return fmt.Errorf("unknown -dist %q", *dist)
	}
	var lengthDist distrib.Lengths
	switch *lengths {
	case "uniform":
		lengthDist = distrib.NewUniformLen(*lo, *hi)
	case "constant":
		lengthDist = distrib.NewConstantLen(*constL)
	case "normal":
		lengthDist = distrib.NewNormalLen(float64(*lo+*hi)/2, float64(*hi-*lo)/6, *lo, *hi)
	case "bimodal":
		lengthDist = distrib.NewBimodalLen(*shortL, *longL, *pShort)
	default:
		return fmt.Errorf("unknown -lengths %q", *lengths)
	}

	col, err := workload.NewStringColumn(value.Char(*k), valueDist, lengthDist, *seed)
	if err != nil {
		return err
	}
	cols := []workload.SpecColumn{{Name: "a", Gen: col}}
	if *shards > 0 {
		// Partition-skewed shard assignment: shard 0 is hot and draws
		// -hot-shard-frac of the rows, the rest spread uniformly — the
		// workload shape sharded estimation is built for (one churning
		// shard, many quiet ones).
		var shardDist distrib.Discrete = distrib.NewUniform(1)
		if *shards > 1 {
			shardDist = distrib.NewHotSet(*shards, 1/float64(*shards), *hotFrac)
		}
		shardCol, err := workload.NewIntColumn(value.Int32(), shardDist, 0)
		if err != nil {
			return err
		}
		cols = append(cols, workload.SpecColumn{Name: "shard", Gen: shardCol})
	}
	layout := workload.LayoutShuffled
	if *clustered {
		layout = workload.LayoutClustered
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "datagen", N: *n, Seed: *seed, Layout: layout, Cols: cols,
	})
	if err != nil {
		return err
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := csvio.WriteRows(w, tab); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if *stats {
		cs, err := workload.ComputeStats(tab)
		if err != nil {
			return err
		}
		c := cs[0]
		fmt.Fprintf(os.Stderr, "n=%d distinct=%d sumNS=%d meanNS=%.3f varNS=%.3f\n",
			c.N, c.Distinct, c.SumNS, c.MeanNS(), c.VarNS())
		fmt.Fprintf(os.Stderr, "analytic CF: NS=%.6f globaldict(p=4)=%.6f\n",
			c.CFNullSuppression(*k, 1), c.CFGlobalDict(*k, 4))
		top, err := topFrequencies(tab, 10)
		if err != nil {
			return err
		}
		var cum float64
		for rank, f := range top {
			cum += f.frac
			fmt.Fprintf(os.Stderr, "top-%d: %d rows (%.2f%%, cum %.2f%%)\n",
				rank+1, f.count, 100*f.frac, 100*cum)
		}
		if *shards > 0 {
			counts := make([]int64, *shards)
			err := tab.Scan(func(_ int64, row value.Row) error {
				counts[value.DecodeInt32(row[1])]++
				return nil
			})
			if err != nil {
				return err
			}
			for s, cnt := range counts {
				fmt.Fprintf(os.Stderr, "shard %d: %d rows (%.1f%%)\n",
					s, cnt, 100*float64(cnt)/float64(*n))
			}
		}
	}
	return nil
}

// freq is one row of the observed frequency ranking.
type freq struct {
	count int64
	frac  float64
}

// topFrequencies scans the table's first column and returns the k most
// frequent values' counts and row fractions, most frequent first — the
// observed skew a -zipf-theta choice actually produced, as opposed to the
// analytic distribution it asked for.
func topFrequencies(tab *workload.Table, k int) ([]freq, error) {
	counts := make(map[string]int64)
	err := tab.Scan(func(_ int64, row value.Row) error {
		counts[string(row[0])]++
		return nil
	})
	if err != nil {
		return nil, err
	}
	all := make([]int64, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	if k > len(all) {
		k = len(all)
	}
	n := tab.NumRows()
	top := make([]freq, k)
	for i := 0; i < k; i++ {
		top[i] = freq{count: all[i], frac: float64(all[i]) / float64(n)}
	}
	return top, nil
}
