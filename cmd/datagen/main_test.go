package main

import (
	"testing"

	"samplecf/internal/distrib"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// TestTopFrequencies checks the observed-skew ranking: ordered most
// frequent first, fractions summing over the top-k to the head mass a
// zipf draw actually produced, and k clamped to the distinct count.
func TestTopFrequencies(t *testing.T) {
	col, err := workload.NewStringColumn(value.Char(12), distrib.NewZipf(50, 0.86), distrib.NewConstantLen(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "skew", N: 20_000, Seed: 7,
		Cols: []workload.SpecColumn{{Name: "a", Gen: col}},
	})
	if err != nil {
		t.Fatal(err)
	}
	top, err := topFrequencies(tab, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("got %d entries, want 10", len(top))
	}
	var cum float64
	for i, f := range top {
		if i > 0 && f.count > top[i-1].count {
			t.Fatalf("ranking not descending at %d: %d > %d", i, f.count, top[i-1].count)
		}
		if want := float64(f.count) / 20_000; f.frac != want {
			t.Errorf("rank %d frac = %v, want %v", i, f.frac, want)
		}
		cum += f.frac
	}
	// θ=0.86 over 50 values concentrates well over a quarter of the rows
	// in the top ten; a uniform draw would put exactly 20% there.
	if cum < 0.25 {
		t.Errorf("top-10 mass %.3f, want the zipf head to dominate", cum)
	}

	// k larger than the distinct count clamps.
	clamped, err := topFrequencies(tab, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(clamped) > 50 {
		t.Errorf("got %d entries from a 50-value domain", len(clamped))
	}
}
