package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, doc document) string {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func allocs(n int64) *int64 { return &n }

// TestDiffAllocsExact pins the zero-alloc gate: a 1% allocs/op growth is
// far under the 25% threshold, but any growth at all fails a benchmark
// matched by -allocs-exact.
func TestDiffAllocsExact(t *testing.T) {
	base := writeBaseline(t, document{Results: []result{
		{Name: "BenchmarkEstimateSampleSizes/r=1000-8", NsPerOp: 1000, AllocsPerOp: allocs(100)},
		{Name: "BenchmarkOther-8", NsPerOp: 1000, AllocsPerOp: allocs(100)},
	}})
	fresh := &document{Results: []result{
		{Name: "BenchmarkEstimateSampleSizes/r=1000-8", NsPerOp: 1000, AllocsPerOp: allocs(101)},
		{Name: "BenchmarkOther-8", NsPerOp: 1000, AllocsPerOp: allocs(101)},
	}}

	var out strings.Builder
	regressed, err := diff(&out, base, fresh, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("1%% allocs growth regressed without -allocs-exact:\n%s", out.String())
	}

	out.Reset()
	regressed, err = diff(&out, base, fresh, 0.25, regexp.MustCompile("BenchmarkEstimateSampleSizes"))
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("allocs growth on matched benchmark did not regress:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ALLOCS-EXACT") {
		t.Fatalf("report missing ALLOCS-EXACT marker:\n%s", out.String())
	}
	if strings.Count(out.String(), "ALLOCS-EXACT") != 1 {
		t.Fatalf("unmatched benchmark also flagged:\n%s", out.String())
	}
}

// TestDiffAllocsExactUnchanged checks equal allocs/op pass the exact gate.
func TestDiffAllocsExactUnchanged(t *testing.T) {
	base := writeBaseline(t, document{Results: []result{
		{Name: "BenchmarkEstimateSampleSizes/r=1000-8", NsPerOp: 1000, AllocsPerOp: allocs(0)},
	}})
	fresh := &document{Results: []result{
		{Name: "BenchmarkEstimateSampleSizes/r=1000-16", NsPerOp: 1100, AllocsPerOp: allocs(0)},
	}}
	var out strings.Builder
	regressed, err := diff(&out, base, fresh, 0.25, regexp.MustCompile("BenchmarkEstimateSampleSizes"))
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("unchanged allocs regressed:\n%s", out.String())
	}
}

// TestParseBenchLine covers the custom-metric and -benchmem columns.
func TestParseBenchLine(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(
		"goos: linux\npkg: samplecf/internal/engine\n" +
			"BenchmarkX-8  100  250.5 ns/op  64 B/op  2 allocs/op  12.5 rows/est\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 1 {
		t.Fatalf("parsed %d results", len(doc.Results))
	}
	r := doc.Results[0]
	if r.NsPerOp != 250.5 || *r.BytesPerOp != 64 || *r.AllocsPerOp != 2 || r.Extra["rows/est"] != 12.5 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Package != "samplecf/internal/engine" {
		t.Fatalf("package %q", r.Package)
	}
}

// TestParseProcs covers the parallelism annotations: the per-result procs
// parsed from go test's "-N" name suffix (1 when a -cpu 1 run omits it)
// and the document-level GOMAXPROCS of the recording machine.
func TestParseProcs(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(
		"BenchmarkA-8  100  250.5 ns/op\n" +
			"BenchmarkB  100  99.5 ns/op\n" +
			"BenchmarkC/sub=2-16  100  10.0 ns/op\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("parsed %d results", len(doc.Results))
	}
	for i, want := range []int{8, 1, 16} {
		if got := doc.Results[i].Procs; got != want {
			t.Errorf("result %d (%s): procs = %d, want %d", i, doc.Results[i].Name, got, want)
		}
	}
	if doc.GoMaxProcs < 1 {
		t.Errorf("document gomaxprocs = %d, want >= 1", doc.GoMaxProcs)
	}
}
