// Command benchjson converts `go test -bench` text output on stdin into
// a JSON document on stdout, so benchmark results can be archived as
// machine-readable artifacts (see `make bench`, which writes
// BENCH_engine.json) and diffed across commits to track the perf
// trajectory of the hot paths.
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson > BENCH.json
//
// With -diff, the fresh run on stdin is compared against a committed
// baseline instead of re-emitted: every benchmark present in both gets a
// ns/op and allocs/op delta report on stdout, and the exit status is 1 if
// any regresses by more than -threshold (default 25%). `make bench-diff`
// wires this against BENCH_engine.json; CI runs it as a non-blocking
// report step (single-iteration CI runs are too noisy to gate merges on).
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson -diff BENCH_engine.json
//
// -allocs-exact REGEX tightens the allocation gate for matching benchmarks:
// any allocs/op growth at all fails, regardless of -threshold. `make
// bench-diff` applies it to BenchmarkEstimateSampleSizes, whose zero-alloc
// steady state is a hard contract of the estimation hot path.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"slices"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Procs is the GOMAXPROCS the benchmark ran under, parsed from the
	// "-N" name suffix go test appends (1 when absent). Concurrency
	// benchmarks mean nothing without it — a regression report comparing a
	// -cpu 1 run against a -cpu 8 baseline is comparing different machines.
	Procs int `json:"procs"`
	// BytesPerOp/AllocsPerOp are present with -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom metrics (b.ReportMetric), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// document is the full output.
type document struct {
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// GoMaxProcs records the recording machine's GOMAXPROCS (benchjson runs
	// in the same pipeline, on the same box, as the `go test -bench` whose
	// output it parses), so an archived baseline names the parallelism
	// environment it was measured in.
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	Results    []result `json:"results"`
}

func main() {
	var (
		diffPath    = flag.String("diff", "", "baseline JSON to compare the fresh run against (report mode)")
		threshold   = flag.Float64("threshold", 0.25, "relative ns/op or allocs/op growth that counts as a regression in -diff mode")
		allocsExact = flag.String("allocs-exact", "", "regexp of benchmarks whose allocs/op must not grow AT ALL in -diff mode (zero-alloc guarantees; the ns/op threshold still applies)")
	)
	flag.Parse()

	var exactRe *regexp.Regexp
	if *allocsExact != "" {
		re, err := regexp.Compile(*allocsExact)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -allocs-exact: %v\n", err)
			os.Exit(1)
		}
		exactRe = re
	}

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *diffPath != "" {
		regressed, err := diff(os.Stdout, *diffPath, doc, *threshold, exactRe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// gomaxprocsSuffix strips the "-N" GOMAXPROCS suffix go test appends to
// benchmark names, so baselines recorded on machines with different core
// counts still line up.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalizeName(name string) string { return gomaxprocsSuffix.ReplaceAllString(name, "") }

// diff compares the fresh results against the baseline document at path and
// reports per-benchmark deltas. It returns true when any benchmark's ns/op
// or allocs/op grew by more than threshold, or — for benchmarks matching
// exactRe — when allocs/op grew at all (the zero-alloc contract).
func diff(w io.Writer, path string, fresh *document, threshold float64, exactRe *regexp.Regexp) (bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var base document
	if err := json.Unmarshal(raw, &base); err != nil {
		return false, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	baseBy := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		baseBy[normalizeName(r.Name)] = r
	}

	type line struct {
		name      string
		text      string
		regressed bool
	}
	var lines []line
	regressed := false
	for _, cur := range fresh.Results {
		name := normalizeName(cur.Name)
		old, ok := baseBy[name]
		if !ok {
			lines = append(lines, line{name: name, text: fmt.Sprintf("%-55s NEW  %12.0f ns/op", name, cur.NsPerOp)})
			continue
		}
		nsDelta := relDelta(old.NsPerOp, cur.NsPerOp)
		text := fmt.Sprintf("%-55s ns/op %12.0f -> %12.0f (%+6.1f%%)", name, old.NsPerOp, cur.NsPerOp, 100*nsDelta)
		bad := nsDelta > threshold
		if old.AllocsPerOp != nil && cur.AllocsPerOp != nil {
			aDelta := relDelta(float64(*old.AllocsPerOp), float64(*cur.AllocsPerOp))
			text += fmt.Sprintf("  allocs %8d -> %8d (%+6.1f%%)", *old.AllocsPerOp, *cur.AllocsPerOp, 100*aDelta)
			bad = bad || aDelta > threshold
			if exactRe != nil && exactRe.MatchString(name) && *cur.AllocsPerOp > *old.AllocsPerOp {
				text += "  ALLOCS-EXACT"
				bad = true
			}
		}
		if bad {
			text += "  REGRESSION"
			regressed = true
		}
		lines = append(lines, line{name: name, text: text, regressed: bad})
	}
	slices.SortFunc(lines, func(a, b line) int { return strings.Compare(a.name, b.name) })
	for _, l := range lines {
		fmt.Fprintln(w, l.text)
	}
	if regressed {
		fmt.Fprintf(w, "\nFAIL: at least one benchmark regressed >%.0f%% vs %s\n", 100*threshold, path)
	} else {
		fmt.Fprintf(w, "\nOK: no benchmark regressed >%.0f%% vs %s\n", 100*threshold, path)
	}
	return regressed, nil
}

// relDelta returns (new-old)/old, treating a zero baseline as no change.
func relDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

// parse consumes go test -bench output line by line.
func parse(sc *bufio.Scanner) (*document, error) {
	doc := &document{GoMaxProcs: runtime.GOMAXPROCS(0), Results: []result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			r.Package = pkg
			doc.Results = append(doc.Results, r)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one "BenchmarkX-8  N  V unit  [V unit ...]" line.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters, Procs: 1}
	if m := gomaxprocsSuffix.FindString(fields[0]); m != "" {
		if p, err := strconv.Atoi(m[1:]); err == nil {
			r.Procs = p
		}
	}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := int64(v)
			r.BytesPerOp = &b
		case "allocs/op":
			a := int64(v)
			r.AllocsPerOp = &a
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}
