// Command benchjson converts `go test -bench` text output on stdin into
// a JSON document on stdout, so benchmark results can be archived as
// machine-readable artifacts (see `make bench`, which writes
// BENCH_engine.json) and diffed across commits to track the perf
// trajectory of the hot paths.
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present with -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom metrics (b.ReportMetric), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// document is the full output.
type document struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse consumes go test -bench output line by line.
func parse(sc *bufio.Scanner) (*document, error) {
	doc := &document{Results: []result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			r.Package = pkg
			doc.Results = append(doc.Results, r)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one "BenchmarkX-8  N  V unit  [V unit ...]" line.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := int64(v)
			r.BytesPerOp = &b
		case "allocs/op":
			a := int64(v)
			r.AllocsPerOp = &a
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}
