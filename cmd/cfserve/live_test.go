package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// liveSpec is a small live-table wire spec.
func liveSpec(name string, n int) string {
	return fmt.Sprintf(`{
		"name": %q, "n": %d, "seed": 3, "live": true,
		"cols": [
			{"name": "city", "type": "char:16", "dist": "uniform:40", "len": "uniform:4:10", "seed": 1},
			{"name": "qty",  "type": "int32",   "dist": "uniform:500"}
		]
	}`, name, n)
}

// doJSON issues a request with a JSON body and decodes the response.
func doJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s %s response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func estimateBody(table string) string {
	return fmt.Sprintf(`{"table": %q, "columns": ["city"], "codec": "nullsuppression", "sample_rows": 300, "seed": 9}`, table)
}

// TestLiveTableMutationInvalidatesEstimates is the end-to-end proof of
// the epoch contract over HTTP: an insert into a live table invalidates
// its cached estimate (the next one recomputes), while an untouched table
// keeps serving from cache.
func TestLiveTableMutationInvalidatesEstimates(t *testing.T) {
	ts, _ := newTestServer(t)

	var created map[string]any
	if code := postJSON(t, ts.URL+"/tables", liveSpec("hot", 2000), &created); code != http.StatusCreated {
		t.Fatalf("create hot: %d %v", code, created)
	}
	if created["live"] != true {
		t.Fatalf("created = %v", created)
	}
	if code := postJSON(t, ts.URL+"/tables", liveSpec("cold", 2000), nil); code != http.StatusCreated {
		t.Fatalf("create cold failed")
	}

	est := func(table string) estimateResultJSON {
		var res estimateResultJSON
		if code := postJSON(t, ts.URL+"/estimate", estimateBody(table), &res); code != http.StatusOK {
			t.Fatalf("estimate %s: status %d (%+v)", table, code, res)
		}
		return res
	}

	// Warm both tables, then confirm repeats hit the cache.
	first := est("hot")
	if first.CacheHit {
		t.Fatal("first hot estimate claims a cache hit")
	}
	est("cold")
	if !est("hot").CacheHit || !est("cold").CacheHit {
		t.Fatal("repeat estimates did not hit the cache")
	}

	// Mutate the hot table through the API.
	var ins map[string]any
	body := `{"rows": [["atlantis", 1], ["atlantis", 2], ["atlantis", 3]]}`
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/hot/rows", body, &ins); code != http.StatusOK {
		t.Fatalf("insert: %d %v", code, ins)
	}
	if ins["inserted"].(float64) != 3 || ins["rows"].(float64) != 2003 {
		t.Fatalf("insert response = %v", ins)
	}

	// The stale estimate must be recomputed; the untouched table must
	// still serve from cache.
	after := est("hot")
	if after.CacheHit {
		t.Fatal("estimate after insert served the stale cache entry")
	}
	if !est("cold").CacheHit {
		t.Fatal("untouched table lost its cache entry")
	}
	if !est("hot").CacheHit {
		t.Fatal("post-mutation estimate did not re-enter the cache")
	}

	// Delete through the API: epoch bumps again, estimate recomputes.
	var del map[string]any
	if code := doJSON(t, http.MethodDelete, ts.URL+"/tables/hot/rows",
		`{"column": "city", "equals": "atlantis"}`, &del); code != http.StatusOK {
		t.Fatalf("delete: %d %v", code, del)
	}
	if del["deleted"].(float64) != 3 {
		t.Fatalf("delete response = %v", del)
	}
	if est("hot").CacheHit {
		t.Fatal("estimate after delete served the stale cache entry")
	}
}

func TestLiveTableEndpointsValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	if code := postJSON(t, ts.URL+"/tables", liveSpec("t", 100), nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}

	// Mutating an immutable table is rejected (the demo table is one).
	var out map[string]any
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/demo/rows", `{"rows": [["x", "y", 1]]}`, &out); code != http.StatusNotFound {
		t.Fatalf("mutating immutable table: %d %v", code, out)
	}
	// Unknown table.
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/nope/rows", `{"rows": [["x", 1]]}`, nil); code != http.StatusNotFound {
		t.Fatalf("unknown table accepted: %d", code)
	}
	// Arity mismatch.
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/t/rows", `{"rows": [["only-one"]]}`, &out); code != http.StatusBadRequest {
		t.Fatalf("arity mismatch accepted: %d %v", code, out)
	}
	// A malformed row anywhere in the batch must reject the WHOLE batch:
	// the valid first row is not applied.
	var tables map[string][]map[string]any
	getJSON(t, ts.URL+"/tables", &tables)
	rowsBefore := tableRows(t, tables, "t")
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/t/rows", `{"rows": [["ok", 1], ["bad"]]}`, nil); code != http.StatusBadRequest {
		t.Fatalf("partially malformed batch accepted: %d", code)
	}
	getJSON(t, ts.URL+"/tables", &tables)
	if got := tableRows(t, tables, "t"); got != rowsBefore {
		t.Fatalf("malformed batch partially applied: %v -> %v rows", rowsBefore, got)
	}
	// Type mismatch.
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/t/rows", `{"rows": [[42, 42]]}`, nil); code != http.StatusBadRequest {
		t.Fatalf("type mismatch accepted: %d", code)
	}
	// Delete with unknown column.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/tables/t/rows", `{"column": "zz", "equals": "x"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown delete column accepted: %d", code)
	}
	// Empty rows.
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/t/rows", `{"rows": []}`, nil); code != http.StatusBadRequest {
		t.Fatalf("empty rows accepted: %d", code)
	}
}

// tableRows extracts a table's row count from a GET /tables response.
func tableRows(t *testing.T, resp map[string][]map[string]any, name string) float64 {
	t.Helper()
	for _, ti := range resp["tables"] {
		if ti["name"] == name {
			return ti["rows"].(float64)
		}
	}
	t.Fatalf("table %q not listed", name)
	return 0
}

func TestDropTableEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	if code := postJSON(t, ts.URL+"/tables", liveSpec("gone", 500), nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	if code := postJSON(t, ts.URL+"/estimate", estimateBody("gone"), nil); code != http.StatusOK {
		t.Fatal("estimate before drop failed")
	}
	var out map[string]any
	if code := doJSON(t, http.MethodDelete, ts.URL+"/tables/gone", "", &out); code != http.StatusOK {
		t.Fatalf("drop: %d %v", code, out)
	}
	// Gone from the registry: estimates and mutations 404; double drop 404.
	if code := postJSON(t, ts.URL+"/estimate", estimateBody("gone"), nil); code != http.StatusNotFound {
		t.Fatalf("estimate after drop: %d", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/gone/rows", `{"rows": [["x", 1]]}`, nil); code != http.StatusNotFound {
		t.Fatalf("insert after drop: %d", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/tables/gone", "", nil); code != http.StatusNotFound {
		t.Fatalf("double drop: %d", code)
	}
	// The name is reusable.
	if code := postJSON(t, ts.URL+"/tables", liveSpec("gone", 100), nil); code != http.StatusCreated {
		t.Fatalf("recreate after drop: %d", code)
	}
}

// TestLiveTableMaintainedSampleServesDraws checks the /stats surface
// shows the maintained-sample fast path at work for live tables.
func TestLiveTableMaintainedSampleServesDraws(t *testing.T) {
	ts, _ := newTestServer(t)
	if code := postJSON(t, ts.URL+"/tables", liveSpec("fast", 3000), nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	if code := postJSON(t, ts.URL+"/estimate", estimateBody("fast"), nil); code != http.StatusOK {
		t.Fatal("estimate failed")
	}
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatal("stats failed")
	}
	if stats["maintained_hits"].(float64) < 1 {
		t.Fatalf("maintained_hits = %v, want >= 1", stats["maintained_hits"])
	}
}
