package main

// Live-table support: tables materialized in the embedded storage engine
// (internal/db) rather than as immutable row slices. Live tables are full
// catalog citizens — heap-paged storage, version epochs bumped on every
// mutation, a maintained backing sample — so estimates served over HTTP
// always reflect the current data, cached results invalidate in O(1) on
// the first request after a mutation, and untouched tables keep serving
// from cache.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"samplecf/internal/catalog"
	"samplecf/internal/db"
	"samplecf/internal/heap"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// liveTable is what the mutation endpoints need from a table: both plain
// db tables and sharded tables qualify, so one handler serves either.
type liveTable interface {
	catalog.Table
	Insert(row value.Row) (heap.RID, error)
	DeleteWhere(column string, val []byte, limit int) (int, error)
}

var (
	_ liveTable = (*db.Table)(nil)
	_ liveTable = (*db.ShardedTable)(nil)
)

// buildLiveTable creates a db-backed table from the wire spec and seeds
// it with the spec's n generated rows (n = 0 starts empty).
func (s *server) buildLiveTable(spec tableSpecJSON) (*db.Table, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("table name is required")
	}
	if spec.N < 0 {
		return nil, fmt.Errorf("table %q: n must be non-negative", spec.Name)
	}
	cols := make([]workload.SpecColumn, 0, len(spec.Cols))
	for _, c := range spec.Cols {
		gen, err := buildColumn(c)
		if err != nil {
			return nil, fmt.Errorf("table %q, column %q: %w", spec.Name, c.Name, err)
		}
		cols = append(cols, workload.SpecColumn{Name: c.Name, Gen: gen})
	}
	wspec := workload.Spec{Name: spec.Name, N: spec.N, Seed: spec.Seed, Cols: cols}
	schema, err := wspec.Schema()
	if err != nil {
		return nil, err
	}
	tab, err := s.db.CreateTable(spec.Name, schema)
	if err != nil {
		return nil, err
	}
	if spec.N > 0 {
		// Generate the seed rows through the same workload vocabulary the
		// immutable path uses, then insert them through the live table so
		// epochs, indexes, and the maintained sample all see them.
		gen, err := workload.NewVirtual(wspec)
		if err != nil {
			_ = s.db.DropTable(spec.Name)
			return nil, err
		}
		err = gen.Scan(func(_ int64, row value.Row) error {
			_, err := tab.Insert(row)
			return err
		})
		if err != nil {
			_ = s.db.DropTable(spec.Name)
			return nil, fmt.Errorf("table %q: seed rows: %w", spec.Name, err)
		}
	}
	return tab, nil
}

// buildLiveShardedTable creates a partitioned db-backed table from the
// wire spec: each shard owns its own storage, maintained sample, and
// epoch. Seed rows route through the partitioner exactly like later
// inserts.
func (s *server) buildLiveShardedTable(spec tableSpecJSON) (*db.ShardedTable, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("table name is required")
	}
	if spec.N < 0 {
		return nil, fmt.Errorf("table %q: n must be non-negative", spec.Name)
	}
	cols := make([]workload.SpecColumn, 0, len(spec.Cols))
	for _, c := range spec.Cols {
		gen, err := buildColumn(c)
		if err != nil {
			return nil, fmt.Errorf("table %q, column %q: %w", spec.Name, c.Name, err)
		}
		cols = append(cols, workload.SpecColumn{Name: c.Name, Gen: gen})
	}
	wspec := workload.Spec{Name: spec.Name, N: spec.N, Seed: spec.Seed, Cols: cols}
	schema, err := wspec.Schema()
	if err != nil {
		return nil, err
	}
	by := spec.ShardBy
	if by == "" {
		by = db.ShardByHash
	}
	pos, ok := schema.ColumnIndex(spec.ShardColumn)
	if !ok {
		return nil, fmt.Errorf("table %q: no shard column %q", spec.Name, spec.ShardColumn)
	}
	bounds := make([][]byte, len(spec.ShardBounds))
	for i, raw := range spec.ShardBounds {
		b, err := payloadFromJSON(schema.Column(pos).Type, raw)
		if err != nil {
			return nil, fmt.Errorf("table %q: shard bound %d: %w", spec.Name, i, err)
		}
		bounds[i] = b
	}
	st, err := s.db.CreateShardedTable(spec.Name, schema, db.ShardSpec{
		Shards: spec.Shards, Column: spec.ShardColumn, By: by, Bounds: bounds,
	})
	if err != nil {
		return nil, err
	}
	if spec.N > 0 {
		gen, err := workload.NewVirtual(wspec)
		if err != nil {
			_ = s.db.DropTable(spec.Name)
			return nil, err
		}
		err = gen.Scan(func(_ int64, row value.Row) error {
			_, err := st.Insert(row)
			return err
		})
		if err != nil {
			_ = s.db.DropTable(spec.Name)
			return nil, fmt.Errorf("table %q: seed rows: %w", spec.Name, err)
		}
	}
	return st, nil
}

// shardEpochs returns the per-shard epoch vector when t is sharded, nil
// otherwise — mutation responses include it so clients can observe which
// shard a write invalidated.
func shardEpochs(t catalog.Table) []uint64 {
	if sh, ok := t.(catalog.Sharded); ok {
		return sh.EpochVector()
	}
	return nil
}

// insertRowsJSON is the body of POST /tables/{table}/rows: rows as arrays
// of column values in schema order (strings for character columns,
// numbers for integer columns).
type insertRowsJSON struct {
	Rows [][]json.RawMessage `json:"rows"`
}

// deleteRowsJSON is the body of DELETE /tables/{table}/rows: delete rows
// whose column equals the given value, up to limit (0 = all matches).
type deleteRowsJSON struct {
	Column string          `json:"column"`
	Equals json.RawMessage `json:"equals"`
	Limit  int             `json:"limit,omitempty"`
}

// handleInsertRows appends rows to a live table; the table's epoch after
// the batch is returned so clients can observe the invalidation point.
func (s *server) handleInsertRows(w http.ResponseWriter, r *http.Request) {
	tab, err := s.lookupLive(r.PathValue("table"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	var req insertRowsJSON
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Rows) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("rows are required"))
		return
	}
	// Decode the whole batch before touching the table, so a malformed
	// row rejects the request without applying anything.
	rows := make([]value.Row, len(req.Rows))
	for i, wire := range req.Rows {
		row, err := rowFromJSON(tab.Schema(), wire)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("row %d: %w", i, err))
			return
		}
		rows[i] = row
	}
	for i, row := range rows {
		if _, err := tab.Insert(row); err != nil {
			httpError(w, http.StatusUnprocessableEntity,
				fmt.Errorf("row %d: %w (%d row(s) before it were applied)", i, err, i))
			return
		}
	}
	out := map[string]any{
		"table":    tab.Name(),
		"inserted": len(req.Rows),
		"rows":     tab.NumRows(),
		"epoch":    tab.Epoch(),
	}
	if ev := shardEpochs(tab); ev != nil {
		out["shard_epochs"] = ev
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDeleteRows deletes rows matching a column-equality predicate.
func (s *server) handleDeleteRows(w http.ResponseWriter, r *http.Request) {
	tab, err := s.lookupLive(r.PathValue("table"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	var req deleteRowsJSON
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Column == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("column is required"))
		return
	}
	pos, ok := tab.Schema().ColumnIndex(req.Column)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Errorf("no column %q", req.Column))
		return
	}
	val, err := payloadFromJSON(tab.Schema().Column(pos).Type, req.Equals)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("equals: %w", err))
		return
	}
	deleted, err := tab.DeleteWhere(req.Column, val, req.Limit)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := map[string]any{
		"table":   tab.Name(),
		"deleted": deleted,
		"rows":    tab.NumRows(),
		"epoch":   tab.Epoch(),
	}
	if ev := shardEpochs(tab); ev != nil {
		out["shard_epochs"] = ev
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDropTable removes a table from the registry; live tables are also
// dropped from the database, so retained estimates fail loudly rather
// than serving orphaned storage.
func (s *server) handleDropTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("table")
	t, ok := s.cat.Lookup(name)
	if !ok || s.cat.Drop(name) != nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	if _, live := t.(liveTable); live {
		if err := s.db.DropTable(name); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"table": name, "dropped": true})
}

// rowFromJSON converts one wire row into a value.Row under schema.
func rowFromJSON(schema *value.Schema, wire []json.RawMessage) (value.Row, error) {
	if len(wire) != schema.NumColumns() {
		return nil, fmt.Errorf("got %d values, schema has %d columns", len(wire), schema.NumColumns())
	}
	row := make(value.Row, len(wire))
	for i, raw := range wire {
		payload, err := payloadFromJSON(schema.Column(i).Type, raw)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", schema.Column(i).Name, err)
		}
		row[i] = payload
	}
	return row, nil
}

// payloadFromJSON converts one JSON value into a column payload: strings
// for character types, numbers for integer types.
func payloadFromJSON(typ value.Type, raw json.RawMessage) ([]byte, error) {
	switch typ.Kind {
	case value.KindChar, value.KindVarChar:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("want a string for %s: %w", typ, err)
		}
		return value.StringValue(s), nil
	case value.KindInt32:
		var v int32
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("want a 32-bit integer for %s: %w", typ, err)
		}
		return value.IntValue(v), nil
	case value.KindInt64:
		var v int64
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("want a 64-bit integer for %s: %w", typ, err)
		}
		return value.Int64Value(v), nil
	default:
		return nil, fmt.Errorf("unsupported column type %s", typ)
	}
}
