// Command cfserve is the long-running what-if estimation service: SampleCF
// behind HTTP/JSON, backed by the concurrent estimation engine (worker
// pool, shared-sample batching, epoch-keyed LRU result cache) and the
// embedded storage engine for live, mutable tables. It is the shape a
// physical-design tool's estimation tier takes in production — many
// concurrent clients asking "how big would this index be under that
// codec?" against tables that keep changing underneath them.
//
// Start it, register a table, and ask:
//
//	cfserve -addr :8080 -demo
//	curl localhost:8080/tables
//	curl -X POST localhost:8080/whatif -d '{
//	  "table": "demo",
//	  "candidates": [
//	    {"columns": ["region"], "codec": "nullsuppression"},
//	    {"columns": ["region"], "codec": "pagedict+ns"}
//	  ],
//	  "fraction": 0.01, "seed": 42
//	}'
//
// Tables registered with "live": true are materialized in the embedded
// storage engine (heap pages, version epochs, a maintained sample) and
// accept mutations:
//
//	curl -X POST localhost:8080/tables/sales/rows -d '{"rows": [["west", 7]]}'
//	curl -X DELETE localhost:8080/tables/sales/rows -d '{"column": "region", "equals": "west"}'
//
// Estimates always reflect the current epoch: a mutation invalidates
// cached results for that table in O(1) (the epoch in the cache key
// changes), while untouched tables keep serving hits.
//
// Endpoints: GET /healthz, /stats, /metrics, /codecs, /tables; POST
// /tables, /tables/{t}/rows, /estimate, /whatif, /advise; DELETE
// /tables/{t}, /tables/{t}/rows. See docs/cfserve.md for the full API.
// Every response carries X-Request-ID and a Server-Timing header; requests
// slower than -slow-trace dump their span tree as structured trace JSON.
// The server drains in-flight requests and exits cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"samplecf/internal/engine"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintf(os.Stderr, "cfserve: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole service lifecycle: flags, engine, listener, drain. It
// takes its argv and an optional ready channel (sent the bound address
// once the listener is up) so the shutdown e2e test can run the real
// main path — signal handling included — inside the test process.
func run(args []string, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("cfserve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "estimation worker goroutines (0 = GOMAXPROCS)")
		cache        = fs.Int("cache", 1024, "LRU result cache entries (negative disables)")
		demo         = fs.Bool("demo", false, "preload a demo table named \"demo\"")
		drain        = fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		maxRows      = fs.Int64("max-rows", defaultMaxTableRows, "per-table row limit for POST /tables")
		maxInflight  = fs.Int("max-inflight", 0, "reject non-ops requests beyond this many in flight with 503 (0 = unlimited)")
		pprofMode    = fs.String("pprof", "local", "/debug/pprof/ exposure: local (loopback clients only), all, or off")
		mutexFrac    = fs.Int("mutex-profile-fraction", 0, "sample 1/n of mutex contention events for /debug/pprof/mutex (0 disables; inert with -pprof off)")
		blockRate    = fs.Int("block-profile-rate", 0, "sample blocking events of at least n ns for /debug/pprof/block (0 disables; inert with -pprof off)")
		slowTrace    = fs.Duration("slow-trace", time.Second, "dump the span tree of requests at least this slow as trace JSON (0 disables)")
		logJSON      = fs.Bool("log-json", false, "emit the access log as JSON lines instead of logfmt-style text")
		allowPartial = fs.Bool("allow-partial", false, "serve degraded estimates from surviving shards when some shards fail (per-request allow_partial overrides off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *pprofMode {
	case "local", "all", "off":
	default:
		return fmt.Errorf("invalid -pprof %q (want local, all, or off)", *pprofMode)
	}
	// Contention profiling piggybacks on the -pprof gate: the runtime
	// samplers cost a little on every contended lock, so they only arm when
	// the endpoint that can read them is actually exposed.
	if *pprofMode != "off" {
		if *mutexFrac > 0 {
			runtime.SetMutexProfileFraction(*mutexFrac)
		}
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
		}
	}
	eng := engine.New(engine.Config{Workers: *workers, CacheEntries: *cache})
	defer eng.Close()
	srv := newServer(eng)
	srv.pprofMode = *pprofMode
	srv.maxInflight = *maxInflight
	srv.slowTrace = *slowTrace
	srv.allowPartial = *allowPartial
	if *logJSON {
		srv.logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		srv.logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if *maxRows > 0 {
		srv.maxTableRows = *maxRows
	}
	if *demo {
		t, err := buildTable(demoSpec())
		if err != nil {
			return fmt.Errorf("demo table: %w", err)
		}
		if err := srv.register(t); err != nil {
			return err
		}
		log.Printf("registered demo table %q (%d rows)", t.Name(), t.NumRows())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("cfserve listening on %s (workers=%d, cache capacity %d)", ln.Addr(), *workers, *cache)
	if ready != nil {
		ready <- ln.Addr()
	}

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received; draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("drained cleanly")
	return <-errCh
}

// demoSpec is the table -demo preloads: skewed strings plus a narrow int,
// the mix the paper's experiments use.
func demoSpec() tableSpecJSON {
	return tableSpecJSON{
		Name: "demo", N: 100_000, Seed: 1,
		Cols: []columnSpecJSON{
			{Name: "region", Type: "char:24", Dist: "uniform:50", Len: "uniform:4:12", Seed: 1},
			{Name: "product", Type: "char:40", Dist: "zipf:8000:0.7", Len: "uniform:10:30", Seed: 2},
			{Name: "qty", Type: "int32", Dist: "uniform:500"},
		},
	}
}
