package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"samplecf/internal/catalog"
	"samplecf/internal/compress"
	"samplecf/internal/db"
	"samplecf/internal/engine"
	"samplecf/internal/obs"
	"samplecf/internal/physdesign"
)

// defaultMaxTableRows bounds POST /tables materialization: registered
// tables live in memory for the life of the service, so an unbounded n in
// a 200-byte request body must not be able to OOM it.
const defaultMaxTableRows = 10_000_000

// server holds the estimation engine, the live database, and the table
// catalog behind the HTTP handlers. The catalog registers immutable
// synthetic tables and live db-backed tables side by side — estimation
// endpoints do not care which is which, because the engine keys
// everything on (instance id, version epoch). All state is safe for
// concurrent requests: the catalog, engine, and database are
// concurrency-safe by construction.
type server struct {
	eng *engine.Engine
	db  *db.Database
	cat *catalog.Catalog

	// registry is the engine's obs registry: the server's HTTP instruments
	// register alongside the engine's, and GET /metrics serves both it and
	// the process-wide default registry.
	registry *obs.Registry
	// logger receives the access log and slow-request dumps. Defaults to
	// discard; main wires a real handler.
	logger *slog.Logger
	// slowTrace is the slow-request threshold: requests taking at least
	// this long dump their span tree as structured trace JSON to the log
	// (0 disables; the -slow-trace flag sets it).
	slowTrace time.Duration

	// shardCount and shardEpoch are per-table gauges refreshed at scrape
	// time from the catalog: shard fan-out per sharded table, and the
	// version epoch of each shard (labeled "table/shard").
	shardCount *obs.GaugeVec
	shardEpoch *obs.GaugeVec

	// maxTableRows caps the n of a registered table (default
	// defaultMaxTableRows; the -max-rows flag overrides).
	maxTableRows int64

	// maxInflight caps concurrently served non-ops requests; excess
	// requests get an immediate 503 with Retry-After (0 = unlimited; the
	// -max-inflight flag sets it). See admission.go.
	maxInflight int

	// pprofMode gates /debug/pprof/: "local" (default) serves profiles to
	// loopback clients only, "all" to anyone, "off" not at all.
	pprofMode string

	// allowPartial is the service-wide degraded-serving default (the
	// -allow-partial flag): when set, every estimate request tolerates
	// partial shard failures unless it says otherwise. A request's own
	// allow_partial:true still opts in per call when the flag is off.
	allowPartial bool

	started time.Time
}

func newServer(eng *engine.Engine) *server {
	reg := eng.Registry()
	return &server{
		eng:      eng,
		db:       db.New(0),
		cat:      catalog.New(),
		registry: reg,
		logger:   slog.New(slog.DiscardHandler),
		shardCount: reg.GaugeVec("samplecf_table_shards",
			"Shard fan-out of each sharded table.", "table"),
		shardEpoch: reg.GaugeVec("samplecf_table_shard_epoch",
			"Version epoch of each shard, labeled table/shard.", "shard"),
		maxTableRows: defaultMaxTableRows,
		started:      time.Now(),
	}
}

// refreshShardGauges re-reads every sharded table's shard count and
// per-shard epochs into the gauge vectors. Called at scrape time
// (/metrics, /stats) so the exposition reflects the current catalog
// without mutation hooks. Entries for dropped tables keep their last
// value — gauge families are append-only — which scrapers tolerate.
func (s *server) refreshShardGauges() {
	for _, name := range s.cat.Names() {
		t, ok := s.cat.Lookup(name)
		if !ok {
			continue
		}
		sh, ok := t.(catalog.Sharded)
		if !ok {
			continue
		}
		s.shardCount.With(name).Set(int64(sh.NumShards()))
		for i, e := range sh.EpochVector() {
			s.shardEpoch.With(fmt.Sprintf("%s/%d", name, i)).Set(int64(e))
		}
	}
}

// handler builds the route table, wrapped in the observability middleware
// (request IDs, tracing, HTTP metrics, access log, Server-Timing).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /codecs", s.handleCodecs)
	mux.HandleFunc("GET /tables", s.handleListTables)
	mux.HandleFunc("POST /tables", s.handleCreateTable)
	mux.HandleFunc("POST /tables/{table}/rows", s.handleInsertRows)
	mux.HandleFunc("DELETE /tables/{table}/rows", s.handleDeleteRows)
	mux.HandleFunc("DELETE /tables/{table}", s.handleDropTable)
	mux.HandleFunc("POST /estimate", s.handleEstimate)
	mux.HandleFunc("POST /whatif", s.handleWhatIf)
	mux.HandleFunc("POST /advise", s.handleAdvise)
	s.mountPprof(mux)
	return s.middleware(s.admission(mux))
}

// mountPprof exposes the runtime profiler under /debug/pprof/ so hot-path
// CPU and allocation profiles can be captured from a running service
// (`go tool pprof http://host:port/debug/pprof/profile`). Access follows
// s.pprofMode: profiles reveal internals, so the default only answers
// clients connecting from a loopback address.
func (s *server) mountPprof(mux *http.ServeMux) {
	mode := s.pprofMode
	if mode == "" {
		mode = "local"
	}
	if mode == "off" {
		return
	}
	guard := func(h http.HandlerFunc) http.HandlerFunc {
		if mode == "all" {
			return h
		}
		return func(w http.ResponseWriter, r *http.Request) {
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil || !net.ParseIP(host).IsLoopback() {
				http.Error(w, "pprof is limited to loopback clients (run with -pprof all to open it)", http.StatusForbidden)
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("GET /debug/pprof/", guard(pprof.Index))
	mux.HandleFunc("GET /debug/pprof/cmdline", guard(pprof.Cmdline))
	mux.HandleFunc("GET /debug/pprof/profile", guard(pprof.Profile))
	mux.HandleFunc("GET /debug/pprof/symbol", guard(pprof.Symbol))
	mux.HandleFunc("GET /debug/pprof/trace", guard(pprof.Trace))
}

// register adds a table to the catalog (used by handlers and -demo).
func (s *server) register(t engine.Table) error {
	return s.cat.Register(t)
}

// lookup resolves a registered table.
func (s *server) lookup(name string) (engine.Table, error) {
	t, ok := s.cat.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("no table %q (register it via POST /tables)", name)
	}
	return t, nil
}

// lookupLive resolves a registered table that supports mutation (plain or
// sharded db-backed tables).
func (s *server) lookupLive(name string) (liveTable, error) {
	t, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	live, ok := t.(liveTable)
	if !ok {
		return nil, fmt.Errorf("table %q is immutable (create it with \"live\": true to mutate)", name)
	}
	return live, nil
}

// --- wire types ---------------------------------------------------------------

// candidateJSON is one (columns, codec) what-if candidate.
type candidateJSON struct {
	Name    string   `json:"name,omitempty"`
	Columns []string `json:"columns,omitempty"`
	Codec   string   `json:"codec,omitempty"` // empty = uncompressed (advise only)
}

type estimateRequestJSON struct {
	Table      string   `json:"table"`
	Columns    []string `json:"columns,omitempty"`
	Codec      string   `json:"codec"`
	Fraction   float64  `json:"fraction,omitempty"`
	SampleRows int64    `json:"sample_rows,omitempty"`
	Seed       uint64   `json:"seed,omitempty"`
	PageSize   int      `json:"page_size,omitempty"`
	// Stratified sampling: strata cuts the index key domain into up to that
	// many ranges, each sampled by its own stream (0 disables; 1 is the
	// degenerate single stratum). Composes with target_error: the adaptive
	// loop then refines the strata whose variance contribution dominates.
	Strata int `json:"strata,omitempty"`
	// Adaptive estimation: targetError asks for CF within ±targetError at
	// the given confidence (default 0.95), spending at most maxSampleRows
	// (default: the table size). fraction/sample_rows then seed only the
	// first round.
	TargetError   float64 `json:"target_error,omitempty"`
	Confidence    float64 `json:"confidence,omitempty"`
	MaxSampleRows int64   `json:"max_sample_rows,omitempty"`
	// AllowPartial tolerates shard failures on partitioned tables: the
	// estimate is merged from the surviving shards with renormalized
	// stratified weights and marked degraded, instead of failing the
	// request. Ignored on unsharded tables.
	AllowPartial bool `json:"allow_partial,omitempty"`
	// TimeoutMS bounds the estimation; exceeding it answers 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type estimateResultJSON struct {
	Columns           []string `json:"columns,omitempty"`
	Codec             string   `json:"codec,omitempty"`
	CF                float64  `json:"cf"`
	SavingsPct        float64  `json:"savings_pct"`
	SampleRows        int64    `json:"sample_rows"`
	SampleDistinct    int64    `json:"sample_distinct"`
	CompressedBytes   int64    `json:"compressed_bytes"`
	UncompressedBytes int64    `json:"uncompressed_bytes"`
	CacheHit          bool     `json:"cache_hit"`
	SharedSample      bool     `json:"shared_sample,omitempty"`
	// Adaptive-request outcome: the achieved CI half-width, rounds run,
	// and whether the target was met within the row budget (absent on
	// fixed-r requests).
	AchievedError float64 `json:"achieved_error,omitempty"`
	Rounds        int     `json:"rounds,omitempty"`
	Converged     *bool   `json:"converged,omitempty"`
	// Degraded serving: the estimate was merged from the surviving shards
	// after shards_failed failed persistently (allow_partial requests
	// only); achieved_error then carries the widened CI half-width over
	// the survivors. Stale marks a last-good estimate served while the
	// table's circuit breaker was open.
	Degraded     bool   `json:"degraded,omitempty"`
	ShardsFailed []int  `json:"shards_failed,omitempty"`
	Stale        bool   `json:"stale,omitempty"`
	Error        string `json:"error,omitempty"`
}

type whatIfRequestJSON struct {
	Table      string          `json:"table"`
	Candidates []candidateJSON `json:"candidates"`
	Fraction   float64         `json:"fraction,omitempty"`
	SampleRows int64           `json:"sample_rows,omitempty"`
	Seed       uint64          `json:"seed,omitempty"`
	PageSize   int             `json:"page_size,omitempty"`
	TimeoutMS  int64           `json:"timeout_ms,omitempty"`
	// Stratified sampling (applies to every candidate): see /estimate.
	Strata int `json:"strata,omitempty"`
	// Adaptive estimation (applies to every candidate): see /estimate.
	TargetError   float64 `json:"target_error,omitempty"`
	Confidence    float64 `json:"confidence,omitempty"`
	MaxSampleRows int64   `json:"max_sample_rows,omitempty"`
	// Degraded serving (applies to every candidate): see /estimate.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// queryJSON is one workload statement in an /advise request.
type queryJSON struct {
	Name        string   `json:"name,omitempty"`
	Columns     []string `json:"columns"`
	Weight      float64  `json:"weight"`
	Selectivity float64  `json:"selectivity"`
}

type adviseRequestJSON struct {
	Table       string          `json:"table"`
	Candidates  []candidateJSON `json:"candidates"`
	Queries     []queryJSON     `json:"queries"`
	BudgetBytes int64           `json:"budget_bytes"`
	Fraction    float64         `json:"fraction,omitempty"`
	Seed        uint64          `json:"seed,omitempty"`
	TimeoutMS   int64           `json:"timeout_ms,omitempty"`
	// Adaptive coarse-to-fine sizing: candidates are screened at a loose
	// precision (coarse_error, default 4×target_error) and only the ones
	// still able to win their index-key group are refined to target_error.
	TargetError   float64 `json:"target_error,omitempty"`
	CoarseError   float64 `json:"coarse_error,omitempty"`
	Confidence    float64 `json:"confidence,omitempty"`
	MaxSampleRows int64   `json:"max_sample_rows,omitempty"`
}

// defaultFraction applies the service-wide sampling default of 1%.
// Adaptive requests (targetError > 0) keep a zero fraction: the adaptive
// loop picks its own starting size and a 1% default would force an
// oversized first round.
func defaultFraction(f, targetError float64) float64 {
	if f == 0 && targetError == 0 {
		return 0.01
	}
	return f
}

// --- handlers -----------------------------------------------------------------

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.started).String(),
	})
}

// statsFields is the /stats compatibility shim: the legacy JSON contract's
// field names mapped onto the registry metrics they are now derived from.
// The engine's counters live solely on the obs registry; /stats is a
// re-keyed read of the same instruments, so the two endpoints can never
// disagree. Renaming either side is an API break — a regression test pins
// the JSON names.
var statsFields = []struct {
	json   string
	metric string
}{
	{"cache_hits", engine.MetricCacheHits},
	{"cache_misses", engine.MetricCacheMisses},
	{"cache_evictions", engine.MetricCacheEvictions},
	{"cache_entries", engine.MetricCacheEntries},
	{"samples_drawn", engine.MetricSamplesDrawn},
	{"samples_shared", engine.MetricSamplesShared},
	{"maintained_hits", engine.MetricMaintainedHits},
	{"maintained_stale", engine.MetricMaintainedStale},
	{"indexes_prepared", engine.MetricIndexesPrepared},
	{"evaluated", engine.MetricEvaluated},
	{"precision_hits", engine.MetricPrecisionHits},
	{"coalesced_waits", engine.MetricCoalescedWaits},
	{"shard_scatters", engine.MetricShardScatters},
	{"shard_cache_hits", engine.MetricShardHits},
	{"shard_cache_misses", engine.MetricShardMisses},
	{"stratified_estimates", engine.MetricStratified},
	{"strata_directory_builds", engine.MetricStrataDirBuilds},
	{"adaptive_rounds", engine.MetricAdaptiveRounds},
	{"adaptive_rows", engine.MetricAdaptiveRows},
	{"prepare_nanos", engine.MetricPrepareNanos},
	{"sort_rows", engine.MetricSortRows},
	{"panics_recovered", engine.MetricPanicsRecovered},
	{"shard_retries", engine.MetricShardRetries},
	{"degraded_results", engine.MetricDegradedResults},
	{"stale_served", engine.MetricStaleServed},
	{"breaker_opens", engine.MetricBreakerOpens},
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.refreshShardGauges()
	out := make(map[string]any, len(statsFields)+2)
	for _, f := range statsFields {
		v, _ := s.registry.Value(f.metric)
		out[f.json] = uint64(v)
	}
	out["tables"] = s.cat.Len()
	// Per-shard view of every sharded table: fan-out and epoch vector.
	sharded := map[string]any{}
	for _, name := range s.cat.Names() {
		if t, ok := s.cat.Lookup(name); ok {
			if sh, ok := t.(catalog.Sharded); ok {
				sharded[name] = map[string]any{
					"shards":       sh.NumShards(),
					"shard_epochs": sh.EpochVector(),
				}
			}
		}
	}
	if len(sharded) > 0 {
		out["sharded_tables"] = sharded
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleCodecs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"codecs": compress.Names()})
}

func (s *server) handleListTables(w http.ResponseWriter, _ *http.Request) {
	type info struct {
		Name        string   `json:"name"`
		Rows        int64    `json:"rows"`
		Columns     []string `json:"columns"`
		Epoch       uint64   `json:"epoch"`
		Live        bool     `json:"live"`
		Shards      int      `json:"shards,omitempty"`
		ShardEpochs []uint64 `json:"shard_epochs,omitempty"`
	}
	names := s.cat.Names() // sorted
	out := make([]info, 0, len(names))
	for _, name := range names {
		t, ok := s.cat.Lookup(name)
		if !ok { // dropped between Names and Lookup
			continue
		}
		cols := make([]string, 0, t.Schema().NumColumns())
		for _, c := range t.Schema().Columns() {
			cols = append(cols, c.Name)
		}
		_, live := t.(liveTable)
		row := info{Name: t.Name(), Rows: t.NumRows(), Columns: cols, Epoch: t.Epoch(), Live: live}
		if sh, ok := t.(catalog.Sharded); ok {
			row.Shards = sh.NumShards()
			row.ShardEpochs = sh.EpochVector()
		}
		out = append(out, row)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": out})
}

func (s *server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	var spec tableSpecJSON
	if !decodeJSON(w, r, &spec) {
		return
	}
	if spec.N > s.maxTableRows {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("table %q: n %d exceeds the per-table limit of %d rows", spec.Name, spec.N, s.maxTableRows))
		return
	}
	var t engine.Table
	var err error
	switch {
	case spec.Shards > 0 && !spec.Live:
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("table %q: sharding requires \"live\": true", spec.Name))
		return
	case spec.Shards > 0:
		t, err = s.buildLiveShardedTable(spec)
	case spec.Live:
		t, err = s.buildLiveTable(spec)
	default:
		t, err = buildTable(spec)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.register(t); err != nil {
		if spec.Live {
			_ = s.db.DropTable(spec.Name)
		}
		httpError(w, http.StatusConflict, err)
		return
	}
	out := map[string]any{
		"table": t.Name(),
		"rows":  t.NumRows(),
		"epoch": t.Epoch(),
		"live":  spec.Live,
	}
	if sh, ok := t.(catalog.Sharded); ok {
		out["shards"] = sh.NumShards()
		out["shard_epochs"] = sh.EpochVector()
	}
	writeJSON(w, http.StatusCreated, out)
}

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequestJSON
	if !decodeJSON(w, r, &req) {
		return
	}
	tab, err := s.lookup(req.Table)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	codec, err := compress.Lookup(req.Codec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res := s.eng.Estimate(ctx, engine.Request{
		Table:         tab,
		KeyColumns:    req.Columns,
		Codec:         codec,
		Fraction:      defaultFraction(req.Fraction, req.TargetError),
		SampleRows:    req.SampleRows,
		Seed:          req.Seed,
		PageSize:      req.PageSize,
		Strata:        req.Strata,
		TargetError:   req.TargetError,
		Confidence:    req.Confidence,
		MaxSampleRows: req.MaxSampleRows,
		AllowPartial:  req.AllowPartial || s.allowPartial,
	})
	if res.Err != nil {
		httpError(w, statusFor(res.Err), res.Err)
		return
	}
	writeJSON(w, http.StatusOK, toResultJSON(req.Columns, req.Codec, res))
}

// statusFor maps an engine error onto the HTTP status that tells the
// client what to do about it: fix the request (400), retry later with the
// breaker open (503), retry with a longer budget (504), or report a bug
// (500 — including recovered panics, which arrive as ordinary errors
// carrying the failure's stack).
func statusFor(err error) int {
	switch {
	case errors.Is(err, engine.ErrInvalidRequest):
		return http.StatusBadRequest
	case errors.Is(err, engine.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req whatIfRequestJSON
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Candidates) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("candidates are required"))
		return
	}
	tab, err := s.lookup(req.Table)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	reqs := make([]engine.Request, len(req.Candidates))
	for i, c := range req.Candidates {
		codec, err := compress.Lookup(c.Codec)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("candidate %d: %w", i, err))
			return
		}
		reqs[i] = engine.Request{
			Table:         tab,
			KeyColumns:    c.Columns,
			Codec:         codec,
			Fraction:      defaultFraction(req.Fraction, req.TargetError),
			SampleRows:    req.SampleRows,
			Seed:          req.Seed,
			PageSize:      req.PageSize,
			Strata:        req.Strata,
			TargetError:   req.TargetError,
			Confidence:    req.Confidence,
			MaxSampleRows: req.MaxSampleRows,
			AllowPartial:  req.AllowPartial || s.allowPartial,
		}
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	results := s.eng.WhatIf(ctx, reqs)
	out := make([]estimateResultJSON, len(results))
	for i, res := range results {
		out[i] = toResultJSON(req.Candidates[i].Columns, req.Candidates[i].Codec, res)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table":       req.Table,
		"results":     out,
		"duration_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req adviseRequestJSON
	if !decodeJSON(w, r, &req) {
		return
	}
	tab, err := s.lookup(req.Table)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	cands := make([]physdesign.Candidate, len(req.Candidates))
	for i, c := range req.Candidates {
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("candidate-%d", i)
		}
		var codec compress.Codec
		if c.Codec != "" {
			codec, err = compress.Lookup(c.Codec)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("candidate %q: %w", name, err))
				return
			}
		}
		cands[i] = physdesign.Candidate{Name: name, Table: tab, KeyColumns: c.Columns, Codec: codec}
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	queries := make([]physdesign.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = physdesign.Query{Name: q.Name, Columns: q.Columns, Weight: q.Weight, Selectivity: q.Selectivity}
	}
	rec, err := physdesign.Recommend(cands, queries, req.BudgetBytes, physdesign.Options{
		SampleFraction: defaultFraction(req.Fraction, req.TargetError),
		Seed:           req.Seed,
		Engine:         s.eng,
		Context:        ctx,
		TargetError:    req.TargetError,
		CoarseError:    req.CoarseError,
		Confidence:     req.Confidence,
		MaxSampleRows:  req.MaxSampleRows,
	})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	type chosenJSON struct {
		Name           string   `json:"name"`
		Columns        []string `json:"columns,omitempty"`
		Codec          string   `json:"codec,omitempty"`
		EstimatedCF    float64  `json:"estimated_cf"`
		EstimatedBytes int64    `json:"estimated_bytes"`
	}
	chosen := make([]chosenJSON, len(rec.Chosen))
	for i, c := range rec.Chosen {
		cj := chosenJSON{
			Name: c.Name, Columns: c.KeyColumns,
			EstimatedCF: c.EstimatedCF, EstimatedBytes: c.EstimatedBytes,
		}
		if c.Codec != nil {
			cj.Codec = c.Codec.Name()
		}
		chosen[i] = cj
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"chosen":        chosen,
		"total_bytes":   rec.TotalBytes,
		"total_benefit": rec.TotalBenefit,
		"rejected":      rec.Rejected,
	})
}

// toResultJSON converts one engine result to the wire form.
func toResultJSON(cols []string, codecName string, res engine.Result) estimateResultJSON {
	out := estimateResultJSON{Columns: cols, Codec: codecName}
	if res.Err != nil {
		out.Error = res.Err.Error()
		return out
	}
	est := res.Estimate
	out.CF = est.CF
	out.SavingsPct = (1 - est.CF) * 100
	out.SampleRows = est.SampleRows
	out.SampleDistinct = est.SampleDistinct
	out.CompressedBytes = est.Result.CompressedBytes
	out.UncompressedBytes = est.Result.UncompressedBytes
	out.CacheHit = res.CacheHit
	out.SharedSample = res.SharedSample
	if res.Rounds > 0 || res.AchievedError > 0 {
		out.AchievedError = res.AchievedError
		out.Rounds = res.Rounds
		converged := res.Converged
		out.Converged = &converged
	}
	if res.Degraded {
		out.Degraded = true
		out.ShardsFailed = res.ShardsFailed
		out.AchievedError = res.AchievedError
	}
	out.Stale = res.Stale
	return out
}

// --- JSON plumbing ------------------------------------------------------------

// decodeJSON parses the request body into v, rejecting unknown fields so
// typos in specs fail loudly. Returns false after writing the error.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
