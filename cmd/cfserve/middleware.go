package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"samplecf/internal/obs"
)

// requestIDHeader is the request-ID contract header: an inbound value is
// propagated (so callers and upstream proxies can correlate), otherwise
// the server generates one; either way the response echoes it and every
// access-log line carries it.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted inbound request IDs; longer or
// non-printable values are replaced with a generated one rather than
// letting clients inject arbitrary bytes into logs.
const maxRequestIDLen = 64

// serverTimingStages is how many of the longest stages the Server-Timing
// header reports alongside the total.
const serverTimingStages = 3

type requestIDKey struct{}

// requestIDFrom returns the request ID middleware stored in ctx ("" when
// the request skipped the middleware, e.g. in direct handler tests).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// requestID returns the inbound X-Request-ID when acceptable, else a fresh
// random one.
func requestID(r *http.Request) string {
	id := r.Header.Get(requestIDHeader)
	if id != "" && len(id) <= maxRequestIDLen && isPrintable(id) {
		return id
	}
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(buf[:])
}

func isPrintable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x21 || s[i] > 0x7e {
			return false
		}
	}
	return true
}

// routeLabel collapses a request path to its first segment — a bounded
// label set (estimate, whatif, tables, metrics, ...) for the HTTP metric
// families, independent of path parameters like table names.
func routeLabel(r *http.Request) string {
	p := strings.TrimPrefix(r.URL.Path, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		p = p[:i]
	}
	if p == "" {
		return "root"
	}
	return p
}

// timingWriter wraps a ResponseWriter to (a) capture status and size for
// the access log and (b) inject the Server-Timing header at first write —
// headers are immutable after WriteHeader, and by then the request's span
// tree holds every finished stage.
type timingWriter struct {
	http.ResponseWriter
	trace  *obs.Trace
	status int
	bytes  int64
}

func (w *timingWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
		w.Header().Set("Server-Timing", w.trace.ServerTimingHeader(serverTimingStages))
		w.ResponseWriter.WriteHeader(status)
	}
}

func (w *timingWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// middleware is the observability envelope around every route: request-ID
// propagation, per-request trace creation, HTTP metrics, the Server-Timing
// header, the slog access log, and the slow-request trace dump.
func (s *server) middleware(next http.Handler) http.Handler {
	requests := s.registry.CounterVec("samplecf_http_requests_total",
		"HTTP requests served, by first path segment.", "route")
	latency := s.registry.HistogramVec("samplecf_http_request_duration_seconds",
		"HTTP request latency, by first path segment.", "route")
	inFlight := s.registry.Gauge("samplecf_http_inflight_requests",
		"HTTP requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r)
		id := requestID(r)
		tr := obs.NewTrace(r.Method + " /" + route)
		ctx := obs.WithTrace(r.Context(), tr)
		ctx = context.WithValue(ctx, requestIDKey{}, id)

		w.Header().Set(requestIDHeader, id)
		tw := &timingWriter{ResponseWriter: w, trace: tr}
		inFlight.Inc()
		start := time.Now()
		next.ServeHTTP(tw, r.WithContext(ctx))
		elapsed := time.Since(start)
		inFlight.Dec()
		tr.Finish()

		if tw.status == 0 {
			// Handler never wrote: net/http sends 200 with an empty body.
			tw.status = http.StatusOK
		}
		requests.With(route).Inc()
		latency.With(route).Observe(elapsed)

		s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", tw.status),
			slog.Int64("bytes", tw.bytes),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
		if s.slowTrace > 0 && elapsed >= s.slowTrace {
			doc, err := json.Marshal(tr)
			if err != nil {
				doc = []byte(`{"error":"trace marshal failed"}`)
			}
			s.logger.LogAttrs(ctx, slog.LevelWarn, "slow request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Duration("duration", elapsed),
				slog.Duration("threshold", s.slowTrace),
				slog.Any("trace", json.RawMessage(doc)),
			)
		}
	})
}

// handleMetrics serves the Prometheus text exposition: the server/engine
// registry (HTTP + engine instruments) followed by the process-wide
// default registry (sampling, sortkeys, compress, workgroup). Metric names
// are disjoint by construction, so the concatenation is one valid
// exposition document.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.refreshShardGauges()
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	if err := s.registry.WritePrometheus(w); err != nil {
		return
	}
	_ = obs.Default().WritePrometheus(w)
}
