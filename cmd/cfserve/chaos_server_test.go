package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"samplecf/internal/engine"
	"samplecf/internal/faults"
)

// Chaos tests for the HTTP layer: engine failures map onto the right
// status codes, and SIGTERM drains in-flight requests under load without
// leaking goroutines. Fault schedules are process-global, so no test here
// may call t.Parallel.

func armServerChaos(t *testing.T, schedule string, seed uint64) {
	t.Helper()
	if err := faults.Arm(schedule, seed); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faults.Disarm)
}

// TestChaosStatusForMapping unit-pins the error→status table.
func TestChaosStatusForMapping(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{engine.ErrInvalidRequest, http.StatusBadRequest},
		{fmt.Errorf("request 0: %w", engine.ErrInvalidRequest), http.StatusBadRequest},
		{engine.ErrBreakerOpen, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusGatewayTimeout},
		{errors.New("disk on fire"), http.StatusInternalServerError},
		{&faults.InjectedError{Point: "sampling.draw"}, http.StatusInternalServerError},
	} {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestChaosStatusMappingE2E drives the three mapped failure classes
// through the real handler stack: validation answers 400, a deadline
// blown mid-computation answers 504, and an internal (injected) storage
// failure answers 500 with the failure named in the body.
func TestChaosStatusMappingE2E(t *testing.T) {
	ts, _ := newTestServer(t)

	// Validation: 400.
	var out map[string]any
	if code := postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","codec":"nullsuppression","fraction":0.05,"confidence":0.95}`, &out); code != http.StatusBadRequest {
		t.Errorf("validation failure status %d, want 400 (%v)", code, out)
	}

	// Deadline: a latency fault stretches the round-0 draw past the
	// request's budget, so the adaptive loop's ctx check trips. 504.
	armServerChaos(t, "sampling.draw:lat:200ms@1+", 1)
	if code := postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","codec":"nullsuppression","target_error":0.02,"seed":41,"timeout_ms":30}`, &out); code != http.StatusGatewayTimeout {
		t.Errorf("blown deadline status %d, want 504 (%v)", code, out)
	}

	// Internal: a persistent draw failure is nobody's request bug. 500.
	armServerChaos(t, "sampling.draw:err@1+", 1)
	if code := postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","columns":["region"],"codec":"nullsuppression","fraction":0.05,"seed":42}`, &out); code != http.StatusInternalServerError {
		t.Errorf("injected failure status %d, want 500 (%v)", code, out)
	}
	if msg, _ := out["error"].(string); msg == "" {
		t.Error("500 body carries no error message")
	}
}

// TestChaosSigtermDrain boots the real main path (run, flags, signal
// handling) inside the test process, puts slow requests in flight, sends
// itself SIGTERM, and proves the drain contract: every request that was
// in flight when the signal landed completes with 200, run returns
// cleanly, and the goroutine count settles back to its baseline.
func TestChaosSigtermDrain(t *testing.T) {
	armServerChaos(t, "sampling.draw:lat:150ms@1+", 1)
	g0 := runtime.NumGoroutine()

	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-demo", "-drain", "5s"}, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	client := &http.Client{}
	defer client.CloseIdleConnections()
	base := "http://" + addr.String()

	// Distinct seeds so every request is a fresh (slow) computation.
	const inflight = 3
	codes := make([]int, inflight)
	errs := make([]error, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"table":"demo","columns":["region"],"codec":"nullsuppression","fraction":0.05,"seed":%d}`, 100+i)
			req, _ := http.NewRequest("POST", base+"/estimate", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	// Let the requests reach their slow draws, then signal mid-flight.
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 0; i < inflight; i++ {
		if errs[i] != nil {
			t.Errorf("in-flight request %d dropped during drain: %v", i, errs[i])
		} else if codes[i] != http.StatusOK {
			t.Errorf("in-flight request %d status %d, want 200", i, codes[i])
		}
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}

	// Goroutine leak check: everything the server spawned (listener,
	// engine pool, background refreshes) must be gone. Allow a little
	// slack for runtime housekeeping goroutines winding down.
	client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= g0+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines %d > baseline %d after drain\n%s",
				runtime.NumGoroutine(), g0, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
