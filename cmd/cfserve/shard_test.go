package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// shardedSpec is a live range-partitioned table spec: 3 shards over qty
// with bounds 170 and 340 (qty is uniform over [0, 500)).
func shardedSpec(name string, n int) string {
	return fmt.Sprintf(`{
		"name": %q, "n": %d, "seed": 3, "live": true,
		"shards": 3, "shard_by": "range", "shard_column": "qty",
		"shard_bounds": [170, 340],
		"cols": [
			{"name": "city", "type": "char:16", "dist": "uniform:40", "len": "uniform:4:10", "seed": 1},
			{"name": "qty",  "type": "int32",   "dist": "uniform:500"}
		]
	}`, name, n)
}

// epochVec pulls a []float64 shard-epoch vector out of a decoded response.
func epochVec(t *testing.T, m map[string]any, key string) []float64 {
	t.Helper()
	raw, ok := m[key].([]any)
	if !ok {
		t.Fatalf("%s missing in %v", key, m)
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = v.(float64)
	}
	return out
}

// TestShardedTableEndToEnd drives the shard API over HTTP: creation with
// a range spec, per-shard epochs in responses, the hot-shard cache
// property surfaced through /stats, and the per-shard gauges on /metrics.
func TestShardedTableEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	var created map[string]any
	if code := postJSON(t, ts.URL+"/tables", shardedSpec("parts", 3000), &created); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, created)
	}
	if created["shards"].(float64) != 3 {
		t.Fatalf("created = %v", created)
	}
	before := epochVec(t, created, "shard_epochs")
	if len(before) != 3 {
		t.Fatalf("shard_epochs = %v", before)
	}

	// GET /tables lists the shard fan-out and epoch vector.
	var tables map[string][]map[string]any
	getJSON(t, ts.URL+"/tables", &tables)
	for _, ti := range tables["tables"] {
		if ti["name"] == "parts" {
			if ti["shards"].(float64) != 3 {
				t.Fatalf("listed table = %v", ti)
			}
		}
	}

	// Warm the estimate cache, then confirm a repeat is a full hit.
	est := func() estimateResultJSON {
		var res estimateResultJSON
		if code := postJSON(t, ts.URL+"/estimate", estimateBody("parts"), &res); code != http.StatusOK {
			t.Fatalf("estimate: status %d (%+v)", code, res)
		}
		return res
	}
	if est(); !est().CacheHit {
		t.Fatal("repeat estimate did not hit the cache")
	}

	// Insert a row routing to shard 0 (qty 1 < bound 170): only that
	// shard's epoch moves.
	var ins map[string]any
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/parts/rows",
		`{"rows": [["atlantis", 1]]}`, &ins); code != http.StatusOK {
		t.Fatalf("insert: %d %v", code, ins)
	}
	after := epochVec(t, ins, "shard_epochs")
	if after[0] != before[0]+1 || after[1] != before[1] || after[2] != before[2] {
		t.Fatalf("shard_epochs %v -> %v, want only shard 0 bumped", before, after)
	}

	// The next estimate recomputes only the mutated shard; the other two
	// serve from their per-shard cache entries.
	var s0 map[string]any
	getJSON(t, ts.URL+"/stats", &s0)
	if est().CacheHit {
		t.Fatal("estimate after insert served the stale merged result")
	}
	var s1 map[string]any
	getJSON(t, ts.URL+"/stats", &s1)
	if hits := s1["shard_cache_hits"].(float64) - s0["shard_cache_hits"].(float64); hits != 2 {
		t.Errorf("untouched shards served %v hits, want 2", hits)
	}
	if misses := s1["shard_cache_misses"].(float64) - s0["shard_cache_misses"].(float64); misses != 1 {
		t.Errorf("hot shard missed %v times, want 1", misses)
	}
	sharded, ok := s1["sharded_tables"].(map[string]any)
	if !ok || sharded["parts"] == nil {
		t.Fatalf("/stats sharded_tables = %v", s1["sharded_tables"])
	}

	// /metrics exposes the per-shard gauges.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `samplecf_table_shards{table="parts"} 3`) {
		t.Errorf("/metrics missing shard-count gauge:\n%s", grepLines(text, "samplecf_table_shards"))
	}
	if !strings.Contains(text, `samplecf_table_shard_epoch{shard="parts/0"}`) {
		t.Errorf("/metrics missing shard-epoch gauge:\n%s", grepLines(text, "samplecf_table_shard_epoch"))
	}

	// Drop removes the whole partitioned table.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/tables/parts", "", nil); code != http.StatusOK {
		t.Fatal("drop failed")
	}
	if code := postJSON(t, ts.URL+"/estimate", estimateBody("parts"), nil); code != http.StatusNotFound {
		t.Fatalf("estimate after drop: %d", code)
	}
}

func TestShardedSpecValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	post := func(body string) int {
		return postJSON(t, ts.URL+"/tables", body, nil)
	}
	cols := `"cols": [{"name": "a", "type": "int32", "dist": "uniform:10"}]`
	// Sharding an immutable table is rejected.
	if code := post(`{"name": "x", "n": 10, "shards": 2, "shard_column": "a", ` + cols + `}`); code != http.StatusBadRequest {
		t.Errorf("non-live sharded spec accepted: %d", code)
	}
	// Unknown shard column.
	if code := post(`{"name": "x", "n": 10, "live": true, "shards": 2, "shard_column": "zz", ` + cols + `}`); code != http.StatusBadRequest {
		t.Errorf("unknown shard column accepted: %d", code)
	}
	// Range sharding with the wrong bound count.
	if code := post(`{"name": "x", "n": 10, "live": true, "shards": 3, "shard_by": "range", "shard_column": "a", "shard_bounds": [5], ` + cols + `}`); code != http.StatusBadRequest {
		t.Errorf("bad bound count accepted: %d", code)
	}
	// A valid hash spec needs no bounds.
	if code := post(`{"name": "ok", "n": 10, "live": true, "shards": 2, "shard_column": "a", ` + cols + `}`); code != http.StatusCreated {
		t.Errorf("valid hash spec rejected: %d", code)
	}
}

// grepLines returns the lines of text containing substr, for error output.
func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
