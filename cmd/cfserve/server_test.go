package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"samplecf/internal/engine"
)

// newTestServer starts an httptest server over a fresh engine with the
// demo table registered.
func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 4, CacheEntries: 64})
	t.Cleanup(eng.Close)
	srv := newServer(eng)
	spec := demoSpec()
	spec.N = 5000 // keep test tables small
	tab, err := buildTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.register(tab); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

// postJSON posts body and decodes the JSON response into out.
func postJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndStats(t *testing.T) {
	ts, _ := newTestServer(t)
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health["status"] != "ok" {
		t.Errorf("health = %v", health)
	}
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats["tables"].(float64) != 1 {
		t.Errorf("stats tables = %v, want 1", stats["tables"])
	}
}

func TestCreateAndListTables(t *testing.T) {
	ts, _ := newTestServer(t)
	spec := `{"name":"t2","n":1000,"seed":7,"cols":[
		{"name":"a","type":"char:16","dist":"zipf:100:0.5","len":"const:8","seed":1},
		{"name":"b","type":"int64","dist":"uniform:20","offset":100}]}`
	var created map[string]any
	if code := postJSON(t, ts.URL+"/tables", spec, &created); code != http.StatusCreated {
		t.Fatalf("create status %d: %v", code, created)
	}
	if created["rows"].(float64) != 1000 {
		t.Errorf("created rows = %v", created["rows"])
	}
	// Duplicate names conflict.
	if code := postJSON(t, ts.URL+"/tables", spec, nil); code != http.StatusConflict {
		t.Errorf("duplicate create status %d, want 409", code)
	}
	// Bad specs are 400s with a useful message.
	var bad map[string]any
	if code := postJSON(t, ts.URL+"/tables",
		`{"name":"t3","n":10,"cols":[{"name":"x","type":"float","dist":"uniform:5"}]}`, &bad); code != http.StatusBadRequest {
		t.Errorf("bad spec status %d", code)
	} else if !strings.Contains(bad["error"].(string), "unknown type") {
		t.Errorf("bad spec error = %v", bad["error"])
	}

	// A huge n is rejected before any rows materialize.
	var huge map[string]any
	if code := postJSON(t, ts.URL+"/tables",
		`{"name":"big","n":100000000000,"cols":[{"name":"a","type":"int32","dist":"uniform:5"}]}`, &huge); code != http.StatusBadRequest {
		t.Errorf("oversized table status %d, want 400", code)
	} else if !strings.Contains(huge["error"].(string), "per-table limit") {
		t.Errorf("oversized table error = %v", huge["error"])
	}

	var listed struct {
		Tables []struct {
			Name string   `json:"name"`
			Rows int64    `json:"rows"`
			Cols []string `json:"columns"`
		} `json:"tables"`
	}
	if code := getJSON(t, ts.URL+"/tables", &listed); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(listed.Tables) != 2 {
		t.Fatalf("listed %d tables, want 2", len(listed.Tables))
	}
}

func TestEstimateEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var est estimateResultJSON
	code := postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","columns":["region"],"codec":"nullsuppression","fraction":0.05,"seed":3}`, &est)
	if code != http.StatusOK {
		t.Fatalf("estimate status %d (%+v)", code, est)
	}
	if est.CF <= 0 || est.CF > 1.5 {
		t.Errorf("implausible CF %v", est.CF)
	}
	if est.SampleRows != 250 {
		t.Errorf("sample rows %d, want 250 (5%% of 5000)", est.SampleRows)
	}
	// Same request again: served from cache.
	var again estimateResultJSON
	postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","columns":["region"],"codec":"nullsuppression","fraction":0.05,"seed":3}`, &again)
	if !again.CacheHit {
		t.Error("repeat estimate should be a cache hit")
	}
	if again.CF != est.CF {
		t.Errorf("cached CF %v != first CF %v", again.CF, est.CF)
	}
	// Unknown table and unknown codec fail cleanly.
	if code := postJSON(t, ts.URL+"/estimate", `{"table":"nope","codec":"rle"}`, nil); code != http.StatusNotFound {
		t.Errorf("unknown table status %d", code)
	}
	if code := postJSON(t, ts.URL+"/estimate", `{"table":"demo","codec":"nope"}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown codec status %d", code)
	}
}

// TestStatsPrepareCounters pins the sort-subsystem ledger end to end: an
// estimate that misses the cache runs one prepare (encode + radix sort +
// profile), so /stats must advance prepare_nanos and sort_rows by exactly
// that build, and a cache hit must leave them untouched.
func TestStatsPrepareCounters(t *testing.T) {
	ts, _ := newTestServer(t)
	var before map[string]any
	getJSON(t, ts.URL+"/stats", &before)
	for _, k := range []string{"prepare_nanos", "sort_rows"} {
		if _, ok := before[k]; !ok {
			t.Fatalf("/stats missing %q", k)
		}
	}
	code := postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","columns":["region"],"codec":"rle","sample_rows":400,"seed":11}`, nil)
	if code != http.StatusOK {
		t.Fatalf("estimate status %d", code)
	}
	var after map[string]any
	getJSON(t, ts.URL+"/stats", &after)
	if after["prepare_nanos"].(float64) <= before["prepare_nanos"].(float64) {
		t.Errorf("prepare_nanos did not advance: %v -> %v", before["prepare_nanos"], after["prepare_nanos"])
	}
	wantRows := before["sort_rows"].(float64) + 400
	if after["sort_rows"].(float64) != wantRows {
		t.Errorf("sort_rows = %v, want %v", after["sort_rows"], wantRows)
	}
	// A cache hit runs no prepare: both counters hold still.
	postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","columns":["region"],"codec":"rle","sample_rows":400,"seed":11}`, nil)
	var cached map[string]any
	getJSON(t, ts.URL+"/stats", &cached)
	if cached["sort_rows"].(float64) != wantRows {
		t.Errorf("cache hit moved sort_rows: %v -> %v", wantRows, cached["sort_rows"])
	}
	if cached["prepare_nanos"].(float64) != after["prepare_nanos"].(float64) {
		t.Errorf("cache hit moved prepare_nanos: %v -> %v", after["prepare_nanos"], cached["prepare_nanos"])
	}
}

func TestWhatIfEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out struct {
		Results []estimateResultJSON `json:"results"`
	}
	code := postJSON(t, ts.URL+"/whatif", `{
		"table":"demo","fraction":0.02,"seed":11,
		"candidates":[
			{"columns":["region"],"codec":"nullsuppression"},
			{"columns":["region"],"codec":"rle"},
			{"columns":["product"],"codec":"prefix"},
			{"columns":["no_such"],"codec":"rle"}
		]}`, &out)
	if code != http.StatusOK {
		t.Fatalf("whatif status %d", code)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results", len(out.Results))
	}
	for i, r := range out.Results[:3] {
		if r.Error != "" {
			t.Errorf("candidate %d: %s", i, r.Error)
		}
	}
	// The two region candidates share one sample (same table, f, seed).
	if !out.Results[0].SharedSample || !out.Results[1].SharedSample {
		t.Error("region candidates should report shared samples")
	}
	// Error isolation: the bad column fails alone, batch still 200.
	if out.Results[3].Error == "" {
		t.Error("bad column candidate should carry an error")
	}
}

// TestWhatIfConcurrent hammers /whatif from many clients — the httptest
// server runs each request on its own goroutine, so with -race this checks
// the full handler + engine stack for data races.
func TestWhatIfConcurrent(t *testing.T) {
	ts, eng := newTestServer(t)
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				body := fmt.Sprintf(`{
					"table":"demo","fraction":0.02,"seed":%d,
					"candidates":[
						{"columns":["region"],"codec":"nullsuppression"},
						{"columns":["region"],"codec":"rle"},
						{"columns":["qty"],"codec":"nullsuppression"}
					]}`, c%3)
				resp, err := http.Post(ts.URL+"/whatif", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					errs[c] = err
					return
				}
				var out struct {
					Results []estimateResultJSON `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs[c] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				for i, r := range out.Results {
					if r.Error != "" {
						errs[c] = fmt.Errorf("client %d candidate %d: %s", c, i, r.Error)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Hits == 0 {
		t.Error("identical concurrent requests should hit the cache")
	}
}

func TestAdviseEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out struct {
		Chosen []struct {
			Name        string  `json:"name"`
			Codec       string  `json:"codec"`
			EstimatedCF float64 `json:"estimated_cf"`
		} `json:"chosen"`
		TotalBytes int64 `json:"total_bytes"`
	}
	code := postJSON(t, ts.URL+"/advise", `{
		"table":"demo","budget_bytes":200000,"fraction":0.02,"seed":5,
		"candidates":[
			{"name":"ix_region","columns":["region"]},
			{"name":"ix_region_ns","columns":["region"],"codec":"nullsuppression"},
			{"name":"ix_product_ns","columns":["product"],"codec":"nullsuppression"}
		],
		"queries":[
			{"name":"by-region","columns":["region"],"weight":10,"selectivity":0.05},
			{"name":"by-product","columns":["product"],"weight":5,"selectivity":0.01}
		]}`, &out)
	if code != http.StatusOK {
		t.Fatalf("advise status %d", code)
	}
	if len(out.Chosen) == 0 {
		t.Fatal("advise chose nothing")
	}
	if out.TotalBytes > 200000 {
		t.Errorf("total %d exceeds budget", out.TotalBytes)
	}
}

func TestSpecParsing(t *testing.T) {
	// The colon vocabulary round-trips through every branch.
	good := []columnSpecJSON{
		{Name: "a", Type: "char:10", Dist: "uniform:5", Len: "const:4"},
		{Name: "b", Type: "varchar:20", Dist: "zipf:50:0.3", Len: "uniform:2:10"},
		{Name: "c", Type: "char:12", Dist: "hotset:30:0.2:0.8", Len: "normal:6:2:1:12"},
		{Name: "d", Type: "char:12", Dist: "uniform:9", Len: "bimodal:2:10:0.7"},
		{Name: "e", Type: "int32", Dist: "uniform:100"},
		{Name: "f", Type: "int64", Dist: "zipf:1000:0.9", Offset: -5},
	}
	for _, c := range good {
		if _, err := buildColumn(c); err != nil {
			t.Errorf("column %q: %v", c.Name, err)
		}
	}
	bad := []columnSpecJSON{
		{Name: "x", Type: "char", Dist: "uniform:5", Len: "const:4"},
		{Name: "x", Type: "char:8", Dist: "uniform", Len: "const:4"},
		{Name: "x", Type: "char:8", Dist: "uniform:5", Len: "gamma:1"},
		{Name: "x", Type: "int32", Dist: "zipf:10"},
	}
	for _, c := range bad {
		if _, err := buildColumn(c); err == nil {
			t.Errorf("column spec %+v should fail", c)
		}
	}
}

// TestPprofExposure covers the /debug/pprof/ gate: loopback clients are
// served under the default "local" mode, non-loopback clients are
// forbidden, "off" unmounts the routes, and "all" serves anyone.
func TestPprofExposure(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1, CacheEntries: 1})
	t.Cleanup(eng.Close)

	srv := newServer(eng) // default mode: local
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("loopback pprof index = %d, want 200", resp.StatusCode)
	}

	// A non-loopback client against the same handler is rejected.
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	req.RemoteAddr = "192.0.2.1:4711"
	rec := httptest.NewRecorder()
	srv.handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("non-loopback pprof = %d, want 403", rec.Code)
	}

	// -pprof all serves the same request.
	open := newServer(eng)
	open.pprofMode = "all"
	rec = httptest.NewRecorder()
	open.handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof=all non-loopback = %d, want 200", rec.Code)
	}

	// -pprof off unmounts the routes entirely.
	closed := newServer(eng)
	closed.pprofMode = "off"
	rec = httptest.NewRecorder()
	closed.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof=off = %d, want 404", rec.Code)
	}
}

// TestAdaptiveEstimateEndpoint drives the precision-targeted request shape
// end to end: target_error in, achieved_error/rounds/converged out, and
// precision-dominance cache behaviour across asks.
func TestAdaptiveEstimateEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var est estimateResultJSON
	code := postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","columns":["region"],"codec":"nullsuppression","target_error":0.03,"seed":3}`, &est)
	if code != http.StatusOK {
		t.Fatalf("adaptive estimate status %d (%+v)", code, est)
	}
	if est.Converged == nil || !*est.Converged {
		t.Fatalf("expected convergence, got %+v", est)
	}
	if est.AchievedError <= 0 || est.AchievedError > 0.03 {
		t.Errorf("achieved_error %v, want in (0, 0.03]", est.AchievedError)
	}
	if est.Rounds < 1 {
		t.Errorf("rounds = %d", est.Rounds)
	}
	if est.SampleRows <= 0 || est.SampleRows >= 5000 {
		t.Errorf("adaptive sample rows %d, want well under the 5000-row table", est.SampleRows)
	}

	// A looser ask is served from the precision cache by dominance.
	var loose estimateResultJSON
	postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","columns":["region"],"codec":"nullsuppression","target_error":0.1,"seed":99}`, &loose)
	if !loose.CacheHit {
		t.Error("±3% entry should answer a ±10% ask without resampling")
	}

	// Unreachable target within a tiny budget: honest non-convergence.
	var tight estimateResultJSON
	postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","columns":["region"],"codec":"nullsuppression","target_error":0.001,"max_sample_rows":300,"seed":3}`, &tight)
	if tight.Converged == nil || *tight.Converged {
		t.Errorf("±0.1%% from 300 rows should not converge: %+v", tight)
	}
	if tight.SampleRows != 300 {
		t.Errorf("budget-exhausted request spent %d rows, want 300", tight.SampleRows)
	}

	// Malformed: confidence without target_error.
	if code := postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","codec":"nullsuppression","fraction":0.05,"confidence":0.95}`, nil); code != http.StatusBadRequest {
		t.Errorf("confidence-without-target status %d, want 400", code)
	}
	// /stats exposes the adaptive counters.
	var st map[string]any
	getJSON(t, ts.URL+"/stats", &st)
	for _, k := range []string{"precision_hits", "adaptive_rounds", "adaptive_rows"} {
		if _, ok := st[k]; !ok {
			t.Errorf("/stats missing %q", k)
		}
	}
}

// TestAdaptiveWhatIfEndpoint checks the batch shape: every candidate
// carries its own convergence metadata, and fixed-r results stay free of it.
func TestAdaptiveWhatIfEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out struct {
		Results []estimateResultJSON `json:"results"`
	}
	code := postJSON(t, ts.URL+"/whatif", `{
		"table":"demo","target_error":0.05,"seed":7,
		"candidates":[
			{"columns":["region"],"codec":"nullsuppression"},
			{"columns":["region"],"codec":"rle"}
		]}`, &out)
	if code != http.StatusOK {
		t.Fatalf("adaptive whatif status %d", code)
	}
	for i, r := range out.Results {
		if r.Error != "" {
			t.Fatalf("candidate %d: %s", i, r.Error)
		}
		if r.Converged == nil || !*r.Converged || r.AchievedError > 0.05 {
			t.Errorf("candidate %d: converged=%v achieved=±%v", i, r.Converged, r.AchievedError)
		}
	}
	// Fixed-r requests must not grow adaptive fields.
	var fixed estimateResultJSON
	postJSON(t, ts.URL+"/estimate",
		`{"table":"demo","columns":["region"],"codec":"rle","fraction":0.02,"seed":1}`, &fixed)
	if fixed.Converged != nil || fixed.Rounds != 0 || fixed.AchievedError != 0 {
		t.Errorf("fixed-r response carries adaptive fields: %+v", fixed)
	}
}
