package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"samplecf/internal/engine"
	"samplecf/internal/value"
)

// blockingTable wraps a registered table so the first Row call signals
// entry and then blocks until released — it keeps one estimate (and so one
// admission slot) deterministically in flight.
type blockingTable struct {
	engine.Table
	enter   sync.Once
	entered chan struct{}
	release chan struct{}
}

func (b *blockingTable) Row(i int64) (value.Row, error) {
	b.enter.Do(func() { close(b.entered) })
	<-b.release
	return b.Table.Row(i)
}

// TestAdmissionLimit drives the -max-inflight limiter end to end: with the
// single slot held by a blocked estimate, further estimation requests get
// an immediate 503 with Retry-After and the rejection counter moves, while
// the ops surface (health, stats, metrics) keeps answering; once the slot
// frees, requests are admitted again.
func TestAdmissionLimit(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 4, CacheEntries: 64})
	t.Cleanup(eng.Close)
	srv := newServer(eng)
	srv.maxInflight = 1
	spec := demoSpec()
	spec.N = 2000
	inner, err := buildTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	gate := &blockingTable{Table: inner, entered: make(chan struct{}), release: make(chan struct{})}
	var once sync.Once
	open := func() { once.Do(func() { close(gate.release) }) }
	t.Cleanup(open)
	if err := srv.register(gate); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	body := `{"table": "demo", "columns": ["region"], "codec": "rle", "fraction": 0.02, "seed": 9}`
	first := make(chan int, 1)
	go func() {
		var est estimateResultJSON
		first <- postJSON(t, ts.URL+"/estimate", body, &est)
	}()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("holder request never reached the gated draw")
	}

	// The slot is held: the next estimation request is turned away at the
	// door, with the backoff hint and a JSON error body.
	resp, err := http.Post(ts.URL+"/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rej map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated estimate status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	if rej["error"] == "" {
		t.Error("503 body carries no error message")
	}
	if v, _ := srv.registry.Value("samplecf_http_rejected_total"); v != 1 {
		t.Errorf("samplecf_http_rejected_total = %v, want 1", v)
	}

	// The ops surface is exempt: an operator can still see what is wrong.
	for _, path := range []string{"/healthz", "/stats", "/metrics"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s while saturated = %d, want 200", path, r.StatusCode)
		}
	}

	// Release the holder; its estimate completes and the slot frees.
	open()
	if code := <-first; code != http.StatusOK {
		t.Fatalf("holder request status = %d, want 200", code)
	}
	var est estimateResultJSON
	if code := postJSON(t, ts.URL+"/estimate", body, &est); code != http.StatusOK {
		t.Fatalf("post-release estimate status = %d, want 200", code)
	}
}

// TestAdmissionDisabled pins the default: maxInflight 0 leaves the chain
// unwrapped and nothing is ever rejected.
func TestAdmissionDisabled(t *testing.T) {
	ts, srv := newObsTestServer(t)
	var est estimateResultJSON
	if code := postJSON(t, ts.URL+"/estimate", obsEstimateBody, &est); code != http.StatusOK {
		t.Fatalf("estimate status %d", code)
	}
	if v, ok := srv.registry.Value("samplecf_http_rejected_total"); ok && v != 0 {
		t.Errorf("rejected counter = %v on an unlimited server", v)
	}
}
