package main

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"samplecf/internal/distrib"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// tableSpecJSON is the wire form of a synthetic table definition accepted
// by POST /tables. The compact colon syntax ("zipf:8000:0.7") keeps specs
// one-line in curl calls; see docs/cfserve.md for the vocabulary.
type tableSpecJSON struct {
	Name   string           `json:"name"`
	N      int64            `json:"n"`
	Seed   uint64           `json:"seed"`
	Layout string           `json:"layout,omitempty"` // "shuffled" (default) | "clustered"
	Cols   []columnSpecJSON `json:"cols"`
	// Live materializes the table in the embedded storage engine (heap
	// pages + version epochs) instead of as an immutable row slice; live
	// tables accept the /tables/{t}/rows mutation endpoints and may start
	// empty (n = 0).
	Live bool `json:"live,omitempty"`
	// Shards partitions a live table (requires "live": true) into this
	// many shards, each with its own storage, maintained sample, and
	// version epoch — mutations to one shard leave the others' cached
	// estimates valid. ShardBy is "hash" (default) or "range" over
	// ShardColumn; range partitioning takes Shards-1 strictly ascending
	// upper-exclusive ShardBounds typed like row values.
	Shards      int               `json:"shards,omitempty"`
	ShardBy     string            `json:"shard_by,omitempty"`
	ShardColumn string            `json:"shard_column,omitempty"`
	ShardBounds []json.RawMessage `json:"shard_bounds,omitempty"`
}

// columnSpecJSON describes one generated column.
type columnSpecJSON struct {
	Name string `json:"name"`
	// Type: "char:K", "varchar:MAX", "int32", "int64".
	Type string `json:"type"`
	// Dist: "uniform:D", "zipf:D:THETA", "hotset:D:FRAC:PROB".
	Dist string `json:"dist"`
	// Len (character types): "const:L", "uniform:LO:HI",
	// "normal:MU:SIGMA:LO:HI", "bimodal:SHORT:LONG:PSHORT".
	Len string `json:"len,omitempty"`
	// Seed derives the column's value stream (character types).
	Seed uint64 `json:"seed,omitempty"`
	// Offset shifts integer domains (integer types).
	Offset int64 `json:"offset,omitempty"`
}

// buildTable materializes a workload table from the wire spec.
func buildTable(spec tableSpecJSON) (*workload.Table, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("table name is required")
	}
	if spec.N <= 0 {
		return nil, fmt.Errorf("table %q: n must be positive", spec.Name)
	}
	layout := workload.LayoutShuffled
	switch spec.Layout {
	case "", "shuffled":
	case "clustered":
		layout = workload.LayoutClustered
	default:
		return nil, fmt.Errorf("table %q: unknown layout %q", spec.Name, spec.Layout)
	}
	cols := make([]workload.SpecColumn, 0, len(spec.Cols))
	for _, c := range spec.Cols {
		gen, err := buildColumn(c)
		if err != nil {
			return nil, fmt.Errorf("table %q, column %q: %w", spec.Name, c.Name, err)
		}
		cols = append(cols, workload.SpecColumn{Name: c.Name, Gen: gen})
	}
	return workload.Generate(workload.Spec{
		Name: spec.Name, N: spec.N, Seed: spec.Seed, Layout: layout, Cols: cols,
	})
}

// buildColumn resolves one column spec into a generator.
func buildColumn(c columnSpecJSON) (workload.ColumnGen, error) {
	typ, isChar, err := parseType(c.Type)
	if err != nil {
		return nil, err
	}
	dist, err := parseDist(c.Dist)
	if err != nil {
		return nil, err
	}
	if isChar {
		lengths, err := parseLen(c.Len)
		if err != nil {
			return nil, err
		}
		return workload.NewStringColumn(typ, dist, lengths, c.Seed)
	}
	return workload.NewIntColumn(typ, dist, c.Offset)
}

// parseType resolves "char:K" / "varchar:MAX" / "int32" / "int64".
func parseType(s string) (typ value.Type, isChar bool, err error) {
	kind, args := splitSpec(s)
	switch kind {
	case "char":
		k, err := intArgs(args, 1, "char")
		if err != nil {
			return value.Type{}, false, err
		}
		return value.Char(k[0]), true, nil
	case "varchar":
		k, err := intArgs(args, 1, "varchar")
		if err != nil {
			return value.Type{}, false, err
		}
		return value.VarChar(k[0]), true, nil
	case "int32", "int":
		return value.Int32(), false, nil
	case "int64", "bigint":
		return value.Int64(), false, nil
	default:
		return value.Type{}, false, fmt.Errorf("unknown type %q (want char:K, varchar:MAX, int32, int64)", s)
	}
}

// parseDist resolves "uniform:D" / "zipf:D:THETA" / "hotset:D:FRAC:PROB".
func parseDist(s string) (distrib.Discrete, error) {
	kind, args := splitSpec(s)
	switch kind {
	case "uniform":
		a, err := intArgs(args, 1, "uniform")
		if err != nil {
			return nil, err
		}
		return distrib.NewUniform(int64(a[0])), nil
	case "zipf":
		if len(args) != 2 {
			return nil, fmt.Errorf("zipf wants zipf:D:THETA, got %q", s)
		}
		d, err1 := strconv.ParseInt(args[0], 10, 64)
		theta, err2 := strconv.ParseFloat(args[1], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad zipf spec %q", s)
		}
		return distrib.NewZipf(d, theta), nil
	case "hotset":
		if len(args) != 3 {
			return nil, fmt.Errorf("hotset wants hotset:D:FRAC:PROB, got %q", s)
		}
		d, err1 := strconv.ParseInt(args[0], 10, 64)
		frac, err2 := strconv.ParseFloat(args[1], 64)
		prob, err3 := strconv.ParseFloat(args[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad hotset spec %q", s)
		}
		return distrib.NewHotSet(d, frac, prob), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q (want uniform:D, zipf:D:THETA, hotset:D:FRAC:PROB)", s)
	}
}

// parseLen resolves the length distribution of character columns.
func parseLen(s string) (distrib.Lengths, error) {
	kind, args := splitSpec(s)
	switch kind {
	case "const":
		a, err := intArgs(args, 1, "const")
		if err != nil {
			return nil, err
		}
		return distrib.NewConstantLen(a[0]), nil
	case "uniform":
		a, err := intArgs(args, 2, "uniform")
		if err != nil {
			return nil, err
		}
		return distrib.NewUniformLen(a[0], a[1]), nil
	case "normal":
		if len(args) != 4 {
			return nil, fmt.Errorf("normal wants normal:MU:SIGMA:LO:HI, got %q", s)
		}
		mu, err1 := strconv.ParseFloat(args[0], 64)
		sigma, err2 := strconv.ParseFloat(args[1], 64)
		lo, err3 := strconv.Atoi(args[2])
		hi, err4 := strconv.Atoi(args[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("bad normal spec %q", s)
		}
		return distrib.NewNormalLen(mu, sigma, lo, hi), nil
	case "bimodal":
		if len(args) != 3 {
			return nil, fmt.Errorf("bimodal wants bimodal:SHORT:LONG:PSHORT, got %q", s)
		}
		short, err1 := strconv.Atoi(args[0])
		long, err2 := strconv.Atoi(args[1])
		p, err3 := strconv.ParseFloat(args[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad bimodal spec %q", s)
		}
		return distrib.NewBimodalLen(short, long, p), nil
	default:
		return nil, fmt.Errorf("unknown length distribution %q (want const:L, uniform:LO:HI, normal:MU:SIGMA:LO:HI, bimodal:SHORT:LONG:PSHORT)", s)
	}
}

// splitSpec separates "kind:arg1:arg2" into kind and args.
func splitSpec(s string) (string, []string) {
	parts := strings.Split(s, ":")
	return parts[0], parts[1:]
}

// intArgs parses exactly want integer arguments.
func intArgs(args []string, want int, kind string) ([]int, error) {
	if len(args) != want {
		return nil, fmt.Errorf("%s wants %d argument(s), got %d", kind, want, len(args))
	}
	out := make([]int, len(args))
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("%s: bad integer %q", kind, a)
		}
		out[i] = v
	}
	return out, nil
}
