package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"samplecf/internal/engine"
)

// newObsTestServer is newTestServer with access to the underlying *server,
// for tests that tune the logger or slow-trace threshold.
func newObsTestServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 4, CacheEntries: 64})
	t.Cleanup(eng.Close)
	srv := newServer(eng)
	spec := demoSpec()
	spec.N = 5000
	tab, err := buildTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.register(tab); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

const obsEstimateBody = `{"table": "demo", "columns": ["region"], "codec": "rle", "fraction": 0.02, "seed": 7}`

// TestMetricsEndpoint drives one estimate through the engine and checks
// GET /metrics serves valid exposition: the right content type, HELP/TYPE
// pairs, the per-stage latency histograms, per-codec byte counters, and
// the HTTP families added by the middleware.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newObsTestServer(t)
	var est estimateResultJSON
	if code := postJSON(t, ts.URL+"/estimate", obsEstimateBody, &est); code != http.StatusOK {
		t.Fatalf("estimate status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)

	for _, want := range []string{
		// Engine stage histograms: the estimate above must have recorded
		// the fixed pipeline stages.
		`samplecf_engine_stage_duration_seconds_count{stage="draw"} 1`,
		`samplecf_engine_stage_duration_seconds_count{stage="sort"} 1`,
		`samplecf_engine_stage_duration_seconds_count{stage="compress"} 1`,
		// Engine counters migrated from Stats.
		"# TYPE samplecf_engine_cache_misses_total counter",
		"samplecf_engine_cache_misses_total 1",
		// HTTP middleware families.
		`samplecf_http_requests_total{route="estimate"} 1`,
		`samplecf_http_request_duration_seconds_count{route="estimate"} 1`,
		// Default-registry pipeline metrics (per-codec byte counters from
		// internal/compress, rows drawn from internal/sampling).
		`samplecf_compress_uncompressed_bytes_total{codec="rle"}`,
		`samplecf_compress_compressed_bytes_total{codec="rle"}`,
		"samplecf_sampling_rows_drawn_total",
		"samplecf_sortkeys_rows_sorted_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every sample family carries HELP and TYPE.
	for _, fam := range []string{"samplecf_engine_cache_hits_total", "samplecf_http_requests_total"} {
		if !strings.Contains(out, "# HELP "+fam+" ") || !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("missing HELP/TYPE for %s", fam)
		}
	}
}

// TestRequestIDPropagation covers the X-Request-ID contract: an inbound ID
// echoes back; absent or unacceptable IDs are replaced with generated ones.
func TestRequestIDPropagation(t *testing.T) {
	ts, _ := newObsTestServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-trace-42" {
		t.Fatalf("inbound request ID not propagated: %q", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	generated := resp.Header.Get("X-Request-ID")
	if len(generated) != 16 {
		t.Fatalf("generated request ID %q, want 16 hex chars", generated)
	}

	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", strings.Repeat("x", 100))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Fatalf("oversized inbound ID not replaced: %q", got)
	}
}

// TestServerTimingHeader checks estimate responses carry a Server-Timing
// header with the total and the engine stages.
func TestServerTimingHeader(t *testing.T) {
	ts, _ := newObsTestServer(t)
	resp, err := http.Post(ts.URL+"/estimate", "application/json", strings.NewReader(obsEstimateBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d", resp.StatusCode)
	}
	st := resp.Header.Get("Server-Timing")
	if !strings.HasPrefix(st, "total;dur=") {
		t.Fatalf("Server-Timing %q missing total", st)
	}
	// The estimate ran through the engine, so at least one pipeline stage
	// must appear after the total.
	if !strings.Contains(st, ", ") {
		t.Fatalf("Server-Timing %q reports no stages", st)
	}
	for _, part := range strings.Split(st, ", ") {
		if !strings.Contains(part, ";dur=") {
			t.Fatalf("Server-Timing entry %q malformed", part)
		}
	}
}

// TestAccessLog checks the slog access log carries the request identity.
func TestAccessLog(t *testing.T) {
	ts, srv := newObsTestServer(t)
	var buf bytes.Buffer
	srv.logger = slog.New(slog.NewJSONHandler(&buf, nil))

	req, _ := http.NewRequest("GET", ts.URL+"/stats", nil)
	req.Header.Set("X-Request-ID", "log-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var line struct {
		Msg       string `json:"msg"`
		RequestID string `json:"request_id"`
		Method    string `json:"method"`
		Path      string `json:"path"`
		Status    int    `json:"status"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log not one JSON line: %v\n%s", err, buf.String())
	}
	if line.Msg != "request" || line.RequestID != "log-probe-1" ||
		line.Method != "GET" || line.Path != "/stats" || line.Status != 200 {
		t.Fatalf("access log line %+v", line)
	}
}

// TestSlowTraceDump sets a zero-distance slow threshold and checks the
// slow-request log line carries the structured trace JSON with the
// pipeline stage spans.
func TestSlowTraceDump(t *testing.T) {
	ts, srv := newObsTestServer(t)
	var buf bytes.Buffer
	srv.logger = slog.New(slog.NewJSONHandler(&buf, nil))
	srv.slowTrace = time.Nanosecond

	var est estimateResultJSON
	if code := postJSON(t, ts.URL+"/estimate", obsEstimateBody, &est); code != http.StatusOK {
		t.Fatalf("estimate status %d", code)
	}

	var slow struct {
		Msg   string `json:"msg"`
		Trace struct {
			Name    string `json:"name"`
			TotalNs int64  `json:"total_ns"`
			Spans   []struct {
				Name    string `json:"name"`
				Parent  int    `json:"parent"`
				StartNs int64  `json:"start_ns"`
				DurNs   int64  `json:"dur_ns"`
			} `json:"spans"`
		} `json:"trace"`
	}
	found := false
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if err := json.Unmarshal([]byte(ln), &slow); err == nil && slow.Msg == "slow request" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no slow-request line in log:\n%s", buf.String())
	}
	if slow.Trace.Name != "POST /estimate" || slow.Trace.TotalNs <= 0 {
		t.Fatalf("trace doc %+v", slow.Trace)
	}
	seen := map[string]bool{}
	for _, sp := range slow.Trace.Spans {
		seen[sp.Name] = true
		if sp.DurNs < 0 || sp.StartNs < 0 {
			t.Errorf("span %+v has negative timing", sp)
		}
	}
	for _, stage := range []string{"draw", "sort", "compress"} {
		if !seen[stage] {
			t.Errorf("slow trace missing stage %q (got %v)", stage, seen)
		}
	}
}

// TestStatsShimFieldNames is the /stats regression test: the JSON contract
// predates the obs registry, so every legacy field must survive the
// re-derivation, and the values must agree with engine.Stats.
func TestStatsShimFieldNames(t *testing.T) {
	ts, srv := newObsTestServer(t)
	var est estimateResultJSON
	if code := postJSON(t, ts.URL+"/estimate", obsEstimateBody, &est); code != http.StatusOK {
		t.Fatalf("estimate status %d", code)
	}
	// Same request again: a cache hit, so hits and misses both move.
	if code := postJSON(t, ts.URL+"/estimate", obsEstimateBody, &est); code != http.StatusOK {
		t.Fatalf("estimate status %d", code)
	}

	var stats map[string]json.Number
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	want := []string{
		"cache_hits", "cache_misses", "cache_evictions", "cache_entries",
		"samples_drawn", "samples_shared", "maintained_hits", "maintained_stale",
		"indexes_prepared", "evaluated", "precision_hits", "coalesced_waits",
		"shard_scatters", "shard_cache_hits", "shard_cache_misses",
		"stratified_estimates", "strata_directory_builds",
		"adaptive_rounds", "adaptive_rows", "prepare_nanos", "sort_rows",
		"panics_recovered", "shard_retries", "degraded_results",
		"stale_served", "breaker_opens",
		"tables",
	}
	for _, field := range want {
		if _, ok := stats[field]; !ok {
			t.Errorf("/stats missing legacy field %q", field)
		}
	}
	if len(stats) != len(want) {
		t.Errorf("/stats has %d fields, want %d: %v", len(stats), len(want), stats)
	}

	st := srv.eng.Stats()
	for field, engineValue := range map[string]uint64{
		"cache_hits":    st.Hits,
		"cache_misses":  st.Misses,
		"samples_drawn": st.SamplesDrawn,
		"evaluated":     st.Evaluated,
		"sort_rows":     st.SortRows,
		"cache_entries": uint64(st.CacheEntries),
	} {
		got, err := stats[field].Int64()
		if err != nil {
			t.Fatalf("field %s: %v", field, err)
		}
		if uint64(got) != engineValue {
			t.Errorf("/stats %s = %d, engine.Stats says %d", field, got, engineValue)
		}
	}
	if hits, _ := stats["cache_hits"].Int64(); hits != 1 {
		t.Errorf("cache_hits = %d, want 1", hits)
	}
}
