package main

import (
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
)

// opsExempt reports whether a path belongs to the operational surface that
// must keep answering even when the service is saturated: health checks,
// metric scrapes, stats reads, and profile captures are exactly how an
// operator diagnoses the overload the limiter is reporting.
func opsExempt(path string) bool {
	switch path {
	case "/healthz", "/metrics", "/stats":
		return true
	}
	return strings.HasPrefix(path, "/debug/pprof")
}

// admission caps concurrently served non-ops requests at s.maxInflight
// (0 disables the limiter and returns next unwrapped). Excess requests are
// rejected immediately with 503 and Retry-After: 1 rather than queued —
// under estimate stampedes the engine's worker pool is the bottleneck, and
// queueing in the HTTP layer would only convert overload into unbounded
// tail latency while holding a goroutine per queued request. The limiter
// runs inside the observability middleware, so rejected requests still get
// request IDs, access-log lines, and their samplecf_http_requests_total
// increment; the rejections themselves are ledgered separately as
// samplecf_http_rejected_total.
func (s *server) admission(next http.Handler) http.Handler {
	if s.maxInflight <= 0 {
		return next
	}
	rejected := s.registry.Counter("samplecf_http_rejected_total",
		"Requests rejected with 503 by the -max-inflight admission limit.")
	limit := int64(s.maxInflight)
	var inflight atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if opsExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if inflight.Add(1) > limit {
			inflight.Add(-1)
			rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable,
				fmt.Errorf("at the -max-inflight limit of %d concurrent requests; retry shortly", s.maxInflight))
			return
		}
		defer inflight.Add(-1)
		next.ServeHTTP(w, r)
	})
}
