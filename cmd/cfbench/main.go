// Command cfbench runs the paper-reproduction experiments (E1-E10; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results).
//
//	cfbench -list                 # enumerate experiments
//	cfbench -exp E1 -scale 0.2    # run one at 20% scale
//	cfbench -all -scale 1         # the full evaluation (minutes)
package main

import (
	"flag"
	"fmt"
	"os"

	"samplecf/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cfbench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list    = flag.Bool("list", false, "list experiments")
		exp     = flag.String("exp", "", "experiment id to run (e.g. E1)")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 0.2, "scale factor: 1.0 = full published parameterization")
		seed    = flag.Uint64("seed", 42, "master seed")
		verbose = flag.Bool("v", false, "per-trial progress")
	)
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Verbose: *verbose}
	switch {
	case *list:
		fmt.Println("ID    Artifact                                  Title")
		fmt.Println("----  ----------------------------------------  -----")
		for _, e := range experiments.All() {
			fmt.Printf("%-4s  %-40s  %s\n", e.ID, e.Artifact, e.Title)
		}
		return nil
	case *all:
		return experiments.RunAll(cfg, os.Stdout)
	case *exp != "":
		e, err := experiments.ByID(*exp)
		if err != nil {
			return err
		}
		return experiments.Run(e, cfg, os.Stdout)
	default:
		flag.Usage()
		return fmt.Errorf("provide -list, -exp ID, or -all")
	}
}
