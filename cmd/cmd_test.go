// Package cmd_test builds and exercises the command-line tools end to end:
// datagen → cfest over a real file, and cfbench's registry. These are the
// only tests that run the binaries as a user would.
package cmd_test

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildTool compiles one command into a temp dir and returns the binary path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "samplecf/cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestDatagenThenCfest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	datagen := buildTool(t, "datagen")
	cfest := buildTool(t, "cfest")
	csv := filepath.Join(t.TempDir(), "data.csv")

	out := run(t, datagen, "-n", "5000", "-d", "200", "-k", "20", "-seed", "3", "-o", csv, "-stats")
	if !strings.Contains(out, "analytic CF") {
		t.Fatalf("datagen -stats output missing analytics:\n%s", out)
	}
	if fi, err := os.Stat(csv); err != nil || fi.Size() == 0 {
		t.Fatalf("datagen produced no file: %v", err)
	}

	out = run(t, cfest, "-csv", csv, "-schema", "a:char:20", "-codec", "nullsuppression",
		"-fraction", "0.1", "-seed", "1", "-truth")
	for _, want := range []string{"estimated CF", "exact CF", "sample rows (r)   : 500", "2σ interval"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cfest output missing %q:\n%s", want, out)
		}
	}
	// The ratio error printed must be small at a 10% sample.
	if !strings.Contains(out, "ratio error 1.0") {
		t.Fatalf("cfest ratio error not near 1:\n%s", out)
	}
}

func TestCfestGeneratedMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	cfest := buildTool(t, "cfest")
	out := run(t, cfest, "-gen", "-n", "20000", "-d", "500", "-codec", "globaldict-p4",
		"-fraction", "0.05", "-seed", "2")
	if !strings.Contains(out, "codec             : globaldict(p=4)") {
		t.Fatalf("unexpected codec line:\n%s", out)
	}
	// Error paths: missing inputs exit non-zero.
	if err := exec.Command(cfest).Run(); err == nil {
		t.Fatal("cfest with no inputs succeeded")
	}
	if err := exec.Command(cfest, "-csv", "/nonexistent.csv", "-schema", "a:char:5").Run(); err == nil {
		t.Fatal("cfest with missing file succeeded")
	}
	if err := exec.Command(cfest, "-gen", "-codec", "bogus").Run(); err == nil {
		t.Fatal("cfest with unknown codec succeeded")
	}
}

// TestCfserveGracefulShutdown runs the service binary end to end: start on
// an ephemeral port, serve a /whatif batch over real HTTP, then deliver
// SIGTERM and require a clean drain and zero exit.
func TestCfserveGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	cfserve := buildTool(t, "cfserve")
	cmd := exec.Command(cfserve, "-addr", "127.0.0.1:0", "-demo")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first log line reports the bound address.
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.Fields(line[i+len("listening on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listening line on stderr (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	resp, err := http.Post("http://"+addr+"/whatif", "application/json",
		strings.NewReader(`{"table":"demo","fraction":0.01,"seed":1,"candidates":[
			{"columns":["region"],"codec":"nullsuppression"},
			{"columns":["region"],"codec":"rle"}]}`))
	if err != nil {
		t.Fatalf("whatif request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "shared_sample") {
		t.Fatalf("whatif response missing shared_sample: %s", body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cfserve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cfserve did not exit within 15s of SIGTERM")
	}
}

func TestCfbenchListAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	cfbench := buildTool(t, "cfbench")
	out := run(t, cfbench, "-list")
	for _, id := range []string{"E1", "E5", "E10", "E13"} {
		if !strings.Contains(out, id) {
			t.Fatalf("cfbench -list missing %s:\n%s", id, out)
		}
	}
	out = run(t, cfbench, "-exp", "E5", "-scale", "0.02", "-seed", "7")
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "completed in") {
		t.Fatalf("cfbench E5 output malformed:\n%s", out)
	}
	if err := exec.Command(cfbench, "-exp", "E99").Run(); err == nil {
		t.Fatal("cfbench with unknown experiment succeeded")
	}
}
