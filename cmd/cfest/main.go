// Command cfest estimates the compression fraction of an index using
// sampling (the paper's SampleCF, Fig. 2).
//
// Estimate from a CSV file:
//
//	cfest -csv data.csv -schema "name:char:20,qty:int" -codec nullsuppression -fraction 0.01
//
// Estimate on a generated table (no file needed):
//
//	cfest -gen -n 1000000 -d 10000 -k 20 -codec globaldict-p4 -fraction 0.01
//
// Flags -cols selects the index columns (default: all), -truth additionally
// computes the exact CF by compressing everything (slow — that is the
// point), and -seed fixes the sample. -timing reruns the estimate through
// the estimation engine and prints the per-stage span tree (draw, sort,
// compress, adaptive rounds) recorded by the tracing layer.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/csvio"
	"samplecf/internal/distrib"
	"samplecf/internal/engine"
	"samplecf/internal/obs"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cfest: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		csvPath    = flag.String("csv", "", "CSV file to estimate (requires -schema)")
		schemaSpec = flag.String("schema", "", "schema spec, e.g. \"name:char:20,qty:int\"")
		header     = flag.Bool("header", true, "CSV file has a header row")
		gen        = flag.Bool("gen", false, "use a generated table instead of a CSV file")
		n          = flag.Int64("n", 1_000_000, "generated table rows")
		dDistinct  = flag.Int64("d", 10_000, "generated distinct values")
		k          = flag.Int("k", 20, "generated CHAR(k) width")
		codecName  = flag.String("codec", "nullsuppression", "codec: "+strings.Join(compress.Names(), ", "))
		fraction   = flag.Float64("fraction", 0.01, "sampling fraction f")
		rows       = flag.Int64("rows", 0, "explicit sample size r (overrides -fraction)")
		cols       = flag.String("cols", "", "comma-separated index columns (default: all)")
		seed       = flag.Uint64("seed", 1, "sampling seed")
		withTruth  = flag.Bool("truth", false, "also compute exact CF by compressing everything")
		buildIndex = flag.Bool("build-index", false, "materialize a real B+-tree on the sample")
		timing     = flag.Bool("timing", false, "print the per-stage span tree (draw/sort/compress/rounds) of the estimate")
		// Adaptive estimation: state the accuracy, let the sampler pick r.
		targetError = flag.Float64("target-error", 0, "adaptive mode: CI half-width target on CF (e.g. 0.02 = ±2 points); 0 = fixed sample size")
		confidence  = flag.Float64("confidence", 0.95, "adaptive mode: CI confidence level")
		maxRows     = flag.Int64("max-rows", 0, "adaptive mode: row budget (0 = table size)")
	)
	flag.Parse()

	codec, err := compress.Lookup(*codecName)
	if err != nil {
		return err
	}

	var tab *workload.Table
	switch {
	case *gen:
		col, err := workload.NewStringColumn(value.Char(*k), distrib.NewUniform(*dDistinct), distrib.NewUniformLen(0, *k), *seed)
		if err != nil {
			return err
		}
		tab, err = workload.Generate(workload.Spec{
			Name: "generated", N: *n, Seed: *seed,
			Cols: []workload.SpecColumn{{Name: "a", Gen: col}},
		})
		if err != nil {
			return err
		}
	case *csvPath != "":
		if *schemaSpec == "" {
			return fmt.Errorf("-csv requires -schema")
		}
		schema, err := csvio.ParseSchemaSpec(*schemaSpec)
		if err != nil {
			return err
		}
		f, err := os.Open(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		rws, err := csvio.ReadRows(f, schema, *header)
		if err != nil {
			return err
		}
		tab, err = workload.NewTableFromRows(*csvPath, schema, rws)
		if err != nil {
			return err
		}
	default:
		flag.Usage()
		return fmt.Errorf("provide -csv FILE or -gen")
	}

	var keyCols []string
	if *cols != "" {
		keyCols = strings.Split(*cols, ",")
	}
	opts := core.Options{
		Fraction:   *fraction,
		SampleRows: *rows,
		Codec:      codec,
		KeyColumns: keyCols,
		Seed:       *seed,
		BuildIndex: *buildIndex,
	}
	// -fraction/-rows, when passed explicitly, seed an adaptive run's first
	// round only — but the fixed-mode 1% *default* would be a blind starting
	// size, so unless the user actually typed -fraction, adaptive mode
	// starts from the adaptive minimum instead.
	fractionSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fraction" {
			fractionSet = true
		}
	})

	if *timing {
		// -timing routes the one-shot estimate through the estimation
		// engine with a trace on the context — the same span machinery
		// cfserve uses — and prints the recorded stage tree.
		if *buildIndex {
			return fmt.Errorf("-timing estimates through the engine pipeline, which sizes pages without materializing a B+-tree; drop -build-index")
		}
		return runTimed(tab, keyCols, codec, timedOptions{
			fraction:    opts.Fraction,
			rows:        *rows,
			seed:        *seed,
			targetError: *targetError,
			confidence:  *confidence,
			maxRows:     *maxRows,
			fractionSet: fractionSet,
			withTruth:   *withTruth,
		})
	}

	var est core.Estimate
	if *targetError > 0 {
		// Adaptive mode: grow the sample until CF is known to within
		// ±target-error at the requested confidence (or -max-rows runs out).
		if !fractionSet && *rows == 0 {
			opts.Fraction = 0
		}
		ares, err := core.SampleCFAdaptive(tab, tab.Schema(), opts, core.Precision{
			TargetError:   *targetError,
			Confidence:    *confidence,
			MaxSampleRows: *maxRows,
		})
		if err != nil {
			return err
		}
		est = ares.Estimate
		fmt.Printf("table rows        : %d\n", tab.NumRows())
		fmt.Printf("sample rows (r)   : %d (adaptive, %d rounds)\n", est.SampleRows, ares.Rounds)
		fmt.Printf("sample distinct d': %d\n", est.SampleDistinct)
		fmt.Printf("codec             : %s\n", codec.Name())
		fmt.Printf("estimated CF      : %.6f\n", est.CF)
		fmt.Printf("estimated savings : %.1f%%\n", (1-est.CF)*100)
		fmt.Printf("achieved interval : [%.6f, %.6f] (±%.6f at %.0f%%, %s)\n",
			ares.CILo, ares.CIHi, ares.AchievedError, *confidence*100, ares.Method)
		if !ares.Converged {
			budget := *maxRows
			if budget == 0 {
				budget = tab.NumRows() // SampleCFAdaptive's default cap
			}
			fmt.Printf("NOT CONVERGED     : row budget %d exhausted before reaching ±%.6f\n",
				budget, *targetError)
		}
		fmt.Printf("durations         : sample %v, build %v, compress %v\n",
			est.SampleDuration, est.BuildDuration, est.CompressDuration)
	} else {
		est, err = core.SampleCF(tab, tab.Schema(), opts)
		if err != nil {
			return err
		}
		fmt.Printf("table rows        : %d\n", tab.NumRows())
		fmt.Printf("sample rows (r)   : %d\n", est.SampleRows)
		fmt.Printf("sample distinct d': %d\n", est.SampleDistinct)
		fmt.Printf("codec             : %s\n", codec.Name())
		fmt.Printf("estimated CF      : %.6f\n", est.CF)
		fmt.Printf("estimated savings : %.1f%%\n", (1-est.CF)*100)
		if strings.HasPrefix(codec.Name(), "nullsuppression") {
			lo, hi := core.NSConfidenceInterval(est.CF, est.SampleRows, 2)
			fmt.Printf("2σ interval (T1)  : [%.6f, %.6f]\n", lo, hi)
		}
		fmt.Printf("durations         : sample %v, build %v, compress %v\n",
			est.SampleDuration, est.BuildDuration, est.CompressDuration)
	}

	if *withTruth {
		truth, err := core.TrueCF(tab, keyCols, codec, 0)
		if err != nil {
			return err
		}
		fmt.Printf("exact CF          : %.6f (ratio error %.4f)\n",
			truth.CF(), ratioErr(est.CF, truth.CF()))
	}
	return nil
}

// timedOptions carries the flag values the -timing path needs.
type timedOptions struct {
	fraction    float64
	rows        int64
	seed        uint64
	targetError float64
	confidence  float64
	maxRows     int64
	fractionSet bool
	withTruth   bool
}

// runTimed estimates through the engine with a trace threaded on the
// context, then prints the estimate followed by the per-stage span tree.
func runTimed(tab *workload.Table, keyCols []string, codec compress.Codec, o timedOptions) error {
	req := engine.Request{
		Table:      tab,
		KeyColumns: keyCols,
		Codec:      codec,
		Fraction:   o.fraction,
		SampleRows: o.rows,
		Seed:       o.seed,
	}
	adaptive := o.targetError > 0
	if adaptive {
		req.TargetError = o.targetError
		req.Confidence = o.confidence
		req.MaxSampleRows = o.maxRows
		if !o.fractionSet && o.rows == 0 {
			req.Fraction = 0 // start from the adaptive minimum, not the fixed-mode default
		}
	}

	eng := engine.New(engine.Config{Workers: 1, CacheEntries: -1})
	defer eng.Close()
	tr := obs.NewTrace("estimate " + tab.Name())
	ctx := obs.WithTrace(context.Background(), tr)
	res := eng.Estimate(ctx, req)
	tr.Finish()
	if res.Err != nil {
		return res.Err
	}

	est := res.Estimate
	fmt.Printf("table rows        : %d\n", tab.NumRows())
	if adaptive {
		fmt.Printf("sample rows (r)   : %d (adaptive, %d rounds)\n", est.SampleRows, res.Rounds)
	} else {
		fmt.Printf("sample rows (r)   : %d\n", est.SampleRows)
	}
	fmt.Printf("sample distinct d': %d\n", est.SampleDistinct)
	fmt.Printf("codec             : %s\n", codec.Name())
	fmt.Printf("estimated CF      : %.6f\n", est.CF)
	fmt.Printf("estimated savings : %.1f%%\n", (1-est.CF)*100)
	if adaptive {
		fmt.Printf("achieved error    : ±%.6f at %.0f%% (converged=%v)\n",
			res.AchievedError, o.confidence*100, res.Converged)
	}
	fmt.Printf("\nstage timings (total %v):\n", tr.Total())
	tr.WriteTree(os.Stdout)

	if o.withTruth {
		truth, err := core.TrueCF(tab, keyCols, codec, 0)
		if err != nil {
			return err
		}
		fmt.Printf("exact CF          : %.6f (ratio error %.4f)\n",
			truth.CF(), ratioErr(est.CF, truth.CF()))
	}
	return nil
}

func ratioErr(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > b {
		return a / b
	}
	return b / a
}
