// Golden equivalence for stratification: Strata=1 is the degenerate
// configuration and must be *byte-identical* to the unstratified path —
// same sample draw, same sorted arena, same compressed size — for every
// pinned golden case the engine can serve. Stratum 0 keeps the request
// seed (Weyl stream 0 is the identity), a one-bucket directory indexes
// every physical row in scan order, and a one-arm merge passes the
// estimate through verbatim, so any drift here means the stratified path
// changed estimator semantics, not just performance.
package samplecf_test

import (
	"context"
	"testing"

	"samplecf"
)

// TestGoldenSingleStratumMatchesUnstratified pins the Strata=1
// configuration to the golden table: every engine-eligible case (fixed-r,
// WR) must reproduce the exact pinned {comp, uncomp, r, d'} quadruple
// through the stratified path. FreshSample keeps the draw a pure function
// of (rows, r, seed), independent of the maintained backing sample's
// instance seed.
func TestGoldenSingleStratumMatchesUnstratified(t *testing.T) {
	tab := goldenTable(t)
	eng := samplecf.NewEngine(samplecf.EngineConfig{CacheEntries: -1})
	defer eng.Close()

	cases := goldenMatrix()
	if len(cases) != len(goldenWant) {
		t.Fatalf("golden table has %d rows, matrix has %d cases", len(goldenWant), len(cases))
	}
	ran := 0
	for i, c := range cases {
		if c.wor || c.rows == 0 {
			continue // engine draws WR with SampleRows
		}
		wantComp, wantUncomp := goldenWant[i][0], goldenWant[i][1]
		wantR, wantD := goldenWant[i][2], goldenWant[i][3]
		t.Run(c.name(), func(t *testing.T) {
			codec, err := samplecf.LookupCodec(c.codec)
			if err != nil {
				t.Fatal(err)
			}
			res := eng.Estimate(context.Background(), samplecf.EngineRequest{
				Table: tab, KeyColumns: c.cols, Codec: codec,
				SampleRows: c.rows, Seed: c.seed, FreshSample: true,
				Strata: 1,
			})
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			est := res.Estimate
			if est.Result.CompressedBytes != wantComp ||
				est.Result.UncompressedBytes != wantUncomp ||
				est.SampleRows != wantR ||
				est.SampleDistinct != wantD {
				t.Errorf("single-stratum estimate drifted: got {comp=%d, uncomp=%d, r=%d, d'=%d}, want {%d, %d, %d, %d}",
					est.Result.CompressedBytes, est.Result.UncompressedBytes,
					est.SampleRows, est.SampleDistinct,
					wantComp, wantUncomp, wantR, wantD)
			}
			if want := float64(wantComp) / float64(wantUncomp); est.CF != want {
				t.Errorf("CF = %v, want %v", est.CF, want)
			}
		})
		ran++
	}
	if ran == 0 {
		t.Fatal("no golden cases were engine-eligible")
	}
}
