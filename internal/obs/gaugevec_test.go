package obs

import (
	"strings"
	"testing"
)

// TestGaugeVec covers the gauge family: child identity, independent
// values, nil-safety, and registry kind checks.
func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_shard_epoch", "Per-shard epoch.", "shard")
	v.With("t/0").Set(3)
	v.With("t/1").Set(7)
	v.With("t/0").Add(1)
	if got := v.With("t/0").Value(); got != 4 {
		t.Errorf("child t/0 = %d, want 4", got)
	}
	if got := v.With("t/1").Value(); got != 7 {
		t.Errorf("child t/1 = %d, want 7", got)
	}
	if v.With("t/0") != v.With("t/0") {
		t.Error("With must return the same child for the same label")
	}
	// Idempotent re-registration returns the same family.
	if r.GaugeVec("test_shard_epoch", "Per-shard epoch.", "shard") != v {
		t.Error("GaugeVec re-registration returned a different family")
	}

	// Nil-safety: every method is a no-op.
	var nilVec *GaugeVec
	nilVec.With("x").Set(1)
	var nilReg *Registry
	if nilReg.GaugeVec("x", "", "l") != nil {
		t.Error("nil registry should hand out nil vecs")
	}
}

// TestGaugeVecExposition pins the Prometheus rendering: one sample per
// child, label values sorted, gauge TYPE line.
func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_table_shards", "Shard count per table.", "table")
	v.With("zeta").Set(2)
	v.With("alpha").Set(8)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantOrder := []string{
		"# TYPE test_table_shards gauge",
		`test_table_shards{table="alpha"} 8`,
		`test_table_shards{table="zeta"} 2`,
	}
	pos := -1
	for _, w := range wantOrder {
		i := strings.Index(out, w)
		if i < 0 {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
		if i < pos {
			t.Errorf("exposition out of order at %q:\n%s", w, out)
		}
		pos = i
	}
}

// TestGaugeVecKindMismatch pins the wiring-bug panic: re-registering a
// gauge-vec name as a different kind must panic.
func TestGaugeVecKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("test_kind", "x", "l")
	defer func() {
		if recover() == nil {
			t.Error("expected a kind-mismatch panic")
		}
	}()
	r.Counter("test_kind", "x")
}
