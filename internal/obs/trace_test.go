package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestStartSpanUntracedIsNoop(t *testing.T) {
	ctx := context.Background()
	got, end := StartSpan(ctx, "draw")
	if got != ctx {
		t.Fatalf("untraced StartSpan returned a new context")
	}
	end.End() // must not panic
	if TraceFrom(ctx) != nil {
		t.Fatalf("TraceFrom on plain context non-nil")
	}
}

func TestTraceTree(t *testing.T) {
	tr := NewTrace("estimate")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatalf("TraceFrom lost the trace")
	}

	ctx1, e1 := StartSpan(ctx, "draw")
	_, e2 := StartSpan(ctx1, "encode")
	time.Sleep(time.Millisecond)
	e2.End()
	e1.End()
	_, e3 := StartSpan(ctx, "sort")
	e3.End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "draw" || spans[0].Parent != -1 {
		t.Fatalf("span 0 = %+v, want root draw", spans[0])
	}
	if spans[1].Name != "encode" || spans[1].Parent != 0 {
		t.Fatalf("span 1 = %+v, want encode child of 0", spans[1])
	}
	if spans[2].Name != "sort" || spans[2].Parent != -1 {
		t.Fatalf("span 2 = %+v, want root sort", spans[2])
	}
	if spans[0].Dur < spans[1].Dur {
		t.Fatalf("parent draw (%v) shorter than child encode (%v)", spans[0].Dur, spans[1].Dur)
	}
	if tr.Total() < spans[0].Dur {
		t.Fatalf("total %v shorter than draw %v", tr.Total(), spans[0].Dur)
	}
}

func TestStageTotalsSortedDesc(t *testing.T) {
	tr := NewTrace("x")
	ctx := WithTrace(context.Background(), tr)
	_, e := StartSpan(ctx, "fast")
	e.End()
	_, e = StartSpan(ctx, "slow")
	time.Sleep(2 * time.Millisecond)
	e.End()
	_, e = StartSpan(ctx, "fast")
	e.End()
	tr.Finish()

	totals := tr.StageTotals()
	if len(totals) != 2 {
		t.Fatalf("got %d totals, want 2", len(totals))
	}
	if totals[0].Name != "slow" {
		t.Fatalf("longest stage = %q, want slow", totals[0].Name)
	}
}

func TestTraceJSONSchema(t *testing.T) {
	tr := NewTrace("whatif")
	ctx := WithTrace(context.Background(), tr)
	_, e := StartSpan(ctx, "draw")
	e.End()
	tr.Finish()

	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name    string `json:"name"`
		TotalNs int64  `json:"total_ns"`
		Spans   []struct {
			Name    string `json:"name"`
			Parent  int    `json:"parent"`
			StartNs int64  `json:"start_ns"`
			DurNs   int64  `json:"dur_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace JSON malformed: %v\n%s", err, raw)
	}
	if doc.Name != "whatif" || doc.TotalNs <= 0 || len(doc.Spans) != 1 {
		t.Fatalf("trace doc = %+v", doc)
	}
	if doc.Spans[0].Name != "draw" || doc.Spans[0].Parent != -1 || doc.Spans[0].DurNs < 0 {
		t.Fatalf("span doc = %+v", doc.Spans[0])
	}
}

func TestWriteTreeAndServerTiming(t *testing.T) {
	tr := NewTrace("estimate")
	ctx := WithTrace(context.Background(), tr)
	ctx1, e1 := StartSpan(ctx, "draw")
	_, e2 := StartSpan(ctx1, "encode rows") // space must sanitize in header
	e2.End()
	e1.End()
	tr.Finish()

	var sb strings.Builder
	tr.WriteTree(&sb)
	out := sb.String()
	for _, want := range []string{"estimate", "└─ draw", "└─ encode rows"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}

	hdr := tr.ServerTimingHeader(3)
	if !strings.HasPrefix(hdr, "total;dur=") {
		t.Fatalf("header %q missing total", hdr)
	}
	if !strings.Contains(hdr, "draw;dur=") || !strings.Contains(hdr, "encode_rows;dur=") {
		t.Fatalf("header %q missing stages", hdr)
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTrace("x")
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < maxSpans+10; i++ {
		_, e := StartSpan(ctx, "s")
		e.End()
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Fatalf("recorded %d spans, want cap %d", got, maxSpans)
	}
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"dropped_spans":10`) {
		t.Fatalf("dropped count missing from JSON")
	}
}

func TestNilTraceMethods(t *testing.T) {
	var tr *Trace
	tr.Finish()
	if tr.Total() != 0 || tr.Spans() != nil || tr.StageTotals() != nil {
		t.Fatalf("nil trace reported data")
	}
	if tr.ServerTimingHeader(3) != "" {
		t.Fatalf("nil trace produced a header")
	}
	var sb strings.Builder
	tr.WriteTree(&sb)
	if sb.Len() != 0 {
		t.Fatalf("nil trace wrote a tree")
	}
	raw, err := json.Marshal(tr)
	if err != nil || string(raw) != "null" {
		t.Fatalf("nil trace JSON = %s, %v", raw, err)
	}
	if WithTrace(context.Background(), nil) != context.Background() {
		t.Fatalf("WithTrace(nil) returned a new context")
	}
}
