// Package obs is the dependency-free telemetry layer of the estimation
// pipeline: a metrics registry (atomic counters, gauges, log-bucketed
// latency histograms, single-label families) exposed in Prometheus text
// exposition format, plus lightweight per-request tracing (Span trees
// threaded through context.Context with runtime/pprof stage labels).
//
// The design constraint is the PR 3 one: the estimation hot path is
// zero-alloc and must stay that way, so every observation primitive —
// Counter.Add, Gauge.Set, Histogram.Observe, Trace span recording — is
// allocation-free and lock-free (atomics) or amortized-allocation-free
// (span slices preallocated per trace). The only allocations happen at
// registration (one-time), at label-child creation (first use of a label
// value), and at exposition (reading /metrics).
//
// Instruments are nil-safe: methods on a nil *Counter, *Gauge, *Histogram,
// or vec are no-ops, and a nil *Registry hands out nil instruments — the
// "no-op registry" BenchmarkObsOverhead compares against.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// desc is the identity of one registered metric.
type desc struct {
	name string
	help string
	// label is the one label-dimension name for vec metrics ("" for plain).
	label string
}

// metric is anything a Registry can expose.
type metric interface {
	describe() desc
	// typeName is the Prometheus TYPE: "counter", "gauge", or "histogram".
	typeName() string
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Get-or-register lookups are idempotent: asking twice
// for the same name returns the same instrument, so independent subsystems
// can share counters by name alone. All methods are safe for concurrent
// use, and all methods on a nil *Registry are no-ops returning nil
// instruments.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// defaultRegistry is the process-wide registry the low-level pipeline
// packages (sampling, sortkeys, compress, workgroup) register into: they
// have no configuration surface to receive a registry through, and their
// counters are process-cumulative by nature.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. cfserve serves it (merged
// with the engine's own registry) at GET /metrics.
func Default() *Registry { return defaultRegistry }

// lookup returns the resident metric under name, or registers the one
// built by mk. It panics when name is already registered as a different
// kind — a wiring bug, not a runtime condition.
func (r *Registry) lookup(name string, mk func() metric) metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m = mk()
	r.metrics[name] = m
	return m
}

// mustBe asserts the registered kind of a name matches the requested one.
func mustBe[T metric](name string, m metric) T {
	if m == nil {
		var zero T
		return zero
	}
	t, ok := m.(T)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q re-registered as a different kind (%T)", name, m))
	}
	return t
}

// Counter returns the monotonically increasing counter registered under
// name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return mustBe[*Counter](name, r.lookup(name, func() metric {
		return &Counter{d: desc{name: name, help: help}}
	}))
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return mustBe[*Gauge](name, r.lookup(name, func() metric {
		return &Gauge{d: desc{name: name, help: help}}
	}))
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time — the shape for values that already live elsewhere (cache sizes,
// pool occupancy) and would otherwise need write-through mirroring.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.lookup(name, func() metric {
		return &gaugeFunc{d: desc{name: name, help: help}, fn: fn}
	})
}

// Histogram returns the log₂-bucketed duration histogram registered under
// name, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return mustBe[*Histogram](name, r.lookup(name, func() metric {
		return &Histogram{d: desc{name: name, help: help}}
	}))
}

// CounterVec returns the counter family registered under name with one
// label dimension, creating it on first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return mustBe[*CounterVec](name, r.lookup(name, func() metric {
		return &CounterVec{d: desc{name: name, help: help, label: label}}
	}))
}

// GaugeVec returns the gauge family registered under name with one label
// dimension, creating it on first use.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	return mustBe[*GaugeVec](name, r.lookup(name, func() metric {
		return &GaugeVec{d: desc{name: name, help: help, label: label}}
	}))
}

// HistogramVec returns the histogram family registered under name with one
// label dimension, creating it on first use.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	if r == nil {
		return nil
	}
	return mustBe[*HistogramVec](name, r.lookup(name, func() metric {
		return &HistogramVec{d: desc{name: name, help: help, label: label}}
	}))
}

// Value returns the current value of the plain counter or gauge registered
// under name — the lookup the cfserve /stats compatibility shim re-derives
// the legacy JSON fields through.
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	switch v := m.(type) {
	case *Counter:
		return float64(v.Value()), true
	case *Gauge:
		return float64(v.Value()), true
	case *gaugeFunc:
		return float64(v.fn()), true
	default:
		return 0, false
	}
}

// snapshot returns the registered metrics sorted by name, for stable
// exposition output.
func (r *Registry) snapshot() []metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].describe().name < out[j].describe().name })
	return out
}

// --- counter -------------------------------------------------------------------

// Counter is a monotonically increasing counter. The zero value is usable;
// methods on a nil *Counter are no-ops.
type Counter struct {
	d desc
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) describe() desc   { return c.d }
func (c *Counter) typeName() string { return "counter" }

// --- gauge ---------------------------------------------------------------------

// Gauge is an instantaneous value that can go up and down. Methods on a
// nil *Gauge are no-ops.
type Gauge struct {
	d desc
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc and Dec move the gauge by ±1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) describe() desc   { return g.d }
func (g *Gauge) typeName() string { return "gauge" }

// gaugeFunc is a gauge read through a callback at exposition time.
type gaugeFunc struct {
	d  desc
	fn func() int64
}

func (g *gaugeFunc) describe() desc   { return g.d }
func (g *gaugeFunc) typeName() string { return "gauge" }

// --- histogram -----------------------------------------------------------------

// histFirstBucket and histLastBucket bound the emitted bucket range: the
// k-th bucket holds observations with bits.Len64(nanos) == k, i.e. values
// in [2^(k-1), 2^k). Exposition emits upper bounds 2^k ns for k in
// [histFirstBucket, histLastBucket] — 1.024µs up to ~17.2s — a fixed,
// monotone bucket ladder; observations outside the range still count (they
// fold into the first cumulative bucket or the +Inf remainder).
const (
	histFirstBucket = 10
	histLastBucket  = 34
	histNumBuckets  = 65 // bits.Len64 ranges over [0, 64]
)

// Histogram is a log₂-bucketed duration histogram: Observe costs one
// bits.Len64, two atomic adds, and no allocation or lock — cheap enough
// for the estimation hot path. Methods on a nil *Histogram are no-ops.
type Histogram struct {
	d      desc
	counts [histNumBuckets]atomic.Uint64
	count  atomic.Uint64
	sumNs  atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[bits.Len64(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumNanos returns the summed observed nanoseconds.
func (h *Histogram) SumNanos() uint64 {
	if h == nil {
		return 0
	}
	return h.sumNs.Load()
}

func (h *Histogram) describe() desc   { return h.d }
func (h *Histogram) typeName() string { return "histogram" }

// --- label families ------------------------------------------------------------

// CounterVec is a family of counters distinguished by one label value.
// With performs a read-locked map lookup and allocates only the first time
// a label value is seen; hot paths that observe with a fixed label should
// call With once at setup and keep the child.
type CounterVec struct {
	d        desc
	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the child counter for the label value, creating it on first
// use. Nil-safe.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c
	}
	if v.children == nil {
		v.children = make(map[string]*Counter)
	}
	c = &Counter{d: v.d}
	v.children[value] = c
	return c
}

func (v *CounterVec) describe() desc   { return v.d }
func (v *CounterVec) typeName() string { return "counter" }

// GaugeVec is a family of gauges distinguished by one label value — the
// shape for per-shard instantaneous values (shard epochs, shard counts)
// whose label set is data-dependent.
type GaugeVec struct {
	d        desc
	mu       sync.RWMutex
	children map[string]*Gauge
}

// With returns the child gauge for the label value, creating it on first
// use. Nil-safe.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[value]; ok {
		return g
	}
	if v.children == nil {
		v.children = make(map[string]*Gauge)
	}
	g = &Gauge{d: v.d}
	v.children[value] = g
	return g
}

func (v *GaugeVec) describe() desc   { return v.d }
func (v *GaugeVec) typeName() string { return "gauge" }

// HistogramVec is a family of histograms distinguished by one label value.
type HistogramVec struct {
	d        desc
	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the child histogram for the label value, creating it on
// first use. Nil-safe.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[value]; ok {
		return h
	}
	if v.children == nil {
		v.children = make(map[string]*Histogram)
	}
	h = &Histogram{d: v.d}
	v.children[value] = h
	return h
}

func (v *HistogramVec) describe() desc   { return v.d }
func (v *HistogramVec) typeName() string { return "histogram" }

// sortedKeys returns a vec's label values in sorted order for stable
// exposition.
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
