package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxSpans bounds one trace's span slice so a pathological request (an
// adaptive loop spinning thousands of rounds) cannot grow a trace without
// bound; spans past the cap are counted, not recorded.
const maxSpans = 1024

// Trace records the stage tree of one request: a flat slice of spans with
// parent indices, preallocated so that recording a span inside the engine
// costs two time reads and two slice writes — no allocation once the trace
// exists. A nil *Trace is the common case (untraced requests): every method
// and StartSpan on a context without a trace is a no-op.
type Trace struct {
	name  string
	start time.Time

	mu      sync.Mutex
	spans   []span
	dropped int
	total   time.Duration
}

// span is one recorded stage. Parent indexes into Trace.spans (-1 for
// roots); times are offsets from Trace.start so a span costs 24 bytes, not
// two time.Times.
type span struct {
	name    string
	parent  int32
	startNs int64
	durNs   int64
}

// NewTrace starts a trace for one request. The name labels the whole tree
// (the request route, or "cfest" for one-shot runs).
func NewTrace(name string) *Trace {
	return &Trace{
		name:  name,
		start: time.Now(),
		spans: make([]span, 0, 16),
	}
}

// Finish stamps the trace's total wall time. Idempotent in effect: later
// calls overwrite with a longer total, which only happens if the caller
// finishes twice anyway.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total = time.Since(t.start)
	t.mu.Unlock()
}

// Total returns the wall time stamped by Finish (elapsed-so-far before
// Finish is called).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total > 0 {
		return t.total
	}
	return time.Since(t.start)
}

// traceKey carries the active trace and current span index through
// context.Context.
type traceKey struct{}

// traceCtx is the context payload: the trace plus the index of the span
// that is the parent of any span started under this context.
type traceCtx struct {
	tr     *Trace
	parent int32
}

// WithTrace returns a context carrying tr; spans started under it become
// roots of tr's tree. A nil tr returns ctx unchanged.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, traceCtx{tr: tr, parent: -1})
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tc, _ := ctx.Value(traceKey{}).(traceCtx)
	return tc.tr
}

// SpanEnd closes a span started by StartSpan. The zero value (untraced
// path) is a no-op, so callers always `defer end.End()` unconditionally.
type SpanEnd struct {
	tr  *Trace
	idx int32
	// prev restores the goroutine's pprof label set at End; nil when no
	// labels were applied.
	prev context.Context
}

// StartSpan opens a named stage under ctx's current span and applies a
// pprof "stage" label to the goroutine so CPU profiles attribute samples
// to pipeline phases. When ctx carries no trace it returns ctx unchanged
// and a no-op SpanEnd — the zero-cost path every untraced estimate takes.
//
// The returned context must be used for child stages; End must be called
// on the same goroutine that called StartSpan (it restores the goroutine's
// previous pprof labels).
func StartSpan(ctx context.Context, name string) (context.Context, SpanEnd) {
	tc, ok := ctx.Value(traceKey{}).(traceCtx)
	if !ok || tc.tr == nil {
		return ctx, SpanEnd{}
	}
	tr := tc.tr
	tr.mu.Lock()
	if len(tr.spans) >= maxSpans {
		tr.dropped++
		tr.mu.Unlock()
		return ctx, SpanEnd{}
	}
	idx := int32(len(tr.spans))
	tr.spans = append(tr.spans, span{
		name:    name,
		parent:  tc.parent,
		startNs: int64(time.Since(tr.start)),
		durNs:   -1,
	})
	tr.mu.Unlock()

	labeled := pprof.WithLabels(ctx, pprof.Labels("stage", name))
	pprof.SetGoroutineLabels(labeled)
	child := context.WithValue(labeled, traceKey{}, traceCtx{tr: tr, parent: idx})
	return child, SpanEnd{tr: tr, idx: idx, prev: ctx}
}

// End closes the span, recording its duration and restoring the
// goroutine's previous pprof labels. No-op on the zero SpanEnd.
func (e SpanEnd) End() {
	if e.tr == nil {
		return
	}
	e.tr.mu.Lock()
	s := &e.tr.spans[e.idx]
	if s.durNs < 0 {
		s.durNs = int64(time.Since(e.tr.start)) - s.startNs
	}
	e.tr.mu.Unlock()
	pprof.SetGoroutineLabels(e.prev)
}

// SpanInfo is one recorded span in exported form.
type SpanInfo struct {
	Name   string        `json:"name"`
	Parent int           `json:"parent"` // index into the span list, -1 for roots
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
}

// Spans snapshots the recorded spans in start order. Unfinished spans
// report the elapsed time so far.
func (t *Trace) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := int64(time.Since(t.start))
	out := make([]SpanInfo, len(t.spans))
	for i, s := range t.spans {
		d := s.durNs
		if d < 0 {
			d = now - s.startNs
		}
		out[i] = SpanInfo{Name: s.name, Parent: int(s.parent), Start: time.Duration(s.startNs), Dur: time.Duration(d)}
	}
	return out
}

// StageTotal is the aggregate time spent in one span name across a trace.
type StageTotal struct {
	Name string
	Dur  time.Duration
}

// StageTotals aggregates span durations by name, longest first — the input
// for the Server-Timing header and the -timing summary. Nested same-name
// spans each contribute, so totals are per-occurrence sums, not wall-clock
// unions.
func (t *Trace) StageTotals() []StageTotal {
	spans := t.Spans()
	if len(spans) == 0 {
		return nil
	}
	byName := make(map[string]time.Duration, 8)
	order := make([]string, 0, 8)
	for _, s := range spans {
		if _, ok := byName[s.Name]; !ok {
			order = append(order, s.Name)
		}
		byName[s.Name] += s.Dur
	}
	out := make([]StageTotal, 0, len(order))
	for _, n := range order {
		out = append(out, StageTotal{Name: n, Dur: byName[n]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	return out
}

// traceJSON is the slow-request dump schema, documented in
// docs/observability.md.
type traceJSON struct {
	Name    string     `json:"name"`
	Start   time.Time  `json:"start"`
	TotalNs int64      `json:"total_ns"`
	Dropped int        `json:"dropped_spans,omitempty"`
	Spans   []spanJSON `json:"spans"`
}

type spanJSON struct {
	Name    string `json:"name"`
	Parent  int    `json:"parent"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// MarshalJSON renders the trace as the structured slow-request document:
// name, wall-clock start, total, and the flat parent-indexed span list.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	spans := t.Spans()
	t.mu.Lock()
	doc := traceJSON{
		Name:    t.name,
		Start:   t.start,
		TotalNs: int64(t.total),
		Dropped: t.dropped,
	}
	t.mu.Unlock()
	if doc.TotalNs == 0 {
		doc.TotalNs = int64(t.Total())
	}
	doc.Spans = make([]spanJSON, len(spans))
	for i, s := range spans {
		doc.Spans[i] = spanJSON{Name: s.Name, Parent: s.Parent, StartNs: int64(s.Start), DurNs: int64(s.Dur)}
	}
	return json.Marshal(doc)
}

// WriteTree renders the span tree as indented text — the cfest -timing
// output:
//
//	estimate                      41.2ms
//	├─ draw                        8.1ms
//	├─ sort                       12.9ms
//	└─ compress                   19.7ms
func (t *Trace) WriteTree(w io.Writer) {
	if t == nil {
		return
	}
	spans := t.Spans()
	children := make(map[int][]int, len(spans))
	for i, s := range spans {
		children[s.Parent] = append(children[s.Parent], i)
	}
	fmt.Fprintf(w, "%-36s %12s\n", t.name, fmtDur(t.Total()))
	var walk func(parent int, prefix string)
	walk = func(parent int, prefix string) {
		kids := children[parent]
		for k, i := range kids {
			s := spans[i]
			branch, next := "├─ ", "│  "
			if k == len(kids)-1 {
				branch, next = "└─ ", "   "
			}
			label := prefix + branch + s.Name
			fmt.Fprintf(w, "%-36s %12s\n", label, fmtDur(s.Dur))
			walk(i, prefix+next)
		}
	}
	walk(-1, "")
	t.mu.Lock()
	dropped := t.dropped
	t.mu.Unlock()
	if dropped > 0 {
		fmt.Fprintf(w, "(+%d spans dropped past cap)\n", dropped)
	}
}

// fmtDur rounds durations to a readable precision for the tree view.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}

// ServerTimingHeader formats the trace as a Server-Timing header value:
// the total plus the topN longest stages, e.g.
//
//	total;dur=41.2, compress;dur=19.7, sort;dur=12.9, draw;dur=8.1
//
// Durations are milliseconds per the Server-Timing spec. Stage names pass
// through a conservative token filter so the header stays parseable.
func (t *Trace) ServerTimingHeader(topN int) string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "total;dur=%.1f", float64(t.Total())/1e6)
	for i, st := range t.StageTotals() {
		if i >= topN {
			break
		}
		fmt.Fprintf(&b, ", %s;dur=%.1f", headerToken(st.Name), float64(st.Dur)/1e6)
	}
	return b.String()
}

// headerToken strips characters that are not valid in an HTTP token.
func headerToken(s string) string {
	valid := func(r rune) bool {
		return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '-' || r == '_' || r == '.'
	}
	for _, r := range s {
		if !valid(r) {
			var b strings.Builder
			for _, r := range s {
				if valid(r) {
					b.WriteRune(r)
				} else {
					b.WriteByte('_')
				}
			}
			return b.String()
		}
	}
	return s
}
