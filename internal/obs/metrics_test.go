package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c2 := r.Counter("x_total", "other help ignored")
	if c1 != c2 {
		t.Fatalf("same name returned distinct counters")
	}
	c1.Add(3)
	if got := c2.Value(); got != 3 {
		t.Fatalf("shared counter value = %d, want 3", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic re-registering counter as gauge")
		}
	}()
	r.Gauge("x_total", "")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "")
	cv := r.CounterVec("d", "", "l")
	hv := r.HistogramVec("e", "", "l")
	r.GaugeFunc("f", "", func() int64 { return 1 })

	// All of these must be no-ops, not panics.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-2)
	g.Inc()
	g.Dec()
	h.Observe(time.Millisecond)
	cv.With("x").Inc()
	hv.With("x").Observe(time.Second)

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.SumNanos() != 0 {
		t.Fatalf("nil instruments reported nonzero values")
	}
	if _, ok := r.Value("a"); ok {
		t.Fatalf("nil registry Value returned ok")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry exposition non-empty: %q", sb.String())
	}
}

func TestGaugeAndValue(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	if v, ok := r.Value("g"); !ok || v != 7 {
		t.Fatalf("Value(g) = %v,%v want 7,true", v, ok)
	}
	r.GaugeFunc("gf", "", func() int64 { return 42 })
	if v, ok := r.Value("gf"); !ok || v != 42 {
		t.Fatalf("Value(gf) = %v,%v want 42,true", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Fatalf("Value(missing) reported ok")
	}
}

func TestHistogramCountSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "")
	h.Observe(3 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(-time.Second) // clamps to zero
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.SumNanos(); got != uint64(8*time.Millisecond) {
		t.Fatalf("sum = %d, want %d", got, 8*time.Millisecond)
	}
}

func TestVecChildrenDistinct(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("family_total", "", "codec")
	cv.With("lz").Add(2)
	cv.With("rle").Add(5)
	if cv.With("lz").Value() != 2 || cv.With("rle").Value() != 5 {
		t.Fatalf("vec children not independent")
	}
	if cv.With("lz") != cv.With("lz") {
		t.Fatalf("With not idempotent")
	}
}

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines; run under -race this is the data-race gate for the hot-path
// primitives, and the totals check catches lost updates.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			labels := [...]string{"a", "b", "c"}
			for j := 0; j < iters; j++ {
				r.Counter("c_total", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "").Observe(time.Duration(j) * time.Microsecond)
				r.CounterVec("cv_total", "", "l").With(labels[j%len(labels)]).Inc()
				r.HistogramVec("hv", "", "l").With(labels[(i+j)%len(labels)]).Observe(time.Millisecond)
			}
		}(i)
	}
	// Exposition races against the writers by design.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	const want = goroutines * iters
	if got := r.Counter("c_total", "").Value(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("g", "").Value(); got != want {
		t.Fatalf("gauge = %d, want %d", got, want)
	}
	if got := r.Histogram("h", "").Count(); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
	var vecTotal uint64
	for _, l := range []string{"a", "b", "c"} {
		vecTotal += r.CounterVec("cv_total", "", "l").With(l).Value()
	}
	if vecTotal != want {
		t.Fatalf("counter vec total = %d, want %d", vecTotal, want)
	}
}

// BenchmarkObsOverhead prices hot-path instrumentation: the instrumented
// case observes a histogram, bumps a counter, and moves a gauge — the
// per-estimate metric work the engine performs — against the same calls on
// nil (no-op) instruments. Both must report 0 allocs/op; the pair is
// recorded into BENCH_engine.json so regressions surface in benchjson
// -diff, and make bench-race runs it so instrumentation races can't land.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("instrumented", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("bench_total", "")
		g := r.Gauge("bench_inflight", "")
		h := r.HistogramVec("bench_seconds", "", "stage").With("draw")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Inc()
			c.Add(64)
			h.Observe(time.Duration(i))
			g.Dec()
		}
	})
	b.Run("noop", func(b *testing.B) {
		var r *Registry
		c := r.Counter("bench_total", "")
		g := r.Gauge("bench_inflight", "")
		h := r.HistogramVec("bench_seconds", "", "stage").With("draw")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Inc()
			c.Add(64)
			h.Observe(time.Duration(i))
			g.Dec()
		}
	})
}
