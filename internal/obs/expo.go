package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type cfserve serves /metrics under —
// Prometheus text exposition format version 0.0.4.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in Prometheus text
// exposition format: one # HELP and # TYPE line per family followed by its
// samples, families ordered by name and label values ordered
// lexicographically, so output is deterministic for golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.snapshot() {
		d := m.describe()
		bw.WriteString("# HELP ")
		bw.WriteString(d.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(d.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(d.name)
		bw.WriteByte(' ')
		bw.WriteString(m.typeName())
		bw.WriteByte('\n')
		switch v := m.(type) {
		case *Counter:
			writeSample(bw, d.name, "", "", "", float64(v.Value()))
		case *Gauge:
			writeSample(bw, d.name, "", "", "", float64(v.Value()))
		case *gaugeFunc:
			writeSample(bw, d.name, "", "", "", float64(v.fn()))
		case *Histogram:
			writeHistogram(bw, d.name, "", "", v)
		case *CounterVec:
			v.mu.RLock()
			for _, lv := range sortedKeys(v.children) {
				writeSample(bw, d.name, "", d.label, lv, float64(v.children[lv].Value()))
			}
			v.mu.RUnlock()
		case *GaugeVec:
			v.mu.RLock()
			for _, lv := range sortedKeys(v.children) {
				writeSample(bw, d.name, "", d.label, lv, float64(v.children[lv].Value()))
			}
			v.mu.RUnlock()
		case *HistogramVec:
			v.mu.RLock()
			for _, lv := range sortedKeys(v.children) {
				writeHistogram(bw, d.name, d.label, lv, v.children[lv])
			}
			v.mu.RUnlock()
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket ladder, sum, and count of one
// histogram child. Bucket upper bounds are 2^k nanoseconds expressed in
// seconds for k in [histFirstBucket, histLastBucket]; cumulation makes the
// series monotone by construction, and the +Inf bucket equals _count.
func writeHistogram(w *bufio.Writer, name, label, labelValue string, h *Histogram) {
	// Snapshot the per-exponent counts once; concurrent observers may move
	// individual slots between loads, but cumulating a single snapshot keeps
	// the emitted ladder internally monotone.
	var counts [histNumBuckets]uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	var cum uint64
	next := 0
	for k := histFirstBucket; k <= histLastBucket; k++ {
		for next <= k {
			cum += counts[next]
			next++
		}
		le := formatFloat(math.Ldexp(1, k) / 1e9)
		writeBucket(w, name, label, labelValue, le, cum)
	}
	writeBucket(w, name, label, labelValue, "+Inf", total)
	writeSample(w, name+"_sum", "", label, labelValue, float64(h.SumNanos())/1e9)
	writeSample(w, name+"_count", "", label, labelValue, float64(total))
}

// writeBucket emits one <name>_bucket sample with the le label (and the
// family's own label when present).
func writeBucket(w *bufio.Writer, name, label, labelValue, le string, v uint64) {
	w.WriteString(name)
	w.WriteString("_bucket{")
	if label != "" {
		w.WriteString(label)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(labelValue))
		w.WriteString(`",`)
	}
	w.WriteString(`le="`)
	w.WriteString(le)
	w.WriteString(`"} `)
	w.WriteString(strconv.FormatUint(v, 10))
	w.WriteByte('\n')
}

// writeSample emits one sample line; suffix and label are optional.
func writeSample(w *bufio.Writer, name, suffix, label, labelValue string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if label != "" {
		w.WriteByte('{')
		w.WriteString(label)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(labelValue))
		w.WriteString(`"} `)
	} else {
		w.WriteByte(' ')
	}
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// formatFloat renders a sample value the way Prometheus clients do:
// integers without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes are
// legal in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
