package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExpositionGolden pins the full text exposition shape — HELP/TYPE
// lines, ordering, label escaping, histogram ladder — against a golden
// file. Regenerate with `go test ./internal/obs -run Golden -update`.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("samplecf_test_requests_total", "Requests served.").Add(7)
	g := r.Gauge("samplecf_test_inflight", "Requests in flight.")
	g.Set(3)
	r.GaugeFunc("samplecf_test_cache_entries", "Entries resident in the cache.", func() int64 { return 12 })
	h := r.Histogram("samplecf_test_latency_seconds", "Request latency.")
	h.Observe(1500 * time.Nanosecond) // len=11 bucket → le=2^11ns
	h.Observe(3 * time.Millisecond)   // ~2^22ns
	h.Observe(700 * time.Millisecond) // ~2^30ns
	h.Observe(40 * time.Second)       // past the ladder → +Inf only
	cv := r.CounterVec("samplecf_test_bytes_total", "Bytes per codec.", "codec")
	cv.With("rle").Add(1024)
	cv.With(`we"ird\label` + "\n").Add(1)
	hv := r.HistogramVec("samplecf_test_stage_seconds", "Stage latency.", "stage")
	hv.With("draw").Observe(2 * time.Microsecond)
	hv.With("sort").Observe(5 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionWellFormed checks structural invariants independent of the
// golden bytes: every sample is preceded by its HELP and TYPE lines, and
// every histogram's cumulative buckets are monotone with the +Inf bucket
// equal to _count.
func TestExpositionWellFormed(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hist_seconds", "A histogram.")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i*i) * time.Microsecond)
	}
	r.Counter("c_total", "A counter.").Add(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")

	seenHelp := map[string]bool{}
	seenType := map[string]bool{}
	var prevBucket uint64
	var inf, count uint64
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "# HELP "):
			seenHelp[strings.Fields(ln)[2]] = true
		case strings.HasPrefix(ln, "# TYPE "):
			f := strings.Fields(ln)
			seenType[f[2]] = true
			if f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram" {
				t.Fatalf("bad TYPE %q", ln)
			}
		case strings.HasPrefix(ln, "hist_seconds_bucket{"):
			v, err := strconv.ParseUint(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", ln, err)
			}
			if v < prevBucket {
				t.Fatalf("bucket ladder not monotone at %q (prev %d)", ln, prevBucket)
			}
			prevBucket = v
			if strings.Contains(ln, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(ln, "hist_seconds_count"):
			count, _ = strconv.ParseUint(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
		}
	}
	if !seenHelp["hist_seconds"] || !seenType["hist_seconds"] || !seenHelp["c_total"] || !seenType["c_total"] {
		t.Fatalf("missing HELP/TYPE lines: help=%v type=%v", seenHelp, seenType)
	}
	if inf != 100 || count != 100 {
		t.Fatalf("+Inf bucket %d and _count %d, want both 100", inf, count)
	}
}

func TestEscapeLabel(t *testing.T) {
	got := escapeLabel("a\\b\"c\nd")
	want := `a\\b\"c\nd`
	if got != want {
		t.Fatalf("escapeLabel = %q, want %q", got, want)
	}
	if escapeLabel("plain") != "plain" {
		t.Fatalf("plain label escaped")
	}
}
