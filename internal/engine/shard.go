// Sharded scatter-gather estimation: what-if requests against a
// partitioned table (catalog.Sharded) are split into one sub-request per
// shard, evaluated shard-parallel, and recombined by stratified
// composition (internal/stats). Each shard is a full catalog table with
// its own epoch, so the per-shard result cache keeps serving untouched
// shards' entries while a hot shard's churn invalidates only its own —
// the whole point of partitioning the cache key space.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"samplecf/internal/catalog"
	"samplecf/internal/core"
	"samplecf/internal/obs"
	"samplecf/internal/rng"
	"samplecf/internal/sampling"
	"samplecf/internal/stats"
	"samplecf/internal/value"
	"samplecf/internal/workgroup"
)

// sgKey identifies a shared sample draw within one batch: one draw per
// (table instance, epoch, size, seed), whether the table is a whole table
// or one shard of a partitioned one.
type sgKey struct {
	inst  uint64
	epoch uint64
	r     int64
	seed  uint64
}

// pgKey identifies a shared prepared index within one batch.
type pgKey struct {
	sg   sgKey
	cols string
}

// shardWork is one shard's slice of a scattered fixed-r request.
type shardWork struct {
	shard  int
	table  Table
	epoch  uint64
	weight float64 // N_h/N at plan time
	rows   int64   // allocated sub-sample size r_h
	seed   uint64
	key    cacheKey
	sg     *sampleGroup
	pg     *prepGroup
	hit    bool
	est    core.Estimate
	err    error
}

// shardSeed derives shard h's sample-stream seed. Shard 0 keeps the base
// seed, so a 1-shard table draws the byte-identical sample an unsharded
// table would (the golden-equivalence contract); higher shards decorrelate
// by a Weyl step.
func shardSeed(seed uint64, shard int) uint64 {
	return seed ^ (uint64(shard) * 0x9e3779b97f4a7c15)
}

// packEpochs renders an epoch vector for the precision cache key. The
// summed epoch alone could alias two distinct vectors; the packed vector
// cannot.
func packEpochs(epochs []uint64) string {
	b := make([]byte, 0, 8*len(epochs))
	for _, e := range epochs {
		b = strconv.AppendUint(b, e, 16)
		b = append(b, ',')
	}
	return string(b)
}

// allocateRows splits a whole-table sample size r across shards
// proportionally to their row counts, rounding by largest remainder
// (shard index breaks ties, so the split is deterministic) and giving
// every non-empty shard at least one row. When r is below the number of
// non-empty shards the total allocation overshoots r: the stratified
// estimate must cover every stratum to stay unbiased, and a one-row floor
// is the cheapest cover.
func allocateRows(r int64, counts []int64) []int64 {
	out := make([]int64, len(counts))
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return out
	}
	type rem struct {
		frac  float64
		shard int
	}
	rems := make([]rem, 0, len(counts))
	var used int64
	for h, c := range counts {
		if c == 0 {
			continue
		}
		exact := float64(r) * float64(c) / float64(total)
		base := int64(exact)
		out[h] = base
		used += base
		rems = append(rems, rem{frac: exact - float64(base), shard: h})
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].shard < rems[j].shard
	})
	for left := r - used; left > 0 && len(rems) > 0; left-- {
		out[rems[0].shard]++
		rems = rems[1:]
	}
	for h, c := range counts {
		if c > 0 && out[h] == 0 {
			out[h] = 1
		}
	}
	return out
}

// planScatter resolves one fixed-r request against a partitioned table:
// snapshot the shard counts and epochs, allocate the sample across shards,
// and consult the per-shard cache. A fully-cached request gathers
// immediately (done=true); otherwise the returned batch item carries one
// work unit per non-empty shard, with missed shards wired into the batch's
// sample/prep dedup groups.
func (e *Engine) planScatter(idx int, req Request, pageSize int, r int64, sh catalog.Sharded,
	sampleGroups map[sgKey]*sampleGroup, prepGroups map[pgKey]*prepGroup) (*batchItem, Result, bool) {
	ns := sh.NumShards()
	counts := make([]int64, ns)
	var total int64
	for h := range counts {
		counts[h] = sh.Shard(h).NumRows()
		total += counts[h]
	}
	if total == 0 {
		return nil, Result{Err: fmt.Errorf("engine: request %d: table %q is empty", idx, req.Table.Name())}, true
	}
	alloc := allocateRows(r, counts)
	epochs := sh.EpochVector()
	inst := req.Table.InstanceID()
	cols := strings.Join(req.KeyColumns, "\x00")
	works := make([]*shardWork, 0, ns)
	allHit := true
	for h := 0; h < ns; h++ {
		if counts[h] == 0 {
			continue
		}
		w := &shardWork{
			shard:  h,
			table:  sh.Shard(h),
			epoch:  epochs[h],
			weight: float64(counts[h]) / float64(total),
			rows:   alloc[h],
			seed:   shardSeed(req.Seed, h),
			key: cacheKey{
				inst:    inst,
				epoch:   epochs[h],
				columns: cols,
				codec:   req.Codec.Name(),
				// fraction/rows/seed stay request-level (not the allocated
				// r_h): the allocation drifts as OTHER shards' counts move,
				// and a cached shard estimate at a stale r_h is still a
				// valid unbiased CF_h estimate — re-keying on r_h would let
				// one hot shard's churn miss every shard's entry.
				fraction: req.Fraction,
				rows:     req.SampleRows,
				seed:     req.Seed,
				pageSize: pageSize,
				fresh:    req.FreshSample,
				shard:    h,
			},
		}
		if est, ok := e.cache.Get(w.key); ok {
			e.shardHits.Add(1)
			w.hit, w.est = true, est
		} else {
			e.shardMisses.Add(1)
			allHit = false
		}
		works = append(works, w)
	}
	if allHit {
		e.hits.Add(1)
		return nil, Result{Estimate: mergeShardEstimates(works), CacheHit: true}, true
	}
	e.misses.Add(1)
	for _, w := range works {
		if w.hit {
			continue
		}
		sk := sgKey{inst: w.table.InstanceID(), epoch: w.epoch, r: w.rows, seed: w.seed}
		sg, ok := sampleGroups[sk]
		if !ok {
			sg = &sampleGroup{table: w.table, r: w.rows, seed: w.seed, epoch: w.epoch}
			sampleGroups[sk] = sg
		}
		if req.FreshSample {
			sg.fresh = true
		}
		sg.members++
		pk := pgKey{sg: sk, cols: cols}
		pg, ok := prepGroups[pk]
		if !ok {
			pg = &prepGroup{sg: sg, keyCols: req.KeyColumns}
			prepGroups[pk] = pg
		}
		pg.members++
		w.sg, w.pg = sg, pg
	}
	return &batchItem{idx: idx, req: req, shards: works}, Result{}, false
}

// evaluateScatter runs one scattered request on a pool worker: the missed
// shards fan out over the bounded workgroup semaphore — never the engine's
// own pool, where a worker waiting on sub-jobs submitted behind it would
// deadlock under saturation — and the per-shard estimates (cached and
// computed alike) gather into one stratified whole-table estimate.
//
// Failed shards retry with capped jittered backoff; shards still failed
// after the retries either fail the whole request with every shard's
// error joined, or — under Request.AllowPartial — drop out of the gather,
// which then merges the survivors under renormalized stratified weights
// (stats.StratifiedMean divides by Σw, so passing the survivors with
// their plan-time weights IS the renormalization) and reports Degraded
// with a widened interval.
func (e *Engine) evaluateScatter(ctx context.Context, it *batchItem) Result {
	e.shardScatters.Add(1)
	t0 := time.Now()
	var missed []*shardWork
	for _, w := range it.shards {
		if !w.hit {
			missed = append(missed, w)
		}
	}
	e.scatterShardWork(ctx, it, missed)
	e.retryFailedShards(ctx, it, missed)

	var failed, survivors []*shardWork
	for _, w := range it.shards {
		if w.err != nil {
			failed = append(failed, w)
		} else {
			survivors = append(survivors, w)
		}
	}
	if len(failed) > 0 && (!it.req.AllowPartial || len(survivors) == 0) {
		errs := make([]error, 0, len(failed))
		for _, w := range failed {
			errs = append(errs, fmt.Errorf("shard %d: %w", w.shard, w.err))
		}
		return Result{Err: fmt.Errorf("engine: request %d: %w", it.idx, errors.Join(errs...))}
	}
	e.evaluated.Add(1)
	shared := false
	for _, w := range missed {
		if w.err == nil && w.sg.members > 1 {
			shared = true
		}
	}
	if shared {
		e.samplesShared.Add(1)
	}
	est := mergeShardEstimates(survivors)
	e.scatterHist.Observe(time.Since(t0))
	if len(failed) > 0 {
		e.degradedResults.Add(1)
		ids := make([]int, len(failed))
		for i, w := range failed {
			ids[i] = w.shard
		}
		sort.Ints(ids)
		// The degraded merge is never cached under the whole-table
		// identity (the scatter path has no request-level cache entry to
		// begin with), and the failed shards stayed out of the per-shard
		// cache, so the next request retries them.
		return Result{
			Estimate:      est,
			SharedSample:  shared,
			Degraded:      true,
			ShardsFailed:  ids,
			AchievedError: degradedHalfWidth(survivors),
		}
	}
	return Result{Estimate: est, SharedSample: shared}
}

// scatterShardWork fans a set of shard work units across the bounded
// workgroup semaphore, each under the shard panic trap (goroutine and
// inline fallback alike).
func (e *Engine) scatterShardWork(ctx context.Context, it *batchItem, works []*shardWork) {
	sem := workgroup.NewSem(workgroup.Limit(len(works)) - 1)
	var wg sync.WaitGroup
	for _, w := range works {
		if sem.TryAcquire() {
			wg.Add(1)
			go func(w *shardWork) {
				defer wg.Done()
				defer sem.Release()
				defer e.trapShardPanic(&w.err)
				e.evaluateShardWork(ctx, it, w)
			}(w)
		} else {
			func() {
				defer e.trapShardPanic(&w.err)
				e.evaluateShardWork(ctx, it, w)
			}()
		}
	}
	wg.Wait()
}

// retryFailedShards re-runs failed shard work units up to RetryMax times
// with capped, jittered, ctx-aware backoff. Each retried unit gets fresh
// private sample/prep groups: the shared once-groups latched the failure
// for the whole batch, and only a new group can re-draw.
func (e *Engine) retryFailedShards(ctx context.Context, it *batchItem, works []*shardWork) {
	if e.cfg.RetryMax <= 0 {
		return
	}
	backoff := e.cfg.RetryBackoff
	jit := rng.New(it.req.Seed ^ retryJitterSalt)
	for attempt := 0; attempt < e.cfg.RetryMax; attempt++ {
		var failed []*shardWork
		for _, w := range works {
			if retryable(w.err) {
				failed = append(failed, w)
			}
		}
		if len(failed) == 0 {
			return
		}
		if !backoffSleep(ctx, jit, backoff) {
			return
		}
		e.shardRetries.Add(uint64(len(failed)))
		for _, w := range failed {
			w.err = nil
			sg := &sampleGroup{table: w.table, r: w.rows, seed: w.seed, epoch: w.epoch,
				fresh: it.req.FreshSample, members: 1}
			w.sg = sg
			w.pg = &prepGroup{sg: sg, keyCols: it.req.KeyColumns, members: 1}
		}
		e.scatterShardWork(ctx, it, failed)
		if backoff *= 2; backoff > e.cfg.RetryBackoffCap {
			backoff = e.cfg.RetryBackoffCap
		}
	}
}

// retryJitterSalt decorrelates the retry backoff stream from the sample
// streams derived from the same request seed.
const retryJitterSalt = 0x5ca77e27e7121e55

// evaluateShardWork is the per-shard slice of evaluate: draw (or reuse)
// the shard's sample group, build (or reuse) its sorted index, compress,
// and cache under the per-shard key.
func (e *Engine) evaluateShardWork(ctx context.Context, it *batchItem, w *shardWork) {
	if err := scatterPoint.Check1(uint64(w.shard)); err != nil {
		w.err = err
		return
	}
	sg := w.sg
	sg.once.Do(func() {
		_, end := obs.StartSpan(ctx, stageDraw)
		t0 := time.Now()
		e.drawSample(sg)
		e.stageDrawHist.Observe(time.Since(t0))
		end.End()
	})
	if sg.err != nil {
		w.err = fmt.Errorf("sampling: %w", sg.err)
		return
	}
	pg := w.pg
	pg.once.Do(func() {
		// Trap inside the once closure (see evaluateItem): sync.Once
		// marks a panicking closure done, so the error must latch here.
		defer e.trapShardPanic(&pg.err)
		_, end := obs.StartSpan(ctx, stageSort)
		defer end.End()
		e.prepared.Add(1)
		pg.prep, pg.err = core.PrepareFromArena(sg.ar, sg.table.NumRows(), pg.keyCols)
		if pg.err == nil {
			d := pg.prep.PrepDuration()
			e.prepareNanos.Add(uint64(d.Nanoseconds()))
			e.sortRows.Add(uint64(pg.prep.SampleRows()))
			e.stageSortHist.Observe(d)
		}
	})
	if pg.err != nil {
		w.err = fmt.Errorf("prepare index: %w", pg.err)
		return
	}
	_, endCompress := obs.StartSpan(ctx, stageCompress)
	t0 := time.Now()
	est, err := pg.prep.Estimate(core.Options{Codec: it.req.Codec, PageSize: w.key.pageSize})
	e.stageCompressHist.Observe(time.Since(t0))
	endCompress.End()
	if err != nil {
		w.err = err
		return
	}
	if ev := e.cache.Put(w.key, est); ev > 0 {
		e.evictions.Add(uint64(ev))
	}
	w.est = est
}

// mergeShardEstimates composes per-shard estimates into one whole-table
// estimate by stratified composition (core.MergeStratified): CF is the
// size-weighted stratified mean, counts and byte totals sum, frequency
// profiles merge, and stage durations take the max (the shards ran in
// parallel). A single stratum passes through verbatim — a 1-shard table's
// estimate is byte-identical to the unsharded path's, compressed pages
// (Result.Encoded) included.
func mergeShardEstimates(works []*shardWork) core.Estimate {
	weights := make([]float64, len(works))
	ests := make([]core.Estimate, len(works))
	for i, w := range works {
		weights[i] = w.weight
		ests[i] = w.est
	}
	return core.MergeStratified(weights, ests)
}

// shardLoop is one shard's arm of a sharded adaptive estimation: its own
// resumable draw stream, prepared index, and current (estimate, SD) pair.
type shardLoop struct {
	shard  int
	table  Table
	weight float64
	seed   uint64
	opts   core.Options
	prep   *core.PreparedIndex
	round  int // next draw round in this shard's stream
	est    core.Estimate
	sd     float64
	method string
	dirty  bool // est/sd stale after an extension
	err    error
}

// runShardedAdaptive is the precision-targeted loop over a partitioned
// table: per-shard resumable sample streams, per-shard CI scales composed
// by stratified variance (half-width z·StratifiedSD), and — the part that
// makes partitioning pay — extensions routed only to the shards whose
// contribution (w_h·σ_h)² dominates the composed variance, so rows are
// spent where they tighten the interval most. Draws are always fresh
// (per-shard maintained-sample routes would need per-shard budget-capping
// and fallback plumbing for marginal gain — the whole-table maintained
// route already covers unsharded tables).
//
// Shard arms that fail persistently (after the retry policy) either fail
// the loop with every arm's error joined, or — under AllowPartial — drop
// out: the remaining arms' weights renormalize through the stratified
// algebra and the failed shard indices return for the Degraded result.
// A degraded outcome never publishes to the precision cache.
func (e *Engine) runShardedAdaptive(ctx context.Context, req Request, pkey precisionKey, sh catalog.Sharded) (core.AdaptiveResult, []int, error) {
	pageSize := req.PageSize
	if pageSize == 0 {
		pageSize = e.cfg.PageSize
	}
	ns := sh.NumShards()
	counts := make([]int64, ns)
	var total int64
	for h := range counts {
		counts[h] = sh.Shard(h).NumRows()
		total += counts[h]
	}
	if total == 0 {
		return core.AdaptiveResult{}, nil, fmt.Errorf("table %q is empty", req.Table.Name())
	}
	target := core.Precision{
		TargetError:   req.TargetError,
		Confidence:    req.Confidence,
		MaxSampleRows: req.MaxSampleRows,
	}
	if target.MaxSampleRows == 0 {
		target.MaxSampleRows = total
	}
	z := zFor(req.Confidence)
	alloc := allocateRows(initialAdaptiveRows(req), counts)

	loops := make([]*shardLoop, 0, ns)
	for h := 0; h < ns; h++ {
		if counts[h] == 0 {
			continue
		}
		seed := shardSeed(req.Seed, h)
		loops = append(loops, &shardLoop{
			shard:  h,
			table:  sh.Shard(h),
			weight: float64(counts[h]) / float64(total),
			seed:   seed,
			opts:   core.Options{Codec: req.Codec, PageSize: pageSize, Seed: seed},
			dirty:  true,
		})
	}

	// grow draws extra fresh rows from one shard's resumable stream and
	// folds them into its prepared index (the first call prepares).
	grow := func(l *shardLoop, extra int64) error {
		if err := scatterPoint.Check1(uint64(l.shard)); err != nil {
			return err
		}
		full := value.NewRecordArena(req.Table.Schema(), int(extra))
		if err := sampling.ExtendWRInto(l.table, full, extra, l.seed, l.round); err != nil {
			return err
		}
		proj, err := core.ProjectSample(full, req.KeyColumns)
		if err != nil {
			return err
		}
		l.round++
		l.dirty = true
		if l.prep == nil {
			e.samplesDrawn.Add(1)
			prep, err := core.PrepareFromArena(proj, l.table.NumRows(), nil)
			if err != nil {
				return err
			}
			e.prepared.Add(1)
			l.prep = prep
			return nil
		}
		return l.prep.ExtendFromArena(proj)
	}

	// runGrow is one arm's growth under the shard panic trap: a panicking
	// arm records its error instead of killing the loop.
	runGrow := func(l *shardLoop, extra int64) {
		defer e.trapShardPanic(&l.err)
		l.err = grow(l, extra)
	}

	// fan spreads grow calls across the bounded workgroup semaphore (never
	// the engine pool — this already runs on a pool worker).
	fan := func(targets []*shardLoop, extras []int64) {
		sem := workgroup.NewSem(workgroup.Limit(len(targets)) - 1)
		var wg sync.WaitGroup
		for i, l := range targets {
			extra := extras[i]
			if sem.TryAcquire() {
				wg.Add(1)
				go func(l *shardLoop, extra int64) {
					defer wg.Done()
					defer sem.Release()
					runGrow(l, extra)
				}(l, extra)
			} else {
				runGrow(l, extra)
			}
		}
		wg.Wait()
	}

	// scatter fans one growth round, retries failed arms with the same
	// backoff policy as the fixed path, and returns the arms still failed.
	scatter := func(targets []*shardLoop, extras []int64) []*shardLoop {
		fan(targets, extras)
		backoff := e.cfg.RetryBackoff
		jit := rng.New(req.Seed ^ retryJitterSalt)
		retryT, retryX := targets, extras
		for attempt := 0; attempt < e.cfg.RetryMax; attempt++ {
			var fl []*shardLoop
			var fx []int64
			for i, l := range retryT {
				if retryable(l.err) {
					fl = append(fl, l)
					fx = append(fx, retryX[i])
				}
			}
			if len(fl) == 0 {
				break
			}
			if !backoffSleep(ctx, jit, backoff) {
				break
			}
			e.shardRetries.Add(uint64(len(fl)))
			for _, l := range fl {
				l.err = nil
			}
			fan(fl, fx)
			retryT, retryX = fl, fx
			if backoff *= 2; backoff > e.cfg.RetryBackoffCap {
				backoff = e.cfg.RetryBackoffCap
			}
		}
		var failed []*shardLoop
		for _, l := range targets {
			if l.err != nil {
				failed = append(failed, l)
			}
		}
		return failed
	}

	// dropFailed removes persistently-failed arms from the live set under
	// AllowPartial, recording their shard indices; without AllowPartial —
	// or when nothing survives — it fails the loop with every failed
	// arm's error joined.
	var failedShards []int
	dropFailed := func(failed []*shardLoop) error {
		if len(failed) == 0 {
			return nil
		}
		if !req.AllowPartial || len(failed) == len(loops) {
			errs := make([]error, 0, len(failed))
			for _, l := range failed {
				errs = append(errs, fmt.Errorf("shard %d: %w", l.shard, l.err))
			}
			return errors.Join(errs...)
		}
		dead := make(map[*shardLoop]bool, len(failed))
		for _, l := range failed {
			dead[l] = true
			failedShards = append(failedShards, l.shard)
		}
		live := loops[:0]
		for _, l := range loops {
			if !dead[l] {
				live = append(live, l)
			}
		}
		loops = live
		return nil
	}

	_, endDraw := obs.StartSpan(ctx, stageDraw)
	tDraw := time.Now()
	round0 := make([]int64, len(loops))
	for i, l := range loops {
		round0[i] = alloc[l.shard]
	}
	err := dropFailed(scatter(loops, round0))
	e.stageDrawHist.Observe(time.Since(tDraw))
	endDraw.End()
	if err != nil {
		return core.AdaptiveResult{}, nil, err
	}

	_, endRounds := obs.StartSpan(ctx, stageRounds)
	defer endRounds.End()
	tRounds := time.Now()
	res := core.AdaptiveResult{}
	var cf, half float64
	for {
		if err := ctx.Err(); err != nil {
			return core.AdaptiveResult{}, nil, err
		}
		strata := make([]stats.Stratum, len(loops))
		for i, l := range loops {
			if l.dirty {
				est, err := l.prep.Estimate(l.opts)
				if err != nil {
					return core.AdaptiveResult{}, nil, fmt.Errorf("shard %d: %w", l.shard, err)
				}
				method, sd, err := l.prep.SDScale(l.opts, target, l.round)
				if err != nil {
					return core.AdaptiveResult{}, nil, fmt.Errorf("shard %d: %w", l.shard, err)
				}
				l.est, l.method, l.sd, l.dirty = est, method, sd, false
			}
			strata[i] = stats.Stratum{Weight: l.weight, Mean: l.est.CF, SD: l.sd}
		}
		res.Rounds++
		res.Method = loops[0].method
		cf = stats.StratifiedMean(strata)
		half = z * stats.StratifiedSD(strata)
		if half <= req.TargetError {
			res.Converged = true
			break
		}
		var rows int64
		for _, l := range loops {
			rows += l.prep.SampleRows()
		}
		if rows >= target.MaxSampleRows {
			break // budget exhausted: honest non-convergence
		}
		// Extend the shards whose variance contribution c_h = (w_h·σ_h)²
		// dominates — within 2× of the largest, and always the argmax — at
		// least doubling each chosen shard's sample, clamped to the budget.
		var maxC float64
		for _, l := range loops {
			if c := l.weight * l.sd * l.weight * l.sd; c > maxC {
				maxC = c
			}
		}
		var chosen []*shardLoop
		var extras []int64
		var want int64
		for _, l := range loops {
			if c := l.weight * l.sd * l.weight * l.sd; c >= maxC/2 {
				chosen = append(chosen, l)
				extras = append(extras, l.prep.SampleRows())
				want += l.prep.SampleRows()
			}
		}
		if remaining := target.MaxSampleRows - rows; want > remaining {
			// Scale the extras to the remaining budget, at least one row
			// each; a slight overshoot just ends the loop next round.
			var scaled int64
			for i := range extras {
				extras[i] = extras[i] * remaining / want
				if extras[i] < 1 {
					extras[i] = 1
				}
				scaled += extras[i]
			}
			for i := len(extras) - 1; i >= 0 && scaled > remaining; i-- {
				cut := extras[i] - 1
				if over := scaled - remaining; cut > over {
					cut = over
				}
				extras[i] -= cut
				scaled -= cut
			}
		}
		if err := dropFailed(scatter(chosen, extras)); err != nil {
			return core.AdaptiveResult{}, nil, err
		}
	}
	e.stageRoundsHist.Observe(time.Since(tRounds))

	works := make([]*shardWork, len(loops))
	for i, l := range loops {
		works[i] = &shardWork{shard: l.shard, weight: l.weight, est: l.est}
		e.prepareNanos.Add(uint64(l.prep.PrepDuration().Nanoseconds()))
		e.sortRows.Add(uint64(l.prep.SampleRows()))
	}
	res.Estimate = mergeShardEstimates(works)
	res.AchievedError = half
	res.CILo, res.CIHi = clampUnit(cf-half), clampUnit(cf+half)
	e.adaptiveRounds.Add(uint64(res.Rounds))
	e.adaptiveRows.Add(uint64(res.Estimate.SampleRows))
	e.evaluated.Add(1)
	if len(failedShards) > 0 {
		// A degraded outcome answers only this request: the precision
		// cache must never serve a survivors-only interval as a
		// whole-table result.
		e.degradedResults.Add(1)
		sort.Ints(failedShards)
		return res, failedShards, nil
	}
	e.precision.Put(pkey, res.Estimate, res.AchievedError/z, res.Rounds, res.Estimate.SampleRows)
	return res, nil, nil
}

// clampUnit clamps a CI endpoint to the CF domain [0,1].
func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
