package engine

import (
	"context"
	"strings"
	"testing"

	"samplecf/internal/db"
	"samplecf/internal/obs"
)

// TestStratifiedSingleStratumMatchesPlain pins the engine's degenerate
// contract: a Strata=1 fixed-r request reproduces the plain fresh-draw
// estimate byte-for-byte (stratum 0 keeps the request seed and a one-arm
// merge passes through verbatim).
func TestStratifiedSingleStratumMatchesPlain(t *testing.T) {
	tab := testTable(t, "strat1", 6000, 11)
	e := New(Config{Workers: 2, CacheEntries: -1})
	defer e.Close()
	for _, codecName := range []string{"nullsuppression", "rle"} {
		plain := e.Estimate(context.Background(), Request{
			Table: tab, Codec: codec(t, codecName), SampleRows: 500, Seed: 9, FreshSample: true,
		})
		strat := e.Estimate(context.Background(), Request{
			Table: tab, Codec: codec(t, codecName), SampleRows: 500, Seed: 9, FreshSample: true,
			Strata: 1,
		})
		if plain.Err != nil || strat.Err != nil {
			t.Fatalf("errs: %v / %v", plain.Err, strat.Err)
		}
		p, s := plain.Estimate, strat.Estimate
		if p.CF != s.CF || p.SampleRows != s.SampleRows ||
			p.SampleDistinct != s.SampleDistinct ||
			p.Result.CompressedBytes != s.Result.CompressedBytes ||
			p.Result.UncompressedBytes != s.Result.UncompressedBytes {
			t.Errorf("%s: strata=1 (CF %v, r %d) != plain (CF %v, r %d)",
				codecName, s.CF, s.SampleRows, p.CF, p.SampleRows)
		}
	}
}

// TestStratifiedResultCached checks stratified results land in the LRU under
// their own strata-scoped key: a repeat hits, a different strata count
// misses, and the directory cache absorbs the repeat stratify scans.
func TestStratifiedResultCached(t *testing.T) {
	tab := testTable(t, "stratcache", 6000, 3)
	e := New(Config{Workers: 2})
	defer e.Close()
	req := Request{Table: tab, Codec: codec(t, "rle"), SampleRows: 400, Seed: 5, Strata: 4}
	first := e.Estimate(context.Background(), req)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.CacheHit {
		t.Fatal("first stratified request hit the cache")
	}
	second := e.Estimate(context.Background(), req)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.CacheHit {
		t.Error("identical stratified request missed the cache")
	}
	if second.Estimate.CF != first.Estimate.CF {
		t.Errorf("cached CF %v != computed %v", second.Estimate.CF, first.Estimate.CF)
	}
	req.Strata = 2
	third := e.Estimate(context.Background(), req)
	if third.Err != nil {
		t.Fatal(third.Err)
	}
	if third.CacheHit {
		t.Error("different strata count was answered from cache")
	}
	st := e.Stats()
	if st.StratifiedEstimates != 2 {
		t.Errorf("StratifiedEstimates = %d, want 2", st.StratifiedEstimates)
	}
	// One directory per strata count; the repeat reused the first build.
	if st.StrataDirBuilds != 2 {
		t.Errorf("StrataDirBuilds = %d, want 2", st.StrataDirBuilds)
	}
}

// TestStratifiedAdaptiveConverges runs the precision-targeted stratified
// loop end to end on a skewed table and checks the dominance cache answers
// the repeat ask.
func TestStratifiedAdaptiveConverges(t *testing.T) {
	tab := testTable(t, "stratadapt", 20000, 17)
	e := New(Config{Workers: 2})
	defer e.Close()
	req := Request{
		Table: tab, Codec: codec(t, "rle"), Seed: 1,
		Strata: 8, TargetError: 0.04,
	}
	res := e.Estimate(context.Background(), req)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: achieved %v", res.AchievedError)
	}
	if res.AchievedError > req.TargetError {
		t.Errorf("achieved %v > target %v", res.AchievedError, req.TargetError)
	}
	if res.CacheHit {
		t.Error("first adaptive request hit the precision cache")
	}
	again := e.Estimate(context.Background(), req)
	if again.Err != nil {
		t.Fatal(again.Err)
	}
	if !again.CacheHit {
		t.Error("repeat adaptive ask missed the precision cache")
	}
	// Dominance must not cross strata settings: the same ask unstratified
	// is a different estimand family and recomputes.
	req.Strata = 0
	plain := e.Estimate(context.Background(), req)
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}
	if plain.CacheHit {
		t.Error("unstratified ask was answered from a stratified precision entry")
	}
}

// TestShardedStratifiedComposes checks strata compose with shard scatter:
// each shard stratifies independently and the flat shard×stratum arm set
// merges into one sane whole-table estimate, on both the fixed and the
// adaptive path.
func TestShardedStratifiedComposes(t *testing.T) {
	d := db.New(0)
	st := liveShardedTable(t, d, "stratshard", 4, 3000)
	e := New(Config{Workers: 2})
	defer e.Close()

	base := e.Estimate(context.Background(), Request{
		Table: st, Codec: codec(t, "rle"), SampleRows: 1200, Seed: 7,
	})
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	fixed := e.Estimate(context.Background(), Request{
		Table: st, Codec: codec(t, "rle"), SampleRows: 1200, Seed: 7, Strata: 4,
	})
	if fixed.Err != nil {
		t.Fatal(fixed.Err)
	}
	if fixed.Estimate.CF <= 0 || fixed.Estimate.CF >= 1 {
		t.Errorf("sharded stratified CF %v outside (0,1)", fixed.Estimate.CF)
	}
	if diff := fixed.Estimate.CF - base.Estimate.CF; diff > 0.15 || diff < -0.15 {
		t.Errorf("sharded stratified CF %v far from scatter CF %v", fixed.Estimate.CF, base.Estimate.CF)
	}
	// The stratified sample covers every shard×stratum cell at least once.
	if fixed.Estimate.SampleRows < 1200 {
		t.Errorf("sampled %d rows, want >= 1200", fixed.Estimate.SampleRows)
	}

	adaptive := e.Estimate(context.Background(), Request{
		Table: st, Codec: codec(t, "rle"), Seed: 7, Strata: 2, TargetError: 0.05,
	})
	if adaptive.Err != nil {
		t.Fatal(adaptive.Err)
	}
	if !adaptive.Converged {
		t.Errorf("sharded stratified adaptive did not converge: achieved %v", adaptive.AchievedError)
	}
}

// TestStratifiedObsInstruments checks the stratified ledgers move: the
// estimates counter, the directory-build counter, the strata-count
// histogram, and at least one rows-per-stratum child.
func TestStratifiedObsInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	tab := testTable(t, "stratobs", 6000, 23)
	e := New(Config{Workers: 2, Metrics: reg})
	defer e.Close()
	res := e.Estimate(context.Background(), Request{
		Table: tab, Codec: codec(t, "rle"), SampleRows: 400, Seed: 5, Strata: 4,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if v, _ := reg.Value(MetricStratified); v != 1 {
		t.Errorf("%s = %v, want 1", MetricStratified, v)
	}
	if v, _ := reg.Value(MetricStrataDirBuilds); v != 1 {
		t.Errorf("%s = %v, want 1", MetricStrataDirBuilds, v)
	}
	if e.strataCountHist.Count() != 1 {
		t.Errorf("strata-count histogram has %d observations, want 1", e.strataCountHist.Count())
	}
	if rows := e.strataRows.With("0").Value(); rows == 0 {
		t.Error("stratum 0 drew no instrumented rows")
	}
	var total uint64
	for h := 0; h < 4; h++ {
		total += e.strataRows.With(string(rune('0' + h))).Value()
	}
	if total != uint64(res.Estimate.SampleRows) {
		t.Errorf("rows-per-stratum ledger totals %d, estimate sampled %d", total, res.Estimate.SampleRows)
	}
}

// TestStratifiedValidation rejects malformed strata counts.
func TestStratifiedValidation(t *testing.T) {
	tab := testTable(t, "stratbad", 1000, 1)
	e := New(Config{Workers: 1})
	defer e.Close()
	res := e.Estimate(context.Background(), Request{
		Table: tab, Codec: codec(t, "rle"), SampleRows: 100, Strata: -2,
	})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "strata") {
		t.Fatalf("negative strata accepted: %v", res.Err)
	}
}
