package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// testTable builds a small synthetic table with a skewed string column and
// a uniform int column.
func testTable(t testing.TB, name string, n int64, seed uint64) *workload.Table {
	t.Helper()
	sc, err := workload.NewStringColumn(value.Char(20), distrib.NewZipf(200, 0.5), distrib.NewUniformLen(4, 16), seed)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := workload.NewIntColumn(value.Int32(), distrib.NewUniform(50), 0)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: name, N: n, Seed: seed,
		Cols: []workload.SpecColumn{{Name: "a", Gen: sc}, {Name: "b", Gen: ic}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func codec(t testing.TB, name string) compress.Codec {
	t.Helper()
	c, err := compress.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBatchMatchesOneShot is the golden equivalence test: for the same
// (table, columns, codec, fraction, seed), the engine's batch path must
// reproduce core.SampleCF bit-for-bit — shared samples and shared index
// builds are an optimization, not a semantic change.
func TestBatchMatchesOneShot(t *testing.T) {
	tab := testTable(t, "golden", 4000, 7)
	e := New(Config{Workers: 4})
	defer e.Close()

	var reqs []Request
	type spec struct {
		cols  []string
		codec string
	}
	specs := []spec{
		{[]string{"a"}, "nullsuppression"},
		{[]string{"a"}, "pagedict+ns"},
		{[]string{"b"}, "nullsuppression"},
		{[]string{"a", "b"}, "rle"},
		{nil, "prefix"},
	}
	for _, s := range specs {
		reqs = append(reqs, Request{
			Table: tab, KeyColumns: s.cols, Codec: codec(t, s.codec),
			Fraction: 0.05, Seed: 42,
		})
	}
	got := e.WhatIf(context.Background(), reqs)
	for i, s := range specs {
		if got[i].Err != nil {
			t.Fatalf("batch item %d: %v", i, got[i].Err)
		}
		want, err := core.SampleCF(tab, tab.Schema(), core.Options{
			Fraction: 0.05, Codec: codec(t, s.codec), KeyColumns: s.cols, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := got[i].Estimate
		if g.CF != want.CF {
			t.Errorf("item %d (%v/%s): batch CF %v != one-shot CF %v", i, s.cols, s.codec, g.CF, want.CF)
		}
		if g.SampleRows != want.SampleRows || g.SampleDistinct != want.SampleDistinct {
			t.Errorf("item %d: sample shape (%d,%d) != (%d,%d)",
				i, g.SampleRows, g.SampleDistinct, want.SampleRows, want.SampleDistinct)
		}
		if g.Result.CompressedBytes != want.Result.CompressedBytes ||
			g.Result.UncompressedBytes != want.Result.UncompressedBytes {
			t.Errorf("item %d: result bytes differ: %+v vs %+v", i, g.Result, want.Result)
		}
	}
}

// TestSampleSharing checks the batch draws one sample per (table, size,
// seed) and one index build per column set.
func TestSampleSharing(t *testing.T) {
	tab := testTable(t, "shared", 2000, 3)
	e := New(Config{Workers: 4, CacheEntries: -1})
	defer e.Close()

	var reqs []Request
	colsets := [][]string{{"a"}, {"b"}}
	codecs := []string{"nullsuppression", "rle", "prefix"}
	for _, cs := range colsets {
		for _, cn := range codecs {
			reqs = append(reqs, Request{Table: tab, KeyColumns: cs, Codec: codec(t, cn), Fraction: 0.1, Seed: 9})
		}
	}
	res := e.WhatIf(context.Background(), reqs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if !r.SharedSample {
			t.Errorf("item %d: expected SharedSample", i)
		}
	}
	st := e.Stats()
	if st.SamplesDrawn != 1 {
		t.Errorf("SamplesDrawn = %d, want 1 (one (table,size,seed) group)", st.SamplesDrawn)
	}
	if st.IndexesPrepared != uint64(len(colsets)) {
		t.Errorf("IndexesPrepared = %d, want %d (one per column set)", st.IndexesPrepared, len(colsets))
	}
	if st.Evaluated != uint64(len(reqs)) {
		t.Errorf("Evaluated = %d, want %d", st.Evaluated, len(reqs))
	}
}

// TestCacheAccounting checks hit/miss/entry counters across repeated and
// distinct requests, and that a cached result round-trips the estimate.
func TestCacheAccounting(t *testing.T) {
	tab := testTable(t, "cached", 2000, 5)
	e := New(Config{Workers: 2, CacheEntries: 8})
	defer e.Close()
	req := Request{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), Fraction: 0.05, Seed: 1}

	first := e.Estimate(context.Background(), req)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.CacheHit {
		t.Error("first call must miss")
	}
	second := e.Estimate(context.Background(), req)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.CacheHit {
		t.Error("second call must hit")
	}
	if second.Estimate.CF != first.Estimate.CF {
		t.Errorf("cached CF %v != computed CF %v", second.Estimate.CF, first.Estimate.CF)
	}
	// A different seed is a different key.
	req.Seed = 2
	third := e.Estimate(context.Background(), req)
	if third.Err != nil || third.CacheHit {
		t.Errorf("distinct seed must miss (err %v, hit %v)", third.Err, third.CacheHit)
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats hits/misses = %d/%d, want 1/2", st.Hits, st.Misses)
	}
	if st.CacheEntries != 2 {
		t.Errorf("CacheEntries = %d, want 2", st.CacheEntries)
	}
}

// TestCacheEviction checks the LRU bound holds and evictions are counted.
func TestCacheEviction(t *testing.T) {
	tab := testTable(t, "evict", 1000, 11)
	e := New(Config{Workers: 2, CacheEntries: 4})
	defer e.Close()
	for seed := uint64(0); seed < 10; seed++ {
		r := e.Estimate(context.Background(), Request{
			Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"),
			Fraction: 0.02, Seed: seed,
		})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st := e.Stats()
	if st.CacheEntries != 4 {
		t.Errorf("CacheEntries = %d, want capacity 4", st.CacheEntries)
	}
	if st.Evictions != 6 {
		t.Errorf("Evictions = %d, want 6", st.Evictions)
	}
}

// TestFingerprintInvalidation checks that mutating table content changes
// the cache key — same name and shape, different rows must not hit.
func TestFingerprintInvalidation(t *testing.T) {
	tabA := testTable(t, "same-name", 1000, 1)
	tabB := testTable(t, "same-name", 1000, 2) // different content
	e := New(Config{Workers: 2})
	defer e.Close()
	ra := e.Estimate(context.Background(), Request{Table: tabA, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), Fraction: 0.05, Seed: 3})
	rb := e.Estimate(context.Background(), Request{Table: tabB, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), Fraction: 0.05, Seed: 3})
	if ra.Err != nil || rb.Err != nil {
		t.Fatal(ra.Err, rb.Err)
	}
	if rb.CacheHit {
		t.Error("different table content must not share cache entries")
	}
}

// TestErrorIsolation checks a bad candidate fails alone: the rest of its
// batch still estimates.
func TestErrorIsolation(t *testing.T) {
	tab := testTable(t, "isolated", 1000, 13)
	e := New(Config{Workers: 2})
	defer e.Close()
	res := e.WhatIf(context.Background(), []Request{
		{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), Fraction: 0.05, Seed: 1},
		{Table: tab, KeyColumns: []string{"no_such_column"}, Codec: codec(t, "nullsuppression"), Fraction: 0.05, Seed: 1},
		{Table: tab, Codec: nil, Fraction: 0.05, Seed: 1},
		{Table: tab, KeyColumns: []string{"b"}, Codec: codec(t, "rle"), Fraction: 0.05, Seed: 1},
	})
	if res[0].Err != nil || res[3].Err != nil {
		t.Errorf("good candidates failed: %v, %v", res[0].Err, res[3].Err)
	}
	if res[1].Err == nil {
		t.Error("unknown column must fail")
	}
	if res[2].Err == nil {
		t.Error("nil codec must fail")
	}
}

// TestDeadlineExpiry checks items not started before the context deadline
// fail with the context error and do not hang the batch.
func TestDeadlineExpiry(t *testing.T) {
	tab := testTable(t, "deadline", 2000, 17)
	e := New(Config{Workers: 1, CacheEntries: -1})
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: every item must carry the context error
	res := e.WhatIf(ctx, []Request{
		{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), Fraction: 0.05, Seed: 1},
		{Table: tab, KeyColumns: []string{"b"}, Codec: codec(t, "nullsuppression"), Fraction: 0.05, Seed: 1},
	})
	for i, r := range res {
		if r.Err == nil {
			t.Errorf("item %d: expected context error", i)
		}
	}

	// A generous deadline lets everything finish.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	ok := e.WhatIf(ctx2, []Request{
		{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), Fraction: 0.05, Seed: 1},
	})
	if ok[0].Err != nil {
		t.Errorf("unexpired deadline: %v", ok[0].Err)
	}
}

// TestConcurrentWhatIf hammers one engine from many goroutines — the test
// the race detector cares about: shared cache, shared counters, shared
// sample groups inside each batch.
func TestConcurrentWhatIf(t *testing.T) {
	tab := testTable(t, "conc", 3000, 19)
	e := New(Config{Workers: 4, CacheEntries: 32})
	defer e.Close()

	var wg sync.WaitGroup
	const callers = 8
	errs := make([]error, callers)
	for g := 0; g < callers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				reqs := []Request{
					{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), Fraction: 0.02, Seed: uint64(g % 4)},
					{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "rle"), Fraction: 0.02, Seed: uint64(g % 4)},
					{Table: tab, KeyColumns: []string{"b"}, Codec: codec(t, "prefix"), Fraction: 0.02, Seed: uint64(g % 4)},
				}
				for i, r := range e.WhatIf(context.Background(), reqs) {
					if r.Err != nil {
						errs[g] = fmt.Errorf("caller %d item %d: %w", g, i, r.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Hits+st.Misses != callers*3*3 {
		t.Errorf("lookup count %d, want %d", st.Hits+st.Misses, callers*3*3)
	}
	if st.Hits == 0 {
		t.Error("repeated identical requests should produce cache hits")
	}
}

// TestCloseRejectsNewWork checks post-Close batches fail cleanly instead of
// hanging or panicking.
func TestCloseRejectsNewWork(t *testing.T) {
	tab := testTable(t, "closed", 500, 23)
	e := New(Config{Workers: 2, CacheEntries: -1})
	e.Close()
	res := e.WhatIf(context.Background(), []Request{
		{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), Fraction: 0.05, Seed: 1},
	})
	if res[0].Err == nil {
		t.Error("expected error after Close")
	}
}

// TestEstimateVirtualTable checks generator-backed tables work through the
// engine (the constant-memory path for huge tables).
func TestEstimateVirtualTable(t *testing.T) {
	sc, err := workload.NewStringColumn(value.Char(12), distrib.NewUniform(100), distrib.NewConstantLen(6), 1)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := workload.NewVirtual(workload.Spec{
		Name: "virt", N: 100_000, Seed: 2,
		Cols: []workload.SpecColumn{{Name: "a", Gen: sc}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 2})
	defer e.Close()
	r := e.Estimate(context.Background(), Request{Table: vt, Codec: codec(t, "nullsuppression"), Fraction: 0.01, Seed: 4})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Estimate.CF <= 0 || r.Estimate.CF > 1.5 {
		t.Errorf("implausible CF %v", r.Estimate.CF)
	}
}
