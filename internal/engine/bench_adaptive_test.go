package engine

import (
	"context"
	"math"
	"testing"

	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// BenchmarkAdaptiveVsFixed measures the economics the adaptive refactor
// exists for: rows sampled to satisfy the same accuracy requirement.
//
// The scenario is a caller who needs CF within ±2 points at 95%. The
// pre-adaptive interface forces a blind sample-size pick, and the repo-wide
// rule of thumb is f = 1% — on this 500k-row table, 5000 rows, which
// guarantees ±1.39% (Theorem 1): the blind pick overshoots the requirement
// and pays for precision nobody asked for. The adaptive path states the
// requirement instead and stops at the bound-implied 2401 rows — ≥2× fewer
// — with the identical distribution-free guarantee.
//
// Each sub-benchmark reports rows/est (rows spent per estimate) and
// err_pts (measured |CF' − CF| against the exact CF, in points): both
// paths land far inside the ±2 requirement, so the rows/est gap is pure
// savings, not traded accuracy. The engine cache is disabled and seeds
// vary per iteration so rows are honestly re-spent every time.
func BenchmarkAdaptiveVsFixed(b *testing.B) {
	const n = 500_000
	const requirement = 0.02 // the caller's actual ask: CF ± 2 points at 95%
	tab := benchAdaptiveTable(b, n)
	truth := benchTrueCF(b, tab)

	report := func(b *testing.B, rows, errPts float64) {
		b.ReportMetric(rows/float64(b.N), "rows/est")
		b.ReportMetric(errPts/float64(b.N), "err_pts")
	}

	b.Run("fixed-1pct-blind", func(b *testing.B) {
		e := New(Config{CacheEntries: -1})
		defer e.Close()
		var rows, errPts float64
		for i := 0; i < b.N; i++ {
			res := e.Estimate(context.Background(), Request{
				Table: tab, KeyColumns: []string{"a"}, Codec: codec(b, "nullsuppression"),
				Fraction: 0.01, Seed: uint64(i),
			})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			rows += float64(res.Estimate.SampleRows)
			errPts += 100 * math.Abs(res.Estimate.CF-truth)
		}
		report(b, rows, errPts)
	})
	b.Run("adaptive-2pct-target", func(b *testing.B) {
		e := New(Config{CacheEntries: -1})
		defer e.Close()
		var rows, errPts, rounds float64
		for i := 0; i < b.N; i++ {
			res := e.Estimate(context.Background(), Request{
				Table: tab, KeyColumns: []string{"a"}, Codec: codec(b, "nullsuppression"),
				TargetError: requirement, Seed: uint64(i),
			})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if !res.Converged || res.AchievedError > requirement {
				b.Fatalf("requirement not met: converged=%v achieved=%v", res.Converged, res.AchievedError)
			}
			rows += float64(res.Estimate.SampleRows)
			errPts += 100 * math.Abs(res.Estimate.CF-truth)
			rounds += float64(res.Rounds)
		}
		report(b, rows, errPts)
		b.ReportMetric(rounds/float64(b.N), "rounds/est")
	})
	// The same requirement answered from the precision cache (dominance):
	// the steady-state cost of adaptive traffic after the first ask.
	b.Run("adaptive-2pct-cached", func(b *testing.B) {
		e := New(Config{})
		defer e.Close()
		warm := e.Estimate(context.Background(), Request{
			Table: tab, KeyColumns: []string{"a"}, Codec: codec(b, "nullsuppression"),
			TargetError: requirement, Seed: 1,
		})
		if warm.Err != nil {
			b.Fatal(warm.Err)
		}
		b.ResetTimer()
		var errPts float64
		for i := 0; i < b.N; i++ {
			res := e.Estimate(context.Background(), Request{
				Table: tab, KeyColumns: []string{"a"}, Codec: codec(b, "nullsuppression"),
				TargetError: requirement, Seed: uint64(i),
			})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if !res.CacheHit {
				b.Fatal("expected a precision-cache hit")
			}
			errPts += 100 * math.Abs(res.Estimate.CF-truth)
		}
		b.ReportMetric(0, "rows/est") // no rows drawn after the warm-up
		b.ReportMetric(errPts/float64(b.N), "err_pts")
	})
}

// benchAdaptiveTable builds the benchmark workload: a skewed CHAR(20)
// column, the shape the fixed-1% advisor loop sizes all day.
func benchAdaptiveTable(b *testing.B, n int64) *workload.Table {
	b.Helper()
	col, err := workload.NewStringColumn(value.Char(20), distrib.NewZipf(10_000, 0.6), distrib.NewUniformLen(2, 18), 1)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "adaptive-bench", N: n, Seed: 1,
		Cols: []workload.SpecColumn{{Name: "a", Gen: col}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

func benchTrueCF(b *testing.B, tab *workload.Table) float64 {
	b.Helper()
	res, err := core.TrueCF(tab, nil, codec(b, "nullsuppression"), 0)
	if err != nil {
		b.Fatal(err)
	}
	return res.CF()
}
