package engine

import (
	"context"
	"math"
	"testing"

	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// BenchmarkAdaptiveVsFixed measures the economics the adaptive refactor
// exists for: rows sampled to satisfy the same accuracy requirement.
//
// The scenario is a caller who needs CF within ±2 points at 95%. The
// pre-adaptive interface forces a blind sample-size pick, and the repo-wide
// rule of thumb is f = 1% — on this 500k-row table, 5000 rows, which
// guarantees ±1.39% (Theorem 1): the blind pick overshoots the requirement
// and pays for precision nobody asked for. The adaptive path states the
// requirement instead and stops at the bound-implied 2401 rows — ≥2× fewer
// — with the identical distribution-free guarantee.
//
// Each sub-benchmark reports rows/est (rows spent per estimate) and
// err_pts (measured |CF' − CF| against the exact CF, in points): both
// paths land far inside the ±2 requirement, so the rows/est gap is pure
// savings, not traded accuracy. The engine cache is disabled and seeds
// vary per iteration so rows are honestly re-spent every time.
func BenchmarkAdaptiveVsFixed(b *testing.B) {
	const n = 500_000
	const requirement = 0.02 // the caller's actual ask: CF ± 2 points at 95%
	tab := benchAdaptiveTable(b, n)
	truth := benchTrueCF(b, tab)

	report := func(b *testing.B, rows, errPts float64) {
		b.ReportMetric(rows/float64(b.N), "rows/est")
		b.ReportMetric(errPts/float64(b.N), "err_pts")
	}

	b.Run("fixed-1pct-blind", func(b *testing.B) {
		e := New(Config{CacheEntries: -1})
		defer e.Close()
		var rows, errPts float64
		for i := 0; i < b.N; i++ {
			res := e.Estimate(context.Background(), Request{
				Table: tab, KeyColumns: []string{"a"}, Codec: codec(b, "nullsuppression"),
				Fraction: 0.01, Seed: uint64(i),
			})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			rows += float64(res.Estimate.SampleRows)
			errPts += 100 * math.Abs(res.Estimate.CF-truth)
		}
		report(b, rows, errPts)
	})
	b.Run("adaptive-2pct-target", func(b *testing.B) {
		e := New(Config{CacheEntries: -1})
		defer e.Close()
		var rows, errPts, rounds float64
		for i := 0; i < b.N; i++ {
			res := e.Estimate(context.Background(), Request{
				Table: tab, KeyColumns: []string{"a"}, Codec: codec(b, "nullsuppression"),
				TargetError: requirement, Seed: uint64(i),
			})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if !res.Converged || res.AchievedError > requirement {
				b.Fatalf("requirement not met: converged=%v achieved=%v", res.Converged, res.AchievedError)
			}
			rows += float64(res.Estimate.SampleRows)
			errPts += 100 * math.Abs(res.Estimate.CF-truth)
			rounds += float64(res.Rounds)
		}
		report(b, rows, errPts)
		b.ReportMetric(rounds/float64(b.N), "rounds/est")
	})
	// The same requirement answered from the precision cache (dominance):
	// the steady-state cost of adaptive traffic after the first ask.
	b.Run("adaptive-2pct-cached", func(b *testing.B) {
		e := New(Config{})
		defer e.Close()
		warm := e.Estimate(context.Background(), Request{
			Table: tab, KeyColumns: []string{"a"}, Codec: codec(b, "nullsuppression"),
			TargetError: requirement, Seed: 1,
		})
		if warm.Err != nil {
			b.Fatal(warm.Err)
		}
		b.ResetTimer()
		var errPts float64
		for i := 0; i < b.N; i++ {
			res := e.Estimate(context.Background(), Request{
				Table: tab, KeyColumns: []string{"a"}, Codec: codec(b, "nullsuppression"),
				TargetError: requirement, Seed: uint64(i),
			})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if !res.CacheHit {
				b.Fatal("expected a precision-cache hit")
			}
			errPts += 100 * math.Abs(res.Estimate.CF-truth)
		}
		b.ReportMetric(0, "rows/est") // no rows drawn after the warm-up
		b.ReportMetric(errPts/float64(b.N), "err_pts")
	})
}

// The zipf pair measures what stratification buys on heavily skewed keys:
// rows sampled to satisfy CF ± 2 points at 95%, uniform adaptive versus
// 16-stratum Neyman-allocated adaptive on the same θ=0.86 table. Sixteen
// strata (not eight) because the zipf(128) head needs ~1/16 equi-depth
// ranges to isolate the top values into their own arms; at 8 the second-
// and third-ranked values share arms with tail mass and the win thins.
// The workload puts the zipf head at the low end of the key domain (the
// generator's uniqueness prefix sorts by domain index) with bimodal value
// lengths, so compressibility varies sharply across contiguous key ranges
// — the shape equi-depth strata isolate. The codec is rle — a
// bootstrap-CI codec, deliberately: Theorem 1's bound depends only on the
// total sample size, so stratification cannot tighten it, and running
// this pair under nullsuppression would measure nothing. Under the
// bootstrap CI the strata pin each head value's run structure inside its
// own arm, removing the between-strata variance the uniform sample keeps
// paying for.
//
// err_pts records |CF' − CF| against the exact CF. For run-length codecs
// sample-compress carries a known small-r bias (a WR sample cannot
// reproduce the table's long runs); the bootstrap CI tracks sampling
// variance, not that bias, and both arms carry it equally — the pair's
// comparison metric is rows-to-CI, with err_pts kept for honesty.
//
// Rows are re-spent every iteration (result and precision caches
// disabled, seeds vary); only the strata directory is cached, matching
// production where the O(n) stratify scan runs once per table version.
func BenchmarkAdaptiveStratifiedZipf(b *testing.B) {
	const n = 500_000
	const requirement = 0.02
	tab := benchZipfTable(b, n)
	res, err := core.TrueCF(tab, nil, codec(b, "rle"), 0)
	if err != nil {
		b.Fatal(err)
	}
	truth := res.CF()

	run := func(b *testing.B, strata int) {
		e := New(Config{CacheEntries: -1})
		defer e.Close()
		e.strataDirs = newStrataCache(4) // keep only the directory resident
		var rows, errPts, rounds float64
		for i := 0; i < b.N; i++ {
			res := e.Estimate(context.Background(), Request{
				Table: tab, KeyColumns: []string{"a"}, Codec: codec(b, "rle"),
				TargetError: requirement, Strata: strata, Seed: uint64(i),
				SampleRows: 64, // round-0 seed, small enough that neither arm stops on the floor
			})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if !res.Converged || res.AchievedError > requirement {
				b.Fatalf("requirement not met: converged=%v achieved=%v", res.Converged, res.AchievedError)
			}
			rows += float64(res.Estimate.SampleRows)
			errPts += 100 * math.Abs(res.Estimate.CF-truth)
			rounds += float64(res.Rounds)
		}
		b.ReportMetric(rows/float64(b.N), "rows/est")
		b.ReportMetric(errPts/float64(b.N), "err_pts")
		b.ReportMetric(rounds/float64(b.N), "rounds/est")
	}
	b.Run("zipf-uniform-2pct", func(b *testing.B) { run(b, 0) })
	b.Run("zipf-strata16-2pct", func(b *testing.B) { run(b, 16) })
}

// benchZipfTable is the stratification workload: one CHAR(64) key column
// under heavy zipf skew (θ=0.86) with bimodal value lengths, so
// compressibility varies sharply across the key domain.
func benchZipfTable(b *testing.B, n int64) *workload.Table {
	b.Helper()
	col, err := workload.NewStringColumn(value.Char(64), distrib.NewZipf(128, 0.86), distrib.NewBimodalLen(2, 60, 0.5), 1)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "zipf-strata-bench", N: n, Seed: 2,
		Cols: []workload.SpecColumn{{Name: "a", Gen: col}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

// benchAdaptiveTable builds the benchmark workload: a skewed CHAR(20)
// column, the shape the fixed-1% advisor loop sizes all day.
func benchAdaptiveTable(b *testing.B, n int64) *workload.Table {
	b.Helper()
	col, err := workload.NewStringColumn(value.Char(20), distrib.NewZipf(10_000, 0.6), distrib.NewUniformLen(2, 18), 1)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "adaptive-bench", N: n, Seed: 1,
		Cols: []workload.SpecColumn{{Name: "a", Gen: col}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

func benchTrueCF(b *testing.B, tab *workload.Table) float64 {
	b.Helper()
	res, err := core.TrueCF(tab, nil, codec(b, "nullsuppression"), 0)
	if err != nil {
		b.Fatal(err)
	}
	return res.CF()
}
