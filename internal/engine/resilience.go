// Fault tolerance for the serving path: panic isolation, per-shard
// retries, degraded scatter-gather, and a per-(table, codec) circuit
// breaker with stale-while-revalidate.
//
// The failure model (docs/robustness.md) is that any storage or codec
// call can fail or panic — the deterministic injection points in
// internal/faults stand in for flaky disks and poisoned pages — and that
// one poisoned shard, page, or candidate must never take down the
// process, the batch, or the other shards of the same request. Four
// mechanisms deliver that:
//
//   - panic traps at every goroutine boundary the engine owns (pool
//     workers, shard fan-outs, once-group closures) convert panics into
//     per-item errors carrying the injection point and stack;
//   - failed shards retry with capped jittered backoff before the
//     request gives up on them (transient faults heal invisibly);
//   - Request.AllowPartial lets a scattered request survive persistently
//     failed shards: the survivors merge under renormalized stratified
//     weights and the result reports Degraded with a widened interval;
//   - a per-(table instance, codec) circuit breaker trips after
//     consecutive full failures and serves the last good estimate stale
//     (Result.Stale) while one probe per cooldown revalidates in the
//     background.
package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"samplecf/internal/faults"
	"samplecf/internal/rng"
	"samplecf/internal/stats"
)

// scatterPoint fires at the top of every per-shard work unit (fixed
// scatter and adaptive arm growth alike); its argument is the shard
// index, so a schedule like "engine.scatter[1]:err@1+" poisons exactly
// one shard persistently.
var scatterPoint = faults.Register("engine.scatter")

// ErrInvalidRequest marks a request rejected by validation before it
// reached the pool. cfserve maps it to 400; everything else computational
// is 500 territory.
var ErrInvalidRequest = errors.New("engine: invalid request")

// ErrBreakerOpen reports that the (table, codec) circuit breaker is open
// and no stale estimate was available to serve. cfserve maps it to 503.
var ErrBreakerOpen = errors.New("engine: circuit breaker open")

// invalidRequestError wraps a validation failure so its message stays
// exactly as before while errors.Is(err, ErrInvalidRequest) holds.
type invalidRequestError struct{ msg string }

func (e *invalidRequestError) Error() string        { return e.msg }
func (e *invalidRequestError) Is(target error) bool { return target == ErrInvalidRequest }

func invalidf(format string, args ...any) error {
	return &invalidRequestError{msg: fmt.Sprintf(format, args...)}
}

// trapShardPanic is the engine's fan-out panic trap: deferred at the top
// of every per-shard goroutine (and its inline fallback), it converts a
// panic into that shard's error — carrying the injection point and the
// panicking goroutine's stack — and counts it, so one poisoned shard
// degrades its request instead of crashing the process.
func (e *Engine) trapShardPanic(errp *error) {
	if r := recover(); r != nil {
		e.panicsRecovered.Add(1)
		*errp = faults.AsError(r)
	}
}

// retryable reports whether a shard failure is worth retrying: anything
// except the caller's own cancellation (retrying a dead deadline only
// burns the backoff).
func retryable(err error) bool {
	return err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// backoffSleep waits out one retry backoff — uniformly jittered over
// [d/2, d] so simultaneous retries against a recovering shard spread out —
// and reports false when ctx expired first.
func backoffSleep(ctx context.Context, jit *rng.RNG, d time.Duration) bool {
	d = d/2 + time.Duration(jit.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// degradedHalfWidth is the widened 95% interval of a degraded fixed-r
// merge: survivors only, their plan-time weights renormalized by the
// stratified algebra itself (StratifiedSD divides by Σw), each shard's SD
// bounded by Theorem 1's distribution-free scale 1/(2√r_h). A fixed-r
// request normally reports no interval at all; a degraded one must, so
// the caller can see what the missing shards cost in confidence.
func degradedHalfWidth(survivors []*shardWork) float64 {
	strata := make([]stats.Stratum, len(survivors))
	for i, w := range survivors {
		rows := w.rows
		if w.est.SampleRows > 0 {
			rows = w.est.SampleRows
		}
		strata[i] = stats.Stratum{Weight: w.weight, SD: 1 / (2 * math.Sqrt(float64(rows)))}
	}
	return zFor(0) * stats.StratifiedSD(strata)
}

// breakerKey scopes one circuit breaker: failures are a property of the
// (table, codec) pair — a poisoned codec must not trip other codecs on
// the same table, nor the same codec on healthy tables.
type breakerKey struct {
	inst  uint64
	codec string
}

// breaker is one key's consecutive-failure ledger. openUntil is zero
// while closed; probing marks that one post-cooldown probe is in flight.
type breaker struct {
	failures  int
	openUntil time.Time
	probing   bool
}

type breakerVerdict uint8

const (
	breakerClosed breakerVerdict = iota // compute normally
	breakerDeny                         // serve stale or ErrBreakerOpen
	breakerProbe                        // this caller revalidates
)

// breakerAllow classifies one computation attempt against the key's
// breaker. The first caller after the cooldown becomes the probe; others
// stay denied until the probe resolves.
func (e *Engine) breakerAllow(k breakerKey) breakerVerdict {
	e.brMu.Lock()
	defer e.brMu.Unlock()
	b := e.breakers[k]
	if b == nil || b.openUntil.IsZero() {
		return breakerClosed
	}
	if time.Now().Before(b.openUntil) || b.probing {
		return breakerDeny
	}
	b.probing = true
	return breakerProbe
}

// breakerRecordFailure counts one full computation failure, tripping the
// breaker at the configured threshold (and re-arming the cooldown on
// every failure while open).
func (e *Engine) breakerRecordFailure(k breakerKey) {
	e.brMu.Lock()
	defer e.brMu.Unlock()
	b := e.breakers[k]
	if b == nil {
		b = &breaker{}
		e.breakers[k] = b
	}
	b.probing = false
	b.failures++
	if b.failures >= e.cfg.BreakerThreshold {
		if b.openUntil.IsZero() {
			e.breakerOpens.Add(1)
		}
		b.openUntil = time.Now().Add(e.cfg.BreakerCooldown)
	}
}

// breakerRecordSuccess closes the key's breaker entirely: the
// consecutive-failure count restarts from zero.
func (e *Engine) breakerRecordSuccess(k breakerKey) {
	e.brMu.Lock()
	defer e.brMu.Unlock()
	delete(e.breakers, k)
}

// breakerClearProbe releases a probe without moving the ledger either
// way — the probe's outcome was inconclusive (degraded partial service,
// or the probing caller's own cancellation), so the breaker stays open
// until its cooldown admits the next probe.
func (e *Engine) breakerClearProbe(k breakerKey) {
	e.brMu.Lock()
	defer e.brMu.Unlock()
	if b := e.breakers[k]; b != nil {
		b.probing = false
	}
}

// staleEntry is the last fully-successful outcome for one epoch-free
// request identity — what the breaker serves while open.
type staleEntry struct {
	res Result
}

// staleCache is a fixed-capacity LRU over epoch-free request identities
// (cacheKey for fixed/stratified requests, precisionKey for adaptive ones
// — distinct types, so the key spaces cannot collide in the any-keyed
// map). It holds the last good estimate per identity for the breaker's
// stale-while-revalidate path; zero capacity disables it.
type staleCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *staleListEntry
	items    map[any]*list.Element
}

type staleListEntry struct {
	key any
	ent staleEntry
}

func newStaleCache(capacity int) *staleCache {
	if capacity < 0 {
		capacity = 0
	}
	return &staleCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[any]*list.Element, capacity),
	}
}

func (c *staleCache) Get(key any) (staleEntry, bool) {
	if c.capacity == 0 {
		return staleEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return staleEntry{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*staleListEntry).ent, true
}

func (c *staleCache) Put(key any, ent staleEntry) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*staleListEntry).ent = ent
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&staleListEntry{key: key, ent: ent})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*staleListEntry).key)
	}
}

// staleKeyFor derives the epoch-free identity of a request: the exact
// cache key with every version component zeroed, so the last good
// estimate keeps matching after the mutations (or failures) that tripped
// the breaker moved the epoch on.
func (e *Engine) staleKeyFor(it *batchItem) any {
	if it.req.TargetError > 0 {
		pk := it.pkey
		pk.epoch, pk.epochs = 0, ""
		return pk
	}
	pageSize := it.req.PageSize
	if pageSize == 0 {
		pageSize = e.cfg.PageSize
	}
	return cacheKey{
		inst:     it.req.Table.InstanceID(),
		columns:  strings.Join(it.req.KeyColumns, "\x00"),
		codec:    it.req.Codec.Name(),
		fraction: it.req.Fraction,
		rows:     it.req.SampleRows,
		seed:     it.req.Seed,
		pageSize: pageSize,
		fresh:    it.req.FreshSample,
		shard:    wholeTable,
		strata:   it.req.Strata,
	}
}

// staleResult serves the last good estimate for the item's epoch-free
// identity, marked Stale, or reports none exists.
func (e *Engine) staleResult(it *batchItem) (Result, bool) {
	ent, ok := e.stale.Get(e.staleKeyFor(it))
	if !ok {
		return Result{}, false
	}
	res := ent.res
	res.Estimate = cloneEstimate(res.Estimate)
	res.Stale = true
	e.staleServed.Add(1)
	return res, true
}

// breakerGate runs one miss through the item's circuit breaker. ok=true
// means the gate answered (stale or ErrBreakerOpen) and the computation
// must not run; ok=false means compute — either the breaker is closed or
// this caller is the probe.
func (e *Engine) breakerGate(it *batchItem) (Result, bool) {
	if e.cfg.BreakerThreshold <= 0 || it.req.bypassBreaker {
		return Result{}, false
	}
	bk := breakerKey{inst: it.req.Table.InstanceID(), codec: it.req.Codec.Name()}
	switch e.breakerAllow(bk) {
	case breakerProbe:
		if res, ok := e.staleResult(it); ok {
			// Serve stale now, revalidate in the background: the probe
			// must not pay the (possibly still failing) computation on a
			// caller's latency budget when an answer exists.
			e.spawnRefresh(it.req)
			return res, true
		}
		return Result{}, false // no stale answer: probe inline
	case breakerDeny:
		if res, ok := e.staleResult(it); ok {
			return res, true
		}
		return Result{Err: fmt.Errorf("engine: request %d: table %q codec %q: %w",
			it.idx, it.req.Table.Name(), it.req.Codec.Name(), ErrBreakerOpen)}, true
	}
	return Result{}, false
}

// noteOutcome feeds one computed result back into the breaker and stale
// ledgers. Cache hits, coalesced fan-outs, and stale serves are not
// computations and never reach here.
func (e *Engine) noteOutcome(it *batchItem, res Result) {
	if e.cfg.BreakerThreshold <= 0 {
		return
	}
	bk := breakerKey{inst: it.req.Table.InstanceID(), codec: it.req.Codec.Name()}
	switch {
	case res.Err != nil:
		if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
			// The caller gave up; the table proved nothing either way.
			e.breakerClearProbe(bk)
			return
		}
		e.breakerRecordFailure(bk)
	case res.Degraded:
		e.breakerClearProbe(bk)
	default:
		e.breakerRecordSuccess(bk)
		e.stale.Put(e.staleKeyFor(it), staleEntry{res: Result{
			Estimate:      cloneEstimate(res.Estimate),
			AchievedError: res.AchievedError,
			Rounds:        res.Rounds,
			Converged:     res.Converged,
		}})
	}
}

// spawnRefresh revalidates a breaker-opened identity in the background:
// the same request, breaker bypassed, on a fresh context. Its outcome
// flows through noteOutcome like any computation — success closes the
// breaker and refreshes the stale entry; failure re-arms the cooldown.
// Concurrent identical refreshes coalesce through the flight group.
func (e *Engine) spawnRefresh(req Request) {
	req.bypassBreaker = true
	e.bg.Add(1)
	go func() {
		defer e.bg.Done()
		e.Estimate(context.Background(), req)
	}()
}
