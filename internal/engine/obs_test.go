package engine

import (
	"context"
	"strings"
	"testing"

	"samplecf/internal/obs"
)

// TestMetricsOnRegistry verifies the engine's counters live on the obs
// registry: an injected registry sees the cache/sample/stage ledgers move
// exactly as Stats() reports them, and the stage histograms record.
func TestMetricsOnRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	tab := testTable(t, "obsreg", 2000, 3)
	e := New(Config{Workers: 2, Metrics: reg})
	defer e.Close()

	req := Request{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "rle"), Fraction: 0.05, Seed: 1}
	if res := e.Estimate(context.Background(), req); res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := e.Estimate(context.Background(), req); res.Err != nil || !res.CacheHit {
		t.Fatalf("second estimate not a cache hit: %+v", res)
	}

	st := e.Stats()
	for _, tc := range []struct {
		metric string
		want   uint64
	}{
		{MetricCacheHits, st.Hits},
		{MetricCacheMisses, st.Misses},
		{MetricSamplesDrawn, st.SamplesDrawn},
		{MetricIndexesPrepared, st.IndexesPrepared},
		{MetricEvaluated, st.Evaluated},
		{MetricPrepareNanos, st.PrepareNanos},
		{MetricSortRows, st.SortRows},
	} {
		v, ok := reg.Value(tc.metric)
		if !ok {
			t.Fatalf("metric %s not registered", tc.metric)
		}
		if uint64(v) != tc.want {
			t.Errorf("%s = %v, registry disagrees with Stats %d", tc.metric, v, tc.want)
		}
	}
	if st.Hits != 1 || st.Misses != 1 || st.Evaluated != 1 {
		t.Fatalf("unexpected ledger: %+v", st)
	}
	if v, ok := reg.Value(MetricCacheEntries); !ok || v != 1 {
		t.Fatalf("cache entries gauge = %v,%v want 1", v, ok)
	}

	// The per-stage histograms must have observed the one evaluation.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, stage := range []string{stageDraw, stageSort, stageCompress} {
		want := MetricStageDuration + `_count{stage="` + stage + `"} 1`
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPrivateRegistriesIndependent pins the default behavior: engines
// without Config.Metrics get private registries, so two engines never
// share ledgers.
func TestPrivateRegistriesIndependent(t *testing.T) {
	tab := testTable(t, "obspriv", 1500, 5)
	e1 := New(Config{Workers: 1})
	defer e1.Close()
	e2 := New(Config{Workers: 1})
	defer e2.Close()
	if e1.Registry() == e2.Registry() {
		t.Fatalf("engines shared a registry by default")
	}
	req := Request{Table: tab, KeyColumns: []string{"b"}, Codec: codec(t, "rle"), Fraction: 0.05, Seed: 2}
	if res := e1.Estimate(context.Background(), req); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := e2.Stats().Evaluated; got != 0 {
		t.Fatalf("engine 2 saw engine 1's evaluation: %d", got)
	}
}

// TestTraceThroughEngine threads a trace through Estimate and checks the
// stage tree records the fixed pipeline: draw, sort, compress, cache.
func TestTraceThroughEngine(t *testing.T) {
	tab := testTable(t, "obstrace", 2000, 9)
	e := New(Config{Workers: 2})
	defer e.Close()

	tr := obs.NewTrace("estimate")
	ctx := obs.WithTrace(context.Background(), tr)
	req := Request{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "prefix"), Fraction: 0.05, Seed: 4}
	if res := e.Estimate(ctx, req); res.Err != nil {
		t.Fatal(res.Err)
	}
	tr.Finish()

	seen := map[string]bool{}
	for _, s := range tr.Spans() {
		seen[s.Name] = true
		if s.Dur < 0 {
			t.Errorf("span %s has negative duration", s.Name)
		}
	}
	for _, want := range []string{stageDraw, stageSort, stageCompress, "cache"} {
		if !seen[want] {
			t.Errorf("trace missing stage %q (got %v)", want, seen)
		}
	}
}

// TestTraceAdaptiveRounds threads a trace through an adaptive request and
// checks the rounds stage records.
func TestTraceAdaptiveRounds(t *testing.T) {
	tab := testTable(t, "obsadapt", 4000, 11)
	e := New(Config{Workers: 2})
	defer e.Close()

	tr := obs.NewTrace("estimate")
	ctx := obs.WithTrace(context.Background(), tr)
	req := Request{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "rle"), TargetError: 0.05, Seed: 6}
	if res := e.Estimate(ctx, req); res.Err != nil {
		t.Fatal(res.Err)
	}
	tr.Finish()

	seen := map[string]bool{}
	for _, s := range tr.Spans() {
		seen[s.Name] = true
	}
	for _, want := range []string{stageDraw, stageSort, stageRounds} {
		if !seen[want] {
			t.Errorf("adaptive trace missing stage %q (got %v)", want, seen)
		}
	}
	if v, ok := e.Registry().Value(MetricAdaptiveRounds); !ok || v < 1 {
		t.Fatalf("adaptive rounds counter = %v,%v", v, ok)
	}
}

// TestQueueGaugesSettle checks the queue-depth and in-flight gauges return
// to zero after a batch drains.
func TestQueueGaugesSettle(t *testing.T) {
	tab := testTable(t, "obsgauge", 2000, 13)
	e := New(Config{Workers: 2})
	defer e.Close()

	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "rle"),
			Fraction: 0.02, Seed: uint64(i)}
	}
	for _, res := range e.WhatIf(context.Background(), reqs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if v, _ := e.Registry().Value(MetricQueueDepth); v != 0 {
		t.Fatalf("queue depth %v after drain, want 0", v)
	}
	if v, _ := e.Registry().Value(MetricInFlight); v != 0 {
		t.Fatalf("in-flight %v after drain, want 0", v)
	}
}
