package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"samplecf/internal/catalog"
	"samplecf/internal/value"
)

// TestFlightStampede sends K identical single-request batches concurrently
// and checks the stampede collapses: exactly one physical sample draw,
// exactly one computation, and every caller gets the same estimate.
func TestFlightStampede(t *testing.T) {
	tab := testTable(t, "stampede", 3000, 11)
	e := New(Config{Workers: 4})
	defer e.Close()

	const K = 8
	req := Request{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), Fraction: 0.1, Seed: 21}
	results := make([]Result, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.Estimate(context.Background(), req)
		}(i)
	}
	wg.Wait()

	computed := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("caller %d: %v", i, r.Err)
		}
		if r.Estimate.CF != results[0].Estimate.CF ||
			r.Estimate.SampleRows != results[0].Estimate.SampleRows ||
			r.Estimate.Result.CompressedBytes != results[0].Estimate.Result.CompressedBytes {
			t.Errorf("caller %d: estimate diverged: %+v vs %+v", i, r.Estimate, results[0].Estimate)
		}
		if !r.CacheHit && !r.Coalesced {
			computed++
		}
	}
	if computed != 1 {
		t.Errorf("%d callers computed, want exactly 1 (rest coalesced or cache-hit)", computed)
	}
	if st := e.Stats(); st.SamplesDrawn != 1 {
		t.Errorf("SamplesDrawn = %d, want 1", st.SamplesDrawn)
	}
}

// TestFlightAdaptiveStampede is the stampede test for precision-targeted
// requests: identical adaptive asks from concurrent batches share one
// loop through the adaptive flight key space.
func TestFlightAdaptiveStampede(t *testing.T) {
	tab := testTable(t, "stampede-adaptive", 3000, 13)
	e := New(Config{Workers: 4})
	defer e.Close()

	const K = 6
	req := Request{
		Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"),
		Seed: 5, TargetError: 0.05,
	}
	results := make([]Result, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.Estimate(context.Background(), req)
		}(i)
	}
	wg.Wait()

	computed := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("caller %d: %v", i, r.Err)
		}
		if r.Estimate.CF != results[0].Estimate.CF {
			t.Errorf("caller %d: CF %v != %v", i, r.Estimate.CF, results[0].Estimate.CF)
		}
		if !r.Converged {
			t.Errorf("caller %d: not converged", i)
		}
		if !r.CacheHit && !r.Coalesced {
			computed++
		}
	}
	if computed != 1 {
		t.Errorf("%d callers ran the adaptive loop, want exactly 1", computed)
	}
	if st := e.Stats(); st.Evaluated != 1 {
		t.Errorf("Evaluated = %d, want 1 (one shared loop)", st.Evaluated)
	}
}

// gateTable wraps a table so the first Row call signals entry and then
// blocks until released — it holds a flight open while the test arranges
// waiters around it.
type gateTable struct {
	catalog.Table
	enter   sync.Once
	entered chan struct{}
	hold    chan struct{}
}

func newGateTable(inner catalog.Table) *gateTable {
	return &gateTable{Table: inner, entered: make(chan struct{}), hold: make(chan struct{})}
}

func (g *gateTable) Row(i int64) (value.Row, error) {
	g.enter.Do(func() { close(g.entered) })
	<-g.hold
	return g.Table.Row(i)
}

// TestFlightWaiterCancel pins the cancellation contract: with a leader and
// two waiters on one flight, cancelling one waiter returns its context
// error immediately but neither aborts the shared computation nor poisons
// the surviving waiter, and the whole flight still cost one draw.
func TestFlightWaiterCancel(t *testing.T) {
	gate := newGateTable(testTable(t, "gated", 2000, 17))
	e := New(Config{Workers: 4})
	defer e.Close()

	req := Request{Table: gate, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), Fraction: 0.05, Seed: 3}

	var leaderRes, survivorRes Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderRes = e.Estimate(context.Background(), req)
	}()
	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the gated draw")
	}

	cancelCtx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan Result, 1)
	go func() { cancelled <- e.Estimate(cancelCtx, req) }()
	wg.Add(1)
	go func() {
		defer wg.Done()
		survivorRes = e.Estimate(context.Background(), req)
	}()

	// Wait until both extra parties have joined the leader's flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		e.flights.mu.Lock()
		refs := 0
		for _, f := range e.flights.m {
			f.mu.Lock()
			refs = f.refs
			f.mu.Unlock()
		}
		e.flights.mu.Unlock()
		if refs >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight refs = %d, want 3", refs)
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case r := <-cancelled:
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("cancelled waiter got %+v, want context.Canceled", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}

	close(gate.hold)
	wg.Wait()

	if leaderRes.Err != nil {
		t.Fatalf("leader: %v", leaderRes.Err)
	}
	if survivorRes.Err != nil {
		t.Fatalf("surviving waiter: %v", survivorRes.Err)
	}
	if !survivorRes.Coalesced {
		t.Error("surviving waiter result not marked Coalesced")
	}
	if survivorRes.Estimate.CF != leaderRes.Estimate.CF {
		t.Errorf("survivor CF %v != leader CF %v", survivorRes.Estimate.CF, leaderRes.Estimate.CF)
	}
	st := e.Stats()
	if st.SamplesDrawn != 1 {
		t.Errorf("SamplesDrawn = %d, want 1", st.SamplesDrawn)
	}
	if st.CoalescedWaits != 1 {
		t.Errorf("CoalescedWaits = %d, want 1 (the survivor)", st.CoalescedWaits)
	}
}
