package engine

import (
	"samplecf/internal/obs"
)

// Stage label values of the per-stage latency histogram — the pipeline
// phases a traced estimate records: sample draw, arena prepare (encode +
// radix sort), per-page compression, and adaptive CI rounds.
const (
	stageDraw     = "draw"
	stageSort     = "sort"
	stageCompress = "compress"
	stageRounds   = "rounds"
)

// metrics is the engine's instrument set, resolved once at New against the
// engine's registry (Config.Metrics, or a private registry when unset — an
// engine's counters are per-engine state, not process globals, so tests
// running many engines never share ledgers). Every field is an obs
// instrument whose mutation is a single atomic op: the evaluate hot path
// observes without locks or allocation.
type metrics struct {
	hits            *obs.Counter
	misses          *obs.Counter
	evictions       *obs.Counter
	samplesDrawn    *obs.Counter
	samplesShared   *obs.Counter
	maintainedHits  *obs.Counter
	maintainedStale *obs.Counter
	prepared        *obs.Counter
	evaluated       *obs.Counter
	precisionHits   *obs.Counter
	adaptiveRounds  *obs.Counter
	adaptiveRows    *obs.Counter
	prepareNanos    *obs.Counter
	sortRows        *obs.Counter
	shardScatters   *obs.Counter
	shardHits       *obs.Counter
	shardMisses     *obs.Counter
	stratified      *obs.Counter
	strataDirBuilds *obs.Counter
	coalescedWaits  *obs.Counter
	panicsRecovered *obs.Counter
	shardRetries    *obs.Counter
	degradedResults *obs.Counter
	staleServed     *obs.Counter
	breakerOpens    *obs.Counter

	// strataRows ledgers rows drawn per stratum arm (label: the arm's index
	// among its table's non-empty strata) — the skew of this vec is Neyman
	// allocation made visible.
	strataRows *obs.CounterVec
	// strataCountHist records arms per stratified estimate (a count pushed
	// through the duration-typed histogram: bucket boundaries are powers of
	// two either way).
	strataCountHist *obs.Histogram

	queueDepth *obs.Gauge
	inFlight   *obs.Gauge

	// scatterHist times one scattered request's full shard fan-out (draw +
	// sort + compress across every missed shard, plus the gather).
	scatterHist *obs.Histogram

	// Pre-resolved per-stage latency children of
	// samplecf_engine_stage_duration_seconds — resolved once here so the
	// hot path never pays the vec's label lookup.
	stageDrawHist     *obs.Histogram
	stageSortHist     *obs.Histogram
	stageCompressHist *obs.Histogram
	stageRoundsHist   *obs.Histogram
}

// Canonical engine metric names. The /stats compatibility shim in cfserve
// maps the legacy JSON fields onto these, so changing one is an API break
// twice over.
const (
	MetricCacheHits        = "samplecf_engine_cache_hits_total"
	MetricCacheMisses      = "samplecf_engine_cache_misses_total"
	MetricCacheEvictions   = "samplecf_engine_cache_evictions_total"
	MetricSamplesDrawn     = "samplecf_engine_samples_drawn_total"
	MetricSamplesShared    = "samplecf_engine_samples_shared_total"
	MetricMaintainedHits   = "samplecf_engine_maintained_hits_total"
	MetricMaintainedStale  = "samplecf_engine_maintained_stale_total"
	MetricIndexesPrepared  = "samplecf_engine_indexes_prepared_total"
	MetricEvaluated        = "samplecf_engine_evaluated_total"
	MetricPrecisionHits    = "samplecf_engine_precision_hits_total"
	MetricAdaptiveRounds   = "samplecf_engine_adaptive_rounds_total"
	MetricAdaptiveRows     = "samplecf_engine_adaptive_rows_total"
	MetricPrepareNanos     = "samplecf_engine_prepare_nanos_total"
	MetricSortRows         = "samplecf_engine_sort_rows_total"
	MetricShardScatters    = "samplecf_engine_shard_scatters_total"
	MetricShardHits        = "samplecf_engine_shard_cache_hits_total"
	MetricShardMisses      = "samplecf_engine_shard_cache_misses_total"
	MetricStratified       = "samplecf_engine_stratified_estimates_total"
	MetricStrataDirBuilds  = "samplecf_engine_strata_directory_builds_total"
	MetricCoalescedWaits   = "samplecf_engine_coalesced_waits_total"
	MetricPanicsRecovered  = "samplecf_engine_panics_recovered_total"
	MetricShardRetries     = "samplecf_engine_shard_retries_total"
	MetricDegradedResults  = "samplecf_engine_degraded_results_total"
	MetricStaleServed      = "samplecf_engine_stale_served_total"
	MetricBreakerOpens     = "samplecf_engine_breaker_opens_total"
	MetricStrataRows       = "samplecf_engine_strata_rows_total"
	MetricStrataCount      = "samplecf_engine_strata_count"
	MetricScatterFanout    = "samplecf_engine_scatter_fanout_seconds"
	MetricQueueDepth       = "samplecf_engine_queue_depth"
	MetricInFlight         = "samplecf_engine_inflight_jobs"
	MetricCacheEntries     = "samplecf_engine_cache_entries"
	MetricPrecisionEntries = "samplecf_engine_precision_cache_entries"
	MetricStageDuration    = "samplecf_engine_stage_duration_seconds"
)

// newMetrics registers the engine's instruments on r.
func newMetrics(r *obs.Registry) metrics {
	stage := r.HistogramVec(MetricStageDuration,
		"Latency of one pipeline stage execution, by stage.", "stage")
	return metrics{
		hits:            r.Counter(MetricCacheHits, "Result-cache lookups answered from cache (fixed and adaptive)."),
		misses:          r.Counter(MetricCacheMisses, "Result-cache lookups that required evaluation."),
		evictions:       r.Counter(MetricCacheEvictions, "LRU result-cache displacements."),
		samplesDrawn:    r.Counter(MetricSamplesDrawn, "Physical sample draws against storage."),
		samplesShared:   r.Counter(MetricSamplesShared, "Candidates that reused a batch-mate's sample."),
		maintainedHits:  r.Counter(MetricMaintainedHits, "Sample draws served from a table's maintained sample."),
		maintainedStale: r.Counter(MetricMaintainedStale, "Maintained-sample fallbacks to a fresh draw."),
		prepared:        r.Counter(MetricIndexesPrepared, "Encode+sort index builds."),
		evaluated:       r.Counter(MetricEvaluated, "Candidate estimates computed (cache hits excluded)."),
		precisionHits:   r.Counter(MetricPrecisionHits, "Adaptive requests answered from the precision cache by dominance."),
		adaptiveRounds:  r.Counter(MetricAdaptiveRounds, "Estimate-extend rounds run by adaptive requests."),
		adaptiveRows:    r.Counter(MetricAdaptiveRows, "Rows drawn by adaptive requests (cache hits excluded)."),
		prepareNanos:    r.Counter(MetricPrepareNanos, "Wall nanoseconds spent in the prepare stage (encode + sort + profile)."),
		sortRows:        r.Counter(MetricSortRows, "Rows sorted by prepare-stage builds."),
		shardScatters:   r.Counter(MetricShardScatters, "Requests scattered across a partitioned table's shards."),
		shardHits:       r.Counter(MetricShardHits, "Per-shard result-cache hits within scattered requests."),
		shardMisses:     r.Counter(MetricShardMisses, "Per-shard result-cache misses within scattered requests."),
		stratified:      r.Counter(MetricStratified, "Stratified estimates computed, fixed and adaptive (cache hits excluded)."),
		strataDirBuilds: r.Counter(MetricStrataDirBuilds, "Strata-directory builds (stratify scans the directory cache did not absorb)."),
		coalescedWaits:  r.Counter(MetricCoalescedWaits, "Results served by waiting on a concurrent identical request's in-flight computation."),
		panicsRecovered: r.Counter(MetricPanicsRecovered, "Panics converted to per-item or per-shard errors by the engine's isolation traps."),
		shardRetries:    r.Counter(MetricShardRetries, "Failed shard work units re-run with backoff."),
		degradedResults: r.Counter(MetricDegradedResults, "Partial scatter-gathers served under Request.AllowPartial."),
		staleServed:     r.Counter(MetricStaleServed, "Results served from the last-good-estimate cache while a breaker was open."),
		breakerOpens:    r.Counter(MetricBreakerOpens, "Closed-to-open circuit breaker transitions."),
		strataRows:      r.CounterVec(MetricStrataRows, "Rows drawn per stratum arm by stratified estimates.", "stratum"),
		strataCountHist: r.Histogram(MetricStrataCount, "Arms per stratified estimate (a count, not a duration)."),

		queueDepth: r.Gauge(MetricQueueDepth, "Batch items waiting for a pool worker."),
		inFlight:   r.Gauge(MetricInFlight, "Batch items currently executing on pool workers."),

		scatterHist: r.Histogram(MetricScatterFanout, "Latency of one scattered request's shard fan-out and gather."),

		stageDrawHist:     stage.With(stageDraw),
		stageSortHist:     stage.With(stageSort),
		stageCompressHist: stage.With(stageCompress),
		stageRoundsHist:   stage.With(stageRounds),
	}
}
