package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"samplecf/internal/db"
	"samplecf/internal/value"
)

// p99ns returns the 99th-percentile latency in nanoseconds.
func p99ns(lat []time.Duration) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return float64(sorted[(len(sorted)-1)*99/100])
}

// BenchmarkConcurrentMixed measures the serving path under mixed load: E
// estimator goroutines issuing cache-busting fresh estimates against a
// live table while the benchmark loop inserts rows. The paired sub-runs
// hold everything constant except the table's read-side machinery —
// "rwmutex" is the WithSnapshots(false) baseline, where every estimate's
// Row calls rebuild the RID directory under the table's write lock after
// each insert invalidates it (the writer stall this benchmark exists to
// show), "snapshot" is the copy-on-write default, where reads run against
// the published snapshot and inserts never wait on an in-flight estimate.
// ns/op is the writer's mean insert latency; p99-writer-ns / p99-est-ns /
// est-done report both sides' tails and the estimator throughput.
func BenchmarkConcurrentMixed(b *testing.B) {
	for _, mode := range []struct {
		name      string
		snapshots bool
	}{
		{"rwmutex", false},
		{"snapshot", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			benchConcurrentMixed(b, mode.snapshots)
		})
	}
}

func benchConcurrentMixed(b *testing.B, snapshots bool) {
	const (
		// Large enough that the baseline arm's per-read RID-directory
		// rebuild is a substantial critical section — the writer stall under
		// test has to clear the single-core scheduler's ~tens-of-µs tail
		// noise floor by an order of magnitude.
		tableRows  = 65536
		estimators = 2
		sampleRows = 256
		// Estimates arrive open-loop at a fixed rate per estimator rather
		// than back-to-back: a closed loop would let the faster arm run an
		// order of magnitude more estimates, and the extra allocation churn
		// (GC assists landing on the timed Insert) would penalize the writer
		// for the read path being fast. An arm whose estimates run longer
		// than the period degrades to back-to-back naturally.
		estPeriod = 25 * time.Millisecond
	)
	// Mixed-load interference needs runnable writer and estimator threads at
	// the same time. On a single-P runtime the scheduler's direct-handoff
	// chains keep one goroutine running for whole quanta, so the phases
	// serialize and neither arm measures contention. Two Ps — one carrying
	// the (mostly sleeping) writer, one carrying estimate work — make lock
	// waits park on futexes the kernel resolves by switching threads: the
	// interleaving happens exactly at the contention points under test, even
	// on one hardware core. More Ps than that just preempts the timed Insert
	// mid-call and drowns the lock signal in reschedule noise.
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	// Concurrent-mark assists on a saturated single core tax an allocating
	// insert for a millisecond-plus, and land identically in both arms; at
	// the default GOGC the estimate pipeline's churn keeps a mark phase
	// live over ~3% of the run, masking the lock tail under test. A
	// high-but-finite GOGC makes collections an order of magnitude rarer
	// (well below the p99 threshold) while still bounding the heap — the
	// baseline arm's per-read directory rebuilds allocate far too much to
	// turn GC off.
	prevGC := debug.SetGCPercent(4000)
	defer debug.SetGCPercent(prevGC)
	// SampleTarget 0 disables the maintained sample: every estimate must
	// draw from storage, which is the contended path under test.
	d := db.New(0, db.WithSampleTarget(0), db.WithSnapshots(snapshots))
	tab := liveTable(b, d, "mixed", tableRows)
	e := New(Config{Workers: estimators, CacheEntries: -1})
	defer e.Close()
	cdc := mustCodec(b)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seed atomic.Uint64
	var estMu sync.Mutex
	var estLat []time.Duration
	var wg, ready sync.WaitGroup
	ready.Add(estimators)
	for g := 0; g < estimators; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(estPeriod)
			defer tick.Stop()
			first := true
			for {
				t0 := time.Now()
				res := e.Estimate(ctx, Request{
					Table: tab, KeyColumns: []string{"city"}, Codec: cdc,
					SampleRows: sampleRows, Seed: seed.Add(1), FreshSample: true,
				})
				if res.Err != nil {
					if first {
						ready.Done()
					}
					if ctx.Err() != nil {
						return
					}
					b.Error(res.Err)
					return
				}
				estMu.Lock()
				estLat = append(estLat, time.Since(t0))
				estMu.Unlock()
				if first {
					// Gate the timed loop on each estimator completing a full
					// estimate so the mixed load is actually mixed from the
					// first insert.
					first = false
					ready.Done()
				}
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
			}
		}()
	}
	ready.Wait()

	writerLat := make([]time.Duration, b.N)
	runtime.GC() // start the timed loop with a fresh heap, far from the next GC trigger
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		row := value.Row{
			value.StringValue(fmt.Sprintf("city-%02d", n%64)),
			value.IntValue(int32(n)),
		}
		t0 := time.Now()
		if _, err := tab.Insert(row); err != nil {
			b.Fatal(err)
		}
		writerLat[n] = time.Since(t0)
		// Pace the writer between timed inserts (a real ingest stream is not
		// a tight loop). The sleep parks the writer's thread, so estimator
		// reads are in flight when the next insert lands — the steady state
		// of a multi-core serving process, which a timeslice-scheduled single
		// core otherwise only reproduces at slice boundaries. Only the Insert
		// call is timed.
		time.Sleep(time.Microsecond)
	}
	b.StopTimer()
	cancel()
	wg.Wait()

	b.ReportMetric(p99ns(writerLat), "p99-writer-ns")
	estMu.Lock()
	defer estMu.Unlock()
	b.ReportMetric(p99ns(estLat), "p99-est-ns")
	b.ReportMetric(float64(len(estLat)), "est-done")
}

// BenchmarkCoalescedStampede fires K identical concurrent cache misses per
// wave (a fresh seed each wave keeps every wave a miss) and asserts the
// flight group collapses each wave to exactly one physical sample draw —
// the cross-request coalescing contract, enforced, not just timed.
func BenchmarkCoalescedStampede(b *testing.B) {
	const K = 8
	tab := testTable(b, "stampede-bench", 4000, 29)
	e := New(Config{Workers: 4})
	defer e.Close()
	cdc := codec(b, "nullsuppression")

	prev := e.Stats().SamplesDrawn
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		req := Request{
			Table: tab, KeyColumns: []string{"a"}, Codec: cdc,
			Fraction: 0.05, Seed: uint64(n) + 1,
		}
		results := make([]Result, K)
		var wg sync.WaitGroup
		for k := 0; k < K; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				results[k] = e.Estimate(context.Background(), req)
			}(k)
		}
		wg.Wait()
		for k, r := range results {
			if r.Err != nil {
				b.Fatalf("wave %d caller %d: %v", n, k, r.Err)
			}
		}
		st := e.Stats()
		if drew := st.SamplesDrawn - prev; drew != 1 {
			b.Fatalf("wave %d drew %d samples, want exactly 1", n, drew)
		}
		prev = st.SamplesDrawn
	}
	b.ReportMetric(K, "callers/draw")
}
