package engine

import (
	"container/list"
	"sync"

	"samplecf/internal/core"
)

// cacheKey identifies one estimation result: everything that changes the
// outcome of a SampleCF run must appear here. Table identity is the
// catalog contract — process-unique instance id plus version epoch — so a
// mutation invalidates every prior entry by key inequality alone, and no
// table content is ever read to build a key.
type cacheKey struct {
	inst     uint64 // catalog.Table.InstanceID
	epoch    uint64 // catalog.Table.Epoch at request time
	columns  string // "\x00"-joined key column names
	codec    string
	fraction float64
	rows     int64
	seed     uint64
	pageSize int
	// fresh separates results computed from a forced direct draw
	// (Request.FreshSample) from maintained-sample results, so a fresh
	// request can never be answered with a maintained-sample estimate.
	fresh bool
	// shard scopes the entry to one shard of a partitioned table (wholeTable
	// for unsharded results). Per-shard entries carry the LOGICAL table's
	// inst, the shard's index, and the shard's own epoch, while fraction,
	// rows, and seed stay request-level: the shard's allocated sub-sample
	// size is a deterministic function of (request, shard-count snapshot),
	// and a cached shard estimate remains a valid unbiased CF_h estimate
	// even when churn elsewhere has shifted the proportional allocation —
	// that is exactly what lets untouched shards keep serving hits while a
	// hot shard's epoch races ahead.
	shard int
	// strata is Request.Strata (0 for unstratified entries): the strata
	// count changes the draw streams and the composed estimate, so it is
	// part of the outcome identity.
	strata int
}

// wholeTable is the cacheKey.shard value of unsharded (whole-table)
// entries; real shard indices are ≥ 0.
const wholeTable = -1

// lruCache is a fixed-capacity LRU map from cacheKey to core.Estimate.
// A zero capacity disables caching (every Get misses, Put is a no-op).
type lruCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *lruEntry
	items    map[cacheKey]*list.Element
}

type lruEntry struct {
	key cacheKey
	est core.Estimate
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 0 {
		capacity = 0
	}
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[cacheKey]*list.Element, capacity),
	}
}

// Get returns the cached estimate for key, refreshing its recency. The
// estimate's frequency profile is deep-copied so concurrent hits never
// alias one map and callers may mutate their copy freely.
func (c *lruCache) Get(key cacheKey) (core.Estimate, bool) {
	if c.capacity == 0 {
		return core.Estimate{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return core.Estimate{}, false
	}
	c.order.MoveToFront(el)
	return cloneEstimate(el.Value.(*lruEntry).est), true
}

// Put stores a private copy of est under key, evicting the
// least-recently-used entry when over capacity. Returns the number of
// evictions (0 or 1).
func (c *lruCache) Put(key cacheKey, est core.Estimate) int {
	if c.capacity == 0 {
		return 0
	}
	est = cloneEstimate(est)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).est = est
		c.order.MoveToFront(el)
		return 0
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, est: est})
	if c.order.Len() <= c.capacity {
		return 0
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	delete(c.items, oldest.Value.(*lruEntry).key)
	return 1
}

// precisionKey identifies the family of adaptive estimates a cached
// precision entry can answer: everything that changes the estimand, but —
// deliberately — not the sample size, fraction, or seed. A precision-
// targeted request asks for an accuracy, not a specific sample, so any
// entry for the same (instance, epoch, columns, codec, page size,
// freshness) whose achieved interval is at least as tight dominates it.
type precisionKey struct {
	inst     uint64
	epoch    uint64
	columns  string // "\x00"-joined key column names
	codec    string
	pageSize int
	fresh    bool
	// epochs is the packed per-shard epoch vector of a partitioned table
	// ("" for unsharded). The summed epoch alone could alias two distinct
	// vectors (one shard +2 vs. two shards +1 each); the vector cannot.
	epochs string
	// strata is Request.Strata (0 for unstratified entries). Stratified and
	// unstratified adaptive results estimate the same CF, but their CI
	// machinery differs (composed vs. whole-sample variance), so dominance
	// is only claimed within one strata setting.
	strata int
}

// precisionEntry is one cached adaptive outcome.
type precisionEntry struct {
	key precisionKey
	est core.Estimate
	// sdScale is the confidence-free size of the achieved interval: the
	// half-width at confidence z is sdScale·z (Theorem 1: 1/(2√r);
	// bootstrap: SD). Storing the scale rather than a half-width lets one
	// entry answer requests at any confidence level.
	sdScale float64
	rounds  int
	rows    int64
}

// precisionCache is the adaptive complement of lruCache: a fixed-capacity
// LRU over precisionKey holding, per key, the tightest estimate achieved so
// far. Lookups are by dominance — a request is a hit when the stored
// interval, rescaled to the request's confidence, is within the requested
// target error — so an entry computed at ±1% keeps satisfying ±5% traffic
// without resampling. Zero capacity disables it.
type precisionCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *precisionEntry
	items    map[precisionKey]*list.Element
}

func newPrecisionCache(capacity int) *precisionCache {
	if capacity < 0 {
		capacity = 0
	}
	return &precisionCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[precisionKey]*list.Element, capacity),
	}
}

// Get returns the cached entry for key if it dominates a request with the
// given z multiplier and target half-width.
func (c *precisionCache) Get(key precisionKey, z, targetError float64) (precisionEntry, bool) {
	if c.capacity == 0 {
		return precisionEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return precisionEntry{}, false
	}
	ent := el.Value.(*precisionEntry)
	if ent.sdScale*z > targetError {
		return precisionEntry{}, false // cached interval too loose for this ask
	}
	c.order.MoveToFront(el)
	out := *ent
	out.est = cloneEstimate(ent.est)
	return out, true
}

// Put stores an adaptive outcome, keeping the tightest sdScale per key.
// Returns the number of evictions (0 or 1).
func (c *precisionCache) Put(key precisionKey, est core.Estimate, sdScale float64, rounds int, rows int64) int {
	if c.capacity == 0 {
		return 0
	}
	ent := &precisionEntry{key: key, est: cloneEstimate(est), sdScale: sdScale, rounds: rounds, rows: rows}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		if old := el.Value.(*precisionEntry); old.sdScale <= sdScale {
			// The resident entry is at least as tight; a looser result
			// never replaces it (dominance is one-directional).
			c.order.MoveToFront(el)
			return 0
		}
		el.Value = ent
		c.order.MoveToFront(el)
		return 0
	}
	c.items[key] = c.order.PushFront(ent)
	if c.order.Len() <= c.capacity {
		return 0
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	delete(c.items, oldest.Value.(*precisionEntry).key)
	return 1
}

// Len reports the current entry count.
func (c *precisionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// cloneEstimate copies the one mutable field of an Estimate (the profile's
// frequency map); everything else is value-typed.
func cloneEstimate(est core.Estimate) core.Estimate {
	f := make(map[int64]int64, len(est.Profile.F))
	for k, v := range est.Profile.F {
		f[k] = v
	}
	est.Profile.F = f
	return est
}

// Len reports the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
