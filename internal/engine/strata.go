// Stratified estimation through the engine: Request.Strata cuts the key
// domain into contiguous memcomparable ranges and samples each by its own
// stream (internal/core's stratified estimators). The engine's contribution
// is plumbing, not statistics — a per-table-version directory cache (the
// O(n) stratify scan runs once per (instance, epoch, columns, strata), not
// per request), boundary resolution that prefers free sources (an existing
// index's separator keys, then a maintained reservoir's observed keys, then
// the fixed-seed pilot), and composition with shard scatter: a partitioned
// table stratifies within each shard, the shard×stratum cells becoming one
// flat arm set with weights rescaled to the whole table.
//
// Stratified draws are always fresh: the directory indexes physical row
// positions, so per-stratum streams must read the table itself — the
// maintained-sample fast path serves only boundary resolution here.
package engine

import (
	"container/list"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"samplecf/internal/catalog"
	"samplecf/internal/core"
	"samplecf/internal/obs"
	"samplecf/internal/sampling"
	"samplecf/internal/value"
)

// dirKey identifies one cached strata directory: the table version plus
// everything the partition depends on. No seed — boundaries derive from the
// index walk, the reservoir snapshot, or the fixed pilot seed, never the
// request seed, so every request at one table version shares one partition.
type dirKey struct {
	inst    uint64
	epoch   uint64
	columns string // "\x00"-joined key column names
	strata  int
}

// dirEntry is one directory build, shared once-style by every request that
// resolves the same key while the entry is resident.
type dirEntry struct {
	once sync.Once
	dir  *sampling.StrataDirectory
	err  error
}

// strataCache is a fixed-capacity LRU over dirKey. Zero capacity disables
// residency: every call gets a fresh entry (and therefore a fresh build).
type strataCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *dirListEntry
	items    map[dirKey]*list.Element
}

type dirListEntry struct {
	key dirKey
	ent *dirEntry
}

func newStrataCache(capacity int) *strataCache {
	if capacity < 0 {
		capacity = 0
	}
	return &strataCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[dirKey]*list.Element, capacity),
	}
}

// entry returns the resident entry for key, creating (and possibly evicting
// the least-recently-used) one when absent. The caller runs the build under
// the entry's once.
func (c *strataCache) entry(key dirKey) *dirEntry {
	if c.capacity == 0 {
		return &dirEntry{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*dirListEntry).ent
	}
	ent := &dirEntry{}
	c.items[key] = c.order.PushFront(&dirListEntry{key: key, ent: ent})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*dirListEntry).key)
	}
	return ent
}

// resolveBounds picks the cheapest available boundary source for one table:
// an existing ordered index's separator walk (no row access at all), the
// maintained reservoir's observed keys at the matching epoch (no storage
// draw), and only then the fixed-seed pilot sample.
func (e *Engine) resolveBounds(tab Table, epoch uint64, keyCols []string, strata int) ([][]byte, error) {
	if strata <= 1 {
		return nil, nil
	}
	if ib, ok := tab.(catalog.IndexBoundaryProvider); ok {
		if bounds, ok := ib.IndexKeyBoundaries(keyCols, strata); ok {
			return bounds, nil
		}
	}
	if sp, ok := tab.(catalog.SampleProvider); ok {
		if s, ok := sp.MaintainedSample(1); ok && s.Epoch == epoch {
			proj, err := core.ProjectSample(s.Arena, keyCols)
			if err != nil {
				return nil, err
			}
			keys := make([][]byte, proj.Len())
			for i := range keys {
				keys[i] = proj.Key(i)
			}
			return core.EquiDepthFromKeys(keys, strata), nil
		}
	}
	return core.PilotBoundaries(tab, tab.Schema(), keyCols, strata)
}

// tableArms builds the per-stratum arms of one catalog table — the whole
// table, or one shard of a partitioned one — resolving the directory through
// the cache and wiring the rows-per-stratum ledger into each arm's draws.
func (e *Engine) tableArms(tab Table, epoch uint64, keyCols []string, strata int, seed uint64) ([]core.StratumArm, error) {
	schema := tab.Schema()
	ent := e.strataDirs.entry(dirKey{
		inst: tab.InstanceID(), epoch: epoch,
		columns: strings.Join(keyCols, "\x00"), strata: strata,
	})
	ent.once.Do(func() {
		e.strataDirBuilds.Add(1)
		bounds, err := e.resolveBounds(tab, epoch, keyCols, strata)
		if err != nil {
			ent.err = err
			return
		}
		ent.dir, ent.err = core.StratifyTable(tab, schema, keyCols, bounds)
	})
	if ent.err != nil {
		return nil, ent.err
	}
	arms := core.DirectoryArms(tab, schema, keyCols, ent.dir, seed)
	for i := range arms {
		e.instrumentArm(&arms[i], i)
	}
	return arms, nil
}

// instrumentArm threads the rows-per-stratum counter through an arm's draw
// closures; stratum is the arm's index among its table's non-empty strata.
func (e *Engine) instrumentArm(arm *core.StratumArm, stratum int) {
	c := e.strataRows.With(strconv.Itoa(stratum))
	draw, ext := arm.Draw, arm.Extend
	arm.Draw = func(r int64) (*value.RecordArena, error) {
		ar, err := draw(r)
		if err == nil && ar != nil {
			c.Add(uint64(ar.Len()))
		}
		return ar, err
	}
	arm.Extend = func(round int, extra int64) (*value.RecordArena, error) {
		ar, err := ext(round, extra)
		if err == nil && ar != nil {
			c.Add(uint64(ar.Len()))
		}
		return ar, err
	}
}

// requestArms resolves a stratified request's full arm set: per stratum for
// a plain table, per shard×stratum cell for a partitioned one. Each shard
// stratifies independently (its own boundaries, directory, and Weyl-derived
// seed lineage shardSeed→StreamSeed), and cell weights rescale from
// within-shard shares to whole-table shares, so the flat arm set composes by
// the same stratified algebra either way.
func (e *Engine) requestArms(req Request, epoch uint64) ([]core.StratumArm, error) {
	if sh, ok := req.Table.(catalog.Sharded); ok {
		ns := sh.NumShards()
		epochs := sh.EpochVector()
		counts := make([]int64, ns)
		var total int64
		for s := 0; s < ns; s++ {
			counts[s] = sh.Shard(s).NumRows()
			total += counts[s]
		}
		if total == 0 {
			return nil, fmt.Errorf("table %q is empty", req.Table.Name())
		}
		var arms []core.StratumArm
		for s := 0; s < ns; s++ {
			if counts[s] == 0 {
				continue
			}
			sub, err := e.tableArms(sh.Shard(s), epochs[s], req.KeyColumns, req.Strata, shardSeed(req.Seed, s))
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", s, err)
			}
			scale := float64(counts[s]) / float64(total)
			for i := range sub {
				sub[i].Weight *= scale
				sub[i].Label = fmt.Sprintf("shard %d/%s", s, sub[i].Label)
			}
			arms = append(arms, sub...)
		}
		return arms, nil
	}
	return e.tableArms(req.Table, epoch, req.KeyColumns, req.Strata, req.Seed)
}

// evaluateStratified runs one fixed-r stratified request on a pool worker:
// resolve the arms, allocate r proportionally across them, run the
// per-stratum draws (core.EstimateStratified bounds its own fan-out), and
// cache the merged estimate under the request-level key.
func (e *Engine) evaluateStratified(ctx context.Context, it *batchItem) Result {
	req := it.req
	e.stratified.Add(1)
	arms, err := e.requestArms(req, it.key.epoch)
	if err != nil {
		return Result{Err: fmt.Errorf("engine: request %d: stratify: %w", it.idx, err)}
	}
	e.strataCountHist.Observe(time.Duration(len(arms)))
	r := req.SampleRows
	if r <= 0 {
		r = sampling.SampleSize(req.Table.NumRows(), req.Fraction)
	}
	counts := make([]int64, len(arms))
	for i := range arms {
		counts[i] = arms[i].Rows
	}
	alloc := sampling.Allocate(r, counts, nil)
	e.samplesDrawn.Add(1)
	_, end := obs.StartSpan(ctx, stageCompress)
	t0 := time.Now()
	est, err := core.EstimateStratified(arms, alloc, core.Options{
		Codec: req.Codec, PageSize: it.key.pageSize, Seed: req.Seed, Strata: req.Strata,
	})
	e.stageCompressHist.Observe(time.Since(t0))
	end.End()
	if err != nil {
		return Result{Err: fmt.Errorf("engine: request %d: %w", it.idx, err)}
	}
	e.evaluated.Add(1)
	if ev := e.cache.Put(it.key, est); ev > 0 {
		e.evictions.Add(uint64(ev))
	}
	return Result{Estimate: est}
}

// runStratifiedAdaptive is the precision-targeted stratified loop: arms from
// the directory cache, proportional round-0 allocation (doubling as the
// Neyman pilot), then core.AdaptiveEstimateStratified's dominance-routed
// refinement. The achieved precision publishes to the dominance cache under
// the strata-scoped precision key.
func (e *Engine) runStratifiedAdaptive(ctx context.Context, req Request, pkey precisionKey) (core.AdaptiveResult, error) {
	pageSize := req.PageSize
	if pageSize == 0 {
		pageSize = e.cfg.PageSize
	}
	e.stratified.Add(1)
	arms, err := e.requestArms(req, pkey.epoch)
	if err != nil {
		return core.AdaptiveResult{}, fmt.Errorf("stratify: %w", err)
	}
	e.strataCountHist.Observe(time.Duration(len(arms)))
	// Re-check ctx at every arm extension, so an expired deadline stops the
	// loop at the next round boundary instead of running the budget out.
	for i := range arms {
		ext := arms[i].Extend
		arms[i].Extend = func(round int, extra int64) (*value.RecordArena, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return ext(round, extra)
		}
	}
	target := core.Precision{
		TargetError:   req.TargetError,
		Confidence:    req.Confidence,
		MaxSampleRows: req.MaxSampleRows,
	}
	if target.MaxSampleRows == 0 {
		target.MaxSampleRows = req.Table.NumRows()
	}
	counts := make([]int64, len(arms))
	for i := range arms {
		counts[i] = arms[i].Rows
	}
	round0 := sampling.Allocate(initialAdaptiveRows(req), counts, nil)
	e.samplesDrawn.Add(1)
	_, endRounds := obs.StartSpan(ctx, stageRounds)
	t0 := time.Now()
	res, err := core.AdaptiveEstimateStratified(arms, round0, target, core.Options{
		Codec: req.Codec, PageSize: pageSize, Seed: req.Seed, Strata: req.Strata,
	})
	e.stageRoundsHist.Observe(time.Since(t0))
	endRounds.End()
	if err != nil {
		return core.AdaptiveResult{}, err
	}
	e.adaptiveRounds.Add(uint64(res.Rounds))
	e.adaptiveRows.Add(uint64(res.Estimate.SampleRows))
	e.evaluated.Add(1)
	e.precision.Put(pkey, res.Estimate, res.AchievedError/zFor(req.Confidence), res.Rounds, res.Estimate.SampleRows)
	return res, nil
}
