// Cross-request coalescing: concurrent identical cache misses collapse
// into one pipeline execution whose result fans out to every waiter.
//
// The batch-level dedup structures (sampleGroup, prepGroup, adaptiveGroup)
// only share work inside one WhatIf call; two HTTP clients asking the same
// question at the same moment arrive as separate batches and, before this
// file, each drew its own sample. The flight group extends the dedup
// across requests: a miss opens a flight keyed by the exact key the result
// cache uses (cacheKey for fixed-r and stratified requests,
// adaptiveGroupKey for precision-targeted ones — distinct Go types, so the
// two key spaces cannot collide in the map), later identical misses join
// it as waiters, and the leader's result fans out to all of them.
// Scattered requests over partitioned tables do not coalesce at the
// request level: their work units resolve against the per-shard cache at
// plan time, and that cache already absorbs cross-request reuse per shard.
//
// Cancellation is per-waiter and reference-counted: the shared computation
// runs on a context detached from the leader's (context.WithoutCancel), a
// party that abandons the flight only decrements the count, and the shared
// context is cancelled only when the last party leaves before completion.
// One waiter's deadline therefore never poisons the rest.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// flight is one in-progress computation plus its waiter ledger.
type flight struct {
	// done closes after res is set and the flight is removed from the
	// group's map — a joiner can never observe a closed done while the
	// flight is still joinable.
	done   chan struct{}
	cancel context.CancelFunc

	mu       sync.Mutex
	refs     int // parties (leader + waiters) still interested
	finished bool
	res      Result
}

// detach records one party losing interest. Before completion the last
// departure cancels the shared computation; after completion it is a no-op.
func (f *flight) detach() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.finished {
		return
	}
	f.refs--
	if f.refs == 0 && f.cancel != nil {
		f.cancel()
	}
}

// flightGroup indexes in-progress computations by result-cache key.
type flightGroup struct {
	mu sync.Mutex
	m  map[any]*flight
}

// flightKey resolves the coalescing key for a batch item: the result-cache
// key for fixed-r and stratified requests, the adaptive group key
// (reconstructed exactly as WhatIf builds it) for precision-targeted ones,
// and nil — no coalescing — for scattered items.
func flightKey(it *batchItem) any {
	if it.shards != nil {
		return nil
	}
	if it.req.TargetError > 0 {
		return adaptiveGroupKey{
			pkey: it.pkey, target: it.req.TargetError, confidence: it.req.Confidence,
			maxRows: it.req.MaxSampleRows, fraction: it.req.Fraction,
			rows: it.req.SampleRows, seed: it.req.Seed, partial: it.req.AllowPartial,
		}
	}
	return it.key
}

// coalesce runs one batch item through the flight group: join an existing
// flight as a waiter, or open one and lead the computation. Waiters get a
// deep copy of the leader's result (cache entries are cloned on Get for
// the same reason: Estimate.Profile is mutable) marked Coalesced.
func (e *Engine) coalesce(ctx context.Context, key any, it *batchItem) Result {
	e.flights.mu.Lock()
	if f, ok := e.flights.m[key]; ok {
		f.mu.Lock()
		f.refs++
		f.mu.Unlock()
		e.flights.mu.Unlock()
		return e.awaitFlight(ctx, f, it)
	}
	f := &flight{done: make(chan struct{}), refs: 1}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f.cancel = cancel
	if e.flights.m == nil {
		e.flights.m = make(map[any]*flight)
	}
	e.flights.m[key] = f
	e.flights.mu.Unlock()

	// The leader computes inline on the detached context; if its own ctx
	// expires while waiters remain, the computation keeps running for them
	// (AfterFunc detaches the leader's reference, which cancels fctx only
	// at refs == 0).
	stop := context.AfterFunc(ctx, f.detach)
	res := e.evaluateRechecked(fctx, it)

	f.mu.Lock()
	f.finished = true
	f.res = res
	f.mu.Unlock()
	// Remove from the map before signalling completion, so a racing miss
	// opens a fresh flight (and re-checks the now-populated cache) instead
	// of joining a finished one.
	e.flights.mu.Lock()
	if e.flights.m[key] == f {
		delete(e.flights.m, key)
	}
	e.flights.mu.Unlock()
	close(f.done)
	stop()
	cancel()
	return res
}

// awaitFlight blocks a waiter on an in-progress flight.
func (e *Engine) awaitFlight(ctx context.Context, f *flight, it *batchItem) Result {
	select {
	case <-f.done:
	case <-ctx.Done():
		f.detach()
		return Result{Err: fmt.Errorf("engine: request %d: %w", it.idx, ctx.Err())}
	}
	f.mu.Lock()
	res := f.res
	f.mu.Unlock()
	if res.Err != nil {
		// A context error can reach a live waiter through one narrow race:
		// every party left, the shared context cancelled, and this waiter
		// joined mid-abort. Its own deadline is fine, so compute directly
		// rather than inheriting someone else's cancellation.
		if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
			if ctx.Err() == nil {
				return e.evaluateRechecked(ctx, it)
			}
		}
		return Result{Err: res.Err}
	}
	e.coalescedWaits.Add(1)
	res.Estimate = cloneEstimate(res.Estimate)
	res.Coalesced = true
	return res
}

// evaluateRechecked is the flight leader's entry point: re-consult the
// result cache (fixed/stratified) or precision cache (adaptive) before
// computing. The front-door lookup in WhatIf ran before this item reached
// the pool, and an earlier flight on the same key may have completed in
// between — on a small pool a K-wide stampede serializes, and without this
// recheck each serialized leader would redraw. The recheck does not touch
// the hit/miss counters: those are the front-door ledger, and this item
// already counted as a miss.
func (e *Engine) evaluateRechecked(ctx context.Context, it *batchItem) Result {
	if it.req.TargetError > 0 {
		z := zFor(it.req.Confidence)
		if ent, ok := e.precision.Get(it.pkey, z, it.req.TargetError); ok {
			return Result{
				Estimate:      ent.est,
				CacheHit:      true,
				AchievedError: ent.sdScale * z,
				Rounds:        ent.rounds,
				Converged:     true,
			}
		}
	} else if est, ok := e.cache.Get(it.key); ok {
		return Result{Estimate: est, CacheHit: true}
	}
	return e.evaluateMiss(ctx, it)
}
