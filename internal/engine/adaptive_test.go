package engine

import (
	"context"
	"testing"

	"samplecf/internal/db"
	"samplecf/internal/value"
)

// TestAdaptiveRequestConverges drives a precision-targeted request through
// the engine end to end: pool scheduling, resumable rounds, and the
// reported convergence metadata.
func TestAdaptiveRequestConverges(t *testing.T) {
	tab := testTable(t, "adaptive", 20000, 3)
	e := New(Config{Workers: 2})
	defer e.Close()

	res := e.Estimate(context.Background(), Request{
		Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"),
		TargetError: 0.04, Seed: 1,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: ±%v after %d rounds", res.AchievedError, res.Rounds)
	}
	if res.AchievedError > 0.04 || res.AchievedError <= 0 {
		t.Errorf("achieved ±%v, want in (0, 0.04]", res.AchievedError)
	}
	if res.Rounds < 1 {
		t.Errorf("rounds = %d", res.Rounds)
	}
	// ±4% at 95% needs ~601 rows under Theorem 1 — a fraction of the
	// blind 1% (=200) ... of the n=20000 table the fixed path would use
	// at f=3%; mainly: far below n.
	if r := res.Estimate.SampleRows; r < 100 || r > 2000 {
		t.Errorf("sampled %d rows, expected a few hundred (Theorem-1-implied)", r)
	}
	st := e.Stats()
	if st.AdaptiveRounds == 0 || st.AdaptiveRows == 0 {
		t.Errorf("adaptive counters not recorded: %+v", st)
	}
}

// TestPrecisionCacheDominance is the cache rule of the adaptive plane: an
// entry achieving ±1.5% must satisfy a later ±5% request for the same
// (instance, epoch, columns, codec) without resampling — but a later
// *tighter* request must recompute.
func TestPrecisionCacheDominance(t *testing.T) {
	tab := testTable(t, "dominance", 20000, 5)
	e := New(Config{Workers: 2})
	defer e.Close()
	ctx := context.Background()
	base := Request{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), Seed: 2}

	tight := base
	tight.TargetError = 0.015
	first := e.Estimate(ctx, tight)
	if first.Err != nil || first.CacheHit {
		t.Fatalf("first adaptive call: %+v", first)
	}

	loose := base
	loose.TargetError = 0.05
	second := e.Estimate(ctx, loose)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.CacheHit {
		t.Fatal("±1.5% entry must satisfy a ±5% ask by dominance")
	}
	if second.Estimate.CF != first.Estimate.CF {
		t.Errorf("dominated hit returned different estimate: %v vs %v", second.Estimate.CF, first.Estimate.CF)
	}
	if second.AchievedError > 0.05 || !second.Converged {
		t.Errorf("dominated hit metadata: ±%v converged=%v", second.AchievedError, second.Converged)
	}

	tighter := base
	tighter.TargetError = 0.005
	third := e.Estimate(ctx, tighter)
	if third.Err != nil {
		t.Fatal(third.Err)
	}
	if third.CacheHit {
		t.Fatal("a ±1.5% entry must NOT satisfy a ±0.5% ask")
	}
	if third.Estimate.SampleRows <= first.Estimate.SampleRows {
		t.Errorf("tighter ask should need more rows: %d vs %d",
			third.Estimate.SampleRows, first.Estimate.SampleRows)
	}

	st := e.Stats()
	if st.PrecisionHits != 1 {
		t.Errorf("PrecisionHits = %d, want 1", st.PrecisionHits)
	}
	if st.PrecisionEntries != 1 {
		t.Errorf("PrecisionEntries = %d, want 1 (same key, tightest kept)", st.PrecisionEntries)
	}

	// A different confidence rescales the same stored interval: ±0.5% at
	// a low confidence is satisfiable by the ±0.5%-at-95% entry.
	rescaled := base
	rescaled.TargetError = 0.005
	rescaled.Confidence = 0.5
	fourth := e.Estimate(ctx, rescaled)
	if fourth.Err != nil {
		t.Fatal(fourth.Err)
	}
	if !fourth.CacheHit {
		t.Error("confidence-rescaled ask within the stored interval should hit")
	}
}

// TestAdaptiveEpochInvalidation: mutating the table must stop the precision
// cache from answering (the entry is keyed at the old epoch).
func TestAdaptiveEpochInvalidation(t *testing.T) {
	d := db.New(0)
	tab := liveTable(t, d, "adaptive-live", 5000)
	e := New(Config{Workers: 2})
	defer e.Close()
	ctx := context.Background()
	req := Request{Table: tab, KeyColumns: []string{"city"}, Codec: mustCodec(t),
		TargetError: 0.05, Seed: 1, MaxSampleRows: 1500}

	if res := e.Estimate(ctx, req); res.Err != nil || res.CacheHit {
		t.Fatalf("first adaptive estimate: %+v", res)
	}
	if res := e.Estimate(ctx, req); res.Err != nil || !res.CacheHit {
		t.Fatalf("repeat should hit the precision cache: %+v", res)
	}
	if _, err := tab.Insert(value.Row{value.StringValue("mutation"), value.IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if res := e.Estimate(ctx, req); res.Err != nil || res.CacheHit {
		t.Fatalf("post-mutation estimate must recompute: %+v", res)
	}
}

// TestAdaptiveMaintainedRoute: when the table's maintained reservoir can
// cover the entire adaptive row budget at the current epoch, rounds gather
// from the snapshot instead of storage.
func TestAdaptiveMaintainedRoute(t *testing.T) {
	d := db.New(0) // default maintained-sample target: 2048 rows
	tab := liveTable(t, d, "maintained", 8000)
	e := New(Config{Workers: 2})
	defer e.Close()

	res := e.Estimate(context.Background(), Request{
		Table: tab, KeyColumns: []string{"city"}, Codec: mustCodec(t),
		TargetError: 0.05, Seed: 4, MaxSampleRows: 1024,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: ±%v", res.AchievedError)
	}
	st := e.Stats()
	if st.MaintainedHits != 1 {
		t.Errorf("MaintainedHits = %d, want 1 (budget 1024 ≤ reservoir 2048)", st.MaintainedHits)
	}
	if st.SamplesDrawn != 0 {
		t.Errorf("SamplesDrawn = %d, want 0 (no storage draw)", st.SamplesDrawn)
	}

	// A budget beyond the reservoir must fall back to fresh draws.
	res2 := e.Estimate(context.Background(), Request{
		Table: tab, KeyColumns: []string{"city"}, Codec: mustCodec(t),
		TargetError: 0.01, Seed: 5, MaxSampleRows: 4096, FreshSample: true,
	})
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if st := e.Stats(); st.SamplesDrawn != 1 {
		t.Errorf("SamplesDrawn = %d, want 1 (fresh fallback)", st.SamplesDrawn)
	}
}

// TestAdaptiveBudgetHonesty: the engine reports non-convergence rather than
// silently clamping precision.
func TestAdaptiveBudgetHonesty(t *testing.T) {
	tab := testTable(t, "budget", 10000, 7)
	e := New(Config{Workers: 2})
	defer e.Close()
	res := e.Estimate(context.Background(), Request{
		Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"),
		TargetError: 0.001, Seed: 1, MaxSampleRows: 500,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Converged {
		t.Fatal("±0.1% from 500 rows cannot converge under Theorem 1")
	}
	if res.Estimate.SampleRows != 500 {
		t.Errorf("spent %d rows, want the full 500 budget", res.Estimate.SampleRows)
	}
	if res.AchievedError <= 0.001 {
		t.Errorf("honest residual ±%v should exceed the target", res.AchievedError)
	}
	// The honest non-converged entry still serves a dominated (looser) ask.
	loose := e.Estimate(context.Background(), Request{
		Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"),
		TargetError: 0.08, Seed: 9,
	})
	if loose.Err != nil {
		t.Fatal(loose.Err)
	}
	if !loose.CacheHit {
		t.Error("unconverged ±~4.4% entry should satisfy a ±8% ask")
	}
}

// TestAdaptiveValidation rejects malformed adaptive requests.
func TestAdaptiveValidation(t *testing.T) {
	tab := testTable(t, "adaptive-validate", 1000, 1)
	e := New(Config{Workers: 1})
	defer e.Close()
	bad := []Request{
		{Table: tab, Codec: codec(t, "nullsuppression"), TargetError: -0.1},
		{Table: tab, Codec: codec(t, "nullsuppression"), TargetError: 1.0},
		{Table: tab, Codec: codec(t, "nullsuppression"), TargetError: 0.02, Confidence: 2},
		{Table: tab, Codec: codec(t, "nullsuppression"), Fraction: 0.01, Confidence: 0.95},
		{Table: tab, Codec: codec(t, "nullsuppression"), Fraction: 0.01, MaxSampleRows: 100},
		{Table: tab, Codec: codec(t, "nullsuppression"), TargetError: 0.02, MaxSampleRows: -5},
	}
	for i, req := range bad {
		if res := e.Estimate(context.Background(), req); res.Err == nil {
			t.Errorf("case %d: malformed request accepted: %+v", i, req)
		}
	}
}

// TestAdaptiveBatchDedup: identical adaptive asks in one batch share one
// loop — one sample stream, one set of rounds, identical results.
func TestAdaptiveBatchDedup(t *testing.T) {
	tab := testTable(t, "adaptive-dedup", 20000, 11)
	e := New(Config{Workers: 4})
	defer e.Close()
	req := Request{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"),
		TargetError: 0.03, Seed: 6}
	res := e.WhatIf(context.Background(), []Request{req, req, req})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Estimate.CF != res[0].Estimate.CF || r.Rounds != res[0].Rounds {
			t.Errorf("item %d diverged from its group: %+v", i, r)
		}
	}
	st := e.Stats()
	if st.Evaluated != 1 {
		t.Errorf("Evaluated = %d, want 1 (one shared loop for three identical asks)", st.Evaluated)
	}
	if st.SamplesDrawn != 1 {
		t.Errorf("SamplesDrawn = %d, want 1", st.SamplesDrawn)
	}
	// An adaptive dominance hit counts in both Hits and PrecisionHits.
	again := e.Estimate(context.Background(), req)
	if again.Err != nil || !again.CacheHit {
		t.Fatalf("repeat should hit: %+v", again)
	}
	st = e.Stats()
	if st.PrecisionHits != 1 || st.Hits != 1 {
		t.Errorf("Hits/PrecisionHits = %d/%d, want 1/1", st.Hits, st.PrecisionHits)
	}
}

// TestAdaptiveCancellation: an expired context stops a started adaptive
// loop at the next round boundary instead of running the row budget out.
func TestAdaptiveCancellation(t *testing.T) {
	tab := testTable(t, "adaptive-cancel", 50000, 13)
	e := New(Config{Workers: 1})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.Estimate(ctx, Request{
		Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"),
		TargetError: 0.001, Seed: 1,
	})
	if res.Err == nil {
		t.Fatal("cancelled adaptive request returned a result")
	}
	if st := e.Stats(); st.AdaptiveRows != 0 {
		t.Errorf("cancelled loop still drew %d rows", st.AdaptiveRows)
	}
}

// TestAdaptiveRound0Sharing: adaptive candidates over the same table and
// seed share their initial draw even across codecs and column sets — the
// advisor's screen pays one storage draw, not one per candidate.
func TestAdaptiveRound0Sharing(t *testing.T) {
	tab := testTable(t, "adaptive-share", 20000, 17)
	e := New(Config{Workers: 4})
	defer e.Close()
	res := e.WhatIf(context.Background(), []Request{
		{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), TargetError: 0.04, Seed: 3},
		{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "rle"), TargetError: 0.04, Seed: 3},
		{Table: tab, KeyColumns: []string{"b"}, Codec: codec(t, "prefix"), TargetError: 0.04, Seed: 3},
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	if st := e.Stats(); st.SamplesDrawn != 1 {
		t.Errorf("SamplesDrawn = %d, want 1 (shared round-0 draw)", st.SamplesDrawn)
	}
	// Sharing must not change results: rerun each alone on a fresh engine.
	for i, req := range []Request{
		{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "nullsuppression"), TargetError: 0.04, Seed: 3},
		{Table: tab, KeyColumns: []string{"a"}, Codec: codec(t, "rle"), TargetError: 0.04, Seed: 3},
		{Table: tab, KeyColumns: []string{"b"}, Codec: codec(t, "prefix"), TargetError: 0.04, Seed: 3},
	} {
		solo := New(Config{Workers: 1})
		got := solo.Estimate(context.Background(), req)
		solo.Close()
		if got.Err != nil {
			t.Fatalf("solo %d: %v", i, got.Err)
		}
		if got.Estimate.CF != res[i].Estimate.CF || got.Estimate.SampleRows != res[i].Estimate.SampleRows {
			t.Errorf("item %d: shared (CF %v, r %d) != solo (CF %v, r %d)",
				i, res[i].Estimate.CF, res[i].Estimate.SampleRows, got.Estimate.CF, got.Estimate.SampleRows)
		}
	}
}

// TestAdaptiveMaintainedDefaultBudget: with no explicit MaxSampleRows the
// maintained route must still serve (the old policy demanded the reservoir
// cover the full table size, making the fast path unreachable by default).
func TestAdaptiveMaintainedDefaultBudget(t *testing.T) {
	d := db.New(0) // reservoir target 2048 < n
	tab := liveTable(t, d, "maintained-default", 8000)
	e := New(Config{Workers: 2})
	defer e.Close()
	res := e.Estimate(context.Background(), Request{
		Table: tab, KeyColumns: []string{"city"}, Codec: mustCodec(t),
		TargetError: 0.04, Seed: 2,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: ±%v", res.AchievedError)
	}
	st := e.Stats()
	if st.MaintainedHits != 1 || st.SamplesDrawn != 0 {
		t.Errorf("maintained route not taken: hits=%d drawn=%d", st.MaintainedHits, st.SamplesDrawn)
	}
}

// TestAdaptiveMaintainedFallbackToFresh: when the reservoir runs out below
// the requested budget without converging, the request reruns fresh from
// storage with the full budget — the caller's budget is never silently
// weakened to the reservoir size.
func TestAdaptiveMaintainedFallbackToFresh(t *testing.T) {
	d := db.New(0, db.WithSampleTarget(300))
	tab := liveTable(t, d, "small-reservoir", 8000)
	e := New(Config{Workers: 2})
	defer e.Close()
	// ±3% at 95% needs ~1068 rows under Theorem 1 — beyond the 300-row
	// reservoir, within the default (table-size) budget.
	res := e.Estimate(context.Background(), Request{
		Table: tab, KeyColumns: []string{"city"}, Codec: mustCodec(t),
		TargetError: 0.03, Seed: 6,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Converged {
		t.Fatalf("fallback should converge: ±%v after %d rows", res.AchievedError, res.Estimate.SampleRows)
	}
	if res.Estimate.SampleRows <= 300 {
		t.Errorf("converged within the reservoir (%d rows)? expected fresh fallback past 300", res.Estimate.SampleRows)
	}
	st := e.Stats()
	if st.MaintainedHits != 1 {
		t.Errorf("MaintainedHits = %d, want 1 (the capped attempt)", st.MaintainedHits)
	}
	if st.SamplesDrawn != 1 {
		t.Errorf("SamplesDrawn = %d, want 1 (the fresh rerun)", st.SamplesDrawn)
	}
}
