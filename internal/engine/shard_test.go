package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"samplecf/internal/db"
	"samplecf/internal/value"
)

// liveShardedTable creates a db-backed table range-partitioned on seq into
// equal shards of width rowsPerShard, filled with n = shards·rowsPerShard
// rows (seq 0..n-1, so shard s owns seq [s·w, (s+1)·w)).
func liveShardedTable(t testing.TB, d *db.Database, name string, shards, rowsPerShard int) *db.ShardedTable {
	t.Helper()
	schema, err := value.NewSchema(
		value.Column{Name: "city", Type: value.Char(16)},
		value.Column{Name: "seq", Type: value.Int32()},
	)
	if err != nil {
		t.Fatal(err)
	}
	bounds := make([][]byte, shards-1)
	for i := range bounds {
		bounds[i] = value.IntValue(int32((i + 1) * rowsPerShard))
	}
	st, err := d.CreateShardedTable(name, schema, db.ShardSpec{
		Shards: shards, Column: "seq", By: db.ShardByRange, Bounds: bounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards*rowsPerShard; i++ {
		_, err := st.Insert(value.Row{
			value.StringValue(fmt.Sprintf("city-%02d", i%64)),
			value.IntValue(int32(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestAllocateRows pins the largest-remainder allocation: proportionality,
// exact total, the one-row floor for non-empty shards, empty shards get
// nothing, and the single-shard identity.
func TestAllocateRows(t *testing.T) {
	got := allocateRows(100, []int64{300, 100, 0, 600})
	if got[2] != 0 {
		t.Errorf("empty shard allocated %d rows", got[2])
	}
	if got[0] != 30 || got[1] != 10 || got[3] != 60 {
		t.Errorf("allocation %v, want [30 10 0 60]", got)
	}
	// Remainders distribute to the largest fractional parts and the total
	// is exact when r >= non-empty shards.
	got = allocateRows(10, []int64{1, 1, 1})
	if got[0]+got[1]+got[2] != 10 {
		t.Errorf("allocation %v does not sum to 10", got)
	}
	// One-row floor: more shards than rows overshoots rather than leaving
	// a stratum uncovered.
	got = allocateRows(2, []int64{10, 10, 10, 10})
	for h, r := range got {
		if r < 1 {
			t.Errorf("shard %d allocated %d rows; floor is 1", h, r)
		}
	}
	// Single shard takes everything.
	got = allocateRows(500, []int64{999})
	if got[0] != 500 {
		t.Errorf("single shard allocated %d, want 500", got[0])
	}
}

// TestScatterMatchesUnsharded checks the scatter path end to end: a
// single-shard table must answer byte-identically to a plain table holding
// the same rows (shard 0 keeps the request seed), and a multi-shard
// estimate must agree on the invariants (sample size, profile totals).
func TestScatterMatchesUnsharded(t *testing.T) {
	d := db.New(0)
	plain := liveTable(t, d, "plain", 3000)
	single := liveShardedTable(t, d, "single", 1, 3000)
	e := New(Config{Workers: 2})
	defer e.Close()
	codec := mustCodec(t)

	req := Request{Codec: codec, KeyColumns: []string{"city"}, SampleRows: 400, Seed: 99, FreshSample: true}
	reqPlain, reqSingle := req, req
	reqPlain.Table = plain
	reqSingle.Table = single
	rp := e.Estimate(context.Background(), reqPlain)
	rs := e.Estimate(context.Background(), reqSingle)
	if rp.Err != nil || rs.Err != nil {
		t.Fatalf("errs: %v / %v", rp.Err, rs.Err)
	}
	if rp.Estimate.CF != rs.Estimate.CF ||
		rp.Estimate.Result.CompressedBytes != rs.Estimate.Result.CompressedBytes ||
		rp.Estimate.Result.UncompressedBytes != rs.Estimate.Result.UncompressedBytes ||
		rp.Estimate.SampleRows != rs.Estimate.SampleRows ||
		rp.Estimate.SampleDistinct != rs.Estimate.SampleDistinct {
		t.Errorf("single-shard diverges from unsharded: %+v vs %+v", rs.Estimate, rp.Estimate)
	}

	multi := liveShardedTable(t, d, "multi", 3, 1000)
	reqMulti := req
	reqMulti.Table = multi
	rm := e.Estimate(context.Background(), reqMulti)
	if rm.Err != nil {
		t.Fatal(rm.Err)
	}
	if rm.Estimate.SampleRows != 400 {
		t.Errorf("scattered sample totals %d rows, want 400", rm.Estimate.SampleRows)
	}
	if rm.Estimate.Profile.R != 400 {
		t.Errorf("merged profile R = %d, want 400", rm.Estimate.Profile.R)
	}
	if rm.Estimate.CF <= 0 || rm.Estimate.CF > 1 {
		t.Errorf("merged CF %v outside (0,1]", rm.Estimate.CF)
	}
	var fsum int64
	for _, v := range rm.Estimate.Profile.F {
		fsum += v
	}
	if fsum != rm.Estimate.Profile.D {
		t.Errorf("merged profile: sum F = %d, D = %d", fsum, rm.Estimate.Profile.D)
	}
}

// TestHotShardCacheHit is the tentpole regression: after one shard
// mutates, a repeated fixed-r request re-evaluates ONLY that shard — the
// untouched shards' per-shard cache entries keep serving, so exactly one
// new sample draw happens. (The request pins SampleRows and FreshSample:
// fixed r keeps the per-shard keys request-level, fresh draws make the
// draw counter an exact re-evaluation ledger.)
func TestHotShardCacheHit(t *testing.T) {
	d := db.New(0)
	st := liveShardedTable(t, d, "t", 3, 1000)
	e := New(Config{Workers: 2, CacheEntries: 64})
	defer e.Close()
	req := Request{Table: st, Codec: mustCodec(t), KeyColumns: []string{"city"},
		SampleRows: 300, Seed: 7, FreshSample: true}

	r0 := e.Estimate(context.Background(), req)
	if r0.Err != nil {
		t.Fatal(r0.Err)
	}
	s0 := e.Stats()
	if s0.ShardScatters != 1 || s0.ShardCacheMisses != 3 || s0.SamplesDrawn != 3 {
		t.Fatalf("cold scatter: %+v", s0)
	}

	// Warm repeat: every shard hits, the whole request is a cache hit.
	r1 := e.Estimate(context.Background(), req)
	if r1.Err != nil || !r1.CacheHit {
		t.Fatalf("warm repeat not a cache hit: %+v", r1)
	}
	if r1.Estimate.CF != r0.Estimate.CF {
		t.Errorf("cached CF %v != computed %v", r1.Estimate.CF, r0.Estimate.CF)
	}
	s1 := e.Stats()
	if s1.ShardCacheHits != 3 || s1.SamplesDrawn != 3 {
		t.Fatalf("warm scatter drew samples: %+v", s1)
	}

	// Mutate shard 0 only (seq 0 routes below the first bound).
	if _, err := st.Insert(value.Row{value.StringValue("city-xx"), value.IntValue(0)}); err != nil {
		t.Fatal(err)
	}
	r2 := e.Estimate(context.Background(), req)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if r2.CacheHit {
		t.Error("request after mutation must not be a full cache hit")
	}
	s2 := e.Stats()
	if hits := s2.ShardCacheHits - s1.ShardCacheHits; hits != 2 {
		t.Errorf("untouched shards served %d hits, want 2", hits)
	}
	if misses := s2.ShardCacheMisses - s1.ShardCacheMisses; misses != 1 {
		t.Errorf("hot shard missed %d times, want 1", misses)
	}
	if drawn := s2.SamplesDrawn - s1.SamplesDrawn; drawn != 1 {
		t.Errorf("re-evaluation drew %d samples, want exactly 1 (the hot shard)", drawn)
	}
}

// TestShardedAdaptive checks the stratified adaptive loop: convergence to
// the target, a sane interval, and precision-cache dominance on repeat.
func TestShardedAdaptive(t *testing.T) {
	d := db.New(0)
	st := liveShardedTable(t, d, "t", 3, 1000)
	e := New(Config{Workers: 2})
	defer e.Close()
	req := Request{Table: st, Codec: mustCodec(t), KeyColumns: []string{"city"},
		Seed: 11, TargetError: 0.04}

	r := e.Estimate(context.Background(), req)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.Converged {
		t.Fatalf("sharded adaptive did not converge: %+v", r)
	}
	if r.AchievedError > 0.04 || r.AchievedError <= 0 {
		t.Errorf("achieved error %v outside (0, 0.04]", r.AchievedError)
	}
	if r.Estimate.CF <= 0 || r.Estimate.CF > 1 {
		t.Errorf("CF %v outside (0,1]", r.Estimate.CF)
	}
	if r.Rounds < 1 {
		t.Errorf("rounds = %d", r.Rounds)
	}

	// A looser ask at the same epoch vector is answered by dominance.
	loose := req
	loose.TargetError = 0.1
	r2 := e.Estimate(context.Background(), loose)
	if r2.Err != nil || !r2.CacheHit {
		t.Fatalf("dominance repeat not a hit: %+v", r2)
	}
	if e.Stats().PrecisionHits != 1 {
		t.Errorf("precision hits = %d, want 1", e.Stats().PrecisionHits)
	}

	// Any mutation invalidates the whole-table adaptive entry (the epoch
	// vector changed), unlike the per-shard fixed-r cache.
	if _, err := st.Insert(value.Row{value.StringValue("c"), value.IntValue(0)}); err != nil {
		t.Fatal(err)
	}
	r3 := e.Estimate(context.Background(), loose)
	if r3.Err != nil {
		t.Fatal(r3.Err)
	}
	if r3.CacheHit {
		t.Error("adaptive entry survived a mutation")
	}
}

// TestShardRace exercises concurrent per-shard inserts against cross-shard
// scattered estimates under the race detector: shard-local locking means
// writers to different shards never serialize against each other, and
// readers see internally-consistent shards.
func TestShardRace(t *testing.T) {
	d := db.New(0)
	shards, perShard := 4, 500
	st := liveShardedTable(t, d, "t", shards, perShard)
	e := New(Config{Workers: 4, CacheEntries: 64})
	defer e.Close()
	codec := mustCodec(t)

	var wg sync.WaitGroup
	// One writer per shard, each inserting into its own seq range.
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			base := int32(s * perShard)
			for i := 0; i < 50; i++ {
				_, err := st.Insert(value.Row{
					value.StringValue(fmt.Sprintf("w%d-%d", s, i)),
					value.IntValue(base),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	// Concurrent scattered estimates across all shards.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				r := e.Estimate(context.Background(), Request{
					Table: st, Codec: codec, KeyColumns: []string{"city"},
					SampleRows: 200, Seed: uint64(g*100 + i), FreshSample: true,
				})
				if r.Err != nil {
					t.Errorf("estimate: %v", r.Err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := st.NumRows(); got != int64(shards*perShard+shards*50) {
		t.Errorf("NumRows = %d after concurrent inserts", got)
	}
}
