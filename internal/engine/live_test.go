package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"samplecf/internal/compress"
	"samplecf/internal/db"
	"samplecf/internal/value"
)

// liveTable creates a db-backed table with n rows: a 16-char city column
// over 64 distinct names plus a counter column.
func liveTable(t testing.TB, d *db.Database, name string, n int) *db.Table {
	t.Helper()
	schema, err := value.NewSchema(
		value.Column{Name: "city", Type: value.Char(16)},
		value.Column{Name: "seq", Type: value.Int32()},
	)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := d.CreateTable(name, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, err := tab.Insert(value.Row{
			value.StringValue(fmt.Sprintf("city-%02d", i%64)),
			value.IntValue(int32(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func mustCodec(t testing.TB) compress.Codec {
	t.Helper()
	c, err := compress.Lookup("nullsuppression")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEpochInvalidation proves the O(1) invalidation contract end to end:
// a mutation bumps the table epoch, so the next estimate misses the cache
// and recomputes, while an untouched table keeps serving hits. No table
// content is read to decide either way.
func TestEpochInvalidation(t *testing.T) {
	d := db.New(0)
	hot := liveTable(t, d, "hot", 3000)
	cold := liveTable(t, d, "cold", 3000)
	e := New(Config{Workers: 2, CacheEntries: 64})
	defer e.Close()
	codec := mustCodec(t)
	ctx := context.Background()

	req := func(tab Table) Request {
		return Request{Table: tab, KeyColumns: []string{"city"}, Codec: codec, SampleRows: 200, Seed: 7}
	}
	if res := e.Estimate(ctx, req(hot)); res.Err != nil || res.CacheHit {
		t.Fatalf("first hot estimate: %+v", res)
	}
	if res := e.Estimate(ctx, req(cold)); res.Err != nil || res.CacheHit {
		t.Fatalf("first cold estimate: %+v", res)
	}
	if res := e.Estimate(ctx, req(hot)); res.Err != nil || !res.CacheHit {
		t.Fatalf("repeat hot estimate should hit: %+v", res)
	}

	// Mutate the hot table only.
	if _, err := hot.Insert(value.Row{value.StringValue("new-city"), value.IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if res := e.Estimate(ctx, req(hot)); res.Err != nil || res.CacheHit {
		t.Fatalf("post-mutation hot estimate must miss: %+v", res)
	}
	if res := e.Estimate(ctx, req(cold)); res.Err != nil || !res.CacheHit {
		t.Fatalf("untouched cold table must still hit: %+v", res)
	}
}

// TestMaintainedSampleFastPath checks that a live table's backing sample
// serves the draw (MaintainedHits) and that FreshSample opts out.
func TestMaintainedSampleFastPath(t *testing.T) {
	d := db.New(0) // default sample target 2048
	tab := liveTable(t, d, "live", 4000)
	e := New(Config{Workers: 2, CacheEntries: -1})
	defer e.Close()
	codec := mustCodec(t)
	ctx := context.Background()

	res := e.Estimate(ctx, Request{Table: tab, Codec: codec, SampleRows: 512, Seed: 1})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	st := e.Stats()
	if st.MaintainedHits != 1 || st.SamplesDrawn != 0 {
		t.Fatalf("maintained fast path not used: %+v", st)
	}

	res = e.Estimate(ctx, Request{Table: tab, Codec: codec, SampleRows: 512, Seed: 2, FreshSample: true})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if st := e.Stats(); st.SamplesDrawn != 1 {
		t.Fatalf("FreshSample did not force a draw: %+v", st)
	}

	// A request larger than the maintained reservoir falls back and is
	// counted as stale.
	res = e.Estimate(ctx, Request{Table: tab, Codec: codec, SampleRows: 3000, Seed: 3})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if st := e.Stats(); st.MaintainedStale != 1 || st.SamplesDrawn != 2 {
		t.Fatalf("oversized request did not fall back: %+v", st)
	}
	if res.Estimate.SampleRows != 3000 {
		t.Fatalf("fallback sample rows = %d", res.Estimate.SampleRows)
	}
}

// TestFreshSampleBypassesMaintainedCache is the regression test for
// FreshSample being answered from the cache: a maintained-sample result
// cached for the identical request must not satisfy a FreshSample
// request — fresh and maintained results are cached under separate keys.
func TestFreshSampleBypassesMaintainedCache(t *testing.T) {
	d := db.New(0)
	tab := liveTable(t, d, "freshcache", 4000)
	e := New(Config{Workers: 2, CacheEntries: 16})
	defer e.Close()
	codec := mustCodec(t)
	ctx := context.Background()

	req := Request{Table: tab, Codec: codec, SampleRows: 512, Seed: 1}
	if res := e.Estimate(ctx, req); res.Err != nil {
		t.Fatal(res.Err)
	}
	if st := e.Stats(); st.MaintainedHits != 1 {
		t.Fatalf("setup did not use the maintained sample: %+v", st)
	}

	req.FreshSample = true
	res := e.Estimate(ctx, req)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.CacheHit {
		t.Fatal("FreshSample was served the cached maintained-sample estimate")
	}
	if st := e.Stats(); st.SamplesDrawn != 1 {
		t.Fatalf("FreshSample did not draw against the table: %+v", st)
	}
	// The fresh result is itself cacheable — under its own key.
	if res := e.Estimate(ctx, req); res.Err != nil || !res.CacheHit {
		t.Fatalf("repeat FreshSample request should hit its own entry: %+v", res)
	}
}

// TestMaintainedSampleEstimateAccuracy sanity-checks that estimates off
// the maintained sample land near the fresh-draw estimate.
func TestMaintainedSampleEstimateAccuracy(t *testing.T) {
	d := db.New(0)
	tab := liveTable(t, d, "acc", 6000)
	e := New(Config{Workers: 2, CacheEntries: -1})
	defer e.Close()
	codec := mustCodec(t)
	ctx := context.Background()

	fast := e.Estimate(ctx, Request{Table: tab, Codec: codec, KeyColumns: []string{"city"}, SampleRows: 1000, Seed: 1})
	fresh := e.Estimate(ctx, Request{Table: tab, Codec: codec, KeyColumns: []string{"city"}, SampleRows: 1000, Seed: 1, FreshSample: true})
	if fast.Err != nil || fresh.Err != nil {
		t.Fatalf("errs: %v / %v", fast.Err, fresh.Err)
	}
	if diff := fast.Estimate.CF - fresh.Estimate.CF; diff > 0.05 || diff < -0.05 {
		t.Fatalf("maintained CF %.4f vs fresh CF %.4f differ by > 0.05",
			fast.Estimate.CF, fresh.Estimate.CF)
	}
}

// TestConcurrentInsertsAndBatches drives concurrent mutations and engine
// batch estimation on the same live catalog table — the -race guarantee
// of the versioned data plane: readers (sampling, maintained-sample
// snapshots, epoch reads) never tear against writers.
func TestConcurrentInsertsAndBatches(t *testing.T) {
	d := db.New(0)
	tab := liveTable(t, d, "churn", 2000)
	e := New(Config{Workers: 4, CacheEntries: 128})
	defer e.Close()
	codec := mustCodec(t)

	const (
		writers      = 2
		insertsEach  = 300
		estimators   = 4
		batchesEach  = 20
		perBatchReqs = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < insertsEach; i++ {
				_, err := tab.Insert(value.Row{
					value.StringValue(fmt.Sprintf("w%d-%03d", w, i%64)),
					value.IntValue(int32(i)),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for g := 0; g < estimators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batchesEach; b++ {
				reqs := make([]Request, perBatchReqs)
				for i := range reqs {
					reqs[i] = Request{
						Table:      tab,
						KeyColumns: []string{"city"},
						Codec:      codec,
						SampleRows: 100,
						Seed:       uint64(g*1000 + b),
					}
				}
				for i, res := range e.WhatIf(context.Background(), reqs) {
					if res.Err != nil {
						t.Errorf("estimator %d batch %d req %d: %v", g, b, i, res.Err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// After the dust settles the cache must converge again.
	res := e.Estimate(context.Background(), Request{Table: tab, KeyColumns: []string{"city"}, Codec: codec, SampleRows: 100, Seed: 99})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	res2 := e.Estimate(context.Background(), Request{Table: tab, KeyColumns: []string{"city"}, Codec: codec, SampleRows: 100, Seed: 99})
	if res2.Err != nil || !res2.CacheHit {
		t.Fatalf("quiesced table does not serve cache hits: %+v", res2)
	}
	if res2.Estimate.CF != res.Estimate.CF {
		t.Fatalf("cached CF %v != computed %v", res2.Estimate.CF, res.Estimate.CF)
	}
}

// BenchmarkCacheHitByTableSize measures a cache-hit estimate against live
// catalog tables of different sizes. With (instance id, epoch) keys the
// lookup reads zero rows, so the cost must be independent of n — the
// previous content-fingerprint key probed rows on every request and, on a
// freshly mutated heap table, paid an O(n) row-directory rebuild to do it.
func BenchmarkCacheHitByTableSize(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			d := db.New(0)
			tab := liveTable(b, d, fmt.Sprintf("bench-%d", n), n)
			e := New(Config{Workers: 2, CacheEntries: 64})
			defer e.Close()
			codec := mustCodec(b)
			req := Request{Table: tab, KeyColumns: []string{"city"}, Codec: codec, SampleRows: 500, Seed: 1}
			if res := e.Estimate(context.Background(), req); res.Err != nil {
				b.Fatal(res.Err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := e.Estimate(context.Background(), req)
				if res.Err != nil || !res.CacheHit {
					b.Fatalf("want cache hit, got %+v", res)
				}
			}
		})
	}
}
