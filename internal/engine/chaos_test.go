package engine

import (
	"context"
	"errors"
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"samplecf/internal/db"
	"samplecf/internal/faults"
	"samplecf/internal/stats"
	"samplecf/internal/value"
)

// The chaos suite (run by CI's chaos job via -run Chaos under -race)
// proves the fault-tolerance contract of docs/robustness.md: every
// registered injection point has error AND panic coverage, one poisoned
// shard degrades its request instead of the batch or the process, faults
// replay byte-identically, and the circuit breaker serves stale while a
// table is down. Schedules are process-global, so none of these tests may
// call t.Parallel.

// armChaos arms a schedule for the duration of one test.
func armChaos(t *testing.T, schedule string, seed uint64) {
	t.Helper()
	if err := faults.Arm(schedule, seed); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faults.Disarm)
}

// chaosEngine builds a small engine with fast retries so persistent-fault
// tests don't sit in backoff.
func chaosEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 100 * time.Microsecond
	}
	if cfg.RetryBackoffCap == 0 {
		cfg.RetryBackoffCap = time.Millisecond
	}
	e := New(cfg)
	t.Cleanup(e.Close)
	return e
}

// TestChaosEveryPointErrorAndPanic proves every registered injection
// point has both error and panic coverage on the serving path: a
// persistent fault at each point fails a scattered request with an error
// that identifies itself as injected — never a crashed process — and
// panics additionally land in the recovery ledger.
func TestChaosEveryPointErrorAndPanic(t *testing.T) {
	wantPoints := []string{"compress.encode", "engine.scatter", "heap.scan", "sampling.draw"}
	got := faults.Points()
	for _, p := range wantPoints {
		found := false
		for _, g := range got {
			if g == p {
				found = true
			}
		}
		if !found {
			t.Fatalf("injection point %q not registered (have %v)", p, got)
		}
	}
	for _, point := range wantPoints {
		for _, kind := range []string{"err", "panic"} {
			t.Run(point+"/"+kind, func(t *testing.T) {
				armChaos(t, point+":"+kind+"@1+", 1)
				// Snapshots off so row reads go through the heap scan
				// path where heap.scan is consulted.
				d := db.New(0, db.WithSnapshots(false))
				st := liveShardedTable(t, d, "t", 2, 500)
				e := chaosEngine(t, Config{Workers: 2})
				res := e.Estimate(context.Background(), Request{
					Table: st, Codec: mustCodec(t), KeyColumns: []string{"city"},
					SampleRows: 100, Seed: 7, FreshSample: true,
				})
				if res.Err == nil {
					t.Fatalf("persistent %s fault at %s produced no error", kind, point)
				}
				if !errors.Is(res.Err, faults.ErrInjected) {
					t.Errorf("error does not match faults.ErrInjected: %v", res.Err)
				}
				if kind == "panic" {
					// The panic is converted at whichever recovery trap
					// is closest (engine fan-outs count PanicsRecovered;
					// the page-encode workgroup recovers in place) — what
					// matters is that it surfaced as a typed error, not a
					// crashed process.
					var pe *faults.PanicError
					if !errors.As(res.Err, &pe) {
						t.Errorf("panic not surfaced as *faults.PanicError: %v", res.Err)
					} else if pe.Point != point || len(pe.Stack) == 0 {
						t.Errorf("PanicError point %q stack %d bytes, want %q with stack", pe.Point, len(pe.Stack), point)
					}
				}
			})
		}
	}
}

// TestChaosBatchIsolation proves a poisoned candidate fails alone: in one
// WhatIf batch, the candidate over the faulted sharded table errors while
// its batch-mate over a healthy plain table answers normally, and the
// panic is recovered rather than killing the pool worker.
func TestChaosBatchIsolation(t *testing.T) {
	armChaos(t, "engine.scatter:panic@1+", 1)
	d := db.New(0)
	st := liveShardedTable(t, d, "sharded", 2, 500)
	plain := liveTable(t, d, "plain", 1000)
	e := chaosEngine(t, Config{Workers: 2})
	codec := mustCodec(t)
	results := e.WhatIf(context.Background(), []Request{
		{Table: st, Codec: codec, KeyColumns: []string{"city"}, SampleRows: 100, Seed: 1, FreshSample: true},
		{Table: plain, Codec: codec, KeyColumns: []string{"city"}, SampleRows: 100, Seed: 2, FreshSample: true},
	})
	if results[0].Err == nil || !errors.Is(results[0].Err, faults.ErrInjected) {
		t.Errorf("poisoned candidate error = %v, want injected", results[0].Err)
	}
	if results[1].Err != nil {
		t.Errorf("healthy batch-mate failed: %v", results[1].Err)
	}
	if results[1].Estimate.CF <= 0 || results[1].Estimate.CF > 1 {
		t.Errorf("healthy batch-mate CF = %v", results[1].Estimate.CF)
	}
}

// TestChaosTransientFaultHealsByRetry proves the retry policy absorbs a
// transient shard failure invisibly: a fault firing only on the first hit
// is healed by the retry (fresh private sample group), the request
// succeeds undegraded, and the retry ledger shows the work.
func TestChaosTransientFaultHealsByRetry(t *testing.T) {
	armChaos(t, "engine.scatter[1]:err@1", 1)
	d := db.New(0)
	st := liveShardedTable(t, d, "t", 4, 500)
	e := chaosEngine(t, Config{Workers: 2})
	res := e.Estimate(context.Background(), Request{
		Table: st, Codec: mustCodec(t), KeyColumns: []string{"city"},
		SampleRows: 200, Seed: 3, FreshSample: true,
	})
	if res.Err != nil {
		t.Fatalf("transient fault was not healed: %v", res.Err)
	}
	if res.Degraded {
		t.Error("healed request reported Degraded")
	}
	if got := e.Stats().ShardRetries; got == 0 {
		t.Error("retry ledger empty despite a healed transient fault")
	}
}

// TestChaosDegradedScatter is the acceptance scenario: one of four shards
// fails persistently. Without AllowPartial the request fails with every
// shard's error joined, naming the shard. With AllowPartial the survivors
// merge into a Degraded result whose widened interval is pinned to the
// renormalized stratified formula, and the degraded answer is never
// served from cache.
func TestChaosDegradedScatter(t *testing.T) {
	armChaos(t, "engine.scatter[1]:err@1+", 1)
	d := db.New(0)
	st := liveShardedTable(t, d, "t", 4, 1000)
	e := chaosEngine(t, Config{Workers: 2, CacheEntries: 64})
	codec := mustCodec(t)
	req := Request{Table: st, Codec: codec, KeyColumns: []string{"city"},
		SampleRows: 400, Seed: 9, FreshSample: true}

	// Strict request: joined error naming the failed shard.
	strict := e.Estimate(context.Background(), req)
	if strict.Err == nil {
		t.Fatal("strict request over a failing shard succeeded")
	}
	if !strings.Contains(strict.Err.Error(), "shard 1") {
		t.Errorf("joined error does not name shard 1: %v", strict.Err)
	}
	if !errors.Is(strict.Err, faults.ErrInjected) {
		t.Errorf("joined error lost the injected sentinel: %v", strict.Err)
	}

	// Partial request: survivors merge, result degrades.
	req.AllowPartial = true
	res := e.Estimate(context.Background(), req)
	if res.Err != nil {
		t.Fatalf("AllowPartial request failed outright: %v", res.Err)
	}
	if !res.Degraded {
		t.Fatal("partial result not marked Degraded")
	}
	if len(res.ShardsFailed) != 1 || res.ShardsFailed[0] != 1 {
		t.Errorf("ShardsFailed = %v, want [1]", res.ShardsFailed)
	}
	if res.Estimate.CF <= 0 || res.Estimate.CF > 1 {
		t.Errorf("degraded CF %v outside (0,1]", res.Estimate.CF)
	}
	// The widened interval is z·StratifiedSD over the three survivors:
	// equal shards, so w_h = 1/4 each and r_h = 100 rows each, SD_h
	// bounded by Theorem 1's 1/(2√r_h). StratifiedSD divides by Σw =
	// 3/4 — the renormalization — so the expectation is fully explicit.
	w, sd := 0.25, 1/(2*math.Sqrt(100))
	want := zFor(0) * math.Sqrt(3*w*w*sd*sd) / (3 * w)
	if math.Abs(res.AchievedError-want) > 1e-12 {
		t.Errorf("degraded half-width %v, want %v", res.AchievedError, want)
	}
	if e.Stats().DegradedResults != 1 {
		t.Errorf("DegradedResults = %d, want 1", e.Stats().DegradedResults)
	}

	// A degraded answer is never cached: the repeat recomputes (and
	// degrades again, since the fault persists) rather than hitting.
	res2 := e.Estimate(context.Background(), req)
	if res2.CacheHit {
		t.Error("degraded result was served from cache")
	}
	if !res2.Degraded {
		t.Error("repeat over the persistent fault not Degraded")
	}
}

// TestChaosDegradedHalfWidthFormula unit-pins degradedHalfWidth against
// the stratified algebra it claims to implement, including the
// renormalization under unequal surviving weights.
func TestChaosDegradedHalfWidthFormula(t *testing.T) {
	survivors := []*shardWork{
		{weight: 0.5, rows: 400},
		{weight: 0.2, rows: 100},
	}
	got := degradedHalfWidth(survivors)
	want := zFor(0) * stats.StratifiedSD([]stats.Stratum{
		{Weight: 0.5, SD: 1 / (2 * math.Sqrt(400))},
		{Weight: 0.2, SD: 1 / (2 * math.Sqrt(100))},
	})
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("degradedHalfWidth = %v, want %v", got, want)
	}
	// The explicit renormalized form: √(Σ w²σ²)/Σw.
	explicit := zFor(0) * math.Sqrt(0.25*1.0/1600+0.04*1.0/400) / 0.7
	if math.Abs(got-explicit) > 1e-15 {
		t.Errorf("degradedHalfWidth = %v, explicit formula says %v", got, explicit)
	}
	// Drawn-rows override: when the shard's estimate records how many
	// rows it actually sampled, that count bounds the SD, not the plan.
	survivors[1].est.SampleRows = 2500
	boosted := degradedHalfWidth(survivors)
	if boosted >= got {
		t.Errorf("more sampled rows widened the interval: %v >= %v", boosted, got)
	}
}

// TestChaosAdaptiveDegraded proves the sharded adaptive loop degrades the
// same way: a persistently failing arm drops out under AllowPartial, the
// surviving arms converge with renormalized weights, the failed shard is
// reported, and the degraded interval never enters the precision cache.
func TestChaosAdaptiveDegraded(t *testing.T) {
	armChaos(t, "engine.scatter[1]:err@1+", 1)
	d := db.New(0)
	st := liveShardedTable(t, d, "t", 3, 1000)
	e := chaosEngine(t, Config{Workers: 2})
	req := Request{Table: st, Codec: mustCodec(t), KeyColumns: []string{"city"},
		Seed: 11, TargetError: 0.05}

	strict := e.Estimate(context.Background(), req)
	if strict.Err == nil || !strings.Contains(strict.Err.Error(), "shard 1") {
		t.Fatalf("strict adaptive error = %v, want joined error naming shard 1", strict.Err)
	}

	req.AllowPartial = true
	res := e.Estimate(context.Background(), req)
	if res.Err != nil {
		t.Fatalf("partial adaptive failed: %v", res.Err)
	}
	if !res.Degraded || len(res.ShardsFailed) != 1 || res.ShardsFailed[0] != 1 {
		t.Fatalf("Degraded=%v ShardsFailed=%v, want degraded [1]", res.Degraded, res.ShardsFailed)
	}
	if res.AchievedError <= 0 {
		t.Errorf("degraded adaptive reports no interval: %v", res.AchievedError)
	}

	// Never cached: the repeat recomputes instead of a precision hit.
	res2 := e.Estimate(context.Background(), req)
	if res2.CacheHit {
		t.Error("degraded adaptive result served from the precision cache")
	}
	if e.Stats().PrecisionHits != 0 {
		t.Errorf("precision hits = %d, want 0", e.Stats().PrecisionHits)
	}
}

// TestChaosReplayDeterminism proves the injection registry's replay
// contract: the same schedule, seed, and workload fire the same faults —
// point, argument, hit, and kind all byte-identical — across two
// independent runs, even with shard work racing on goroutines (arg
// filters keep per-shard hit counters private).
func TestChaosReplayDeterminism(t *testing.T) {
	const schedule = "engine.scatter[1]:err@2,4;engine.scatter[0]:panic@3;sampling.draw:err@5"
	run := func() []faults.Firing {
		if err := faults.Arm(schedule, 42); err != nil {
			t.Fatal(err)
		}
		defer faults.Disarm()
		d := db.New(0)
		st := liveShardedTable(t, d, "t", 2, 500)
		e := chaosEngine(t, Config{Workers: 2})
		for seed := uint64(1); seed <= 4; seed++ {
			e.Estimate(context.Background(), Request{
				Table: st, Codec: mustCodec(t), KeyColumns: []string{"city"},
				SampleRows: 100, Seed: seed, FreshSample: true, AllowPartial: true,
			})
		}
		fired := faults.Fired()
		sort.Slice(fired, func(i, j int) bool {
			a, b := fired[i], fired[j]
			if a.Point != b.Point {
				return a.Point < b.Point
			}
			if a.Arg != b.Arg {
				return a.Arg < b.Arg
			}
			if a.Hit != b.Hit {
				return a.Hit < b.Hit
			}
			return a.Kind < b.Kind
		})
		return fired
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("schedule fired nothing — workload no longer reaches the points")
	}
	if len(first) != len(second) {
		t.Fatalf("replay fired %d faults, first run fired %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("firing %d diverged: %+v vs %+v", i, first[i], second[i])
		}
	}
}

// TestChaosBreakerLifecycle walks the circuit breaker through its whole
// arc: consecutive failures trip it open, an open breaker serves the last
// good estimate stale (or ErrBreakerOpen when none exists), and after the
// cooldown a probe revalidates and recovery resumes fresh computation.
func TestChaosBreakerLifecycle(t *testing.T) {
	d := db.New(0)
	tb := liveTable(t, d, "t", 2000)
	e := chaosEngine(t, Config{Workers: 2, CacheEntries: 64,
		BreakerThreshold: 2, BreakerCooldown: 20 * time.Millisecond})
	codec := mustCodec(t)
	// FreshSample so every attempt draws through sampling.draw rather
	// than the maintained-sample route the fault cannot reach.
	req := Request{Table: tb, Codec: codec, KeyColumns: []string{"city"},
		SampleRows: 200, Seed: 5, FreshSample: true}
	ctx := context.Background()

	// Healthy first pass seeds the stale cache with a last good estimate.
	good := e.Estimate(ctx, req)
	if good.Err != nil {
		t.Fatal(good.Err)
	}

	armChaos(t, "sampling.draw:err@1+", 1)
	bump := func() { // epoch bump so each attempt misses the result cache
		if _, err := tb.Insert(value.Row{value.StringValue("x"), value.IntValue(0)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		bump()
		if r := e.Estimate(ctx, req); r.Err == nil {
			t.Fatalf("failure %d unexpectedly succeeded", i)
		}
	}
	if e.Stats().BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1 after %d consecutive failures", e.Stats().BreakerOpens, 2)
	}

	// Open breaker, known identity: the last good estimate serves stale.
	bump()
	stale := e.Estimate(ctx, req)
	if stale.Err != nil {
		t.Fatalf("open breaker with a stale answer errored: %v", stale.Err)
	}
	if !stale.Stale {
		t.Fatal("result during open breaker not marked Stale")
	}
	if stale.Estimate.CF != good.Estimate.CF {
		t.Errorf("stale CF %v != last good CF %v", stale.Estimate.CF, good.Estimate.CF)
	}
	if e.Stats().StaleServed == 0 {
		t.Error("StaleServed ledger empty")
	}

	// Open breaker, unknown identity: fail fast with ErrBreakerOpen
	// (the breaker is per (table, codec), the stale cache per request).
	other := req
	other.Seed = 6
	if r := e.Estimate(ctx, other); !errors.Is(r.Err, ErrBreakerOpen) {
		t.Errorf("unknown identity during open breaker: %v, want ErrBreakerOpen", r.Err)
	}

	// Recovery: the fault clears, the cooldown lapses, a probe
	// revalidates in the background, and fresh results resume.
	faults.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := e.Estimate(ctx, req)
		if r.Err == nil && !r.Stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: %+v", r)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosInvalidRequestSentinel pins the validation sentinel: every
// rejection matches ErrInvalidRequest (cfserve's 400 mapping) while an
// injected computational failure does not.
func TestChaosInvalidRequestSentinel(t *testing.T) {
	d := db.New(0)
	tb := liveTable(t, d, "t", 100)
	e := chaosEngine(t, Config{Workers: 1})
	res := e.Estimate(context.Background(), Request{Table: tb, Codec: mustCodec(t),
		KeyColumns: []string{"city"}, Confidence: 0.95})
	if !errors.Is(res.Err, ErrInvalidRequest) {
		t.Errorf("validation failure %v does not match ErrInvalidRequest", res.Err)
	}

	armChaos(t, "sampling.draw:err@1+", 1)
	res = e.Estimate(context.Background(), Request{Table: tb, Codec: mustCodec(t),
		KeyColumns: []string{"city"}, SampleRows: 50, Seed: 1, FreshSample: true})
	if res.Err == nil || errors.Is(res.Err, ErrInvalidRequest) {
		t.Errorf("injected failure %v must not match ErrInvalidRequest", res.Err)
	}
}
