package engine

import (
	"context"
	"fmt"
	"testing"

	"samplecf/internal/db"
	"samplecf/internal/value"
)

// BenchmarkShardedWhatIf measures a scattered fixed-r estimate over the
// same 80k rows partitioned 1/2/4/8 ways, cache disabled and seeds varied
// so every iteration honestly re-draws, re-sorts, and re-compresses its
// per-shard samples before merging. The per-shard work shrinks with the
// fan-out (r/shards rows each) while the scatter adds coordination; on a
// multi-core box the shards also overlap. (This box runs GOMAXPROCS=1, so
// the recorded numbers show scatter overhead without parallel speedup.)
func BenchmarkShardedWhatIf(b *testing.B) {
	const totalRows = 80_000
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			d := db.New(0)
			st := liveShardedTable(b, d, fmt.Sprintf("b%d", shards), shards, totalRows/shards)
			e := New(Config{Workers: 4, CacheEntries: -1})
			defer e.Close()
			codec := mustCodec(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := e.Estimate(context.Background(), Request{
					Table: st, KeyColumns: []string{"city"}, Codec: codec,
					SampleRows: 4000, Seed: uint64(i + 1), FreshSample: true,
				})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

// BenchmarkHotShardCacheHit is the economics the per-shard cache exists
// for: each iteration mutates one hot shard and repeats a fixed request.
// Unsharded, the single epoch key invalidates everything and the engine
// redraws the full sample; sharded, the three untouched shards keep
// serving their cached estimates and only the hot shard's quarter of the
// sample is re-drawn. The gap is the cost of churn localized vs. global.
func BenchmarkHotShardCacheHit(b *testing.B) {
	const shards, perShard = 4, 25_000
	hotRow := value.Row{value.StringValue("hot"), value.IntValue(0)}
	req := func(t Table) Request {
		return Request{Table: t, KeyColumns: []string{"city"}, Codec: mustCodec(b),
			SampleRows: 2000, Seed: 5, FreshSample: true}
	}

	b.Run("unsharded", func(b *testing.B) {
		d := db.New(0)
		tab := liveTable(b, d, "u", shards*perShard)
		e := New(Config{Workers: 4, CacheEntries: 64})
		defer e.Close()
		r := req(tab)
		if res := e.Estimate(context.Background(), r); res.Err != nil {
			b.Fatal(res.Err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tab.Insert(hotRow); err != nil {
				b.Fatal(err)
			}
			res := e.Estimate(context.Background(), r)
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if res.CacheHit {
				b.Fatal("mutated table served a stale cache hit")
			}
		}
	})
	b.Run("sharded-4", func(b *testing.B) {
		d := db.New(0)
		st := liveShardedTable(b, d, "s", shards, perShard)
		e := New(Config{Workers: 4, CacheEntries: 64})
		defer e.Close()
		r := req(st)
		if res := e.Estimate(context.Background(), r); res.Err != nil {
			b.Fatal(res.Err)
		}
		before := e.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Insert(hotRow); err != nil {
				b.Fatal(err)
			}
			res := e.Estimate(context.Background(), r)
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
		b.StopTimer()
		after := e.Stats()
		// The acceptance property: every iteration re-drew exactly one
		// shard while the other three served from cache.
		if drawn := after.SamplesDrawn - before.SamplesDrawn; drawn != uint64(b.N) {
			b.Fatalf("drew %d samples over %d iterations, want one per iteration", drawn, b.N)
		}
		if hits := after.ShardCacheHits - before.ShardCacheHits; hits != uint64(3*b.N) {
			b.Fatalf("untouched shards served %d hits over %d iterations, want 3 per iteration", hits, b.N)
		}
	})
}
