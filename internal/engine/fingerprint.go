package engine

import (
	"encoding/binary"
	"hash/fnv"

	"samplecf/internal/value"
)

// maxProbeRows bounds the number of rows hashed into a fingerprint.
const maxProbeRows = 16

// fingerprint summarizes a table's identity for cache keying: name, schema,
// cardinality, and a deterministic probe of up to maxProbeRows rows spread
// across the table. Two tables with the same fingerprint are treated as the
// same estimation source; a changed row count or changed probed content
// invalidates prior cache entries naturally by changing the key. Probing is
// O(1) relative to table size, so it runs on every request rather than
// trusting pointer identity across mutations.
func fingerprint(t Table) (uint64, error) {
	h := fnv.New64a()
	h.Write([]byte(t.Name()))
	h.Write([]byte{0})
	for _, c := range t.Schema().Columns() {
		h.Write([]byte(c.Name))
		h.Write([]byte{0})
		h.Write([]byte(c.Type.String()))
		h.Write([]byte{0})
	}
	n := t.NumRows()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])

	probes := int64(maxProbeRows)
	if n < probes {
		probes = n
	}
	for i := int64(0); i < probes; i++ {
		// Spread probes across the table: first, last, and evenly between.
		pos := i * (n - 1) / max64(probes-1, 1)
		row, err := t.Row(pos)
		if err != nil {
			return 0, err
		}
		hashRow(h, row)
	}
	return h.Sum64(), nil
}

// hashRow feeds one row's payloads into h with column separators.
func hashRow(h interface{ Write([]byte) (int, error) }, row value.Row) {
	for _, payload := range row {
		h.Write(payload)
		h.Write([]byte{0xff})
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
