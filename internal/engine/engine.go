// Package engine is the concurrent what-if estimation engine: the layer
// that turns one-shot SampleCF runs into a service-grade primitive. The
// paper's point is that sampling makes compressed-index size estimates
// cheap enough for an automated physical design tool to call *many times*;
// the realistic call pattern (Kimura et al., "Compression Aware Physical
// Database Design") is a batch of what-if questions over many
// (index-column-set, codec) candidates of the same table. The engine
// exploits that shape three ways:
//
//   - shared-sample batching — one uniform sample is drawn per
//     (table, fraction|rows, seed) and reused by every candidate in the
//     batch, and the encoded, key-sorted index build (core.PreparedIndex)
//     is shared by every codec of the same column set;
//   - a worker pool — candidates evaluate concurrently across a bounded
//     set of goroutines shared by all in-flight batches;
//   - an LRU result cache keyed by (table instance id, version epoch, key
//     columns, codec, fraction|rows, seed, page size) with
//     hit/miss/eviction counters, so repeated what-if traffic (the
//     advisor's enumeration loops, cfserve's HTTP clients) skips
//     re-estimation entirely. The epoch comes from the catalog contract:
//     mutations bump it, so stale entries miss by key inequality — an O(1)
//     invalidation with no row access, replacing the previous per-request
//     content fingerprint that probed table rows;
//   - a maintained-sample fast path — tables that keep a backing sample
//     (catalog.SampleProvider, e.g. live db tables) serve estimation
//     samples from memory when the snapshot matches the request's epoch,
//     skipping the O(r) storage draw entirely;
//   - cross-request coalescing — concurrent identical cache misses from
//     different batches collapse into one in-flight computation whose
//     result fans out to every waiter (flight.go), with per-waiter
//     cancellation that never aborts the shared work while a waiter
//     remains;
//   - snapshot-pinned draws — fresh draws against tables that publish
//     copy-on-write snapshots (catalog.SnapshotProvider) read a pinned
//     immutable view, so sampling a live table holds no lock and never
//     stalls its writers.
//
// Batches take a context: items not yet started when the deadline expires
// fail with the context error, while every other item completes normally —
// errors are isolated per candidate, never batch-fatal.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"samplecf/internal/catalog"
	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/faults"
	"samplecf/internal/obs"
	"samplecf/internal/page"
	"samplecf/internal/rng"
	"samplecf/internal/sampling"
	"samplecf/internal/stats"
	"samplecf/internal/value"
)

// Table is the engine's view of an estimation source: the versioned
// catalog abstraction. workload.Table, workload.VirtualTable, and live
// db.Table all satisfy it.
type Table = catalog.Table

// Config tunes an Engine.
type Config struct {
	// Workers is the goroutine pool size (default GOMAXPROCS).
	Workers int
	// CacheEntries bounds the LRU result cache (default 1024; negative
	// disables caching).
	CacheEntries int
	// PageSize is the default index page size for requests that leave
	// theirs zero (default page.DefaultSize).
	PageSize int
	// Metrics is the registry the engine's instruments register on. Leave
	// nil for a private registry: an engine's counters are per-engine
	// state, and sharing a process registry across engines would merge
	// their ledgers. cfserve passes its own registry so GET /metrics
	// serves the engine's instruments.
	Metrics *obs.Registry

	// RetryMax caps how many times a failed shard of a scattered request
	// is retried before the request gives up on it (default 2; negative
	// disables retries).
	RetryMax int
	// RetryBackoff is the first retry's backoff (default 1ms); it doubles
	// per attempt up to RetryBackoffCap (default 50ms). The sleep is
	// jittered over [d/2, d] and aborts when the request's context
	// expires.
	RetryBackoff    time.Duration
	RetryBackoffCap time.Duration

	// BreakerThreshold is the consecutive full-failure count that opens a
	// (table instance, codec) circuit breaker (default 5; negative
	// disables the breaker and the stale-while-revalidate path with it).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker denies computation
	// before admitting one probe (default 1s). While open, requests are
	// served the last good estimate marked Stale when one exists, and
	// ErrBreakerOpen otherwise.
	BreakerCooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 1024
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	}
	if c.PageSize == 0 {
		c.PageSize = page.DefaultSize
	}
	switch {
	case c.RetryMax == 0:
		c.RetryMax = 2
	case c.RetryMax < 0:
		c.RetryMax = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.RetryBackoffCap == 0 {
		c.RetryBackoffCap = 50 * time.Millisecond
	}
	switch {
	case c.BreakerThreshold == 0:
		c.BreakerThreshold = 5
	case c.BreakerThreshold < 0:
		c.BreakerThreshold = 0
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = time.Second
	}
	return c
}

// Request is one what-if question: how big would the index on
// Table(KeyColumns) be under Codec, estimated from a sample of Fraction
// (or exactly SampleRows rows) drawn with Seed?
type Request struct {
	Table Table
	// KeyColumns is the index column sequence (empty = all columns).
	KeyColumns []string
	// Codec is required; sizing uncompressed candidates needs no estimator.
	Codec compress.Codec
	// Fraction is the sampling fraction f; ignored when SampleRows > 0.
	Fraction float64
	// SampleRows fixes the sample size r directly.
	SampleRows int64
	// Seed fixes the sample, making results reproducible and cacheable.
	Seed uint64
	// PageSize overrides the engine default for this request.
	PageSize int
	// FreshSample bypasses the maintained-sample fast path: the estimate
	// is computed from a direct draw against the table even when it
	// offers a maintained sample (catalog.SampleProvider). Fresh results
	// are cached separately from maintained-sample results, so a fresh
	// request is never answered with a maintained-sample estimate.
	FreshSample bool

	// Strata switches the request to stratified sampling: the key domain
	// splits into up to Strata contiguous ranges (boundaries from an
	// existing index's separator keys, the maintained reservoir's observed
	// keys, or a fixed-seed pilot — in that order), each range sampled by
	// its own stream, composed by stratified mean and variance. 0 disables;
	// 1 is the degenerate single stratum. Stratified draws are always fresh
	// (the maintained sample serves only boundary resolution), and a
	// partitioned table stratifies within each shard.
	Strata int

	// TargetError switches the request to precision-targeted adaptive
	// estimation: instead of a fixed sample size, the engine grows the
	// sample in resumable rounds until the estimate's confidence interval
	// has half-width ≤ TargetError (absolute, on CF) or the row budget is
	// exhausted. Fraction/SampleRows, when set, seed the first round's
	// size. Adaptive results are cached by precision dominance — an entry
	// achieving ±1% answers a later ±5% request for the same (instance,
	// epoch, columns, codec) without resampling — rather than by exact
	// (fraction, rows, seed) match.
	TargetError float64
	// Confidence is the adaptive CI's two-sided confidence level
	// (default 0.95). Requires TargetError.
	Confidence float64
	// MaxSampleRows caps the adaptive row budget (default: the table
	// size). When the target is unreachable within the budget the result
	// reports Converged=false with the honest achieved error. Requires
	// TargetError.
	MaxSampleRows int64

	// AllowPartial lets a request against a partitioned table succeed
	// when some shards fail persistently (after retries): the surviving
	// shards merge under renormalized stratified weights and the result
	// reports Degraded, the failed shard indices, and a widened
	// confidence interval. Without it, any shard failure fails the
	// request with every shard's error joined.
	AllowPartial bool

	// bypassBreaker marks the engine's own background revalidation
	// requests, which must compute even while the breaker is open.
	bypassBreaker bool
}

// Result is one candidate's outcome. Err is per-candidate: a failed or
// deadline-expired item never poisons its batch.
type Result struct {
	Estimate core.Estimate
	Err      error
	// CacheHit reports the estimate came from the LRU cache (fixed-r
	// requests) or the precision cache by dominance (adaptive requests).
	CacheHit bool
	// SharedSample reports the estimate reused a sample drawn for another
	// candidate in the same batch.
	SharedSample bool
	// Coalesced reports the estimate was computed by a concurrent identical
	// request (possibly from another batch) and fanned out to this one.
	Coalesced bool

	// Adaptive-request outcome (zero for fixed-r requests): AchievedError
	// is the final CI half-width at the requested confidence, Rounds the
	// number of estimate→extend rounds run, and Converged whether the
	// target was met within the row budget. Degraded results repurpose
	// AchievedError for the widened interval (see Degraded).
	AchievedError float64
	Rounds        int
	Converged     bool

	// Degraded reports a partial scatter-gather (Request.AllowPartial):
	// the shards in ShardsFailed failed persistently and the estimate
	// merges only the survivors under renormalized stratified weights,
	// with AchievedError carrying the widened 95% half-width. Degraded
	// results are never cached — the next request retries the shards.
	Degraded     bool
	ShardsFailed []int

	// Stale reports the estimate is the last good result for this
	// request's identity, served because the (table, codec) circuit
	// breaker is open; a background revalidation may be in flight.
	Stale bool
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Hits and Misses count result-cache lookups; Evictions counts LRU
	// displacements.
	Hits, Misses, Evictions uint64
	// SamplesDrawn counts physical sample draws; SamplesShared counts
	// candidates that reused a batch-mate's sample.
	SamplesDrawn, SamplesShared uint64
	// MaintainedHits counts sample draws served from a table's maintained
	// sample; MaintainedStale counts fallbacks to a fresh draw because the
	// maintained snapshot was missing, undersized, or at a different
	// epoch than the request.
	MaintainedHits, MaintainedStale uint64
	// IndexesPrepared counts encode+sort builds; Evaluated counts candidate
	// estimates computed (cache hits excluded).
	IndexesPrepared, Evaluated uint64
	// PrecisionHits counts adaptive requests answered from the precision
	// cache by dominance (a tighter cached interval satisfied the ask);
	// each is also counted in Hits, so Hits/Misses stays the overall
	// cache hit ledger across fixed and adaptive traffic.
	PrecisionHits uint64
	// AdaptiveRounds and AdaptiveRows total the estimate→extend rounds
	// run and the rows drawn by adaptive requests (cache hits excluded).
	AdaptiveRounds, AdaptiveRows uint64
	// PrepareNanos totals wall time spent in the prepare stage (encode +
	// radix sort + profile, including adaptive extensions); SortRows totals
	// the rows those builds sorted. Together they expose the per-row cost
	// of the sort subsystem: PrepareNanos/SortRows is the live ns/row.
	PrepareNanos, SortRows uint64
	// ShardScatters counts requests scattered across a partitioned table's
	// shards; ShardCacheHits/ShardCacheMisses are the per-shard result-cache
	// ledger inside those scatters (a fully-hit scatter is also one Hits).
	ShardScatters, ShardCacheHits, ShardCacheMisses uint64
	// StratifiedEstimates counts stratified estimates computed (fixed and
	// adaptive; cache hits excluded); StrataDirBuilds counts strata-directory
	// builds — the O(n) stratify scans the directory cache did not absorb.
	StratifiedEstimates, StrataDirBuilds uint64
	// CoalescedWaits counts results served by waiting on a concurrent
	// identical request's in-flight computation (flight.go) instead of
	// computing — the cross-request sharing the per-batch groups cannot see.
	CoalescedWaits uint64
	// PanicsRecovered counts panics converted to per-item or per-shard
	// errors by the engine's isolation traps; ShardRetries counts failed
	// shard work units re-run with backoff; DegradedResults counts
	// partial scatter-gathers served under Request.AllowPartial;
	// StaleServed counts results served from the last-good-estimate cache
	// while a breaker was open; BreakerOpens counts closed→open breaker
	// transitions.
	PanicsRecovered, ShardRetries, DegradedResults uint64
	StaleServed, BreakerOpens                      uint64
	// CacheEntries is the current LRU size; PrecisionEntries the current
	// precision-cache size.
	CacheEntries     int
	PrecisionEntries int
}

// Engine owns the worker pool and result cache. Create with New, release
// with Close. All methods are safe for concurrent use.
type Engine struct {
	cfg        Config
	cache      *lruCache
	precision  *precisionCache
	strataDirs *strataCache
	stale      *staleCache
	flights    flightGroup
	registry   *obs.Registry

	brMu     sync.Mutex
	breakers map[breakerKey]*breaker

	jobs chan func()
	quit chan struct{}
	wg   sync.WaitGroup
	// bg tracks background revalidation goroutines (spawnRefresh); Close
	// waits for them after the pool drains.
	bg sync.WaitGroup

	closeOnce sync.Once

	// metrics is embedded so counter sites read as e.hits.Add(1): every
	// ledger the engine keeps lives on the obs registry, and Stats() is a
	// read-back view of the same instruments.
	metrics
}

// New starts an engine with cfg's worker pool.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		cfg:        cfg,
		cache:      newLRUCache(cfg.CacheEntries),
		precision:  newPrecisionCache(cfg.CacheEntries),
		strataDirs: newStrataCache(cfg.CacheEntries),
		stale:      newStaleCache(cfg.CacheEntries),
		breakers:   make(map[breakerKey]*breaker),
		registry:   reg,
		jobs:       make(chan func()),
		quit:       make(chan struct{}),
		metrics:    newMetrics(reg),
	}
	reg.GaugeFunc(MetricCacheEntries, "Entries resident in the LRU result cache.",
		func() int64 { return int64(e.cache.Len()) })
	reg.GaugeFunc(MetricPrecisionEntries, "Entries resident in the precision dominance cache.",
		func() int64 { return int64(e.precision.Len()) })
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer e.wg.Done()
			// jobs is unbuffered, so a send only completes when paired with
			// a receive here — an accepted job always runs, and the channel
			// is never closed (senders select on quit instead).
			for {
				select {
				case job := <-e.jobs:
					job()
				case <-e.quit:
					return
				}
			}
		}()
	}
	return e
}

// Close stops the worker pool after in-flight work drains, then waits
// for any background revalidations. Batches submitted after Close fail
// with an error result per item.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
	e.wg.Wait()
	e.bg.Wait()
}

// Stats snapshots the counters — a read-back view of the same obs
// instruments GET /metrics exposes, kept for the /stats JSON contract and
// in-process callers.
func (e *Engine) Stats() Stats {
	return Stats{
		Hits:                e.hits.Value(),
		Misses:              e.misses.Value(),
		Evictions:           e.evictions.Value(),
		SamplesDrawn:        e.samplesDrawn.Value(),
		SamplesShared:       e.samplesShared.Value(),
		MaintainedHits:      e.maintainedHits.Value(),
		MaintainedStale:     e.maintainedStale.Value(),
		IndexesPrepared:     e.prepared.Value(),
		Evaluated:           e.evaluated.Value(),
		PrecisionHits:       e.precisionHits.Value(),
		AdaptiveRounds:      e.adaptiveRounds.Value(),
		AdaptiveRows:        e.adaptiveRows.Value(),
		PrepareNanos:        e.prepareNanos.Value(),
		SortRows:            e.sortRows.Value(),
		ShardScatters:       e.shardScatters.Value(),
		ShardCacheHits:      e.shardHits.Value(),
		ShardCacheMisses:    e.shardMisses.Value(),
		StratifiedEstimates: e.stratified.Value(),
		StrataDirBuilds:     e.strataDirBuilds.Value(),
		CoalescedWaits:      e.coalescedWaits.Value(),
		PanicsRecovered:     e.panicsRecovered.Value(),
		ShardRetries:        e.shardRetries.Value(),
		DegradedResults:     e.degradedResults.Value(),
		StaleServed:         e.staleServed.Value(),
		BreakerOpens:        e.breakerOpens.Value(),
		CacheEntries:        e.cache.Len(),
		PrecisionEntries:    e.precision.Len(),
	}
}

// Registry returns the obs registry the engine's instruments live on (the
// one passed via Config.Metrics, or the engine's private registry).
func (e *Engine) Registry() *obs.Registry { return e.registry }

// Estimate answers a single what-if question through the engine (cache,
// pool, and all); it is WhatIf with a one-element batch.
func (e *Engine) Estimate(ctx context.Context, req Request) Result {
	return e.WhatIf(ctx, []Request{req})[0]
}

// sampleGroup shares one drawn sample among every batch item with the same
// (table instance, epoch, sample size, seed). The sample is arena-encoded
// at draw time (records + memcomparable keys in two contiguous buffers);
// prep groups project their key columns straight out of it, so no
// []value.Row intermediate exists on either the fresh or the maintained
// route.
type sampleGroup struct {
	once    sync.Once
	table   Table
	r       int64
	seed    uint64
	epoch   uint64
	fresh   bool // at least one member demanded a fresh draw
	members int

	ar  *value.RecordArena
	err error
}

// prepGroup shares one encoded, key-sorted index among every batch item
// with the same sample group and key column set.
type prepGroup struct {
	once    sync.Once
	sg      *sampleGroup
	keyCols []string
	members int

	prep *core.PreparedIndex
	err  error
}

// adaptiveGroupKey identifies adaptive batch items that may share one
// loop: the precision key plus every knob that changes the loop itself.
// (Two asks at different targets must not share — the looser one would be
// fine with the tighter result, but not vice versa, and the scheduling
// scan cannot know which finishes first.)
type adaptiveGroupKey struct {
	pkey       precisionKey
	target     float64
	confidence float64
	maxRows    int64
	fraction   float64
	rows       int64
	seed       uint64
	// partial separates AllowPartial loops from strict ones: a degraded
	// partial result must never fan out to a waiter that did not opt in.
	partial bool
}

// adaptiveGroup runs one precision-targeted loop for every batch item with
// the same adaptive key: identical adaptive asks share everything (their
// rounds, their rows, their result), so a batch listing the same
// (columns, codec, target) twice costs one loop, not two.
type adaptiveGroup struct {
	once sync.Once
	res  core.AdaptiveResult
	// failed lists the shard indices a degraded sharded loop dropped
	// (AllowPartial only; empty for full results).
	failed []int
	err    error
}

// round0Key identifies adaptive batch items that can share their initial
// draw even though their loops diverge afterwards: same table version,
// seed, starting size, and freshness demand. The round-0 sample is drawn
// under the full table schema, so items over different key columns — the
// advisor's per-codec and per-column-set screen — all project out of one
// shared arena, mirroring the fixed path's sample groups.
type round0Key struct {
	inst  uint64
	epoch uint64
	seed  uint64
	r0    int64
	fresh bool
}

// round0Group is the shared initial draw: the full-schema arena, plus —
// on the maintained route — the snapshot it was gathered from and the
// reservoir slots round 0 consumed (each loop continues from a copy).
type round0Group struct {
	once       sync.Once
	full       *value.RecordArena
	maintained bool
	snap       catalog.Sample
	chosen     map[int64]struct{}
	err        error
}

// batchItem is one request resolved against the dedup structures. Adaptive
// items carry a precision key and group instead of sample/prep groups:
// sample sizes diverge across different adaptive keys as rounds progress,
// so only identical keys share. Scattered items over partitioned tables
// carry per-shard work units instead of a single sample/prep group.
type batchItem struct {
	idx  int
	req  Request
	key  cacheKey
	sg   *sampleGroup
	pg   *prepGroup
	pkey precisionKey
	ag   *adaptiveGroup
	r0g  *round0Group
	// shards, when non-nil, marks a scattered fixed-r request over a
	// partitioned table: one work unit per non-empty shard, some possibly
	// pre-answered from the per-shard cache.
	shards []*shardWork
	// stratified marks a fixed-r request routed through the stratified
	// evaluator (Request.Strata > 0): per-stratum streams, no group dedup.
	stratified bool
}

// WhatIf evaluates a batch of candidates, drawing each distinct
// (table, sample size, seed) sample once and each distinct
// (sample, key columns) index build once, fanning the per-codec
// compression work across the worker pool. The result slice is parallel to
// reqs. ctx bounds the batch: items not started before ctx expires carry
// ctx's error; items already running complete.
func (e *Engine) WhatIf(ctx context.Context, reqs []Request) []Result {
	results := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	if ctx == nil {
		ctx = context.Background()
	}

	sampleGroups := make(map[sgKey]*sampleGroup)
	prepGroups := make(map[pgKey]*prepGroup)
	adaptiveGroups := make(map[adaptiveGroupKey]*adaptiveGroup)
	round0Groups := make(map[round0Key]*round0Group)
	var pending []*batchItem

	for i, req := range reqs {
		if err := validate(req); err != nil {
			results[i] = Result{Err: err}
			continue
		}
		// The version epoch read here keys both the cache entry and the
		// sample group: a mutation committed after this point produces a
		// different epoch and therefore a different key — O(1)
		// invalidation, no row access.
		epoch := req.Table.Epoch()
		pageSize := req.PageSize
		if pageSize == 0 {
			pageSize = e.cfg.PageSize
		}
		if req.TargetError > 0 {
			// Adaptive request: consult the precision cache by dominance,
			// then schedule a private resumable loop on the pool.
			pk := precisionKey{
				inst:     req.Table.InstanceID(),
				epoch:    epoch,
				columns:  strings.Join(req.KeyColumns, "\x00"),
				codec:    req.Codec.Name(),
				pageSize: pageSize,
				fresh:    req.FreshSample,
				strata:   req.Strata,
			}
			if sh, ok := req.Table.(catalog.Sharded); ok {
				pk.epochs = packEpochs(sh.EpochVector())
			}
			if ent, ok := e.precision.Get(pk, zFor(req.Confidence), req.TargetError); ok {
				// A dominance answer counts in both ledgers: Hits keeps
				// hits/misses symmetric across fixed and adaptive traffic,
				// PrecisionHits attributes it to the dominance rule.
				e.hits.Add(1)
				e.precisionHits.Add(1)
				results[i] = Result{
					Estimate:      ent.est,
					CacheHit:      true,
					AchievedError: ent.sdScale * zFor(req.Confidence),
					Rounds:        ent.rounds,
					Converged:     true,
				}
				continue
			}
			e.misses.Add(1)
			ak := adaptiveGroupKey{
				pkey: pk, target: req.TargetError, confidence: req.Confidence,
				maxRows: req.MaxSampleRows, fraction: req.Fraction,
				rows: req.SampleRows, seed: req.Seed, partial: req.AllowPartial,
			}
			ag, ok := adaptiveGroups[ak]
			if !ok {
				ag = &adaptiveGroup{}
				adaptiveGroups[ak] = ag
			}
			var r0g *round0Group
			if _, sharded := req.Table.(catalog.Sharded); !sharded && req.Strata == 0 {
				// Sharded and stratified adaptive loops draw per-arm round-0
				// samples inside the loop itself; only plain unsharded loops
				// share the whole-table round-0 arena.
				rk := round0Key{
					inst: pk.inst, epoch: epoch, seed: req.Seed,
					r0: initialAdaptiveRows(req), fresh: req.FreshSample,
				}
				var ok bool
				r0g, ok = round0Groups[rk]
				if !ok {
					r0g = &round0Group{}
					round0Groups[rk] = r0g
				}
			}
			pending = append(pending, &batchItem{idx: i, req: req, pkey: pk, ag: ag, r0g: r0g})
			continue
		}
		n := req.Table.NumRows()
		r := req.SampleRows
		if r <= 0 {
			r = sampling.SampleSize(n, req.Fraction)
		}
		if r <= 0 {
			results[i] = Result{Err: invalidf("engine: request %d: sample size is zero (fraction %v)", i, req.Fraction)}
			continue
		}
		if req.Strata > 0 {
			// Stratified fixed-r request: no sample/prep dedup (draws are
			// per-stratum streams) and no per-shard scatter cache — the
			// merged estimate caches under the request-level key, and the
			// expensive shared artifact (the strata directory) has its own
			// per-table-version cache.
			key := cacheKey{
				inst:     req.Table.InstanceID(),
				epoch:    epoch,
				columns:  strings.Join(req.KeyColumns, "\x00"),
				codec:    req.Codec.Name(),
				fraction: req.Fraction,
				rows:     req.SampleRows,
				seed:     req.Seed,
				pageSize: pageSize,
				fresh:    req.FreshSample,
				shard:    wholeTable,
				strata:   req.Strata,
			}
			if est, ok := e.cache.Get(key); ok {
				e.hits.Add(1)
				results[i] = Result{Estimate: est, CacheHit: true}
				continue
			}
			e.misses.Add(1)
			pending = append(pending, &batchItem{idx: i, req: req, key: key, stratified: true})
			continue
		}
		if sh, ok := req.Table.(catalog.Sharded); ok {
			// Partitioned table: scatter the request across shards, checking
			// the per-shard cache first. A fully-cached scatter gathers
			// immediately; otherwise only the missed shards evaluate.
			it, res, done := e.planScatter(i, req, pageSize, r, sh, sampleGroups, prepGroups)
			if done {
				results[i] = res
				continue
			}
			pending = append(pending, it)
			continue
		}
		key := cacheKey{
			inst:     req.Table.InstanceID(),
			epoch:    epoch,
			columns:  strings.Join(req.KeyColumns, "\x00"),
			codec:    req.Codec.Name(),
			fraction: req.Fraction,
			rows:     req.SampleRows,
			seed:     req.Seed,
			pageSize: pageSize,
			fresh:    req.FreshSample,
			shard:    wholeTable,
		}
		if est, ok := e.cache.Get(key); ok {
			e.hits.Add(1)
			results[i] = Result{Estimate: est, CacheHit: true}
			continue
		}
		e.misses.Add(1)

		sk := sgKey{inst: key.inst, epoch: epoch, r: r, seed: req.Seed}
		sg, ok := sampleGroups[sk]
		if !ok {
			sg = &sampleGroup{table: req.Table, r: r, seed: req.Seed, epoch: epoch}
			sampleGroups[sk] = sg
		}
		if req.FreshSample {
			sg.fresh = true
		}
		sg.members++
		pk := pgKey{sg: sk, cols: key.columns}
		pg, ok := prepGroups[pk]
		if !ok {
			pg = &prepGroup{sg: sg, keyCols: req.KeyColumns}
			prepGroups[pk] = pg
		}
		pg.members++
		pending = append(pending, &batchItem{idx: i, req: req, key: key, sg: sg, pg: pg})
	}

	var wg sync.WaitGroup
	for _, it := range pending {
		it := it
		job := func() {
			defer wg.Done()
			e.queueDepth.Dec()
			e.inFlight.Inc()
			defer e.inFlight.Dec()
			// Last-resort trap: a panic escaping the per-stage recovers
			// below must fail this item, never kill the pool worker (a
			// dead worker would shrink the pool for the process lifetime).
			defer func() {
				if r := recover(); r != nil {
					e.panicsRecovered.Add(1)
					results[it.idx] = Result{Err: fmt.Errorf("engine: request %d: %w", it.idx, faults.AsError(r))}
				}
			}()
			results[it.idx] = e.evaluate(ctx, it)
		}
		wg.Add(1)
		e.queueDepth.Inc()
		select {
		case e.jobs <- job:
		case <-e.quit:
			wg.Done()
			e.queueDepth.Dec()
			results[it.idx] = Result{Err: fmt.Errorf("engine: closed")}
		case <-ctx.Done():
			wg.Done()
			e.queueDepth.Dec()
			results[it.idx] = Result{Err: fmt.Errorf("engine: request %d not started: %w", it.idx, ctx.Err())}
		}
	}
	wg.Wait()
	return results
}

// evaluate runs one batch item on a pool worker, coalescing identical
// concurrent misses across batches: items with a coalescing key run
// through the flight group (flight.go), which either leads the computation
// or waits on another request's in-flight one. Scattered items (nil key)
// evaluate directly — their per-shard cache handles cross-request reuse.
func (e *Engine) evaluate(ctx context.Context, it *batchItem) Result {
	if err := ctx.Err(); err != nil {
		return Result{Err: fmt.Errorf("engine: request %d not started: %w", it.idx, err)}
	}
	if key := flightKey(it); key != nil {
		return e.coalesce(ctx, key, it)
	}
	return e.evaluateMiss(ctx, it)
}

// evaluateMiss computes one batch item behind its circuit breaker: the
// gate may answer with a stale estimate (or ErrBreakerOpen) while the
// breaker is open; otherwise the computation runs with panic isolation
// and its outcome feeds the breaker and stale ledgers.
func (e *Engine) evaluateMiss(ctx context.Context, it *batchItem) Result {
	if res, ok := e.breakerGate(it); ok {
		return res
	}
	res := e.computeItem(ctx, it)
	e.noteOutcome(it, res)
	return res
}

// computeItem runs one batch item's computation under the item-level
// panic trap: a panic anywhere below — injected or organic — becomes this
// item's error, carrying the injection point and stack.
func (e *Engine) computeItem(ctx context.Context, it *batchItem) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			e.panicsRecovered.Add(1)
			res = Result{Err: fmt.Errorf("engine: request %d: %w", it.idx, faults.AsError(r))}
		}
	}()
	return e.evaluateItem(ctx, it)
}

// evaluateItem computes one batch item: draw (or reuse) the group's
// sample, build (or reuse) the sorted index, compress with the item's
// codec, and cache the result.
func (e *Engine) evaluateItem(ctx context.Context, it *batchItem) Result {
	if err := ctx.Err(); err != nil {
		return Result{Err: fmt.Errorf("engine: request %d not started: %w", it.idx, err)}
	}
	if it.req.TargetError > 0 {
		return e.evaluateAdaptive(ctx, it)
	}
	if it.stratified {
		return e.evaluateStratified(ctx, it)
	}
	if it.shards != nil {
		return e.evaluateScatter(ctx, it)
	}
	sg := it.sg
	sg.once.Do(func() {
		_, end := obs.StartSpan(ctx, stageDraw)
		t0 := time.Now()
		e.drawSample(sg)
		e.stageDrawHist.Observe(time.Since(t0))
		end.End()
	})
	if sg.err != nil {
		return Result{Err: fmt.Errorf("engine: request %d: sampling: %w", it.idx, sg.err)}
	}
	pg := it.pg
	pg.once.Do(func() {
		// The trap must live INSIDE the once closure: sync.Once marks the
		// closure done even when it panics, so without it a panicking
		// build would leave batch-mates a "done" group with nil prep and
		// nil err.
		defer e.trapShardPanic(&pg.err)
		_, end := obs.StartSpan(ctx, stageSort)
		defer end.End()
		e.prepared.Add(1)
		pg.prep, pg.err = core.PrepareFromArena(sg.ar, sg.table.NumRows(), pg.keyCols)
		if pg.err == nil {
			d := pg.prep.PrepDuration()
			e.prepareNanos.Add(uint64(d.Nanoseconds()))
			e.sortRows.Add(uint64(pg.prep.SampleRows()))
			e.stageSortHist.Observe(d)
		}
	})
	if pg.err != nil {
		return Result{Err: fmt.Errorf("engine: request %d: prepare index: %w", it.idx, pg.err)}
	}
	pageSize := it.req.PageSize
	if pageSize == 0 {
		pageSize = e.cfg.PageSize
	}
	_, endCompress := obs.StartSpan(ctx, stageCompress)
	t0 := time.Now()
	est, err := pg.prep.Estimate(core.Options{Codec: it.req.Codec, PageSize: pageSize})
	e.stageCompressHist.Observe(time.Since(t0))
	endCompress.End()
	if err != nil {
		return Result{Err: fmt.Errorf("engine: request %d: %w", it.idx, err)}
	}
	e.evaluated.Add(1)
	shared := sg.members > 1
	if shared {
		e.samplesShared.Add(1)
	}
	_, endCache := obs.StartSpan(ctx, "cache")
	if ev := e.cache.Put(it.key, est); ev > 0 {
		e.evictions.Add(uint64(ev))
	}
	endCache.End()
	return Result{Estimate: est, SharedSample: shared}
}

// drawSample fills a sample group's arena, preferring the table's
// maintained sample when one is offered at the group's epoch: subsampling
// the in-memory backing sample (without replacement — a uniform subsample
// of a uniform sample) skips the O(r) storage draw and, for heap-backed
// tables, the row-directory rebuild behind it, and because the maintained
// snapshot is already arena-encoded the subsample is a pure byte-range
// gather. Any mismatch — no provider support, fewer than r maintained
// rows, or a snapshot at a different epoch than the request was keyed at —
// falls back to a fresh uniform-WR draw encoded straight into the arena,
// pinned to the table's copy-on-write snapshot when one is published at
// the group's epoch (lock-free, and every Row call sees the same rows).
func (e *Engine) drawSample(sg *sampleGroup) {
	// sampleGroups are once-shared: a panic escaping here would leave the
	// group "done" with no arena and no error for every batch-mate, so
	// the draw traps its own panics into sg.err.
	defer e.trapShardPanic(&sg.err)
	ar := value.NewRecordArena(sg.table.Schema(), int(sg.r))
	if sp, ok := sg.table.(catalog.SampleProvider); ok && !sg.fresh {
		if s, ok := sp.MaintainedSample(sg.r); ok && s.Epoch == sg.epoch {
			e.maintainedHits.Add(1)
			order, err := sampling.WORIndices(int64(s.Arena.Len()), sg.r, rng.New(sg.seed))
			if err == nil {
				err = ar.AppendFrom(s.Arena, order)
			}
			sg.ar, sg.err = ar, err
			return
		}
		e.maintainedStale.Add(1)
	}
	e.samplesDrawn.Add(1)
	sg.ar, sg.err = ar, sampling.UniformWRInto(pinnedSourceAt(sg.table, sg.epoch), sg.r, rng.New(sg.seed), ar)
}

// pinnedSourceAt returns the table's published copy-on-write snapshot when
// one exists at exactly epoch — the epoch the request was keyed at — so a
// multi-call draw reads one consistent row set without the table's lock
// and stays byte-identical to the Row path it replaces. Any mismatch
// (no snapshot support, rebuild error, or a snapshot published at another
// epoch) returns the table itself: the draw then goes through Table.Row,
// exactly the pre-snapshot behavior.
func pinnedSourceAt(t Table, epoch uint64) sampling.RowSource {
	if sp, ok := t.(catalog.SnapshotProvider); ok {
		if view, ve, err := sp.SnapshotRows(); err == nil && ve == epoch {
			return view
		}
	}
	return t
}

// pinnedSource is pinnedSourceAt without the epoch gate: adaptive
// extension rounds sample the table's current state (the pre-snapshot
// behavior already allowed rows to change between rounds), so any
// published snapshot qualifies — the win is that the whole round reads
// one consistent row set, lock-free.
func pinnedSource(t Table) sampling.RowSource {
	if sp, ok := t.(catalog.SnapshotProvider); ok {
		if view, _, err := sp.SnapshotRows(); err == nil {
			return view
		}
	}
	return t
}

// zFor converts a confidence level into the normal z multiplier, applying
// the 0.95 default.
func zFor(confidence float64) float64 {
	if confidence == 0 {
		confidence = 0.95
	}
	return stats.NormalQuantile(1 - (1-confidence)/2)
}

// evaluateAdaptive runs one precision-targeted request on a pool worker:
// grow the sample in resumable rounds (estimate → CI-check → extend) until
// the target half-width is met or the row budget runs out, then publish the
// achieved precision to the dominance cache. The sample rounds come from
// the maintained sample when its reservoir can cover the entire row budget
// at the request's epoch, otherwise from fresh resumable uniform-WR draws.
// Batch items with identical adaptive keys share one loop (it.ag); ctx is
// re-checked before every extension round, so an expired deadline stops
// the loop at the next round boundary instead of running the budget out.
func (e *Engine) evaluateAdaptive(ctx context.Context, it *batchItem) Result {
	ag := it.ag
	ag.once.Do(func() {
		// Trap inside the once closure: a panicking loop must latch an
		// error for the whole group, not a "done" group with neither
		// result nor error.
		defer e.trapShardPanic(&ag.err)
		if it.req.Strata > 0 {
			// Stratified loops (sharded or not) build their arm set from
			// the strata directories; shard composition happens inside.
			ag.res, ag.err = e.runStratifiedAdaptive(ctx, it.req, it.pkey)
			return
		}
		if sh, ok := it.req.Table.(catalog.Sharded); ok {
			ag.res, ag.failed, ag.err = e.runShardedAdaptive(ctx, it.req, it.pkey, sh)
			return
		}
		ag.res, ag.err = e.runAdaptive(ctx, it.req, it.pkey, it.r0g)
	})
	if ag.err != nil {
		return Result{Err: fmt.Errorf("engine: request %d: %w", it.idx, ag.err)}
	}
	res := ag.res
	out := Result{
		Estimate:      res.Estimate,
		AchievedError: res.AchievedError,
		Rounds:        res.Rounds,
		Converged:     res.Converged,
	}
	if len(ag.failed) > 0 {
		out.Degraded = true
		out.ShardsFailed = append([]int(nil), ag.failed...)
	}
	return out
}

// initialAdaptiveRows resolves an adaptive request's round-0 size:
// SampleRows/Fraction seed it when set, the adaptive minimum otherwise,
// clamped to the row budget.
func initialAdaptiveRows(req Request) int64 {
	n := req.Table.NumRows()
	r0 := req.SampleRows
	if r0 <= 0 && req.Fraction > 0 {
		r0 = sampling.SampleSize(n, req.Fraction)
	}
	if r0 <= 0 {
		r0 = core.DefaultMinSampleRows
	}
	max := req.MaxSampleRows
	if max == 0 {
		max = n
	}
	if r0 > max {
		r0 = max
	}
	return r0
}

// runAdaptive executes the precision-targeted loop for one adaptive key.
// The round-0 draw is shared through r0g with every adaptive batch-mate at
// the same (table version, seed, r0, freshness) — the loops diverge per
// codec from round 1 on. The maintained route is tried first when the
// reservoir offers at least r0 rows at the request's epoch: its loop runs
// with the budget capped at the reservoir size, and only if that capped
// budget runs out unconverged does the request rerun fresh against storage
// with the full budget — the common converging case never touches storage.
func (e *Engine) runAdaptive(ctx context.Context, req Request, pkey precisionKey, r0g *round0Group) (core.AdaptiveResult, error) {
	pageSize := req.PageSize
	if pageSize == 0 {
		pageSize = e.cfg.PageSize
	}
	n := req.Table.NumRows()
	target := core.Precision{
		TargetError:   req.TargetError,
		Confidence:    req.Confidence,
		MaxSampleRows: req.MaxSampleRows,
	}
	if target.MaxSampleRows == 0 {
		target.MaxSampleRows = n
	}
	opts := core.Options{
		Codec:      req.Codec,
		KeyColumns: req.KeyColumns,
		PageSize:   pageSize,
		Seed:       req.Seed,
	}
	r0 := initialAdaptiveRows(req)
	r0g.once.Do(func() {
		_, end := obs.StartSpan(ctx, stageDraw)
		t0 := time.Now()
		e.drawAdaptiveRound0(req, pkey.epoch, r0, r0g)
		e.stageDrawHist.Observe(time.Since(t0))
		end.End()
	})
	if r0g.err != nil {
		return core.AdaptiveResult{}, r0g.err
	}

	var res core.AdaptiveResult
	var err error
	if r0g.maintained {
		// Cap the budget at what the reservoir can serve without
		// replacement; rounds gather snapshot slots by byte range.
		capped := target
		if snapLen := int64(r0g.snap.Arena.Len()); snapLen < capped.MaxSampleRows {
			capped.MaxSampleRows = snapLen
		}
		chosen := make(map[int64]struct{}, len(r0g.chosen))
		for idx := range r0g.chosen {
			chosen[idx] = struct{}{}
		}
		extend := func(round int, rows int64) (*value.RecordArena, error) {
			idx, err := sampling.WORExtendIndices(int64(r0g.snap.Arena.Len()), rows, req.Seed, round, chosen)
			if err != nil {
				return nil, err
			}
			full := value.NewRecordArena(req.Table.Schema(), int(rows))
			if err := full.AppendFrom(r0g.snap.Arena, idx); err != nil {
				return nil, err
			}
			return core.ProjectSample(full, req.KeyColumns)
		}
		res, err = e.adaptiveLoop(ctx, req, opts, capped, r0g.full, extend)
		if err != nil {
			return core.AdaptiveResult{}, err
		}
		if !res.Converged && capped.MaxSampleRows < target.MaxSampleRows {
			// The reservoir ran out below the requested budget: rerun
			// fresh from storage with the full budget rather than
			// reporting a weaker budget than the caller asked for.
			e.samplesDrawn.Add(1)
			res, err = e.freshAdaptive(ctx, req, opts, target, r0)
		}
	} else {
		res, err = e.adaptiveLoop(ctx, req, opts, target, r0g.full, e.freshExtend(req))
	}
	if err != nil {
		return core.AdaptiveResult{}, err
	}
	e.evaluated.Add(1)
	// Publish the achieved precision for dominance reuse: the interval is
	// stored confidence-free (half-width ÷ z) so one entry answers asks at
	// any confidence level.
	e.precision.Put(pkey, res.Estimate, res.AchievedError/zFor(req.Confidence), res.Rounds, res.Estimate.SampleRows)
	return res, nil
}

// drawAdaptiveRound0 fills a shared round-0 group: a maintained-snapshot
// WOR gather when the table offers at least r0 reservoir rows at the
// request's epoch, a fresh resumable WR draw otherwise.
func (e *Engine) drawAdaptiveRound0(req Request, epoch uint64, r0 int64, g *round0Group) {
	// Once-shared like drawSample: trap panics into the group's error.
	defer e.trapShardPanic(&g.err)
	if sp, ok := req.Table.(catalog.SampleProvider); ok && !req.FreshSample {
		if s, ok := sp.MaintainedSample(r0); ok && s.Epoch == epoch {
			e.maintainedHits.Add(1)
			chosen := make(map[int64]struct{}, r0)
			idx, err := sampling.WORExtendIndices(int64(s.Arena.Len()), r0, req.Seed, 0, chosen)
			if err != nil {
				g.err = err
				return
			}
			full := value.NewRecordArena(req.Table.Schema(), int(r0))
			if err := full.AppendFrom(s.Arena, idx); err != nil {
				g.err = err
				return
			}
			g.full, g.maintained, g.snap, g.chosen = full, true, s, chosen
			return
		}
		e.maintainedStale.Add(1)
	}
	e.samplesDrawn.Add(1)
	full := value.NewRecordArena(req.Table.Schema(), int(r0))
	if err := sampling.ExtendWRInto(pinnedSourceAt(req.Table, epoch), full, r0, req.Seed, 0); err != nil {
		g.err = err
		return
	}
	g.full = full
}

// freshExtend returns the resumable fresh-draw extension for a request;
// each round draws against the table's pinned snapshot when one is
// published.
func (e *Engine) freshExtend(req Request) core.ExtendFunc {
	return func(round int, rows int64) (*value.RecordArena, error) {
		full := value.NewRecordArena(req.Table.Schema(), int(rows))
		if err := sampling.ExtendWRInto(pinnedSource(req.Table), full, rows, req.Seed, round); err != nil {
			return nil, err
		}
		return core.ProjectSample(full, req.KeyColumns)
	}
}

// freshAdaptive runs a complete adaptive loop against storage, including
// its own round-0 draw (the maintained-route fallback path; not shared).
func (e *Engine) freshAdaptive(ctx context.Context, req Request, opts core.Options, target core.Precision, r0 int64) (core.AdaptiveResult, error) {
	if err := ctx.Err(); err != nil {
		return core.AdaptiveResult{}, err
	}
	full := value.NewRecordArena(req.Table.Schema(), int(r0))
	if err := sampling.ExtendWRInto(pinnedSource(req.Table), full, r0, req.Seed, 0); err != nil {
		return core.AdaptiveResult{}, err
	}
	return e.adaptiveLoop(ctx, req, opts, target, full, e.freshExtend(req))
}

// adaptiveLoop prepares the (possibly shared) round-0 arena for this
// request's key columns and drives AdaptiveEstimate with ctx re-checked
// before every extension. When the projection is the identity the prepared
// index aliases the shared arena; the first extension copies it
// (core.ExtendFromArena's copy-on-extend), which is exactly what keeps the
// shared round-0 bytes safe for the other loops in the group.
func (e *Engine) adaptiveLoop(ctx context.Context, req Request, opts core.Options, target core.Precision,
	round0 *value.RecordArena, extend core.ExtendFunc) (core.AdaptiveResult, error) {
	if err := ctx.Err(); err != nil {
		return core.AdaptiveResult{}, err
	}
	guarded := func(round int, rows int64) (*value.RecordArena, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return extend(round, rows)
	}
	_, endSort := obs.StartSpan(ctx, stageSort)
	initial, err := core.ProjectSample(round0, req.KeyColumns)
	if err != nil {
		endSort.End()
		return core.AdaptiveResult{}, err
	}
	prep, err := core.PrepareFromArena(initial, req.Table.NumRows(), nil)
	if err != nil {
		endSort.End()
		return core.AdaptiveResult{}, err
	}
	e.stageSortHist.Observe(prep.PrepDuration())
	endSort.End()
	e.prepared.Add(1)
	_, endRounds := obs.StartSpan(ctx, stageRounds)
	t0 := time.Now()
	res, err := prep.AdaptiveEstimate(target, opts, guarded)
	e.stageRoundsHist.Observe(time.Since(t0))
	endRounds.End()
	if err != nil {
		return core.AdaptiveResult{}, err
	}
	e.adaptiveRounds.Add(uint64(res.Rounds))
	e.adaptiveRows.Add(uint64(res.Estimate.SampleRows))
	// PrepDuration and SampleRows here include every extension round's
	// incremental sort+merge, so the prepare ledger covers adaptive growth.
	e.prepareNanos.Add(uint64(prep.PrepDuration().Nanoseconds()))
	e.sortRows.Add(uint64(prep.SampleRows()))
	return res, nil
}

// validate rejects malformed requests before they reach the pool. Every
// rejection satisfies errors.Is(err, ErrInvalidRequest), which cfserve
// maps to 400.
func validate(req Request) error {
	switch {
	case req.Table == nil:
		return invalidf("engine: Request.Table is required")
	case req.Codec == nil:
		return invalidf("engine: Request.Codec is required")
	case req.Table.NumRows() == 0:
		return invalidf("engine: table %q is empty", req.Table.Name())
	case req.SampleRows < 0:
		return invalidf("engine: negative sample size %d", req.SampleRows)
	case req.TargetError < 0 || req.TargetError >= 1:
		return invalidf("engine: target error %v outside (0,1)", req.TargetError)
	case req.Confidence != 0 && (req.Confidence <= 0 || req.Confidence >= 1):
		return invalidf("engine: confidence %v outside (0,1)", req.Confidence)
	case req.TargetError == 0 && req.Confidence != 0:
		return invalidf("engine: Confidence requires TargetError")
	case req.TargetError == 0 && req.MaxSampleRows != 0:
		return invalidf("engine: MaxSampleRows requires TargetError")
	case req.MaxSampleRows < 0:
		return invalidf("engine: negative row budget %d", req.MaxSampleRows)
	case req.Strata < 0:
		return invalidf("engine: negative strata count %d", req.Strata)
	case req.TargetError > 0 && req.Fraction < 0:
		return invalidf("engine: negative fraction %v", req.Fraction)
	case req.TargetError == 0 && req.SampleRows == 0 && (req.Fraction <= 0 || req.Fraction > 1):
		return invalidf("engine: fraction %v outside (0,1]", req.Fraction)
	}
	return nil
}
