// Package engine is the concurrent what-if estimation engine: the layer
// that turns one-shot SampleCF runs into a service-grade primitive. The
// paper's point is that sampling makes compressed-index size estimates
// cheap enough for an automated physical design tool to call *many times*;
// the realistic call pattern (Kimura et al., "Compression Aware Physical
// Database Design") is a batch of what-if questions over many
// (index-column-set, codec) candidates of the same table. The engine
// exploits that shape three ways:
//
//   - shared-sample batching — one uniform sample is drawn per
//     (table, fraction|rows, seed) and reused by every candidate in the
//     batch, and the encoded, key-sorted index build (core.PreparedIndex)
//     is shared by every codec of the same column set;
//   - a worker pool — candidates evaluate concurrently across a bounded
//     set of goroutines shared by all in-flight batches;
//   - an LRU result cache keyed by (table instance id, version epoch, key
//     columns, codec, fraction|rows, seed, page size) with
//     hit/miss/eviction counters, so repeated what-if traffic (the
//     advisor's enumeration loops, cfserve's HTTP clients) skips
//     re-estimation entirely. The epoch comes from the catalog contract:
//     mutations bump it, so stale entries miss by key inequality — an O(1)
//     invalidation with no row access, replacing the previous per-request
//     content fingerprint that probed table rows;
//   - a maintained-sample fast path — tables that keep a backing sample
//     (catalog.SampleProvider, e.g. live db tables) serve estimation
//     samples from memory when the snapshot matches the request's epoch,
//     skipping the O(r) storage draw entirely.
//
// Batches take a context: items not yet started when the deadline expires
// fail with the context error, while every other item completes normally —
// errors are isolated per candidate, never batch-fatal.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"samplecf/internal/catalog"
	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/page"
	"samplecf/internal/rng"
	"samplecf/internal/sampling"
	"samplecf/internal/value"
)

// Table is the engine's view of an estimation source: the versioned
// catalog abstraction. workload.Table, workload.VirtualTable, and live
// db.Table all satisfy it.
type Table = catalog.Table

// Config tunes an Engine.
type Config struct {
	// Workers is the goroutine pool size (default GOMAXPROCS).
	Workers int
	// CacheEntries bounds the LRU result cache (default 1024; negative
	// disables caching).
	CacheEntries int
	// PageSize is the default index page size for requests that leave
	// theirs zero (default page.DefaultSize).
	PageSize int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 1024
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	}
	if c.PageSize == 0 {
		c.PageSize = page.DefaultSize
	}
	return c
}

// Request is one what-if question: how big would the index on
// Table(KeyColumns) be under Codec, estimated from a sample of Fraction
// (or exactly SampleRows rows) drawn with Seed?
type Request struct {
	Table Table
	// KeyColumns is the index column sequence (empty = all columns).
	KeyColumns []string
	// Codec is required; sizing uncompressed candidates needs no estimator.
	Codec compress.Codec
	// Fraction is the sampling fraction f; ignored when SampleRows > 0.
	Fraction float64
	// SampleRows fixes the sample size r directly.
	SampleRows int64
	// Seed fixes the sample, making results reproducible and cacheable.
	Seed uint64
	// PageSize overrides the engine default for this request.
	PageSize int
	// FreshSample bypasses the maintained-sample fast path: the estimate
	// is computed from a direct draw against the table even when it
	// offers a maintained sample (catalog.SampleProvider). Fresh results
	// are cached separately from maintained-sample results, so a fresh
	// request is never answered with a maintained-sample estimate.
	FreshSample bool
}

// Result is one candidate's outcome. Err is per-candidate: a failed or
// deadline-expired item never poisons its batch.
type Result struct {
	Estimate core.Estimate
	Err      error
	// CacheHit reports the estimate came from the LRU cache.
	CacheHit bool
	// SharedSample reports the estimate reused a sample drawn for another
	// candidate in the same batch.
	SharedSample bool
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Hits and Misses count result-cache lookups; Evictions counts LRU
	// displacements.
	Hits, Misses, Evictions uint64
	// SamplesDrawn counts physical sample draws; SamplesShared counts
	// candidates that reused a batch-mate's sample.
	SamplesDrawn, SamplesShared uint64
	// MaintainedHits counts sample draws served from a table's maintained
	// sample; MaintainedStale counts fallbacks to a fresh draw because the
	// maintained snapshot was missing, undersized, or at a different
	// epoch than the request.
	MaintainedHits, MaintainedStale uint64
	// IndexesPrepared counts encode+sort builds; Evaluated counts candidate
	// estimates computed (cache hits excluded).
	IndexesPrepared, Evaluated uint64
	// CacheEntries is the current LRU size.
	CacheEntries int
}

// Engine owns the worker pool and result cache. Create with New, release
// with Close. All methods are safe for concurrent use.
type Engine struct {
	cfg   Config
	cache *lruCache

	jobs chan func()
	quit chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once

	hits, misses, evictions         atomic.Uint64
	samplesDrawn, samplesShared     atomic.Uint64
	maintainedHits, maintainedStale atomic.Uint64
	prepared, evaluated             atomic.Uint64
}

// New starts an engine with cfg's worker pool.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:   cfg,
		cache: newLRUCache(cfg.CacheEntries),
		jobs:  make(chan func()),
		quit:  make(chan struct{}),
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer e.wg.Done()
			// jobs is unbuffered, so a send only completes when paired with
			// a receive here — an accepted job always runs, and the channel
			// is never closed (senders select on quit instead).
			for {
				select {
				case job := <-e.jobs:
					job()
				case <-e.quit:
					return
				}
			}
		}()
	}
	return e
}

// Close stops the worker pool after in-flight work drains. Batches
// submitted after Close fail with an error result per item.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
	e.wg.Wait()
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Hits:            e.hits.Load(),
		Misses:          e.misses.Load(),
		Evictions:       e.evictions.Load(),
		SamplesDrawn:    e.samplesDrawn.Load(),
		SamplesShared:   e.samplesShared.Load(),
		MaintainedHits:  e.maintainedHits.Load(),
		MaintainedStale: e.maintainedStale.Load(),
		IndexesPrepared: e.prepared.Load(),
		Evaluated:       e.evaluated.Load(),
		CacheEntries:    e.cache.Len(),
	}
}

// Estimate answers a single what-if question through the engine (cache,
// pool, and all); it is WhatIf with a one-element batch.
func (e *Engine) Estimate(ctx context.Context, req Request) Result {
	return e.WhatIf(ctx, []Request{req})[0]
}

// sampleGroup shares one drawn sample among every batch item with the same
// (table instance, epoch, sample size, seed). The sample is arena-encoded
// at draw time (records + memcomparable keys in two contiguous buffers);
// prep groups project their key columns straight out of it, so no
// []value.Row intermediate exists on either the fresh or the maintained
// route.
type sampleGroup struct {
	once    sync.Once
	table   Table
	r       int64
	seed    uint64
	epoch   uint64
	fresh   bool // at least one member demanded a fresh draw
	members int

	ar  *value.RecordArena
	err error
}

// prepGroup shares one encoded, key-sorted index among every batch item
// with the same sample group and key column set.
type prepGroup struct {
	once    sync.Once
	sg      *sampleGroup
	keyCols []string
	members int

	prep *core.PreparedIndex
	err  error
}

// batchItem is one request resolved against the dedup structures.
type batchItem struct {
	idx int
	req Request
	key cacheKey
	sg  *sampleGroup
	pg  *prepGroup
}

// WhatIf evaluates a batch of candidates, drawing each distinct
// (table, sample size, seed) sample once and each distinct
// (sample, key columns) index build once, fanning the per-codec
// compression work across the worker pool. The result slice is parallel to
// reqs. ctx bounds the batch: items not started before ctx expires carry
// ctx's error; items already running complete.
func (e *Engine) WhatIf(ctx context.Context, reqs []Request) []Result {
	results := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	if ctx == nil {
		ctx = context.Background()
	}

	type sgKey struct {
		inst  uint64
		epoch uint64
		r     int64
		seed  uint64
	}
	type pgKey struct {
		sg   sgKey
		cols string
	}
	sampleGroups := make(map[sgKey]*sampleGroup)
	prepGroups := make(map[pgKey]*prepGroup)
	var pending []*batchItem

	for i, req := range reqs {
		if err := validate(req); err != nil {
			results[i] = Result{Err: err}
			continue
		}
		n := req.Table.NumRows()
		r := req.SampleRows
		if r <= 0 {
			r = sampling.SampleSize(n, req.Fraction)
		}
		if r <= 0 {
			results[i] = Result{Err: fmt.Errorf("engine: request %d: sample size is zero (fraction %v)", i, req.Fraction)}
			continue
		}
		// The version epoch read here keys both the cache entry and the
		// sample group: a mutation committed after this point produces a
		// different epoch and therefore a different key — O(1)
		// invalidation, no row access.
		epoch := req.Table.Epoch()
		pageSize := req.PageSize
		if pageSize == 0 {
			pageSize = e.cfg.PageSize
		}
		key := cacheKey{
			inst:     req.Table.InstanceID(),
			epoch:    epoch,
			columns:  strings.Join(req.KeyColumns, "\x00"),
			codec:    req.Codec.Name(),
			fraction: req.Fraction,
			rows:     req.SampleRows,
			seed:     req.Seed,
			pageSize: pageSize,
			fresh:    req.FreshSample,
		}
		if est, ok := e.cache.Get(key); ok {
			e.hits.Add(1)
			results[i] = Result{Estimate: est, CacheHit: true}
			continue
		}
		e.misses.Add(1)

		sk := sgKey{inst: key.inst, epoch: epoch, r: r, seed: req.Seed}
		sg, ok := sampleGroups[sk]
		if !ok {
			sg = &sampleGroup{table: req.Table, r: r, seed: req.Seed, epoch: epoch}
			sampleGroups[sk] = sg
		}
		if req.FreshSample {
			sg.fresh = true
		}
		sg.members++
		pk := pgKey{sg: sk, cols: key.columns}
		pg, ok := prepGroups[pk]
		if !ok {
			pg = &prepGroup{sg: sg, keyCols: req.KeyColumns}
			prepGroups[pk] = pg
		}
		pg.members++
		pending = append(pending, &batchItem{idx: i, req: req, key: key, sg: sg, pg: pg})
	}

	var wg sync.WaitGroup
	for _, it := range pending {
		it := it
		job := func() {
			defer wg.Done()
			results[it.idx] = e.evaluate(ctx, it)
		}
		wg.Add(1)
		select {
		case e.jobs <- job:
		case <-e.quit:
			wg.Done()
			results[it.idx] = Result{Err: fmt.Errorf("engine: closed")}
		case <-ctx.Done():
			wg.Done()
			results[it.idx] = Result{Err: fmt.Errorf("engine: request %d not started: %w", it.idx, ctx.Err())}
		}
	}
	wg.Wait()
	return results
}

// evaluate runs one batch item on a pool worker: draw (or reuse) the
// group's sample, build (or reuse) the sorted index, compress with the
// item's codec, and cache the result.
func (e *Engine) evaluate(ctx context.Context, it *batchItem) Result {
	if err := ctx.Err(); err != nil {
		return Result{Err: fmt.Errorf("engine: request %d not started: %w", it.idx, err)}
	}
	sg := it.sg
	sg.once.Do(func() { e.drawSample(sg) })
	if sg.err != nil {
		return Result{Err: fmt.Errorf("engine: request %d: sampling: %w", it.idx, sg.err)}
	}
	pg := it.pg
	pg.once.Do(func() {
		e.prepared.Add(1)
		pg.prep, pg.err = core.PrepareFromArena(sg.ar, sg.table.NumRows(), pg.keyCols)
	})
	if pg.err != nil {
		return Result{Err: fmt.Errorf("engine: request %d: prepare index: %w", it.idx, pg.err)}
	}
	pageSize := it.req.PageSize
	if pageSize == 0 {
		pageSize = e.cfg.PageSize
	}
	est, err := pg.prep.Estimate(core.Options{Codec: it.req.Codec, PageSize: pageSize})
	if err != nil {
		return Result{Err: fmt.Errorf("engine: request %d: %w", it.idx, err)}
	}
	e.evaluated.Add(1)
	shared := sg.members > 1
	if shared {
		e.samplesShared.Add(1)
	}
	if ev := e.cache.Put(it.key, est); ev > 0 {
		e.evictions.Add(uint64(ev))
	}
	return Result{Estimate: est, SharedSample: shared}
}

// drawSample fills a sample group's arena, preferring the table's
// maintained sample when one is offered at the group's epoch: subsampling
// the in-memory backing sample (without replacement — a uniform subsample
// of a uniform sample) skips the O(r) storage draw and, for heap-backed
// tables, the row-directory rebuild behind it, and because the maintained
// snapshot is already arena-encoded the subsample is a pure byte-range
// gather. Any mismatch — no provider support, fewer than r maintained
// rows, or a snapshot at a different epoch than the request was keyed at —
// falls back to a fresh uniform-WR draw encoded straight into the arena.
func (e *Engine) drawSample(sg *sampleGroup) {
	ar := value.NewRecordArena(sg.table.Schema(), int(sg.r))
	if sp, ok := sg.table.(catalog.SampleProvider); ok && !sg.fresh {
		if s, ok := sp.MaintainedSample(sg.r); ok && s.Epoch == sg.epoch {
			e.maintainedHits.Add(1)
			order, err := sampling.WORIndices(int64(s.Arena.Len()), sg.r, rng.New(sg.seed))
			if err == nil {
				err = ar.AppendFrom(s.Arena, order)
			}
			sg.ar, sg.err = ar, err
			return
		}
		e.maintainedStale.Add(1)
	}
	e.samplesDrawn.Add(1)
	sg.ar, sg.err = ar, sampling.UniformWRInto(sg.table, sg.r, rng.New(sg.seed), ar)
}

// validate rejects malformed requests before they reach the pool.
func validate(req Request) error {
	switch {
	case req.Table == nil:
		return fmt.Errorf("engine: Request.Table is required")
	case req.Codec == nil:
		return fmt.Errorf("engine: Request.Codec is required")
	case req.Table.NumRows() == 0:
		return fmt.Errorf("engine: table %q is empty", req.Table.Name())
	case req.SampleRows < 0:
		return fmt.Errorf("engine: negative sample size %d", req.SampleRows)
	case req.SampleRows == 0 && (req.Fraction <= 0 || req.Fraction > 1):
		return fmt.Errorf("engine: fraction %v outside (0,1]", req.Fraction)
	}
	return nil
}
