package core

import (
	"math"
	"testing"

	"samplecf/internal/compress"
	"samplecf/internal/distinct"
	"samplecf/internal/distrib"
	"samplecf/internal/stats"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

func TestTheorem1Bound(t *testing.T) {
	if got := Theorem1StdDevBound(1_000_000); math.Abs(got-0.0005) > 1e-12 {
		t.Fatalf("bound(10^6) = %v, want 5e-4", got)
	}
	if got := Theorem1StdDevBound(100); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("bound(100) = %v, want 0.05", got)
	}
	if got := Theorem1StdDevBound(0); !math.IsInf(got, 1) {
		t.Fatalf("bound(0) = %v, want +Inf", got)
	}
}

func TestExample1Numbers(t *testing.T) {
	n, r, bound := Example1()
	if n != 100_000_000 || r != 1_000_000 {
		t.Fatalf("Example 1 sizes %d/%d", n, r)
	}
	if math.Abs(bound-5e-4) > 1e-12 {
		t.Fatalf("Example 1 bound = %v, want 5e-4", bound)
	}
}

func TestTheorem1ExactLEQBound(t *testing.T) {
	// The exact σ (σ_ℓ/(k√r)) never exceeds the distribution-free bound.
	for _, varNS := range []float64{0, 1, 25, 100} {
		for _, k := range []int{10, 20, 100} {
			for _, r := range []int64{10, 1000, 1_000_000} {
				exact := Theorem1StdDevExact(varNS, k, r)
				bound := Theorem1StdDevBound(r)
				if math.Sqrt(varNS) <= float64(k)/2 && exact > bound+1e-15 {
					t.Fatalf("exact %v > bound %v (var=%v k=%d r=%d)", exact, bound, varNS, k, r)
				}
			}
		}
	}
	if !math.IsNaN(Theorem1StdDevExact(-1, 10, 10)) {
		t.Fatal("negative variance accepted")
	}
}

// TestTheorem1Empirical is the core Theorem 1 validation: CF'_NS is
// unbiased and its spread respects the bound, across length distributions.
func TestTheorem1Empirical(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const n = 20000
	const f = 0.01
	r := int64(f * n)
	bound := Theorem1StdDevBound(r)
	codec := mustCodec(t, "nullsuppression")

	for _, lengths := range []distrib.Lengths{
		distrib.NewUniformLen(0, 20),
		distrib.NewBimodalLen(1, 19, 0.5), // near-worst-case variance
		distrib.NewConstantLen(7),         // zero variance
		distrib.NewNormalLen(10, 3, 0, 20),
	} {
		tab := genTable(t, n, 5000, lengths, 23)
		st, err := workload.ComputeStats(tab)
		if err != nil {
			t.Fatal(err)
		}
		truth := st[0].CFNullSuppression(20, 1)

		var acc stats.Accumulator
		for seed := uint64(0); seed < 60; seed++ {
			est, err := SampleCF(tab, tab.Schema(), Options{
				Fraction: f, Codec: codec, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(est.CF)
		}
		// Unbiasedness: the mean of 60 trials is within 4 standard errors.
		if se := acc.StdErr(); math.Abs(acc.Mean()-truth) > 4*se+1e-9 {
			t.Errorf("%s: mean %v vs truth %v (se %v) — bias?", lengths.Name(), acc.Mean(), truth, se)
		}
		// Bound: observed σ below the distribution-free bound (with slack
		// for estimating σ from 60 trials).
		if acc.StdDev() > 1.35*bound {
			t.Errorf("%s: σ %v exceeds bound %v", lengths.Name(), acc.StdDev(), bound)
		}
		// Exact σ from population variance must also dominate observed.
		exact := Theorem1StdDevExact(st[0].VarNS(), 20, r)
		if acc.StdDev() > 1.5*exact+1e-9 {
			t.Errorf("%s: σ %v far above exact prediction %v", lengths.Name(), acc.StdDev(), exact)
		}
	}
}

func TestTheorem2BoundShrinksWithN(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int64{1000, 10_000, 100_000, 1_000_000} {
		b, err := Theorem2RatioBound(n, 100, 0.01, 20, 4)
		if err != nil {
			t.Fatal(err)
		}
		if b >= prev {
			t.Fatalf("bound not shrinking: %v at n=%d (prev %v)", b, n, prev)
		}
		prev = b
	}
	// n → large with d = o(n) drives the bound to 1.
	b, err := Theorem2RatioBound(100_000_000, 100, 0.01, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b > 1.01 {
		t.Fatalf("asymptotic bound %v, want ≈1", b)
	}
	if _, err := Theorem2RatioBound(0, 1, 0.5, 20, 4); err == nil {
		t.Fatal("invalid n accepted")
	}
}

func TestTheorem3BoundConstantInN(t *testing.T) {
	b, err := Theorem3RatioBound(0.5, 0.01, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b < 1 || b > 3 {
		t.Fatalf("β=0.5 bound = %v, want small constant", b)
	}
	// Bound worsens as β shrinks.
	b2, err := Theorem3RatioBound(0.1, 0.01, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b2 <= b {
		t.Fatalf("bound should grow as β shrinks: β=0.1 %v vs β=0.5 %v", b2, b)
	}
	if _, err := Theorem3RatioBound(0, 0.01, 20, 4); err == nil {
		t.Fatal("β=0 accepted")
	}
}

// TestTheorem2Empirical: small d ⇒ ratio error near 1.
func TestTheorem2Empirical(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// Regime check: Theorem 2 needs d'/r ≪ p/k, i.e. r ≫ d·k/p. With
	// d = 20 and f = 0.05 (r = 2500), d/r·(k/p) = 0.04 — the ratio error
	// ceiling is ≈ 1.04.
	const n = 50000
	const d = 20
	const f = 0.05
	const k, p = 20, 4
	tab := genTable(t, n, d, distrib.NewConstantLen(10), 29)
	st, err := workload.ComputeStats(tab)
	if err != nil {
		t.Fatal(err)
	}
	truth := st[0].CFGlobalDict(k, p)
	codec := compress.GlobalDict{PointerBytes: p}

	var ratio stats.Accumulator
	for seed := uint64(0); seed < 30; seed++ {
		est, err := SampleCF(tab, tab.Schema(), Options{
			Fraction: f, Codec: codec, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ratio.Add(stats.RatioError(est.CF, truth))
	}
	bound, err := Theorem2RatioBound(n, d, f, k, p)
	if err != nil {
		t.Fatal(err)
	}
	if ratio.Mean() > bound {
		t.Fatalf("mean ratio error %v exceeds Theorem-2 bound %v", ratio.Mean(), bound)
	}
	if ratio.Mean() > 1.1 {
		t.Fatalf("mean ratio error %v, want ≈1 in small-d regime", ratio.Mean())
	}
}

// TestTheorem3Empirical: d = βn ⇒ ratio error below the constant bound.
func TestTheorem3Empirical(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const n = 50000
	const beta = 0.5
	const f = 0.02
	const k, p = 20, 4
	tab := genTable(t, n, int64(beta*n), distrib.NewConstantLen(10), 31)
	st, err := workload.ComputeStats(tab)
	if err != nil {
		t.Fatal(err)
	}
	truth := st[0].CFGlobalDict(k, p)
	codec := compress.GlobalDict{PointerBytes: p}

	var ratio stats.Accumulator
	for seed := uint64(0); seed < 30; seed++ {
		est, err := SampleCF(tab, tab.Schema(), Options{
			Fraction: f, Codec: codec, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ratio.Add(stats.RatioError(est.CF, truth))
	}
	// The actual number of distinct values present can be below βn (some
	// domain values never drawn); use the realized β for the bound.
	realizedBeta := float64(st[0].Distinct) / float64(n)
	bound, err := Theorem3RatioBound(realizedBeta, f, k, p)
	if err != nil {
		t.Fatal(err)
	}
	if ratio.Mean() > bound {
		t.Fatalf("mean ratio error %v exceeds Theorem-3 bound %v", ratio.Mean(), bound)
	}
}

func TestAnalyticNSMatchesCodec(t *testing.T) {
	// The analytical CF'_NS must equal the engine codec's CF on the same
	// sample rows.
	tab := genTable(t, 1000, 50, distrib.NewUniformLen(0, 20), 37)
	rows := tab.Rows()[:200]
	analytic, err := AnalyticNS(tab.Schema(), rows)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([][]byte, len(rows))
	for i, row := range rows {
		rec, err := value.EncodeRecord(tab.Schema(), row, nil)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = rec
	}
	res, err := compress.MeasureRecords(tab.Schema(), mustCodec(t, "nullsuppression"), recs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(analytic-res.CF()) > 1e-12 {
		t.Fatalf("analytic %v != codec %v", analytic, res.CF())
	}
	if _, err := AnalyticNS(tab.Schema(), nil); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestAnalyticDictNaiveScaleEqualsSampleCFClosedForm(t *testing.T) {
	// CF via naive-scale DV estimator == p/k + d'/r (the SampleCF closed
	// form) whenever the naive estimate is not clamped.
	profile := distinct.Profile{N: 10000, R: 100, D: 37, F: map[int64]int64{1: 30, 10: 7}}
	if err := profile.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := AnalyticDict(20, 4, profile, distinct.NaiveScale{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleCFDictClosedForm(20, 4, profile.D, profile.R)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("naive-scale CF %v != closed form %v", a, b)
	}
	if _, err := AnalyticDict(0, 4, profile, distinct.NaiveScale{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SampleCFDictClosedForm(20, 4, 5, 0); err == nil {
		t.Fatal("r=0 accepted")
	}
}

func TestNSConfidenceInterval(t *testing.T) {
	lo, hi := NSConfidenceInterval(0.5, 10000, 2)
	if math.Abs((hi-lo)-2*2*0.005) > 1e-12 {
		t.Fatalf("interval [%v,%v] wrong width", lo, hi)
	}
	lo, hi = NSConfidenceInterval(0.001, 100, 2)
	if lo != 0 {
		t.Fatalf("lower clamp failed: %v", lo)
	}
	lo, hi = NSConfidenceInterval(0.999, 100, 2)
	if hi != 1 {
		t.Fatalf("upper clamp failed: %v", hi)
	}
	_ = lo
}
