package core

import (
	"bytes"
	"testing"

	"samplecf/internal/sampling"
)

// boundarySource wraps a RowSource with a canned IndexKeyBoundaries answer,
// standing in for a table that maintains a matching index.
type boundarySource struct {
	sampling.RowSource
	bounds [][]byte
	asked  int
}

func (b *boundarySource) IndexKeyBoundaries(keyCols []string, strata int) ([][]byte, bool) {
	b.asked = strata
	return b.bounds, true
}

// TestStratifiedSingleStratumMatchesUnstratified pins the degenerate
// contract on the fixed-size path: Strata=1 must reproduce the unstratified
// estimate byte-for-byte — same draws, same sorted arena, same compressed
// pages — for both CI families of codec.
func TestStratifiedSingleStratumMatchesUnstratified(t *testing.T) {
	tab := adaptiveTable(t, "zipf", 10000, 11)
	for _, codec := range []string{"nullsuppression", "rle", "pagedict+ns"} {
		for _, seed := range []uint64{1, 7} {
			opts := Options{SampleRows: 600, Codec: mustCodec(t, codec), Seed: seed}
			plain, err := SampleCF(tab, tab.Schema(), opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Strata = 1
			strat, err := SampleCF(tab, tab.Schema(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if plain.CF != strat.CF ||
				plain.SampleRows != strat.SampleRows ||
				plain.SampleDistinct != strat.SampleDistinct ||
				plain.Result.CompressedBytes != strat.Result.CompressedBytes ||
				plain.Result.UncompressedBytes != strat.Result.UncompressedBytes {
				t.Errorf("%s seed %d: strata=1 (CF %v, r %d, d %d, %d/%d bytes) != unstratified (CF %v, r %d, d %d, %d/%d bytes)",
					codec, seed,
					strat.CF, strat.SampleRows, strat.SampleDistinct,
					strat.Result.CompressedBytes, strat.Result.UncompressedBytes,
					plain.CF, plain.SampleRows, plain.SampleDistinct,
					plain.Result.CompressedBytes, plain.Result.UncompressedBytes)
			}
		}
	}
}

// TestStratifiedAdaptiveSingleStratumMatchesUnstratified pins the same
// contract on the precision-targeted path for bootstrap-CI codecs: a single
// identity stratum replays the unstratified loop exactly — same round
// streams, same bootstrap seeds, same doubling schedule — so every reported
// field coincides. (Theorem-1 codecs are exempt: the unstratified loop
// jumps straight to the bound-implied r while the stratified loop doubles,
// an intentional schedule difference.)
func TestStratifiedAdaptiveSingleStratumMatchesUnstratified(t *testing.T) {
	tab := adaptiveTable(t, "zipf", 20000, 3)
	opts := Options{Codec: mustCodec(t, "rle"), Seed: 3}
	target := Precision{TargetError: 0.03}
	plain, err := SampleCFAdaptive(tab, tab.Schema(), opts, target)
	if err != nil {
		t.Fatal(err)
	}
	opts.Strata = 1
	strat, err := SampleCFAdaptive(tab, tab.Schema(), opts, target)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Estimate.CF != strat.Estimate.CF ||
		plain.Estimate.SampleRows != strat.Estimate.SampleRows ||
		plain.AchievedError != strat.AchievedError ||
		plain.Rounds != strat.Rounds ||
		plain.Converged != strat.Converged {
		t.Errorf("strata=1 adaptive (CF %v ± %v, r %d, rounds %d) != unstratified (CF %v ± %v, r %d, rounds %d)",
			strat.Estimate.CF, strat.AchievedError, strat.Estimate.SampleRows, strat.Rounds,
			plain.Estimate.CF, plain.AchievedError, plain.Estimate.SampleRows, plain.Rounds)
	}
}

// TestStratifiedProportionalCINoWorseOnUniform is the no-harm property: on
// a uniform table there is no between-strata variance to remove, so
// stratified estimation at proportional round-0 allocation must reach the
// same precision target without pathological extra cost, for every strata
// count and seed in the suite.
func TestStratifiedProportionalCINoWorseOnUniform(t *testing.T) {
	tab := adaptiveTable(t, "uniform", 20000, 17)
	const targetErr = 0.04
	for _, codec := range []string{"nullsuppression", "rle"} {
		for _, seed := range []uint64{1, 5} {
			base, err := SampleCFAdaptive(tab, tab.Schema(),
				Options{Codec: mustCodec(t, codec), Seed: seed},
				Precision{TargetError: targetErr})
			if err != nil {
				t.Fatal(err)
			}
			if !base.Converged {
				t.Fatalf("%s seed %d: uniform path did not converge", codec, seed)
			}
			for _, strata := range []int{1, 2, 4, 8} {
				res, err := SampleCFAdaptive(tab, tab.Schema(),
					Options{Codec: mustCodec(t, codec), Seed: seed, Strata: strata},
					Precision{TargetError: targetErr})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Errorf("%s seed %d strata %d: did not converge", codec, seed, strata)
					continue
				}
				if res.AchievedError > targetErr {
					t.Errorf("%s seed %d strata %d: achieved %v > target %v",
						codec, seed, strata, res.AchievedError, targetErr)
				}
				// Doubling granularity and per-stratum floors allow some
				// overshoot, but proportional stratification must not blow
				// up the row budget on data it cannot help.
				if lim := 3 * base.Estimate.SampleRows; res.Estimate.SampleRows > lim {
					t.Errorf("%s seed %d strata %d: sampled %d rows, uniform needed %d",
						codec, seed, strata, res.Estimate.SampleRows, base.Estimate.SampleRows)
				}
			}
		}
	}
}

// TestStratumBoundariesPrefersIndex checks resolution order: an index-backed
// source answers boundary requests without any pilot draw, and the pilot
// fallback produces strictly ascending cut points.
func TestStratumBoundariesPrefersIndex(t *testing.T) {
	tab := adaptiveTable(t, "uniform", 4000, 23)
	canned := [][]byte{append([]byte("m"), make([]byte, 19)...)}
	src := &boundarySource{RowSource: tab, bounds: canned}
	got, err := StratumBoundaries(src, tab.Schema(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if src.asked != 4 {
		t.Fatalf("index asked for %d strata, want 4", src.asked)
	}
	if len(got) != 1 || !bytes.Equal(got[0], canned[0]) {
		t.Fatalf("index boundaries not used: %q", got)
	}
	// Pilot fallback: plain table, ascending bounds, seed-independent.
	for _, strata := range []int{2, 4, 8} {
		b1, err := StratumBoundaries(tab, tab.Schema(), nil, strata)
		if err != nil {
			t.Fatal(err)
		}
		if len(b1) == 0 || len(b1) > strata-1 {
			t.Fatalf("strata %d: got %d pilot boundaries", strata, len(b1))
		}
		for i := 1; i < len(b1); i++ {
			if bytes.Compare(b1[i-1], b1[i]) >= 0 {
				t.Fatalf("strata %d: pilot boundaries not ascending", strata)
			}
		}
		b2, err := StratumBoundaries(tab, tab.Schema(), nil, strata)
		if err != nil {
			t.Fatal(err)
		}
		if len(b1) != len(b2) || !bytes.Equal(bytes.Join(b1, nil), bytes.Join(b2, nil)) {
			t.Fatalf("strata %d: pilot boundaries not deterministic", strata)
		}
	}
	// Strata ≤ 1: no boundaries, no pilot.
	if b, err := StratumBoundaries(tab, tab.Schema(), nil, 1); err != nil || len(b) != 0 {
		t.Fatalf("strata=1: bounds=%v err=%v", b, err)
	}
}

// TestStratifyTablePartitions checks the directory covers the table exactly
// and weights derived from it sum to one.
func TestStratifyTablePartitions(t *testing.T) {
	tab := adaptiveTable(t, "zipf", 6000, 29)
	bounds, err := StratumBoundaries(tab, tab.Schema(), nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := StratifyTable(tab, tab.Schema(), nil, bounds)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range dir.Counts() {
		total += c
	}
	if total != tab.NumRows() {
		t.Fatalf("directory covers %d of %d rows", total, tab.NumRows())
	}
}

// TestEquiDepthFromKeysUnsortedInput checks key samples need no pre-sort
// and the input survives unmutated.
func TestEquiDepthFromKeysUnsortedInput(t *testing.T) {
	keys := [][]byte{{9}, {1}, {5}, {3}, {7}, {2}, {8}, {4}, {6}, {0}}
	orig := make([]string, len(keys))
	for i, k := range keys {
		orig[i] = string(k)
	}
	bounds := EquiDepthFromKeys(keys, 5)
	if len(bounds) != 4 {
		t.Fatalf("got %d boundaries, want 4", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bytes.Compare(bounds[i-1], bounds[i]) >= 0 {
			t.Fatal("boundaries not ascending")
		}
	}
	for i, k := range keys {
		if string(k) != orig[i] {
			t.Fatal("input keys mutated")
		}
	}
}
