package core

import (
	"fmt"

	"samplecf/internal/distinct"
	"samplecf/internal/value"
)

// AnalyticNS computes the paper's closed-form NS estimate from a sample:
// CF'_NS = Σ_sample (ℓⱼ + h) / (r·k), generalized to multi-column schemas by
// summing per-column contributions over the row width. It is the analytical
// twin of running SampleCF with the NS codec — Theorem 1 is about this
// quantity.
func AnalyticNS(keySchema *value.Schema, sample []value.Row) (float64, error) {
	if len(sample) == 0 {
		return 0, fmt.Errorf("core: empty sample")
	}
	var sum float64
	for _, row := range sample {
		if err := value.ValidateRow(keySchema, row); err != nil {
			return 0, err
		}
		for c := 0; c < keySchema.NumColumns(); c++ {
			t := keySchema.Column(c).Type
			l := value.NullSuppressedLen(t, row[c])
			sum += float64(l) + float64(lenHeaderBytes(t.FixedWidth()))
		}
	}
	return sum / (float64(len(sample)) * float64(keySchema.RowWidth())), nil
}

// lenHeaderBytes is the paper's h for a column of width k.
func lenHeaderBytes(k int) int {
	if k < 1<<8 {
		return 1
	}
	return 2
}

// AnalyticDict computes the simplified-model dictionary estimate
// CF'_D = p/k + d̂/n, where d̂ comes from any distinct-value estimator over
// the sample profile. With distinct.NaiveScale this is EXACTLY what
// SampleCF's global-dictionary run converges to (d̂ = d'·n/r ⇒
// d̂/n = d'/r); with GEE/Chao/Shlosser it is the baseline family of
// experiment E8.
func AnalyticDict(k, p int, profile distinct.Profile, est distinct.Estimator) (float64, error) {
	if k <= 0 || p <= 0 {
		return 0, fmt.Errorf("core: invalid k=%d p=%d", k, p)
	}
	if profile.N <= 0 {
		return 0, fmt.Errorf("core: profile has no table size")
	}
	dHat := est.Estimate(profile)
	return float64(p)/float64(k) + dHat/float64(profile.N), nil
}

// SampleCFDictClosedForm is the paper's expression for what SampleCF
// returns under the simplified dictionary model: CF'_D = p/k + d'/r.
func SampleCFDictClosedForm(k, p int, dPrime, r int64) (float64, error) {
	if k <= 0 || p <= 0 || r <= 0 {
		return 0, fmt.Errorf("core: invalid k=%d p=%d r=%d", k, p, r)
	}
	return float64(p)/float64(k) + float64(dPrime)/float64(r), nil
}
