// Package core implements the paper's contribution: the SampleCF estimator
// (Fig. 2) for the compression fraction of an index, its analytical
// counterparts, and the theorem-level accuracy bounds (Theorems 1-3,
// Example 1, Table II).
//
// SampleCF(T, f, S, C):
//  1. T' = uniform random sample of f·n rows of T (with replacement);
//  2. build index I'(S) on T';
//  3. compress I' using C;
//  4. return the compression fraction of I' as the estimate.
//
// The implementation is codec-agnostic by construction — the codec is a
// closed box invoked through the compress.Codec interface — which is the
// property the paper identifies as the estimator's main practical virtue.
package core

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"time"

	"samplecf/internal/btree"
	"samplecf/internal/catalog"
	"samplecf/internal/compress"
	"samplecf/internal/distinct"
	"samplecf/internal/faults"
	"samplecf/internal/heap"
	"samplecf/internal/page"
	"samplecf/internal/rng"
	"samplecf/internal/sampling"
	"samplecf/internal/sortkeys"
	"samplecf/internal/value"
	"samplecf/internal/workgroup"
)

// Method selects the sampling scheme for step 1.
type Method int

const (
	// MethodUniformWR is the paper's model: uniform with replacement.
	MethodUniformWR Method = iota
	// MethodUniformWOR samples without replacement (ablation).
	MethodUniformWOR
	// MethodBlock samples whole pages (what commercial systems do;
	// the paper's future work). Requires a PageSource.
	MethodBlock
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodUniformWR:
		return "uniform-wr"
	case MethodUniformWOR:
		return "uniform-wor"
	case MethodBlock:
		return "block"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configure one SampleCF run.
type Options struct {
	// Fraction is the paper's f; the sample size is r = ⌈f·n⌉.
	// Ignored when SampleRows > 0.
	Fraction float64
	// SampleRows fixes r directly.
	SampleRows int64
	// Codec is the compression technique C. Required.
	Codec compress.Codec
	// Method selects the sampling scheme (default uniform WR).
	Method Method
	// Pages is the PageSource for MethodBlock.
	Pages sampling.PageSource
	// KeyColumns is the index column sequence S; empty means all columns.
	KeyColumns []string
	// Seed makes the run reproducible.
	Seed uint64
	// BuildIndex, when true, materializes a real B+-tree on the sample
	// (Fig. 2 step 2 taken literally) and compresses its leaf pages.
	// When false (default), the sample is sorted and chunked into
	// equivalent pages without the tree — same CF for per-record codecs,
	// orders of magnitude faster for large experiment sweeps.
	BuildIndex bool
	// PageSize is the index page size (default page.DefaultSize).
	PageSize int
	// FillFactor is the bulk-load leaf utilization (default 1.0).
	FillFactor float64
	// Strata selects stratified sampling: the key domain is cut into up to
	// Strata contiguous memcomparable-key ranges (index-assisted when the
	// source exposes IndexBoundarySource, pilot-based otherwise), each
	// range sampled by its own stream, and the per-stratum estimates
	// composed by stratified mean and variance. 0 disables; 1 is the
	// degenerate single stratum, byte-identical to the unstratified draw.
	// Requires MethodUniformWR.
	Strata int
}

// withDefaults normalizes zero-valued options.
func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = page.DefaultSize
	}
	if o.FillFactor == 0 {
		o.FillFactor = 1.0
	}
	return o
}

// Validate rejects option combinations that would otherwise produce
// silent nonsense estimates (a Fraction above 1 oversamples, a negative
// one underflows the sample size to zero, a FillFactor outside (0,1]
// corrupts the bulk-load math). Zero values that withDefaults fills in
// (PageSize, FillFactor) are accepted.
func (o Options) Validate() error {
	switch {
	case o.Fraction < 0:
		return fmt.Errorf("core: Options.Fraction %v is negative", o.Fraction)
	case o.Fraction > 1:
		return fmt.Errorf("core: Options.Fraction %v exceeds 1 (the sample cannot outgrow the table)", o.Fraction)
	case o.SampleRows < 0:
		return fmt.Errorf("core: Options.SampleRows %d is negative", o.SampleRows)
	case o.PageSize < 0:
		return fmt.Errorf("core: Options.PageSize %d is negative", o.PageSize)
	case o.FillFactor != 0 && (o.FillFactor <= 0 || o.FillFactor > 1):
		return fmt.Errorf("core: Options.FillFactor %v outside (0,1]", o.FillFactor)
	case o.Strata < 0:
		return fmt.Errorf("core: Options.Strata %d is negative", o.Strata)
	case o.Strata > 0 && o.Method != MethodUniformWR:
		return fmt.Errorf("core: stratified sampling supports only uniform WR (method %v)", o.Method)
	}
	return nil
}

// Estimate is the outcome of one SampleCF run.
type Estimate struct {
	// CF is the estimated compression fraction CF'.
	CF float64
	// SampleRows is the realized r (block sampling makes it data-dependent).
	SampleRows int64
	// SampleDistinct is d': distinct index keys in the sample.
	SampleDistinct int64
	// Profile is the sample's frequency-of-frequency profile, reusable by
	// analytical estimators without re-sampling.
	Profile distinct.Profile
	// Result carries the underlying compression measurement.
	Result compress.Result
	// SampleDuration, BuildDuration and CompressDuration break down cost.
	SampleDuration   time.Duration
	BuildDuration    time.Duration
	CompressDuration time.Duration
}

// SampleCF runs the estimator of Fig. 2 against src.
func SampleCF(src sampling.RowSource, schema *value.Schema, opts Options) (Estimate, error) {
	if err := opts.Validate(); err != nil {
		return Estimate{}, err
	}
	opts = opts.withDefaults()
	if opts.Codec == nil {
		return Estimate{}, fmt.Errorf("core: Options.Codec is required")
	}
	keySchema, project, err := keyProjection(schema, opts.KeyColumns)
	if err != nil {
		return Estimate{}, err
	}
	n := src.NumRows()
	if n == 0 {
		return Estimate{}, fmt.Errorf("core: source table is empty")
	}
	r := opts.SampleRows
	if r <= 0 {
		r = sampling.SampleSize(n, opts.Fraction)
	}
	if r <= 0 {
		return Estimate{}, fmt.Errorf("core: sample size is zero (fraction %v)", opts.Fraction)
	}
	if opts.Strata > 0 {
		return sampleCFStratified(src, schema, opts, r)
	}

	g := rng.New(opts.Seed)
	start := time.Now()
	var rows []value.Row
	switch opts.Method {
	case MethodUniformWR:
		rows, err = sampling.UniformWR(src, r, g)
	case MethodUniformWOR:
		rows, err = sampling.UniformWOR(src, r, g)
	case MethodBlock:
		if opts.Pages == nil {
			return Estimate{}, fmt.Errorf("core: block sampling requires Options.Pages")
		}
		// Ceil, not round-to-nearest: a tiny sampling fraction must still
		// draw every page the requested rows span, never truncate toward 0
		// and lean on the clamp below.
		pagesWanted := int(math.Ceil(float64(opts.Pages.NumPages()) * float64(r) / float64(n)))
		if pagesWanted < 1 {
			pagesWanted = 1
		}
		if pagesWanted > opts.Pages.NumPages() {
			pagesWanted = opts.Pages.NumPages()
		}
		rows, err = sampling.BlockSample(opts.Pages, pagesWanted, g)
	default:
		return Estimate{}, fmt.Errorf("core: unknown sampling method %v", opts.Method)
	}
	if err != nil {
		return Estimate{}, fmt.Errorf("core: sampling: %w", err)
	}
	sampleDur := time.Since(start)

	est, err := estimateFromSample(rows, n, keySchema, project, opts)
	if err != nil {
		return Estimate{}, err
	}
	est.SampleDuration = sampleDur
	return est, nil
}

// PreparedIndex is steps 2 of Fig. 2 factored out of the estimator: the
// sample's index records, arena-encoded and key-sorted, plus the frequency
// profile, independent of any codec. Preparing once and compressing many
// times is what lets a batch what-if request size every codec of an index
// from a single sample sort (see internal/engine).
//
// The layout is columnar: one value.RecordArena holds every record and key
// in two contiguous buffers, and `perm` is the key-sort permutation over
// arena row indices — the sort an index build performs, done with
// offset-based comparisons instead of pointer-chasing per-row slices. The
// frequency profile is kept in run-length form ([]distinct.FreqCount) and
// materialized into a map-backed distinct.Profile only when requested.
//
// A PreparedIndex (including its arena, which it may share with the sample
// that fed it) is immutable under Estimate and safe for concurrent Estimate
// calls. ExtendFromArena is the one mutation — the resumable-sample path —
// and must be serialized against everything else by the caller.
type PreparedIndex struct {
	keySchema *value.Schema
	ar        *value.RecordArena   // projected key rows, arena order
	perm      []int32              // key-sorted permutation over ar
	freqs     []distinct.FreqCount // run-length frequency-of-frequency
	n         int64                // table size the sample came from
	prepDur   time.Duration
	// owned reports the arena belongs to this PreparedIndex alone;
	// ExtendFromArena may append to an owned arena in place but must
	// copy-on-extend an arena shared with the sample that fed it.
	owned bool
}

// PrepareIndex encodes and key-sorts the sampled rows of a table of n rows
// for the index on keyCols (empty = all columns of schema).
func PrepareIndex(rows []value.Row, n int64, schema *value.Schema, keyCols []string) (*PreparedIndex, error) {
	keySchema, project, err := keyProjection(schema, keyCols)
	if err != nil {
		return nil, err
	}
	return prepareProjected(rows, n, keySchema, project)
}

// PrepareFromArena is PrepareIndex for an arena-encoded sample (the
// engine's batch path and maintained samples): the key columns are
// projected out of the sample arena by byte-range copies — or the sample
// arena is used as-is when keyCols covers the whole schema in order — so no
// intermediate []value.Row ever exists.
func PrepareFromArena(sample *value.RecordArena, n int64, keyCols []string) (*PreparedIndex, error) {
	schema := sample.Schema()
	keySchema, project, err := keyProjection(schema, keyCols)
	if err != nil {
		return nil, err
	}
	ar := sample
	owned := false
	if !identityProjection(project, schema.NumColumns()) {
		ar = value.NewRecordArena(keySchema, sample.Len())
		if err := sample.ProjectTo(ar, project); err != nil {
			return nil, fmt.Errorf("core: project sample arena: %w", err)
		}
		owned = true
	}
	p, err := prepareArena(ar, n, keySchema)
	if err != nil {
		return nil, err
	}
	p.owned = owned
	return p, nil
}

// ProjectSample projects a full-schema sample arena onto the index key
// columns (empty = all columns), returning the sample itself when the
// projection is the identity. This is the per-round projection step of
// resumable sampling: extension batches arrive under the table schema and
// are narrowed to the key schema by byte-range copies.
func ProjectSample(sample *value.RecordArena, keyCols []string) (*value.RecordArena, error) {
	schema := sample.Schema()
	keySchema, project, err := keyProjection(schema, keyCols)
	if err != nil {
		return nil, err
	}
	if identityProjection(project, schema.NumColumns()) {
		return sample, nil
	}
	out := value.NewRecordArena(keySchema, sample.Len())
	if err := sample.ProjectTo(out, project); err != nil {
		return nil, fmt.Errorf("core: project sample arena: %w", err)
	}
	return out, nil
}

// identityProjection reports whether project selects every column in order.
func identityProjection(project []int, nCols int) bool {
	if len(project) != nCols {
		return false
	}
	for i, p := range project {
		if p != i {
			return false
		}
	}
	return true
}

// prepareProjected is PrepareIndex after column resolution; project == nil
// means rows already hold exactly the key columns.
func prepareProjected(rows []value.Row, n int64, keySchema *value.Schema, project []int) (*PreparedIndex, error) {
	ar := value.NewRecordArena(keySchema, len(rows))
	krow := make(value.Row, keySchema.NumColumns())
	for _, row := range rows {
		if project != nil {
			for i, p := range project {
				krow[i] = row[p]
			}
		} else {
			copy(krow, row)
		}
		if err := ar.Append(krow); err != nil {
			return nil, fmt.Errorf("core: encode sample row: %w", err)
		}
	}
	p, err := prepareArena(ar, n, keySchema)
	if err != nil {
		return nil, err
	}
	p.owned = true
	return p, nil
}

// prepareArena runs the fused sort+profile pass over an encoded arena: one
// MSD radix sort of the key permutation that emits the run-length frequency
// profile as a by-product (internal/sortkeys), replacing the former
// comparison sort plus separate profiling pass.
func prepareArena(ar *value.RecordArena, n int64, keySchema *value.Schema) (*PreparedIndex, error) {
	buildStart := time.Now()
	perm := make([]int32, ar.Len())
	for i := range perm {
		perm[i] = int32(i)
	}
	freqs := sortkeys.SortProfile(ar.Keys(), ar.RowWidth(), perm)

	p := &PreparedIndex{
		keySchema: keySchema,
		ar:        ar,
		perm:      perm,
		freqs:     freqs,
		n:         n,
	}
	p.prepDur = time.Since(buildStart)
	return p, nil
}

// ExtendFromArena merges a batch of newly drawn rows (already projected to
// the index key schema) into the prepared index: the batch is appended to
// the arena, its permutation sorted alone, and the two sorted runs merged —
// the old rows are never re-sorted, so round k+1 of an adaptive loop costs
// O(extra·log extra + r) instead of O(r·log r). The run-length frequency
// profile is rebuilt from the merged permutation in the same pass budget.
//
// Extension is a mutation: it must not run concurrently with Estimate on
// the same PreparedIndex. A PreparedIndex that shares its arena with the
// sample that fed it (identity projection in PrepareFromArena) copies the
// arena on first extension, so the caller's sample arena is never touched.
func (p *PreparedIndex) ExtendFromArena(extra *value.RecordArena) error {
	if extra.Len() == 0 {
		return nil
	}
	if extra.RowWidth() != p.ar.RowWidth() {
		return fmt.Errorf("core: extension rows are %d bytes wide, prepared index requires %d",
			extra.RowWidth(), p.ar.RowWidth())
	}
	start := time.Now()
	if !p.owned {
		p.ar = p.ar.Clone()
		p.owned = true
	}
	old := p.ar.Len()
	if err := p.ar.AppendAll(extra); err != nil {
		return fmt.Errorf("core: extend sample arena: %w", err)
	}
	// Sort the new run alone, then merge with the (already sorted) old run.
	newPerm := make([]int32, extra.Len())
	for i := range newPerm {
		newPerm[i] = int32(old + i)
	}
	w := p.ar.RowWidth()
	keys := p.ar.Keys()
	sortkeys.Sort(keys, w, newPerm)
	merged := make([]int32, 0, old+extra.Len())
	i, j := 0, 0
	for i < len(p.perm) && j < len(newPerm) {
		a := int(p.perm[i]) * w
		b := int(newPerm[j]) * w
		if bytes.Compare(keys[a:a+w], keys[b:b+w]) <= 0 {
			merged = append(merged, p.perm[i])
			i++
		} else {
			merged = append(merged, newPerm[j])
			j++
		}
	}
	merged = append(merged, p.perm[i:]...)
	merged = append(merged, newPerm[j:]...)
	p.perm = merged
	p.freqs = sortkeys.ProfileSorted(keys, w, p.perm)
	p.prepDur += time.Since(start)
	return nil
}

// KeySchema returns the index key schema.
func (p *PreparedIndex) KeySchema() *value.Schema { return p.keySchema }

// PrepDuration returns the cumulative encode+sort+profile time spent
// building (and extending) this prepared index — the engine's PrepareNanos
// counter aggregates it across requests.
func (p *PreparedIndex) PrepDuration() time.Duration { return p.prepDur }

// SampleRows returns the realized sample size r.
func (p *PreparedIndex) SampleRows() int64 { return int64(p.ar.Len()) }

// SampleDistinct returns d', the number of distinct keys in the sample.
func (p *PreparedIndex) SampleDistinct() int64 {
	var d int64
	for _, fc := range p.freqs {
		d += fc.Num
	}
	return d
}

// Profile materializes the sample's frequency-of-frequency profile.
func (p *PreparedIndex) Profile() distinct.Profile {
	return distinct.ProfileFromFreqs(p.n, p.freqs)
}

// Estimate runs steps 3-4 of Fig. 2 — compress the prepared index with
// opts.Codec and report its CF. Safe to call concurrently with different
// codecs on the same PreparedIndex. Each call returns its own copy of the
// frequency profile, so callers may mutate it freely.
func (p *PreparedIndex) Estimate(opts Options) (Estimate, error) {
	if err := opts.Validate(); err != nil {
		return Estimate{}, err
	}
	opts = opts.withDefaults()
	if opts.Codec == nil {
		return Estimate{}, fmt.Errorf("core: Options.Codec is required")
	}
	profile := p.Profile()
	est := Estimate{
		SampleRows:     p.SampleRows(),
		SampleDistinct: profile.D,
		Profile:        profile,
		BuildDuration:  p.prepDur,
	}
	var res compress.Result
	var err error
	if opts.BuildIndex {
		// Literal Fig. 2: bulk-load a real B+-tree on the sample, then
		// compress its leaf pages.
		treeStart := time.Now()
		items := make([]btree.Item, len(p.perm))
		for i, pi := range p.perm {
			items[i] = btree.Item{Key: p.ar.Key(int(pi)), Payload: p.ar.Rec(int(pi))}
		}
		store := heap.NewMemStore(opts.PageSize)
		tree, err2 := btree.BulkLoadItems(store, items, opts.FillFactor)
		if err2 != nil {
			return Estimate{}, fmt.Errorf("core: build sample index: %w", err2)
		}
		est.BuildDuration += time.Since(treeStart)
		compressStart := time.Now()
		res, err = compress.MeasureTree(tree, p.keySchema, opts.Codec)
		est.CompressDuration = time.Since(compressStart)
	} else {
		compressStart := time.Now()
		rpp := compress.RowsPerPage(p.keySchema, opts.PageSize)
		res, err = compress.MeasureArena(p.keySchema, opts.Codec, p.ar, p.perm, rpp)
		est.CompressDuration = time.Since(compressStart)
	}
	if err != nil {
		return Estimate{}, fmt.Errorf("core: compress sample index: %w", err)
	}
	est.Result = res
	est.CF = res.CF()
	return est, nil
}

// estimateFromSample runs steps 2-4 of Fig. 2 on an already-drawn sample
// from a table of n rows.
func estimateFromSample(rows []value.Row, n int64, keySchema *value.Schema, project []int, opts Options) (Estimate, error) {
	p, err := prepareProjected(rows, n, keySchema, project)
	if err != nil {
		return Estimate{}, err
	}
	return p.Estimate(opts)
}

// keyProjection resolves the index column sequence S into a key schema and
// the positions of the key columns within full rows.
func keyProjection(schema *value.Schema, keyCols []string) (*value.Schema, []int, error) {
	if len(keyCols) == 0 {
		idx := make([]int, schema.NumColumns())
		for i := range idx {
			idx[i] = i
		}
		return schema, idx, nil
	}
	keySchema, err := schema.Project(keyCols...)
	if err != nil {
		return nil, nil, err
	}
	idx := make([]int, len(keyCols))
	for i, name := range keyCols {
		pos, ok := schema.ColumnIndex(name)
		if !ok {
			return nil, nil, fmt.Errorf("core: no column %q", name)
		}
		idx[i] = pos
	}
	return keySchema, idx, nil
}

// projectRow extracts the key columns of a row.
func projectRow(row value.Row, idx []int) value.Row {
	out := make(value.Row, len(idx))
	for i, p := range idx {
		out[i] = row[p]
	}
	return out
}

// RowScanner is the full-iteration table shape TrueCF consumes. Both
// workload.Table and workload.VirtualTable implement it.
type RowScanner interface {
	Schema() *value.Schema
	NumRows() int64
	Scan(fn func(i int64, row value.Row) error) error
}

// ShardScanner is the partitioned-table shape TrueCF exploits for
// shard-parallel ground-truth scans. It is structural (core cannot import
// the storage layer): db.ShardedTable satisfies it. ShardScan(s, fn) must
// iterate only shard s with shard-local indices starting at 0, and the
// per-shard scans must be safe to run concurrently — each shard owns its
// storage and lock.
type ShardScanner interface {
	RowScanner
	NumShards() int
	ShardRows(s int) int64
	ShardScan(s int, fn func(i int64, row value.Row) error) error
}

// trueCFShardRows is the minimum rows per scan shard: below this the
// goroutine handoff costs more than the encode it parallelizes.
const trueCFShardRows = 16384

// TrueCF computes the exact compression fraction of the index I(S) on the
// FULL table: the ground truth SampleCF estimates, obtained the expensive
// way the paper's introduction warns about (build + compress everything).
//
// The computation is sharded across the same bounded worker group as the
// rest of the hot path (≤ min(GOMAXPROCS, workgroup.MaxWorkers)): sources
// that offer whole-scan stability — directly via sampling.StableRowSource
// (frozen rows and concurrency-safe Row, as materialized and virtual
// workload tables are) or indirectly via catalog.SnapshotProvider (a live
// db table's pinned copy-on-write snapshot) — have their scan+encode
// partitioned into contiguous row ranges filled in parallel, the key sort
// partitions into leading-byte buckets sorted and profiled independently
// (internal/sortkeys), and page compression fans out per page
// (compress.MeasureArena). Every partition is order-preserving, so the
// result is byte-identical to the sequential scan→sort→measure.
func TrueCF(src RowScanner, keyCols []string, codec compress.Codec, pageSize int) (compress.Result, error) {
	return trueCF(src, keyCols, codec, pageSize, 0)
}

// trueCF is TrueCF with the worker-group width pinned (tests prove
// width-independence, benchmarks compare widths): workers ≤ 0 lets each
// stage size its own fan-out — the scan by rows per shard, the sort by
// bucket count — since one shared width would undersize whichever stage
// has more parallelism available; workers == 1 runs fully sequentially.
func trueCF(src RowScanner, keyCols []string, codec compress.Codec, pageSize, workers int) (res compress.Result, err error) {
	// Ground-truth scans run over caller-supplied scanners and codecs; a
	// panic in either (or re-raised from a sort bucket goroutine) degrades
	// to this measurement's error, never a process crash.
	defer func() {
		if r := recover(); r != nil {
			res, err = compress.Result{}, fmt.Errorf("core: true CF: %w", faults.AsError(r))
		}
	}()
	if pageSize == 0 {
		pageSize = page.DefaultSize
	}
	schema := src.Schema()
	keySchema, project, err := keyProjection(schema, keyCols)
	if err != nil {
		return compress.Result{}, err
	}
	scanWorkers := workers
	if scanWorkers <= 0 {
		units := int(src.NumRows()) / trueCFShardRows
		if ss, ok := src.(ShardScanner); ok && ss.NumShards() > units {
			// Partitioned sources parallelize per shard regardless of row
			// count: each shard scan is independent lock-wise.
			units = ss.NumShards()
		}
		scanWorkers = workgroup.Limit(units)
	}
	ar := value.NewRecordArena(keySchema, int(src.NumRows()))
	if err := scanIntoArena(src, ar, project, scanWorkers); err != nil {
		return compress.Result{}, fmt.Errorf("core: true CF scan: %w", err)
	}
	perm := make([]int32, ar.Len())
	for i := range perm {
		perm[i] = int32(i)
	}
	if workers <= 0 {
		sortkeys.Sort(ar.Keys(), ar.RowWidth(), perm)
	} else {
		sortkeys.SortWorkers(ar.Keys(), ar.RowWidth(), perm, workers)
	}
	return compress.MeasureArena(keySchema, codec, ar, perm, compress.RowsPerPage(keySchema, pageSize))
}

// scanIntoArena fills ar with the key projection of every row of src, row i
// of the table at arena slot i. Sources with a scan-stable view shard the
// scan across the worker group — the arena is pre-grown and each worker
// encodes a contiguous row range into its disjoint slots, preserving scan
// order exactly — with a sequential Scan fallback for everything else. The
// gate is whole-scan stability, not bare Row access: a mutable table's Row
// can be individually lock-safe while writers commit between calls. Two
// routes qualify: the source itself is a sampling.StableRowSource (frozen
// workload/virtual tables), or it publishes copy-on-write snapshots
// (catalog.SnapshotProvider) — then the pinned snapshot is the stable view
// and the scan runs against it without ever touching the table's lock. A
// snapshot that disagrees with the row count the arena was sized for means
// a mutation slipped between the two reads; those fall back to Scan.
func scanIntoArena(src RowScanner, ar *value.RecordArena, project []int, workers int) error {
	n := int(src.NumRows())
	if ss, ok := src.(ShardScanner); ok && workers > 1 && ss.NumShards() > 1 {
		return scanShardsIntoArena(ss, ar, project, workers)
	}
	rs, ok := src.(sampling.StableRowSource)
	if !ok && workers > 1 {
		if sp, sok := src.(catalog.SnapshotProvider); sok {
			if view, _, err := sp.SnapshotRows(); err == nil && view.NumRows() == int64(n) {
				rs, ok = view, true
			}
		}
	}
	if !ok || workers <= 1 {
		krow := make(value.Row, len(project))
		return src.Scan(func(_ int64, row value.Row) error {
			for i, p := range project {
				krow[i] = row[p]
			}
			return ar.Append(krow)
		})
	}
	ar.Grow(n)
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer workgroup.Recover(&errs[w])
			krow := make(value.Row, len(project))
			for i := lo; i < hi; i++ {
				row, err := rs.Row(int64(i))
				if err != nil {
					errs[w] = err
					return
				}
				for c, p := range project {
					krow[c] = row[p]
				}
				if err := ar.SetRow(i, krow); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// scanShardsIntoArena fills ar shard-parallel: shard s's rows land in the
// contiguous slot range starting at the prefix sum of earlier shards'
// counts, in shard-local scan order, so the result is byte-identical to
// the source's sequential Scan (which iterates shards in order). Each
// per-shard scan holds only that shard's lock; a row-count drift between
// the snapshot and a shard's scan means a concurrent mutation, reported as
// an error rather than a torn arena.
func scanShardsIntoArena(src ShardScanner, ar *value.RecordArena, project []int, workers int) error {
	ns := src.NumShards()
	counts := make([]int64, ns)
	offsets := make([]int64, ns)
	var total int64
	for s := 0; s < ns; s++ {
		counts[s] = src.ShardRows(s)
		offsets[s] = total
		total += counts[s]
	}
	ar.Grow(int(total))
	sem := workgroup.NewSem(workgroup.Limit(ns) - 1)
	if workers > 0 {
		sem = workgroup.NewSem(workgroup.Limit(min(workers, ns)) - 1)
	}
	errs := make([]error, ns)
	scanShard := func(s int) {
		krow := make(value.Row, len(project))
		seen := int64(0)
		err := src.ShardScan(s, func(i int64, row value.Row) error {
			if i >= counts[s] {
				return fmt.Errorf("core: shard %d grew past %d rows during scan", s, counts[s])
			}
			seen = i + 1
			for c, p := range project {
				krow[c] = row[p]
			}
			return ar.SetRow(int(offsets[s]+i), krow)
		})
		if err == nil && seen != counts[s] {
			err = fmt.Errorf("core: shard %d scanned %d of %d rows (concurrent mutation)", s, seen, counts[s])
		}
		errs[s] = err
	}
	var wg sync.WaitGroup
	for s := 0; s < ns; s++ {
		if sem.TryAcquire() {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				defer sem.Release()
				defer workgroup.Recover(&errs[s])
				scanShard(s)
			}(s)
		} else {
			scanShard(s)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
