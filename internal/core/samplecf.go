// Package core implements the paper's contribution: the SampleCF estimator
// (Fig. 2) for the compression fraction of an index, its analytical
// counterparts, and the theorem-level accuracy bounds (Theorems 1-3,
// Example 1, Table II).
//
// SampleCF(T, f, S, C):
//  1. T' = uniform random sample of f·n rows of T (with replacement);
//  2. build index I'(S) on T';
//  3. compress I' using C;
//  4. return the compression fraction of I' as the estimate.
//
// The implementation is codec-agnostic by construction — the codec is a
// closed box invoked through the compress.Codec interface — which is the
// property the paper identifies as the estimator's main practical virtue.
package core

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"samplecf/internal/btree"
	"samplecf/internal/compress"
	"samplecf/internal/distinct"
	"samplecf/internal/heap"
	"samplecf/internal/page"
	"samplecf/internal/rng"
	"samplecf/internal/sampling"
	"samplecf/internal/value"
)

// Method selects the sampling scheme for step 1.
type Method int

const (
	// MethodUniformWR is the paper's model: uniform with replacement.
	MethodUniformWR Method = iota
	// MethodUniformWOR samples without replacement (ablation).
	MethodUniformWOR
	// MethodBlock samples whole pages (what commercial systems do;
	// the paper's future work). Requires a PageSource.
	MethodBlock
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodUniformWR:
		return "uniform-wr"
	case MethodUniformWOR:
		return "uniform-wor"
	case MethodBlock:
		return "block"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configure one SampleCF run.
type Options struct {
	// Fraction is the paper's f; the sample size is r = ⌈f·n⌉.
	// Ignored when SampleRows > 0.
	Fraction float64
	// SampleRows fixes r directly.
	SampleRows int64
	// Codec is the compression technique C. Required.
	Codec compress.Codec
	// Method selects the sampling scheme (default uniform WR).
	Method Method
	// Pages is the PageSource for MethodBlock.
	Pages sampling.PageSource
	// KeyColumns is the index column sequence S; empty means all columns.
	KeyColumns []string
	// Seed makes the run reproducible.
	Seed uint64
	// BuildIndex, when true, materializes a real B+-tree on the sample
	// (Fig. 2 step 2 taken literally) and compresses its leaf pages.
	// When false (default), the sample is sorted and chunked into
	// equivalent pages without the tree — same CF for per-record codecs,
	// orders of magnitude faster for large experiment sweeps.
	BuildIndex bool
	// PageSize is the index page size (default page.DefaultSize).
	PageSize int
	// FillFactor is the bulk-load leaf utilization (default 1.0).
	FillFactor float64
}

// withDefaults normalizes zero-valued options.
func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = page.DefaultSize
	}
	if o.FillFactor == 0 {
		o.FillFactor = 1.0
	}
	return o
}

// Validate rejects option combinations that would otherwise produce
// silent nonsense estimates (a Fraction above 1 oversamples, a negative
// one underflows the sample size to zero, a FillFactor outside (0,1]
// corrupts the bulk-load math). Zero values that withDefaults fills in
// (PageSize, FillFactor) are accepted.
func (o Options) Validate() error {
	switch {
	case o.Fraction < 0:
		return fmt.Errorf("core: Options.Fraction %v is negative", o.Fraction)
	case o.Fraction > 1:
		return fmt.Errorf("core: Options.Fraction %v exceeds 1 (the sample cannot outgrow the table)", o.Fraction)
	case o.SampleRows < 0:
		return fmt.Errorf("core: Options.SampleRows %d is negative", o.SampleRows)
	case o.PageSize < 0:
		return fmt.Errorf("core: Options.PageSize %d is negative", o.PageSize)
	case o.FillFactor != 0 && (o.FillFactor <= 0 || o.FillFactor > 1):
		return fmt.Errorf("core: Options.FillFactor %v outside (0,1]", o.FillFactor)
	}
	return nil
}

// Estimate is the outcome of one SampleCF run.
type Estimate struct {
	// CF is the estimated compression fraction CF'.
	CF float64
	// SampleRows is the realized r (block sampling makes it data-dependent).
	SampleRows int64
	// SampleDistinct is d': distinct index keys in the sample.
	SampleDistinct int64
	// Profile is the sample's frequency-of-frequency profile, reusable by
	// analytical estimators without re-sampling.
	Profile distinct.Profile
	// Result carries the underlying compression measurement.
	Result compress.Result
	// SampleDuration, BuildDuration and CompressDuration break down cost.
	SampleDuration   time.Duration
	BuildDuration    time.Duration
	CompressDuration time.Duration
}

// SampleCF runs the estimator of Fig. 2 against src.
func SampleCF(src sampling.RowSource, schema *value.Schema, opts Options) (Estimate, error) {
	if err := opts.Validate(); err != nil {
		return Estimate{}, err
	}
	opts = opts.withDefaults()
	if opts.Codec == nil {
		return Estimate{}, fmt.Errorf("core: Options.Codec is required")
	}
	keySchema, project, err := keyProjection(schema, opts.KeyColumns)
	if err != nil {
		return Estimate{}, err
	}
	n := src.NumRows()
	if n == 0 {
		return Estimate{}, fmt.Errorf("core: source table is empty")
	}
	r := opts.SampleRows
	if r <= 0 {
		r = sampling.SampleSize(n, opts.Fraction)
	}
	if r <= 0 {
		return Estimate{}, fmt.Errorf("core: sample size is zero (fraction %v)", opts.Fraction)
	}

	g := rng.New(opts.Seed)
	start := time.Now()
	var rows []value.Row
	switch opts.Method {
	case MethodUniformWR:
		rows, err = sampling.UniformWR(src, r, g)
	case MethodUniformWOR:
		rows, err = sampling.UniformWOR(src, r, g)
	case MethodBlock:
		if opts.Pages == nil {
			return Estimate{}, fmt.Errorf("core: block sampling requires Options.Pages")
		}
		pagesWanted := int(float64(opts.Pages.NumPages())*float64(r)/float64(n) + 0.5)
		if pagesWanted < 1 {
			pagesWanted = 1
		}
		if pagesWanted > opts.Pages.NumPages() {
			pagesWanted = opts.Pages.NumPages()
		}
		rows, err = sampling.BlockSample(opts.Pages, pagesWanted, g)
	default:
		return Estimate{}, fmt.Errorf("core: unknown sampling method %v", opts.Method)
	}
	if err != nil {
		return Estimate{}, fmt.Errorf("core: sampling: %w", err)
	}
	sampleDur := time.Since(start)

	est, err := estimateFromSample(rows, n, keySchema, project, opts)
	if err != nil {
		return Estimate{}, err
	}
	est.SampleDuration = sampleDur
	return est, nil
}

// PreparedIndex is steps 2 of Fig. 2 factored out of the estimator: the
// sample's index records encoded and key-sorted, plus the frequency
// profile, independent of any codec. Preparing once and compressing many
// times is what lets a batch what-if request size every codec of an index
// from a single sample sort (see internal/engine). A PreparedIndex is
// immutable after construction and safe for concurrent Estimate calls.
type PreparedIndex struct {
	keySchema *value.Schema
	keys      [][]byte // sorted memcomparable keys
	recs      [][]byte // fixed-width records, same order
	profile   distinct.Profile
	prepDur   time.Duration
}

// PrepareIndex encodes and key-sorts the sampled rows of a table of n rows
// for the index on keyCols (empty = all columns of schema).
func PrepareIndex(rows []value.Row, n int64, schema *value.Schema, keyCols []string) (*PreparedIndex, error) {
	keySchema, project, err := keyProjection(schema, keyCols)
	if err != nil {
		return nil, err
	}
	return prepareProjected(rows, n, keySchema, project)
}

// prepareProjected is PrepareIndex after column resolution; project == nil
// means rows already hold exactly the key columns.
func prepareProjected(rows []value.Row, n int64, keySchema *value.Schema, project []int) (*PreparedIndex, error) {
	buildStart := time.Now()
	// Encode each sampled row's index record (fixed width) and search key
	// (memcomparable), then order by key — the sort an index build performs.
	type entry struct {
		key, rec []byte
	}
	entries := make([]entry, len(rows))
	for i, row := range rows {
		krow := row
		if project != nil {
			krow = projectRow(row, project)
		}
		rec, err := value.EncodeRecord(keySchema, krow, nil)
		if err != nil {
			return nil, fmt.Errorf("core: encode sample row: %w", err)
		}
		key, err := value.EncodeKey(keySchema, krow, nil)
		if err != nil {
			return nil, fmt.Errorf("core: encode sample key: %w", err)
		}
		entries[i] = entry{key: key, rec: rec}
	}
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].key, entries[j].key) < 0 })

	// d' and the frequency profile come from the sorted run in one pass.
	profile := distinct.Profile{N: n, F: make(map[int64]int64)}
	runLen := int64(0)
	for i := range entries {
		if i > 0 && !bytes.Equal(entries[i].key, entries[i-1].key) {
			profile.F[runLen]++
			profile.D++
			runLen = 0
		}
		runLen++
	}
	if len(entries) > 0 {
		profile.F[runLen]++
		profile.D++
	}
	profile.R = int64(len(entries))

	p := &PreparedIndex{
		keySchema: keySchema,
		keys:      make([][]byte, len(entries)),
		recs:      make([][]byte, len(entries)),
		profile:   profile,
	}
	for i, e := range entries {
		p.keys[i] = e.key
		p.recs[i] = e.rec
	}
	p.prepDur = time.Since(buildStart)
	return p, nil
}

// KeySchema returns the index key schema.
func (p *PreparedIndex) KeySchema() *value.Schema { return p.keySchema }

// SampleRows returns the realized sample size r.
func (p *PreparedIndex) SampleRows() int64 { return int64(len(p.recs)) }

// Profile returns the sample's frequency-of-frequency profile.
func (p *PreparedIndex) Profile() distinct.Profile { return p.profile }

// Estimate runs steps 3-4 of Fig. 2 — compress the prepared index with
// opts.Codec and report its CF. Safe to call concurrently with different
// codecs on the same PreparedIndex. Each call returns its own copy of the
// frequency profile, so callers may mutate it freely.
func (p *PreparedIndex) Estimate(opts Options) (Estimate, error) {
	if err := opts.Validate(); err != nil {
		return Estimate{}, err
	}
	opts = opts.withDefaults()
	if opts.Codec == nil {
		return Estimate{}, fmt.Errorf("core: Options.Codec is required")
	}
	est := Estimate{
		SampleRows:     p.SampleRows(),
		SampleDistinct: p.profile.D,
		Profile:        cloneProfile(p.profile),
		BuildDuration:  p.prepDur,
	}
	var res compress.Result
	var err error
	if opts.BuildIndex {
		// Literal Fig. 2: bulk-load a real B+-tree on the sample, then
		// compress its leaf pages.
		treeStart := time.Now()
		items := make([]btree.Item, len(p.recs))
		for i := range p.recs {
			items[i] = btree.Item{Key: p.keys[i], Payload: p.recs[i]}
		}
		store := heap.NewMemStore(opts.PageSize)
		tree, err2 := btree.BulkLoadItems(store, items, opts.FillFactor)
		if err2 != nil {
			return Estimate{}, fmt.Errorf("core: build sample index: %w", err2)
		}
		est.BuildDuration += time.Since(treeStart)
		compressStart := time.Now()
		res, err = compress.MeasureTree(tree, p.keySchema, opts.Codec)
		est.CompressDuration = time.Since(compressStart)
	} else {
		compressStart := time.Now()
		rpp := compress.RowsPerPage(p.keySchema, opts.PageSize)
		res, err = compress.MeasureRecords(p.keySchema, opts.Codec, p.recs, rpp)
		est.CompressDuration = time.Since(compressStart)
	}
	if err != nil {
		return Estimate{}, fmt.Errorf("core: compress sample index: %w", err)
	}
	est.Result = res
	est.CF = res.CF()
	return est, nil
}

// estimateFromSample runs steps 2-4 of Fig. 2 on an already-drawn sample
// from a table of n rows.
func estimateFromSample(rows []value.Row, n int64, keySchema *value.Schema, project []int, opts Options) (Estimate, error) {
	p, err := prepareProjected(rows, n, keySchema, project)
	if err != nil {
		return Estimate{}, err
	}
	return p.Estimate(opts)
}

// cloneProfile deep-copies the frequency-of-frequency map so shared
// PreparedIndex and cached estimates never alias caller-visible state.
func cloneProfile(p distinct.Profile) distinct.Profile {
	f := make(map[int64]int64, len(p.F))
	for k, v := range p.F {
		f[k] = v
	}
	p.F = f
	return p
}

// keyProjection resolves the index column sequence S into a key schema and
// the positions of the key columns within full rows.
func keyProjection(schema *value.Schema, keyCols []string) (*value.Schema, []int, error) {
	if len(keyCols) == 0 {
		idx := make([]int, schema.NumColumns())
		for i := range idx {
			idx[i] = i
		}
		return schema, idx, nil
	}
	keySchema, err := schema.Project(keyCols...)
	if err != nil {
		return nil, nil, err
	}
	idx := make([]int, len(keyCols))
	for i, name := range keyCols {
		pos, ok := schema.ColumnIndex(name)
		if !ok {
			return nil, nil, fmt.Errorf("core: no column %q", name)
		}
		idx[i] = pos
	}
	return keySchema, idx, nil
}

// projectRow extracts the key columns of a row.
func projectRow(row value.Row, idx []int) value.Row {
	out := make(value.Row, len(idx))
	for i, p := range idx {
		out[i] = row[p]
	}
	return out
}

// RowScanner is the full-iteration table shape TrueCF consumes. Both
// workload.Table and workload.VirtualTable implement it.
type RowScanner interface {
	Schema() *value.Schema
	NumRows() int64
	Scan(fn func(i int64, row value.Row) error) error
}

// TrueCF computes the exact compression fraction of the index I(S) on the
// FULL table: the ground truth SampleCF estimates, obtained the expensive
// way the paper's introduction warns about (build + compress everything).
func TrueCF(src RowScanner, keyCols []string, codec compress.Codec, pageSize int) (compress.Result, error) {
	if pageSize == 0 {
		pageSize = page.DefaultSize
	}
	schema := src.Schema()
	keySchema, project, err := keyProjection(schema, keyCols)
	if err != nil {
		return compress.Result{}, err
	}
	type entry struct {
		key, rec []byte
	}
	entries := make([]entry, 0, src.NumRows())
	err = src.Scan(func(_ int64, row value.Row) error {
		krow := projectRow(row, project)
		rec, err := value.EncodeRecord(keySchema, krow, nil)
		if err != nil {
			return err
		}
		key, err := value.EncodeKey(keySchema, krow, nil)
		if err != nil {
			return err
		}
		entries = append(entries, entry{key: key, rec: rec})
		return nil
	})
	if err != nil {
		return compress.Result{}, fmt.Errorf("core: true CF scan: %w", err)
	}
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].key, entries[j].key) < 0 })
	recs := make([][]byte, len(entries))
	for i, e := range entries {
		recs[i] = e.rec
	}
	return compress.MeasureRecords(keySchema, codec, recs, compress.RowsPerPage(keySchema, pageSize))
}
