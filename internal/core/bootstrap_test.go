package core

import (
	"math"
	"testing"

	"samplecf/internal/compress"
	"samplecf/internal/distrib"
	"samplecf/internal/workload"
)

func TestBootstrapValidation(t *testing.T) {
	tab := genTable(t, 1000, 50, distrib.NewUniformLen(2, 18), 1)
	codec := mustCodec(t, "nullsuppression")
	_, sample, err := SampleCFWithSample(tab, tab.Schema(), Options{
		Fraction: 0.1, Codec: codec, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bootstrap(sample, codec, 0, 5, 0.05, 1); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, err := Bootstrap(sample, codec, 0, 50, 1.5, 1); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := Bootstrap(nil, codec, 0, 50, 0.05, 1); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestSampleCFWithSampleConsistent(t *testing.T) {
	// Same options ⇒ SampleCFWithSample and SampleCF agree exactly.
	tab := genTable(t, 5000, 200, distrib.NewUniformLen(2, 18), 3)
	opts := Options{Fraction: 0.05, Codec: mustCodec(t, "nullsuppression"), Seed: 11}
	a, sample, err := SampleCFWithSample(tab, tab.Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleCF(tab, tab.Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.CF != b.CF || a.SampleDistinct != b.SampleDistinct {
		t.Fatalf("paths disagree: %v vs %v", a.CF, b.CF)
	}
	if int64(sample.Len()) != a.SampleRows {
		t.Fatalf("returned %d rows, estimate says %d", sample.Len(), a.SampleRows)
	}
	if _, _, err := SampleCFWithSample(tab, tab.Schema(), Options{
		Fraction: 0.05, Codec: mustCodec(t, "nullsuppression"), Method: MethodBlock,
	}); err == nil {
		t.Error("non-WR method accepted")
	}
}

func TestBootstrapCICoversTruthNS(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// The 95% bootstrap interval should contain the true CF in most of 20
	// independent estimations (binomial: ≥ 15 is overwhelmingly likely
	// given per-trial coverage ≈ 0.95).
	tab := genTable(t, 30000, 1000, distrib.NewUniformLen(0, 20), 7)
	codec := mustCodec(t, "nullsuppression")
	truth, err := TrueCF(tab, nil, codec, 0)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		_, sample, err := SampleCFWithSample(tab, tab.Schema(), Options{
			Fraction: 0.02, Codec: codec, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ci, err := Bootstrap(sample, codec, 0, 200, 0.05, seed+1000)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Lo > ci.Hi {
			t.Fatalf("inverted interval [%v,%v]", ci.Lo, ci.Hi)
		}
		if truth.CF() >= ci.Lo && truth.CF() <= ci.Hi {
			covered++
		}
	}
	if covered < 15 {
		t.Fatalf("95%% bootstrap CI covered truth only %d/%d times", covered, trials)
	}
}

func TestBootstrapSDMatchesTheorem1Scale(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// The bootstrap SD for NS should approximate the exact σ of Theorem 1 —
	// and respect the distribution-free bound.
	tab := genTable(t, 30000, 5000, distrib.NewUniformLen(0, 20), 9)
	codec := mustCodec(t, "nullsuppression")
	st, err := workload.ComputeStats(tab)
	if err != nil {
		t.Fatal(err)
	}
	const r = 600
	_, sample, err := SampleCFWithSample(tab, tab.Schema(), Options{
		SampleRows: r, Codec: codec, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ci, err := Bootstrap(sample, codec, 0, 300, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	exact := Theorem1StdDevExact(st[0].VarNS(), 20, r)
	if ci.SD > 1.6*exact || ci.SD < exact/1.6 {
		t.Fatalf("bootstrap SD %v far from exact σ %v", ci.SD, exact)
	}
	if ci.SD > Theorem1StdDevBound(r)*1.2 {
		t.Fatalf("bootstrap SD %v exceeds Theorem 1 bound %v", ci.SD, Theorem1StdDevBound(r))
	}
}

func TestBootstrapDictCollapse(t *testing.T) {
	// Pins the documented caveat: for cardinality-sensitive codecs the
	// naive bootstrap collapses d' by ≈ (1-1/e), so resampled CF
	// systematically undershoots the point estimate.
	tab := genTable(t, 20000, 10000, distrib.NewConstantLen(10), 13)
	codec := compress.GlobalDict{PointerBytes: 4}
	est, sample, err := SampleCFWithSample(tab, tab.Schema(), Options{
		Fraction: 0.02, Codec: codec, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	ci, err := Bootstrap(sample, codec, 0, 150, 0.05, 22)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ci.SD) || ci.SD <= 0 || ci.Lo > ci.Hi {
		t.Fatalf("malformed interval %+v", ci)
	}
	if est.CF <= ci.Hi {
		t.Fatalf("expected collapse: point estimate %v should exceed interval hi %v", est.CF, ci.Hi)
	}
	// Quantify: with a nearly-all-distinct sample, the bootstrap mean CF
	// should be ≈ p/k + (1-1/e)·d'/r (k = 20 here: CHAR(20), p = 4).
	r := float64(est.SampleRows)
	predicted := 4.0/20.0 + (1-1/math.E)*float64(est.SampleDistinct)/r
	mid := (ci.Lo + ci.Hi) / 2
	if math.Abs(mid-predicted) > 0.08 {
		t.Fatalf("bootstrap center %v far from predicted collapse %v", mid, predicted)
	}
}
