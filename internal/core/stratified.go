// Stratified estimation: SampleCF with the key domain cut into contiguous
// memcomparable-key ranges, each range sampled by its own stream. Uniform
// sampling of a skewed table spends most rows re-observing the hot part of
// the domain; stratifying removes the between-strata variance component,
// and Neyman allocation (n_h ∝ N_h·σ_h) spends the refinement rows where
// the residual within-stratum spread is. The mechanics live in
// internal/sampling (boundaries, directory, per-stratum resumable streams);
// this file owns composition — weights, merged estimates, the composed
// confidence interval z·√(Σ w_h²σ_h²) — and the precision-targeted loop
// that extends only the strata whose variance contribution dominates, the
// same refinement discipline the engine's shard scatter uses.
//
// A note on what stratification can and cannot buy: Theorem 1's bound is
// data-independent — composed across strata at proportional allocation it
// reproduces 1/(2√R) exactly — so null-suppression codecs see no CI
// improvement from strata. The win is for bootstrap-CI codecs on skewed
// data, where within-stratum samples are more homogeneous than the table.
package core

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"samplecf/internal/rng"
	"samplecf/internal/sampling"
	"samplecf/internal/stats"
	"samplecf/internal/value"
	"samplecf/internal/workgroup"
)

// IndexBoundarySource is the index-assisted stratification capability,
// structural so core never imports the storage layer (catalog declares the
// canonical copy; db.Table implements it): an existing ordered index over
// the key columns yields equi-depth cut points from a walk of its separator
// keys, with no table scan.
type IndexBoundarySource interface {
	IndexKeyBoundaries(keyCols []string, strata int) (bounds [][]byte, ok bool)
}

// pilotSeed fixes the boundary pilot's draw stream. Boundaries must depend
// only on (table, key columns, strata count) — never the request seed — so
// repeated requests agree on one partition and directory caches need no
// seed in their key.
const pilotSeed uint64 = 0x70696c6f74 // "pilot"

// pilotRows is the boundary pilot's sample size: enough that the empirical
// key quantiles are stable at the handful-of-strata granularity requests
// use, small enough to be noise next to any real estimation sample.
const pilotRows int64 = 1024

// StratumBoundaries resolves up to strata-1 ascending boundary keys for the
// index on keyCols: from an existing index's separator walk when src offers
// one (IndexBoundarySource), from a fixed-seed pilot sample's empirical
// quantiles otherwise. strata ≤ 1 is the degenerate single stratum — nil
// boundaries, no pilot drawn.
func StratumBoundaries(src sampling.RowSource, schema *value.Schema, keyCols []string, strata int) ([][]byte, error) {
	if strata <= 1 {
		return nil, nil
	}
	if ib, ok := src.(IndexBoundarySource); ok {
		if bounds, ok := ib.IndexKeyBoundaries(keyCols, strata); ok {
			return bounds, nil
		}
	}
	return PilotBoundaries(src, schema, keyCols, strata)
}

// PilotBoundaries draws the fixed-seed pilot sample and cuts its sorted
// keys at equi-depth ranks.
func PilotBoundaries(src sampling.RowSource, schema *value.Schema, keyCols []string, strata int) ([][]byte, error) {
	if src.NumRows() == 0 {
		return nil, fmt.Errorf("core: source table is empty")
	}
	full := value.NewRecordArena(schema, int(pilotRows))
	if err := sampling.UniformWRInto(src, pilotRows, rng.New(pilotSeed), full); err != nil {
		return nil, fmt.Errorf("core: boundary pilot: %w", err)
	}
	proj, err := ProjectSample(full, keyCols)
	if err != nil {
		return nil, err
	}
	keys := make([][]byte, proj.Len())
	for i := range keys {
		keys[i] = proj.Key(i)
	}
	return EquiDepthFromKeys(keys, strata), nil
}

// EquiDepthFromKeys derives up to strata-1 boundaries from any observed key
// sample — a pilot draw or a maintained reservoir snapshot. The input is
// not mutated.
func EquiDepthFromKeys(keys [][]byte, strata int) [][]byte {
	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	return sampling.EquiDepthBoundaries(len(sorted), strata, func(i int) []byte { return sorted[i] })
}

// StratifyTable buckets src's rows by key range under the index projection:
// the one O(n) scan a stratified estimation needs (the engine caches the
// result per table version).
func StratifyTable(src sampling.RowSource, schema *value.Schema, keyCols []string, bounds [][]byte) (*sampling.StrataDirectory, error) {
	keySchema, project, err := keyProjection(schema, keyCols)
	if err != nil {
		return nil, err
	}
	ks, err := sampling.NewKeyStrata(bounds)
	if err != nil {
		return nil, err
	}
	krow := make(value.Row, len(project))
	keyOf := func(row value.Row, buf []byte) ([]byte, error) {
		for i, p := range project {
			krow[i] = row[p]
		}
		return value.EncodeKey(keySchema, krow, buf)
	}
	return sampling.BuildStrataDirectory(src, ks, keyOf)
}

// StratumArm is one stratum's sampling stream in a stratified estimation —
// or one shard×stratum cell's, when stratification composes with a shard
// scatter. Draw serves the fixed-size path (one-shot, the arm's base
// stream); Extend serves the adaptive path (resumable rounds, round 0
// included). Both return rows already projected to the index key schema.
type StratumArm struct {
	// Label names the arm in errors ("stratum 3", "shard 1/stratum 2").
	Label string
	// Weight is the arm's population share N_h/N.
	Weight float64
	// Rows is the arm's population size N_h.
	Rows int64
	// Seed is the arm's stream seed (sampling.StreamSeed of the request
	// seed); it also decorrelates the arm's bootstrap resamples.
	Seed uint64
	// Draw returns a one-shot sample of r rows (fixed-size path).
	Draw func(r int64) (*value.RecordArena, error)
	// Extend returns round `round` of the arm's resumable stream
	// (adaptive path).
	Extend ExtendFunc
}

// MergeStratified composes per-stratum estimates into one whole-table
// estimate per the sampling algebra: CF is the weight-composed stratified
// mean, counts and byte totals sum, frequency profiles merge, and stage
// durations take the max (the arms ran in parallel). A single stratum
// passes through verbatim — the degenerate estimate is byte-identical to
// its one arm's, compressed pages (Result.Encoded) included.
func MergeStratified(weights []float64, ests []Estimate) Estimate {
	if len(ests) == 1 {
		return ests[0]
	}
	strata := make([]stats.Stratum, len(ests))
	var out Estimate
	f := make(map[int64]int64)
	for i, est := range ests {
		strata[i] = stats.Stratum{Weight: weights[i], Mean: est.CF}
		out.SampleRows += est.SampleRows
		// SampleDistinct and the merged profile sum per-stratum distincts:
		// exact for range strata on the key domain (a key belongs to one
		// stratum), an upper bound when arms overlap in key space.
		out.SampleDistinct += est.SampleDistinct
		out.Profile.N += est.Profile.N
		out.Profile.R += est.Profile.R
		out.Profile.D += est.Profile.D
		for k, v := range est.Profile.F {
			f[k] += v
		}
		out.Result.UncompressedBytes += est.Result.UncompressedBytes
		out.Result.CompressedBytes += est.Result.CompressedBytes
		out.Result.Rows += est.Result.Rows
		out.Result.Pages += est.Result.Pages
		out.Result.DictEntries += est.Result.DictEntries
		if est.SampleDuration > out.SampleDuration {
			out.SampleDuration = est.SampleDuration
		}
		if est.BuildDuration > out.BuildDuration {
			out.BuildDuration = est.BuildDuration
		}
		if est.CompressDuration > out.CompressDuration {
			out.CompressDuration = est.CompressDuration
		}
	}
	out.Profile.F = f
	out.CF = stats.StratifiedMean(strata)
	return out
}

// EstimateStratified runs the fixed-size stratified estimator: each arm
// draws its allocated rows, prepares and compresses independently (bounded
// fan-out over the workgroup semaphore), and the per-arm estimates merge by
// stratified composition.
func EstimateStratified(arms []StratumArm, alloc []int64, opts Options) (Estimate, error) {
	if err := opts.Validate(); err != nil {
		return Estimate{}, err
	}
	opts = opts.withDefaults()
	if opts.Codec == nil {
		return Estimate{}, fmt.Errorf("core: Options.Codec is required")
	}
	if len(arms) == 0 {
		return Estimate{}, fmt.Errorf("core: stratified estimation needs at least one stratum")
	}
	if len(alloc) != len(arms) {
		return Estimate{}, fmt.Errorf("core: %d allocations for %d strata", len(alloc), len(arms))
	}
	ests := make([]Estimate, len(arms))
	errs := make([]error, len(arms))
	eval := func(i int) {
		t0 := time.Now()
		ar, err := arms[i].Draw(alloc[i])
		if err != nil {
			errs[i] = fmt.Errorf("core: %s: %w", arms[i].Label, err)
			return
		}
		sampleDur := time.Since(t0)
		prep, err := PrepareFromArena(ar, arms[i].Rows, nil)
		if err != nil {
			errs[i] = fmt.Errorf("core: %s: %w", arms[i].Label, err)
			return
		}
		armOpts := opts
		armOpts.Seed = arms[i].Seed
		est, err := prep.Estimate(armOpts)
		if err != nil {
			errs[i] = fmt.Errorf("core: %s: %w", arms[i].Label, err)
			return
		}
		est.SampleDuration = sampleDur
		ests[i] = est
	}
	sem := workgroup.NewSem(workgroup.Limit(len(arms)) - 1)
	var wg sync.WaitGroup
	for i := range arms {
		if sem.TryAcquire() {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer sem.Release()
				defer workgroup.Recover(&errs[i])
				eval(i)
			}(i)
		} else {
			eval(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Estimate{}, err
		}
	}
	weights := make([]float64, len(arms))
	for i := range arms {
		weights[i] = arms[i].Weight
	}
	return MergeStratified(weights, ests), nil
}

// armLoop is one arm's state in a stratified adaptive estimation: its own
// resumable stream, prepared index, and current (estimate, SD) pair.
type armLoop struct {
	arm    *StratumArm
	prep   *PreparedIndex
	round  int // next draw round in this arm's stream
	est    Estimate
	sd     float64
	method string
	dirty  bool // est/sd stale after an extension
	err    error
}

// AdaptiveEstimateStratified is the precision-targeted loop over stratified
// arms: per-arm resumable streams, per-arm CI scales composed by stratified
// variance (half-width z·√(Σ w_h²σ_h²)), and — the part that makes
// stratification pay — extensions routed only to the arms whose variance
// contribution (w_h·σ_h)² dominates the composed variance (within 2× of the
// largest, always including the argmax), the refinement discipline of the
// engine's sharded adaptive loop. Round 0 is allocated by the caller
// (proportional: it doubles as the pilot); later rounds double the chosen
// arms' total and split it by Neyman allocation over the pilot-observed
// σ_h, so rows land where population mass times spread is.
func AdaptiveEstimateStratified(arms []StratumArm, round0 []int64, target Precision, opts Options) (AdaptiveResult, error) {
	if err := target.Validate(); err != nil {
		return AdaptiveResult{}, err
	}
	if err := opts.Validate(); err != nil {
		return AdaptiveResult{}, err
	}
	target = target.withDefaults()
	opts = opts.withDefaults()
	if opts.Codec == nil {
		return AdaptiveResult{}, fmt.Errorf("core: Options.Codec is required")
	}
	if len(arms) == 0 {
		return AdaptiveResult{}, fmt.Errorf("core: stratified estimation needs at least one stratum")
	}
	if len(round0) != len(arms) {
		return AdaptiveResult{}, fmt.Errorf("core: %d allocations for %d strata", len(round0), len(arms))
	}
	z := stats.NormalQuantile(1 - (1-target.Confidence)/2)

	loops := make([]*armLoop, len(arms))
	for i := range arms {
		loops[i] = &armLoop{arm: &arms[i], dirty: true}
	}

	// grow draws extra rows from one arm's resumable stream and folds them
	// into its prepared index (the first call prepares).
	grow := func(l *armLoop, extra int64) error {
		proj, err := l.arm.Extend(l.round, extra)
		if err != nil {
			return err
		}
		if proj == nil || proj.Len() == 0 {
			return fmt.Errorf("extension supplied no rows")
		}
		l.round++
		l.dirty = true
		if l.prep == nil {
			l.prep, err = PrepareFromArena(proj, l.arm.Rows, nil)
			return err
		}
		return l.prep.ExtendFromArena(proj)
	}

	// scatter fans grow calls across the bounded workgroup semaphore (never
	// an engine pool — callers may already run on a pool worker).
	scatter := func(targets []*armLoop, extras []int64) error {
		sem := workgroup.NewSem(workgroup.Limit(len(targets)) - 1)
		var wg sync.WaitGroup
		for i, l := range targets {
			extra := extras[i]
			if sem.TryAcquire() {
				wg.Add(1)
				go func(l *armLoop) {
					defer wg.Done()
					defer sem.Release()
					defer workgroup.Recover(&l.err)
					l.err = grow(l, extra)
				}(l)
			} else {
				l.err = grow(l, extra)
			}
		}
		wg.Wait()
		for _, l := range targets {
			if l.err != nil {
				return fmt.Errorf("core: %s: %w", l.arm.Label, l.err)
			}
		}
		return nil
	}

	if err := scatter(loops, round0); err != nil {
		return AdaptiveResult{}, err
	}

	res := AdaptiveResult{}
	var cf, half float64
	for {
		strata := make([]stats.Stratum, len(loops))
		for i, l := range loops {
			if l.dirty {
				armOpts := opts
				armOpts.Seed = l.arm.Seed
				est, err := l.prep.Estimate(armOpts)
				if err != nil {
					return AdaptiveResult{}, fmt.Errorf("core: %s: %w", l.arm.Label, err)
				}
				method, sd, err := l.prep.SDScale(armOpts, target, l.round)
				if err != nil {
					return AdaptiveResult{}, fmt.Errorf("core: %s: %w", l.arm.Label, err)
				}
				l.est, l.method, l.sd, l.dirty = est, method, sd, false
			}
			strata[i] = stats.Stratum{Weight: l.arm.Weight, Mean: l.est.CF, SD: l.sd}
		}
		res.Rounds++
		res.Method = loops[0].method
		cf = stats.StratifiedMean(strata)
		half = z * stats.StratifiedSD(strata)
		if half <= target.TargetError {
			res.Converged = true
			break
		}
		var rows int64
		for _, l := range loops {
			rows += l.prep.SampleRows()
		}
		if target.MaxSampleRows > 0 && rows >= target.MaxSampleRows {
			break // budget exhausted: honest non-convergence
		}
		// Choose the arms whose variance contribution dominates, double
		// their cumulative sample, and split the new rows by Neyman
		// allocation across the chosen arms.
		var maxC float64
		for _, l := range loops {
			if c := l.arm.Weight * l.sd * l.arm.Weight * l.sd; c > maxC {
				maxC = c
			}
		}
		var chosen []*armLoop
		var counts []int64
		var sigmas []float64
		var want int64
		for _, l := range loops {
			if c := l.arm.Weight * l.sd * l.arm.Weight * l.sd; c >= maxC/2 {
				chosen = append(chosen, l)
				counts = append(counts, l.arm.Rows)
				sigmas = append(sigmas, l.sd)
				want += l.prep.SampleRows()
			}
		}
		extras := sampling.NeymanAllocate(want, counts, sigmas)
		if remaining := target.MaxSampleRows - rows; target.MaxSampleRows > 0 && want > remaining {
			// Scale the extras to the remaining budget, at least one row
			// each; a slight overshoot just ends the loop next round.
			var scaled int64
			for i := range extras {
				extras[i] = extras[i] * remaining / want
				if extras[i] < 1 {
					extras[i] = 1
				}
				scaled += extras[i]
			}
			for i := len(extras) - 1; i >= 0 && scaled > remaining; i-- {
				cut := extras[i] - 1
				if over := scaled - remaining; cut > over {
					cut = over
				}
				extras[i] -= cut
				scaled -= cut
			}
		}
		if err := scatter(chosen, extras); err != nil {
			return AdaptiveResult{}, err
		}
	}

	weights := make([]float64, len(loops))
	ests := make([]Estimate, len(loops))
	for i, l := range loops {
		weights[i] = l.arm.Weight
		ests[i] = l.est
	}
	res.Estimate = MergeStratified(weights, ests)
	res.AchievedError = half
	res.CILo, res.CIHi = clamp01(cf-half), clamp01(cf+half)
	return res, nil
}

// DirectoryArms builds one StratumArm per non-empty stratum of a directory
// with per-stratum Weyl-derived stream seeds — the engine's entry point to
// arm construction. Allocations are the caller's concern: align them with
// the returned arms' Rows (sampling.Allocate over that slice).
func DirectoryArms(src sampling.RowSource, schema *value.Schema, keyCols []string,
	dir *sampling.StrataDirectory, seed uint64) []StratumArm {
	arms, _ := directoryArms(src, schema, keyCols, dir, seed, make([]int64, len(dir.Counts())))
	return arms
}

// directoryArms builds one StratumArm per non-empty stratum of a directory,
// with per-stratum Weyl-derived stream seeds (stratum 0 keeps the base
// seed) and both draw shapes wired: the one-shot Draw uses the arm's base
// stream — so a single identity stratum replays UniformWRInto exactly —
// and Extend derives round streams like the package-level resumable draws.
// The returned allocation is aligned with the arms (empty strata dropped).
func directoryArms(src sampling.RowSource, schema *value.Schema, keyCols []string,
	dir *sampling.StrataDirectory, seed uint64, alloc []int64) ([]StratumArm, []int64) {
	counts := dir.Counts()
	n := dir.NumRows()
	arms := make([]StratumArm, 0, len(counts))
	armAlloc := make([]int64, 0, len(counts))
	for h := range counts {
		if counts[h] == 0 {
			continue
		}
		h := h
		armSeed := sampling.StreamSeed(seed, h)
		arms = append(arms, StratumArm{
			Label:  fmt.Sprintf("stratum %d", h),
			Weight: float64(counts[h]) / float64(n),
			Rows:   counts[h],
			Seed:   armSeed,
			Draw: func(r int64) (*value.RecordArena, error) {
				full := value.NewRecordArena(schema, int(r))
				if err := dir.WRInto(src, h, r, rng.New(armSeed), full); err != nil {
					return nil, err
				}
				return ProjectSample(full, keyCols)
			},
			Extend: func(round int, extra int64) (*value.RecordArena, error) {
				full := value.NewRecordArena(schema, int(extra))
				if err := dir.ExtendWRInto(src, h, full, extra, armSeed, round); err != nil {
					return nil, err
				}
				return ProjectSample(full, keyCols)
			},
		})
		armAlloc = append(armAlloc, alloc[h])
	}
	return arms, armAlloc
}

// sampleCFStratified is SampleCF's fixed-size stratified route: resolve
// boundaries (index-assisted or pilot), build the directory, allocate r
// proportionally, and run the per-stratum draws.
func sampleCFStratified(src sampling.RowSource, schema *value.Schema, opts Options, r int64) (Estimate, error) {
	t0 := time.Now()
	bounds, err := StratumBoundaries(src, schema, opts.KeyColumns, opts.Strata)
	if err != nil {
		return Estimate{}, err
	}
	dir, err := StratifyTable(src, schema, opts.KeyColumns, bounds)
	if err != nil {
		return Estimate{}, err
	}
	alloc := sampling.Allocate(r, dir.Counts(), nil)
	arms, armAlloc := directoryArms(src, schema, opts.KeyColumns, dir, opts.Seed, alloc)
	dirDur := time.Since(t0)
	est, err := EstimateStratified(arms, armAlloc, opts)
	if err != nil {
		return Estimate{}, err
	}
	est.SampleDuration += dirDur
	return est, nil
}

// sampleCFAdaptiveStratified is SampleCFAdaptive's stratified route: same
// boundary/directory resolution, proportional round-0 allocation (the
// pilot), then the Neyman-refined adaptive loop.
func sampleCFAdaptiveStratified(src sampling.RowSource, schema *value.Schema,
	opts Options, target Precision, r0 int64) (AdaptiveResult, error) {
	bounds, err := StratumBoundaries(src, schema, opts.KeyColumns, opts.Strata)
	if err != nil {
		return AdaptiveResult{}, err
	}
	dir, err := StratifyTable(src, schema, opts.KeyColumns, bounds)
	if err != nil {
		return AdaptiveResult{}, err
	}
	alloc := sampling.Allocate(r0, dir.Counts(), nil)
	arms, round0 := directoryArms(src, schema, opts.KeyColumns, dir, opts.Seed, alloc)
	return AdaptiveEstimateStratified(arms, round0, target, opts)
}
