package core

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"samplecf/internal/distinct"
	"samplecf/internal/distrib"
	"samplecf/internal/rng"
	"samplecf/internal/sortkeys"
	"samplecf/internal/value"
	"samplecf/internal/workgroup"
)

// stdSorter replays the pre-radix prepare stage's comparison sort (the old
// arenaSorter): the baseline BenchmarkPrepareSort measures the radix path
// against, kept here so the before/after pair stays in BENCH_engine.json.
type stdSorter struct {
	keys []byte
	w    int
	perm []int32
}

func (s *stdSorter) Len() int { return len(s.perm) }
func (s *stdSorter) Less(i, j int) bool {
	a := int(s.perm[i]) * s.w
	b := int(s.perm[j]) * s.w
	return bytes.Compare(s.keys[a:a+s.w], s.keys[b:b+s.w]) < 0
}
func (s *stdSorter) Swap(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] }

// benchKeyArena builds an r-row single-CHAR(width)-column arena with d
// distinct values, the prepare stage's input shape.
func benchKeyArena(b *testing.B, r int, width int, d int64, seed uint64) *value.RecordArena {
	b.Helper()
	schema, err := value.NewSchema(value.Column{Name: "k", Type: value.Char(width)})
	if err != nil {
		b.Fatal(err)
	}
	g := rng.New(seed)
	vals := make([][]byte, d)
	for i := range vals {
		v := make([]byte, 1+g.Intn(width))
		for j := range v {
			v[j] = byte('a' + g.Intn(26))
		}
		vals[i] = v
	}
	ar := value.NewRecordArena(schema, r)
	row := make(value.Row, 1)
	for i := 0; i < r; i++ {
		row[0] = vals[g.Intn(int(d))]
		if err := ar.Append(row); err != nil {
			b.Fatal(err)
		}
	}
	return ar
}

// BenchmarkPrepareSort measures the prepare stage's sort+profile over the
// sample-size × key-width × duplication matrix, radix (sortkeys fused
// sort+profile) against the sort.Sort-plus-profiling-pass baseline it
// replaced. The acceptance bar is ≥2× ns/op at r=100k.
func BenchmarkPrepareSort(b *testing.B) {
	for _, r := range []int{1_000, 10_000, 100_000} {
		for _, shape := range []struct {
			name  string
			width int
		}{{"narrow", 8}, {"wide", 64}} {
			for _, dup := range []struct {
				name string
				d    func(r int) int64
			}{
				{"dup-heavy", func(r int) int64 { return int64(r / 64) }},
				{"unique", func(r int) int64 { return int64(r) }},
			} {
				d := dup.d(r)
				if d < 1 {
					d = 1
				}
				ar := benchKeyArena(b, r, shape.width, d, uint64(r)+uint64(shape.width))
				ident := make([]int32, r)
				for i := range ident {
					ident[i] = int32(i)
				}
				perm := make([]int32, r)
				prefix := fmt.Sprintf("r=%dk/%s/%s", r/1000, shape.name, dup.name)
				b.Run(prefix+"/stdsort", func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						copy(perm, ident)
						sort.Sort(&stdSorter{keys: ar.Keys(), w: ar.RowWidth(), perm: perm})
						benchFreqs = sortkeys.ProfileSorted(ar.Keys(), ar.RowWidth(), perm)
					}
				})
				b.Run(prefix+"/radix", func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						copy(perm, ident)
						benchFreqs = sortkeys.SortProfile(ar.Keys(), ar.RowWidth(), perm)
					}
				})
			}
		}
	}
}

// benchFreqs sinks profile results so the compiler cannot elide the pass.
var benchFreqs []distinct.FreqCount

// BenchmarkTrueCFParallel measures the sharded ground-truth computation
// (parallel scan+encode, radix sort, page compression) against the same
// pipeline pinned to one worker. On multi-core hosts the workers=max/
// workers=1 ratio is the sharding win; the acceptance bar is ≥3× at
// GOMAXPROCS ≥ 4.
func BenchmarkTrueCFParallel(b *testing.B) {
	tab := genTable(b, 200_000, 20_000, distrib.NewUniformLen(2, 18), 42)
	codec := mustCodec(b, "nullsuppression")
	scanMax := workgroup.Limit(int(tab.NumRows()) / trueCFShardRows)
	// Fixed sub-names (not the resolved width) so benchjson -diff matches
	// entries across hosts with different core counts; the realized scan
	// width is reported as a metric instead. workers=0 is the production
	// path: each stage sizes its own fan-out.
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=max", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			width := cfg.workers
			if width == 0 {
				width = scanMax
			}
			b.ReportMetric(float64(width), "workers")
			for i := 0; i < b.N; i++ {
				if _, err := trueCF(tab, nil, codec, 0, cfg.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
