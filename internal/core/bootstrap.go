package core

import (
	"fmt"
	"slices"

	"samplecf/internal/compress"
	"samplecf/internal/rng"
	"samplecf/internal/sampling"
	"samplecf/internal/sortkeys"
	"samplecf/internal/stats"
	"samplecf/internal/value"
)

// Theorem 1 gives a distribution-free interval for NULL SUPPRESSION only;
// for dictionary compression (and any other codec) the paper offers ratio
// bounds, not intervals. Bootstrap resampling fills part of that gap:
// resample the already-drawn sample with replacement B times, re-run steps
// 2-4 of Fig. 2 on each resample, and report percentile bounds of the B
// estimates. The extra cost is O(B·r) — independent of n — and requires
// nothing from the codec beyond the same closed-box interface SampleCF
// already uses.
//
// VALIDITY CAVEAT. The percentile bootstrap is sound for codecs whose CF is
// an additive per-row statistic (null suppression: a scaled mean of ℓ), and
// its SD then approximates Theorem 1's σ empirically. For CARDINALITY-
// SENSITIVE codecs (dictionary, RLE) the naive bootstrap is biased LOW:
// a WR resample of r rows from r rows contains only ≈ (1-1/e) ≈ 63% of the
// sample's distinct values, so resampled d' — and hence resampled CF —
// systematically undershoots the point estimate. The interval then brackets
// the resampling distribution, not E[CF']. TestBootstrapDictCollapse pins
// this behaviour; callers estimating dictionary CF should rely on the ratio
// bounds (Theorems 2-3) instead.

// BootstrapCI is a percentile confidence interval from resampled estimates.
type BootstrapCI struct {
	// Lo and Hi bound the (1-Alpha) central interval.
	Lo, Hi float64
	// Alpha is the total tail mass (0.05 ⇒ 95% interval).
	Alpha float64
	// Resamples is B.
	Resamples int
	// SD is the bootstrap standard deviation of the estimate — the
	// empirical analogue of Theorem 1's σ, available for ANY codec.
	SD float64
}

// Bootstrap computes a percentile CI for a CF estimate by resampling the
// key-projected sample arena underlying it. The sample must be re-supplied
// (Estimate does not retain it); use SampleCFWithSample to get both in one
// call. The whole resampling loop runs on arena offsets — an index draw, an
// int32 permutation sort, and page measurement over aliased record slices —
// so no per-row heap allocation happens at any B or r.
func Bootstrap(sample *value.RecordArena, codec compress.Codec,
	pageSize int, resamples int, alpha float64, seed uint64) (BootstrapCI, error) {
	if resamples < 10 {
		return BootstrapCI{}, fmt.Errorf("core: bootstrap needs >= 10 resamples, got %d", resamples)
	}
	if alpha <= 0 || alpha >= 1 {
		return BootstrapCI{}, fmt.Errorf("core: bootstrap alpha %v outside (0,1)", alpha)
	}
	if sample == nil || sample.Len() == 0 {
		return BootstrapCI{}, fmt.Errorf("core: bootstrap on empty sample")
	}
	r := sample.Len()
	keySchema := sample.Schema()
	rpp := compress.RowsPerPage(keySchema, pageSizeOrDefault(pageSize))
	g := rng.New(seed)
	cfs := make([]float64, 0, resamples)
	var acc stats.Accumulator
	perm := make([]int32, r)
	recs := make([][]byte, r)
	for b := 0; b < resamples; b++ {
		for i := range perm {
			perm[i] = int32(g.Intn(r))
		}
		// Re-sort: the index on the resample is ordered (Fig. 2 step 2).
		// Keys are bijective with records, so tie order cannot change the
		// measured byte stream.
		sortkeys.Sort(sample.Keys(), sample.RowWidth(), perm)
		for i, pi := range perm {
			recs[i] = sample.Rec(int(pi))
		}
		res, err := compress.MeasureRecords(keySchema, codec, recs, rpp)
		if err != nil {
			return BootstrapCI{}, fmt.Errorf("core: bootstrap resample %d: %w", b, err)
		}
		cfs = append(cfs, res.CF())
		acc.Add(res.CF())
	}
	slices.Sort(cfs)
	return BootstrapCI{
		Lo:        stats.Quantile(cfs, alpha/2),
		Hi:        stats.Quantile(cfs, 1-alpha/2),
		Alpha:     alpha,
		Resamples: resamples,
		SD:        acc.StdDev(),
	}, nil
}

// pageSizeOrDefault applies the package default.
func pageSizeOrDefault(ps int) int {
	if ps == 0 {
		return 8192
	}
	return ps
}

// SampleCFWithSample runs SampleCF (uniform WR only) and returns the drawn
// sample's key-projected arena alongside the estimate, so callers can
// bootstrap — or keep extending the sample adaptively — without re-sampling
// the table. The arena is the estimator's own input format: no
// []value.Row materializes anywhere on this path.
func SampleCFWithSample(src sampling.RowSource, schema *value.Schema, opts Options) (Estimate, *value.RecordArena, error) {
	if err := opts.Validate(); err != nil {
		return Estimate{}, nil, err
	}
	opts = opts.withDefaults()
	if opts.Codec == nil {
		return Estimate{}, nil, fmt.Errorf("core: Options.Codec is required")
	}
	if opts.Method != MethodUniformWR {
		return Estimate{}, nil, fmt.Errorf("core: bootstrap path supports only uniform WR sampling")
	}
	keySchema, project, err := keyProjection(schema, opts.KeyColumns)
	if err != nil {
		return Estimate{}, nil, err
	}
	n := src.NumRows()
	if n == 0 {
		return Estimate{}, nil, fmt.Errorf("core: source table is empty")
	}
	r := opts.SampleRows
	if r <= 0 {
		r = sampling.SampleSize(n, opts.Fraction)
	}
	if r <= 0 {
		return Estimate{}, nil, fmt.Errorf("core: sample size is zero")
	}
	full := value.NewRecordArena(schema, int(r))
	if err := sampling.UniformWRInto(src, r, rng.New(opts.Seed), full); err != nil {
		return Estimate{}, nil, err
	}
	// Project once so the bootstrap resamples only key columns; column
	// projection of an arena is a byte-range copy whose keys are
	// byte-identical to re-encoding the projected rows.
	sample := full
	if !identityProjection(project, schema.NumColumns()) {
		sample = value.NewRecordArena(keySchema, int(r))
		if err := full.ProjectTo(sample, project); err != nil {
			return Estimate{}, nil, fmt.Errorf("core: project sample arena: %w", err)
		}
	}
	p, err := prepareArena(sample, n, keySchema)
	if err != nil {
		return Estimate{}, nil, err
	}
	est, err := p.Estimate(opts)
	if err != nil {
		return Estimate{}, nil, err
	}
	return est, sample, nil
}
