package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"samplecf/internal/distrib"
	"samplecf/internal/rng"
	"samplecf/internal/sampling"
	"samplecf/internal/stats"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// adaptiveTable builds one of the property-suite table shapes: "uniform"
// (uniform value draw, shuffled), "zipf" (skewed draw, shuffled), or
// "near-sorted" (uniform draw, clustered layout — rows physically ordered
// by the indexed column).
func adaptiveTable(t testing.TB, kind string, n int64, seed uint64) *workload.Table {
	t.Helper()
	var dist distrib.Discrete
	layout := workload.LayoutShuffled
	switch kind {
	case "uniform":
		dist = distrib.NewUniform(n / 20)
	case "zipf":
		dist = distrib.NewZipf(n/10, 0.8)
	case "near-sorted":
		dist = distrib.NewUniform(n / 20)
		layout = workload.LayoutClustered
	default:
		t.Fatalf("unknown table kind %q", kind)
	}
	col, err := workload.NewStringColumn(value.Char(20), dist, distrib.NewUniformLen(2, 18), seed)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: kind, N: n, Seed: seed, Layout: layout,
		Cols: []workload.SpecColumn{{Name: "a", Gen: col}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestExtendFromArenaMatchesScratch is the merge-correctness contract:
// preparing r0 rows and extending with r1 more must be indistinguishable —
// estimate, distinct count, profile, compressed bytes — from preparing all
// r0+r1 rows from scratch, for every codec shape.
func TestExtendFromArenaMatchesScratch(t *testing.T) {
	tab := genTable(t, 8000, 300, distrib.NewUniformLen(2, 18), 5)
	schema := tab.Schema()
	const r0, r1 = 300, 500

	drawArena := func(round int, rows int64) *value.RecordArena {
		ar := value.NewRecordArena(schema, int(rows))
		if err := sampling.ExtendWRInto(tab, ar, rows, 42, round); err != nil {
			t.Fatal(err)
		}
		return ar
	}
	first, second := drawArena(0, r0), drawArena(1, r1)

	combined := value.NewRecordArena(schema, r0+r1)
	if err := combined.AppendAll(first); err != nil {
		t.Fatal(err)
	}
	if err := combined.AppendAll(second); err != nil {
		t.Fatal(err)
	}
	scratch, err := PrepareFromArena(combined, tab.NumRows(), nil)
	if err != nil {
		t.Fatal(err)
	}

	extended, err := PrepareFromArena(first, tab.NumRows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := extended.ExtendFromArena(second); err != nil {
		t.Fatal(err)
	}

	if got, want := extended.SampleRows(), scratch.SampleRows(); got != want {
		t.Fatalf("SampleRows %d != %d", got, want)
	}
	if got, want := extended.SampleDistinct(), scratch.SampleDistinct(); got != want {
		t.Fatalf("SampleDistinct %d != %d", got, want)
	}
	for _, codec := range []string{"nullsuppression", "pagedict+ns", "rle", "prefix", "globaldict-p4"} {
		opts := Options{Codec: mustCodec(t, codec)}
		a, err := extended.Estimate(opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scratch.Estimate(opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.CF != b.CF || a.Result.CompressedBytes != b.Result.CompressedBytes {
			t.Errorf("%s: extended (CF %v, %d bytes) != scratch (CF %v, %d bytes)",
				codec, a.CF, a.Result.CompressedBytes, b.CF, b.Result.CompressedBytes)
		}
		if fmt.Sprint(a.Profile.F) != fmt.Sprint(b.Profile.F) {
			t.Errorf("%s: profiles differ: %v vs %v", codec, a.Profile.F, b.Profile.F)
		}
	}
}

// TestExtendCopiesSharedArena checks copy-on-extend: a PreparedIndex that
// aliases the sample arena it was fed (identity projection) must not write
// into it when extended.
func TestExtendCopiesSharedArena(t *testing.T) {
	tab := genTable(t, 2000, 50, distrib.NewUniformLen(2, 18), 9)
	schema := tab.Schema()
	sample := value.NewRecordArena(schema, 100)
	if err := sampling.UniformWRInto(tab, 100, rng.New(1), sample); err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), sample.Recs()...)

	p, err := PrepareFromArena(sample, tab.NumRows(), nil) // identity: aliases sample
	if err != nil {
		t.Fatal(err)
	}
	ext := value.NewRecordArena(schema, 50)
	if err := sampling.ExtendWRInto(tab, ext, 50, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.ExtendFromArena(ext); err != nil {
		t.Fatal(err)
	}
	if p.SampleRows() != 150 {
		t.Fatalf("prepared index has %d rows, want 150", p.SampleRows())
	}
	if sample.Len() != 100 {
		t.Fatalf("shared sample arena grew to %d rows", sample.Len())
	}
	if !bytes.Equal(before, sample.Recs()) {
		t.Error("extension mutated the shared sample arena")
	}
}

// TestAdaptiveConvergenceProperty is the acceptance-criteria suite: across
// table shapes × seeds × codec families, an adaptive run either converges
// with the achieved CI half-width within the target, or exhausts exactly
// its row budget and says so.
func TestAdaptiveConvergenceProperty(t *testing.T) {
	const n = 20000
	kinds := []string{"uniform", "zipf", "near-sorted"}
	codecs := []string{"nullsuppression", "rle"} // theorem-1 and bootstrap CI paths
	for _, kind := range kinds {
		for seed := uint64(1); seed <= 3; seed++ {
			tab := adaptiveTable(t, kind, n, seed)
			for _, codec := range codecs {
				name := fmt.Sprintf("%s/seed=%d/%s", kind, seed, codec)
				target := Precision{TargetError: 0.05, Confidence: 0.95}
				res, err := SampleCFAdaptive(tab, tab.Schema(), Options{
					Codec: mustCodec(t, codec), Seed: seed,
				}, target)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !res.Converged {
					t.Errorf("%s: did not converge within n=%d rows (achieved ±%v)",
						name, n, res.AchievedError)
					continue
				}
				if res.AchievedError > target.TargetError {
					t.Errorf("%s: converged but achieved ±%v > target ±%v",
						name, res.AchievedError, target.TargetError)
				}
				if res.Estimate.SampleRows > n {
					t.Errorf("%s: spent %d rows, budget was n=%d", name, res.Estimate.SampleRows, n)
				}
				if res.Rounds < 1 {
					t.Errorf("%s: %d rounds", name, res.Rounds)
				}
				if res.CILo > res.Estimate.CF || res.CIHi < res.Estimate.CF {
					t.Errorf("%s: CF %v outside its own interval [%v,%v]",
						name, res.Estimate.CF, res.CILo, res.CIHi)
				}

				// Determinism: the same request replays to the same result.
				again, err := SampleCFAdaptive(tab, tab.Schema(), Options{
					Codec: mustCodec(t, codec), Seed: seed,
				}, target)
				if err != nil {
					t.Fatalf("%s replay: %v", name, err)
				}
				if again.Estimate.CF != res.Estimate.CF || again.Rounds != res.Rounds ||
					again.Estimate.SampleRows != res.Estimate.SampleRows {
					t.Errorf("%s: replay diverged (CF %v/%v, rounds %d/%d, rows %d/%d)",
						name, res.Estimate.CF, again.Estimate.CF, res.Rounds, again.Rounds,
						res.Estimate.SampleRows, again.Estimate.SampleRows)
				}
			}
		}
	}
}

// TestAdaptiveBudgetExhaustionHonest: an unreachable target must stop at
// exactly MaxSampleRows, report Converged=false, and carry the honest
// residual half-width.
func TestAdaptiveBudgetExhaustionHonest(t *testing.T) {
	tab := adaptiveTable(t, "uniform", 20000, 2)
	const budget = 400
	res, err := SampleCFAdaptive(tab, tab.Schema(), Options{
		Codec: mustCodec(t, "nullsuppression"), Seed: 3,
	}, Precision{TargetError: 0.001, Confidence: 0.99, MaxSampleRows: budget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("±0.001 from 400 rows should be unreachable (Theorem 1 needs ~1.7M)")
	}
	if res.Estimate.SampleRows != budget {
		t.Errorf("stopped at %d rows, want the full budget %d", res.Estimate.SampleRows, budget)
	}
	if res.AchievedError <= 0.001 {
		t.Errorf("honest residual ±%v should exceed the target", res.AchievedError)
	}
	// The residual must match Theorem 1 at the budget exactly.
	want := stats.NormalQuantile(1-(1-0.99)/2) * Theorem1StdDevBound(budget)
	if math.Abs(res.AchievedError-want) > 1e-12 {
		t.Errorf("residual ±%v, want z·bound = ±%v", res.AchievedError, want)
	}
}

// TestAdaptiveNSCoversTruth: for null suppression the achieved interval is
// Theorem 1's distribution-free bound — the true CF must fall inside it in
// essentially every run (the bound is worst-case, not approximate).
func TestAdaptiveNSCoversTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	tab := adaptiveTable(t, "zipf", 30000, 7)
	codec := mustCodec(t, "nullsuppression")
	truth, err := TrueCF(tab, nil, codec, 0)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	const trials = 10
	for seed := uint64(0); seed < trials; seed++ {
		res, err := SampleCFAdaptive(tab, tab.Schema(), Options{Codec: codec, Seed: seed},
			Precision{TargetError: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d did not converge", seed)
		}
		if truth.CF() >= res.CILo && truth.CF() <= res.CIHi {
			covered++
		}
	}
	if covered < trials-1 {
		t.Errorf("worst-case interval covered truth only %d/%d times", covered, trials)
	}
}

// TestTheorem1RequiredRows pins the bound inversion used to jump straight
// to the needed r.
func TestTheorem1RequiredRows(t *testing.T) {
	z := stats.NormalQuantile(0.975)
	r := Theorem1RequiredRows(z, 0.02)
	if r < 2300 || r > 2500 {
		t.Fatalf("required r = %d, want ≈ 2401", r)
	}
	if got := z * Theorem1StdDevBound(r); got > 0.02 {
		t.Errorf("bound at required r is %v, exceeds target", got)
	}
	if got := z * Theorem1StdDevBound(r-1); got <= 0.02 {
		t.Errorf("r is not minimal: bound at r-1 is %v", got)
	}
}

// TestPrecisionValidate rejects malformed targets.
func TestPrecisionValidate(t *testing.T) {
	bad := []Precision{
		{TargetError: 0},
		{TargetError: -0.1},
		{TargetError: 1},
		{TargetError: 0.02, Confidence: 1.5},
		{TargetError: 0.02, MaxSampleRows: -1},
		{TargetError: 0.02, MinSampleRows: 500, MaxSampleRows: 100},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: %+v accepted", i, p)
		}
	}
	good := Precision{TargetError: 0.02, Confidence: 0.9, MaxSampleRows: 1000, MinSampleRows: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("valid target rejected: %v", err)
	}
}

// TestAdaptiveEmptyExtension: an ExtendFunc that returns nothing must fail
// loudly rather than loop forever.
func TestAdaptiveEmptyExtension(t *testing.T) {
	tab := genTable(t, 2000, 50, distrib.NewUniformLen(2, 18), 1)
	sample := value.NewRecordArena(tab.Schema(), 16)
	if err := sampling.UniformWRInto(tab, 16, rng.New(1), sample); err != nil {
		t.Fatal(err)
	}
	p, err := PrepareFromArena(sample, tab.NumRows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.AdaptiveEstimate(
		Precision{TargetError: 0.001},
		Options{Codec: mustCodec(t, "nullsuppression")},
		func(round int, extra int64) (*value.RecordArena, error) {
			return value.NewRecordArena(tab.Schema(), 0), nil
		})
	if err == nil {
		t.Fatal("empty extension accepted")
	}
}
