package core

import (
	"testing"

	"samplecf/internal/distrib"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// TestTrueCFShardedMatchesSequential pins the sharding contract: the
// parallel ground-truth pipeline (sharded scan+encode, parallel radix
// sort, fanned page compression) must return a Result byte-identical to
// the sequential one at every worker width, for both a per-record and a
// page-dictionary codec and for multi-column keys. Run under -race this
// also proves the disjoint-slot arena fill and bucket recursion are clean.
func TestTrueCFShardedMatchesSequential(t *testing.T) {
	sc, err := workload.NewStringColumn(value.Char(12), distrib.NewUniform(300), distrib.NewUniformLen(2, 10), 5)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := workload.NewIntColumn(value.Int32(), distrib.NewUniform(40), 0)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "sharded", N: 30_000, Seed: 17,
		Cols: []workload.SpecColumn{{Name: "s", Gen: sc}, {Name: "i", Gen: ic}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, codecName := range []string{"nullsuppression", "pagedict"} {
		codec := mustCodec(t, codecName)
		for _, cols := range [][]string{nil, {"s"}, {"i", "s"}} {
			seq, err := trueCF(tab, cols, codec, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				par, err := trueCF(tab, cols, codec, 0, workers)
				if err != nil {
					t.Fatal(err)
				}
				if par.CompressedBytes != seq.CompressedBytes || par.UncompressedBytes != seq.UncompressedBytes ||
					par.Rows != seq.Rows || par.Pages != seq.Pages || par.DictEntries != seq.DictEntries {
					t.Errorf("%s cols=%v workers=%d: sharded %+v != sequential %+v",
						codecName, cols, workers, par, seq)
				}
			}
		}
	}
}
