// Precision-targeted adaptive estimation: the sequential-refinement loop
// that turns the paper's "pick f and hope" interface inside out. The paper's
// central trade-off is sample size vs. estimator error (Theorem 1: σ ≤
// 1/(2√r)); everything needed to *drive* sampling with it already exists —
// the theorem bounds, the bootstrap, resumable draws — and AdaptiveEstimate
// is the driver: callers state the accuracy they need ("CF within ±2% at
// 95%") and the loop spends the minimum rows to get there, estimate →
// CI-check → extend, reusing every row already drawn.
package core

import (
	"fmt"
	"math"
	"strings"

	"samplecf/internal/sampling"
	"samplecf/internal/stats"
	"samplecf/internal/value"
)

// Precision is an accuracy target for adaptive estimation.
type Precision struct {
	// TargetError is the requested confidence-interval half-width on CF
	// (absolute: 0.02 asks for CF ± 2 points). Must be in (0, 1).
	TargetError float64
	// Confidence is the two-sided confidence level (default 0.95).
	Confidence float64
	// MaxSampleRows caps the cumulative sample size; the loop stops there
	// and reports honestly when the target was not reached (0 = no cap —
	// callers that sample a finite table should cap at n).
	MaxSampleRows int64
	// MinSampleRows is the first round's sample size (default 256).
	MinSampleRows int64
	// BootstrapResamples is B for codecs without an analytic bound
	// (default 48 — an SD estimate, not a percentile interval, so modest
	// B suffices).
	BootstrapResamples int
}

// DefaultMinSampleRows is the first adaptive round's size when the caller
// does not choose one: large enough for a stable bootstrap SD, small
// enough that an easy target stops almost immediately.
const DefaultMinSampleRows = 256

// withDefaults normalizes zero-valued fields.
func (t Precision) withDefaults() Precision {
	if t.Confidence == 0 {
		t.Confidence = 0.95
	}
	if t.MinSampleRows <= 0 {
		t.MinSampleRows = DefaultMinSampleRows
	}
	if t.BootstrapResamples <= 0 {
		t.BootstrapResamples = 48
	}
	return t
}

// Validate rejects malformed targets.
func (t Precision) Validate() error {
	switch {
	case !(t.TargetError > 0) || t.TargetError >= 1:
		return fmt.Errorf("core: Precision.TargetError %v outside (0,1)", t.TargetError)
	case t.Confidence != 0 && (t.Confidence <= 0 || t.Confidence >= 1):
		return fmt.Errorf("core: Precision.Confidence %v outside (0,1)", t.Confidence)
	case t.MaxSampleRows < 0:
		return fmt.Errorf("core: Precision.MaxSampleRows %d is negative", t.MaxSampleRows)
	case t.MinSampleRows < 0:
		return fmt.Errorf("core: Precision.MinSampleRows %d is negative", t.MinSampleRows)
	case t.MaxSampleRows > 0 && t.MinSampleRows > t.MaxSampleRows:
		return fmt.Errorf("core: Precision.MinSampleRows %d exceeds MaxSampleRows %d",
			t.MinSampleRows, t.MaxSampleRows)
	}
	return nil
}

// CI methods reported by AdaptiveResult.Method.
const (
	// CIMethodTheorem1 is the paper's distribution-free bound z/(2√r),
	// valid for null-suppression-family codecs.
	CIMethodTheorem1 = "theorem1"
	// CIMethodBootstrap is the resampled-SD interval z·SD_boot, the
	// codec-agnostic fallback (see the Bootstrap validity caveat: biased
	// low for cardinality-sensitive codecs).
	CIMethodBootstrap = "bootstrap"
)

// AdaptiveResult is the outcome of a precision-targeted estimation.
type AdaptiveResult struct {
	// Estimate is the final round's estimate, over every row drawn.
	Estimate Estimate
	// AchievedError is the final CI half-width; CILo/CIHi the interval
	// clamped to [0,1].
	AchievedError float64
	CILo, CIHi    float64
	// Rounds counts estimation rounds run (≥ 1).
	Rounds int
	// Converged reports the target was met; false means the row budget
	// was exhausted first and AchievedError is the honest residual.
	Converged bool
	// Method names how the CI was computed (CIMethodTheorem1 or
	// CIMethodBootstrap).
	Method string
}

// ExtendFunc supplies one more round of sampled rows, projected to the
// prepared index's key schema. round is ≥ 1 (round 0 drew the initial
// sample) and extra is the number of rows requested; implementations
// derive round streams so earlier rounds are never redrawn.
type ExtendFunc func(round int, extra int64) (*value.RecordArena, error)

// AdaptiveEstimate runs estimate → CI-check → extend rounds until the
// estimate's confidence interval is within target.TargetError or the row
// budget is exhausted, growing the sample geometrically (at least doubling
// each round; for Theorem-1 codecs it jumps straight to the bound-implied
// r). The achieved interval is returned alongside the estimate either way.
//
// AdaptiveEstimate mutates the PreparedIndex (ExtendFromArena) and must
// not run concurrently with other uses of it.
func (p *PreparedIndex) AdaptiveEstimate(target Precision, opts Options, extend ExtendFunc) (AdaptiveResult, error) {
	if err := target.Validate(); err != nil {
		return AdaptiveResult{}, err
	}
	target = target.withDefaults()
	if p.SampleRows() == 0 {
		return AdaptiveResult{}, fmt.Errorf("core: adaptive estimation needs a non-empty initial sample")
	}
	z := stats.NormalQuantile(1 - (1-target.Confidence)/2)
	res := AdaptiveResult{}
	for {
		est, err := p.Estimate(opts)
		if err != nil {
			return AdaptiveResult{}, err
		}
		res.Rounds++
		res.Estimate = est
		res.Method = ciMethodFor(opts)
		half, err := p.ciHalfWidth(res.Method, opts, z, target, res.Rounds)
		if err != nil {
			return AdaptiveResult{}, err
		}
		res.AchievedError = half
		res.CILo, res.CIHi = clamp01(est.CF-half), clamp01(est.CF+half)
		if half <= target.TargetError {
			res.Converged = true
			return res, nil
		}
		r := p.SampleRows()
		if target.MaxSampleRows > 0 && r >= target.MaxSampleRows {
			return res, nil // budget exhausted: honest non-convergence
		}
		next := nextSampleSize(r, res.Method, z, target)
		extra := next - r
		ext, err := extend(res.Rounds, extra)
		if err != nil {
			return AdaptiveResult{}, fmt.Errorf("core: adaptive round %d: %w", res.Rounds, err)
		}
		if ext == nil || ext.Len() == 0 {
			return AdaptiveResult{}, fmt.Errorf("core: adaptive round %d: extension supplied no rows", res.Rounds)
		}
		if err := p.ExtendFromArena(ext); err != nil {
			return AdaptiveResult{}, err
		}
	}
}

// ciMethodFor picks the CI machinery for a codec: Theorem 1's
// distribution-free bound where it applies (the null-suppression family),
// bootstrap variance everywhere else.
func ciMethodFor(opts Options) string {
	if strings.HasPrefix(opts.Codec.Name(), "nullsuppression") {
		return CIMethodTheorem1
	}
	return CIMethodBootstrap
}

// ciHalfWidth computes the current CI half-width under the given method.
func (p *PreparedIndex) ciHalfWidth(method string, opts Options, z float64, target Precision, round int) (float64, error) {
	if method == CIMethodTheorem1 {
		return z * Theorem1StdDevBound(p.SampleRows()), nil
	}
	// Bootstrap SD over the current sample arena; the resample seed
	// derives from (Seed, round) so rounds are decorrelated but replays
	// are deterministic.
	ci, err := Bootstrap(p.ar, opts.Codec, opts.PageSize, target.BootstrapResamples,
		0.05, opts.Seed^0xb007^uint64(round)<<32)
	if err != nil {
		return 0, fmt.Errorf("core: bootstrap CI: %w", err)
	}
	return z * ci.SD, nil
}

// SDScale returns the confidence-free standard-deviation scale of the
// prepared sample's CF estimate under the codec's CI method (the CI
// half-width at confidence z is z·scale): Theorem 1's 1/(2√r) for the
// null-suppression family, the bootstrap SD otherwise. It is the
// per-stratum σ_h a sharded estimation composes by stratified variance
// (stats.StratifiedSD); round decorrelates the bootstrap's resample
// stream between refinement rounds, exactly as in AdaptiveEstimate.
func (p *PreparedIndex) SDScale(opts Options, target Precision, round int) (method string, scale float64, err error) {
	target = target.withDefaults()
	method = ciMethodFor(opts)
	scale, err = p.ciHalfWidth(method, opts, 1, target, round)
	return method, scale, err
}

// nextSampleSize grows the sample: at least double (sequential-refinement
// economics: total work ≤ 2× the final round), and for Theorem-1 codecs at
// least the bound-implied r = ⌈(z/2ε)²⌉ — the bound is data-independent,
// so overshooting in rounds would only waste draws.
func nextSampleSize(r int64, method string, z float64, target Precision) int64 {
	next := 2 * r
	if method == CIMethodTheorem1 {
		if need := Theorem1RequiredRows(z, target.TargetError); need > next {
			next = need
		}
	}
	if target.MaxSampleRows > 0 && next > target.MaxSampleRows {
		next = target.MaxSampleRows
	}
	return next
}

// Theorem1RequiredRows inverts Theorem 1's bound: the smallest r with
// z/(2√r) ≤ targetError.
func Theorem1RequiredRows(z, targetError float64) int64 {
	if targetError <= 0 {
		return math.MaxInt64
	}
	return int64(math.Ceil(z * z / (4 * targetError * targetError)))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SampleCFAdaptive is the one-shot adaptive entry point: SampleCF driven to
// a precision target instead of a fixed r. It draws the initial sample,
// prepares the index once, and runs AdaptiveEstimate with fresh resumable
// uniform-WR rounds (sampling.ExtendWRInto), so no row is ever drawn twice.
// Options.SampleRows (or Fraction) seeds the first round's size when set;
// target.MaxSampleRows defaults to the table size n.
func SampleCFAdaptive(src sampling.RowSource, schema *value.Schema, opts Options, target Precision) (AdaptiveResult, error) {
	if err := opts.Validate(); err != nil {
		return AdaptiveResult{}, err
	}
	if err := target.Validate(); err != nil {
		return AdaptiveResult{}, err
	}
	opts = opts.withDefaults()
	target = target.withDefaults()
	if opts.Codec == nil {
		return AdaptiveResult{}, fmt.Errorf("core: Options.Codec is required")
	}
	if opts.Method != MethodUniformWR {
		return AdaptiveResult{}, fmt.Errorf("core: adaptive estimation supports only uniform WR sampling")
	}
	keySchema, _, err := keyProjection(schema, opts.KeyColumns)
	if err != nil {
		return AdaptiveResult{}, err
	}
	n := src.NumRows()
	if n == 0 {
		return AdaptiveResult{}, fmt.Errorf("core: source table is empty")
	}
	if target.MaxSampleRows == 0 {
		target.MaxSampleRows = n
	}
	r0 := opts.SampleRows
	if r0 <= 0 && opts.Fraction > 0 {
		r0 = sampling.SampleSize(n, opts.Fraction)
	}
	if r0 <= 0 {
		r0 = target.MinSampleRows
	}
	if r0 > target.MaxSampleRows {
		r0 = target.MaxSampleRows
	}
	if opts.Strata > 0 {
		return sampleCFAdaptiveStratified(src, schema, opts, target, r0)
	}

	drawRound := func(round int, rows int64) (*value.RecordArena, error) {
		full := value.NewRecordArena(schema, int(rows))
		if err := sampling.ExtendWRInto(src, full, rows, opts.Seed, round); err != nil {
			return nil, err
		}
		return ProjectSample(full, opts.KeyColumns)
	}

	initial, err := drawRound(0, r0)
	if err != nil {
		return AdaptiveResult{}, err
	}
	p, err := prepareArena(initial, n, keySchema)
	if err != nil {
		return AdaptiveResult{}, err
	}
	p.owned = true
	return p.AdaptiveEstimate(target, opts, drawRound)
}
