package core

import (
	"strings"
	"testing"

	"samplecf/internal/compress"
	"samplecf/internal/value"
)

func TestOptionsValidate(t *testing.T) {
	valid := []Options{
		{},                // all defaults
		{Fraction: 0.01},  // typical
		{Fraction: 1},     // boundary
		{SampleRows: 100}, // explicit r
		{FillFactor: 0.5}, // boundary interior
		{FillFactor: 1},   // boundary
		{PageSize: 4096, Fraction: 0.1},
		{Fraction: 0.5, SampleRows: 10, Seed: 3},
	}
	for i, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("valid options %d rejected: %v", i, err)
		}
	}
	invalid := []struct {
		o    Options
		want string
	}{
		{Options{Fraction: -0.1}, "negative"},
		{Options{Fraction: 1.5}, "exceeds 1"},
		{Options{SampleRows: -5}, "negative"},
		{Options{PageSize: -1}, "negative"},
		{Options{FillFactor: -0.2}, "outside (0,1]"},
		{Options{FillFactor: 1.2}, "outside (0,1]"},
	}
	for i, c := range invalid {
		err := c.o.Validate()
		if err == nil {
			t.Errorf("invalid options %d accepted: %+v", i, c.o)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("invalid options %d: error %q does not mention %q", i, err, c.want)
		}
	}
}

// TestSampleCFRejectsInvalidOptions checks the validation is actually
// wired into the estimator entry points, not just available.
func TestSampleCFRejectsInvalidOptions(t *testing.T) {
	schema, err := value.NewSchema(value.Column{Name: "v", Type: value.Int32()})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]value.Row, 100)
	for i := range rows {
		rows[i] = value.Row{value.IntValue(int32(i % 7))}
	}
	codec, err := compress.Lookup("nullsuppression")
	if err != nil {
		t.Fatal(err)
	}
	src := sliceSource(rows)

	if _, err := SampleCF(src, schema, Options{Codec: codec, Fraction: 2}); err == nil {
		t.Error("SampleCF accepted Fraction 2")
	}
	if _, err := SampleCF(src, schema, Options{Codec: codec, Fraction: -1}); err == nil {
		t.Error("SampleCF accepted Fraction -1")
	}
	if _, err := SampleCF(src, schema, Options{Codec: codec, SampleRows: -2}); err == nil {
		t.Error("SampleCF accepted SampleRows -2")
	}
	if _, err := SampleCF(src, schema, Options{Codec: codec, Fraction: 0.5, FillFactor: 3}); err == nil {
		t.Error("SampleCF accepted FillFactor 3")
	}
	if _, _, err := SampleCFWithSample(src, schema, Options{Codec: codec, Fraction: 1.01}); err == nil {
		t.Error("SampleCFWithSample accepted Fraction 1.01")
	}

	p, err := PrepareIndex(rows[:10], 100, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Estimate(Options{Codec: codec, FillFactor: -1}); err == nil {
		t.Error("PreparedIndex.Estimate accepted FillFactor -1")
	}
	// And the happy path still works.
	if _, err := SampleCF(src, schema, Options{Codec: codec, Fraction: 0.2}); err != nil {
		t.Errorf("valid SampleCF failed: %v", err)
	}
}

// sliceSource is a minimal RowSource for core tests.
type sliceSource []value.Row

func (s sliceSource) NumRows() int64 { return int64(len(s)) }
func (s sliceSource) Row(i int64) (value.Row, error) {
	return s[i], nil
}
