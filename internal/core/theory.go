package core

import (
	"fmt"
	"math"
)

// This file encodes the paper's analytical guarantees as checkable
// functions. Where the published text leaves constants implicit, the
// derivation used here is recorded in DESIGN.md ("Reconstructed analytical
// model") and validated empirically by experiments E1-E5.

// Theorem1StdDevBound returns the paper's bound on the standard deviation
// of CF'_NS: σ ≤ 1/(2√(n·f)) = 1/(2√r).
//
// Derivation: CF'_NS = (1/(r·k))·Σ(ℓⱼ+h) is a scaled mean of r iid draws of
// ℓ+h ∈ [h, k+h], a range of width k. Popoviciu's inequality gives
// Var(ℓ+h) ≤ k²/4, so Var(CF') ≤ k²/(4·r·k²) = 1/(4r).
func Theorem1StdDevBound(r int64) float64 {
	if r <= 0 {
		return math.Inf(1)
	}
	return 1 / (2 * math.Sqrt(float64(r)))
}

// Theorem1StdDevExact returns the exact standard deviation of CF'_NS given
// the population variance of ℓ: σ = σ_ℓ/(k·√r). Experiments compare the
// measured spread against this and against the distribution-free bound.
func Theorem1StdDevExact(varNS float64, k int, r int64) float64 {
	if r <= 0 || k <= 0 || varNS < 0 {
		return math.NaN()
	}
	return math.Sqrt(varNS) / (float64(k) * math.Sqrt(float64(r)))
}

// Example1 reproduces the paper's Example 1: n = 100 million rows, a 1%
// sample (r = 1 million) gives σ(CF'_NS) ≤ 5·10⁻⁴.
func Example1() (n, r int64, bound float64) {
	n = 100_000_000
	r = 1_000_000
	return n, r, Theorem1StdDevBound(r)
}

// Theorem2RatioBound bounds the expected ratio error of CF'_D in the
// small-d regime (d = o(n)): with CF = p/k + d/n and CF' = p/k + d'/r,
// 0 ≤ d'/r ≤ min(1, d/r aside, always ≤ 1) and d'/r's expectation is at
// most d/r = d/(f·n), so
//
//	ratio ≤ 1 + (d/(f·n))·(k/p)   (overestimate direction)
//	ratio ≤ 1 + (d/n)·(k/p)       (underestimate direction, d' ≥ small)
//
// The returned bound is the max of the two; it converges to 1 as d/n → 0,
// which is Theorem 2's content.
func Theorem2RatioBound(n, d int64, f float64, k, p int) (float64, error) {
	if n <= 0 || d < 0 || f <= 0 || f > 1 || k <= 0 || p <= 0 {
		return 0, fmt.Errorf("core: invalid theorem-2 parameters n=%d d=%d f=%v k=%d p=%d", n, d, f, k, p)
	}
	over := 1 + float64(d)/(f*float64(n))*float64(k)/float64(p)
	under := 1 + float64(d)/float64(n)*float64(k)/float64(p)
	return math.Max(over, under), nil
}

// Theorem3RatioBound bounds the expected ratio error of CF'_D in the
// large-d regime (d ≥ β·n), independent of n:
//
//   - CF never exceeds p/k + 1 (d ≤ n) and never drops below p/k + β.
//   - In a WR sample of r = f·n rows, each of the ≥ β·n distinct values is
//     seen with probability ≥ 1-(1-1/n)^r ≥ 1-e^{-f}, so
//     E[d']/r ≥ β·(1-e^{-f})/f.
//
// The expected ratio error is then at most
//
//	max( (p/k + 1) / (p/k + β·(1-e^{-f})/f·min(1,·)) ,
//	     (p/k + 1) / (p/k + β) )
//
// a constant in n — Theorem 3's content. (Jensen slack on E[max(X/Y,Y/X)]
// is absorbed by the empirical validation in E4.)
func Theorem3RatioBound(beta, f float64, k, p int) (float64, error) {
	if beta <= 0 || beta > 1 || f <= 0 || f > 1 || k <= 0 || p <= 0 {
		return 0, fmt.Errorf("core: invalid theorem-3 parameters β=%v f=%v k=%d p=%d", beta, f, k, p)
	}
	pk := float64(p) / float64(k)
	seen := (1 - math.Exp(-f)) / f // fraction of a value's presence visible at fraction f
	if seen > 1 {
		seen = 1
	}
	under := (pk + 1) / (pk + beta*seen)
	over := (pk + 1) / (pk + beta)
	return math.Max(under, over), nil
}

// NSConfidenceInterval returns a two-sided interval CF' ± z·bound where
// bound is Theorem 1's distribution-free σ bound; usable without knowing
// anything about the data (the selling point of a worst-case guarantee).
func NSConfidenceInterval(cfEst float64, r int64, z float64) (lo, hi float64) {
	half := z * Theorem1StdDevBound(r)
	lo, hi = cfEst-half, cfEst+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
