package core

import (
	"fmt"
	"math"

	"samplecf/internal/sampling"
	"samplecf/internal/value"
)

// The paper's Theorem 1 assumes independent row draws; commercial systems
// sample whole pages. Cluster-sampling theory says the page-sampled
// estimator's variance is the independent-draw variance times the DESIGN
// EFFECT
//
//	deff = 1 + (m̄ - 1)·ρ,
//
// where m̄ is the (adjusted) rows-per-page and ρ the intra-page correlation
// of the per-row statistic (here the NS record size ℓ+h). On shuffled
// layouts ρ ≈ 0 and block sampling is as good as row sampling; on clustered
// layouts rows sharing a page share values, ρ → 1, and the effective sample
// size collapses from r to r/m̄. This file makes that analysis executable —
// the quantitative form of the paper's "extend the analysis to account for
// page sampling" future work.

// DesignEffect summarizes the intra-page correlation analysis of a table's
// physical layout for the NS statistic.
type DesignEffect struct {
	// Rho is the estimated intra-page correlation coefficient of the
	// per-row NS size, from a one-way ANOVA across pages.
	Rho float64
	// MeanRowsPerPage is the ANOVA-adjusted average cluster size m̄.
	MeanRowsPerPage float64
	// Deff = 1 + (m̄-1)·ρ, clamped to ≥ 1e-9.
	Deff float64
	// Pages and Rows count the population measured.
	Pages int
	Rows  int64
}

// EstimateDesignEffect computes the design effect of block-sampling the
// given page source for an NS estimate over keySchema rows (pass the table
// schema when the index covers all columns). It scans every page once.
func EstimateDesignEffect(ps sampling.PageSource, keySchema *value.Schema, project []int) (DesignEffect, error) {
	k := ps.NumPages()
	if k < 2 {
		return DesignEffect{}, fmt.Errorf("core: design effect needs >= 2 pages, have %d", k)
	}
	// One-way ANOVA over pages: grand/group sums of the per-row NS size.
	var n int64
	var grandSum, grandSumSq float64
	groupMeans := make([]float64, 0, k)
	groupSizes := make([]int64, 0, k)
	var ssWithin float64
	for p := 0; p < k; p++ {
		rows, err := ps.PageRows(p)
		if err != nil {
			return DesignEffect{}, err
		}
		if len(rows) == 0 {
			continue
		}
		var sum, sumSq float64
		for _, row := range rows {
			krow := row
			if project != nil {
				krow = projectRow(row, project)
			}
			y := float64(nsRecordSize(keySchema, krow))
			sum += y
			sumSq += y * y
		}
		m := float64(len(rows))
		mean := sum / m
		ssWithin += sumSq - m*mean*mean
		groupMeans = append(groupMeans, mean)
		groupSizes = append(groupSizes, int64(len(rows)))
		grandSum += sum
		grandSumSq += sumSq
		n += int64(len(rows))
	}
	kEff := len(groupMeans)
	if kEff < 2 || n <= int64(kEff) {
		return DesignEffect{}, fmt.Errorf("core: design effect needs >= 2 non-empty pages and n > pages")
	}
	grandMean := grandSum / float64(n)
	var ssBetween float64
	var sumSqSizes float64
	for i, mean := range groupMeans {
		m := float64(groupSizes[i])
		ssBetween += m * (mean - grandMean) * (mean - grandMean)
		sumSqSizes += m * m
	}
	msb := ssBetween / float64(kEff-1)
	msw := ssWithin / float64(n-int64(kEff))
	// ANOVA-adjusted cluster size (accounts for unequal pages).
	mAdj := (float64(n) - sumSqSizes/float64(n)) / float64(kEff-1)
	var rho float64
	denom := msb + (mAdj-1)*msw
	if denom > 0 {
		rho = (msb - msw) / denom
	}
	if rho < 0 {
		rho = 0 // negative ICC estimates are noise around an unclustered layout
	}
	if rho > 1 {
		rho = 1
	}
	deff := 1 + (mAdj-1)*rho
	if deff < 1e-9 {
		deff = 1e-9
	}
	return DesignEffect{
		Rho:             rho,
		MeanRowsPerPage: mAdj,
		Deff:            deff,
		Pages:           kEff,
		Rows:            n,
	}, nil
}

// nsRecordSize is the per-row statistic: Σ over columns of (ℓ + h).
func nsRecordSize(keySchema *value.Schema, row value.Row) int {
	size := 0
	for c := 0; c < keySchema.NumColumns(); c++ {
		t := keySchema.Column(c).Type
		size += value.NullSuppressedLen(t, row[c]) + lenHeaderBytes(t.FixedWidth())
	}
	return size
}

// BlockSamplingNSStdDevBound is the distribution-free Theorem-1 bound
// corrected for cluster sampling: √deff / (2√r). With deff = 1 it reduces
// to Theorem 1; with fully correlated pages (ρ=1) it degrades by √m̄ —
// the effective sample is pages, not rows.
func BlockSamplingNSStdDevBound(r int64, deff float64) float64 {
	if deff < 1e-9 {
		deff = 1e-9
	}
	return math.Sqrt(deff) * Theorem1StdDevBound(r)
}
