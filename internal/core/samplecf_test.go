package core

import (
	"math"
	"testing"

	"samplecf/internal/compress"
	"samplecf/internal/distrib"
	"samplecf/internal/stats"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// genTable materializes a single-CHAR(20)-column table with d distinct
// values and the given length distribution.
func genTable(t testing.TB, n, d int64, lengths distrib.Lengths, seed uint64) *workload.Table {
	t.Helper()
	col, err := workload.NewStringColumn(value.Char(20), distrib.NewUniform(d), lengths, seed)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "t", N: n, Seed: seed,
		Cols: []workload.SpecColumn{{Name: "a", Gen: col}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func mustCodec(t testing.TB, name string) compress.Codec {
	t.Helper()
	c, err := compress.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSampleCFBasicRun(t *testing.T) {
	tab := genTable(t, 10000, 100, distrib.NewUniformLen(2, 18), 1)
	est, err := SampleCF(tab, tab.Schema(), Options{
		Fraction: 0.05,
		Codec:    mustCodec(t, "nullsuppression"),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.SampleRows != 500 {
		t.Fatalf("SampleRows = %d, want 500", est.SampleRows)
	}
	if est.CF <= 0 || est.CF >= 1 {
		t.Fatalf("CF = %v, want in (0,1)", est.CF)
	}
	if est.SampleDistinct <= 0 || est.SampleDistinct > 100 {
		t.Fatalf("d' = %d", est.SampleDistinct)
	}
	if err := est.Profile.Validate(); err != nil {
		t.Fatalf("profile invalid: %v", err)
	}
}

func TestSampleCFValidation(t *testing.T) {
	tab := genTable(t, 100, 10, distrib.NewConstantLen(5), 1)
	if _, err := SampleCF(tab, tab.Schema(), Options{Fraction: 0.1}); err == nil {
		t.Error("missing codec accepted")
	}
	if _, err := SampleCF(tab, tab.Schema(), Options{Codec: mustCodec(t, "nullsuppression")}); err == nil {
		t.Error("zero sample size accepted")
	}
	if _, err := SampleCF(tab, tab.Schema(), Options{
		Fraction: 0.1, Codec: mustCodec(t, "nullsuppression"), KeyColumns: []string{"zzz"},
	}); err == nil {
		t.Error("bad key column accepted")
	}
	if _, err := SampleCF(tab, tab.Schema(), Options{
		Fraction: 0.1, Codec: mustCodec(t, "nullsuppression"), Method: MethodBlock,
	}); err == nil {
		t.Error("block sampling without Pages accepted")
	}
	empty, err := workload.NewTableFromRows("e", tab.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SampleCF(empty, tab.Schema(), Options{
		Fraction: 0.5, Codec: mustCodec(t, "nullsuppression"),
	}); err == nil {
		t.Error("empty table accepted")
	}
}

func TestSampleCFDeterministicInSeed(t *testing.T) {
	tab := genTable(t, 5000, 200, distrib.NewUniformLen(1, 19), 3)
	opts := Options{Fraction: 0.02, Codec: mustCodec(t, "nullsuppression"), Seed: 99}
	a, err := SampleCF(tab, tab.Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleCF(tab, tab.Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.CF != b.CF || a.SampleDistinct != b.SampleDistinct {
		t.Fatalf("same seed, different results: %v vs %v", a, b)
	}
	opts.Seed = 100
	c, err := SampleCF(tab, tab.Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.CF == c.CF {
		t.Log("different seeds gave identical CF (possible but unlikely)")
	}
}

func TestSampleCFFullSampleMatchesTruthNS(t *testing.T) {
	// f = 1 with WOR sampling = the whole table: the estimate IS the truth.
	tab := genTable(t, 2000, 50, distrib.NewUniformLen(0, 20), 5)
	est, err := SampleCF(tab, tab.Schema(), Options{
		Fraction: 1.0,
		Method:   MethodUniformWOR,
		Codec:    mustCodec(t, "nullsuppression"),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := TrueCF(tab, nil, mustCodec(t, "nullsuppression"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.CF-truth.CF()) > 1e-12 {
		t.Fatalf("full-sample estimate %v != truth %v", est.CF, truth.CF())
	}
	// And both match the analytical formula from exact column stats.
	st, err := workload.ComputeStats(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := st[0].CFNullSuppression(20, 1)
	if math.Abs(truth.CF()-want) > 1e-12 {
		t.Fatalf("engine truth %v != analytic %v", truth.CF(), want)
	}
}

func TestSampleCFIndexPathMatchesFastPathNS(t *testing.T) {
	// For per-record codecs (NS), compressing B+-tree leaves and
	// compressing sorted record chunks must give identical CF.
	tab := genTable(t, 3000, 100, distrib.NewUniformLen(2, 18), 8)
	base := Options{Fraction: 0.1, Codec: mustCodec(t, "nullsuppression"), Seed: 4}
	fast, err := SampleCF(tab, tab.Schema(), base)
	if err != nil {
		t.Fatal(err)
	}
	withIndex := base
	withIndex.BuildIndex = true
	idx, err := SampleCF(tab, tab.Schema(), withIndex)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.CF-idx.CF) > 1e-12 {
		t.Fatalf("fast path CF %v != index path CF %v", fast.CF, idx.CF)
	}
	if fast.SampleDistinct != idx.SampleDistinct {
		t.Fatalf("d' differs: %d vs %d", fast.SampleDistinct, idx.SampleDistinct)
	}
}

func TestSampleCFIndexPathClosePageDict(t *testing.T) {
	// For page-grouping-sensitive codecs the two paths differ only through
	// rows-per-page effects; CF must agree within a few percent.
	tab := genTable(t, 5000, 40, distrib.NewConstantLen(10), 9)
	base := Options{Fraction: 0.2, Codec: mustCodec(t, "pagedict"), Seed: 4}
	fast, err := SampleCF(tab, tab.Schema(), base)
	if err != nil {
		t.Fatal(err)
	}
	withIndex := base
	withIndex.BuildIndex = true
	idx, err := SampleCF(tab, tab.Schema(), withIndex)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(fast.CF-idx.CF) / idx.CF; rel > 0.05 {
		t.Fatalf("paths diverge: fast %v vs index %v (rel %v)", fast.CF, idx.CF, rel)
	}
}

func TestSampleCFAgnosticAcrossCodecs(t *testing.T) {
	// The pipeline must run unchanged for every registered codec — the
	// paper's "requires no modification for a new compression technique".
	tab := genTable(t, 2000, 30, distrib.NewUniformLen(3, 17), 11)
	for _, name := range compress.Names() {
		est, err := SampleCF(tab, tab.Schema(), Options{
			Fraction: 0.05, Codec: mustCodec(t, name), Seed: 2,
		})
		if err != nil {
			t.Errorf("codec %s: %v", name, err)
			continue
		}
		if est.CF <= 0 || math.IsNaN(est.CF) {
			t.Errorf("codec %s: CF = %v", name, est.CF)
		}
	}
}

func TestSampleCFKeyColumnsProjection(t *testing.T) {
	// Two-column table, index on the second column only.
	sc, err := workload.NewStringColumn(value.Char(12), distrib.NewUniform(500), distrib.NewUniformLen(2, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := workload.NewIntColumn(value.Int32(), distrib.NewUniform(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "two", N: 3000, Seed: 6,
		Cols: []workload.SpecColumn{{Name: "s", Gen: sc}, {Name: "id", Gen: ic}},
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := SampleCF(tab, tab.Schema(), Options{
		Fraction:   0.1,
		Codec:      mustCodec(t, "globaldict-p4"),
		KeyColumns: []string{"id"},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only 10 distinct ids exist.
	if est.SampleDistinct > 10 {
		t.Fatalf("d' = %d on a 10-value column", est.SampleDistinct)
	}
	if est.Result.UncompressedBytes != est.SampleRows*4 {
		t.Fatalf("uncompressed = %d, want %d (INT width 4)", est.Result.UncompressedBytes, est.SampleRows*4)
	}
}

func TestSampleCFBlockSampling(t *testing.T) {
	tab := genTable(t, 4000, 50, distrib.NewUniformLen(2, 18), 13)
	pv, err := tab.AsPageSource(100)
	if err != nil {
		t.Fatal(err)
	}
	est, err := SampleCF(tab, tab.Schema(), Options{
		Fraction: 0.1,
		Method:   MethodBlock,
		Pages:    pv,
		Codec:    mustCodec(t, "nullsuppression"),
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10% of 40 pages = 4 pages × 100 rows.
	if est.SampleRows != 400 {
		t.Fatalf("block sample rows = %d, want 400", est.SampleRows)
	}
}

func TestTrueCFGlobalDictMatchesClosedForm(t *testing.T) {
	tab := genTable(t, 3000, 150, distrib.NewConstantLen(8), 17)
	res, err := TrueCF(tab, nil, compress.GlobalDict{PointerBytes: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.ComputeStats(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := st[0].CFGlobalDict(20, 4)
	// The engine result includes a few framing bytes; tolerance is tiny.
	if math.Abs(res.CF()-want) > 0.001 {
		t.Fatalf("engine CF %v vs closed form %v", res.CF(), want)
	}
	if res.DictEntries != st[0].Distinct {
		t.Fatalf("dict entries %d vs true distinct %d", res.DictEntries, st[0].Distinct)
	}
}

func TestSampleCFEstimatesTruthWithinTolerance(t *testing.T) {
	// End-to-end accuracy smoke test: NS estimate within 3·bound of truth.
	tab := genTable(t, 20000, 500, distrib.NewUniformLen(0, 20), 19)
	truth, err := TrueCF(tab, nil, mustCodec(t, "nullsuppression"), 0)
	if err != nil {
		t.Fatal(err)
	}
	var acc stats.Accumulator
	for seed := uint64(0); seed < 20; seed++ {
		est, err := SampleCF(tab, tab.Schema(), Options{
			Fraction: 0.01, Codec: mustCodec(t, "nullsuppression"), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(est.CF)
	}
	bound := Theorem1StdDevBound(200)
	if math.Abs(acc.Mean()-truth.CF()) > 3*bound {
		t.Fatalf("mean estimate %v vs truth %v (3·bound = %v)", acc.Mean(), truth.CF(), 3*bound)
	}
	if acc.StdDev() > bound*1.2 { // sampling error on the SD itself
		t.Fatalf("σ = %v exceeds Theorem 1 bound %v", acc.StdDev(), bound)
	}
}

func BenchmarkSampleCFNS1Pct(b *testing.B) {
	tab := genTable(b, 100000, 1000, distrib.NewUniformLen(2, 18), 1)
	codec := mustCodec(b, "nullsuppression")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SampleCF(tab, tab.Schema(), Options{
			Fraction: 0.01, Codec: codec, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleCFWithIndexBuild(b *testing.B) {
	tab := genTable(b, 100000, 1000, distrib.NewUniformLen(2, 18), 1)
	codec := mustCodec(b, "nullsuppression")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SampleCF(tab, tab.Schema(), Options{
			Fraction: 0.01, Codec: codec, Seed: uint64(i), BuildIndex: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrueCFFullCompression(b *testing.B) {
	// The naive alternative SampleCF exists to avoid (paper §I).
	tab := genTable(b, 100000, 1000, distrib.NewUniformLen(2, 18), 1)
	codec := mustCodec(b, "nullsuppression")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrueCF(tab, nil, codec, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSampleCFBlockPageCountCeil is the regression test for block-sampling
// page-count rounding: the number of pages drawn must be
// ⌈NumPages·r/n⌉, never round-to-nearest. With 14 pages of 10 rows and
// r = 14 (10% of 140), pages·r/n = 1.4: round-to-nearest drew 1 page (10
// rows — fewer than the r requested), ceil draws 2 (20 rows, covering r).
func TestSampleCFBlockPageCountCeil(t *testing.T) {
	tab := genTable(t, 140, 10, distrib.NewUniformLen(2, 18), 3)
	pv, err := tab.AsPageSource(10)
	if err != nil {
		t.Fatal(err)
	}
	est, err := SampleCF(tab, tab.Schema(), Options{
		Fraction: 0.1, // r = 14 rows → 1.4 pages pre-ceil
		Codec:    mustCodec(t, "nullsuppression"),
		Method:   MethodBlock,
		Pages:    pv,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.SampleRows != 20 {
		t.Fatalf("block sample covered %d rows, want 20 (2 pages of 10: ceil(1.4))", est.SampleRows)
	}
	// A fraction so small it rounds to zero pages still draws one page.
	est, err = SampleCF(tab, tab.Schema(), Options{
		SampleRows: 1, // 14·(1/140) = 0.1 pages pre-clamp
		Codec:      mustCodec(t, "nullsuppression"),
		Method:     MethodBlock,
		Pages:      pv,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.SampleRows != 10 {
		t.Fatalf("tiny-fraction block sample covered %d rows, want one full page (10)", est.SampleRows)
	}
}
