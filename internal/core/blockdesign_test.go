package core

import (
	"testing"

	"samplecf/internal/distrib"
	"samplecf/internal/stats"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// blockTable builds the adversarial layout for block sampling: bimodal
// lengths tied to values (every value is all-short or all-long), so a
// clustered layout makes pages internally homogeneous (ρ → 1).
func blockTable(t testing.TB, n int64, layout workload.Layout) *workload.Table {
	t.Helper()
	col, err := workload.NewStringColumn(
		value.Char(20), distrib.NewUniform(200), distrib.NewBimodalLen(0, 20, 0.5), 51)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "bd", N: n, Seed: 51, Layout: layout,
		Cols: []workload.SpecColumn{{Name: "a", Gen: col}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestDesignEffectShuffledVsClustered(t *testing.T) {
	const n = 20000
	const perPage = 100
	shuffled := blockTable(t, n, workload.LayoutShuffled)
	clustered := blockTable(t, n, workload.LayoutClustered)

	psS, err := shuffled.AsPageSource(perPage)
	if err != nil {
		t.Fatal(err)
	}
	psC, err := clustered.AsPageSource(perPage)
	if err != nil {
		t.Fatal(err)
	}
	deS, err := EstimateDesignEffect(psS, shuffled.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	deC, err := EstimateDesignEffect(psC, clustered.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if deS.Rho > 0.05 {
		t.Errorf("shuffled layout ρ = %v, want ≈0", deS.Rho)
	}
	if deS.Deff > 5 {
		t.Errorf("shuffled deff = %v, want ≈1", deS.Deff)
	}
	// Clustered: 100 rows per value run / 100 rows per page — a typical page
	// straddles two runs, so ρ is high but below 1 (measured ≈ 0.68).
	if deC.Rho < 0.5 {
		t.Errorf("clustered ρ = %v, want substantially positive", deC.Rho)
	}
	if deC.Deff < 50 {
		t.Errorf("clustered deff = %v, want near %d", deC.Deff, perPage)
	}
	if deC.Rows != n || deC.Pages != n/perPage {
		t.Errorf("population accounting: rows=%d pages=%d", deC.Rows, deC.Pages)
	}
}

func TestBlockSamplingBoundCorrection(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// On the adversarial clustered layout, measured block-sampling spread
	// VIOLATES the naive Theorem-1 bound but respects the deff-corrected
	// one — the quantitative reason the paper flags page sampling as
	// needing its own analysis.
	const n = 20000
	const perPage = 100
	const f = 0.05
	clustered := blockTable(t, n, workload.LayoutClustered)
	ps, err := clustered.AsPageSource(perPage)
	if err != nil {
		t.Fatal(err)
	}
	de, err := EstimateDesignEffect(ps, clustered.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	codec := mustCodec(t, "nullsuppression")
	var acc stats.Accumulator
	var r int64
	for seed := uint64(0); seed < 60; seed++ {
		est, err := SampleCF(clustered, clustered.Schema(), Options{
			Fraction: f, Method: MethodBlock, Pages: ps, Codec: codec, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(est.CF)
		r = est.SampleRows
	}
	naive := Theorem1StdDevBound(r)
	corrected := BlockSamplingNSStdDevBound(r, de.Deff)
	if acc.StdDev() <= naive {
		t.Fatalf("expected naive bound violation: sd %v <= naive %v (deff %v)",
			acc.StdDev(), naive, de.Deff)
	}
	if acc.StdDev() > 1.5*corrected {
		t.Fatalf("corrected bound failed: sd %v > 1.5×%v", acc.StdDev(), corrected)
	}
}

func TestDesignEffectValidation(t *testing.T) {
	tab := blockTable(t, 50, workload.LayoutShuffled)
	ps, err := tab.AsPageSource(100) // single page
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateDesignEffect(ps, tab.Schema(), nil); err == nil {
		t.Fatal("single-page population accepted")
	}
}
