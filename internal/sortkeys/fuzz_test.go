package sortkeys

import (
	"bytes"
	"testing"
)

// FuzzSortProfile feeds arbitrary byte soup through the radix sort at
// several worker widths and cross-checks the permutation's key sequence
// and fused profile against the sort.Sort oracle. The corpus seeds cover
// the structural edge cases; CI runs a short -fuzztime smoke on top.
func FuzzSortProfile(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0x00}, uint8(1))
	f.Add(bytes.Repeat([]byte{0x7F}, 64), uint8(4))
	f.Add([]byte("abcabcabcabcabcabc"), uint8(3))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, uint8(8))
	f.Add(bytes.Repeat([]byte{0xFF, 0x00}, 600), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, widthSeed uint8) {
		w := int(widthSeed%16) + 1
		n := len(data) / w
		keys := data[:n*w]

		refPerm := identity(n)
		wantProfile := refSortProfile(keys, w, refPerm)
		for _, workers := range []int{1, 3} {
			perm := identity(n)
			got := SortProfileWorkers(keys, w, perm, workers)
			seen := make([]bool, n)
			for _, p := range perm {
				if p < 0 || int(p) >= n || seen[p] {
					t.Fatalf("workers=%d: not a permutation (index %d)", workers, p)
				}
				seen[p] = true
			}
			for i := 0; i < n; i++ {
				a := int(perm[i]) * w
				b := int(refPerm[i]) * w
				if !bytes.Equal(keys[a:a+w], keys[b:b+w]) {
					t.Fatalf("workers=%d: key sequence diverges from oracle at %d", workers, i)
				}
			}
			if len(got) != len(wantProfile) {
				t.Fatalf("workers=%d: profile %v, oracle %v", workers, got, wantProfile)
			}
			for i := range got {
				if got[i] != wantProfile[i] {
					t.Fatalf("workers=%d: profile %v, oracle %v", workers, got, wantProfile)
				}
			}
		}
	})
}
