package sortkeys

import (
	"bytes"
	"sort"
	"testing"

	"samplecf/internal/distinct"
	"samplecf/internal/rng"
)

// refSorter is the pre-radix implementation (core's arenaSorter): a
// concrete sort.Interface comparing whole fixed-width keys. The property
// tests treat it as the oracle the radix sort must match key-for-key.
type refSorter struct {
	keys []byte
	w    int
	perm []int32
}

func (s *refSorter) Len() int { return len(s.perm) }
func (s *refSorter) Less(i, j int) bool {
	a := int(s.perm[i]) * s.w
	b := int(s.perm[j]) * s.w
	return bytes.Compare(s.keys[a:a+s.w], s.keys[b:b+s.w]) < 0
}
func (s *refSorter) Swap(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] }

// refSortProfile runs the oracle pipeline: comparison sort, then the
// separate adjacent-compare profiling pass the old prepare stage paid.
func refSortProfile(keys []byte, w int, perm []int32) []distinct.FreqCount {
	sort.Sort(&refSorter{keys: keys, w: w, perm: perm})
	return ProfileSorted(keys, w, perm)
}

func identity(n int) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}

// checkAgainstRef asserts the radix sort at every worker width produces a
// valid permutation whose key sequence and run-length profile are
// byte-identical to the oracle's.
func checkAgainstRef(t *testing.T, keys []byte, w, n int) {
	t.Helper()
	refPerm := identity(n)
	wantProfile := refSortProfile(keys, w, refPerm)
	for _, workers := range []int{1, 2, 3, 8} {
		perm := identity(n)
		got := SortProfileWorkers(keys, w, perm, workers)
		if len(perm) != n {
			t.Fatalf("workers=%d: perm length %d, want %d", workers, len(perm), n)
		}
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || int(p) >= n || seen[p] {
				t.Fatalf("workers=%d: perm is not a permutation (index %d)", workers, p)
			}
			seen[p] = true
		}
		for i := 0; i < n; i++ {
			a := int(perm[i]) * w
			b := int(refPerm[i]) * w
			if !bytes.Equal(keys[a:a+w], keys[b:b+w]) {
				t.Fatalf("workers=%d: key sequence diverges from sort.Sort oracle at position %d", workers, i)
			}
		}
		if len(got) != len(wantProfile) {
			t.Fatalf("workers=%d: profile has %d classes, oracle %d: %v vs %v",
				workers, len(got), len(wantProfile), got, wantProfile)
		}
		for i := range got {
			if got[i] != wantProfile[i] {
				t.Fatalf("workers=%d: profile class %d = %+v, oracle %+v", workers, i, got[i], wantProfile[i])
			}
		}
		// Sort alone must produce the same key order as SortProfile.
		perm2 := identity(n)
		SortWorkers(keys, w, perm2, workers)
		for i := 0; i < n; i++ {
			a := int(perm2[i]) * w
			b := int(perm[i]) * w
			if !bytes.Equal(keys[a:a+w], keys[b:b+w]) {
				t.Fatalf("workers=%d: Sort and SortProfile key orders diverge at %d", workers, i)
			}
		}
	}
}

// genKeys builds n w-byte keys drawing each from d distinct values; near
// sorted inputs start ordered and swap a few pairs.
func genKeys(g *rng.RNG, n, w int, d int64, nearSorted bool) []byte {
	vals := make([][]byte, d)
	for i := range vals {
		v := make([]byte, w)
		for j := range v {
			v[j] = byte(g.Intn(256))
		}
		vals[i] = v
	}
	if nearSorted {
		sort.Slice(vals, func(i, j int) bool { return bytes.Compare(vals[i], vals[j]) < 0 })
	}
	keys := make([]byte, 0, n*w)
	for i := 0; i < n; i++ {
		var v []byte
		if nearSorted {
			v = vals[(i*int(d))/n]
		} else {
			v = vals[g.Intn(int(d))]
		}
		keys = append(keys, v...)
	}
	return keys
}

func TestSortProfileMatchesReference(t *testing.T) {
	g := rng.New(7)
	for _, w := range []int{1, 3, 8, 20, 64} {
		for _, n := range []int{0, 1, 2, 17, 100, 1000, 20000} {
			for _, tc := range []struct {
				name       string
				d          int64
				nearSorted bool
			}{
				{"dup-heavy", 5, false},
				{"moderate", 64, false},
				{"unique-ish", int64(n) + 1, false},
				{"near-sorted", 32, true},
			} {
				if tc.d < 1 {
					tc.d = 1
				}
				keys := genKeys(g, n, w, tc.d, tc.nearSorted)
				t.Run("", func(t *testing.T) {
					checkAgainstRef(t, keys, w, n)
				})
			}
		}
	}
}

func TestSortProfileAllEqual(t *testing.T) {
	const n, w = 5000, 12
	keys := bytes.Repeat([]byte{0xAB}, n*w)
	checkAgainstRef(t, keys, w, n)
	perm := identity(n)
	freqs := SortProfile(keys, w, perm)
	if len(freqs) != 1 || freqs[0].Count != n || freqs[0].Num != 1 {
		t.Fatalf("all-equal profile = %+v, want one run of %d", freqs, n)
	}
}

func TestSortZeroWidth(t *testing.T) {
	perm := identity(4)
	freqs := SortProfile(nil, 0, perm)
	if len(freqs) != 1 || freqs[0].Count != 4 || freqs[0].Num != 1 {
		t.Fatalf("zero-width profile = %+v, want one run of 4", freqs)
	}
}

// TestSortLongRunsOverflow drives run lengths past smallRunCap so the
// overflow map path and its ascending merge are exercised.
func TestSortLongRunsOverflow(t *testing.T) {
	const w = 4
	var keys []byte
	// 700 copies of key A, 600 of key B, 3 of key C.
	for i, cnt := range []int{700, 600, 3} {
		k := []byte{byte(i), 0xFF, 0x00, byte(i)}
		for j := 0; j < cnt; j++ {
			keys = append(keys, k...)
		}
	}
	n := len(keys) / w
	checkAgainstRef(t, keys, w, n)
	perm := identity(n)
	freqs := SortProfile(keys, w, perm)
	want := []distinct.FreqCount{{Count: 3, Num: 1}, {Count: 600, Num: 1}, {Count: 700, Num: 1}}
	if len(freqs) != len(want) {
		t.Fatalf("profile = %+v, want %+v", freqs, want)
	}
	for i := range want {
		if freqs[i] != want[i] {
			t.Fatalf("profile = %+v, want %+v", freqs, want)
		}
	}
}

// TestSortParallelDeterminism re-sorts the same input at several worker
// widths and checks the emitted key sequence and profile never vary —
// worker interleaving must be unobservable.
func TestSortParallelDeterminism(t *testing.T) {
	g := rng.New(99)
	const n, w = 50000, 16
	keys := genKeys(g, n, w, 200, false)
	base := identity(n)
	baseProfile := SortProfileWorkers(keys, w, base, 1)
	for trial := 0; trial < 3; trial++ {
		for _, workers := range []int{2, 4, 8} {
			perm := identity(n)
			profile := SortProfileWorkers(keys, w, perm, workers)
			for i := 0; i < n; i++ {
				a := int(perm[i]) * w
				b := int(base[i]) * w
				if !bytes.Equal(keys[a:a+w], keys[b:b+w]) {
					t.Fatalf("workers=%d trial %d: key sequence varies at %d", workers, trial, i)
				}
			}
			if len(profile) != len(baseProfile) {
				t.Fatalf("workers=%d trial %d: profile varies", workers, trial)
			}
			for i := range profile {
				if profile[i] != baseProfile[i] {
					t.Fatalf("workers=%d trial %d: profile varies at class %d", workers, trial, i)
				}
			}
		}
	}
}
