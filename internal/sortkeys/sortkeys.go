// Package sortkeys sorts permutations over fixed-width memcomparable keys —
// the one sort the estimation pipeline performs (Fig. 2 step 2: order the
// sampled index records) — and profiles equal-key runs as a by-product.
//
// The estimators only ever consume sorted, deduplicated keys, and keys in a
// value.RecordArena are fixed-width byte strings, so a comparison sort pays
// for generality nothing here needs: sort.Sort costs an interface dispatch
// plus a bytes.Compare per comparison on every one of its O(r log r) steps,
// then the caller pays a second full pass to rebuild the run-length
// frequency profile the sort already implicitly discovered. This package
// replaces both with one MSD byte-radix pass structure:
//
//   - a 256-way counting pass per byte column distributes the permutation
//     (never the keys) through a shared scratch buffer — no key bytes move;
//   - buckets at or below a small cutoff finish with an insertion sort on
//     the undistinguished key suffix;
//   - buckets that exhaust the key width, singleton buckets, and the
//     adjacent-equal runs of insertion-sorted buckets are exactly the
//     equal-key runs of the final order, so the run-length frequency
//     profile ([]distinct.FreqCount) falls out of the recursion for free —
//     sort and profiling fused into one pass over the data;
//   - large buckets recurse on a bounded worker group (≤ min(GOMAXPROCS,
//     workgroup.MaxWorkers), the same discipline as compress.MeasureArena),
//     each goroutine accumulating its own profile histogram, merged once at
//     the end. Bucket ranges are disjoint, so workers share the scratch
//     buffer without synchronization.
//
// Ordering contract: the resulting permutation sorts keys ascending. The
// order of equal keys is NOT stable and may differ from sort.Sort's — every
// consumer (page chunking for compression measurement, run-length
// profiling, B+-tree bulk loads) sees only the key byte sequence, and in a
// RecordArena equal keys imply equal records (the key encoding is bijective
// with the record encoding), so tie order is unobservable downstream: the
// measured byte stream and the profile are byte-identical to the old
// comparison sort's.
package sortkeys

import (
	"bytes"
	"slices"
	"sync"

	"samplecf/internal/distinct"
	"samplecf/internal/faults"
	"samplecf/internal/workgroup"
)

const (
	// insertionCutoff is the bucket size at or below which the recursion
	// finishes with an insertion sort on key suffixes instead of another
	// counting pass. It is deliberately generous: a counting pass zeroes
	// and scans 256 counters per byte column, so duplicate-heavy buckets —
	// which stay byte-identical for many columns — are far cheaper to
	// finish by comparison, where an equal run costs one suffix compare
	// per adjacent pair.
	insertionCutoff = 64
	// parallelCutoff is the minimum bucket size worth handing to another
	// goroutine; smaller buckets recurse inline.
	parallelCutoff = 4096
	// smallRunCap bounds the array part of the run-length histogram; runs
	// longer than this (one key occupying >512 rows) spill to a map.
	smallRunCap = 512
)

// Sort permutes perm so that the w-byte keys it indexes ascend: keys holds
// len(perm) contiguous fixed-width keys and perm[i] names a key by index
// (key p occupies keys[p·w : (p+1)·w]). Large inputs fan bucket recursion
// across a bounded worker group.
func Sort(keys []byte, w int, perm []int32) {
	SortWorkers(keys, w, perm, workgroup.Limit(len(perm)/parallelCutoff))
}

// SortWorkers is Sort with an explicit worker-group width (tests and
// benchmarks pin it; workers ≤ 1 is strictly sequential).
func SortWorkers(keys []byte, w int, perm []int32, workers int) {
	run(keys, w, perm, workers, nil)
}

// SortProfile sorts perm like Sort and returns the run-length frequency
// profile of the sorted key sequence — counts[l] distinct keys occupying
// exactly l rows — emitted by the sort itself rather than a second pass.
// The profile is ordered by ascending run length, matching ProfileSorted.
func SortProfile(keys []byte, w int, perm []int32) []distinct.FreqCount {
	return SortProfileWorkers(keys, w, perm, workgroup.Limit(len(perm)/parallelCutoff))
}

// SortProfileWorkers is SortProfile with an explicit worker-group width.
func SortProfileWorkers(keys []byte, w int, perm []int32, workers int) []distinct.FreqCount {
	var g hist
	run(keys, w, perm, workers, &g)
	return g.freqs()
}

// ProfileSorted computes the run-length frequency profile of an
// already-sorted permutation in one adjacent-compare pass — the profile
// rebuild used after merging two sorted runs (PreparedIndex extension),
// where no sort happens but the profile must be recomputed.
func ProfileSorted(keys []byte, w int, perm []int32) []distinct.FreqCount {
	if len(perm) == 0 {
		return nil
	}
	var h hist
	if w == 0 {
		h.add(int64(len(perm)))
		return h.freqs()
	}
	run := int64(1)
	for i := 1; i < len(perm); i++ {
		a := int(perm[i-1]) * w
		b := int(perm[i]) * w
		if bytes.Equal(keys[a:a+w], keys[b:b+w]) {
			run++
		} else {
			h.add(run)
			run = 1
		}
	}
	h.add(run)
	return h.freqs()
}

// hist is a run-length histogram: small[l] counts runs of length l for
// l ≤ smallRunCap, longer runs spill to the overflow map.
type hist struct {
	small    [smallRunCap + 1]int64
	overflow map[int64]int64
}

func (h *hist) add(runLen int64) {
	if runLen <= smallRunCap {
		h.small[runLen]++
		return
	}
	if h.overflow == nil {
		h.overflow = make(map[int64]int64)
	}
	h.overflow[runLen]++
}

func (h *hist) merge(o *hist) {
	for l, num := range o.small {
		h.small[l] += num
	}
	for l, num := range o.overflow {
		if h.overflow == nil {
			h.overflow = make(map[int64]int64)
		}
		h.overflow[l] += num
	}
}

// freqs materializes the histogram as []distinct.FreqCount ordered by
// ascending run length.
func (h *hist) freqs() []distinct.FreqCount {
	var out []distinct.FreqCount
	for l := int64(1); l <= smallRunCap; l++ {
		if h.small[l] > 0 {
			out = append(out, distinct.FreqCount{Count: l, Num: h.small[l]})
		}
	}
	if len(h.overflow) > 0 {
		long := make([]int64, 0, len(h.overflow))
		for l := range h.overflow {
			long = append(long, l)
		}
		slices.Sort(long)
		for _, l := range long {
			out = append(out, distinct.FreqCount{Count: l, Num: h.overflow[l]})
		}
	}
	return out
}

// sorter carries the shared state of one sort: the key buffer, a scratch
// permutation buffer (bucket ranges are disjoint, so concurrent tasks use
// disjoint scratch ranges), the goroutine semaphore, and the global
// profile histogram (nil when only sorting).
type sorter struct {
	keys    []byte
	w       int
	scratch []int32
	sem     workgroup.Sem
	wg      sync.WaitGroup
	mu      sync.Mutex
	global  *hist
	// panicked holds the first panic trapped on a spawned bucket goroutine
	// (as a *faults.PanicError carrying that goroutine's stack); run
	// re-raises it on the calling goroutine after every worker has exited,
	// so a poisoned bucket can never crash the process from a goroutine no
	// caller can recover on — and the scratch buffer is never repooled
	// while a worker still writes to it.
	panicked *faults.PanicError
}

// scratchPool recycles the O(n) distribution scratch across sorts: loops
// that sort repeatedly (bootstrap resamples, adaptive rounds) would
// otherwise pay one permutation-sized allocation per call on a path that
// is zero-alloc everywhere else.
var scratchPool = sync.Pool{New: func() any { return new([]int32) }}

// run sorts perm and, when g is non-nil, accumulates the run-length
// profile into it.
func run(keys []byte, w int, perm []int32, workers int, g *hist) {
	n := len(perm)
	if n == 0 {
		return
	}
	metricRowsSorted.Add(uint64(n))
	if w == 0 {
		// Zero-width keys are all equal: nothing to sort, one run of n.
		if g != nil {
			g.add(int64(n))
		}
		return
	}
	s := &sorter{
		keys:   keys,
		w:      w,
		sem:    workgroup.NewSem(workers - 1),
		global: g,
	}
	if n > insertionCutoff {
		// Tiny inputs insertion-sort without a distribution pass, so only
		// real radix runs borrow scratch from the pool.
		sp := scratchPool.Get().(*[]int32)
		if cap(*sp) < n {
			*sp = make([]int32, n)
		}
		s.scratch = (*sp)[:n]
		defer func() {
			*sp = s.scratch
			scratchPool.Put(sp)
		}()
	}
	var local *hist
	if g != nil {
		local = &hist{}
	}
	var inline *faults.PanicError
	func() {
		defer func() {
			if r := recover(); r != nil {
				inline = faults.AsError(r)
			}
		}()
		s.msd(perm, 0, n, 0, local)
	}()
	s.wg.Wait()
	if s.panicked != nil {
		panic(s.panicked)
	}
	if inline != nil {
		panic(inline)
	}
	if g != nil {
		g.merge(local)
	}
}

// spawned runs one bucket's recursion on its own goroutine with a private
// histogram, merged into the global under the mutex when the subtree ends.
func (s *sorter) spawned(perm []int32, lo, hi, depth int) {
	defer s.wg.Done()
	defer s.sem.Release()
	defer func() {
		if r := recover(); r != nil {
			pe := faults.AsError(r)
			s.mu.Lock()
			if s.panicked == nil {
				s.panicked = pe
			}
			s.mu.Unlock()
		}
	}()
	metricParallelBuckets.Inc()
	var h *hist
	if s.global != nil {
		h = &hist{}
	}
	s.msd(perm, lo, hi, depth, h)
	if h != nil {
		s.mu.Lock()
		s.global.merge(h)
		s.mu.Unlock()
	}
}

// msd sorts perm[lo:hi], whose keys agree on bytes [0, depth), by the
// remaining key suffix, adding every completed equal-key run to h (when
// profiling). Runs complete in exactly three places — a bucket exhausting
// the key width, a singleton bucket, and the adjacent-equal runs of an
// insertion-sorted base case — which together tile the final sorted order.
func (s *sorter) msd(perm []int32, lo, hi, depth int, h *hist) {
	keys, w := s.keys, s.w
	for {
		n := hi - lo
		switch {
		case n == 0:
			return
		case n == 1:
			if h != nil {
				h.add(1)
			}
			return
		case depth == w:
			// Keys agree on every byte: one run of n equal keys.
			if h != nil {
				h.add(int64(n))
			}
			return
		case n <= insertionCutoff:
			s.insertion(perm, lo, hi, depth)
			if h != nil {
				s.profileRuns(perm, lo, hi, depth, h)
			}
			return
		}

		// 256-way counting pass on the byte column at depth.
		var count [256]int32
		for i := lo; i < hi; i++ {
			count[keys[int(perm[i])*w+depth]]++
		}
		// Common-prefix shortcut: one populated bucket means this byte
		// column distinguishes nothing — advance the column without a
		// distribution pass.
		if int(count[keys[int(perm[lo])*w+depth]]) == n {
			depth++
			continue
		}
		var off [256]int32
		var sum int32
		for b := range off {
			off[b] = sum
			sum += count[b]
		}
		scratch := s.scratch
		for i := lo; i < hi; i++ {
			p := perm[i]
			b := keys[int(p)*w+depth]
			scratch[lo+int(off[b])] = p
			off[b]++
		}
		copy(perm[lo:hi], scratch[lo:hi])

		start := lo
		for b := range count {
			sz := int(count[b])
			if sz == 0 {
				continue
			}
			end := start + sz
			switch {
			case sz == 1:
				if h != nil {
					h.add(1)
				}
			case sz >= parallelCutoff && s.sem.TryAcquire():
				s.wg.Add(1)
				go s.spawned(perm, start, end, depth+1)
			default:
				s.msd(perm, start, end, depth+1, h)
			}
			start = end
		}
		return
	}
}

// insertion sorts perm[lo:hi] by the key suffix from depth (the prefix is
// already equal across the bucket).
func (s *sorter) insertion(perm []int32, lo, hi, depth int) {
	keys, w := s.keys, s.w
	for i := lo + 1; i < hi; i++ {
		p := perm[i]
		kp := keys[int(p)*w+depth : int(p)*w+w]
		j := i
		for j > lo {
			q := perm[j-1]
			if bytes.Compare(keys[int(q)*w+depth:int(q)*w+w], kp) <= 0 {
				break
			}
			perm[j] = q
			j--
		}
		perm[j] = p
	}
}

// profileRuns adds the equal-key runs of the sorted range perm[lo:hi] to h,
// comparing only the suffix from depth (the prefix is bucket-equal).
func (s *sorter) profileRuns(perm []int32, lo, hi, depth int, h *hist) {
	keys, w := s.keys, s.w
	run := int64(1)
	for i := lo + 1; i < hi; i++ {
		a := int(perm[i-1]) * w
		b := int(perm[i]) * w
		if bytes.Equal(keys[a+depth:a+w], keys[b+depth:b+w]) {
			run++
		} else {
			h.add(run)
			run = 1
		}
	}
	h.add(run)
}
