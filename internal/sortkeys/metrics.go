package sortkeys

import "samplecf/internal/obs"

// Process-wide sort tallies on the default obs registry: one atomic add
// per sort (not per row) and one per parallel bucket hand-off, so the
// zero-alloc sort path stays zero-alloc.
var (
	metricRowsSorted = obs.Default().Counter(
		"samplecf_sortkeys_rows_sorted_total",
		"Permutation entries sorted by the MSD radix sort.")
	metricParallelBuckets = obs.Default().Counter(
		"samplecf_sortkeys_parallel_buckets_total",
		"Radix buckets handed to worker goroutines instead of recursing inline.")
)
