package btree

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"samplecf/internal/heap"
	"samplecf/internal/page"
	"samplecf/internal/rng"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%d", i)) }

func newTestTree(t testing.TB) *Tree {
	t.Helper()
	tr, err := New(heap.NewMemStore(page.MinSize))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t)
	if tr.NumEntries() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: entries=%d height=%d", tr.NumEntries(), tr.Height())
	}
	if _, ok, err := tr.SearchFirst([]byte("x")); err != nil || ok {
		t.Fatalf("search on empty: ok=%v err=%v", ok, err)
	}
	count := 0
	if err := tr.Ascend(nil, func(_, _ []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("ascend on empty visited %d", count)
	}
}

func TestInsertAndSearchAcrossSplits(t *testing.T) {
	tr := newTestTree(t)
	const n = 2000 // forces multiple levels at 512-byte pages
	perm := rng.New(1).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.NumEntries() != n {
		t.Fatalf("NumEntries = %d", tr.NumEntries())
	}
	if tr.Height() < 3 {
		t.Fatalf("expected height >= 3, got %d", tr.Height())
	}
	for i := 0; i < n; i++ {
		got, ok, err := tr.SearchFirst(key(i))
		if err != nil || !ok {
			t.Fatalf("search %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(got, val(i)) {
			t.Fatalf("search %d: got %q want %q", i, got, val(i))
		}
	}
	if _, ok, _ := tr.SearchFirst([]byte("key-99999999")); ok {
		t.Fatal("found nonexistent key")
	}
}

func TestAscendFullOrder(t *testing.T) {
	tr := newTestTree(t)
	const n = 1500
	for _, i := range rng.New(2).Perm(n) {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var prev []byte
	count := 0
	err := tr.Ascend(nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) > 0 {
			t.Fatalf("order violation: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("ascend visited %d of %d", count, n)
	}
}

func TestAscendFromStart(t *testing.T) {
	tr := newTestTree(t)
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.Ascend(key(490), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != string(key(490)) {
		t.Fatalf("range scan got %v", got)
	}
	// Early termination.
	count := 0
	if err := tr.Ascend(nil, func(_, _ []byte) bool { count++; return count < 7 }); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := newTestTree(t)
	k := []byte("dup")
	const n = 300 // duplicates spanning multiple leaves
	for i := 0; i < n; i++ {
		if err := tr.Insert(k, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Insert([]byte("aaa"), val(0)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("zzz"), val(0)); err != nil {
		t.Fatal(err)
	}
	count := 0
	err := tr.Ascend(k, func(kk, _ []byte) bool {
		if bytes.Equal(kk, k) {
			count++
			return true
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("found %d duplicates, want %d", count, n)
	}
	if _, ok, err := tr.SearchFirst(k); err != nil || !ok {
		t.Fatalf("SearchFirst on dup key: ok=%v err=%v", ok, err)
	}
}

func TestDelete(t *testing.T) {
	tr := newTestTree(t)
	const n = 400
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		found, err := tr.Delete(key(i))
		if err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", i, found, err)
		}
	}
	if tr.NumEntries() != n/2 {
		t.Fatalf("NumEntries after deletes = %d", tr.NumEntries())
	}
	for i := 0; i < n; i++ {
		_, ok, err := tr.SearchFirst(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v want %v", i, ok, want)
		}
	}
	if found, err := tr.Delete([]byte("missing")); err != nil || found {
		t.Fatalf("delete missing: %v %v", found, err)
	}
}

func TestBulkLoadMatchesInsert(t *testing.T) {
	const n = 3000
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = Item{Key: key(i), Payload: val(i)}
	}
	tr, err := BulkLoadItems(heap.NewMemStore(page.MinSize), items, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEntries() != n {
		t.Fatalf("NumEntries = %d", tr.NumEntries())
	}
	// Every key findable; iteration ordered and complete.
	for i := 0; i < n; i += 37 {
		got, ok, err := tr.SearchFirst(key(i))
		if err != nil || !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("bulk search %d: %q ok=%v err=%v", i, got, ok, err)
		}
	}
	i := 0
	if err := tr.Ascend(nil, func(k, v []byte) bool {
		if !bytes.Equal(k, key(i)) || !bytes.Equal(v, val(i)) {
			t.Fatalf("bulk ascend at %d: %q/%q", i, k, v)
		}
		i++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("bulk ascend visited %d", i)
	}
}

func TestBulkLoadEmptyAndSingle(t *testing.T) {
	tr, err := BulkLoadItems(heap.NewMemStore(page.MinSize), nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEntries() != 0 || tr.Height() != 1 {
		t.Fatalf("empty bulk: entries=%d height=%d", tr.NumEntries(), tr.Height())
	}
	tr, err = BulkLoadItems(heap.NewMemStore(page.MinSize),
		[]Item{{Key: []byte("only"), Payload: []byte("one")}}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := tr.SearchFirst([]byte("only"))
	if err != nil || !ok || string(got) != "one" {
		t.Fatalf("single bulk: %q %v %v", got, ok, err)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	items := []Item{
		{Key: []byte("b"), Payload: nil},
		{Key: []byte("a"), Payload: nil},
	}
	if _, err := BulkLoadItems(heap.NewMemStore(page.MinSize), items, 1.0); err == nil {
		t.Fatal("unsorted input accepted")
	}
}

func TestBulkLoadFillFactorAffectsLeafCount(t *testing.T) {
	const n = 2000
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = Item{Key: key(i), Payload: val(i)}
	}
	full, err := BulkLoadItems(heap.NewMemStore(page.MinSize), items, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	half, err := BulkLoadItems(heap.NewMemStore(page.MinSize), items, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fullLeaves, err := full.NumLeafPages()
	if err != nil {
		t.Fatal(err)
	}
	halfLeaves, err := half.NumLeafPages()
	if err != nil {
		t.Fatal(err)
	}
	if halfLeaves <= fullLeaves {
		t.Fatalf("fill=0.5 leaves (%d) not more than fill=1.0 (%d)", halfLeaves, fullLeaves)
	}
	if _, err := BulkLoadItems(heap.NewMemStore(page.MinSize), items, 0); err == nil {
		t.Fatal("fill=0 accepted")
	}
}

func TestLeafPagesCoverAllEntries(t *testing.T) {
	const n = 1000
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = Item{Key: key(i), Payload: val(i)}
	}
	tr, err := BulkLoadItems(heap.NewMemStore(page.MinSize), items, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	entries := 0
	err = tr.LeafPages(func(_ uint32, p *page.Page) error {
		entries += p.NumRecords() - 1 // minus meta record
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if entries != n {
		t.Fatalf("leaf pages hold %d entries, want %d", entries, n)
	}
}

// TestPropertyTreeMatchesSortedMap cross-checks random insert/search/delete
// sequences against a reference map.
func TestPropertyTreeMatchesSortedMap(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tr, err := New(heap.NewMemStore(page.MinSize))
		if err != nil {
			return false
		}
		model := map[string]string{}
		for op := 0; op < 400; op++ {
			k := fmt.Sprintf("k%04d", r.Intn(300))
			switch r.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", op)
				if _, dup := model[k]; dup {
					continue // keep model a map: skip duplicate keys
				}
				if err := tr.Insert([]byte(k), []byte(v)); err != nil {
					return false
				}
				model[k] = v
			case 2:
				found, err := tr.Delete([]byte(k))
				if err != nil {
					return false
				}
				if _, inModel := model[k]; inModel != found {
					return false
				}
				delete(model, k)
			}
		}
		// Verify all lookups.
		for k, v := range model {
			got, ok, err := tr.SearchFirst([]byte(k))
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		// Verify iteration matches sorted model keys.
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		okAll := true
		_ = tr.Ascend(nil, func(k, _ []byte) bool {
			if i >= len(keys) || string(k) != keys[i] {
				okAll = false
				return false
			}
			i++
			return true
		})
		return okAll && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	tr, err := New(heap.NewMemStore(page.DefaultSize))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key-%016d", r.Uint64()))
		if err := tr.Insert(k, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	const n = 10000
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = Item{Key: key(i), Payload: val(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoadItems(heap.NewMemStore(page.DefaultSize), items, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	const n = 100000
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = Item{Key: key(i), Payload: val(i)}
	}
	tr, err := BulkLoadItems(heap.NewMemStore(page.DefaultSize), items, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := tr.SearchFirst(key(r.Intn(n))); err != nil || !ok {
			b.Fatal("miss")
		}
	}
}

func TestDeleteMatching(t *testing.T) {
	tr := newTestTree(t)
	// Many duplicates of one key with distinct payloads, spanning leaves.
	k := []byte("dupkey")
	const n = 200
	for i := 0; i < n; i++ {
		if err := tr.Insert(k, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Insert([]byte("aaa"), val(0)); err != nil {
		t.Fatal(err)
	}
	// Remove a specific payload deep in the duplicate run.
	found, err := tr.DeleteMatching(k, val(137))
	if err != nil || !found {
		t.Fatalf("DeleteMatching: found=%v err=%v", found, err)
	}
	if tr.NumEntries() != n {
		t.Fatalf("NumEntries = %d, want %d", tr.NumEntries(), n)
	}
	// The removed payload is gone; others remain.
	remaining := map[string]bool{}
	_ = tr.Ascend(k, func(kk, v []byte) bool {
		if !bytes.Equal(kk, k) {
			return false
		}
		remaining[string(v)] = true
		return true
	})
	if remaining[string(val(137))] {
		t.Fatal("payload 137 still present")
	}
	if len(remaining) != n-1 {
		t.Fatalf("remaining %d, want %d", len(remaining), n-1)
	}
	// Mismatched payload: no removal.
	if found, err := tr.DeleteMatching(k, []byte("nope")); err != nil || found {
		t.Fatalf("phantom delete: %v %v", found, err)
	}
	// Missing key entirely.
	if found, err := tr.DeleteMatching([]byte("zzz"), val(0)); err != nil || found {
		t.Fatalf("missing key delete: %v %v", found, err)
	}
}

// TestBulkLoadedDuplicatesAcrossLeaves is the regression test for the
// separator-equality descent bug: when a duplicate run starts mid-leaf and
// continues into later leaves, exact-match descents must start at the
// PRECEDING subtree (bulk-loaded trees have exact separators, which exposed
// the miss).
func TestBulkLoadedDuplicatesAcrossLeaves(t *testing.T) {
	// Keys: 10 distinct values × 120 copies each, bulk loaded: every value's
	// run crosses leaf boundaries at 512-byte pages.
	var items []Item
	for v := 0; v < 10; v++ {
		for c := 0; c < 120; c++ {
			items = append(items, Item{Key: key(v), Payload: val(v*1000 + c)})
		}
	}
	tr, err := BulkLoadItems(heap.NewMemStore(page.MinSize), items, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		// SearchFirst must return the FIRST payload of the run.
		got, ok, err := tr.SearchFirst(key(v))
		if err != nil || !ok {
			t.Fatalf("SearchFirst(%d): ok=%v err=%v", v, ok, err)
		}
		if !bytes.Equal(got, val(v*1000)) {
			t.Fatalf("SearchFirst(%d) = %q, want first payload %q", v, got, val(v*1000))
		}
		// Ascend from the key must see every copy.
		count := 0
		err = tr.Ascend(key(v), func(k, _ []byte) bool {
			if !bytes.Equal(k, key(v)) {
				return false
			}
			count++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != 120 {
			t.Fatalf("Ascend(%d) found %d of 120 duplicates", v, count)
		}
	}
	// DeleteMatching must reach payloads anywhere in a cross-leaf run.
	for c := 0; c < 120; c++ {
		found, err := tr.DeleteMatching(key(5), val(5000+c))
		if err != nil || !found {
			t.Fatalf("DeleteMatching copy %d: found=%v err=%v", c, found, err)
		}
	}
	if _, ok, _ := tr.SearchFirst(key(5)); ok {
		t.Fatal("key 5 still present after deleting all copies")
	}
	if tr.NumEntries() != 9*120 {
		t.Fatalf("NumEntries = %d", tr.NumEntries())
	}
}

func TestNodeAccessorsAndErrors(t *testing.T) {
	tr := newTestTree(t)
	if tr.Root() != 0 {
		t.Fatalf("Root = %d", tr.Root())
	}
	// fromPage rejects non-node pages.
	plain := page.New(page.MinSize, 9)
	if _, err := fromPage(plain, 9); err == nil {
		t.Fatal("non-node page accepted")
	}
	// LeafEntries rejects internal pages and non-node pages.
	if _, _, err := LeafEntries(plain); err == nil {
		t.Fatal("LeafEntries accepted non-node page")
	}
	internal := newNode(page.MinSize, 5, 1)
	if _, _, err := LeafEntries(internal.p); err == nil {
		t.Fatal("LeafEntries accepted internal node")
	}
	// LeafEntries on a real leaf returns aligned keys/payloads.
	if err := tr.Insert([]byte("k1"), []byte("p1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("k0"), []byte("p0")); err != nil {
		t.Fatal(err)
	}
	err := tr.LeafPages(func(_ uint32, p *page.Page) error {
		keys, payloads, err := LeafEntries(p)
		if err != nil {
			return err
		}
		if len(keys) != 2 || string(keys[0]) != "k0" || string(payloads[0]) != "p0" {
			t.Fatalf("LeafEntries = %q/%q", keys, payloads)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSeparatorKeys checks the stratification walk: boundaries ascend
// strictly, cut the entry population into near-equal ranges, and degrade
// gracefully on tiny or duplicate-only trees.
func TestSeparatorKeys(t *testing.T) {
	items := make([]Item, 4096)
	for i := range items {
		items[i] = Item{Key: key(i), Payload: val(i)}
	}
	tr, err := BulkLoadItems(heap.NewMemStore(page.MinSize), items, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, max := range []int{2, 4, 8, 16} {
		seps, err := tr.SeparatorKeys(max)
		if err != nil {
			t.Fatal(err)
		}
		if len(seps) == 0 || len(seps) > max-1 {
			t.Fatalf("max=%d: got %d separators", max, len(seps))
		}
		prev := []byte(nil)
		for _, s := range seps {
			if prev != nil && bytes.Compare(prev, s) >= 0 {
				t.Fatalf("max=%d: separators not strictly ascending", max)
			}
			prev = s
		}
		// Count entries per range; with a uniform key domain the ranges
		// should be within 3x of each other.
		counts := make([]int64, len(seps)+1)
		if err := tr.Ascend(nil, func(k, _ []byte) bool {
			h := sort.Search(len(seps), func(i int) bool { return bytes.Compare(seps[i], k) > 0 })
			counts[h]++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		var lo, hi int64 = 1 << 62, 0
		for _, c := range counts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if lo == 0 || hi > 3*lo {
			t.Errorf("max=%d: uneven ranges %v", max, counts)
		}
	}
	// Root-leaf tree: no separators at all.
	small := newTestTree(t)
	if err := small.Insert(key(1), val(1)); err != nil {
		t.Fatal(err)
	}
	if seps, err := small.SeparatorKeys(8); err != nil || len(seps) != 0 {
		t.Fatalf("leaf-root tree: seps=%v err=%v", seps, err)
	}
	// All-duplicate tree: every separator equals the minimum, so no cut
	// point survives the strict-ascent filter.
	dup := make([]Item, 4096)
	for i := range dup {
		dup[i] = Item{Key: []byte("same-key"), Payload: val(i)}
	}
	dtr, err := BulkLoadItems(heap.NewMemStore(page.MinSize), dup, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if seps, err := dtr.SeparatorKeys(8); err != nil || len(seps) != 0 {
		t.Fatalf("duplicate-only tree: seps=%v err=%v", seps, err)
	}
}
