package btree

import (
	"bytes"
	"fmt"

	"samplecf/internal/heap"
)

// Item is one (key, payload) pair for bulk loading.
type Item struct {
	Key     []byte
	Payload []byte
}

// Iterator supplies bulk-load input in key order.
type Iterator interface {
	// Next returns the next pair. ok is false at end of input.
	Next() (key, payload []byte, ok bool, err error)
}

// sliceIter iterates over an in-memory Item slice.
type sliceIter struct {
	items []Item
	pos   int
}

// NewSliceIterator wraps a sorted Item slice as an Iterator.
func NewSliceIterator(items []Item) Iterator { return &sliceIter{items: items} }

// Next implements Iterator.
func (s *sliceIter) Next() ([]byte, []byte, bool, error) {
	if s.pos >= len(s.items) {
		return nil, nil, false, nil
	}
	it := s.items[s.pos]
	s.pos++
	return it.Key, it.Payload, true, nil
}

// BulkLoad builds a B+-tree from items, which MUST arrive in non-decreasing
// key order (duplicates allowed); out-of-order input is rejected. fill in
// (0, 1] is the target leaf utilization: 1.0 packs leaves completely (the
// deterministic layout the CF experiments measure), lower values model the
// free space real engines leave for future inserts.
func BulkLoad(store heap.PageStore, items Iterator, fill float64) (*Tree, error) {
	if fill <= 0 || fill > 1 {
		return nil, fmt.Errorf("btree: fill factor %v outside (0,1]", fill)
	}
	t := &Tree{store: store}
	pageSize := store.PageSize()
	// Spendable bytes per node = free space of a fresh node plus the slot
	// entry FreeSpace already reserves (cost accounting below includes the
	// slot in each entry's cost).
	budget := int(fill * float64(newNode(pageSize, 0, 0).p.FreeSpace()+4))

	type childRef struct {
		minKey []byte
		pageNo uint32
	}
	var level []childRef

	// Build the leaf level.
	var prev *node // previous completed leaf, already appended
	cur := newNode(pageSize, 0, 0)
	curCount := 0
	curBytes := 0
	var curMin []byte
	var lastKey []byte

	finishLeaf := func() error {
		if err := t.appendNode(&cur); err != nil {
			return err
		}
		level = append(level, childRef{minKey: curMin, pageNo: cur.pageNo})
		if prev != nil {
			prev.setNext(cur.pageNo)
			if err := t.writeNode(*prev); err != nil {
				return err
			}
		} else {
			t.firstLeaf = cur.pageNo
		}
		c := cur
		prev = &c
		return nil
	}

	for {
		key, payload, ok, err := items.Next()
		if err != nil {
			return nil, fmt.Errorf("btree: bulk load input: %w", err)
		}
		if !ok {
			break
		}
		if lastKey != nil && bytes.Compare(key, lastKey) < 0 {
			return nil, fmt.Errorf("btree: bulk load input out of order: %q after %q", key, lastKey)
		}
		lastKey = append(lastKey[:0], key...)
		rec := encodeLeafEntry(key, payload)
		cost := len(rec) + 4 // record + slot entry
		if curCount > 0 && curBytes+cost > budget {
			if err := finishLeaf(); err != nil {
				return nil, err
			}
			cur = newNode(pageSize, 0, 0)
			curCount, curBytes, curMin = 0, 0, nil
		}
		if _, err := cur.p.Insert(rec); err != nil {
			return nil, fmt.Errorf("btree: bulk load entry of %d bytes: %w", len(rec), err)
		}
		if curCount == 0 {
			curMin = append([]byte(nil), key...)
		}
		curCount++
		curBytes += cost
		t.numEntries++
	}
	if err := finishLeaf(); err != nil { // final (possibly empty) leaf
		return nil, err
	}

	// Build internal levels bottom-up until a single node remains.
	t.height = 1
	for len(level) > 1 {
		var next []childRef
		n := newNode(pageSize, 0, t.height)
		nCount, nBytes := 0, 0
		var nMin []byte
		finish := func() error {
			if err := t.appendNode(&n); err != nil {
				return err
			}
			next = append(next, childRef{minKey: nMin, pageNo: n.pageNo})
			return nil
		}
		for _, ref := range level {
			rec := encodeInternalEntry(ref.minKey, ref.pageNo)
			cost := len(rec) + 4
			if nCount > 0 && nBytes+cost > budget {
				if err := finish(); err != nil {
					return nil, err
				}
				n = newNode(pageSize, 0, t.height)
				nCount, nBytes, nMin = 0, 0, nil
			}
			if _, err := n.p.Insert(rec); err != nil {
				return nil, fmt.Errorf("btree: bulk load separator: %w", err)
			}
			if nCount == 0 {
				nMin = ref.minKey
			}
			nCount++
			nBytes += cost
		}
		if err := finish(); err != nil {
			return nil, err
		}
		level = next
		t.height++
	}
	t.root = level[0].pageNo
	return t, nil
}

// BulkLoadItems sorts nothing and copies nothing: it is a convenience for
// callers holding a pre-sorted slice.
func BulkLoadItems(store heap.PageStore, items []Item, fill float64) (*Tree, error) {
	return BulkLoad(store, NewSliceIterator(items), fill)
}
