// Package btree implements a page-based B+-tree.
//
// SampleCF's pipeline is "draw a sample, BUILD AN INDEX on it, compress the
// index" (paper Fig. 2, step 2); this package is that index. It supports the
// two paths the estimator and the examples need:
//
//   - Bulk load from a sorted stream — how both the real index and the
//     sample index are built.
//   - Incremental insert with node splits — used by the examples and to
//     validate the bulk-loaded structure against an independently grown one.
//
// Nodes live in slotted pages (package page). Slot 0 of every node holds a
// fixed meta record {level, next-leaf}; slots 1..n hold entries in key
// order. Leaf entries are (key, payload); internal entries are
// (separator key, child page number) where the separator is the smallest key
// in the child's subtree.
package btree

import (
	"encoding/binary"
	"fmt"

	"samplecf/internal/page"
)

// FlagNode marks pages that are B+-tree nodes (leaf or internal).
const FlagNode uint16 = 1 << 1

// noNext is the next-leaf sentinel for the last leaf.
const noNext = ^uint32(0)

// metaSlot is the slot index of the node meta record; entries start after it.
const metaSlot = 0

// entrySlot0 is the slot index of the first entry.
const entrySlot0 = 1

// node wraps a page with B+-tree accessors. It is a transient, in-memory
// view; persistence goes through the tree's page store.
type node struct {
	p      *page.Page
	pageNo uint32
}

// newNode initializes an empty node of the given level on a fresh page.
func newNode(pageSize int, pageNo uint32, level int) node {
	p := page.New(pageSize, uint64(pageNo))
	p.SetFlags(FlagNode)
	var meta [5]byte
	meta[0] = byte(level)
	binary.LittleEndian.PutUint32(meta[1:], noNext)
	if _, err := p.Insert(meta[:]); err != nil {
		// A fresh page always fits 5 bytes; failure is a programming error.
		panic(fmt.Sprintf("btree: meta insert: %v", err))
	}
	return node{p: p, pageNo: pageNo}
}

// fromPage wraps an existing node page.
func fromPage(p *page.Page, pageNo uint32) (node, error) {
	if p.Flags()&FlagNode == 0 {
		return node{}, fmt.Errorf("btree: page %d is not a node", pageNo)
	}
	if p.NumSlots() < 1 {
		return node{}, fmt.Errorf("btree: page %d missing meta record", pageNo)
	}
	return node{p: p, pageNo: pageNo}, nil
}

// level returns 0 for leaves, >0 for internal nodes.
func (n node) level() int {
	rec, err := n.p.Record(metaSlot)
	if err != nil {
		panic(fmt.Sprintf("btree: node %d meta: %v", n.pageNo, err))
	}
	return int(rec[0])
}

// isLeaf reports whether the node is a leaf.
func (n node) isLeaf() bool { return n.level() == 0 }

// next returns the next-leaf pointer (valid for leaves).
func (n node) next() uint32 {
	rec, err := n.p.Record(metaSlot)
	if err != nil {
		panic(fmt.Sprintf("btree: node %d meta: %v", n.pageNo, err))
	}
	return binary.LittleEndian.Uint32(rec[1:])
}

// setNext updates the next-leaf pointer in place (meta record has fixed
// size, so the page layout is unchanged).
func (n node) setNext(next uint32) {
	rec, err := n.p.Record(metaSlot)
	if err != nil {
		panic(fmt.Sprintf("btree: node %d meta: %v", n.pageNo, err))
	}
	binary.LittleEndian.PutUint32(rec[1:], next)
}

// numEntries returns the number of key entries (excluding the meta record).
func (n node) numEntries() int { return n.p.NumSlots() - 1 }

// entry returns the raw entry record at entry index i (0-based).
func (n node) entry(i int) []byte {
	rec, err := n.p.Record(entrySlot0 + i)
	if err != nil {
		panic(fmt.Sprintf("btree: node %d entry %d: %v", n.pageNo, i, err))
	}
	return rec
}

// encodeLeafEntry builds a leaf entry record: [klen u16][key][payload].
func encodeLeafEntry(key, payload []byte) []byte {
	rec := make([]byte, 2+len(key)+len(payload))
	binary.LittleEndian.PutUint16(rec, uint16(len(key)))
	copy(rec[2:], key)
	copy(rec[2+len(key):], payload)
	return rec
}

// decodeEntryKey extracts the key from any entry record.
func decodeEntryKey(rec []byte) []byte {
	klen := int(binary.LittleEndian.Uint16(rec))
	return rec[2 : 2+klen]
}

// decodeLeafPayload extracts the payload from a leaf entry record.
func decodeLeafPayload(rec []byte) []byte {
	klen := int(binary.LittleEndian.Uint16(rec))
	return rec[2+klen:]
}

// encodeInternalEntry builds an internal entry record:
// [klen u16][key][child u32].
func encodeInternalEntry(key []byte, child uint32) []byte {
	rec := make([]byte, 2+len(key)+4)
	binary.LittleEndian.PutUint16(rec, uint16(len(key)))
	copy(rec[2:], key)
	binary.LittleEndian.PutUint32(rec[2+len(key):], child)
	return rec
}

// decodeInternalChild extracts the child pointer from an internal entry.
func decodeInternalChild(rec []byte) uint32 {
	klen := int(binary.LittleEndian.Uint16(rec))
	return binary.LittleEndian.Uint32(rec[2+klen:])
}

// leafEntryOverhead is the per-entry encoding overhead beyond key+payload:
// the 2-byte key-length prefix. (The page adds its own 4-byte slot entry.)
const leafEntryOverhead = 2

// LeafEntries extracts the keys and payloads stored in a leaf node page, in
// key order. It is how downstream consumers (compression measurement) read
// an index's data level. The returned slices alias the page buffer.
func LeafEntries(p *page.Page) (keys, payloads [][]byte, err error) {
	n, err := fromPage(p, uint32(p.ID()))
	if err != nil {
		return nil, nil, err
	}
	if !n.isLeaf() {
		return nil, nil, fmt.Errorf("btree: page %d is not a leaf", p.ID())
	}
	cnt := n.numEntries()
	keys = make([][]byte, cnt)
	payloads = make([][]byte, cnt)
	for i := 0; i < cnt; i++ {
		rec := n.entry(i)
		keys[i] = decodeEntryKey(rec)
		payloads[i] = decodeLeafPayload(rec)
	}
	return keys, payloads, nil
}
