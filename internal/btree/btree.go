package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"samplecf/internal/heap"
	"samplecf/internal/page"
)

// Tree is a B+-tree over a page store. Keys are arbitrary byte strings
// compared with bytes.Compare; callers encode typed rows with
// value.EncodeKey, which is order-preserving. Duplicate keys are allowed
// (indexes on non-unique columns are the paper's common case).
type Tree struct {
	store heap.PageStore

	root       uint32
	height     int // 1 = root is a leaf
	numEntries int64
	firstLeaf  uint32
}

// ErrEmptyTree is returned by operations that need at least one node.
var ErrEmptyTree = errors.New("btree: empty tree")

// New creates an empty tree (a single empty leaf) on store.
func New(store heap.PageStore) (*Tree, error) {
	leaf := newNode(store.PageSize(), 0, 0)
	pageNo, err := store.Append(leaf.p)
	if err != nil {
		return nil, fmt.Errorf("btree: new: %w", err)
	}
	return &Tree{store: store, root: pageNo, height: 1, firstLeaf: pageNo}, nil
}

// Height returns the number of levels (1 = just a root leaf).
func (t *Tree) Height() int { return t.height }

// NumEntries returns the number of stored (key, payload) pairs.
func (t *Tree) NumEntries() int64 { return t.numEntries }

// Root returns the root page number (for diagnostics).
func (t *Tree) Root() uint32 { return t.root }

// readNode loads the node stored at pageNo.
func (t *Tree) readNode(pageNo uint32) (node, error) {
	p, err := t.store.Read(pageNo)
	if err != nil {
		return node{}, err
	}
	return fromPage(p, pageNo)
}

// writeNode persists a node.
func (t *Tree) writeNode(n node) error { return t.store.Write(n.pageNo, n.p) }

// appendNode persists a brand-new node and records its page number.
func (t *Tree) appendNode(n *node) error {
	pageNo, err := t.store.Append(n.p)
	if err != nil {
		return err
	}
	n.pageNo = pageNo
	n.p.SetID(uint64(pageNo))
	// Re-write so the page id stored in the header matches its position.
	return t.store.Write(pageNo, n.p)
}

// searchEntries binary-searches a node's entries for key, returning the
// index of the first entry >= key and whether an exact match exists there.
func searchEntries(n node, key []byte) (int, bool) {
	cnt := n.numEntries()
	i := sort.Search(cnt, func(i int) bool {
		return bytes.Compare(decodeEntryKey(n.entry(i)), key) >= 0
	})
	if i < cnt && bytes.Equal(decodeEntryKey(n.entry(i)), key) {
		return i, true
	}
	return i, false
}

// childIndex returns the entry index of the child to descend into for key:
// the last entry with separator <= key (clamped to 0). Used by Insert,
// which appends new duplicates after existing equal keys.
func childIndex(n node, key []byte) int {
	i, exact := searchEntries(n, key)
	if exact {
		return i
	}
	if i > 0 {
		return i - 1
	}
	return 0
}

// childIndexFirst returns the child to descend into when seeking the FIRST
// occurrence of key. When a separator EQUALS key, occurrences of key may
// begin at the tail of the PRECEDING subtree (a separator is its child's
// minimum; a run of duplicates that starts mid-leaf leaves no trace in the
// separators), so the descent goes one child left and the leaf-level
// forward walk covers the rest via sibling pointers.
func childIndexFirst(n node, key []byte) int {
	i, _ := searchEntries(n, key)
	if i > 0 {
		return i - 1
	}
	return 0
}

// SearchFirst returns the payload of the first entry with exactly the given
// key. ok is false if the key is absent.
func (t *Tree) SearchFirst(key []byte) (payload []byte, ok bool, err error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return nil, false, err
	}
	for !n.isLeaf() {
		if n.numEntries() == 0 {
			return nil, false, fmt.Errorf("btree: internal node %d empty", n.pageNo)
		}
		child := decodeInternalChild(n.entry(childIndexFirst(n, key)))
		if n, err = t.readNode(child); err != nil {
			return nil, false, err
		}
	}
	// The first match may be in a following leaf when duplicates span
	// leaves; walk forward while keys equal.
	for {
		i, exact := searchEntries(n, key)
		if exact {
			return append([]byte(nil), decodeLeafPayload(n.entry(i))...), true, nil
		}
		if i < n.numEntries() || n.next() == noNext {
			return nil, false, nil
		}
		if n, err = t.readNode(n.next()); err != nil {
			return nil, false, err
		}
	}
}

// Ascend iterates entries with key >= start (or all entries when start is
// nil) in key order, calling fn with aliased key/payload slices valid only
// during the call. Iteration stops when fn returns false.
func (t *Tree) Ascend(start []byte, fn func(key, payload []byte) bool) error {
	var n node
	var err error
	var i int
	if start == nil {
		if n, err = t.readNode(t.firstLeaf); err != nil {
			return err
		}
	} else {
		if n, err = t.readNode(t.root); err != nil {
			return err
		}
		for !n.isLeaf() {
			if n.numEntries() == 0 {
				return fmt.Errorf("btree: internal node %d empty", n.pageNo)
			}
			child := decodeInternalChild(n.entry(childIndexFirst(n, start)))
			if n, err = t.readNode(child); err != nil {
				return err
			}
		}
		i, _ = searchEntries(n, start)
	}
	for {
		for ; i < n.numEntries(); i++ {
			rec := n.entry(i)
			if !fn(decodeEntryKey(rec), decodeLeafPayload(rec)) {
				return nil
			}
		}
		if n.next() == noNext {
			return nil
		}
		if n, err = t.readNode(n.next()); err != nil {
			return err
		}
		i = 0
	}
}

// LeafPages iterates the leaf level in key order, passing each leaf's page.
// Compression codecs consume the index through this: real engines compress
// the leaf (data) level of an index.
func (t *Tree) LeafPages(fn func(pageNo uint32, p *page.Page) error) error {
	pn := t.firstLeaf
	for {
		n, err := t.readNode(pn)
		if err != nil {
			return err
		}
		if err := fn(pn, n.p); err != nil {
			return err
		}
		if n.next() == noNext {
			return nil
		}
		pn = n.next()
	}
}

// SeparatorKeys returns up to max-1 strictly ascending separator keys that
// cut the tree's key domain into at most max near-equal-leaf-count ranges —
// the index-assisted stratum boundaries stratified sampling wants. The walk
// descends level by level from the root and stops at the shallowest internal
// level holding enough separators (or the level above the leaves), so the
// page reads are bounded by roughly fanout·max rather than the leaf count.
// Separators at one level bound subtrees of equal depth, which bulk loading
// fills uniformly, so the cuts are equi-depth in leaf pages. A tree of
// height 1 (root is a leaf) has no separators and returns nil.
func (t *Tree) SeparatorKeys(max int) ([][]byte, error) {
	if max <= 1 || t.height <= 1 {
		return nil, nil
	}
	frontier := []uint32{t.root}
	for {
		var keys [][]byte
		var children []uint32
		level := 0
		for _, pn := range frontier {
			n, err := t.readNode(pn)
			if err != nil {
				return nil, err
			}
			if n.isLeaf() {
				return nil, fmt.Errorf("btree: separator walk reached leaf %d", pn)
			}
			level = n.level()
			for j := 0; j < n.numEntries(); j++ {
				rec := n.entry(j)
				keys = append(keys, append([]byte(nil), decodeEntryKey(rec)...))
				children = append(children, decodeInternalChild(rec))
			}
		}
		// keys[0] is the global minimum (every level's first separator is the
		// smallest key of the leftmost subtree) — not a cut point. The rest
		// are candidates once this level has enough of them, or once the next
		// level is the leaves.
		if seps := keys[1:]; len(seps) >= max-1 || level == 1 {
			m := len(seps)
			picked := make([][]byte, 0, max-1)
			prev := keys[0]
			for j := 1; j < max && m > 0; j++ {
				idx := j * m / max
				if idx >= m {
					idx = m - 1
				}
				b := seps[idx]
				// Duplicate runs can repeat a separator (or echo the global
				// minimum); dropping the collision keeps strict ascent at the
				// cost of fewer strata, never an empty one.
				if bytes.Compare(b, prev) <= 0 {
					continue
				}
				picked = append(picked, b)
				prev = b
			}
			return picked, nil
		}
		frontier = children
	}
}

// NumLeafPages counts leaf pages by walking the sibling chain.
func (t *Tree) NumLeafPages() (int, error) {
	count := 0
	err := t.LeafPages(func(uint32, *page.Page) error {
		count++
		return nil
	})
	return count, err
}

// pathStep records one level of a root-to-leaf descent: the node visited and
// which child entry was followed.
type pathStep struct {
	n        node
	childIdx int
}

// Insert adds a (key, payload) pair, splitting nodes as needed. Duplicate
// keys are permitted and are stored adjacent to existing equal keys.
func (t *Tree) Insert(key, payload []byte) error {
	rec := encodeLeafEntry(key, payload)
	// Descend, remembering the path for split propagation.
	var path []pathStep
	n, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	for !n.isLeaf() {
		if n.numEntries() == 0 {
			return fmt.Errorf("btree: internal node %d empty", n.pageNo)
		}
		idx := childIndex(n, key)
		path = append(path, pathStep{n, idx})
		child := decodeInternalChild(n.entry(idx))
		if n, err = t.readNode(child); err != nil {
			return err
		}
	}

	// Insert into the leaf at the upper bound position (after equal keys, so
	// duplicates preserve insertion order).
	pos := upperBound(n, key)
	err = n.p.InsertAt(entrySlot0+pos, rec)
	if errors.Is(err, page.ErrPageFull) {
		n.p.Compact()
		err = n.p.InsertAt(entrySlot0+pos, rec)
	}
	if err == nil {
		t.numEntries++
		return t.writeNode(n)
	}
	if !errors.Is(err, page.ErrPageFull) {
		return err
	}

	// Split the leaf, insert into the proper half, then propagate.
	promoted, newRight, err := t.splitLeaf(n, pos, rec)
	if err != nil {
		return err
	}
	t.numEntries++
	return t.propagateSplit(path, promoted, newRight)
}

// upperBound returns the entry index after the last entry with key <= key.
func upperBound(n node, key []byte) int {
	cnt := n.numEntries()
	return sort.Search(cnt, func(i int) bool {
		return bytes.Compare(decodeEntryKey(n.entry(i)), key) > 0
	})
}

// splitLeaf splits leaf n around the middle, inserting rec at logical entry
// position pos. It returns the separator key for the new right node and the
// right node's page number.
func (t *Tree) splitLeaf(n node, pos int, rec []byte) (separator []byte, rightPage uint32, err error) {
	cnt := n.numEntries()
	mid := cnt / 2
	right := newNode(t.store.PageSize(), 0, 0)
	// Move entries [mid, cnt) to the right node.
	for i := mid; i < cnt; i++ {
		e := n.entry(i)
		if _, err := right.p.Insert(e); err != nil {
			return nil, 0, fmt.Errorf("btree: split move: %w", err)
		}
	}
	for i := cnt - 1; i >= mid; i-- {
		if err := n.p.RemoveAt(entrySlot0 + i); err != nil {
			return nil, 0, fmt.Errorf("btree: split trim: %w", err)
		}
	}
	n.p.Compact()

	// Insert the new record into whichever half owns its position.
	if pos <= mid {
		if err := n.p.InsertAt(entrySlot0+pos, rec); err != nil {
			return nil, 0, fmt.Errorf("btree: split insert left: %w", err)
		}
	} else {
		if err := right.p.InsertAt(entrySlot0+(pos-mid), rec); err != nil {
			return nil, 0, fmt.Errorf("btree: split insert right: %w", err)
		}
	}

	// Wire sibling pointers and persist.
	right.setNext(n.next())
	if err := t.appendNode(&right); err != nil {
		return nil, 0, err
	}
	n.setNext(right.pageNo)
	if err := t.writeNode(n); err != nil {
		return nil, 0, err
	}
	sep := append([]byte(nil), decodeEntryKey(right.entry(0))...)
	return sep, right.pageNo, nil
}

// splitInternal splits internal node n, which failed to accept rec at entry
// position pos. Same contract as splitLeaf.
func (t *Tree) splitInternal(n node, pos int, rec []byte) (separator []byte, rightPage uint32, err error) {
	cnt := n.numEntries()
	mid := cnt / 2
	right := newNode(t.store.PageSize(), 0, n.level())
	for i := mid; i < cnt; i++ {
		if _, err := right.p.Insert(n.entry(i)); err != nil {
			return nil, 0, fmt.Errorf("btree: split move: %w", err)
		}
	}
	for i := cnt - 1; i >= mid; i-- {
		if err := n.p.RemoveAt(entrySlot0 + i); err != nil {
			return nil, 0, fmt.Errorf("btree: split trim: %w", err)
		}
	}
	n.p.Compact()
	if pos <= mid {
		if err := n.p.InsertAt(entrySlot0+pos, rec); err != nil {
			return nil, 0, fmt.Errorf("btree: split insert left: %w", err)
		}
	} else {
		if err := right.p.InsertAt(entrySlot0+(pos-mid), rec); err != nil {
			return nil, 0, fmt.Errorf("btree: split insert right: %w", err)
		}
	}
	if err := t.appendNode(&right); err != nil {
		return nil, 0, err
	}
	if err := t.writeNode(n); err != nil {
		return nil, 0, err
	}
	sep := append([]byte(nil), decodeEntryKey(right.entry(0))...)
	return sep, right.pageNo, nil
}

// propagateSplit walks back up the saved path inserting separators, growing
// the tree at the root if necessary.
func (t *Tree) propagateSplit(path []pathStep, promoted []byte, rightPage uint32) error {
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		parent := path[lvl].n
		rec := encodeInternalEntry(promoted, rightPage)
		pos := path[lvl].childIdx + 1
		err := parent.p.InsertAt(entrySlot0+pos, rec)
		if errors.Is(err, page.ErrPageFull) {
			parent.p.Compact()
			err = parent.p.InsertAt(entrySlot0+pos, rec)
		}
		if err == nil {
			return t.writeNode(parent)
		}
		if !errors.Is(err, page.ErrPageFull) {
			return err
		}
		promoted, rightPage, err = t.splitInternal(parent, pos, rec)
		if err != nil {
			return err
		}
	}
	// Root split: create a new root one level up.
	oldRoot, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	newRoot := newNode(t.store.PageSize(), 0, oldRoot.level()+1)
	leftSep, err := t.minKey(oldRoot)
	if err != nil {
		return err
	}
	if _, err := newRoot.p.Insert(encodeInternalEntry(leftSep, t.root)); err != nil {
		return fmt.Errorf("btree: new root: %w", err)
	}
	if _, err := newRoot.p.Insert(encodeInternalEntry(promoted, rightPage)); err != nil {
		return fmt.Errorf("btree: new root: %w", err)
	}
	if err := t.appendNode(&newRoot); err != nil {
		return err
	}
	t.root = newRoot.pageNo
	t.height++
	return nil
}

// minKey returns the smallest key under node n.
func (t *Tree) minKey(n node) ([]byte, error) {
	for !n.isLeaf() {
		if n.numEntries() == 0 {
			return nil, fmt.Errorf("btree: internal node %d empty", n.pageNo)
		}
		child := decodeInternalChild(n.entry(0))
		var err error
		if n, err = t.readNode(child); err != nil {
			return nil, err
		}
	}
	if n.numEntries() == 0 {
		return nil, ErrEmptyTree
	}
	return append([]byte(nil), decodeEntryKey(n.entry(0))...), nil
}

// DeleteMatching removes the first entry whose key AND payload both match,
// scanning forward through duplicate keys (across leaf boundaries if
// needed). It reports whether an entry was removed. Index maintenance uses
// this to drop exactly the (key, RID) pair of a deleted heap row.
func (t *Tree) DeleteMatching(key, payload []byte) (bool, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return false, err
	}
	for !n.isLeaf() {
		if n.numEntries() == 0 {
			return false, fmt.Errorf("btree: internal node %d empty", n.pageNo)
		}
		child := decodeInternalChild(n.entry(childIndexFirst(n, key)))
		if n, err = t.readNode(child); err != nil {
			return false, err
		}
	}
	i, _ := searchEntries(n, key)
	for {
		for ; i < n.numEntries(); i++ {
			rec := n.entry(i)
			k := decodeEntryKey(rec)
			cmp := bytes.Compare(k, key)
			if cmp > 0 {
				return false, nil
			}
			if cmp == 0 && bytes.Equal(decodeLeafPayload(rec), payload) {
				if err := n.p.RemoveAt(entrySlot0 + i); err != nil {
					return false, err
				}
				t.numEntries--
				return true, t.writeNode(n)
			}
		}
		if n.next() == noNext {
			return false, nil
		}
		if n, err = t.readNode(n.next()); err != nil {
			return false, err
		}
		i = 0
	}
}

// Delete removes the first entry exactly matching key, reporting whether one
// was found. Like several bulk-load-oriented engines, it does not rebalance:
// underfull nodes are tolerated (the estimators never delete).
func (t *Tree) Delete(key []byte) (bool, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return false, err
	}
	for !n.isLeaf() {
		if n.numEntries() == 0 {
			return false, fmt.Errorf("btree: internal node %d empty", n.pageNo)
		}
		child := decodeInternalChild(n.entry(childIndexFirst(n, key)))
		if n, err = t.readNode(child); err != nil {
			return false, err
		}
	}
	for {
		i, exact := searchEntries(n, key)
		if exact {
			if err := n.p.RemoveAt(entrySlot0 + i); err != nil {
				return false, err
			}
			t.numEntries--
			return true, t.writeNode(n)
		}
		if i < n.numEntries() || n.next() == noNext {
			return false, nil
		}
		if n, err = t.readNode(n.next()); err != nil {
			return false, err
		}
	}
}
