package experiments

import (
	"fmt"
	"io"
	"slices"
	"time"
)

// Config scales an experiment run. The defaults target interactive use;
// Scale=1 reproduces the full parameterization recorded in EXPERIMENTS.md.
type Config struct {
	// Scale multiplies table sizes and trial counts; 1.0 = full scale,
	// smaller values shrink runs proportionally (floors keep statistics
	// meaningful). Zero means 1.0.
	Scale float64
	// Seed is the master seed; every trial derives from it.
	Seed uint64
	// Verbose adds per-trial progress lines.
	Verbose bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	return c
}

// scaleN shrinks a row count by Scale with a floor.
func (c Config) scaleN(full int64, floor int64) int64 {
	n := int64(float64(full) * c.Scale)
	if n < floor {
		n = floor
	}
	return n
}

// scaleTrials shrinks a trial count by Scale with a floor.
func (c Config) scaleTrials(full int, floor int) int {
	t := int(float64(full) * c.Scale)
	if t < floor {
		t = floor
	}
	return t
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the experiment identifier used by cmd/cfbench (-exp E1).
	ID string
	// Artifact names the paper artifact reproduced ("Theorem 1", ...).
	Artifact string
	// Title is a one-line description.
	Title string
	// Run executes the experiment, writing human-readable tables to w.
	Run func(cfg Config, w io.Writer) error
}

// registry of experiments, populated by init() in the e*.go files.
var registry = map[string]Experiment{}

// register adds an experiment (init-time only).
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %s", e.ID))
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	slices.SortFunc(out, func(a, b Experiment) int {
		// E1..E10: numeric-aware ordering.
		return idOrder(a.ID) - idOrder(b.ID)
	})
	return out
}

// idOrder maps "E10" → 10 for sorting; unknown shapes sort last by string.
func idOrder(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "E%d", &n); err != nil {
		return 1 << 20
	}
	return n
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for _, x := range All() {
			ids = append(ids, x.ID)
		}
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
	}
	return e, nil
}

// Run executes one experiment with a header/footer.
func Run(e Experiment, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "=== %s — %s ===\n%s\n(scale=%.2f seed=%d)\n\n",
		e.ID, e.Artifact, e.Title, cfg.Scale, cfg.Seed)
	start := time.Now()
	if err := e.Run(cfg, w); err != nil {
		return fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	fmt.Fprintf(w, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

// RunAll executes every experiment in order.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range All() {
		if err := Run(e, cfg, w); err != nil {
			return err
		}
	}
	return nil
}
