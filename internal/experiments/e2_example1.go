package experiments

import (
	"fmt"
	"io"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/stats"
	"samplecf/internal/workload"
)

// E2 reproduces Example 1: a table of n = 100 million rows, sampled at 1%
// (r = 1 million), gives σ(CF'_NS) ≤ 5·10⁻⁴. The table is virtual
// (generator-backed), so the experiment runs in constant memory — the
// substitution DESIGN.md records for "we do not have the authors' 100M-row
// testbed".
func init() {
	register(Experiment{
		ID:       "E2",
		Artifact: "Example 1",
		Title:    "n=10⁸, r=10⁶ (1% sample): σ(CF'_NS) ≤ 5·10⁻⁴ on a virtual table",
		Run:      runE2,
	})
}

func runE2(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	// Full scale is the paper's n = 10⁸. Scaled runs keep f = 1%, so the
	// bound moves with r; the conclusion (σ below bound) is scale-free.
	n := cfg.scaleN(100_000_000, 1_000_000)
	const f = 0.01
	r := int64(f * float64(n))
	trials := cfg.scaleTrials(30, 15)
	const k = 20

	spec, err := charSpec("example1", n, n, k, distrib.NewUniformLen(0, k), cfg.Seed+17, workload.LayoutShuffled)
	if err != nil {
		return err
	}
	vt, err := workload.NewVirtual(spec)
	if err != nil {
		return err
	}
	codec, err := compress.Lookup("nullsuppression")
	if err != nil {
		return err
	}

	// Ground truth by streaming the full virtual table once.
	fmt.Fprintf(w, "computing exact CF over n=%d virtual rows...\n", n)
	cs, err := columnStat(vt)
	if err != nil {
		return err
	}
	truth := cs.CFNullSuppression(k, 1)

	var acc stats.Accumulator
	for trial := 0; trial < trials; trial++ {
		est, err := core.SampleCF(vt, vt.Schema(), core.Options{
			SampleRows: r, Codec: codec, Seed: cfg.Seed ^ uint64(trial)*7919,
		})
		if err != nil {
			return err
		}
		acc.Add(est.CF)
		if cfg.Verbose {
			fmt.Fprintf(w, "  trial %2d: CF' = %.6f (err %+.2e)\n", trial, est.CF, est.CF-truth)
		}
	}
	bound := core.Theorem1StdDevBound(r)

	tbl := NewTable("E2: Example 1 reproduction",
		"n", "r", "trueCF", "meanCF'", "bias", "sd(CF')", "bound", "sd<=bound")
	tbl.AddRow(d(n), d(r), f6(truth), f6(acc.Mean()), f6(acc.Mean()-truth),
		g3(acc.StdDev()), g3(bound), fmt.Sprintf("%v", acc.StdDev() <= bound))
	tbl.AddNote("paper's Example 1: at n=10⁸, r=10⁶ the bound is 1/(2·1000) = 5·10⁻⁴")
	tbl.AddNote("max |CF'-CF| observed over %d trials: %.2e", trials, maxAbsDev(acc, truth))
	_, err = tbl.WriteTo(w)
	return err
}

// maxAbsDev approximates the worst observed deviation using min/max.
func maxAbsDev(acc stats.Accumulator, truth float64) float64 {
	lo := truth - acc.Min()
	hi := acc.Max() - truth
	if lo > hi {
		return lo
	}
	return hi
}
