package experiments

import (
	"io"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/stats"
	"samplecf/internal/workload"
)

// E3 validates Theorem 2 (dictionary compression, small d): when d = o(n),
// SampleCF's ratio error approaches 1 even though d' badly underestimates d,
// because the pointer term p/k dominates.
func init() {
	register(Experiment{
		ID:       "E3",
		Artifact: "Theorem 2",
		Title:    "dictionary CF, small d: expected ratio error → 1 as d/n → 0",
		Run:      runE3,
	})
}

// dictTrialParams is shared by E3/E4/E5.
const (
	dictK = 20 // CHAR(k)
	dictP = 4  // pointer bytes (paper's constant p)
)

// runDictTrials measures SampleCF's ratio error against the closed-form
// truth for the simplified dictionary model, over `trials` seeds.
func runDictTrials(tab *workload.Table, truth float64, f float64, trials int, seed uint64) (est stats.Accumulator, ratio stats.Accumulator, err error) {
	codec := compress.GlobalDict{PointerBytes: dictP}
	for trial := 0; trial < trials; trial++ {
		e, err2 := core.SampleCF(tab, tab.Schema(), core.Options{
			Fraction: f, Codec: codec, Seed: seed ^ uint64(trial)*2654435761,
		})
		if err2 != nil {
			return est, ratio, err2
		}
		est.Add(e.CF)
		ratio.Add(stats.RatioError(e.CF, truth))
	}
	return est, ratio, nil
}

func runE3(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(1_000_000, 100_000)
	trials := cfg.scaleTrials(30, 15)
	const f = 0.01

	tbl := NewTable("E3: dictionary CF estimation, small-d regime (f=1%)",
		"d", "d/n", "trueCF", "meanCF'", "E[ratio-err]", "T2-bound")
	for _, dVals := range []int64{10, 100, 1_000, 10_000} {
		tab, err := genChar("e3", n, dVals, dictK, distrib.NewConstantLen(10), cfg.Seed+23, workload.LayoutShuffled)
		if err != nil {
			return err
		}
		cs, err := columnStat(tab)
		if err != nil {
			return err
		}
		truth := cs.CFGlobalDict(dictK, dictP)
		est, ratio, err := runDictTrials(tab, truth, f, trials, cfg.Seed+29)
		if err != nil {
			return err
		}
		bound, err := core.Theorem2RatioBound(n, cs.Distinct, f, dictK, dictP)
		if err != nil {
			return err
		}
		tbl.AddRow(d(cs.Distinct), g3(float64(cs.Distinct)/float64(n)), f6(truth),
			f6(est.Mean()), f4(ratio.Mean()), f4(bound))
	}
	tbl.AddNote("ratio error shrinks toward 1 as d/n → 0 (Theorem 2); bound is the reconstructed 1 + (d/r)(k/p)")
	_, err := tbl.WriteTo(w)
	return err
}

// E4 validates Theorem 3 (dictionary compression, large d): when d ≥ βn the
// ratio error stays below a constant independent of n.
func init() {
	register(Experiment{
		ID:       "E4",
		Artifact: "Theorem 3",
		Title:    "dictionary CF, large d (d=βn): expected ratio error ≤ constant",
		Run:      runE4,
	})
}

func runE4(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(1_000_000, 100_000)
	trials := cfg.scaleTrials(30, 15)
	const f = 0.01

	tbl := NewTable("E4: dictionary CF estimation, large-d regime (f=1%)",
		"skew", "β(realized)", "trueCF", "meanCF'", "E[ratio-err]", "T3-bound")
	type variant struct {
		name string
		dist func(dDomain int64) distrib.Discrete
	}
	variants := []variant{
		{"uniform", func(dd int64) distrib.Discrete { return distrib.NewUniform(dd) }},
		{"zipf0.5", func(dd int64) distrib.Discrete { return distrib.NewZipf(dd, 0.5) }},
	}
	for _, v := range variants {
		for _, beta := range []float64{0.1, 0.25, 0.5, 1.0} {
			dDomain := int64(beta * float64(n))
			spec, err := charSpecDist("e4", n, dictK, v.dist(dDomain), distrib.NewConstantLen(10), cfg.Seed+37, workload.LayoutShuffled)
			if err != nil {
				return err
			}
			tab, err := workload.Generate(spec)
			if err != nil {
				return err
			}
			cs, err := columnStat(tab)
			if err != nil {
				return err
			}
			realBeta := float64(cs.Distinct) / float64(n)
			truth := cs.CFGlobalDict(dictK, dictP)
			est, ratio, err := runDictTrials(tab, truth, f, trials, cfg.Seed+41)
			if err != nil {
				return err
			}
			bound, err := core.Theorem3RatioBound(realBeta, f, dictK, dictP)
			if err != nil {
				return err
			}
			tbl.AddRow(v.name, f4(realBeta), f6(truth), f6(est.Mean()), f4(ratio.Mean()), f4(bound))
		}
	}
	tbl.AddNote("β(realized) = exact distinct/n (domain draws miss some values; zipf more so)")
	tbl.AddNote("ratio error bounded by a constant independent of n (Theorem 3)")
	_, err := tbl.WriteTo(w)
	return err
}
