package experiments

import (
	"fmt"
	"io"
	"strings"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/physdesign"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// E10 exercises the paper's motivating application end-to-end: a physical
// design advisor that must fit indexes into a storage bound and therefore
// sizes compressed candidates with SampleCF. The check that matters:
// decisions made from ESTIMATED sizes match the decisions TRUE sizes would
// have produced, and the chosen set actually fits the budget when built.
func init() {
	register(Experiment{
		ID:       "E10",
		Artifact: "§I motivation (physical design)",
		Title:    "compression-aware index advisor driven by SampleCF estimates",
		Run:      runE10,
	})
}

func runE10(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(100_000, 20_000)

	// A sales-fact-like table: compressible text columns, a dense key.
	region, err := workload.NewStringColumn(value.Char(24), distrib.NewUniform(40), distrib.NewUniformLen(4, 12), cfg.Seed+81)
	if err != nil {
		return err
	}
	product, err := workload.NewStringColumn(value.Char(32), distrib.NewZipf(5_000, 0.7), distrib.NewUniformLen(8, 24), cfg.Seed+83)
	if err != nil {
		return err
	}
	orderID, err := workload.NewIntColumn(value.Int64(), distrib.NewUniform(n), 1_000_000)
	if err != nil {
		return err
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "sales", N: n, Seed: cfg.Seed + 87,
		Cols: []workload.SpecColumn{
			{Name: "region", Gen: region},
			{Name: "product", Gen: product},
			{Name: "order_id", Gen: orderID},
		},
	})
	if err != nil {
		return err
	}

	rowCodec, err := compress.Lookup("nullsuppression")
	if err != nil {
		return err
	}
	pageCodec, err := compress.Lookup("page")
	if err != nil {
		return err
	}
	queries := []physdesign.Query{
		{Name: "sales-by-region", Columns: []string{"region"}, Weight: 10, Selectivity: 0.05},
		{Name: "product-lookup", Columns: []string{"product"}, Weight: 6, Selectivity: 0.001},
		{Name: "order-point", Columns: []string{"order_id"}, Weight: 3, Selectivity: 0.00001},
	}
	var cands []physdesign.Candidate
	for _, key := range [][]string{{"region"}, {"product"}, {"order_id"}} {
		base := strings.Join(key, "_")
		cands = append(cands,
			physdesign.Candidate{Name: "ix_" + base, Table: tab, KeyColumns: key},
			physdesign.Candidate{Name: "ix_" + base + "_row", Table: tab, KeyColumns: key, Codec: rowCodec},
			physdesign.Candidate{Name: "ix_" + base + "_page", Table: tab, KeyColumns: key, Codec: pageCodec},
		)
	}

	budget := n * 40 // bytes: forces tradeoffs (full uncompressed set ≈ n·64)
	opts := physdesign.Options{SampleFraction: 0.02, Seed: cfg.Seed + 89}
	rec, err := physdesign.Recommend(cands, queries, budget, opts)
	if err != nil {
		return err
	}

	tbl := NewTable(fmt.Sprintf("E10: advisor recommendation (budget %d KiB)", budget/1024),
		"index", "codec", "est.CF", "est.KiB", "true.KiB", "size-err%")
	var trueTotal int64
	for _, s := range rec.Chosen {
		codecName := "(none)"
		trueBytes := s.UncompressedBytes
		if s.Codec != nil {
			codecName = s.Codec.Name()
			truth, err := core.TrueCF(tab, s.KeyColumns, s.Codec, 0)
			if err != nil {
				return err
			}
			trueBytes = truth.CompressedBytes
		}
		trueTotal += trueBytes
		errPct := 100 * float64(s.EstimatedBytes-trueBytes) / float64(trueBytes)
		tbl.AddRow(s.Name, codecName, f4(s.EstimatedCF),
			d(s.EstimatedBytes/1024), d(trueBytes/1024), fmt.Sprintf("%+.1f", errPct))
	}
	tbl.AddNote("estimated total %d KiB vs true total %d KiB vs budget %d KiB (true fits: %v)",
		rec.TotalBytes/1024, trueTotal/1024, budget/1024, trueTotal <= budget)
	tbl.AddNote("workload benefit %.1f page-reads saved per weighted query unit", rec.TotalBenefit)
	tbl.AddNote("size over-estimates (run-length-friendly keys, cf. E9 note) err conservative: the advisor never overshoots the budget")
	if _, err := tbl.WriteTo(w); err != nil {
		return err
	}
	if len(rec.Rejected) > 0 {
		fmt.Fprintln(w, "rejected candidates:")
		for _, r := range rec.Rejected {
			fmt.Fprintf(w, "  - %s\n", r)
		}
		fmt.Fprintln(w)
	}
	return nil
}
