package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("expected 14 experiments, have %v", ids)
	}
	// IDs must be E1..E10 in order.
	for i, e := range all {
		want := "E" + itoa(i+1)
		if e.ID != want {
			t.Errorf("position %d: id %s, want %s", i, e.ID, want)
		}
		if e.Artifact == "" || e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestByID(t *testing.T) {
	e, err := ByID("E5")
	if err != nil || e.ID != "E5" {
		t.Fatalf("ByID(E5): %v %v", e.ID, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "col-a", "b")
	tbl.AddRow("x", "1")
	tbl.AddRow("longer-cell", "2")
	tbl.AddNote("note %d", 7)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "col-a", "longer-cell", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	NewTable("x", "a", "b").AddRow("only-one")
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow(`va"l`, "with,comma")
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"va\"\"l\",\"with,comma\"\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestConfigScaling(t *testing.T) {
	cfg := Config{Scale: 0.1}.withDefaults()
	if n := cfg.scaleN(1000, 10); n != 100 {
		t.Fatalf("scaleN = %d", n)
	}
	if n := cfg.scaleN(50, 10); n != 10 {
		t.Fatalf("floor not applied: %d", n)
	}
	if tr := cfg.scaleTrials(100, 5); tr != 10 {
		t.Fatalf("scaleTrials = %d", tr)
	}
	zero := Config{}.withDefaults()
	if zero.Scale != 1.0 {
		t.Fatalf("default scale = %v", zero.Scale)
	}
}

// TestE1SanityAssertions: the Theorem-1 claims hold at test scale.
func TestE1SanityAssertions(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	sdRatio, bias, err := e1SanityCheck(Config{Scale: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// σ/bound ≤ 1 modulo estimation noise from ~40 trials.
	if sdRatio > 1.35 {
		t.Errorf("sd/bound = %v, Theorem 1 violated", sdRatio)
	}
	// Bimodal worst case should also be reasonably TIGHT (>0.5) — evidence
	// that the bound is the right order, not vacuous.
	if sdRatio < 0.4 {
		t.Errorf("sd/bound = %v suspiciously loose for the worst-case distribution", sdRatio)
	}
	if bias > 0.02 {
		t.Errorf("bias = %v, unbiasedness violated", bias)
	}
}

// TestAllExperimentsRunTiny smoke-runs every experiment at minimal scale,
// checking they complete and produce table output.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	cfg := Config{Scale: 0.02, Seed: 3}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(e, cfg, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID+":") && !strings.Contains(out, e.ID+" ") && !strings.Contains(out, "===") {
				t.Errorf("%s produced no recognizable output:\n%s", e.ID, out)
			}
			if len(out) < 100 {
				t.Errorf("%s output suspiciously short:\n%s", e.ID, out)
			}
		})
	}
}

func TestParallelTrialsDeterministicAndComplete(t *testing.T) {
	// Results arrive in trial order regardless of scheduling.
	got, err := parallelTrials(100, func(trial int) (float64, error) {
		return float64(trial * trial), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != float64(i*i) {
			t.Fatalf("trial %d = %v", i, v)
		}
	}
	// Errors propagate with the trial index.
	_, err = parallelTrials(10, func(trial int) (float64, error) {
		if trial == 7 {
			return 0, errSentinel
		}
		return 0, nil
	})
	if err == nil || !strings.Contains(err.Error(), "trial 7") {
		t.Fatalf("error propagation: %v", err)
	}
	// Empty input.
	if out, err := parallelTrials(0, nil); err != nil || out != nil {
		t.Fatalf("empty: %v %v", out, err)
	}
}

var errSentinel = errors.New("sentinel")

// TestExperimentOutputDeterministic: identical config ⇒ byte-identical
// output, including through the parallel trial runner.
func TestExperimentOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment twice")
	}
	e, err := ByID("E5")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		var buf bytes.Buffer
		if err := e.Run(Config{Scale: 0.05, Seed: 17}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same config produced different output:\n--- first\n%s\n--- second\n%s", a, b)
	}
}
