package experiments

import (
	"io"
	"math"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/stats"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// E11 tests the paper's §III claim that "our analysis extends for the case
// of multi-column indexes in a straightforward manner": each column is
// compressed independently, so the multi-column CF is the width-weighted
// mean of per-column CFs, and the estimator's accuracy carries over.
func init() {
	register(Experiment{
		ID:       "E11",
		Artifact: "§III multi-column remark",
		Title:    "multi-column indexes: per-column independence and estimator accuracy",
		Run:      runE11,
	})
}

func runE11(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(200_000, 40_000)
	trials := cfg.scaleTrials(30, 15)
	const f = 0.02

	text, err := workload.NewStringColumn(value.Char(24), distrib.NewUniform(1_000),
		distrib.NewUniformLen(2, 20), cfg.Seed+101)
	if err != nil {
		return err
	}
	code, err := workload.NewStringColumn(value.Char(8), distrib.NewZipf(50, 0.7),
		distrib.NewConstantLen(6), cfg.Seed+102)
	if err != nil {
		return err
	}
	id, err := workload.NewIntColumn(value.Int64(), distrib.NewUniform(n), 0)
	if err != nil {
		return err
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "e11", N: n, Seed: cfg.Seed + 103,
		Cols: []workload.SpecColumn{
			{Name: "text", Gen: text},
			{Name: "code", Gen: code},
			{Name: "id", Gen: id},
		},
	})
	if err != nil {
		return err
	}

	codec, err := compress.Lookup("nullsuppression")
	if err != nil {
		return err
	}
	tbl := NewTable("E11: NS estimation on single- vs multi-column indexes (f=2%)",
		"index", "width", "trueCF", "meanCF'", "|bias|", "sd(CF')", "bound")
	keysets := [][]string{
		{"text"}, {"code"}, {"id"},
		{"text", "code"},
		{"text", "code", "id"},
	}
	var trueSingle = map[string]float64{}
	var widthSingle = map[string]int{}
	for _, keys := range keysets {
		truth, err := core.TrueCF(tab, keys, codec, 0)
		if err != nil {
			return err
		}
		var acc stats.Accumulator
		var r int64
		for trial := 0; trial < trials; trial++ {
			est, err := core.SampleCF(tab, tab.Schema(), core.Options{
				Fraction: f, Codec: codec, KeyColumns: keys,
				Seed: cfg.Seed ^ uint64(trial)*811,
			})
			if err != nil {
				return err
			}
			acc.Add(est.CF)
			r = est.SampleRows
		}
		keySchema, err := tab.Schema().Project(keys...)
		if err != nil {
			return err
		}
		if len(keys) == 1 {
			trueSingle[keys[0]] = truth.CF()
			widthSingle[keys[0]] = keySchema.RowWidth()
		}
		bias := acc.Mean() - truth.CF()
		if bias < 0 {
			bias = -bias
		}
		tbl.AddRow(joinCols(keys), d(int64(keySchema.RowWidth())), f6(truth.CF()),
			f6(acc.Mean()), f6(bias), f6(acc.StdDev()), f6(core.Theorem1StdDevBound(r)))
	}
	// Independence check: CF(text,code) should equal the width-weighted
	// mean of CF(text) and CF(code).
	wText, wCode := float64(widthSingle["text"]), float64(widthSingle["code"])
	predicted := (trueSingle["text"]*wText + trueSingle["code"]*wCode) / (wText + wCode)
	tbl.AddNote("width-weighted per-column prediction for (text,code): %.6f — matches the measured multi-column row (columns compress independently)", predicted)
	tbl.AddNote("Theorem 1 holds per index regardless of column count: sd ≤ bound in every row")
	_, err = tbl.WriteTo(w)
	return err
}

func joinCols(cols []string) string {
	out := ""
	for i, c := range cols {
		if i > 0 {
			out += "+"
		}
		out += c
	}
	return out
}

// E12 is the sampling-scheme ablation: the paper assumes uniform WITH
// replacement; commercial estimators often sample without replacement. At
// the small f the paper targets the two are indistinguishable; at large f
// WOR gains the finite-population correction.
func init() {
	register(Experiment{
		ID:       "E12",
		Artifact: "§II-C sampling model",
		Title:    "with- vs without-replacement sampling across fractions",
		Run:      runE12,
	})
}

func runE12(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(100_000, 20_000)
	trials := cfg.scaleTrials(60, 30)

	tab, err := genChar("e12", n, n, 20, distrib.NewUniformLen(0, 20), cfg.Seed+111, workload.LayoutShuffled)
	if err != nil {
		return err
	}
	cs, err := columnStat(tab)
	if err != nil {
		return err
	}
	truth := cs.CFNullSuppression(20, 1)
	codec, err := compress.Lookup("nullsuppression")
	if err != nil {
		return err
	}

	tbl := NewTable("E12: NS estimator spread, WR vs WOR",
		"f", "sd(WR)", "sd(WOR)", "WOR/WR", "fpc=sqrt(1-f)")
	for _, f := range []float64{0.01, 0.1, 0.5} {
		var wr, wor stats.Accumulator
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed ^ uint64(trial)*1213
			a, err := core.SampleCF(tab, tab.Schema(), core.Options{
				Fraction: f, Codec: codec, Seed: seed, Method: core.MethodUniformWR,
			})
			if err != nil {
				return err
			}
			b, err := core.SampleCF(tab, tab.Schema(), core.Options{
				Fraction: f, Codec: codec, Seed: seed, Method: core.MethodUniformWOR,
			})
			if err != nil {
				return err
			}
			wr.Add(a.CF)
			wor.Add(b.CF)
		}
		ratio := 0.0
		if wr.StdDev() > 0 {
			ratio = wor.StdDev() / wr.StdDev()
		}
		fpc := 1 - f
		tbl.AddRow(g3(f), f6(wr.StdDev()), f6(wor.StdDev()), f4(ratio), f4(math.Sqrt(fpc)))
	}
	tbl.AddNote("true CF %.6f; both schemes unbiased", truth)
	tbl.AddNote("WOR spread tracks the finite-population correction √(1-f): negligible at the 1%% fractions the paper assumes, visible at f=50%%")
	_, err = tbl.WriteTo(w)
	return err
}

// E13 validates the bootstrap extension: percentile intervals from
// resampling the sample. Coverage should be near nominal for NS (an
// additive statistic) and the documented (1-1/e) d' collapse should appear
// for the dictionary model.
func init() {
	register(Experiment{
		ID:       "E13",
		Artifact: "extension: bootstrap CIs",
		Title:    "bootstrap interval coverage (NS) and the dictionary collapse",
		Run:      runE13,
	})
}

func runE13(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(100_000, 20_000)
	trials := cfg.scaleTrials(40, 20)
	const f = 0.02
	const resamples = 200

	tab, err := genChar("e13", n, n/10, 20, distrib.NewUniformLen(0, 20), cfg.Seed+121, workload.LayoutShuffled)
	if err != nil {
		return err
	}
	cs, err := columnStat(tab)
	if err != nil {
		return err
	}
	nsCodec, err := compress.Lookup("nullsuppression")
	if err != nil {
		return err
	}
	nsTruth := cs.CFNullSuppression(20, 1)

	covered := 0
	var widths stats.Accumulator
	for trial := 0; trial < trials; trial++ {
		_, sample, err := core.SampleCFWithSample(tab, tab.Schema(), core.Options{
			Fraction: f, Codec: nsCodec, Seed: cfg.Seed ^ uint64(trial)*1607,
		})
		if err != nil {
			return err
		}
		ci, err := core.Bootstrap(sample, nsCodec, 0, resamples, 0.05, cfg.Seed+uint64(trial))
		if err != nil {
			return err
		}
		if nsTruth >= ci.Lo && nsTruth <= ci.Hi {
			covered++
		}
		widths.Add(ci.Hi - ci.Lo)
	}

	tbl := NewTable("E13: bootstrap 95% interval behaviour (B=200)",
		"codec", "metric", "value")
	tbl.AddRow("nullsuppression", "coverage of true CF", f4(float64(covered)/float64(trials)))
	tbl.AddRow("nullsuppression", "mean interval width", f6(widths.Mean()))
	tbl.AddRow("nullsuppression", "Theorem-1 2σ width (reference)", f6(4*core.Theorem1StdDevBound(int64(f*float64(n)))))

	// Dictionary collapse: bootstrap mean vs point estimate.
	dictCodec := compress.GlobalDict{PointerBytes: 4}
	est, sample, err := core.SampleCFWithSample(tab, tab.Schema(), core.Options{
		Fraction: f, Codec: dictCodec, Seed: cfg.Seed + 9999,
	})
	if err != nil {
		return err
	}
	ci, err := core.Bootstrap(sample, dictCodec, 0, resamples, 0.05, cfg.Seed+10000)
	if err != nil {
		return err
	}
	tbl.AddRow("globaldict", "point estimate CF'", f6(est.CF))
	tbl.AddRow("globaldict", "bootstrap interval", f6(ci.Lo)+" .. "+f6(ci.Hi))
	tbl.AddNote("NS coverage ≈ 0.95: the bootstrap gives valid intervals for additive codecs with no distributional assumptions")
	tbl.AddNote("the dictionary interval sits BELOW its own point estimate — the (1-1/e) d' collapse documented in core.Bootstrap; use Theorems 2-3 for dictionary error, not the bootstrap")
	_, err = tbl.WriteTo(w)
	return err
}
