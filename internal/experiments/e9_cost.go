package experiments

import (
	"io"
	"time"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/workload"
)

// E9 measures the economics that motivate the paper (§I, Fig. 2): the cost
// of SampleCF versus actually building and compressing the full index. The
// estimate's cost scales with r = f·n; the naive path scales with n and is
// "prohibitively inefficient" at physical-design-tool call rates.
func init() {
	register(Experiment{
		ID:       "E9",
		Artifact: "Fig. 2 pipeline / §I motivation",
		Title:    "estimation cost: SampleCF vs full build-and-compress",
		Run:      runE9,
	})
}

func runE9(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	trials := cfg.scaleTrials(5, 3)
	const f = 0.01
	codec, err := compress.Lookup("page")
	if err != nil {
		return err
	}

	tbl := NewTable("E9: cost of estimation (PAGE composite codec, f=1%)",
		"n", "sampleCF(ms)", "sampleCF+index(ms)", "fullCF(ms)", "speedup", "est.CF", "trueCF")
	for _, nFull := range []int64{10_000, 100_000, 1_000_000} {
		n := cfg.scaleN(nFull, 5_000)
		tab, err := genChar("e9", n, n/50, dictK, distrib.NewUniformLen(2, 18), cfg.Seed+79, workload.LayoutShuffled)
		if err != nil {
			return err
		}
		var fastMS, idxMS, fullMS float64
		var estCF, trueCFv float64
		for trial := 0; trial < trials; trial++ {
			start := time.Now()
			est, err := core.SampleCF(tab, tab.Schema(), core.Options{
				Fraction: f, Codec: codec, Seed: cfg.Seed ^ uint64(trial),
			})
			if err != nil {
				return err
			}
			fastMS += float64(time.Since(start).Microseconds()) / 1000
			estCF = est.CF

			start = time.Now()
			if _, err := core.SampleCF(tab, tab.Schema(), core.Options{
				Fraction: f, Codec: codec, Seed: cfg.Seed ^ uint64(trial), BuildIndex: true,
			}); err != nil {
				return err
			}
			idxMS += float64(time.Since(start).Microseconds()) / 1000

			start = time.Now()
			truth, err := core.TrueCF(tab, nil, codec, 0)
			if err != nil {
				return err
			}
			fullMS += float64(time.Since(start).Microseconds()) / 1000
			trueCFv = truth.CF()
		}
		fastMS /= float64(trials)
		idxMS /= float64(trials)
		fullMS /= float64(trials)
		speedup := 0.0
		if fastMS > 0 {
			speedup = fullMS / fastMS
		}
		tbl.AddRow(d(n), f4(fastMS), f4(idxMS), f4(fullMS), f4(speedup), f6(estCF), f6(trueCFv))
	}
	tbl.AddNote("speedup grows linearly with n at fixed f: the estimator touches r = f·n rows")
	tbl.AddNote("sampleCF+index includes materializing a real B+-tree on the sample (Fig. 2 taken literally)")
	tbl.AddNote("est.CF ≫ trueCF here: the PAGE composite's RLE stage thrives on long sorted runs that a row sample destroys — a codec regime outside the paper's NS/dictionary analysis (cf. E6/E7)")
	_, err = tbl.WriteTo(w)
	return err
}
