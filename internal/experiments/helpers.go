package experiments

import (
	"fmt"

	"samplecf/internal/distrib"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// charSpec builds the paper's model table: a single CHAR(k) column with d
// distinct values and the given length distribution.
func charSpec(name string, n, dDomain int64, k int, lengths distrib.Lengths, seed uint64, layout workload.Layout) (workload.Spec, error) {
	col, err := workload.NewStringColumn(value.Char(k), distrib.NewUniform(dDomain), lengths, seed)
	if err != nil {
		return workload.Spec{}, err
	}
	return workload.Spec{
		Name: name, N: n, Seed: seed, Layout: layout,
		Cols: []workload.SpecColumn{{Name: "a", Gen: col}},
	}, nil
}

// charSpecDist is charSpec with an arbitrary discrete distribution.
func charSpecDist(name string, n int64, k int, dist distrib.Discrete, lengths distrib.Lengths, seed uint64, layout workload.Layout) (workload.Spec, error) {
	col, err := workload.NewStringColumn(value.Char(k), dist, lengths, seed)
	if err != nil {
		return workload.Spec{}, err
	}
	return workload.Spec{
		Name: name, N: n, Seed: seed, Layout: layout,
		Cols: []workload.SpecColumn{{Name: "a", Gen: col}},
	}, nil
}

// genChar materializes charSpec.
func genChar(name string, n, dDomain int64, k int, lengths distrib.Lengths, seed uint64, layout workload.Layout) (*workload.Table, error) {
	spec, err := charSpec(name, n, dDomain, k, lengths, seed, layout)
	if err != nil {
		return nil, err
	}
	return workload.Generate(spec)
}

// columnStat computes the single column's exact stats.
func columnStat(src workload.Scanner) (workload.ColumnStats, error) {
	st, err := workload.ComputeStats(src)
	if err != nil {
		return workload.ColumnStats{}, err
	}
	if len(st) != 1 {
		return workload.ColumnStats{}, fmt.Errorf("experiments: expected 1 column, got %d", len(st))
	}
	return st[0], nil
}
