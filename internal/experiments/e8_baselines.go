package experiments

import (
	"io"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distinct"
	"samplecf/internal/distrib"
	"samplecf/internal/stats"
	"samplecf/internal/workload"
)

// E8 compares SampleCF against the analytical alternative the paper's
// §III-B reduction implies: estimate d with a dedicated distinct-value
// estimator (GEE, Chao, Chao-Lee, Shlosser, jackknife) and plug it into
// CF = p/k + d̂/n. SampleCF is exactly the naive-scale member of this
// family; the comparison shows where frequency-aware estimators buy
// accuracy (skewed, mid-cardinality data) and where SampleCF's simplicity
// already suffices (both of the paper's theorem regimes).
func init() {
	register(Experiment{
		ID:       "E8",
		Artifact: "§I / §III-B baselines",
		Title:    "SampleCF vs DV-estimator-based analytical estimators (dictionary CF)",
		Run:      runE8,
	})
}

func runE8(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(500_000, 100_000)
	trials := cfg.scaleTrials(25, 10)
	const f = 0.01

	type scenario struct {
		name string
		dist distrib.Discrete
	}
	scenarios := []scenario{
		{"uniform-small-d", distrib.NewUniform(100)},
		{"uniform-mid-d", distrib.NewUniform(n / 20)},
		{"uniform-large-d", distrib.NewUniform(n / 2)},
		{"zipf-mid-d", distrib.NewZipf(n/20, 0.8)},
		{"hotset-mid-d", distrib.NewHotSet(n/20, 0.01, 0.7)},
	}
	estimators := distinct.All()

	cols := []string{"scenario", "trueCF", "SampleCF"}
	for _, e := range estimators {
		if e.Name() == "naive-scale" || e.Name() == "sample-d'" {
			continue // naive-scale IS SampleCF; sample-d' is a floor
		}
		cols = append(cols, e.Name())
	}
	tbl := NewTable("E8: mean ratio error of dictionary-CF estimators (f=1%)", cols...)

	for _, sc := range scenarios {
		spec, err := charSpecDist("e8", n, dictK, sc.dist, distrib.NewConstantLen(10), cfg.Seed+73, workload.LayoutShuffled)
		if err != nil {
			return err
		}
		tab, err := workload.Generate(spec)
		if err != nil {
			return err
		}
		cs, err := columnStat(tab)
		if err != nil {
			return err
		}
		truth := cs.CFGlobalDict(dictK, dictP)

		sampleCFRatio := stats.Accumulator{}
		ratios := make(map[string]*stats.Accumulator)
		for _, e := range estimators {
			ratios[e.Name()] = &stats.Accumulator{}
		}
		for trial := 0; trial < trials; trial++ {
			est, err := core.SampleCF(tab, tab.Schema(), core.Options{
				Fraction: f,
				Codec:    compress.GlobalDict{PointerBytes: dictP},
				Seed:     cfg.Seed ^ uint64(trial)*613,
			})
			if err != nil {
				return err
			}
			sampleCFRatio.Add(stats.RatioError(est.CF, truth))
			// The same sample's profile feeds every analytical baseline —
			// an apples-to-apples comparison at identical sampling cost.
			for _, e := range estimators {
				cf, err := core.AnalyticDict(dictK, dictP, est.Profile, e)
				if err != nil {
					return err
				}
				ratios[e.Name()].Add(stats.RatioError(cf, truth))
			}
		}
		row := []string{sc.name, f6(truth), f4(sampleCFRatio.Mean())}
		for _, e := range estimators {
			if e.Name() == "naive-scale" || e.Name() == "sample-d'" {
				continue
			}
			row = append(row, f4(ratios[e.Name()].Mean()))
		}
		tbl.AddRow(row...)
	}
	tbl.AddNote("SampleCF column = engine pipeline (= naive-scale closed form up to clamping)")
	tbl.AddNote("frequency-aware estimators win in the mid-d / skewed gap between the paper's two easy regimes")
	_, err := tbl.WriteTo(w)
	return err
}
