// Package experiments reproduces every evaluation artifact of the paper —
// Theorems 1-3, Example 1, Table II — plus the extensions the paper flags
// as future work (paging effects, block sampling) and the baseline
// comparisons its related-work section implies. The paper's own experiment
// section was omitted for space, so these experiments ARE the empirical
// validation of its analytical claims; EXPERIMENTS.md records paper-claim
// versus measured for each.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table renders fixed-width ASCII tables in the style of the paper's
// Table I/II.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; cell count must match the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.Columns)))
	}
	t.rows = append(t.rows, cells)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, note := range t.notes {
		fmt.Fprintf(&b, "  note: %s\n", note)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// CSV renders the table as comma-separated values (figure-regeneration
// format for external plotting).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// f4 formats a float with 4 decimals; f6 with 6; g formats adaptively.
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }
func d(v int64) string    { return fmt.Sprintf("%d", v) }
