package experiments

import (
	"io"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/stats"
	"samplecf/internal/workload"

	"samplecf/internal/distrib"
)

// E6 measures the paging effects the paper's general dictionary formula
// models via Pg(i) but its simplified analysis ignores — the paper's first
// "future work" item. The in-page dictionary duplicates a distinct value
// once per page it appears on: Σ Pg(i) ≥ d, and the gap widens as pages
// shrink or d falls (values span more pages). It also checks that SampleCF
// remains accurate when the TRUTH is the paged model, not the simplified
// one.
func init() {
	register(Experiment{
		ID:       "E6",
		Artifact: "§III-B general model (future work)",
		Title:    "paged vs global dictionary: Pg(i) duplication and SampleCF accuracy",
		Run:      runE6,
	})
}

func runE6(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(200_000, 50_000)
	trials := cfg.scaleTrials(20, 10)
	const k = dictK
	const f = 0.02

	tbl := NewTable("E6: paging effects on dictionary compression (clustered layout)",
		"d", "pageKiB", "CF(paged)", "CF(global)", "ΣPg(i)/d", "est(paged)", "ratio-err")
	for _, dDomain := range []int64{100, 1_000, 10_000} {
		tab, err := genChar("e6", n, dDomain, k, distrib.NewConstantLen(10), cfg.Seed+61, workload.LayoutClustered)
		if err != nil {
			return err
		}
		cs, err := columnStat(tab)
		if err != nil {
			return err
		}
		globalTruth, err := core.TrueCF(tab, nil, compress.GlobalDict{PointerBytes: dictP}, 0)
		if err != nil {
			return err
		}
		pagedCodec, err := compress.Lookup("pagedict")
		if err != nil {
			return err
		}
		for _, pageSize := range []int{4096, 8192, 16384} {
			pagedTruth, err := core.TrueCF(tab, nil, pagedCodec, pageSize)
			if err != nil {
				return err
			}
			var ratio, est stats.Accumulator
			for trial := 0; trial < trials; trial++ {
				e, err := core.SampleCF(tab, tab.Schema(), core.Options{
					Fraction: f, Codec: pagedCodec, Seed: cfg.Seed ^ uint64(trial)*97 ^ uint64(pageSize),
					PageSize: pageSize,
				})
				if err != nil {
					return err
				}
				est.Add(e.CF)
				ratio.Add(stats.RatioError(e.CF, pagedTruth.CF()))
			}
			dup := float64(pagedTruth.DictEntries) / float64(cs.Distinct)
			tbl.AddRow(d(cs.Distinct), d(int64(pageSize/1024)),
				f6(pagedTruth.CF()), f6(globalTruth.CF()), f4(dup),
				f6(est.Mean()), f4(ratio.Mean()))
		}
	}
	tbl.AddNote("ΣPg(i)/d > 1 quantifies in-page dictionary duplication (paper's Pg(i) term); it grows as pages shrink")
	tbl.AddNote("paged CF beats the global model here because pages of clustered data hold few distinct values AND per-page pointers are 1 byte, not %d", dictP)
	tbl.AddNote("est(paged) overestimates: a row sample destroys page-level duplication, so sampled pages need far larger dictionaries — the quantitative case for the paper's 'model paging effects' future work")
	if _, err := tbl.WriteTo(w); err != nil {
		return err
	}

	// Ablation: byte-aligned fixed-width dictionary entries vs row-
	// compressed (NS) entries — the design choice DESIGN.md calls out.
	abl := NewTable("E6(ablation): dictionary entry storage format",
		"d", "CF(fixed-width entries)", "CF(NS entries)")
	for _, dDomain := range []int64{100, 10_000} {
		tab, err := genChar("e6b", n, dDomain, k, distrib.NewUniformLen(2, 10), cfg.Seed+67, workload.LayoutClustered)
		if err != nil {
			return err
		}
		cs, err := columnStat(tab)
		if err != nil {
			return err
		}
		fixed, err := core.TrueCF(tab, nil, compress.Paged{PC: &compress.PageDict{}}, 0)
		if err != nil {
			return err
		}
		nsEntries, err := core.TrueCF(tab, nil, compress.Paged{PC: &compress.PageDict{EntryNS: true}}, 0)
		if err != nil {
			return err
		}
		abl.AddRow(d(cs.Distinct), f6(fixed.CF()), f6(nsEntries.CF()))
	}
	abl.AddNote("row-compressing dictionary entries (SQL Server PAGE style) strictly helps on padded data")
	_, err := abl.WriteTo(w)
	return err
}
