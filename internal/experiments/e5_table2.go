package experiments

import (
	"fmt"
	"io"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/stats"
	"samplecf/internal/workload"
)

// E5 regenerates the paper's Table II — the summary of results — with
// measured numbers substituted for the analytical claims:
//
//	Compression   Estimator  Bias  Small d (o(n))        Large d (O(n))
//	NS            SampleCF   No    variance ≤ bound      variance ≤ bound
//	Dictionary    SampleCF   Yes   ratio error ≈ 1       ratio error ≤ const
func init() {
	register(Experiment{
		ID:       "E5",
		Artifact: "Table II",
		Title:    "summary-of-results matrix, regenerated empirically",
		Run:      runE5,
	})
}

// tableIICell runs one (codec, d-regime) cell and reports bias, spread, and
// mean ratio error.
type tableIICell struct {
	bias, sd, bound, ratio float64
}

func runTableIICell(cfg Config, n, dDomain int64, codec compress.Codec, analyticTruth func(workload.ColumnStats) float64, trials int, f float64, seed uint64) (tableIICell, error) {
	tab, err := genChar("e5", n, dDomain, dictK, distrib.NewUniformLen(0, dictK), seed, workload.LayoutShuffled)
	if err != nil {
		return tableIICell{}, err
	}
	cs, err := columnStat(tab)
	if err != nil {
		return tableIICell{}, err
	}
	truth := analyticTruth(cs)
	var est, ratio stats.Accumulator
	for trial := 0; trial < trials; trial++ {
		e, err := core.SampleCF(tab, tab.Schema(), core.Options{
			Fraction: f, Codec: codec, Seed: seed ^ uint64(trial)*6364136223846793005,
		})
		if err != nil {
			return tableIICell{}, err
		}
		est.Add(e.CF)
		ratio.Add(stats.RatioError(e.CF, truth))
	}
	r := int64(f * float64(n))
	return tableIICell{
		bias:  est.Mean() - truth,
		sd:    est.StdDev(),
		bound: core.Theorem1StdDevBound(r),
		ratio: ratio.Mean(),
	}, nil
}

func runE5(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(200_000, 50_000)
	trials := cfg.scaleTrials(40, 20)
	const f = 0.01
	smallD := int64(20)
	largeD := n / 2

	nsCodec, err := compress.Lookup("nullsuppression")
	if err != nil {
		return err
	}
	dictCodec := compress.GlobalDict{PointerBytes: dictP}

	nsTruth := func(cs workload.ColumnStats) float64 { return cs.CFNullSuppression(dictK, 1) }
	dictTruth := func(cs workload.ColumnStats) float64 { return cs.CFGlobalDict(dictK, dictP) }

	nsSmall, err := runTableIICell(cfg, n, smallD, nsCodec, nsTruth, trials, f, cfg.Seed+43)
	if err != nil {
		return err
	}
	nsLarge, err := runTableIICell(cfg, n, largeD, nsCodec, nsTruth, trials, f, cfg.Seed+47)
	if err != nil {
		return err
	}
	dSmall, err := runTableIICell(cfg, n, smallD, dictCodec, dictTruth, trials, f, cfg.Seed+53)
	if err != nil {
		return err
	}
	dLarge, err := runTableIICell(cfg, n, largeD, dictCodec, dictTruth, trials, f, cfg.Seed+59)
	if err != nil {
		return err
	}

	tbl := NewTable("E5: Table II regenerated (measured | paper's claim)",
		"Compression", "Estimator", "Bias", "Small d (o(n))", "Large d (O(n))")
	tbl.AddRow("Null Suppression", "SampleCF",
		fmt.Sprintf("%+.2e | 'No'", (nsSmall.bias+nsLarge.bias)/2),
		fmt.Sprintf("sd %.2e ≤ %.2e | 'Var ≤ bound'", nsSmall.sd, nsSmall.bound),
		fmt.Sprintf("sd %.2e ≤ %.2e | 'Var ≤ bound'", nsLarge.sd, nsLarge.bound))
	tbl.AddRow("Dictionary", "SampleCF",
		fmt.Sprintf("%+.2e | 'Yes'", dLarge.bias),
		fmt.Sprintf("ratio %.3f | 'close to 1'", dSmall.ratio),
		fmt.Sprintf("ratio %.3f | 'at most constant'", dLarge.ratio))
	tbl.AddNote("n=%d, f=%.0f%%, %d trials per cell; small d=%d, large d=%d", n, f*100, trials, smallD, largeD)
	tbl.AddNote("dictionary bias is positive under WR sampling (d'/r ≥ d/n: the sample looks less compressible) — the paper's 'Yes' (biased), erring toward conservatism")
	_, err = tbl.WriteTo(w)
	return err
}
