package experiments

import (
	"io"
	"math"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/sampling"
	"samplecf/internal/stats"
	"samplecf/internal/workload"
)

// E1 validates Theorem 1: CF'_NS is unbiased and σ(CF'_NS) ≤ 1/(2√(nf)),
// across sampling fractions and ℓ-distributions (including the
// near-worst-case bimodal one the Popoviciu bound is tight for).
func init() {
	register(Experiment{
		ID:       "E1",
		Artifact: "Theorem 1",
		Title:    "NS estimator: unbiasedness and the 1/(2√(nf)) std-dev bound",
		Run:      runE1,
	})
}

func runE1(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(200_000, 20_000)
	trials := cfg.scaleTrials(100, 30)
	const k = 20
	codec, err := compress.Lookup("nullsuppression")
	if err != nil {
		return err
	}

	lengthDists := []distrib.Lengths{
		distrib.NewUniformLen(0, k),
		distrib.NewBimodalLen(0, k, 0.5), // worst-case Var(ℓ) = k²/4
		distrib.NewNormalLen(10, 3, 0, k),
		distrib.NewConstantLen(7),
	}
	fractions := []float64{0.001, 0.01, 0.1}

	tbl := NewTable("E1: NS bias and spread vs Theorem 1 bound",
		"lengths", "f", "r", "trueCF", "meanCF'", "bias", "sd(CF')", "bound", "sd/bound", "exact-sd")
	for _, lengths := range lengthDists {
		tab, err := genChar("e1", n, n, k, lengths, cfg.Seed+11, workload.LayoutShuffled)
		if err != nil {
			return err
		}
		cs, err := columnStat(tab)
		if err != nil {
			return err
		}
		truth := cs.CFNullSuppression(k, 1)
		for _, f := range fractions {
			r := sampling.SampleSize(n, f)
			cfs, err := parallelTrials(trials, func(trial int) (float64, error) {
				est, err := core.SampleCF(tab, tab.Schema(), core.Options{
					Fraction: f, Codec: codec, Seed: cfg.Seed ^ uint64(trial)*0x9e37,
				})
				if err != nil {
					return 0, err
				}
				return est.CF, nil
			})
			if err != nil {
				return err
			}
			var acc stats.Accumulator
			for _, cf := range cfs {
				acc.Add(cf)
			}
			bound := core.Theorem1StdDevBound(r)
			exact := core.Theorem1StdDevExact(cs.VarNS(), k, r)
			tbl.AddRow(
				lengths.Name(), g3(f), d(r), f6(truth), f6(acc.Mean()),
				f6(acc.Mean()-truth), f6(acc.StdDev()), f6(bound),
				f4(acc.StdDev()/bound), f6(exact),
			)
		}
	}
	tbl.AddNote("bound = 1/(2√r) per Theorem 1; sd/bound ≤ 1 (up to trial noise) confirms the theorem")
	tbl.AddNote("exact-sd = σ_ℓ/(k√r): the distribution-aware prediction the bound dominates")
	tbl.AddNote("bias column ≈ 0 everywhere confirms unbiasedness (paper: E[CF'_NS] = CF_NS)")
	if _, err := tbl.WriteTo(w); err != nil {
		return err
	}

	// Figure-style series: sd(CF') versus r on log grid, against the bound.
	fig := NewTable("E1(fig): spread vs sample size (uniform lengths)",
		"r", "sd(CF')", "bound=1/(2*sqrt(r))")
	tab, err := genChar("e1fig", n, n, k, distrib.NewUniformLen(0, k), cfg.Seed+13, workload.LayoutShuffled)
	if err != nil {
		return err
	}
	for _, r := range []int64{100, 316, 1000, 3162, 10000} {
		if r > n {
			break
		}
		cfs, err := parallelTrials(trials, func(trial int) (float64, error) {
			est, err := core.SampleCF(tab, tab.Schema(), core.Options{
				SampleRows: r, Codec: codec, Seed: cfg.Seed ^ uint64(trial)*31 ^ uint64(r),
			})
			if err != nil {
				return 0, err
			}
			return est.CF, nil
		})
		if err != nil {
			return err
		}
		var acc stats.Accumulator
		for _, cf := range cfs {
			acc.Add(cf)
		}
		fig.AddRow(d(r), f6(acc.StdDev()), f6(core.Theorem1StdDevBound(r)))
	}
	fig.AddNote("spread decays as r^-1/2, tracking the bound's slope (log-log)")
	_, err = fig.WriteTo(w)
	return err
}

// e1SanityCheck is used by tests: returns max |sd/bound| across a quick run.
func e1SanityCheck(cfg Config) (maxSDRatio, maxBias float64, err error) {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(50_000, 10_000)
	trials := cfg.scaleTrials(60, 40)
	const k = 20
	codec, err := compress.Lookup("nullsuppression")
	if err != nil {
		return 0, 0, err
	}
	tab, err := genChar("e1s", n, n, k, distrib.NewBimodalLen(0, k, 0.5), cfg.Seed+1, workload.LayoutShuffled)
	if err != nil {
		return 0, 0, err
	}
	cs, err := columnStat(tab)
	if err != nil {
		return 0, 0, err
	}
	truth := cs.CFNullSuppression(k, 1)
	r := sampling.SampleSize(n, 0.01)
	var acc stats.Accumulator
	for trial := 0; trial < trials; trial++ {
		est, err := core.SampleCF(tab, tab.Schema(), core.Options{
			SampleRows: r, Codec: codec, Seed: cfg.Seed ^ uint64(trial)*1009,
		})
		if err != nil {
			return 0, 0, err
		}
		acc.Add(est.CF)
	}
	return acc.StdDev() / core.Theorem1StdDevBound(r), math.Abs(acc.Mean() - truth), nil
}
