package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelTrials runs fn(trial) for every trial in [0, n) across a bounded
// worker pool and returns the results in trial order. Because each trial
// derives its randomness from its own index, and accumulation happens over
// the ordered result slice, output is bit-identical to a sequential run —
// parallelism changes wall-clock only.
func parallelTrials(n int, fn func(trial int) (float64, error)) ([]float64, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	results := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range next {
				results[trial], errs[trial] = fn(trial)
			}
		}()
	}
	for trial := 0; trial < n; trial++ {
		next <- trial
	}
	close(next)
	wg.Wait()
	for trial, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: trial %d: %w", trial, err)
		}
	}
	return results, nil
}
