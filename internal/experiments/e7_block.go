package experiments

import (
	"io"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/stats"
	"samplecf/internal/workload"
)

// E7 quantifies the paper's second future-work item: block (page-level)
// sampling, which commercial systems use instead of the uniform row
// sampling the analysis assumes. On a clustered layout, whole-page draws
// see long runs of equal values, so d' per sampled row collapses and the
// dictionary CF' underestimates badly; on a shuffled layout block sampling
// behaves like row sampling. NS is layout-insensitive either way — a
// per-row SUM doesn't care how rows are grouped, only dictionary-style
// codecs do.
func init() {
	register(Experiment{
		ID:       "E7",
		Artifact: "§II-C block sampling (future work)",
		Title:    "uniform-row vs block sampling accuracy across physical layouts",
		Run:      runE7,
	})
}

func runE7(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(200_000, 50_000)
	trials := cfg.scaleTrials(30, 15)
	const f = 0.02
	const rowsPerPage = 256
	dDomain := n / 100

	dictCodec := compress.GlobalDict{PointerBytes: dictP}
	nsCodec, err := compress.Lookup("nullsuppression")
	if err != nil {
		return err
	}

	tbl := NewTable("E7: sampling scheme × layout (f=2%)",
		"codec", "layout", "method", "trueCF", "meanCF'", "E[ratio-err]")
	for _, layout := range []workload.Layout{workload.LayoutShuffled, workload.LayoutClustered} {
		tab, err := genChar("e7", n, dDomain, dictK, distrib.NewUniformLen(2, 18), cfg.Seed+71, layout)
		if err != nil {
			return err
		}
		cs, err := columnStat(tab)
		if err != nil {
			return err
		}
		pages, err := tab.AsPageSource(rowsPerPage)
		if err != nil {
			return err
		}
		for _, codecCase := range []struct {
			name  string
			codec compress.Codec
			truth float64
		}{
			{"globaldict", dictCodec, cs.CFGlobalDict(dictK, dictP)},
			{"nullsupp", nsCodec, cs.CFNullSuppression(dictK, 1)},
		} {
			for _, m := range []core.Method{core.MethodUniformWR, core.MethodBlock} {
				var est, ratio stats.Accumulator
				for trial := 0; trial < trials; trial++ {
					e, err := core.SampleCF(tab, tab.Schema(), core.Options{
						Fraction: f,
						Method:   m,
						Pages:    pages,
						Codec:    codecCase.codec,
						Seed:     cfg.Seed ^ uint64(trial)*193,
					})
					if err != nil {
						return err
					}
					est.Add(e.CF)
					ratio.Add(stats.RatioError(e.CF, codecCase.truth))
				}
				tbl.AddRow(codecCase.name, layout.String(), m.String(),
					f6(codecCase.truth), f6(est.Mean()), f4(ratio.Mean()))
			}
		}
	}
	tbl.AddNote("dictionary + clustered: BLOCK sampling is far more accurate than row sampling — whole pages preserve real duplication, so d'/r ≈ d/n, while WR rows of a mid-cardinality column look mostly unique")
	tbl.AddNote("NS is layout/scheme-insensitive (a per-row SUM), though block+clustered inflates its variance slightly via correlated rows")
	tbl.AddNote("this asymmetry is the content of the paper's 'extend the analysis to page sampling' future work")
	if _, err := tbl.WriteTo(w); err != nil {
		return err
	}

	// Design-effect table: the cluster-sampling correction that makes the
	// NS variance bound valid under block sampling.
	deffTbl := NewTable("E7(b): intra-page correlation and the corrected NS bound (bimodal lengths)",
		"layout", "rho", "deff", "sd(block)", "naive-bound", "corrected-bound")
	for _, layout := range []workload.Layout{workload.LayoutShuffled, workload.LayoutClustered} {
		// Adversarial: value-determined bimodal lengths make clustered
		// pages internally homogeneous.
		tab, err := genChar("e7b", n, n/100, dictK, distrib.NewBimodalLen(0, dictK, 0.5), cfg.Seed+77, layout)
		if err != nil {
			return err
		}
		ps, err := tab.AsPageSource(rowsPerPage)
		if err != nil {
			return err
		}
		de, err := core.EstimateDesignEffect(ps, tab.Schema(), nil)
		if err != nil {
			return err
		}
		var acc stats.Accumulator
		var r int64
		for trial := 0; trial < trials; trial++ {
			est, err := core.SampleCF(tab, tab.Schema(), core.Options{
				Fraction: f, Method: core.MethodBlock, Pages: ps,
				Codec: nsCodec, Seed: cfg.Seed ^ uint64(trial)*389,
			})
			if err != nil {
				return err
			}
			acc.Add(est.CF)
			r = est.SampleRows
		}
		deffTbl.AddRow(layout.String(), f4(de.Rho), f4(de.Deff),
			f6(acc.StdDev()), f6(core.Theorem1StdDevBound(r)),
			f6(core.BlockSamplingNSStdDevBound(r, de.Deff)))
	}
	deffTbl.AddNote("clustered: measured spread EXCEEDS the naive Theorem-1 bound but respects √deff × bound — the correction the paper's future work calls for")
	_, err = deffTbl.WriteTo(w)
	return err
}
