package experiments

import (
	"io"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/stats"
	"samplecf/internal/workload"
)

// E14 is the figure an empirical section would lead with: estimation
// accuracy as a function of the sampling fraction f, for both analyzed
// codecs on one table. It shows (a) NS error decaying as 1/√r toward zero —
// every extra sample row helps; and (b) dictionary ratio error falling only
// as the SLOW structural rate 1 + (d/r)(k/p): at mid cardinality the error
// stays multiples above 1 until r grows past d·k/p, two orders of magnitude
// more sample than NS needs for the same relative accuracy. That contrast
// is the paper's two-theorem story in a single sweep.
func init() {
	register(Experiment{
		ID:       "E14",
		Artifact: "accuracy-vs-cost figure",
		Title:    "estimation error vs sampling fraction: NS decays fast, dictionary slowly",
		Run:      runE14,
	})
}

func runE14(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaleN(500_000, 50_000)
	trials := cfg.scaleTrials(40, 20)
	dDomain := n / 50 // mid-cardinality: the hard regime for the dictionary

	tab, err := genChar("e14", n, dDomain, dictK, distrib.NewUniformLen(0, dictK), cfg.Seed+131, workload.LayoutShuffled)
	if err != nil {
		return err
	}
	cs, err := columnStat(tab)
	if err != nil {
		return err
	}
	nsTruth := cs.CFNullSuppression(dictK, 1)
	dictTruth := cs.CFGlobalDict(dictK, dictP)
	nsCodec, err := compress.Lookup("nullsuppression")
	if err != nil {
		return err
	}
	dictCodec := compress.GlobalDict{PointerBytes: dictP}

	tbl := NewTable("E14: error vs sampling fraction (figure series)",
		"f", "r", "NS |bias|", "NS sd", "NS bound", "dict E[ratio-err]")
	for _, f := range []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1} {
		nsCFs, err := parallelTrials(trials, func(trial int) (float64, error) {
			est, err := core.SampleCF(tab, tab.Schema(), core.Options{
				Fraction: f, Codec: nsCodec, Seed: cfg.Seed ^ uint64(trial)*15485863,
			})
			if err != nil {
				return 0, err
			}
			return est.CF, nil
		})
		if err != nil {
			return err
		}
		dictRatios, err := parallelTrials(trials, func(trial int) (float64, error) {
			est, err := core.SampleCF(tab, tab.Schema(), core.Options{
				Fraction: f, Codec: dictCodec, Seed: cfg.Seed ^ uint64(trial)*32452843,
			})
			if err != nil {
				return 0, err
			}
			return stats.RatioError(est.CF, dictTruth), nil
		})
		if err != nil {
			return err
		}
		var nsAcc, ratioAcc stats.Accumulator
		for _, cf := range nsCFs {
			nsAcc.Add(cf)
		}
		for _, re := range dictRatios {
			ratioAcc.Add(re)
		}
		bias := nsAcc.Mean() - nsTruth
		if bias < 0 {
			bias = -bias
		}
		r := int64(f * float64(n))
		tbl.AddRow(g3(f), d(r), f6(bias), f6(nsAcc.StdDev()),
			f6(core.Theorem1StdDevBound(r)), f4(ratioAcc.Mean()))
	}
	tbl.AddNote("NS sd halves with each 4× increase in f (the 1/√r law) and bias → 0")
	tbl.AddNote("dictionary error decays only at the structural rate 1+(d/r)(k/p): at d/n=%.3f it needs r ≫ %d to approach 1 — sample size is a far weaker lever than for NS (Theorems 2-3 in one sweep)", float64(cs.Distinct)/float64(n), cs.Distinct*int64(dictK)/int64(dictP))
	_, err = tbl.WriteTo(w)
	return err
}
