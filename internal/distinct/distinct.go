// Package distinct implements sampling-based distinct-value estimators.
//
// The paper reduces dictionary-compression CF estimation to distinct-value
// estimation (CF_D = p/k + d/n with only d unknown) and leans on the
// negative result of Charikar et al. (PODS 2000): no sampling estimator can
// avoid large worst-case ratio error. The estimators here serve two roles:
//
//   - baselines: an analytical estimator CF = p/k + d̂/n using any of these
//     d̂ can be compared against SampleCF (experiment E8);
//   - diagnosis: the frequency-of-frequency profile explains WHY SampleCF's
//     implicit estimate d̂ = d'·(n/r)… no — d̂_SampleCF = d'·(r-scaling is
//     the point: SampleCF uses d'/r in place of d/n, i.e. the naive
//     scale-up, which Theorems 2–3 show is good enough in two regimes.
//
// Formulas follow Haas, Naughton, Seshadri & Stokes (VLDB 1995) and
// Charikar, Chaudhuri, Motwani & Narasayya (PODS 2000). Goodman's unbiased
// estimator is deliberately omitted: it is numerically explosive beyond toy
// sizes and every survey recommends against using it.
package distinct

import (
	"fmt"
	"math"
	"slices"
)

// Profile summarizes a sample for distinct-value estimation.
type Profile struct {
	// N is the table size n, R the sample size r.
	N, R int64
	// D is the number of distinct values in the sample (the paper's d').
	D int64
	// F maps i → f_i, the number of distinct values occurring exactly i
	// times in the sample. Σ f_i = D and Σ i·f_i = R.
	F map[int64]int64
}

// NewProfile builds a Profile from per-value sample counts.
func NewProfile(counts map[string]int64, n int64) Profile {
	p := Profile{N: n, F: make(map[int64]int64)}
	for _, c := range counts {
		p.D++
		p.R += c
		p.F[c]++
	}
	return p
}

// ProfileBytes builds a Profile from raw sampled values.
func ProfileBytes(values [][]byte, n int64) Profile {
	counts := make(map[string]int64, len(values))
	for _, v := range values {
		counts[string(v)]++
	}
	return NewProfile(counts, n)
}

// FreqCount is one frequency class of a sample: Num distinct values occur
// exactly Count times. A []FreqCount sorted by Count is the compact
// run-length form of Profile.F — the representation the estimation hot path
// carries (a short slice instead of a map), materialized into a Profile only
// when an estimator needs one.
type FreqCount struct {
	// Count is the per-value occurrence count i.
	Count int64
	// Num is f_i: how many distinct values occur Count times.
	Num int64
}

// ProfileFromFreqs materializes a map-backed Profile from the run-length
// form; D and R are derived (Σ f_i and Σ i·f_i).
func ProfileFromFreqs(n int64, freqs []FreqCount) Profile {
	p := Profile{N: n, F: make(map[int64]int64, len(freqs))}
	for _, fc := range freqs {
		p.F[fc.Count] = fc.Num
		p.D += fc.Num
		p.R += fc.Count * fc.Num
	}
	return p
}

// f returns f_i.
func (p Profile) f(i int64) int64 { return p.F[i] }

// Validate checks internal consistency.
func (p Profile) Validate() error {
	var d, r int64
	for i, fi := range p.F {
		if i <= 0 || fi < 0 {
			return fmt.Errorf("distinct: invalid f_%d = %d", i, fi)
		}
		d += fi
		r += i * fi
	}
	if d != p.D || r != p.R {
		return fmt.Errorf("distinct: profile inconsistent: Σf=%d vs D=%d, Σif=%d vs R=%d", d, p.D, r, p.R)
	}
	if p.R > 0 && p.N < 1 {
		return fmt.Errorf("distinct: table size %d invalid", p.N)
	}
	return nil
}

// Estimator estimates the table-level distinct count d from a sample
// profile.
type Estimator interface {
	// Name identifies the estimator in experiment output.
	Name() string
	// Estimate returns d̂. Implementations clamp to [D, N].
	Estimate(p Profile) float64
}

// clamp keeps estimates within the feasible range [d', n].
func clamp(est float64, p Profile) float64 {
	if est < float64(p.D) {
		return float64(p.D)
	}
	if p.N > 0 && est > float64(p.N) {
		return float64(p.N)
	}
	return est
}

// NaiveScale is the estimator SampleCF implicitly applies to dictionary
// compression: d̂ = d'·(n/r), i.e. assume the sample's distinct-per-row rate
// holds globally.
type NaiveScale struct{}

// Name implements Estimator.
func (NaiveScale) Name() string { return "naive-scale" }

// Estimate implements Estimator.
func (NaiveScale) Estimate(p Profile) float64 {
	if p.R == 0 {
		return 0
	}
	return clamp(float64(p.D)*float64(p.N)/float64(p.R), p)
}

// SampleOnly returns d' unscaled — the "do nothing" floor.
type SampleOnly struct{}

// Name implements Estimator.
func (SampleOnly) Name() string { return "sample-d'" }

// Estimate implements Estimator.
func (SampleOnly) Estimate(p Profile) float64 { return float64(p.D) }

// GEE is the Guaranteed-Error Estimator of Charikar et al.:
// d̂ = √(n/r)·f₁ + Σ_{i≥2} f_i, which matches the √(n/r) lower bound on
// worst-case ratio error.
type GEE struct{}

// Name implements Estimator.
func (GEE) Name() string { return "GEE" }

// Estimate implements Estimator.
func (GEE) Estimate(p Profile) float64 {
	if p.R == 0 {
		return 0
	}
	est := math.Sqrt(float64(p.N)/float64(p.R)) * float64(p.f(1))
	for i, fi := range p.F {
		if i >= 2 {
			est += float64(fi)
		}
	}
	return clamp(est, p)
}

// Chao is Chao's 1984 lower-bound estimator d̂ = d' + f₁²/(2f₂).
type Chao struct{}

// Name implements Estimator.
func (Chao) Name() string { return "Chao" }

// Estimate implements Estimator.
func (Chao) Estimate(p Profile) float64 {
	f1, f2 := float64(p.f(1)), float64(p.f(2))
	if f2 == 0 {
		// Standard bias-corrected fallback.
		return clamp(float64(p.D)+f1*(f1-1)/2, p)
	}
	return clamp(float64(p.D)+f1*f1/(2*f2), p)
}

// ChaoLee is the coverage-based estimator of Chao & Lee (1992):
// Ĉ = 1 - f₁/r, d̂ = d'/Ĉ + r(1-Ĉ)/Ĉ · γ̂², with γ̂² the squared
// coefficient of frequency variation.
type ChaoLee struct{}

// Name implements Estimator.
func (ChaoLee) Name() string { return "Chao-Lee" }

// Estimate implements Estimator.
func (ChaoLee) Estimate(p Profile) float64 {
	r := float64(p.R)
	if r == 0 {
		return 0
	}
	f1 := float64(p.f(1))
	c := 1 - f1/r
	if c <= 0 {
		// All-singletons sample: coverage unknown; fall back to GEE which is
		// designed for exactly this case.
		return GEE{}.Estimate(p)
	}
	d0 := float64(p.D) / c
	var sumII float64
	for i, fi := range p.F {
		sumII += float64(i) * float64(i-1) * float64(fi)
	}
	gamma2 := d0*sumII/(r*(r-1)) - 1
	if gamma2 < 0 || r <= 1 {
		gamma2 = 0
	}
	return clamp(d0+r*(1-c)/c*gamma2, p)
}

// Shlosser is Shlosser's 1981 estimator, derived for Bernoulli sampling at
// rate q = r/n:
// d̂ = d' + f₁ · Σ(1-q)^i f_i / Σ i·q·(1-q)^{i-1} f_i.
type Shlosser struct{}

// Name implements Estimator.
func (Shlosser) Name() string { return "Shlosser" }

// Estimate implements Estimator.
func (Shlosser) Estimate(p Profile) float64 {
	if p.R == 0 || p.N == 0 {
		return 0
	}
	q := float64(p.R) / float64(p.N)
	if q >= 1 {
		return float64(p.D)
	}
	var num, den float64
	for i, fi := range p.F {
		num += math.Pow(1-q, float64(i)) * float64(fi)
		den += float64(i) * q * math.Pow(1-q, float64(i-1)) * float64(fi)
	}
	if den == 0 {
		return float64(p.D)
	}
	return clamp(float64(p.D)+float64(p.f(1))*num/den, p)
}

// Jackknife1 is the first-order jackknife of Haas et al.:
// d̂ = d' / (1 - (1-q)·f₁/r).
type Jackknife1 struct{}

// Name implements Estimator.
func (Jackknife1) Name() string { return "jackknife1" }

// Estimate implements Estimator.
func (Jackknife1) Estimate(p Profile) float64 {
	if p.R == 0 || p.N == 0 {
		return 0
	}
	q := float64(p.R) / float64(p.N)
	denom := 1 - (1-q)*float64(p.f(1))/float64(p.R)
	if denom <= 0 {
		return GEE{}.Estimate(p)
	}
	return clamp(float64(p.D)/denom, p)
}

// All returns every estimator, in a stable order for experiment tables.
func All() []Estimator {
	return []Estimator{
		SampleOnly{},
		NaiveScale{},
		GEE{},
		Chao{},
		ChaoLee{},
		Shlosser{},
		Jackknife1{},
	}
}

// Names returns the names of All(), sorted.
func Names() []string {
	ests := All()
	out := make([]string, len(ests))
	for i, e := range ests {
		out[i] = e.Name()
	}
	slices.Sort(out)
	return out
}

// ByName returns the estimator with the given name.
func ByName(name string) (Estimator, error) {
	for _, e := range All() {
		if e.Name() == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("distinct: unknown estimator %q (have %v)", name, Names())
}
