package distinct

import (
	"fmt"
	"math"
	"testing"

	"samplecf/internal/rng"
	"samplecf/internal/stats"
)

func TestProfileFromCounts(t *testing.T) {
	counts := map[string]int64{"a": 1, "b": 1, "c": 3, "d": 5}
	p := NewProfile(counts, 100)
	if p.D != 4 || p.R != 10 {
		t.Fatalf("D=%d R=%d", p.D, p.R)
	}
	if p.F[1] != 2 || p.F[3] != 1 || p.F[5] != 1 {
		t.Fatalf("F = %v", p.F)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileBytes(t *testing.T) {
	vals := [][]byte{[]byte("x"), []byte("y"), []byte("x"), []byte("z")}
	p := ProfileBytes(vals, 40)
	if p.D != 3 || p.R != 4 || p.F[1] != 2 || p.F[2] != 1 {
		t.Fatalf("profile %+v", p)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := Profile{N: 10, R: 5, D: 2, F: map[int64]int64{1: 1, 2: 1}}
	if err := p.Validate(); err == nil { // Σ i·f_i = 3 ≠ 5
		t.Fatal("inconsistent profile accepted")
	}
	p = Profile{N: 10, R: 3, D: 2, F: map[int64]int64{0: 1, 3: 1}}
	if err := p.Validate(); err == nil {
		t.Fatal("f_0 accepted")
	}
}

// uniformSampleProfile draws a WR sample from a uniform-frequency table
// with d distinct values and n rows.
func uniformSampleProfile(g *rng.RNG, n, d, r int64) Profile {
	counts := make(map[string]int64)
	for i := int64(0); i < r; i++ {
		v := g.Int63n(d)
		counts[fmt.Sprintf("v%d", v)]++
	}
	return NewProfile(counts, n)
}

func TestEstimatorsOnUniformData(t *testing.T) {
	// On uniform data with a 10% sample, the frequency-aware estimators
	// should land within 2x of the truth on average. naive-scale and
	// sample-d' are excluded: their bias on low-cardinality uniform data is
	// exactly the phenomenon the paper's Theorems 2-3 characterize (they are
	// tested in their own valid regime below).
	g := rng.New(1)
	const n = 100000
	const d = 1000
	const r = 10000
	for _, est := range All() {
		switch est.Name() {
		case "sample-d'", "naive-scale":
			continue
		}
		var acc stats.Accumulator
		for trial := 0; trial < 30; trial++ {
			p := uniformSampleProfile(g, n, d, r)
			acc.Add(est.Estimate(p))
		}
		ratio := stats.RatioError(acc.Mean(), d)
		if ratio > 2.0 {
			t.Errorf("%s: mean estimate %.0f vs truth %d (ratio %.2f)", est.Name(), acc.Mean(), d, ratio)
		}
	}
}

func TestNaiveScaleAccurateWhenDScalesWithN(t *testing.T) {
	// Theorem 3 regime: d = βn. Drawing r rows WR from d = n/2 distinct
	// values leaves most sampled rows unique, so d'/r ≈ the per-row distinct
	// rate and naive scaling is roughly right (within the constant the
	// theorem promises).
	g := rng.New(2)
	const n = 100000
	const d = n / 2
	const r = 5000
	var acc stats.Accumulator
	for trial := 0; trial < 20; trial++ {
		p := uniformSampleProfile(g, n, d, r)
		acc.Add((NaiveScale{}).Estimate(p))
	}
	if ratio := stats.RatioError(acc.Mean(), d); ratio > 2.1 {
		t.Errorf("naive-scale in its regime: mean %.0f vs %d (ratio %.2f)", acc.Mean(), d, ratio)
	}
}

func TestEstimatorsClampToFeasibleRange(t *testing.T) {
	// All-singleton sample (hardest case): estimates stay within [d', n].
	p := Profile{N: 1000, R: 100, D: 100, F: map[int64]int64{1: 100}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, est := range All() {
		got := est.Estimate(p)
		if got < float64(p.D) || got > float64(p.N) {
			t.Errorf("%s: estimate %v outside [%d,%d]", est.Name(), got, p.D, p.N)
		}
	}
}

func TestEstimatorsEmptySample(t *testing.T) {
	p := Profile{N: 1000, F: map[int64]int64{}}
	for _, est := range All() {
		got := est.Estimate(p)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Errorf("%s: empty sample estimate %v", est.Name(), got)
		}
	}
}

func TestNaiveScaleExact(t *testing.T) {
	// d'=50 from r=100 of n=1000 → d̂ = 500.
	p := Profile{N: 1000, R: 100, D: 50, F: map[int64]int64{2: 50}}
	if got := (NaiveScale{}).Estimate(p); got != 500 {
		t.Fatalf("naive scale = %v, want 500", got)
	}
}

func TestGEEFormula(t *testing.T) {
	// f1=10, f2=5, n/r=100 → 10·10 + 5 = 105.
	p := Profile{N: 2000, R: 20, D: 15, F: map[int64]int64{1: 10, 2: 5}}
	if got := (GEE{}).Estimate(p); got != 105 {
		t.Fatalf("GEE = %v, want 105", got)
	}
}

func TestChaoFormula(t *testing.T) {
	// d'=26, f1=20, f2=5 → 26 + 400/10 = 66.
	p := Profile{N: 10000, R: 40, D: 26, F: map[int64]int64{1: 20, 2: 5, 10: 1}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := (Chao{}).Estimate(p); got != 66 {
		t.Fatalf("Chao = %v, want 66", got)
	}
}

func TestChaoNoDoubletons(t *testing.T) {
	p := Profile{N: 10000, R: 13, D: 4, F: map[int64]int64{1: 3, 10: 1}}
	got := (Chao{}).Estimate(p)
	// Fallback d' + f1(f1-1)/2 = 4 + 3 = 7.
	if got != 7 {
		t.Fatalf("Chao fallback = %v, want 7", got)
	}
}

func TestShlosserSkewAwareness(t *testing.T) {
	// Heavy-hitter + singleton mix at q=0.1: Shlosser should scale up the
	// singleton count substantially (more than Chao's lower bound).
	p := Profile{N: 10000, R: 1000, D: 110, F: map[int64]int64{1: 100, 90: 10}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sh := (Shlosser{}).Estimate(p)
	if sh <= 150 {
		t.Fatalf("Shlosser = %v, expected substantial scale-up", sh)
	}
}

func TestEstimatorsMonotoneInSingletons(t *testing.T) {
	// More singletons (holding r fixed) must not DECREASE d̂ for the
	// scale-up family.
	mk := func(f1 int64) Profile {
		// r = f1 + 2·(100-f1/?) … keep r fixed at 200: f1 singletons and
		// (200-f1)/2 doubletons.
		f2 := (200 - f1) / 2
		return Profile{N: 100000, R: f1 + 2*f2, D: f1 + f2,
			F: map[int64]int64{1: f1, 2: f2}}
	}
	for _, est := range []Estimator{GEE{}, Chao{}, NaiveScale{}} {
		prev := -1.0
		for _, f1 := range []int64{0, 50, 100, 150, 200} {
			p := mk(f1)
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			got := est.Estimate(p)
			if got < prev-1e-9 {
				t.Errorf("%s not monotone at f1=%d: %v < %v", est.Name(), f1, got, prev)
			}
			prev = got
		}
	}
}

func TestByName(t *testing.T) {
	for _, e := range All() {
		got, err := ByName(e.Name())
		if err != nil || got.Name() != e.Name() {
			t.Errorf("ByName(%q): %v %v", e.Name(), got, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

func TestGEEWorstCaseGuarantee(t *testing.T) {
	// Charikar et al.: GEE's expected ratio error is O(√(n/r)). Verify the
	// measured ratio error stays within a small multiple of √(n/r) on the
	// adversarial all-singletons-vs-all-duplicates pair of tables.
	g := rng.New(9)
	const n = 100000
	const r = 1000
	bound := 5 * math.Sqrt(float64(n)/float64(r))

	// Table A: all rows one value (d=1).
	countsA := map[string]int64{"only": r}
	pA := NewProfile(countsA, n)
	gotA := (GEE{}).Estimate(pA)
	if stats.RatioError(gotA, 1) > bound {
		t.Errorf("GEE on constant table: %v (bound %v)", gotA, bound)
	}

	// Table B: all rows distinct (d=n).
	countsB := map[string]int64{}
	for i := 0; i < r; i++ {
		countsB[fmt.Sprintf("u%d-%d", i, g.Uint64())] = 1
	}
	pB := NewProfile(countsB, n)
	gotB := (GEE{}).Estimate(pB)
	if stats.RatioError(gotB, n) > bound {
		t.Errorf("GEE on all-distinct table: %v vs %d (bound %v)", gotB, n, bound)
	}
}
