package workgroup

import (
	"runtime"
	"testing"
)

func TestLimit(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	want := func(units int) int {
		w := procs
		if w > MaxWorkers {
			w = MaxWorkers
		}
		if w > units {
			w = units
		}
		if w < 1 {
			w = 1
		}
		return w
	}
	for _, units := range []int{-1, 0, 1, 2, 7, 8, 9, 1000} {
		if got := Limit(units); got != want(units) {
			t.Errorf("Limit(%d) = %d, want %d", units, got, want(units))
		}
	}
}

func TestSem(t *testing.T) {
	if NewSem(0) != nil || NewSem(-1) != nil {
		t.Fatal("non-positive capacity must yield a nil Sem")
	}
	var nilSem Sem
	if nilSem.TryAcquire() {
		t.Fatal("nil Sem must never admit a goroutine")
	}
	s := NewSem(2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("fresh Sem(2) must admit two")
	}
	if s.TryAcquire() {
		t.Fatal("exhausted Sem must refuse")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("released slot must be reusable")
	}
}
