// Package workgroup is the shared bounded-fan-out discipline of the
// estimation hot paths. Every per-operation parallel stage in the system —
// compress.MeasureArena's page fan-out, sortkeys' bucket recursion, the
// sharded TrueCF ground-truth scan — uses the same bound: at most
// min(GOMAXPROCS, MaxWorkers) goroutines per operation, because the layers
// above (the engine's worker pool, the advisor's batch) already parallelize
// across operations and a wide per-operation fan-out would oversubscribe
// the machine.
package workgroup

import (
	"runtime"

	"samplecf/internal/faults"
	"samplecf/internal/obs"
)

// metricActive gauges how many extra goroutines all Sems in the process
// currently admit — the fan-out occupancy of the per-operation parallel
// stages, updated with one atomic add per acquire/release.
var metricActive = obs.Default().Gauge(
	"samplecf_workgroup_active_goroutines",
	"Extra goroutines currently admitted by bounded worker-group semaphores.")

// MaxWorkers caps one operation's fan-out regardless of core count; a
// small group per operation soaks up leftover cores without starving the
// candidate-level parallelism above it.
const MaxWorkers = 8

// Limit returns the worker-group width for an operation with `units`
// independent pieces of work: min(GOMAXPROCS, MaxWorkers, units), never
// below 1. Callers treat a return of 1 as "run sequentially".
func Limit(units int) int {
	w := runtime.GOMAXPROCS(0)
	if w > MaxWorkers {
		w = MaxWorkers
	}
	if w > units {
		w = units
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sem is a counting semaphore bounding the EXTRA goroutines an operation
// may spawn beyond its calling goroutine. A nil Sem admits no extra
// goroutines — TryAcquire on it always fails — so sequential callers pass
// nil instead of branching.
type Sem chan struct{}

// NewSem returns a semaphore admitting n extra goroutines (n ≤ 0 yields a
// nil Sem: strictly sequential).
func NewSem(n int) Sem {
	if n <= 0 {
		return nil
	}
	return make(Sem, n)
}

// TryAcquire claims a goroutine slot without blocking; the caller must
// Release it when the goroutine exits.
func (s Sem) TryAcquire() bool {
	if s == nil {
		return false
	}
	select {
	case s <- struct{}{}:
		metricActive.Inc()
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (s Sem) Release() {
	<-s
	metricActive.Dec()
}

// Recover is the fan-out panic trap: `defer workgroup.Recover(&err)` at
// the top of a worker-group goroutine (or of the inline fallback running
// the same work) converts a panic into a *faults.PanicError stored in
// *errp — carrying the injection point when the panic was injected, and
// this goroutine's stack either way — so one poisoned unit of work
// surfaces as that unit's error instead of crashing the process. The
// stored error overwrites *errp: a panic mid-work supersedes whatever
// partial error the work had produced.
func Recover(errp *error) {
	if r := recover(); r != nil {
		*errp = faults.AsError(r)
	}
}
