// Package heap implements heap files — unordered collections of records
// stored in slotted pages — together with the page-store abstraction that
// backs both heap files and B+-tree indexes.
package heap

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"samplecf/internal/page"
)

// PageStore abstracts page-granular storage. Implementations must be safe
// for concurrent readers; writers require external coordination (a heap file
// or index owns its store).
type PageStore interface {
	// PageSize returns the fixed page size of this store.
	PageSize() int
	// NumPages returns the number of pages currently in the store.
	NumPages() int
	// Read returns the page stored at pageNo. The returned page is a
	// private copy; mutations are not visible until Write.
	Read(pageNo uint32) (*page.Page, error)
	// Write replaces the page at pageNo (which must exist).
	Write(pageNo uint32, p *page.Page) error
	// Append adds a new page and returns its page number.
	Append(p *page.Page) (uint32, error)
	// Close releases resources. The store is unusable afterwards.
	Close() error
}

// ErrPageRange is returned for out-of-range page numbers.
var ErrPageRange = errors.New("heap: page number out of range")

// MemStore is an in-memory PageStore holding sealed (serialized,
// checksummed) pages. Serialization on every Write keeps its behaviour
// identical to FileStore, so tests exercise the real encode/verify path.
type MemStore struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
}

// NewMemStore returns an empty in-memory store with the given page size.
func NewMemStore(pageSize int) *MemStore {
	return &MemStore{pageSize: pageSize}
}

// PageSize implements PageStore.
func (m *MemStore) PageSize() int { return m.pageSize }

// NumPages implements PageStore.
func (m *MemStore) NumPages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// Read implements PageStore.
func (m *MemStore) Read(pageNo uint32) (*page.Page, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(pageNo) >= len(m.pages) {
		return nil, fmt.Errorf("%w: %d of %d", ErrPageRange, pageNo, len(m.pages))
	}
	buf := append([]byte(nil), m.pages[pageNo]...)
	return page.FromBytes(buf)
}

// Write implements PageStore.
func (m *MemStore) Write(pageNo uint32, p *page.Page) error {
	if p.Size() != m.pageSize {
		return fmt.Errorf("heap: page size %d does not match store %d", p.Size(), m.pageSize)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(pageNo) >= len(m.pages) {
		return fmt.Errorf("%w: %d of %d", ErrPageRange, pageNo, len(m.pages))
	}
	m.pages[pageNo] = append([]byte(nil), p.Seal()...)
	return nil
}

// Append implements PageStore.
func (m *MemStore) Append(p *page.Page) (uint32, error) {
	if p.Size() != m.pageSize {
		return 0, fmt.Errorf("heap: page size %d does not match store %d", p.Size(), m.pageSize)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, append([]byte(nil), p.Seal()...))
	return uint32(len(m.pages) - 1), nil
}

// Close implements PageStore.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = nil
	return nil
}

// TotalBytes returns the physical size of the store (pages × page size).
func (m *MemStore) TotalBytes() int64 {
	return int64(m.NumPages()) * int64(m.pageSize)
}

// FileStore is a PageStore backed by a single OS file of page-aligned
// blocks. It exists so that large generated datasets and the CLI tools can
// spill to disk; the estimator paths are store-agnostic.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages int
}

// CreateFileStore creates (truncating) a file-backed store at path.
func CreateFileStore(path string, pageSize int) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("heap: create store: %w", err)
	}
	return &FileStore{f: f, pageSize: pageSize}, nil
}

// OpenFileStore opens an existing file-backed store.
func OpenFileStore(path string, pageSize int) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("heap: open store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("heap: stat store: %w", err)
	}
	if st.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("heap: store size %d not a multiple of page size %d", st.Size(), pageSize)
	}
	return &FileStore{f: f, pageSize: pageSize, numPages: int(st.Size() / int64(pageSize))}, nil
}

// PageSize implements PageStore.
func (s *FileStore) PageSize() int { return s.pageSize }

// NumPages implements PageStore.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.numPages
}

// Read implements PageStore.
func (s *FileStore) Read(pageNo uint32) (*page.Page, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(pageNo) >= s.numPages {
		return nil, fmt.Errorf("%w: %d of %d", ErrPageRange, pageNo, s.numPages)
	}
	buf := make([]byte, s.pageSize)
	if _, err := s.f.ReadAt(buf, int64(pageNo)*int64(s.pageSize)); err != nil && err != io.EOF {
		return nil, fmt.Errorf("heap: read page %d: %w", pageNo, err)
	}
	return page.FromBytes(buf)
}

// Write implements PageStore.
func (s *FileStore) Write(pageNo uint32, p *page.Page) error {
	if p.Size() != s.pageSize {
		return fmt.Errorf("heap: page size %d does not match store %d", p.Size(), s.pageSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(pageNo) >= s.numPages {
		return fmt.Errorf("%w: %d of %d", ErrPageRange, pageNo, s.numPages)
	}
	if _, err := s.f.WriteAt(p.Seal(), int64(pageNo)*int64(s.pageSize)); err != nil {
		return fmt.Errorf("heap: write page %d: %w", pageNo, err)
	}
	return nil
}

// Append implements PageStore.
func (s *FileStore) Append(p *page.Page) (uint32, error) {
	if p.Size() != s.pageSize {
		return 0, fmt.Errorf("heap: page size %d does not match store %d", p.Size(), s.pageSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pageNo := uint32(s.numPages)
	if _, err := s.f.WriteAt(p.Seal(), int64(pageNo)*int64(s.pageSize)); err != nil {
		return 0, fmt.Errorf("heap: append page: %w", err)
	}
	s.numPages++
	return pageNo, nil
}

// Close implements PageStore.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
