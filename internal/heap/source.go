package heap

import (
	"fmt"

	"samplecf/internal/page"
	"samplecf/internal/value"
)

// RowDir provides uniform random row access over a heap file — the
// sampling.RowSource access pattern — by materializing a directory of the
// file's live RIDs in one scan. Row i resolves through the directory to a
// slotted-page read, so uniform row sampling runs against real storage
// instead of a copied-out row slice.
//
// A RowDir is a snapshot: rows inserted or deleted after construction are
// not visible. Owners rebuild after mutations (internal/db invalidates
// its directory on every insert/delete and rebuilds lazily).
type RowDir struct {
	f    *File
	rids []RID
}

// NewRowDir scans f once and returns a random-access view of its current
// live rows.
func NewRowDir(f *File) (*RowDir, error) {
	d := &RowDir{f: f, rids: make([]RID, 0, f.NumRows())}
	err := f.ScanPages(func(pageNo uint32, p *page.Page) error {
		return p.Records(func(slot int, _ []byte) error {
			d.rids = append(d.rids, RID{Page: pageNo, Slot: uint16(slot)})
			return nil
		})
	})
	if err != nil {
		return nil, fmt.Errorf("heap: row directory scan: %w", err)
	}
	return d, nil
}

// NumRows implements sampling.RowSource.
func (d *RowDir) NumRows() int64 { return int64(len(d.rids)) }

// Row implements sampling.RowSource: it fetches the i-th live row from
// its slotted page.
func (d *RowDir) Row(i int64) (value.Row, error) {
	if err := scanPoint.Check(); err != nil {
		return nil, err
	}
	if i < 0 || i >= int64(len(d.rids)) {
		return nil, fmt.Errorf("heap: row %d out of range [0,%d)", i, len(d.rids))
	}
	return d.f.Get(d.rids[i])
}

// RID returns the storage identity of directory row i.
func (d *RowDir) RID(i int64) RID { return d.rids[i] }

// FilePages adapts a heap file to the sampling.PageSource shape: block
// sampling draws whole slotted pages and receives every live row on them.
// Like RowDir it is a snapshot — the page count is fixed at construction.
type FilePages struct {
	f     *File
	pages int
}

// NewFilePages flushes f's tail page and returns a block-sampling view of
// its current pages.
func NewFilePages(f *File) (*FilePages, error) {
	if err := f.Flush(); err != nil {
		return nil, err
	}
	return &FilePages{f: f, pages: f.NumPages()}, nil
}

// NumPages implements sampling.PageSource.
func (p *FilePages) NumPages() int { return p.pages }

// PageRows implements sampling.PageSource: all live rows on page i.
func (p *FilePages) PageRows(i int) ([]value.Row, error) {
	if err := scanPoint.Check(); err != nil {
		return nil, err
	}
	if i < 0 || i >= p.pages {
		return nil, fmt.Errorf("heap: page %d out of range [0,%d)", i, p.pages)
	}
	pg, err := p.f.pageAt(uint32(i))
	if err != nil {
		return nil, err
	}
	var rows []value.Row
	err = pg.Records(func(_ int, rec []byte) error {
		row, err := value.DecodeRecord(p.f.schema, rec)
		if err != nil {
			return err
		}
		rows = append(rows, row.Clone())
		return nil
	})
	return rows, err
}
