package heap

import (
	"errors"
	"fmt"

	"samplecf/internal/page"
	"samplecf/internal/value"
)

// RID identifies a record: page number plus slot within the page.
type RID struct {
	Page uint32
	Slot uint16
}

// String renders the RID as "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// ErrClosed is returned by operations on a closed heap file.
var ErrClosed = errors.New("heap: file closed")

// File is a heap file: an append-oriented, unordered record collection over
// a PageStore. Records are fixed-width encodings of rows under the file's
// schema (the uncompressed representation whose size is the CF denominator).
type File struct {
	store  PageStore
	schema *value.Schema

	numRows int64
	// cur is the tail page still being filled; curNo is its page number in
	// the store, valid only when cur != nil.
	cur    *page.Page
	curNo  uint32
	closed bool
}

// Create initializes an empty heap file over store.
func Create(store PageStore, schema *value.Schema) (*File, error) {
	if schema.RowWidth() > page.New(store.PageSize(), 0).Capacity() {
		return nil, fmt.Errorf("heap: row width %d exceeds page capacity %d",
			schema.RowWidth(), page.New(store.PageSize(), 0).Capacity())
	}
	return &File{store: store, schema: schema}, nil
}

// Open attaches to an existing store, recounting rows with a page scan.
func Open(store PageStore, schema *value.Schema) (*File, error) {
	f, err := Create(store, schema)
	if err != nil {
		return nil, err
	}
	for pn := 0; pn < store.NumPages(); pn++ {
		p, err := store.Read(uint32(pn))
		if err != nil {
			return nil, fmt.Errorf("heap: open scan: %w", err)
		}
		f.numRows += int64(p.NumRecords())
	}
	return f, nil
}

// Schema returns the file's row schema.
func (f *File) Schema() *value.Schema { return f.schema }

// NumRows returns the number of live records.
func (f *File) NumRows() int64 { return f.numRows }

// NumPages returns the number of pages, including the unflushed tail page.
func (f *File) NumPages() int {
	n := f.store.NumPages()
	if f.cur != nil && int(f.curNo) == n {
		n++
	}
	return n
}

// PageSize returns the store's page size.
func (f *File) PageSize() int { return f.store.PageSize() }

// Store exposes the underlying page store for readers that need direct
// page access (buffer pools, block samplers). Call Flush first so the tail
// page is visible.
func (f *File) Store() PageStore { return f.store }

// Append encodes row and stores it, returning its RID.
func (f *File) Append(row value.Row) (RID, error) {
	if f.closed {
		return RID{}, ErrClosed
	}
	rec, err := value.EncodeRecord(f.schema, row, nil)
	if err != nil {
		return RID{}, err
	}
	return f.AppendRecord(rec)
}

// AppendRecord stores an already-encoded record. It is used by bulk paths
// that have pre-encoded data.
func (f *File) AppendRecord(rec []byte) (RID, error) {
	if f.closed {
		return RID{}, ErrClosed
	}
	if f.cur == nil {
		f.cur = page.New(f.store.PageSize(), uint64(f.store.NumPages()))
		f.curNo = uint32(f.store.NumPages())
	}
	slot, err := f.cur.Insert(rec)
	if errors.Is(err, page.ErrPageFull) {
		if err := f.flushCur(); err != nil {
			return RID{}, err
		}
		f.cur = page.New(f.store.PageSize(), uint64(f.store.NumPages()))
		f.curNo = uint32(f.store.NumPages())
		slot, err = f.cur.Insert(rec)
	}
	if err != nil {
		return RID{}, err
	}
	f.numRows++
	return RID{Page: f.curNo, Slot: uint16(slot)}, nil
}

// flushCur seals and persists the tail page.
func (f *File) flushCur() error {
	if f.cur == nil {
		return nil
	}
	if int(f.curNo) < f.store.NumPages() {
		if err := f.store.Write(f.curNo, f.cur); err != nil {
			return err
		}
	} else if _, err := f.store.Append(f.cur); err != nil {
		return err
	}
	f.cur = nil
	return nil
}

// Flush persists any buffered tail page. Call before handing the store to
// readers that bypass this File.
func (f *File) Flush() error {
	if f.closed {
		return ErrClosed
	}
	return f.flushCur()
}

// Delete removes the record at rid, leaving a tombstone in its page (RIDs
// of other records stay stable). Space is reclaimed page-locally on the
// next Vacuum.
func (f *File) Delete(rid RID) error {
	if f.closed {
		return ErrClosed
	}
	if f.cur != nil && rid.Page == f.curNo {
		if err := f.cur.Delete(int(rid.Slot)); err != nil {
			return err
		}
		f.numRows--
		return nil
	}
	p, err := f.store.Read(rid.Page)
	if err != nil {
		return err
	}
	if err := p.Delete(int(rid.Slot)); err != nil {
		return err
	}
	if err := f.store.Write(rid.Page, p); err != nil {
		return err
	}
	f.numRows--
	return nil
}

// Vacuum compacts every page, reclaiming space freed by Delete. Page count
// is unchanged (no page merging), matching heap semantics in real engines.
func (f *File) Vacuum() error {
	if f.closed {
		return ErrClosed
	}
	for pn := 0; pn < f.store.NumPages(); pn++ {
		p, err := f.store.Read(uint32(pn))
		if err != nil {
			return err
		}
		p.Compact()
		if err := f.store.Write(uint32(pn), p); err != nil {
			return err
		}
	}
	if f.cur != nil {
		f.cur.Compact()
	}
	return nil
}

// Get fetches the row at rid.
func (f *File) Get(rid RID) (value.Row, error) {
	if f.closed {
		return nil, ErrClosed
	}
	p, err := f.pageAt(rid.Page)
	if err != nil {
		return nil, err
	}
	rec, err := p.Record(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	row, err := value.DecodeRecord(f.schema, rec)
	if err != nil {
		return nil, err
	}
	return row.Clone(), nil
}

// pageAt returns the page, serving the unflushed tail from memory.
func (f *File) pageAt(pageNo uint32) (*page.Page, error) {
	if f.cur != nil && pageNo == f.curNo {
		return f.cur, nil
	}
	return f.store.Read(pageNo)
}

// Scan iterates all live rows in storage order. The row passed to fn is
// only valid for the duration of the call.
func (f *File) Scan(fn func(rid RID, row value.Row) error) error {
	if f.closed {
		return ErrClosed
	}
	return f.ScanPages(func(pageNo uint32, p *page.Page) error {
		return p.Records(func(slot int, rec []byte) error {
			row, err := value.DecodeRecord(f.schema, rec)
			if err != nil {
				return err
			}
			return fn(RID{Page: pageNo, Slot: uint16(slot)}, row)
		})
	})
}

// ScanPages iterates all pages (including the unflushed tail) in order.
func (f *File) ScanPages(fn func(pageNo uint32, p *page.Page) error) error {
	if f.closed {
		return ErrClosed
	}
	n := f.NumPages()
	for pn := 0; pn < n; pn++ {
		p, err := f.pageAt(uint32(pn))
		if err != nil {
			return err
		}
		if err := fn(uint32(pn), p); err != nil {
			return err
		}
	}
	return nil
}

// UncompressedBytes returns the physical size of the heap file: pages times
// page size. This is the CF denominator at the storage level.
func (f *File) UncompressedBytes() int64 {
	return int64(f.NumPages()) * int64(f.store.PageSize())
}

// UsedBytes returns header + slot + record bytes actually occupied,
// excluding per-page fragmentation. This is the CF denominator at the
// logical level.
func (f *File) UsedBytes() (int64, error) {
	var total int64
	err := f.ScanPages(func(_ uint32, p *page.Page) error {
		total += int64(p.UsedBytes())
		return nil
	})
	return total, err
}

// Close flushes and closes the file (but not the underlying store, which
// may be shared).
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	if err := f.flushCur(); err != nil {
		return err
	}
	f.closed = true
	return nil
}
