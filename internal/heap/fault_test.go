package heap

import (
	"errors"
	"fmt"
	"testing"

	"samplecf/internal/page"
	"samplecf/internal/value"
)

// faultStore wraps a PageStore and fails operations once a countdown
// reaches zero — deterministic failure injection for error-path coverage.
type faultStore struct {
	PageStore
	failAfter int // operations until failure; -1 = never
}

var errInjected = errors.New("injected fault")

func (f *faultStore) tick() error {
	if f.failAfter < 0 {
		return nil
	}
	if f.failAfter == 0 {
		return errInjected
	}
	f.failAfter--
	return nil
}

func (f *faultStore) Read(pageNo uint32) (*page.Page, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.PageStore.Read(pageNo)
}

func (f *faultStore) Write(pageNo uint32, p *page.Page) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.PageStore.Write(pageNo, p)
}

func (f *faultStore) Append(p *page.Page) (uint32, error) {
	if err := f.tick(); err != nil {
		return 0, err
	}
	return f.PageStore.Append(p)
}

func TestHeapDelete(t *testing.T) {
	st := NewMemStore(page.MinSize)
	f, err := Create(st, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 60; i++ {
		rid, err := f.Append(value.Row{value.StringValue(fmt.Sprintf("r%02d", i)), value.IntValue(int32(i))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// Delete every third record, including some on flushed pages and some
	// conceptually on the tail.
	deleted := map[RID]bool{}
	for i := 0; i < 60; i += 3 {
		if err := f.Delete(rids[i]); err != nil {
			t.Fatalf("delete %v: %v", rids[i], err)
		}
		deleted[rids[i]] = true
	}
	if f.NumRows() != 40 {
		t.Fatalf("NumRows = %d, want 40", f.NumRows())
	}
	// Deleted rows unreadable; survivors intact.
	for i, rid := range rids {
		row, err := f.Get(rid)
		if deleted[rid] {
			if err == nil {
				t.Fatalf("deleted row %d readable", i)
			}
			continue
		}
		if err != nil {
			t.Fatalf("survivor %d unreadable: %v", i, err)
		}
		if value.DecodeInt32(row[1]) != int32(i) {
			t.Fatalf("survivor %d corrupted", i)
		}
	}
	// Scan sees exactly the survivors.
	count := 0
	if err := f.Scan(func(rid RID, _ value.Row) error {
		if deleted[rid] {
			t.Fatalf("scan visited deleted rid %v", rid)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 40 {
		t.Fatalf("scan count = %d", count)
	}
	// Double delete errors.
	if err := f.Delete(rids[0]); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestHeapVacuumReclaims(t *testing.T) {
	st := NewMemStore(page.MinSize)
	f, err := Create(st, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := f.Append(value.Row{value.StringValue("xxxxxxxxxx"), value.IntValue(int32(i))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 2 {
		if err := f.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	usedBefore, err := f.UsedBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Vacuum(); err != nil {
		t.Fatal(err)
	}
	usedAfter, err := f.UsedBytes()
	if err != nil {
		t.Fatal(err)
	}
	// UsedBytes already excludes tombstoned payloads, so it is unchanged;
	// what Vacuum restores is contiguous free space per page.
	if usedAfter != usedBefore {
		t.Fatalf("used bytes changed: %d -> %d", usedBefore, usedAfter)
	}
	// Survivors still intact after vacuum.
	for i := 1; i < 100; i += 2 {
		row, err := f.Get(rids[i])
		if err != nil || value.DecodeInt32(row[1]) != int32(i) {
			t.Fatalf("row %d lost after vacuum: %v", i, err)
		}
	}
}

func TestHeapFaultPropagation(t *testing.T) {
	// Every store failure must surface as an error, never a panic or
	// silent corruption.
	for failAt := 0; failAt < 8; failAt++ {
		mem := NewMemStore(page.MinSize)
		fs := &faultStore{PageStore: mem, failAfter: -1}
		f, err := Create(fs, testSchema(t))
		if err != nil {
			t.Fatal(err)
		}
		// Fill enough to force page flushes.
		var appendErr error
		fs.failAfter = failAt
		for i := 0; i < 200 && appendErr == nil; i++ {
			_, appendErr = f.Append(value.Row{value.StringValue("abcdefgh"), value.IntValue(int32(i))})
		}
		if appendErr != nil && !errors.Is(appendErr, errInjected) {
			t.Fatalf("failAt=%d: unexpected error %v", failAt, appendErr)
		}
		// The file remains usable for reads of whatever was persisted.
		fs.failAfter = -1
		if err := f.Flush(); err != nil && !errors.Is(err, errInjected) {
			t.Fatalf("flush after fault: %v", err)
		}
	}
}

func TestHeapScanFaultPropagation(t *testing.T) {
	mem := NewMemStore(page.MinSize)
	fs := &faultStore{PageStore: mem, failAfter: -1}
	f, err := Create(fs, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := f.Append(value.Row{value.StringValue("abcdefgh"), value.IntValue(int32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	fs.failAfter = 1 // first page read succeeds, second fails
	err = f.Scan(func(RID, value.Row) error { return nil })
	if !errors.Is(err, errInjected) {
		t.Fatalf("scan error = %v, want injected fault", err)
	}
}

func TestHeapDeleteFaults(t *testing.T) {
	mem := NewMemStore(page.MinSize)
	fs := &faultStore{PageStore: mem, failAfter: -1}
	f, err := Create(fs, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	var rid RID
	for i := 0; i < 50; i++ {
		r, err := f.Append(value.Row{value.StringValue("abcdefgh"), value.IntValue(int32(i))})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			rid = r
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	before := f.NumRows()
	fs.failAfter = 0 // fail the read inside Delete
	if err := f.Delete(rid); !errors.Is(err, errInjected) {
		t.Fatalf("delete error = %v", err)
	}
	if f.NumRows() != before {
		t.Fatal("failed delete mutated row count")
	}
	fs.failAfter = -1
	if err := f.Delete(rid); err != nil {
		t.Fatalf("delete after recovery: %v", err)
	}
}
