package heap

import "samplecf/internal/faults"

// scanPoint is the heap-scan injection point: consulted on every
// row-directory fetch and block-sampling page read — the two paths a draw
// takes into real storage — so a chaos schedule can fail or stall "the Nth
// storage access" a live-table estimate performs. Disarmed cost: one
// atomic load per access.
var scanPoint = faults.Register("heap.scan")
