package heap

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"samplecf/internal/page"
	"samplecf/internal/value"
)

func testSchema(t *testing.T) *value.Schema {
	t.Helper()
	return value.MustSchema(
		value.Column{Name: "name", Type: value.Char(16)},
		value.Column{Name: "id", Type: value.Int32()},
	)
}

func TestMemStoreBasics(t *testing.T) {
	st := NewMemStore(page.MinSize)
	if st.NumPages() != 0 {
		t.Fatal("new store not empty")
	}
	p := page.New(page.MinSize, 0)
	if _, err := p.Insert([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	no, err := st.Append(p)
	if err != nil {
		t.Fatal(err)
	}
	if no != 0 || st.NumPages() != 1 {
		t.Fatalf("append got page %d, NumPages %d", no, st.NumPages())
	}
	got, err := st.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := got.Record(0)
	if err != nil || string(rec) != "rec" {
		t.Fatalf("read back %q, %v", rec, err)
	}
	// Read returns a private copy: mutating it must not affect the store.
	if _, err := got.Insert([]byte("extra")); err != nil {
		t.Fatal(err)
	}
	again, err := st.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if again.NumRecords() != 1 {
		t.Fatal("Read did not return a private copy")
	}
	// Write persists changes.
	if err := st.Write(0, got); err != nil {
		t.Fatal(err)
	}
	final, err := st.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if final.NumRecords() != 2 {
		t.Fatal("Write did not persist")
	}
}

func TestMemStoreErrors(t *testing.T) {
	st := NewMemStore(page.MinSize)
	if _, err := st.Read(0); !errors.Is(err, ErrPageRange) {
		t.Errorf("Read(0) on empty store: %v", err)
	}
	if err := st.Write(0, page.New(page.MinSize, 0)); !errors.Is(err, ErrPageRange) {
		t.Errorf("Write(0) on empty store: %v", err)
	}
	if _, err := st.Append(page.New(1024, 0)); err == nil {
		t.Error("Append with wrong page size accepted")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.pages")
	st, err := CreateFileStore(path, page.MinSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p := page.New(page.MinSize, uint64(i))
		if _, err := p.Insert([]byte(fmt.Sprintf("page-%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFileStore(path, page.MinSize)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.NumPages() != 5 {
		t.Fatalf("NumPages = %d", st2.NumPages())
	}
	for i := 0; i < 5; i++ {
		p, err := st2.Read(uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		rec, err := p.Record(0)
		if err != nil || string(rec) != fmt.Sprintf("page-%d", i) {
			t.Fatalf("page %d: %q %v", i, rec, err)
		}
	}
	// Overwrite page 2 and re-read.
	p := page.New(page.MinSize, 2)
	if _, err := p.Insert([]byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := st2.Write(2, p); err != nil {
		t.Fatal(err)
	}
	back, err := st2.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := back.Record(0); string(rec) != "rewritten" {
		t.Fatalf("overwrite lost: %q", rec)
	}
}

func TestOpenFileStoreValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFileStore(filepath.Join(dir, "missing"), page.MinSize); err == nil {
		t.Error("opened missing file")
	}
}

func TestHeapAppendGetScan(t *testing.T) {
	st := NewMemStore(page.MinSize)
	f, err := Create(st, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100 // enough to span multiple MinSize pages (20 bytes/row)
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		row := value.Row{
			value.StringValue(fmt.Sprintf("row-%d", i)),
			value.IntValue(int32(i)),
		}
		rid, err := f.Append(row)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if f.NumRows() != n {
		t.Fatalf("NumRows = %d", f.NumRows())
	}
	if f.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", f.NumPages())
	}
	// Random access via RID, including rows on the unflushed tail page.
	for i, rid := range rids {
		row, err := f.Get(rid)
		if err != nil {
			t.Fatalf("Get(%v): %v", rid, err)
		}
		if want := fmt.Sprintf("row-%d", i); string(row[0]) != want {
			t.Errorf("rid %v: name %q, want %q", rid, row[0], want)
		}
		if value.DecodeInt32(row[1]) != int32(i) {
			t.Errorf("rid %v: id %d, want %d", rid, value.DecodeInt32(row[1]), i)
		}
	}
	// Scan visits all rows in order.
	i := 0
	err = f.Scan(func(rid RID, row value.Row) error {
		if rid != rids[i] {
			t.Errorf("scan order: got %v want %v", rid, rids[i])
		}
		if value.DecodeInt32(row[1]) != int32(i) {
			t.Errorf("scan row %d wrong id", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scan visited %d rows", i)
	}
}

func TestHeapFlushAndOpen(t *testing.T) {
	st := NewMemStore(page.MinSize)
	f, err := Create(st, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := f.Append(value.Row{value.StringValue("x"), value.IntValue(int32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(value.Row{value.StringValue("x"), value.IntValue(0)}); !errors.Is(err, ErrClosed) {
		t.Fatal("append on closed file accepted")
	}

	g, err := Open(st, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 50 {
		t.Fatalf("reopened NumRows = %d", g.NumRows())
	}
	sum := 0
	if err := g.Scan(func(_ RID, row value.Row) error {
		sum += int(value.DecodeInt32(row[1]))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 49*50/2 {
		t.Fatalf("scan sum %d", sum)
	}
}

func TestHeapRowTooWide(t *testing.T) {
	st := NewMemStore(page.MinSize)
	wide := value.MustSchema(value.Column{Name: "a", Type: value.Char(page.MinSize)})
	if _, err := Create(st, wide); err == nil {
		t.Fatal("row wider than page accepted")
	}
}

func TestHeapSizeAccounting(t *testing.T) {
	st := NewMemStore(page.MinSize)
	f, err := Create(st, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := f.Append(value.Row{value.StringValue("abc"), value.IntValue(1)}); err != nil {
			t.Fatal(err)
		}
	}
	phys := f.UncompressedBytes()
	if phys != int64(f.NumPages())*page.MinSize {
		t.Fatalf("UncompressedBytes = %d", phys)
	}
	used, err := f.UsedBytes()
	if err != nil {
		t.Fatal(err)
	}
	// Each record is RowWidth bytes + 4-byte slot; plus 24-byte header/page.
	wantMin := int64(n * testSchema(t).RowWidth())
	if used < wantMin || used > phys {
		t.Fatalf("UsedBytes = %d, want within [%d,%d]", used, wantMin, phys)
	}
}

func TestHeapScanRowAliasing(t *testing.T) {
	// Documented contract: rows passed to Scan callbacks are only valid
	// during the call; Get returns a stable copy.
	st := NewMemStore(page.MinSize)
	f, err := Create(st, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	rid, err := f.Append(value.Row{value.StringValue("stable"), value.IntValue(9)})
	if err != nil {
		t.Fatal(err)
	}
	row, err := f.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	row[0][0] = 'X' // mutate the copy
	again, err := f.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again[0], []byte("stable")) {
		t.Fatal("Get returned aliased storage")
	}
}

func BenchmarkHeapAppend(b *testing.B) {
	st := NewMemStore(page.DefaultSize)
	schema := value.MustSchema(
		value.Column{Name: "name", Type: value.Char(16)},
		value.Column{Name: "id", Type: value.Int32()},
	)
	f, err := Create(st, schema)
	if err != nil {
		b.Fatal(err)
	}
	row := value.Row{value.StringValue("benchmark"), value.IntValue(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Append(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScan(b *testing.B) {
	st := NewMemStore(page.DefaultSize)
	schema := value.MustSchema(
		value.Column{Name: "name", Type: value.Char(16)},
		value.Column{Name: "id", Type: value.Int32()},
	)
	f, err := Create(st, schema)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, err := f.Append(value.Row{value.StringValue("scanrow"), value.IntValue(int32(i))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := f.Scan(func(RID, value.Row) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != 10000 {
			b.Fatal("wrong count")
		}
	}
}
