package heap

import (
	"errors"
	"path/filepath"
	"testing"

	"samplecf/internal/page"
	"samplecf/internal/value"
)

func TestAccessors(t *testing.T) {
	st := NewMemStore(page.MinSize)
	f, err := Create(st, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema() != testSchema(t) && f.Schema().String() != testSchema(t).String() {
		t.Fatal("Schema accessor broken")
	}
	if f.PageSize() != page.MinSize {
		t.Fatalf("PageSize = %d", f.PageSize())
	}
	if f.Store() != PageStore(st) {
		t.Fatal("Store accessor broken")
	}
	rid := RID{Page: 3, Slot: 7}
	if rid.String() != "3:7" {
		t.Fatalf("RID.String = %q", rid.String())
	}
	if st.TotalBytes() != 0 {
		t.Fatalf("empty TotalBytes = %d", st.TotalBytes())
	}
	if _, err := f.Append(value.Row{value.StringValue("x"), value.IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.TotalBytes() != page.MinSize {
		t.Fatalf("TotalBytes = %d", st.TotalBytes())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if st.NumPages() != 0 {
		t.Fatal("Close did not drop pages")
	}
}

func TestClosedFileOperations(t *testing.T) {
	st := NewMemStore(page.MinSize)
	f, err := Create(st, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	rid, err := f.Append(value.Row{value.StringValue("x"), value.IntValue(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := f.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush on closed: %v", err)
	}
	if err := f.Delete(rid); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete on closed: %v", err)
	}
	if err := f.Vacuum(); !errors.Is(err, ErrClosed) {
		t.Errorf("Vacuum on closed: %v", err)
	}
	if _, err := f.Get(rid); !errors.Is(err, ErrClosed) {
		t.Errorf("Get on closed: %v", err)
	}
	if err := f.Scan(func(RID, value.Row) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Scan on closed: %v", err)
	}
}

func TestOpenFileStoreBadSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "odd.pages")
	st, err := CreateFileStore(path, page.MinSize)
	if err != nil {
		t.Fatal(err)
	}
	p := page.New(page.MinSize, 0)
	if _, err := st.Append(p); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open with a mismatched page size that does not divide the file.
	if _, err := OpenFileStore(path, 768); err == nil {
		t.Fatal("misaligned page size accepted")
	}
}

func TestFileStoreErrors(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateFileStore(filepath.Join(dir, "s.pages"), page.MinSize)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Read(0); !errors.Is(err, ErrPageRange) {
		t.Errorf("Read empty: %v", err)
	}
	if err := st.Write(0, page.New(page.MinSize, 0)); !errors.Is(err, ErrPageRange) {
		t.Errorf("Write empty: %v", err)
	}
	if _, err := st.Append(page.New(1024, 0)); err == nil {
		t.Error("wrong page size accepted")
	}
	if err := st.Write(0, page.New(1024, 0)); err == nil {
		t.Error("wrong page size accepted on write")
	}
}

func TestHeapDeleteOnTailPage(t *testing.T) {
	// Delete a record that still lives on the unflushed tail page.
	st := NewMemStore(page.MinSize)
	f, err := Create(st, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	rid, err := f.Append(value.Row{value.StringValue("tail"), value.IntValue(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 0 {
		t.Fatalf("NumRows = %d", f.NumRows())
	}
	if _, err := f.Get(rid); err == nil {
		t.Fatal("deleted tail row readable")
	}
}
