package db

import (
	"fmt"
	"math"
	"testing"

	"samplecf/internal/compress"
	"samplecf/internal/heap"
	"samplecf/internal/rng"
	"samplecf/internal/stats"
	"samplecf/internal/value"
)

func itemsSchema(t testing.TB) *value.Schema {
	t.Helper()
	return value.MustSchema(
		value.Column{Name: "name", Type: value.Char(20)},
		value.Column{Name: "qty", Type: value.Int32()},
	)
}

func mustCodec(t testing.TB, name string) compress.Codec {
	t.Helper()
	c, err := compress.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDatabaseTableLifecycle(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("items", itemsSchema(t)); err == nil {
		t.Fatal("duplicate table accepted")
	}
	got, ok := d.Table("items")
	if !ok || got != tab {
		t.Fatal("Table lookup failed")
	}
	if names := d.TableNames(); len(names) != 1 || names[0] != "items" {
		t.Fatalf("TableNames = %v", names)
	}
	if err := d.DropTable("items"); err != nil {
		t.Fatal(err)
	}
	if err := d.DropTable("items"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestInsertGetDelete(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tab.Insert(value.Row{value.StringValue("widget"), value.IntValue(5)})
	if err != nil {
		t.Fatal(err)
	}
	row, err := tab.Get(rid)
	if err != nil || string(row[0]) != "widget" {
		t.Fatalf("Get: %v %v", row, err)
	}
	if err := tab.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Get(rid); err == nil {
		t.Fatal("deleted row readable")
	}
	if tab.NumRows() != 0 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
}

func TestIndexMaintenanceThroughMutations(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 200; i++ {
		name := names[i%len(names)]
		if _, err := tab.Insert(value.Row{value.StringValue(name), value.IntValue(int32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := tab.CreateIndex("ix_name", []string{"name"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("ix_name", []string{"name"}, nil); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if ix.NumEntries() != 200 {
		t.Fatalf("bulk-loaded entries = %d", ix.NumEntries())
	}
	alphas, err := ix.Lookup(value.Row{value.StringValue("alpha")})
	if err != nil {
		t.Fatal(err)
	}
	if len(alphas) != 50 {
		t.Fatalf("alpha rids = %d, want 50", len(alphas))
	}
	for _, rid := range alphas {
		row, err := tab.Get(rid)
		if err != nil || string(row[0]) != "alpha" {
			t.Fatalf("rid %v resolves to %q (%v)", rid, row, err)
		}
	}
	// Incremental insert is reflected.
	if _, err := tab.Insert(value.Row{value.StringValue("alpha"), value.IntValue(999)}); err != nil {
		t.Fatal(err)
	}
	alphas, err = ix.Lookup(value.Row{value.StringValue("alpha")})
	if err != nil || len(alphas) != 51 {
		t.Fatalf("after insert: %d (%v)", len(alphas), err)
	}
	// Delete removes exactly the right entry.
	if err := tab.Delete(alphas[0]); err != nil {
		t.Fatal(err)
	}
	alphas, err = ix.Lookup(value.Row{value.StringValue("alpha")})
	if err != nil || len(alphas) != 50 {
		t.Fatalf("after delete: %d (%v)", len(alphas), err)
	}
	if ix.NumEntries() != 200 {
		t.Fatalf("entries after +1/-1 = %d", ix.NumEntries())
	}
	if names := tab.IndexNames(); len(names) != 1 || names[0] != "ix_name" {
		t.Fatalf("IndexNames = %v", names)
	}
}

func TestEstimateVsExactOnLiveIndex(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	for i := 0; i < 20000; i++ {
		name := fmt.Sprintf("n%04d", r.Intn(500))
		if _, err := tab.Insert(value.Row{value.StringValue(name), value.IntValue(int32(r.Intn(1000)))}); err != nil {
			t.Fatal(err)
		}
	}
	codec := mustCodec(t, "nullsuppression")
	ix, err := tab.CreateIndex("ix_name", []string{"name"}, codec)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ix.ExactCF(nil)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Rows != 20000 {
		t.Fatalf("exact rows = %d", exact.Rows)
	}
	est, err := ix.EstimateCF(nil, 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if re := stats.RatioError(est.CF, exact.CF()); re > 1.05 {
		t.Fatalf("estimate %v vs exact %v (ratio %v)", est.CF, exact.CF(), re)
	}
	// The uncompressed denominator must exclude the RID suffix.
	if exact.UncompressedBytes != 20000*20 {
		t.Fatalf("uncompressed = %d, want %d", exact.UncompressedBytes, 20000*20)
	}
	// Missing codec errors cleanly.
	plain, err := tab.CreateIndex("ix_plain", []string{"qty"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.EstimateCF(nil, 0.01, 1); err == nil {
		t.Fatal("estimate without codec accepted")
	}
	if _, err := plain.ExactCF(nil); err == nil {
		t.Fatal("exact without codec accepted")
	}
}

func TestEstimateAfterMutations(t *testing.T) {
	// The estimator reads the LIVE table: after heavy deletes the estimate
	// must track the new composition, not the original.
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	var longRids []heap.RID
	for i := 0; i < 2000; i++ {
		rid, err := tab.Insert(value.Row{value.StringValue("aaaaaaaaaaaaaaaaaaaa"), value.IntValue(1)})
		if err != nil {
			t.Fatal(err)
		}
		longRids = append(longRids, rid)
		if _, err := tab.Insert(value.Row{value.StringValue("b"), value.IntValue(2)}); err != nil {
			t.Fatal(err)
		}
	}
	codec := mustCodec(t, "nullsuppression")
	ix, err := tab.CreateIndex("ix_name", []string{"name"}, codec)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ix.EstimateCF(nil, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range longRids {
		if err := tab.Delete(rid); err != nil {
			t.Fatal(err)
		}
	}
	after, err := ix.EstimateCF(nil, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	if after.CF >= before.CF {
		t.Fatalf("CF did not drop after deleting long rows: %v -> %v", before.CF, after.CF)
	}
	if math.Abs(after.CF-0.1) > 0.01 { // (ℓ=1 + h=1)/k=20
		t.Fatalf("post-delete CF = %v, want ≈0.10", after.CF)
	}
}

func TestRowRandomAccessAfterDeletes(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	var rids []heap.RID
	for i := 0; i < 100; i++ {
		rid, err := tab.Insert(value.Row{value.StringValue(fmt.Sprintf("r%d", i)), value.IntValue(int32(i))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i := 0; i < 100; i += 2 {
		if err := tab.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Random access covers exactly the 50 survivors.
	if tab.NumRows() != 50 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	seen := map[string]bool{}
	for i := int64(0); i < 50; i++ {
		row, err := tab.Row(i)
		if err != nil {
			t.Fatalf("Row(%d): %v", i, err)
		}
		if value.DecodeInt32(row[1])%2 != 1 {
			t.Fatalf("Row(%d) returned deleted row %v", i, row)
		}
		seen[string(row[0])] = true
	}
	if len(seen) != 50 {
		t.Fatalf("random access covered %d distinct rows", len(seen))
	}
	if _, err := tab.Row(50); err == nil {
		t.Fatal("out of range accepted")
	}
}

// TestIndexKeyBoundaries checks the index-assisted stratification
// capability: a matching index yields ascending cut points, a mismatched
// key-column list yields none.
func TestIndexKeyBoundaries(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		row := value.Row{value.StringValue(fmt.Sprintf("n-%06d", i)), value.IntValue(int32(i))}
		if _, err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := tab.IndexKeyBoundaries([]string{"name"}, 8); ok {
		t.Fatal("boundaries served with no index")
	}
	if _, err := tab.CreateIndex("ix_name", []string{"name"}, nil); err != nil {
		t.Fatal(err)
	}
	bounds, ok := tab.IndexKeyBoundaries([]string{"name"}, 8)
	if !ok {
		t.Fatal("matching index not found")
	}
	if len(bounds) == 0 || len(bounds) > 7 {
		t.Fatalf("got %d boundaries, want 1..7", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if string(bounds[i-1]) >= string(bounds[i]) {
			t.Fatal("boundaries not strictly ascending")
		}
	}
	if _, ok := tab.IndexKeyBoundaries([]string{"qty"}, 8); ok {
		t.Fatal("qty boundaries served by a name index")
	}
	// An all-columns index answers the nil (= all columns) request.
	if _, err := tab.CreateIndex("ix_all", nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.IndexKeyBoundaries(nil, 4); !ok {
		t.Fatal("all-columns request unmatched by all-columns index")
	}
}
