package db

import (
	"fmt"

	"samplecf/internal/buffer"
	"samplecf/internal/value"
)

// HeapPages exposes a table's REAL heap pages for block-level sampling,
// reading through an LRU buffer pool so the page-access economics that make
// block sampling attractive to commercial systems (one I/O yields a whole
// page of rows) are observable via PoolStats. Like every page view it is a
// snapshot: the page count is fixed at construction, so concurrent
// appends do not shift the sampling frame mid-draw.
type HeapPages struct {
	t     *Table
	pool  *buffer.Pool
	pages int
}

// AsPageSource flushes the table's tail page and returns a block-sampling
// view backed by a buffer pool of poolPages frames.
func (t *Table) AsPageSource(poolPages int) (*HeapPages, error) {
	if poolPages <= 0 {
		return nil, fmt.Errorf("db: pool size %d must be positive", poolPages)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped {
		return nil, ErrTableDropped
	}
	if err := t.file.Flush(); err != nil {
		return nil, err
	}
	return &HeapPages{t: t, pool: buffer.NewPool(t.file.Store(), poolPages), pages: t.file.NumPages()}, nil
}

// NumPages implements sampling.PageSource.
func (h *HeapPages) NumPages() int { return h.pages }

// PageRows implements sampling.PageSource: all live rows on heap page p.
func (h *HeapPages) PageRows(p int) ([]value.Row, error) {
	pg, err := h.pool.Get(uint32(p))
	if err != nil {
		return nil, err
	}
	var rows []value.Row
	err = pg.Records(func(_ int, rec []byte) error {
		row, err := value.DecodeRecord(h.t.schema, rec)
		if err != nil {
			return err
		}
		rows = append(rows, row.Clone())
		return nil
	})
	return rows, err
}

// PoolStats reports buffer pool hits/misses/evictions accumulated so far.
func (h *HeapPages) PoolStats() buffer.Stats { return h.pool.Stats() }
