// Copy-on-write row snapshots: the lock-free read side of a live table.
//
// A Snapshot is an immutable (arena, epoch, rowcount) view of a table's
// rows published via atomic pointer swap. The writer keeps a private
// append-only arena mirroring the heap in scan order; every Insert appends
// the row and publishes a frozen O(1) header over the arena's current
// prefix (value.RecordArena.Freeze — capped slices sharing the backing
// buffers), so publication costs one encode and one pointer store, never a
// copy of the table. Deletes reorder nothing in the heap but do shrink it,
// so they invalidate: the mirror is dropped and the next snapshot request
// rebuilds it with one scan under the write lock — the same amortization
// the old RowDir used, except the rebuilt artifact then serves every
// reader without any lock at all.
//
// The invariant readers rely on: a non-nil published snapshot always
// describes the table's current committed state (every mutation either
// publishes a successor or nils the pointer before releasing the write
// lock). A loaded *Snapshot stays internally consistent forever — it is
// immutable — it just stops being current when its epoch falls behind the
// table's. Epoch-keyed consumers get exactly the staleness contract they
// already have for cache entries.
package db

import (
	"fmt"
	"sync/atomic"

	"samplecf/internal/heap"
	"samplecf/internal/obs"
	"samplecf/internal/sampling"
	"samplecf/internal/value"
)

// ErrSnapshotsDisabled is returned by snapshot accessors when the database
// was built with WithSnapshots(false); callers fall back to the locked
// access paths.
var ErrSnapshotsDisabled = fmt.Errorf("db: snapshots disabled")

// Process-wide snapshot tallies on the default obs registry (the
// sampling/metrics.go idiom): db tables are created ad hoc, so per-table
// registries would fragment the ledger. cfserve's /metrics concatenates
// the default registry, so these surface without extra plumbing.
var (
	metricSnapshotsPublished = obs.Default().Counter(
		"samplecf_db_snapshots_published_total",
		"Copy-on-write table snapshots published (one per mutation on the append-only path).")
	metricSnapshotRebuilds = obs.Default().Counter(
		"samplecf_db_snapshot_rebuilds_total",
		"Snapshot mirror rebuild scans (the O(n) cost a delete defers to the next snapshot reader).")
)

// Snapshot is one published point-in-time view: the full-schema rows in
// heap scan order, their storage keys, and the epoch the view was
// published at. It is immutable and safe to retain and read from any
// number of goroutines; it implements sampling.StableRowSource.
type Snapshot struct {
	ar    *value.RecordArena // frozen: rows in heap scan order
	rids  []uint64           // parallel ridKey per row (frozen prefix)
	epoch uint64
}

// NumRows implements sampling.RowSource.
func (s *Snapshot) NumRows() int64 { return int64(s.ar.Len()) }

// Row implements sampling.RowSource: decode row i from the arena. The
// payloads alias the snapshot's buffers, which never change — safe to
// retain, same trimmed representation heap decoding produces.
func (s *Snapshot) Row(i int64) (value.Row, error) {
	if i < 0 || i >= int64(s.ar.Len()) {
		return nil, fmt.Errorf("db: snapshot row %d out of range [0,%d)", i, s.ar.Len())
	}
	return s.ar.Row(int(i))
}

// StableRows marks the snapshot scan-stable (sampling.StableRowSource).
func (s *Snapshot) StableRows() {}

// Epoch returns the table epoch the snapshot was published at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Arena exposes the frozen row arena (records + memcomparable keys under
// the table schema) for consumers that gather by byte range. Read-only.
func (s *Snapshot) Arena() *value.RecordArena { return s.ar }

// Scan iterates the snapshot's rows in order — the lock-free counterpart
// of Table.Scan, same callback shape.
func (s *Snapshot) Scan(fn func(i int64, row value.Row) error) error {
	for i := 0; i < s.ar.Len(); i++ {
		row, err := s.ar.Row(i)
		if err != nil {
			return err
		}
		if err := fn(int64(i), row); err != nil {
			return err
		}
	}
	return nil
}

// snapshotState is the writer-side snapshot machinery embedded in Table.
// live/liveRIDs are guarded by the table's write lock; snap is the atomic
// publication point readers load without any lock.
type snapshotState struct {
	enabled bool
	// live is the writer-private mirror: full-schema rows appended in heap
	// order. nil means "mirror dropped" (after a delete or a maintenance
	// failure) — the next Snapshot() call rebuilds it. liveRIDs is the
	// parallel storage-key slice.
	live     *value.RecordArena
	liveRIDs []uint64
	snap     atomic.Pointer[Snapshot]
}

// invalidateSnapshotLocked drops the mirror and the published snapshot.
// Caller holds the table write lock.
func (t *Table) invalidateSnapshotLocked() {
	t.snapshot.live = nil
	t.snapshot.liveRIDs = nil
	t.snapshot.snap.Store(nil)
}

// publishSnapshotLocked publishes a frozen view of the current mirror at
// epoch. Caller holds the table write lock and has already brought the
// mirror up to date; a dropped mirror publishes nothing (the snapshot
// pointer must already be nil in that case).
func (t *Table) publishSnapshotLocked(epoch uint64) {
	if !t.snapshot.enabled || t.snapshot.live == nil {
		return
	}
	t.snapshot.snap.Store(&Snapshot{
		ar:    t.snapshot.live.Freeze(),
		rids:  t.snapshot.liveRIDs[:len(t.snapshot.liveRIDs):len(t.snapshot.liveRIDs)],
		epoch: epoch,
	})
	metricSnapshotsPublished.Add(1)
}

// rebuildSnapshotLocked refills the mirror with one heap scan and
// publishes at the current epoch. Caller holds the table write lock.
func (t *Table) rebuildSnapshotLocked() error {
	metricSnapshotRebuilds.Add(1)
	n := int(t.file.NumRows())
	live := value.NewRecordArena(t.schema, n)
	rids := make([]uint64, 0, n)
	err := t.file.Scan(func(rid heap.RID, row value.Row) error {
		rids = append(rids, ridKey(rid))
		return live.Append(row)
	})
	if err != nil {
		return err
	}
	t.snapshot.live = live
	t.snapshot.liveRIDs = rids
	t.publishSnapshotLocked(t.Epoch())
	return nil
}

// Snapshot returns the table's current published snapshot, rebuilding the
// mirror first when a delete invalidated it. The fast path is one atomic
// load. Errors: ErrSnapshotsDisabled when the database was built with
// WithSnapshots(false), ErrTableDropped after a drop.
func (t *Table) Snapshot() (*Snapshot, error) {
	if !t.snapshot.enabled {
		return nil, ErrSnapshotsDisabled
	}
	if s := t.snapshot.snap.Load(); s != nil {
		return s, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped {
		return nil, ErrTableDropped
	}
	if s := t.snapshot.snap.Load(); s != nil {
		return s, nil
	}
	if err := t.rebuildSnapshotLocked(); err != nil {
		return nil, err
	}
	return t.snapshot.snap.Load(), nil
}

// SnapshotRows implements catalog.SnapshotProvider: the pinned scan-stable
// row view and its publication epoch.
func (t *Table) SnapshotRows() (sampling.StableRowSource, uint64, error) {
	s, err := t.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	return s, s.epoch, nil
}
