// Package db is a miniature embedded database engine tying the substrates
// together: tables are heap files, indexes are B+-trees maintained on
// insert/delete, and compression-fraction estimation is a first-class
// operation on any index — the way a commercial engine surfaces
// sp_estimate_data_compression_savings.
//
// Tables are live catalog.Table implementations: every insert/delete bumps
// the table's version epoch, so estimation consumers (internal/engine,
// cmd/cfserve) invalidate cached results with one integer comparison
// instead of scanning data. Each table also maintains a backing sample
// (sampling.Backing) fed by the mutation path, so hot tables serve
// estimation samples without a fresh O(r) draw against storage.
//
// It is deliberately small (no SQL, no recovery) but end-to-end real:
// every row lives in slotted pages, every index entry carries the heap
// RID, and estimates run against the same storage the exact answers are
// computed from. Reads and mutations may run concurrently: mutations take
// the table's write lock, reads its read lock.
package db

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"sync"

	"samplecf/internal/btree"
	"samplecf/internal/catalog"
	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/heap"
	"samplecf/internal/page"
	"samplecf/internal/sampling"
	"samplecf/internal/value"
)

// ErrTableDropped is returned by operations on a table that has been
// dropped from its database. Retained *Table handles fail loudly instead
// of silently reading or mutating orphaned storage.
var ErrTableDropped = errors.New("db: table has been dropped")

// DefaultSampleTarget is the per-table maintained-sample size used when
// no option overrides it.
const DefaultSampleTarget = 2048

// Option configures a Database.
type Option func(*Database)

// WithSampleTarget sets the maintained-sample reservoir size for tables
// created afterwards (0 disables maintained samples).
func WithSampleTarget(rows int) Option {
	return func(d *Database) { d.sampleTarget = rows }
}

// WithSnapshots toggles copy-on-write row snapshots for tables created
// afterwards (default on). Disabling keeps the RWMutex-era read paths —
// lock-holding Scan, row-directory Row — and exists for the baseline arm
// of concurrency benchmarks and for workloads that cannot afford the
// mirror's memory (one extra encoded copy of each table).
func WithSnapshots(enabled bool) Option {
	return func(d *Database) { d.snapshots = enabled }
}

// Database is a named collection of tables.
type Database struct {
	mu           sync.RWMutex
	pageSize     int
	sampleTarget int
	snapshots    bool
	tables       map[string]*Table
	sharded      map[string]*ShardedTable
}

// New creates an empty database. pageSize 0 selects page.DefaultSize.
func New(pageSize int, opts ...Option) *Database {
	if pageSize == 0 {
		pageSize = page.DefaultSize
	}
	d := &Database{
		pageSize:     pageSize,
		sampleTarget: DefaultSampleTarget,
		snapshots:    true,
		tables:       make(map[string]*Table),
		sharded:      make(map[string]*ShardedTable),
	}
	for _, opt := range opts {
		opt(d)
	}
	return d
}

// newTable builds a heap-backed table without registering it: the shared
// construction behind both user-visible tables and the per-shard children
// of a ShardedTable.
func (d *Database) newTable(name string, schema *value.Schema) (*Table, error) {
	file, err := heap.Create(heap.NewMemStore(d.pageSize), schema)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Version: catalog.NewVersion(),
		db:      d,
		name:    name,
		schema:  schema,
		file:    file,
		indexes: make(map[string]*Index),
	}
	if d.snapshots {
		// Start the mirror empty and publish the empty view at epoch 0, so
		// the append-only path tracks from the very first insert with no
		// rebuild ever needed until the first delete.
		t.snapshot.enabled = true
		t.snapshot.live = value.NewRecordArena(schema, 0)
		t.publishSnapshotLocked(t.Epoch())
	}
	if d.sampleTarget > 0 {
		t.sampleSeed = t.InstanceID() * 0x9e3779b97f4a7c15
		t.sample, err = sampling.NewBacking(schema, d.sampleTarget, t.sampleSeed)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// CreateTable registers a new heap-backed table.
func (d *Database) CreateTable(name string, schema *value.Schema) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkNameFreeLocked(name); err != nil {
		return nil, err
	}
	t, err := d.newTable(name, schema)
	if err != nil {
		return nil, err
	}
	d.tables[name] = t
	return t, nil
}

// checkNameFreeLocked rejects a name already taken by a plain or sharded
// table. The caller holds the database lock.
func (d *Database) checkNameFreeLocked(name string) error {
	if _, dup := d.tables[name]; dup {
		return fmt.Errorf("db: table %q already exists", name)
	}
	if _, dup := d.sharded[name]; dup {
		return fmt.Errorf("db: table %q already exists", name)
	}
	return nil
}

// Table returns a table by name.
func (d *Database) Table(name string) (*Table, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[name]
	return t, ok
}

// DropTable removes a table and its indexes. The table object is marked
// dropped: any retained *Table handle fails subsequent operations with
// ErrTableDropped instead of touching orphaned storage. Dropping a
// sharded table drops every shard.
func (d *Database) DropTable(name string) error {
	d.mu.Lock()
	t, ok := d.tables[name]
	if !ok {
		st, sok := d.sharded[name]
		if !sok {
			d.mu.Unlock()
			return fmt.Errorf("db: no table %q", name)
		}
		delete(d.sharded, name)
		d.mu.Unlock()
		st.markDropped()
		return nil
	}
	delete(d.tables, name)
	d.mu.Unlock()
	t.markDropped()
	return nil
}

// markDropped flags the table dropped and invalidates epoch-keyed state.
func (t *Table) markDropped() {
	t.mu.Lock()
	t.dropped = true
	t.rowDir = nil
	t.invalidateSnapshotLocked()
	t.mu.Unlock()
	t.Bump() // stale any epoch-keyed derived state immediately
}

// TableNames lists tables (plain and sharded), sorted.
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables)+len(d.sharded))
	for n := range d.tables {
		out = append(out, n)
	}
	for n := range d.sharded {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// PageSize returns the database's page size.
func (d *Database) PageSize() int { return d.pageSize }

// Table is one heap-backed table plus its maintained indexes. It
// implements catalog.Table (and the catalog sample/page capabilities):
// mutations bump the embedded version epoch after they apply.
type Table struct {
	catalog.Version
	db     *Database
	name   string
	schema *value.Schema

	mu      sync.RWMutex
	file    *heap.File
	dropped bool
	indexes map[string]*Index
	// rowDir caches the RID directory for random-access sampling; nil
	// when stale (any mutation invalidates it). Only the WithSnapshots(false)
	// baseline uses it — snapshot-enabled tables serve Row from the
	// published snapshot without locks.
	rowDir *heap.RowDir

	// snapshot is the copy-on-write read view (see snapshot.go): a
	// writer-private mirror arena plus the atomically published Snapshot.
	snapshot snapshotState

	// sample is the maintained backing sample fed by Insert/Delete; nil
	// when the database disables maintained samples.
	sample         *sampling.Backing
	sampleSeed     uint64
	sampleRebuilds uint64
}

var _ catalog.Table = (*Table)(nil)
var _ catalog.SampleProvider = (*Table)(nil)
var _ catalog.PageProvider = (*Table)(nil)
var _ catalog.IndexBoundaryProvider = (*Table)(nil)
var _ catalog.SnapshotProvider = (*Table)(nil)
var _ sampling.StableRowSource = (*Snapshot)(nil)

// Name implements catalog.Table.
func (t *Table) Name() string { return t.name }

// Schema implements catalog.Table.
func (t *Table) Schema() *value.Schema { return t.schema }

// NumRows implements catalog.Table. With snapshots enabled the count comes
// from the published view — one atomic load, no lock. A non-nil published
// snapshot is always current: every mutation either publishes a successor
// or nils the pointer before releasing the write lock.
func (t *Table) NumRows() int64 {
	if s := t.snapshot.snap.Load(); s != nil {
		return s.NumRows()
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.file.NumRows()
}

// ridKey packs a RID into the uint64 storage key the backing sample uses
// for exact delete tolerance.
func ridKey(rid heap.RID) uint64 {
	return uint64(rid.Page)<<16 | uint64(rid.Slot)
}

// Insert appends a row, maintains every index and the backing sample, and
// bumps the version epoch.
func (t *Table) Insert(row value.Row) (heap.RID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped {
		return heap.RID{}, ErrTableDropped
	}
	rid, err := t.file.Append(row)
	if err != nil {
		return heap.RID{}, err
	}
	// Storage changed: the epoch must bump on every exit from here on,
	// including index-maintenance failures, or stale estimates would keep
	// serving at the old epoch. On the success path the same deferred hook
	// extends the snapshot mirror and publishes the new view at the
	// post-mutation epoch — heap appends always land on the tail page, so
	// appending to the mirror preserves heap scan order. On any failure the
	// mirror is dropped instead: derived state may be half-updated, and a
	// lazy rebuild is cheaper than reasoning about partial maintenance.
	ok := false
	defer func() {
		epoch := t.Bump()
		if !t.snapshot.enabled {
			return
		}
		if !ok || t.snapshot.live == nil {
			// Failure, or the mirror was already dropped by an earlier
			// delete; the next Snapshot() call rebuilds with one scan.
			t.invalidateSnapshotLocked()
			return
		}
		if err := t.snapshot.live.Append(row); err != nil {
			t.invalidateSnapshotLocked()
			return
		}
		t.snapshot.liveRIDs = append(t.snapshot.liveRIDs, ridKey(rid))
		t.publishSnapshotLocked(epoch)
	}()
	t.rowDir = nil
	if t.sample != nil {
		// The backing sample encodes the row into its own arena; no clone.
		if err := t.sample.Insert(ridKey(rid), row); err != nil {
			return heap.RID{}, fmt.Errorf("db: maintain sample: %w", err)
		}
	}
	for _, ix := range t.indexes {
		if err := ix.insertEntry(row, rid); err != nil {
			return heap.RID{}, fmt.Errorf("db: maintain index %s: %w", ix.name, err)
		}
	}
	ok = true
	return rid, nil
}

// Delete removes the row at rid from the heap, every index, and the
// backing sample, and bumps the version epoch.
func (t *Table) Delete(rid heap.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped {
		return ErrTableDropped
	}
	return t.deleteLocked(rid)
}

// deleteLocked is Delete with the write lock already held.
func (t *Table) deleteLocked(rid heap.RID) error {
	row, err := t.file.Get(rid)
	if err != nil {
		return err
	}
	if err := t.file.Delete(rid); err != nil {
		return err
	}
	// Storage changed: the epoch must bump on every exit from here on,
	// including index-maintenance failures. Deletes shrink the heap in
	// place, so the append-only mirror cannot track them — drop it and let
	// the next snapshot request rebuild.
	defer func() {
		t.Bump()
		t.invalidateSnapshotLocked()
	}()
	t.rowDir = nil
	if t.sample != nil {
		t.sample.Delete(ridKey(rid))
	}
	for _, ix := range t.indexes {
		if err := ix.deleteEntry(row, rid); err != nil {
			return fmt.Errorf("db: maintain index %s: %w", ix.name, err)
		}
	}
	return nil
}

// Get fetches a row by RID.
func (t *Table) Get(rid heap.RID) (value.Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.dropped {
		return nil, ErrTableDropped
	}
	return t.file.Get(rid)
}

// Scan iterates all rows (core.RowScanner / workload.Scanner shape). With
// a published snapshot the scan runs lock-free against the immutable view
// (same rows, same order as the heap walk); otherwise the table is
// read-locked for the duration of the scan.
func (t *Table) Scan(fn func(i int64, row value.Row) error) error {
	if s := t.snapshot.snap.Load(); s != nil {
		return s.Scan(fn)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.dropped {
		return ErrTableDropped
	}
	i := int64(0)
	return t.file.Scan(func(_ heap.RID, row value.Row) error {
		err := fn(i, row)
		i++
		return err
	})
}

// Row implements catalog.Table: uniform random access for sampling. With a
// published snapshot the lookup is one atomic load plus an arena decode —
// no lock, and inserts never stall behind it. When the snapshot is missing
// (disabled, or dropped by a delete) the first call rebuilds the relevant
// directory with one scan under the write lock; subsequent calls are a
// lookup.
func (t *Table) Row(i int64) (value.Row, error) {
	if s := t.snapshot.snap.Load(); s != nil {
		return s.Row(i)
	}
	t.mu.RLock()
	if t.dropped {
		t.mu.RUnlock()
		return nil, ErrTableDropped
	}
	if dir := t.rowDir; dir != nil {
		defer t.mu.RUnlock()
		return dir.Row(i)
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped {
		return nil, ErrTableDropped
	}
	if t.snapshot.enabled {
		// Rebuild the snapshot rather than the RID directory: the same
		// O(n) scan yields an artifact every later reader uses lock-free.
		if s := t.snapshot.snap.Load(); s == nil {
			if err := t.rebuildSnapshotLocked(); err != nil {
				return nil, err
			}
		}
		return t.snapshot.snap.Load().Row(i)
	}
	if t.rowDir == nil {
		dir, err := heap.NewRowDir(t.file)
		if err != nil {
			return nil, err
		}
		t.rowDir = dir
	}
	return t.rowDir.Row(i)
}

// DeleteWhere removes up to limit rows whose column equals val
// (limit <= 0 means all matches), returning the number deleted. It is
// the predicate-delete primitive cfserve's mutation endpoint uses; each
// physical delete maintains indexes and the backing sample and bumps the
// epoch, exactly like Delete. The scan and the deletes run under one
// write lock, so concurrent mutations can never invalidate a matched RID
// mid-operation.
func (t *Table) DeleteWhere(column string, val []byte, limit int) (int, error) {
	pos, ok := t.schema.ColumnIndex(column)
	if !ok {
		return 0, fmt.Errorf("db: no column %q", column)
	}
	typ := t.schema.Column(pos).Type
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped {
		return 0, ErrTableDropped
	}
	var rids []heap.RID
	err := t.file.Scan(func(rid heap.RID, row value.Row) error {
		if value.CompareValues(typ, row[pos], val) == 0 {
			rids = append(rids, rid)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if limit > 0 && len(rids) > limit {
		rids = rids[:limit]
	}
	for i, rid := range rids {
		if err := t.deleteLocked(rid); err != nil {
			return i, fmt.Errorf("db: delete %v: %w", rid, err)
		}
	}
	return len(rids), nil
}

// MaintainedSample implements catalog.SampleProvider: it returns the
// backing-sample snapshot at the current epoch, rebuilding first when the
// staleness policy demands it. ok is false when maintained sampling is
// disabled, the table is dropped, or fewer than min rows are available
// even after a rebuild.
func (t *Table) MaintainedSample(min int64) (catalog.Sample, bool) {
	if t.sample == nil {
		return catalog.Sample{}, false
	}
	t.mu.RLock()
	if t.dropped {
		t.mu.RUnlock()
		return catalog.Sample{}, false
	}
	if t.sample.Stale(t.file.NumRows()) {
		t.mu.RUnlock()
		t.mu.Lock()
		if !t.dropped && t.sample.Stale(t.file.NumRows()) {
			if err := t.rebuildSampleLocked(); err != nil {
				t.mu.Unlock()
				return catalog.Sample{}, false
			}
		}
		t.mu.Unlock()
		t.mu.RLock()
		if t.dropped {
			t.mu.RUnlock()
			return catalog.Sample{}, false
		}
	}
	ar := t.sample.SnapshotArena()
	epoch := t.Epoch()
	t.mu.RUnlock()
	if int64(ar.Len()) < min {
		return catalog.Sample{}, false
	}
	return catalog.Sample{Arena: ar, Epoch: epoch}, true
}

// rebuildSampleLocked refills the backing sample. With a current snapshot
// the rows come from its arena (decodes, no page walk) in the same order
// with the same storage keys the heap scan would produce, so the refilled
// reservoir is identical either way. The caller holds the write lock.
func (t *Table) rebuildSampleLocked() error {
	t.sampleRebuilds++
	t.sample.Reset(t.sampleSeed + t.sampleRebuilds)
	if s := t.snapshot.snap.Load(); s != nil {
		for i := 0; i < s.ar.Len(); i++ {
			row, err := s.ar.Row(i)
			if err != nil {
				return err
			}
			if err := t.sample.Insert(s.rids[i], row); err != nil {
				return err
			}
		}
		return nil
	}
	return t.file.Scan(func(rid heap.RID, row value.Row) error {
		return t.sample.Insert(ridKey(rid), row)
	})
}

// SampleStats reports the maintained sample's counters plus the number of
// staleness-triggered rebuilds (zero stats when disabled).
func (t *Table) SampleStats() (sampling.BackingStats, uint64) {
	if t.sample == nil {
		return sampling.BackingStats{}, 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sample.Stats(), t.sampleRebuilds
}

// PageSource implements catalog.PageProvider: a snapshot view of the
// table's real heap pages for block sampling.
func (t *Table) PageSource() (sampling.PageSource, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped {
		return nil, ErrTableDropped
	}
	return heap.NewFilePages(t.file)
}

// CreateIndex builds a B+-tree index on keyCols (empty = all columns) with
// an optional target codec recorded for estimation. Existing rows are
// bulk-loaded; subsequent Insert/Delete maintain the tree incrementally.
func (t *Table) CreateIndex(name string, keyCols []string, codec compress.Codec) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped {
		return nil, ErrTableDropped
	}
	if _, dup := t.indexes[name]; dup {
		return nil, fmt.Errorf("db: index %q already exists", name)
	}
	keySchema := t.schema
	var err error
	if len(keyCols) > 0 {
		keySchema, err = t.schema.Project(keyCols...)
		if err != nil {
			return nil, err
		}
	}
	ix := &Index{
		name:      name,
		table:     t,
		keyCols:   keyCols,
		keySchema: keySchema,
		codec:     codec,
	}
	// Bulk load from a sorted snapshot of the heap.
	type ent struct {
		key, payload []byte
	}
	var ents []ent
	err = t.file.Scan(func(rid heap.RID, row value.Row) error {
		key, payload, err := ix.encodeEntry(row, rid)
		if err != nil {
			return err
		}
		ents = append(ents, ent{key, payload})
		return nil
	})
	if err != nil {
		return nil, err
	}
	slices.SortFunc(ents, func(a, b ent) int { return bytes.Compare(a.key, b.key) })
	items := make([]btree.Item, len(ents))
	for i, e := range ents {
		items[i] = btree.Item{Key: e.key, Payload: e.payload}
	}
	tree, err := btree.BulkLoadItems(heap.NewMemStore(t.db.pageSize), items, 1.0)
	if err != nil {
		return nil, err
	}
	ix.tree = tree
	t.indexes[name] = ix
	return ix, nil
}

// IndexKeyBoundaries implements catalog.IndexBoundaryProvider: when some
// index's key columns equal keyCols (nil/empty = all columns, on either
// side), its separator keys cut the key domain into up to `strata`
// near-equal-entry-count ranges for stratified estimation — one short walk
// of the tree's internal levels, no table scan. Index names are visited in
// sorted order so the choice among several matching indexes is
// deterministic.
func (t *Table) IndexKeyBoundaries(keyCols []string, strata int) ([][]byte, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		names = append(names, n)
	}
	slices.Sort(names)
	want := t.resolveKeyCols(keyCols)
	for _, n := range names {
		ix := t.indexes[n]
		if !slices.Equal(t.resolveKeyCols(ix.keyCols), want) {
			continue
		}
		bounds, err := ix.tree.SeparatorKeys(strata)
		if err != nil {
			continue
		}
		return bounds, true
	}
	return nil, false
}

// resolveKeyCols normalizes a key-column list: nil/empty means every
// schema column, in schema order.
func (t *Table) resolveKeyCols(keyCols []string) []string {
	if len(keyCols) > 0 {
		return keyCols
	}
	out := make([]string, t.schema.NumColumns())
	for i := range out {
		out[i] = t.schema.Column(i).Name
	}
	return out
}

// Index returns a table's index by name.
func (t *Table) Index(name string) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[name]
	return ix, ok
}

// IndexNames lists the table's indexes, sorted.
func (t *Table) IndexNames() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// Index is a maintained B+-tree over a table's key columns. Leaf payloads
// are the fixed-width key record followed by the 6-byte heap RID.
type Index struct {
	name      string
	table     *Table
	keyCols   []string
	keySchema *value.Schema
	codec     compress.Codec
	tree      *btree.Tree
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// KeyColumns returns the indexed column names (nil = all).
func (ix *Index) KeyColumns() []string { return ix.keyCols }

// NumEntries returns the number of index entries.
func (ix *Index) NumEntries() int64 { return ix.tree.NumEntries() }

// ridSize is the encoded RID width (4-byte page + 2-byte slot).
const ridSize = 6

// encodeEntry builds the (search key, payload) pair for a row.
func (ix *Index) encodeEntry(row value.Row, rid heap.RID) (key, payload []byte, err error) {
	krow := ix.projectRow(row)
	key, err = value.EncodeKey(ix.keySchema, krow, nil)
	if err != nil {
		return nil, nil, err
	}
	payload, err = value.EncodeRecord(ix.keySchema, krow, nil)
	if err != nil {
		return nil, nil, err
	}
	payload = append(payload,
		byte(rid.Page), byte(rid.Page>>8), byte(rid.Page>>16), byte(rid.Page>>24),
		byte(rid.Slot), byte(rid.Slot>>8))
	return key, payload, nil
}

// decodeRID extracts the RID suffix from a payload.
func decodeRID(payload []byte) heap.RID {
	s := payload[len(payload)-ridSize:]
	return heap.RID{
		Page: uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24,
		Slot: uint16(s[4]) | uint16(s[5])<<8,
	}
}

// projectRow extracts the key columns from a full row.
func (ix *Index) projectRow(row value.Row) value.Row {
	if len(ix.keyCols) == 0 {
		return row
	}
	out := make(value.Row, len(ix.keyCols))
	for i, name := range ix.keyCols {
		pos, _ := ix.table.schema.ColumnIndex(name)
		out[i] = row[pos]
	}
	return out
}

// insertEntry maintains the tree for one new row.
func (ix *Index) insertEntry(row value.Row, rid heap.RID) error {
	key, payload, err := ix.encodeEntry(row, rid)
	if err != nil {
		return err
	}
	return ix.tree.Insert(key, payload)
}

// deleteEntry maintains the tree for one removed row.
func (ix *Index) deleteEntry(row value.Row, rid heap.RID) error {
	key, payload, err := ix.encodeEntry(row, rid)
	if err != nil {
		return err
	}
	found, err := ix.tree.DeleteMatching(key, payload)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("db: index %s out of sync: entry for %v missing", ix.name, rid)
	}
	return nil
}

// Lookup returns the RIDs of all rows whose key columns equal keyRow.
func (ix *Index) Lookup(keyRow value.Row) ([]heap.RID, error) {
	ix.table.mu.RLock()
	defer ix.table.mu.RUnlock()
	if ix.table.dropped {
		return nil, ErrTableDropped
	}
	key, err := value.EncodeKey(ix.keySchema, keyRow, nil)
	if err != nil {
		return nil, err
	}
	var rids []heap.RID
	err = ix.tree.Ascend(key, func(k, payload []byte) bool {
		if !bytes.Equal(k, key) {
			return false
		}
		rids = append(rids, decodeRID(payload))
		return true
	})
	return rids, err
}

// EstimateCF runs SampleCF against the live table for this index's key
// columns, using the given codec (nil = the codec declared at CreateIndex).
func (ix *Index) EstimateCF(codec compress.Codec, fraction float64, seed uint64) (core.Estimate, error) {
	if codec == nil {
		codec = ix.codec
	}
	if codec == nil {
		return core.Estimate{}, fmt.Errorf("db: index %s has no codec; pass one", ix.name)
	}
	return core.SampleCF(ix.table, ix.table.schema, core.Options{
		Fraction:   fraction,
		Codec:      codec,
		KeyColumns: ix.keyCols,
		Seed:       seed,
		PageSize:   ix.table.db.pageSize,
	})
}

// ExactCF compresses the index's actual leaf records (RID suffixes
// excluded, matching the paper's model) and returns the true result.
func (ix *Index) ExactCF(codec compress.Codec) (compress.Result, error) {
	if codec == nil {
		codec = ix.codec
	}
	if codec == nil {
		return compress.Result{}, fmt.Errorf("db: index %s has no codec; pass one", ix.name)
	}
	ix.table.mu.RLock()
	defer ix.table.mu.RUnlock()
	if ix.table.dropped {
		return compress.Result{}, ErrTableDropped
	}
	sess, err := codec.NewSession(ix.keySchema)
	if err != nil {
		return compress.Result{}, err
	}
	err = ix.tree.LeafPages(func(_ uint32, p *page.Page) error {
		_, payloads, err := btree.LeafEntries(p)
		if err != nil {
			return err
		}
		recs := make([][]byte, len(payloads))
		for i, pl := range payloads {
			if len(pl) < ridSize {
				return fmt.Errorf("db: index %s: malformed payload", ix.name)
			}
			recs[i] = pl[:len(pl)-ridSize]
		}
		return sess.AddPage(recs)
	})
	if err != nil {
		return compress.Result{}, err
	}
	return sess.Finish()
}
