// Package db is a miniature embedded database engine tying the substrates
// together: tables are heap files, indexes are B+-trees maintained on
// insert/delete, and compression-fraction estimation is a first-class
// operation on any index — the way a commercial engine surfaces
// sp_estimate_data_compression_savings.
//
// It is deliberately small (no SQL, no concurrency control, no recovery)
// but end-to-end real: every row lives in slotted pages, every index entry
// carries the heap RID, and estimates run against the same storage the
// exact answers are computed from. The package doubles as the integration
// test bed for heap + btree + compress + core.
package db

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"samplecf/internal/btree"
	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/heap"
	"samplecf/internal/page"
	"samplecf/internal/value"
)

// Database is a named collection of tables.
type Database struct {
	mu       sync.RWMutex
	pageSize int
	tables   map[string]*Table
}

// New creates an empty database. pageSize 0 selects page.DefaultSize.
func New(pageSize int) *Database {
	if pageSize == 0 {
		pageSize = page.DefaultSize
	}
	return &Database{pageSize: pageSize, tables: make(map[string]*Table)}
}

// CreateTable registers a new heap-backed table.
func (d *Database) CreateTable(name string, schema *value.Schema) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tables[name]; dup {
		return nil, fmt.Errorf("db: table %q already exists", name)
	}
	file, err := heap.Create(heap.NewMemStore(d.pageSize), schema)
	if err != nil {
		return nil, err
	}
	t := &Table{
		db:      d,
		name:    name,
		schema:  schema,
		file:    file,
		indexes: make(map[string]*Index),
	}
	d.tables[name] = t
	return t, nil
}

// Table returns a table by name.
func (d *Database) Table(name string) (*Table, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[name]
	return t, ok
}

// DropTable removes a table and its indexes.
func (d *Database) DropTable(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tables[name]; !ok {
		return fmt.Errorf("db: no table %q", name)
	}
	delete(d.tables, name)
	return nil
}

// TableNames lists tables, sorted.
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for n := range d.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table is one heap-backed table plus its maintained indexes.
type Table struct {
	db     *Database
	name   string
	schema *value.Schema
	file   *heap.File

	mu      sync.RWMutex
	indexes map[string]*Index
	// ridDir caches row-position → RID for random-access sampling; nil
	// when stale.
	ridDir []heap.RID
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *value.Schema { return t.schema }

// NumRows returns the live row count.
func (t *Table) NumRows() int64 { return t.file.NumRows() }

// Insert appends a row and maintains every index.
func (t *Table) Insert(row value.Row) (heap.RID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, err := t.file.Append(row)
	if err != nil {
		return heap.RID{}, err
	}
	t.ridDir = nil
	for _, ix := range t.indexes {
		if err := ix.insertEntry(row, rid); err != nil {
			return heap.RID{}, fmt.Errorf("db: maintain index %s: %w", ix.name, err)
		}
	}
	return rid, nil
}

// Delete removes the row at rid from the heap and every index.
func (t *Table) Delete(rid heap.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, err := t.file.Get(rid)
	if err != nil {
		return err
	}
	if err := t.file.Delete(rid); err != nil {
		return err
	}
	t.ridDir = nil
	for _, ix := range t.indexes {
		if err := ix.deleteEntry(row, rid); err != nil {
			return fmt.Errorf("db: maintain index %s: %w", ix.name, err)
		}
	}
	return nil
}

// Get fetches a row by RID.
func (t *Table) Get(rid heap.RID) (value.Row, error) { return t.file.Get(rid) }

// Scan iterates all rows (core.RowScanner / workload.Scanner shape).
func (t *Table) Scan(fn func(i int64, row value.Row) error) error {
	i := int64(0)
	return t.file.Scan(func(_ heap.RID, row value.Row) error {
		err := fn(i, row)
		i++
		return err
	})
}

// Row provides uniform random access for sampling (sampling.RowSource).
// The first call after a mutation rebuilds an RID directory with one scan.
func (t *Table) Row(i int64) (value.Row, error) {
	t.mu.Lock()
	if t.ridDir == nil {
		dir := make([]heap.RID, 0, t.file.NumRows())
		err := t.file.Scan(func(rid heap.RID, _ value.Row) error {
			dir = append(dir, rid)
			return nil
		})
		if err != nil {
			t.mu.Unlock()
			return nil, err
		}
		t.ridDir = dir
	}
	dir := t.ridDir
	t.mu.Unlock()
	if i < 0 || i >= int64(len(dir)) {
		return nil, fmt.Errorf("db: row %d out of range [0,%d)", i, len(dir))
	}
	return t.file.Get(dir[i])
}

// CreateIndex builds a B+-tree index on keyCols (empty = all columns) with
// an optional target codec recorded for estimation. Existing rows are
// bulk-loaded; subsequent Insert/Delete maintain the tree incrementally.
func (t *Table) CreateIndex(name string, keyCols []string, codec compress.Codec) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.indexes[name]; dup {
		return nil, fmt.Errorf("db: index %q already exists", name)
	}
	keySchema := t.schema
	var err error
	if len(keyCols) > 0 {
		keySchema, err = t.schema.Project(keyCols...)
		if err != nil {
			return nil, err
		}
	}
	ix := &Index{
		name:      name,
		table:     t,
		keyCols:   keyCols,
		keySchema: keySchema,
		codec:     codec,
	}
	// Bulk load from a sorted snapshot of the heap.
	type ent struct {
		key, payload []byte
	}
	var ents []ent
	err = t.file.Scan(func(rid heap.RID, row value.Row) error {
		key, payload, err := ix.encodeEntry(row, rid)
		if err != nil {
			return err
		}
		ents = append(ents, ent{key, payload})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(ents, func(i, j int) bool { return bytes.Compare(ents[i].key, ents[j].key) < 0 })
	items := make([]btree.Item, len(ents))
	for i, e := range ents {
		items[i] = btree.Item{Key: e.key, Payload: e.payload}
	}
	tree, err := btree.BulkLoadItems(heap.NewMemStore(t.db.pageSize), items, 1.0)
	if err != nil {
		return nil, err
	}
	ix.tree = tree
	t.indexes[name] = ix
	return ix, nil
}

// Index returns a table's index by name.
func (t *Table) Index(name string) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[name]
	return ix, ok
}

// IndexNames lists the table's indexes, sorted.
func (t *Table) IndexNames() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Index is a maintained B+-tree over a table's key columns. Leaf payloads
// are the fixed-width key record followed by the 6-byte heap RID.
type Index struct {
	name      string
	table     *Table
	keyCols   []string
	keySchema *value.Schema
	codec     compress.Codec
	tree      *btree.Tree
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// KeyColumns returns the indexed column names (nil = all).
func (ix *Index) KeyColumns() []string { return ix.keyCols }

// NumEntries returns the number of index entries.
func (ix *Index) NumEntries() int64 { return ix.tree.NumEntries() }

// ridSize is the encoded RID width (4-byte page + 2-byte slot).
const ridSize = 6

// encodeEntry builds the (search key, payload) pair for a row.
func (ix *Index) encodeEntry(row value.Row, rid heap.RID) (key, payload []byte, err error) {
	krow := ix.projectRow(row)
	key, err = value.EncodeKey(ix.keySchema, krow, nil)
	if err != nil {
		return nil, nil, err
	}
	payload, err = value.EncodeRecord(ix.keySchema, krow, nil)
	if err != nil {
		return nil, nil, err
	}
	payload = append(payload,
		byte(rid.Page), byte(rid.Page>>8), byte(rid.Page>>16), byte(rid.Page>>24),
		byte(rid.Slot), byte(rid.Slot>>8))
	return key, payload, nil
}

// decodeRID extracts the RID suffix from a payload.
func decodeRID(payload []byte) heap.RID {
	s := payload[len(payload)-ridSize:]
	return heap.RID{
		Page: uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24,
		Slot: uint16(s[4]) | uint16(s[5])<<8,
	}
}

// projectRow extracts the key columns from a full row.
func (ix *Index) projectRow(row value.Row) value.Row {
	if len(ix.keyCols) == 0 {
		return row
	}
	out := make(value.Row, len(ix.keyCols))
	for i, name := range ix.keyCols {
		pos, _ := ix.table.schema.ColumnIndex(name)
		out[i] = row[pos]
	}
	return out
}

// insertEntry maintains the tree for one new row.
func (ix *Index) insertEntry(row value.Row, rid heap.RID) error {
	key, payload, err := ix.encodeEntry(row, rid)
	if err != nil {
		return err
	}
	return ix.tree.Insert(key, payload)
}

// deleteEntry maintains the tree for one removed row.
func (ix *Index) deleteEntry(row value.Row, rid heap.RID) error {
	key, payload, err := ix.encodeEntry(row, rid)
	if err != nil {
		return err
	}
	found, err := ix.tree.DeleteMatching(key, payload)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("db: index %s out of sync: entry for %v missing", ix.name, rid)
	}
	return nil
}

// Lookup returns the RIDs of all rows whose key columns equal keyRow.
func (ix *Index) Lookup(keyRow value.Row) ([]heap.RID, error) {
	key, err := value.EncodeKey(ix.keySchema, keyRow, nil)
	if err != nil {
		return nil, err
	}
	var rids []heap.RID
	err = ix.tree.Ascend(key, func(k, payload []byte) bool {
		if !bytes.Equal(k, key) {
			return false
		}
		rids = append(rids, decodeRID(payload))
		return true
	})
	return rids, err
}

// EstimateCF runs SampleCF against the live table for this index's key
// columns, using the given codec (nil = the codec declared at CreateIndex).
func (ix *Index) EstimateCF(codec compress.Codec, fraction float64, seed uint64) (core.Estimate, error) {
	if codec == nil {
		codec = ix.codec
	}
	if codec == nil {
		return core.Estimate{}, fmt.Errorf("db: index %s has no codec; pass one", ix.name)
	}
	return core.SampleCF(ix.table, ix.table.schema, core.Options{
		Fraction:   fraction,
		Codec:      codec,
		KeyColumns: ix.keyCols,
		Seed:       seed,
		PageSize:   ix.table.db.pageSize,
	})
}

// ExactCF compresses the index's actual leaf records (RID suffixes
// excluded, matching the paper's model) and returns the true result.
func (ix *Index) ExactCF(codec compress.Codec) (compress.Result, error) {
	if codec == nil {
		codec = ix.codec
	}
	if codec == nil {
		return compress.Result{}, fmt.Errorf("db: index %s has no codec; pass one", ix.name)
	}
	sess, err := codec.NewSession(ix.keySchema)
	if err != nil {
		return compress.Result{}, err
	}
	err = ix.tree.LeafPages(func(_ uint32, p *page.Page) error {
		_, payloads, err := btree.LeafEntries(p)
		if err != nil {
			return err
		}
		recs := make([][]byte, len(payloads))
		for i, pl := range payloads {
			if len(pl) < ridSize {
				return fmt.Errorf("db: index %s: malformed payload", ix.name)
			}
			recs[i] = pl[:len(pl)-ridSize]
		}
		return sess.AddPage(recs)
	})
	if err != nil {
		return compress.Result{}, err
	}
	return sess.Finish()
}
