package db

import (
	"errors"
	"fmt"
	"testing"

	"samplecf/internal/catalog"
	"samplecf/internal/heap"
	"samplecf/internal/value"
)

func testSchema(t *testing.T) *value.Schema {
	t.Helper()
	schema, err := value.NewSchema(
		value.Column{Name: "name", Type: value.Char(12)},
		value.Column{Name: "v", Type: value.Int32()},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func testRow(i int) value.Row {
	return value.Row{value.StringValue(fmt.Sprintf("row-%03d", i%50)), value.IntValue(int32(i))}
}

func TestTableEpochBumpsOnMutation(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("t", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", tab.Epoch())
	}
	rid, err := tab.Insert(testRow(1))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Epoch() != 1 {
		t.Fatalf("epoch after insert = %d, want 1", tab.Epoch())
	}
	if _, err := tab.Insert(testRow(2)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if tab.Epoch() != 3 {
		t.Fatalf("epoch after insert+insert+delete = %d, want 3", tab.Epoch())
	}
	// Failed mutations must not bump.
	before := tab.Epoch()
	if err := tab.Delete(rid); err == nil {
		t.Fatal("double delete succeeded")
	}
	if tab.Epoch() != before {
		t.Fatalf("failed delete bumped epoch %d -> %d", before, tab.Epoch())
	}
	if tab.InstanceID() == 0 {
		t.Fatal("instance id not assigned")
	}
}

// TestDropTableInvalidatesRetainedHandles is the regression test for the
// bug where a dropped table stayed silently usable through any retained
// *Table: inserts kept writing to orphaned storage and estimates kept
// answering from it.
func TestDropTableInvalidatesRetainedHandles(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("t", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	rid0, err := tab.Insert(testRow(1))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := tab.CreateIndex("ix", []string{"name"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DropTable("t"); err != nil {
		t.Fatal(err)
	}

	if _, err := tab.Insert(testRow(2)); !errors.Is(err, ErrTableDropped) {
		t.Fatalf("Insert after drop: err = %v, want ErrTableDropped", err)
	}
	if err := tab.Delete(rid0); !errors.Is(err, ErrTableDropped) {
		t.Fatalf("Delete after drop: err = %v, want ErrTableDropped", err)
	}
	if _, err := tab.Get(rid0); !errors.Is(err, ErrTableDropped) {
		t.Fatalf("Get after drop: err = %v, want ErrTableDropped", err)
	}
	if _, err := tab.Row(0); !errors.Is(err, ErrTableDropped) {
		t.Fatalf("Row after drop: err = %v, want ErrTableDropped", err)
	}
	if err := tab.Scan(func(int64, value.Row) error { return nil }); !errors.Is(err, ErrTableDropped) {
		t.Fatalf("Scan after drop: err = %v, want ErrTableDropped", err)
	}
	if _, err := tab.CreateIndex("ix2", nil, nil); !errors.Is(err, ErrTableDropped) {
		t.Fatalf("CreateIndex after drop: err = %v, want ErrTableDropped", err)
	}
	if _, err := tab.PageSource(); !errors.Is(err, ErrTableDropped) {
		t.Fatalf("PageSource after drop: err = %v, want ErrTableDropped", err)
	}
	if _, err := tab.AsPageSource(4); !errors.Is(err, ErrTableDropped) {
		t.Fatalf("AsPageSource after drop: err = %v, want ErrTableDropped", err)
	}
	if _, ok := tab.MaintainedSample(1); ok {
		t.Fatal("MaintainedSample after drop reported ok")
	}
	if _, err := ix.Lookup(value.Row{value.StringValue("row-001")}); !errors.Is(err, ErrTableDropped) {
		t.Fatalf("index Lookup after drop: err = %v, want ErrTableDropped", err)
	}
	// Estimates through the index fail loudly too (sampling hits Row).
	if _, err := ix.EstimateCF(nil, 0.5, 1); err == nil {
		t.Fatal("EstimateCF after drop succeeded")
	}
	// A new table may reuse the name and must get a distinct identity.
	tab2, err := d.CreateTable("t", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if tab2.InstanceID() == tab.InstanceID() {
		t.Fatal("recreated table reuses the dropped table's instance id")
	}
}

func TestMaintainedSampleServesAndRebuilds(t *testing.T) {
	d := New(0, WithSampleTarget(64))
	tab, err := d.CreateTable("t", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	rids := make([]heap.RID, 0, 300)
	for i := 0; i < 300; i++ {
		rid, err := tab.Insert(testRow(i))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}

	s, ok := tab.MaintainedSample(64)
	if !ok {
		t.Fatal("maintained sample unavailable after 300 inserts")
	}
	if s.Arena.Len() != 64 {
		t.Fatalf("sample size = %d, want 64", s.Arena.Len())
	}
	if s.Epoch != tab.Epoch() {
		t.Fatalf("sample epoch %d != table epoch %d", s.Epoch, tab.Epoch())
	}
	// Asking for more rows than maintained falls back.
	if _, ok := tab.MaintainedSample(65); ok {
		t.Fatal("over-min request served")
	}

	// Heavy deletes erode the reservoir; the next request rebuilds.
	for i := 0; i < 280; i++ {
		if err := tab.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	_, rebuildsBefore := tab.SampleStats()
	s2, ok := tab.MaintainedSample(10)
	if !ok {
		t.Fatal("maintained sample unavailable after rebuild")
	}
	if s2.Arena.Len() < 10 || s2.Arena.Len() > 20 {
		t.Fatalf("rebuilt sample size = %d, want the 20 live rows (≥10)", s2.Arena.Len())
	}
	_, rebuildsAfter := tab.SampleStats()
	if rebuildsAfter != rebuildsBefore+1 {
		t.Fatalf("rebuilds %d -> %d, want one staleness-triggered rebuild", rebuildsBefore, rebuildsAfter)
	}
	if s2.Epoch != tab.Epoch() {
		t.Fatalf("rebuilt sample epoch %d != table epoch %d", s2.Epoch, tab.Epoch())
	}
}

func TestTableImplementsCatalogCapabilities(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("t", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := tab.Insert(testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	var ct catalog.Table = tab
	if ct.NumRows() != 500 {
		t.Fatalf("rows = %d", ct.NumRows())
	}
	row, err := ct.Row(123)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 2 {
		t.Fatalf("row = %v", row)
	}
	ps, err := tab.PageSource()
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumPages() < 1 {
		t.Fatal("no pages")
	}
	total := 0
	for p := 0; p < ps.NumPages(); p++ {
		rows, err := ps.PageRows(p)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rows)
	}
	if total != 500 {
		t.Fatalf("page rows total = %d, want 500", total)
	}
}
