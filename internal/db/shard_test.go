package db

import (
	"fmt"
	"testing"

	"samplecf/internal/value"
)

// shardTestSchema is a two-column schema: a CHAR partition key and an
// int32 payload.
func shardTestSchema(t *testing.T) *value.Schema {
	t.Helper()
	s, err := value.NewSchema(
		value.Column{Name: "k", Type: value.Char(8)},
		value.Column{Name: "v", Type: value.Int32()},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func shardRow(k string, v int32) value.Row {
	return value.Row{value.StringValue(k), value.IntValue(v)}
}

// TestShardSpecValidate pins the spec errors.
func TestShardSpecValidate(t *testing.T) {
	d := New(0)
	schema := shardTestSchema(t)
	cases := []struct {
		name string
		spec ShardSpec
	}{
		{"zero shards", ShardSpec{Shards: 0, Column: "k"}},
		{"missing column", ShardSpec{Shards: 2, Column: "nope"}},
		{"hash with bounds", ShardSpec{Shards: 2, Column: "k", Bounds: [][]byte{[]byte("m")}}},
		{"range bound count", ShardSpec{Shards: 3, Column: "k", By: ShardByRange, Bounds: [][]byte{[]byte("m")}}},
		{"range bounds unordered", ShardSpec{Shards: 3, Column: "k", By: ShardByRange,
			Bounds: [][]byte{[]byte("z"), []byte("a")}}},
		{"unknown strategy", ShardSpec{Shards: 2, Column: "k", By: "round-robin"}},
	}
	for _, tc := range cases {
		if _, err := d.CreateShardedTable("t_"+tc.name, schema, tc.spec); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestShardedHashRouting checks hash routing: SQL-equal keys co-locate,
// total rows add up, and every row is found where ShardFor says.
func TestShardedHashRouting(t *testing.T) {
	d := New(0)
	st, err := d.CreateShardedTable("t", shardTestSchema(t), ShardSpec{Shards: 4, Column: "k"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := st.Insert(shardRow(fmt.Sprintf("key%03d", i), int32(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st.NumRows() != 200 {
		t.Fatalf("NumRows = %d, want 200", st.NumRows())
	}
	var sum int64
	occupied := 0
	for s := 0; s < st.NumShards(); s++ {
		n := st.ShardRows(s)
		sum += n
		if n > 0 {
			occupied++
		}
	}
	if sum != 200 {
		t.Fatalf("shard rows sum to %d, want 200", sum)
	}
	if occupied < 2 {
		t.Fatalf("hash routing left %d of 4 shards occupied; want spread", occupied)
	}
	// Padded and unpadded CHAR payloads compare equal, so they must route
	// to the same shard.
	a, err := st.ShardFor(shardRow("abc", 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.ShardFor(shardRow("abc  ", 0))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("SQL-equal keys routed to shards %d and %d", a, b)
	}
}

// TestShardedRangeRouting checks range routing against the bound semantics
// (upper-exclusive, last shard catches the tail).
func TestShardedRangeRouting(t *testing.T) {
	d := New(0)
	st, err := d.CreateShardedTable("t", shardTestSchema(t), ShardSpec{
		Shards: 3, Column: "k", By: ShardByRange,
		Bounds: [][]byte{[]byte("h"), []byte("p")},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"apple": 0, "grape": 0, "h": 1, "melon": 1, "p": 2, "zebra": 2}
	for k, shard := range want {
		got, err := st.ShardFor(shardRow(k, 0))
		if err != nil {
			t.Fatal(err)
		}
		if got != shard {
			t.Errorf("ShardFor(%q) = %d, want %d", k, got, shard)
		}
	}
}

// TestShardedEpochIsolation pins the tentpole property at the storage
// layer: an insert bumps only the touched shard's epoch, the epoch vector
// reflects it, and the logical epoch (the vector sum) stays monotone.
func TestShardedEpochIsolation(t *testing.T) {
	d := New(0)
	st, err := d.CreateShardedTable("t", shardTestSchema(t), ShardSpec{
		Shards: 3, Column: "k", By: ShardByRange,
		Bounds: [][]byte{[]byte("h"), []byte("p")},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := st.EpochVector()
	logicalBefore := st.Epoch()
	if _, err := st.Insert(shardRow("apple", 1)); err != nil { // shard 0
		t.Fatal(err)
	}
	after := st.EpochVector()
	if after[0] == before[0] {
		t.Error("touched shard 0 epoch did not change")
	}
	if after[1] != before[1] || after[2] != before[2] {
		t.Errorf("untouched shard epochs moved: before %v after %v", before, after)
	}
	if st.Epoch() <= logicalBefore {
		t.Error("logical epoch must grow on any mutation")
	}
}

// TestShardedScanAndRow checks that Scan yields contiguous indices in
// shard order and Row(i) agrees with Scan's ordering.
func TestShardedScanAndRow(t *testing.T) {
	d := New(0)
	st, err := d.CreateShardedTable("t", shardTestSchema(t), ShardSpec{Shards: 3, Column: "k"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := st.Insert(shardRow(fmt.Sprintf("k%02d", i), int32(i))); err != nil {
			t.Fatal(err)
		}
	}
	var scanned []value.Row
	next := int64(0)
	err = st.Scan(func(i int64, row value.Row) error {
		if i != next {
			t.Fatalf("Scan index %d, want %d", i, next)
		}
		next++
		scanned = append(scanned, row.Clone())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(scanned)) != st.NumRows() {
		t.Fatalf("scanned %d rows, NumRows = %d", len(scanned), st.NumRows())
	}
	for i, want := range scanned {
		got, err := st.Row(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if value.CompareRows(st.Schema(), got, want) != 0 {
			t.Fatalf("Row(%d) disagrees with Scan order", i)
		}
	}
	// ShardScan indices are shard-local from zero and cover ShardRows.
	for s := 0; s < st.NumShards(); s++ {
		local := int64(0)
		err := st.ShardScan(s, func(i int64, _ value.Row) error {
			if i != local {
				t.Fatalf("shard %d local index %d, want %d", s, i, local)
			}
			local++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if local != st.ShardRows(s) {
			t.Fatalf("shard %d scanned %d rows, ShardRows = %d", s, local, st.ShardRows(s))
		}
	}
}

// TestShardedDeleteWhere checks predicate deletes across shards, the limit,
// and that a partition-column predicate leaves other shards' epochs alone.
func TestShardedDeleteWhere(t *testing.T) {
	d := New(0)
	st, err := d.CreateShardedTable("t", shardTestSchema(t), ShardSpec{Shards: 4, Column: "k"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := st.Insert(shardRow(fmt.Sprintf("k%02d", i%10), int32(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Non-partition predicate: v == 7 matches exactly one row.
	n, err := st.DeleteWhere("v", value.IntValue(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("DeleteWhere(v=7) deleted %d, want 1", n)
	}
	// Partition predicate: k == "k03" matches 4 rows, all in one shard;
	// the other shards' epochs must not move.
	owner, err := st.ShardFor(shardRow("k03", 0))
	if err != nil {
		t.Fatal(err)
	}
	before := st.EpochVector()
	n, err = st.DeleteWhere("k", value.StringValue("k03"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("limited DeleteWhere deleted %d, want 2", n)
	}
	after := st.EpochVector()
	for s := range after {
		if s == owner {
			if after[s] == before[s] {
				t.Errorf("owner shard %d epoch did not move", s)
			}
		} else if after[s] != before[s] {
			t.Errorf("untouched shard %d epoch moved on partition-column delete", s)
		}
	}
	if st.NumRows() != 40-1-2 {
		t.Fatalf("NumRows = %d, want 37", st.NumRows())
	}
}

// TestShardedNamespace checks registration: the logical name is listed and
// resolvable, shard children are not, name conflicts are rejected both
// ways, and drop kills every shard.
func TestShardedNamespace(t *testing.T) {
	d := New(0)
	schema := shardTestSchema(t)
	st, err := d.CreateShardedTable("t", schema, ShardSpec{Shards: 2, Column: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("t", schema); err == nil {
		t.Error("plain table over a sharded name must fail")
	}
	if _, err := d.CreateShardedTable("t", schema, ShardSpec{Shards: 2, Column: "k"}); err == nil {
		t.Error("duplicate sharded table must fail")
	}
	if _, ok := d.Table("t#0"); ok {
		t.Error("shard children must not be in the user namespace")
	}
	names := d.TableNames()
	if len(names) != 1 || names[0] != "t" {
		t.Errorf("TableNames = %v, want [t]", names)
	}
	if got, ok := d.LookupTable("t"); !ok || got.(*ShardedTable) != st {
		t.Error("LookupTable must resolve the sharded table")
	}

	shard0 := st.ShardTable(0)
	if err := d.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert(shardRow("a", 1)); err == nil {
		t.Error("insert into dropped sharded table must fail")
	}
	if _, err := shard0.Insert(shardRow("a", 1)); err == nil {
		t.Error("retained shard handle must be dropped too")
	}
	if _, ok := d.ShardedTable("t"); ok {
		t.Error("dropped table still resolvable")
	}
	// The name is reusable after the drop.
	if _, err := d.CreateShardedTable("t", schema, ShardSpec{Shards: 2, Column: "k"}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleShardBehavesLikePlain checks the N=1 degenerate case: one
// shard holds everything, routing is constant, and the epoch vector has
// one entry.
func TestSingleShardBehavesLikePlain(t *testing.T) {
	d := New(0)
	st, err := d.CreateShardedTable("t", shardTestSchema(t), ShardSpec{Shards: 1, Column: "k"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := st.Insert(shardRow(fmt.Sprintf("k%02d", i), int32(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st.ShardRows(0) != 20 || st.NumRows() != 20 {
		t.Fatalf("single shard holds %d of %d rows", st.ShardRows(0), st.NumRows())
	}
	if v := st.EpochVector(); len(v) != 1 {
		t.Fatalf("EpochVector length %d, want 1", len(v))
	}
	s, err := st.ShardFor(shardRow("anything", 0))
	if err != nil || s != 0 {
		t.Fatalf("ShardFor = %d, %v; want 0, nil", s, err)
	}
}
