package db

import (
	"fmt"
	"testing"

	"samplecf/internal/value"
)

func TestLookupFindsAllDuplicates(t *testing.T) {
	d := New(4096)
	tab, err := d.CreateTable("t", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	const names = 300
	const rows = 60000
	for i := 0; i < rows; i++ {
		name := fmt.Sprintf("city-%03d", i%names)
		if _, err := tab.Insert(value.Row{value.StringValue(name), value.IntValue(int32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := tab.CreateIndex("ix", []string{"name"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < names; v++ {
		rids, err := ix.Lookup(value.Row{value.StringValue(fmt.Sprintf("city-%03d", v))})
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != rows/names {
			t.Errorf("city %d: %d rids, want %d", v, len(rids), rows/names)
			if v > 3 {
				t.FailNow()
			}
		}
	}
}
