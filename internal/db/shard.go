package db

import (
	"fmt"
	"sort"

	"samplecf/internal/catalog"
	"samplecf/internal/core"
	"samplecf/internal/heap"
	"samplecf/internal/value"
)

// ShardBy enumerates the partitioning strategies a ShardSpec can select.
const (
	// ShardByHash routes a row by FNV-1a over the partition column's
	// SQL-normalized payload (CHAR padding trimmed), modulo shard count.
	ShardByHash = "hash"
	// ShardByRange routes a row by binary search over ascending
	// upper-exclusive bounds; rows at or above the last bound land in the
	// final shard.
	ShardByRange = "range"
)

// ShardSpec describes how a sharded table partitions rows.
type ShardSpec struct {
	// Shards is the partition count, >= 1.
	Shards int
	// Column names the partition column.
	Column string
	// By selects the strategy: ShardByHash (default) or ShardByRange.
	By string
	// Bounds holds, for range partitioning, the Shards-1 ascending
	// upper-exclusive bounds as column payloads: shard i receives rows
	// with value < Bounds[i] (and >= Bounds[i-1]).
	Bounds [][]byte
}

// validate checks the spec against the table schema and returns the
// partition column's position and type.
func (s ShardSpec) validate(schema *value.Schema) (pos int, typ value.Type, err error) {
	if s.Shards < 1 {
		return 0, typ, fmt.Errorf("db: shard count %d < 1", s.Shards)
	}
	pos, ok := schema.ColumnIndex(s.Column)
	if !ok {
		return 0, typ, fmt.Errorf("db: no shard column %q", s.Column)
	}
	typ = schema.Column(pos).Type
	switch s.By {
	case "", ShardByHash:
		if len(s.Bounds) != 0 {
			return 0, typ, fmt.Errorf("db: hash sharding takes no bounds")
		}
	case ShardByRange:
		if len(s.Bounds) != s.Shards-1 {
			return 0, typ, fmt.Errorf("db: range sharding over %d shards needs %d bounds, got %d",
				s.Shards, s.Shards-1, len(s.Bounds))
		}
		for i := 1; i < len(s.Bounds); i++ {
			if value.CompareValues(typ, s.Bounds[i-1], s.Bounds[i]) >= 0 {
				return 0, typ, fmt.Errorf("db: range bounds must be strictly ascending at index %d", i)
			}
		}
	default:
		return 0, typ, fmt.Errorf("db: unknown shard strategy %q", s.By)
	}
	return pos, typ, nil
}

// ShardedTable partitions a logical table across Shards independent heap
// tables. Each shard owns its storage, lock, maintained sample, version
// epoch, and (when the database enables snapshots) its own copy-on-write
// row snapshot, so a mutation bumps only the touched shard: derived state
// keyed on the other shards' epochs stays valid, and readers of the other
// shards keep their lock-free views. The logical table's own Epoch is
// the sum of shard epochs — monotone, since shard epochs only grow — and
// EpochVector exposes the per-shard epochs for vector-keyed caches
// (catalog.Sharded).
type ShardedTable struct {
	// version supplies only the logical table's InstanceID; the epoch it
	// carries is unused (Epoch is derived from the shards), so it is a
	// named field rather than embedded.
	version catalog.Version
	db      *Database
	name    string
	schema  *value.Schema
	spec    ShardSpec
	colPos  int
	colType value.Type
	shards  []*Table
}

var _ catalog.Table = (*ShardedTable)(nil)
var _ catalog.Sharded = (*ShardedTable)(nil)
var _ core.RowScanner = (*ShardedTable)(nil)
var _ core.ShardScanner = (*ShardedTable)(nil)

// CreateShardedTable registers a table partitioned per spec. Shard children
// are full heap tables named "name#i" but live outside the user namespace:
// only the logical name is listed and resolvable.
func (d *Database) CreateShardedTable(name string, schema *value.Schema, spec ShardSpec) (*ShardedTable, error) {
	colPos, colType, err := spec.validate(schema)
	if err != nil {
		return nil, err
	}
	if spec.By == "" {
		spec.By = ShardByHash
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkNameFreeLocked(name); err != nil {
		return nil, err
	}
	st := &ShardedTable{
		version: catalog.NewVersion(),
		db:      d,
		name:    name,
		schema:  schema,
		spec:    spec,
		colPos:  colPos,
		colType: colType,
		shards:  make([]*Table, spec.Shards),
	}
	for i := range st.shards {
		st.shards[i], err = d.newTable(fmt.Sprintf("%s#%d", name, i), schema)
		if err != nil {
			return nil, err
		}
	}
	d.sharded[name] = st
	return st, nil
}

// ShardedTable returns a sharded table by name.
func (d *Database) ShardedTable(name string) (*ShardedTable, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	st, ok := d.sharded[name]
	return st, ok
}

// LookupTable resolves a name to its live table, plain or sharded.
func (d *Database) LookupTable(name string) (catalog.Table, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if t, ok := d.tables[name]; ok {
		return t, true
	}
	if st, ok := d.sharded[name]; ok {
		return st, true
	}
	return nil, false
}

// markDropped drops every shard.
func (st *ShardedTable) markDropped() {
	for _, s := range st.shards {
		s.markDropped()
	}
}

// Name implements catalog.Table.
func (st *ShardedTable) Name() string { return st.name }

// Schema implements catalog.Table.
func (st *ShardedTable) Schema() *value.Schema { return st.schema }

// InstanceID implements catalog.Table: the logical table's own identity,
// distinct from every shard's.
func (st *ShardedTable) InstanceID() uint64 { return st.version.InstanceID() }

// Epoch implements catalog.Table as the sum of shard epochs. Shard epochs
// only grow, so the sum is monotone: any mutation anywhere changes it,
// which keeps whole-table cache keys correct, while per-shard consumers
// use EpochVector to keep untouched shards' entries alive.
func (st *ShardedTable) Epoch() uint64 {
	var sum uint64
	for _, s := range st.shards {
		sum += s.Epoch()
	}
	return sum
}

// NumRows implements catalog.Table.
func (st *ShardedTable) NumRows() int64 {
	var n int64
	for _, s := range st.shards {
		n += s.NumRows()
	}
	return n
}

// Spec returns the partitioning spec.
func (st *ShardedTable) Spec() ShardSpec { return st.spec }

// NumShards implements catalog.Sharded.
func (st *ShardedTable) NumShards() int { return len(st.shards) }

// Shard implements catalog.Sharded: shard i as a full table (it also
// satisfies the catalog sample/page capabilities, so estimation treats a
// shard exactly like a plain table).
func (st *ShardedTable) Shard(i int) catalog.Table { return st.shards[i] }

// ShardTable returns shard i with its concrete type.
func (st *ShardedTable) ShardTable(i int) *Table { return st.shards[i] }

// EpochVector implements catalog.Sharded: the per-shard epochs, indexed by
// shard. Each element is read atomically; the vector as a whole is not a
// consistent snapshot across concurrent mutations, which is fine for cache
// keying — a torn read only produces a key no one else writes.
func (st *ShardedTable) EpochVector() []uint64 {
	out := make([]uint64, len(st.shards))
	for i, s := range st.shards {
		out[i] = s.Epoch()
	}
	return out
}

// fnv1a is FNV-1a over one payload (inline to keep routing allocation-free).
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// ShardFor returns the shard index a row routes to.
func (st *ShardedTable) ShardFor(row value.Row) (int, error) {
	if len(row) != st.schema.NumColumns() {
		return 0, fmt.Errorf("db: row has %d columns, schema has %d", len(row), st.schema.NumColumns())
	}
	v := row[st.colPos]
	if st.spec.By == ShardByRange {
		// First shard whose upper-exclusive bound exceeds the value; rows
		// at or beyond the last bound fall into the final shard.
		return sort.Search(len(st.spec.Bounds), func(i int) bool {
			return value.CompareValues(st.colType, v, st.spec.Bounds[i]) < 0
		}), nil
	}
	// Hash SQL-normalized bytes so values that compare equal co-locate
	// (CHAR ignores trailing padding).
	return int(fnv1a(value.TrimPadding(st.colType, v)) % uint64(len(st.shards))), nil
}

// Insert routes the row to its shard; only that shard's epoch bumps.
func (st *ShardedTable) Insert(row value.Row) (heap.RID, error) {
	s, err := st.ShardFor(row)
	if err != nil {
		return heap.RID{}, err
	}
	return st.shards[s].Insert(row)
}

// DeleteWhere removes up to limit rows whose column equals val across all
// shards (limit <= 0 means all matches), returning the number deleted.
// When the predicate column is the partition column, only the owning
// shard(s) are touched, so the other shards' epochs stay put.
func (st *ShardedTable) DeleteWhere(column string, val []byte, limit int) (int, error) {
	total := 0
	for _, s := range st.shards {
		remaining := 0
		if limit > 0 {
			remaining = limit - total
			if remaining <= 0 {
				break
			}
		}
		if column == st.spec.Column {
			// Partition-column predicate: skip shards that cannot hold the
			// value instead of scanning (and epoch-checking) them.
			probe := make(value.Row, st.schema.NumColumns())
			probe[st.colPos] = val
			if owner, err := st.ShardFor(probe); err == nil && st.shards[owner] != s {
				continue
			}
		}
		n, err := s.DeleteWhere(column, val, remaining)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Scan implements core.RowScanner: shards in order, rows in shard heap
// order, with contiguous global indices. Row(i) uses the same order.
func (st *ShardedTable) Scan(fn func(i int64, row value.Row) error) error {
	base := int64(0)
	for _, s := range st.shards {
		n := int64(0)
		err := s.Scan(func(i int64, row value.Row) error {
			n = i + 1
			return fn(base+i, row)
		})
		if err != nil {
			return err
		}
		base += n
	}
	return nil
}

// Row implements catalog.Table: random access by global index, mapped to a
// shard via prefix sums. Concurrent mutations can move the boundaries
// between the count snapshot and the shard read; like Table.Row under
// churn, the result is simply some valid row near the requested position.
func (st *ShardedTable) Row(i int64) (value.Row, error) {
	if i < 0 {
		return nil, fmt.Errorf("db: row index %d out of range", i)
	}
	for _, s := range st.shards {
		n := s.NumRows()
		if i < n {
			return s.Row(i)
		}
		i -= n
	}
	return nil, fmt.Errorf("db: row index beyond table")
}

// ShardRows implements core.ShardScanner.
func (st *ShardedTable) ShardRows(s int) int64 { return st.shards[s].NumRows() }

// ShardScan implements core.ShardScanner: shard-local scan with indices
// from 0. Each shard holds only its own lock, so per-shard scans run
// concurrently.
func (st *ShardedTable) ShardScan(s int, fn func(i int64, row value.Row) error) error {
	return st.shards[s].Scan(fn)
}
