package db

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"samplecf/internal/heap"
	"samplecf/internal/obs"
	"samplecf/internal/value"
)

func fillRows(t testing.TB, tab *Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		row := value.Row{
			value.StringValue(fmt.Sprintf("name-%04d", i)),
			value.IntValue(int32(i)),
		}
		if _, err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotTracksInserts(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	s0, err := tab.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s0.NumRows() != 0 || s0.Epoch() != 0 {
		t.Fatalf("empty snapshot: rows=%d epoch=%d", s0.NumRows(), s0.Epoch())
	}
	fillRows(t, tab, 100)
	s1, err := tab.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s1.NumRows() != 100 || s1.Epoch() != tab.Epoch() {
		t.Fatalf("snapshot rows=%d epoch=%d, table epoch=%d", s1.NumRows(), s1.Epoch(), tab.Epoch())
	}
	// The pinned earlier view is immutable: still zero rows.
	if s0.NumRows() != 0 {
		t.Fatalf("pinned snapshot grew to %d rows", s0.NumRows())
	}
	// Snapshot rows match the heap scan, row for row, byte for byte.
	i := int64(0)
	err = tab.file.Scan(func(_ heap.RID, row value.Row) error {
		got, err := s1.Row(i)
		if err != nil {
			return err
		}
		for c := range row {
			if string(got[c]) != string(row[c]) {
				return fmt.Errorf("row %d col %d: snapshot %q != heap %q", i, c, got[c], row[c])
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotInsertPublishesWithoutRebuild pins the cost model: the
// append-only insert path extends the mirror and publishes every time, and
// never falls back to the O(n) rebuild scan. (A regression here is
// invisible to correctness tests — readers rebuild and see the right rows —
// but it reintroduces the write-lock stall snapshots exist to remove.)
func TestSnapshotInsertPublishesWithoutRebuild(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	pub0, _ := obs.Default().Value("samplecf_db_snapshots_published_total")
	reb0, _ := obs.Default().Value("samplecf_db_snapshot_rebuilds_total")
	const n = 100
	fillRows(t, tab, n)
	pub1, _ := obs.Default().Value("samplecf_db_snapshots_published_total")
	reb1, _ := obs.Default().Value("samplecf_db_snapshot_rebuilds_total")
	if got := pub1 - pub0; got != n {
		t.Errorf("%d inserts published %v snapshots, want %d", n, got, n)
	}
	if got := reb1 - reb0; got != 0 {
		t.Errorf("%d inserts triggered %v rebuild scans, want 0", n, got)
	}
	s, err := tab.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != n || s.Epoch() != tab.Epoch() {
		t.Fatalf("published snapshot rows=%d epoch=%d, want %d@%d", s.NumRows(), s.Epoch(), n, tab.Epoch())
	}
}

func TestSnapshotRebuildAfterDelete(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	fillRows(t, tab, 50)
	rid, err := tab.Insert(value.Row{value.StringValue("victim"), value.IntValue(999)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Delete(rid); err != nil {
		t.Fatal(err)
	}
	// Delete invalidated the published view; the accessor rebuilds.
	s, err := tab.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 50 {
		t.Fatalf("rebuilt snapshot has %d rows, want 50", s.NumRows())
	}
	if s.Epoch() != tab.Epoch() {
		t.Fatalf("rebuilt snapshot epoch %d != table epoch %d", s.Epoch(), tab.Epoch())
	}
	// Inserts after the rebuild go back to the append-only publish path.
	fillRows(t, tab, 10)
	s2, err := tab.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumRows() != 60 || s2.Epoch() != tab.Epoch() {
		t.Fatalf("post-rebuild snapshot rows=%d epoch=%d", s2.NumRows(), s2.Epoch())
	}
}

func TestSnapshotsDisabled(t *testing.T) {
	d := New(0, WithSnapshots(false))
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	fillRows(t, tab, 10)
	if _, err := tab.Snapshot(); err != ErrSnapshotsDisabled {
		t.Fatalf("Snapshot() err = %v, want ErrSnapshotsDisabled", err)
	}
	if _, _, err := tab.SnapshotRows(); err != ErrSnapshotsDisabled {
		t.Fatalf("SnapshotRows() err = %v, want ErrSnapshotsDisabled", err)
	}
	// The locked read paths still serve.
	if tab.NumRows() != 10 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	row, err := tab.Row(3)
	if err != nil || len(row) != 2 {
		t.Fatalf("Row: %v %v", row, err)
	}
}

func TestSnapshotDroppedTable(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	fillRows(t, tab, 5)
	if err := d.DropTable("items"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Snapshot(); err != ErrTableDropped {
		t.Fatalf("Snapshot() on dropped table err = %v, want ErrTableDropped", err)
	}
}

// TestSnapshotConcurrentReadsAndWrites is the -race publication suite: a
// writer goroutine inserting (and occasionally deleting) while reader
// goroutines scan, fetch rows, and pin snapshots. Every pinned snapshot
// must be internally consistent — NumRows() rows readable, no torn arena —
// and its epoch must never exceed the table's.
func TestSnapshotConcurrentReadsAndWrites(t *testing.T) {
	d := New(0)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	fillRows(t, tab, 64)

	const writerOps = 400
	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < writerOps; i++ {
			row := value.Row{
				value.StringValue(fmt.Sprintf("live-%04d", i)),
				value.IntValue(int32(i)),
			}
			if _, err := tab.Insert(row); err != nil {
				t.Error(err)
				return
			}
			if i%97 == 96 {
				// Exercise the invalidate+rebuild path mid-stream.
				if _, err := tab.DeleteWhere("qty", value.IntValue(int32(i)), 1); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !stop.Load() {
				s, err := tab.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				n := s.NumRows()
				if n < 63 {
					t.Errorf("snapshot shrank to %d rows", n)
					return
				}
				if s.Epoch() > tab.Epoch() {
					t.Errorf("snapshot epoch %d ahead of table epoch %d", s.Epoch(), tab.Epoch())
					return
				}
				// Every row of the pinned view decodes; spot-decode a stride.
				for i := int64(g); i < n; i += 7 {
					row, err := s.Row(i)
					if err != nil {
						t.Errorf("snapshot row %d/%d: %v", i, n, err)
						return
					}
					if len(row) != 2 || len(row[0]) == 0 {
						t.Errorf("snapshot row %d torn: %v", i, row)
						return
					}
				}
				// The lock-free table reads stay well-formed too.
				if err := tab.Scan(func(_ int64, row value.Row) error {
					if len(row) != 2 {
						return fmt.Errorf("scan row torn: %v", row)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiesced: the final snapshot agrees with storage exactly.
	s, err := tab.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != tab.file.NumRows() {
		t.Fatalf("final snapshot %d rows, heap %d", s.NumRows(), tab.file.NumRows())
	}
	if s.Epoch() != tab.Epoch() {
		t.Fatalf("final snapshot epoch %d != table epoch %d", s.Epoch(), tab.Epoch())
	}
}
