package db

import (
	"fmt"
	"testing"

	"samplecf/internal/core"
	"samplecf/internal/stats"
	"samplecf/internal/value"
)

func TestHeapPagesBlockSampling(t *testing.T) {
	d := New(4096)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	// Clustered-ish insert order: long runs of equal names.
	const perName = 500
	const names = 40
	for v := 0; v < names; v++ {
		name := fmt.Sprintf("name-%03d", v)
		for i := 0; i < perName; i++ {
			if _, err := tab.Insert(value.Row{value.StringValue(name), value.IntValue(int32(i))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	pages, err := tab.AsPageSource(16)
	if err != nil {
		t.Fatal(err)
	}
	if pages.NumPages() < 10 {
		t.Fatalf("expected many pages, got %d", pages.NumPages())
	}
	// Every page decodes to full rows.
	rows, err := pages.PageRows(0)
	if err != nil || len(rows) == 0 {
		t.Fatalf("PageRows: %d rows, %v", len(rows), err)
	}
	if len(rows[0]) != 2 {
		t.Fatalf("row arity %d", len(rows[0]))
	}
	// Block sampling via SampleCF over real heap pages.
	codec := mustCodec(t, "nullsuppression")
	est, err := core.SampleCF(tab, tab.Schema(), core.Options{
		Fraction:   0.05,
		Method:     core.MethodBlock,
		Pages:      pages,
		Codec:      codec,
		KeyColumns: []string{"name"},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Truth: every name is 8 chars in CHAR(20): CF = 9/20.
	if re := stats.RatioError(est.CF, 9.0/20.0); re > 1.02 {
		t.Fatalf("block-sampled CF %v vs 0.45 (ratio %v)", est.CF, re)
	}
	// The pool observed the page reads.
	st := pages.PoolStats()
	if st.Misses == 0 {
		t.Fatal("buffer pool saw no traffic")
	}
	if _, err := tab.AsPageSource(0); err == nil {
		t.Fatal("pool size 0 accepted")
	}
}

func TestHeapPagesDictBlockVsRow(t *testing.T) {
	// Reproduces the E7 insight on REAL heap pages: for the global dict
	// model on clustered data, block sampling beats row sampling.
	d := New(4096)
	tab, err := d.CreateTable("items", itemsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	const perName = 200
	const names = 100 // d = 100, n = 20000: mid-cardinality
	for v := 0; v < names; v++ {
		name := fmt.Sprintf("name-%04d", v)
		for i := 0; i < perName; i++ {
			if _, err := tab.Insert(value.Row{value.StringValue(name), value.IntValue(int32(i))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	pages, err := tab.AsPageSource(8)
	if err != nil {
		t.Fatal(err)
	}
	codec := mustCodec(t, "globaldict-p4")
	truth := 4.0/20.0 + float64(names)/float64(names*perName)

	var rowErr, blockErr stats.Accumulator
	for seed := uint64(0); seed < 10; seed++ {
		re, err := core.SampleCF(tab, tab.Schema(), core.Options{
			Fraction: 0.02, Codec: codec, KeyColumns: []string{"name"}, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		rowErr.Add(stats.RatioError(re.CF, truth))
		be, err := core.SampleCF(tab, tab.Schema(), core.Options{
			Fraction: 0.02, Method: core.MethodBlock, Pages: pages,
			Codec: codec, KeyColumns: []string{"name"}, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		blockErr.Add(stats.RatioError(be.CF, truth))
	}
	if blockErr.Mean() >= rowErr.Mean() {
		t.Fatalf("block (%v) not better than row (%v) on clustered heap pages",
			blockErr.Mean(), rowErr.Mean())
	}
}
