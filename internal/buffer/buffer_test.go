package buffer

import (
	"fmt"
	"sync"
	"testing"

	"samplecf/internal/heap"
	"samplecf/internal/page"
)

// fillStore appends n pages, each holding one record identifying the page.
func fillStore(t testing.TB, n int) *heap.MemStore {
	t.Helper()
	st := heap.NewMemStore(page.MinSize)
	for i := 0; i < n; i++ {
		p := page.New(page.MinSize, uint64(i))
		if _, err := p.Insert([]byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestPoolReadThrough(t *testing.T) {
	st := fillStore(t, 4)
	pool := NewPool(st, 2)
	for i := 0; i < 4; i++ {
		pg, err := pool.Get(uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		rec, err := pg.Record(0)
		if err != nil || string(rec) != fmt.Sprintf("p%d", i) {
			t.Fatalf("page %d content %q %v", i, rec, err)
		}
	}
	s := pool.Stats()
	if s.Misses != 4 || s.Hits != 0 {
		t.Fatalf("stats %+v, want 4 misses", s)
	}
	if s.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", s.Evictions)
	}
}

func TestPoolHitsAndLRU(t *testing.T) {
	st := fillStore(t, 3)
	pool := NewPool(st, 2)
	mustGet := func(i uint32) {
		t.Helper()
		if _, err := pool.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(0) // miss, cache {0}
	mustGet(1) // miss, cache {0,1}
	mustGet(0) // hit, 0 MRU
	mustGet(2) // miss, evicts 1 (LRU)
	mustGet(0) // hit (still cached)
	mustGet(1) // miss (was evicted)
	s := pool.Stats()
	if s.Hits != 2 || s.Misses != 4 {
		t.Fatalf("stats %+v, want 2 hits / 4 misses", s)
	}
	if got := s.HitRate(); got != 2.0/6.0 {
		t.Fatalf("HitRate = %v", got)
	}
}

func TestPoolInvalidate(t *testing.T) {
	st := fillStore(t, 1)
	pool := NewPool(st, 2)
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	// Overwrite page 0 behind the pool's back.
	p := page.New(page.MinSize, 0)
	if _, err := p.Insert([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := st.Write(0, p); err != nil {
		t.Fatal(err)
	}
	// Without invalidation the stale copy is served.
	pg, err := pool.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := pg.Record(0); string(rec) != "p0" {
		t.Fatalf("expected stale copy, got %q", rec)
	}
	pool.Invalidate(0)
	pg, err = pool.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := pg.Record(0); string(rec) != "new" {
		t.Fatalf("after invalidate got %q", rec)
	}
	if pool.Len() != 1 {
		t.Fatalf("Len = %d", pool.Len())
	}
}

func TestPoolErrorPropagation(t *testing.T) {
	st := fillStore(t, 1)
	pool := NewPool(st, 1)
	if _, err := pool.Get(99); err == nil {
		t.Fatal("missing page did not error")
	}
}

func TestPoolConcurrentReaders(t *testing.T) {
	st := fillStore(t, 8)
	pool := NewPool(st, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pg, err := pool.Get(uint32((g + i) % 8))
				if err != nil {
					t.Error(err)
					return
				}
				if pg.NumRecords() != 1 {
					t.Error("bad page")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := pool.Stats()
	if s.Hits+s.Misses != 1600 {
		t.Fatalf("accesses = %d, want 1600", s.Hits+s.Misses)
	}
}

func TestPoolCapacityOne(t *testing.T) {
	st := fillStore(t, 2)
	pool := NewPool(st, 1)
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Get(1); err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 1 {
		t.Fatalf("Len = %d, want 1", pool.Len())
	}
}

func TestNewPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(_,0) did not panic")
		}
	}()
	NewPool(heap.NewMemStore(page.MinSize), 0)
}

func TestResetStats(t *testing.T) {
	st := fillStore(t, 1)
	pool := NewPool(st, 1)
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if s := pool.Stats(); s.Hits != 0 || s.Misses != 0 || s.Evictions != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
	if pool.Len() != 1 {
		t.Fatal("reset dropped cache contents")
	}
}
