// Package buffer implements a small LRU buffer pool over a heap.PageStore.
//
// The estimators themselves are storage-agnostic, but block-level sampling
// (experiment E7) and the physical-design advisor read pages through this
// pool so that page-access counts — the I/O cost model the paper's
// motivation section appeals to — are observable.
package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"samplecf/internal/heap"
	"samplecf/internal/page"
)

// Stats reports buffer pool effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns Hits / (Hits + Misses), or 0 when no accesses happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	pageNo uint32
	p      *page.Page
	lruEl  *list.Element
}

// Pool is a read-through LRU cache of pages. Pages returned by Get are
// shared and must be treated as read-only; writers should go directly to the
// store and call Invalidate.
type Pool struct {
	store    heap.PageStore
	capacity int

	mu      sync.Mutex
	entries map[uint32]*entry
	lru     *list.List // front = most recently used; values are *entry
	stats   Stats
}

// NewPool creates a pool caching up to capacity pages. It panics if
// capacity <= 0.
func NewPool(store heap.PageStore, capacity int) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: capacity %d must be positive", capacity))
	}
	return &Pool{
		store:    store,
		capacity: capacity,
		entries:  make(map[uint32]*entry, capacity),
		lru:      list.New(),
	}
}

// Get returns the page at pageNo, reading through to the store on a miss.
func (p *Pool) Get(pageNo uint32) (*page.Page, error) {
	p.mu.Lock()
	if e, ok := p.entries[pageNo]; ok {
		p.lru.MoveToFront(e.lruEl)
		p.stats.Hits++
		pg := e.p
		p.mu.Unlock()
		return pg, nil
	}
	p.stats.Misses++
	p.mu.Unlock()

	// Read outside the lock; concurrent misses on the same page are benign
	// (last one in wins the cache slot).
	pg, err := p.store.Read(pageNo)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[pageNo]; ok {
		// Someone else cached it while we read; prefer theirs.
		p.lru.MoveToFront(e.lruEl)
		return e.p, nil
	}
	for len(p.entries) >= p.capacity {
		tail := p.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*entry)
		p.lru.Remove(tail)
		delete(p.entries, victim.pageNo)
		p.stats.Evictions++
	}
	e := &entry{pageNo: pageNo, p: pg}
	e.lruEl = p.lru.PushFront(e)
	p.entries[pageNo] = e
	return pg, nil
}

// Invalidate drops the cached copy of pageNo, if any. Call after writing the
// page directly to the store.
func (p *Pool) Invalidate(pageNo uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[pageNo]; ok {
		p.lru.Remove(e.lruEl)
		delete(p.entries, pageNo)
	}
}

// Len returns the number of cached pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters (cache contents are kept).
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}
