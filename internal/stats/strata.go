package stats

import "math"

// Stratified composition: the Sampling Algebra rules for combining
// per-partition sample estimators into one table-level estimator. A
// sharded table's what-if estimate is computed per shard from that shard's
// own uniform sample; the shards are strata, and the table-level point
// estimate and variance compose from the per-stratum ones:
//
//	μ  = Σ w_h·μ_h / Σ w_h                (size-weighted mean)
//	σ² = Σ w_h²·σ_h² / (Σ w_h)²           (independent strata)
//
// with w_h = N_h/N the stratum's population share. The per-stratum draws
// are independent, so the cross terms vanish and the composed σ is what
// the adaptive loop's ±ε target checks against.

// Stratum is one partition's contribution to a stratified estimate.
type Stratum struct {
	// Weight is the stratum's population share w_h (N_h/N). Weights need
	// not sum to one; the composition normalizes by Σ w_h.
	Weight float64
	// Mean is the stratum's point estimate μ_h.
	Mean float64
	// SD is the stratum estimator's standard deviation σ_h.
	SD float64
}

// StratifiedMean composes the size-weighted point estimate Σw·μ/Σw.
// A single stratum passes through exactly: with one weight the ratio
// w·μ/w is computed as μ when w == 1, which is how the one-shard case
// stays bit-identical to the unsharded estimator.
func StratifiedMean(strata []Stratum) float64 {
	if len(strata) == 1 {
		// Exact passthrough: normalizing a single stratum by its own
		// weight must not round.
		return strata[0].Mean
	}
	var sum, wsum float64
	for _, s := range strata {
		sum += s.Weight * s.Mean
		wsum += s.Weight
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// StratifiedSD composes the standard deviation of the stratified mean:
// sqrt(Σ w²σ²)/Σw. Per-stratum draws are independent, so variances add
// with squared weights. A single stratum passes through exactly (the
// sqrt(σ²) round-trip is skipped), keeping the one-shard adaptive loop's
// confidence interval identical to the unsharded one.
func StratifiedSD(strata []Stratum) float64 {
	if len(strata) == 1 {
		return strata[0].SD
	}
	var varSum, wsum float64
	for _, s := range strata {
		varSum += s.Weight * s.Weight * s.SD * s.SD
		wsum += s.Weight
	}
	if wsum == 0 {
		return 0
	}
	return math.Sqrt(varSum) / wsum
}
