package stats

import (
	"math"
	"testing"
)

// TestStratifiedSingleStratumPassthrough pins the one-shard contract: a
// single stratum composes to exactly its own mean and SD, no rounding.
func TestStratifiedSingleStratumPassthrough(t *testing.T) {
	s := []Stratum{{Weight: 1, Mean: 0.123456789123456789, SD: 0.037281937}}
	if got := StratifiedMean(s); got != s[0].Mean {
		t.Errorf("StratifiedMean = %v, want exact %v", got, s[0].Mean)
	}
	if got := StratifiedSD(s); got != s[0].SD {
		t.Errorf("StratifiedSD = %v, want exact %v", got, s[0].SD)
	}
	// Passthrough must hold for any weight, since a lone stratum
	// normalizes by itself.
	s[0].Weight = 0.25
	if got := StratifiedMean(s); got != s[0].Mean {
		t.Errorf("StratifiedMean (w=0.25) = %v, want exact %v", got, s[0].Mean)
	}
}

// TestStratifiedMeanWeights checks the size-weighted composition against a
// hand-computed value and weight normalization.
func TestStratifiedMeanWeights(t *testing.T) {
	s := []Stratum{
		{Weight: 0.75, Mean: 0.4},
		{Weight: 0.25, Mean: 0.8},
	}
	want := 0.75*0.4 + 0.25*0.8
	if got := StratifiedMean(s); math.Abs(got-want) > 1e-15 {
		t.Errorf("StratifiedMean = %v, want %v", got, want)
	}
	// Unnormalized weights give the same answer.
	s2 := []Stratum{
		{Weight: 3, Mean: 0.4},
		{Weight: 1, Mean: 0.8},
	}
	if got := StratifiedMean(s2); math.Abs(got-want) > 1e-15 {
		t.Errorf("StratifiedMean (unnormalized) = %v, want %v", got, want)
	}
}

// TestStratifiedSDComposition checks σ = sqrt(Σw²σ²)/Σw and that equal
// strata with equal SDs compose below the per-stratum SD (the stratified
// variance reduction).
func TestStratifiedSDComposition(t *testing.T) {
	s := []Stratum{
		{Weight: 0.5, SD: 0.1},
		{Weight: 0.5, SD: 0.1},
	}
	want := math.Sqrt(0.25*0.01+0.25*0.01) / 1.0 // = 0.1/sqrt(2)
	if got := StratifiedSD(s); math.Abs(got-want) > 1e-15 {
		t.Errorf("StratifiedSD = %v, want %v", got, want)
	}
	if got := StratifiedSD(s); got >= 0.1 {
		t.Errorf("two equal strata should compose below a lone stratum's SD, got %v", got)
	}
	// A dominant stratum dominates the composed variance.
	skew := []Stratum{
		{Weight: 0.9, SD: 0.2},
		{Weight: 0.1, SD: 0.01},
	}
	wantSkew := math.Sqrt(0.81*0.04 + 0.01*0.0001)
	if got := StratifiedSD(skew); math.Abs(got-wantSkew) > 1e-15 {
		t.Errorf("StratifiedSD (skewed) = %v, want %v", got, wantSkew)
	}
}

// TestStratifiedEmptyAndZeroWeight covers the degenerate inputs.
func TestStratifiedEmptyAndZeroWeight(t *testing.T) {
	if got := StratifiedMean(nil); got != 0 {
		t.Errorf("StratifiedMean(nil) = %v", got)
	}
	if got := StratifiedSD(nil); got != 0 {
		t.Errorf("StratifiedSD(nil) = %v", got)
	}
	zero := []Stratum{{Weight: 0, Mean: 0.5, SD: 0.5}, {Weight: 0, Mean: 0.1, SD: 0.1}}
	if got := StratifiedMean(zero); got != 0 {
		t.Errorf("StratifiedMean(zero weights) = %v", got)
	}
	if got := StratifiedSD(zero); got != 0 {
		t.Errorf("StratifiedSD(zero weights) = %v", got)
	}
}
