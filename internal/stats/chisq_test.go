package stats

import (
	"math"
	"testing"
)

func TestChiSquaredStatistic(t *testing.T) {
	// Textbook die example: 120 rolls, observed vs uniform 20/cell.
	obs := []int64{15, 25, 20, 18, 22, 20}
	x2, df := ChiSquaredUniform(obs)
	want := (25.0 + 25 + 0 + 4 + 4 + 0) / 20
	if math.Abs(x2-want) > 1e-12 {
		t.Fatalf("X² = %v, want %v", x2, want)
	}
	if df != 5 {
		t.Fatalf("df = %d, want 5", df)
	}
}

func TestChiSquaredPValueCriticalPoints(t *testing.T) {
	// Standard critical values: P(X²_df >= crit) = alpha.
	cases := []struct {
		df    int
		crit  float64
		alpha float64
	}{
		{1, 3.841, 0.05},
		{5, 11.070, 0.05},
		{10, 18.307, 0.05},
		{10, 23.209, 0.01},
		{50, 67.505, 0.05},
	}
	for _, c := range cases {
		p := ChiSquaredPValue(c.crit, c.df)
		if math.Abs(p-c.alpha) > 0.001 {
			t.Errorf("P(X²_%d >= %v) = %v, want ~%v", c.df, c.crit, p, c.alpha)
		}
	}
}

func TestChiSquaredPValueEdges(t *testing.T) {
	if p := ChiSquaredPValue(0, 3); p != 1 {
		t.Fatalf("p(0) = %v, want 1", p)
	}
	if p := ChiSquaredPValue(1e4, 3); p > 1e-12 {
		t.Fatalf("p(huge) = %v, want ~0", p)
	}
	// Monotone decreasing in the statistic.
	prev := 1.1
	for x := 0.5; x < 30; x += 0.5 {
		p := ChiSquaredPValue(x, 7)
		if p >= prev {
			t.Fatalf("p-value not decreasing at x=%v: %v >= %v", x, p, prev)
		}
		prev = p
	}
}
