package stats

import (
	"math"
	"testing"
	"testing/quick"

	"samplecf/internal/rng"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if got := a.Mean(); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	// Sample variance of this classic set is 32/7.
	if got, want := a.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	a.Add(3)
	if a.Variance() != 0 {
		t.Fatal("single-value variance not zero")
	}
	if a.Min() != 3 || a.Max() != 3 {
		t.Fatal("single-value min/max wrong")
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var all, left, right Accumulator
		nl := r.Intn(50)
		nr := r.Intn(50) + 1
		for i := 0; i < nl; i++ {
			v := r.NormFloat64()*10 + 5
			all.Add(v)
			left.Add(v)
		}
		for i := 0; i < nr; i++ {
			v := r.NormFloat64()*2 - 3
			all.Add(v)
			right.Add(v)
		}
		left.Merge(&right)
		if left.N() != all.N() {
			return false
		}
		return math.Abs(left.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(left.Variance()-all.Variance()) < 1e-9 &&
			left.Min() == all.Min() && left.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanCI95Coverage(t *testing.T) {
	// The CI of the mean should cover the true mean ~95% of the time.
	r := rng.New(7)
	covered := 0
	const trials = 1000
	for trial := 0; trial < trials; trial++ {
		var a Accumulator
		for i := 0; i < 100; i++ {
			a.Add(r.NormFloat64()*3 + 10)
		}
		lo, hi := a.MeanCI95()
		if lo <= 10 && 10 <= hi {
			covered++
		}
	}
	if covered < 900 || covered > 990 {
		t.Fatalf("CI covered true mean %d/%d times", covered, trials)
	}
}

func TestRatioError(t *testing.T) {
	cases := []struct {
		est, truth, want float64
	}{
		{1, 1, 1},
		{2, 1, 2},
		{1, 2, 2},
		{0.5, 0.1, 5},
		{0.1, 0.5, 5},
	}
	for _, c := range cases {
		if got := RatioError(c.est, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RatioError(%v,%v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {math.NaN(), 1}} {
		if got := RatioError(bad[0], bad[1]); !math.IsInf(got, 1) {
			t.Errorf("RatioError(%v,%v) = %v, want +Inf", bad[0], bad[1], got)
		}
	}
}

func TestRatioErrorSymmetry(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a)+0.001, math.Abs(b)+0.001
		re := RatioError(a, b)
		return re >= 1 && math.Abs(re-RatioError(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile(sorted, -0.1) },
		func() { Quantile(sorted, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Quantile did not panic on bad input")
				}
			}()
			f()
		}()
	}
}

func TestSummarize(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	s := Summarize(vals)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary %+v", s)
	}
	if s.CI95Lo >= s.Mean || s.CI95Hi <= s.Mean {
		t.Fatalf("CI [%v,%v] does not bracket mean", s.CI95Lo, s.CI95Hi)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(v)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
	// -3 clamps to bin 0, 42 clamps to bin 4.
	want := []int64{3, 1, 1, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d = %d, want %d (all %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if c := h.BinCenter(0); c != 1 {
		t.Fatalf("BinCenter(0) = %v", c)
	}
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewHistogram did not panic")
				}
			}()
			f()
		}()
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset + small variance: naive sum-of-squares would lose all
	// precision; Welford must not.
	var a Accumulator
	r := rng.New(11)
	const offset = 1e9
	for i := 0; i < 100000; i++ {
		a.Add(offset + r.Float64())
	}
	if v := a.Variance(); math.Abs(v-1.0/12.0) > 0.01 {
		t.Fatalf("variance %v, want ≈1/12", v)
	}
}

// TestNormalQuantile pins Φ⁻¹ against standard reference values and basic
// symmetry; adaptive sampling derives its z multipliers from it.
func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.8413447460685429, 1}, // Φ(1)
		{0.90, 1.2815515655446004},
		{0.95, 1.6448536269514722},
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.9995, 3.2905267314919255},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.z) > 1e-8 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.z)
		}
		// Symmetry: Φ⁻¹(1-p) = -Φ⁻¹(p).
		if got := NormalQuantile(1 - c.p); math.Abs(got+c.z) > 1e-8 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", 1-c.p, got, -c.z)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("edge quantiles should be ±Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("out-of-domain quantiles should be NaN")
	}
}
