// Package stats provides the estimation-accuracy machinery the experiments
// report: streaming moment accumulators, quantile summaries, confidence
// intervals, and the paper's ratio-error metric.
package stats

import (
	"fmt"
	"math"
	"slices"
)

// Accumulator computes streaming mean/variance via Welford's algorithm,
// numerically stable across the millions of trials the experiments run.
// The zero value is ready to use.
type Accumulator struct {
	n          int64
	mean, m2   float64
	minV, maxV float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.minV, a.maxV = x, x
	} else {
		if x < a.minV {
			a.minV = x
		}
		if x > a.maxV {
			a.maxV = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 with < 2 observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Min returns the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 { return a.minV }

// Max returns the largest observation (0 if empty).
func (a *Accumulator) Max() float64 { return a.maxV }

// MeanCI95 returns the normal-approximation 95% confidence interval for the
// mean.
func (a *Accumulator) MeanCI95() (lo, hi float64) {
	half := 1.959964 * a.StdErr()
	return a.mean - half, a.mean + half
}

// Merge folds another accumulator into a (parallel-combine rule).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.minV < a.minV {
		a.minV = b.minV
	}
	if b.maxV > a.maxV {
		a.maxV = b.maxV
	}
	a.n, a.mean, a.m2 = n, mean, m2
}

// RatioError is the paper's accuracy metric: max(est/truth, truth/est).
// It is 1 for a perfect estimate and grows with error in either direction.
// Degenerate inputs (zero or negative values) yield +Inf, matching the
// metric's "estimator is useless here" reading.
func RatioError(est, truth float64) float64 {
	if est <= 0 || truth <= 0 || math.IsNaN(est) || math.IsNaN(truth) {
		return math.Inf(1)
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}

// NormalQuantile returns the standard normal quantile Φ⁻¹(p) for
// p ∈ (0,1) — the z value with P(Z ≤ z) = p — using Acklam's rational
// approximation (relative error < 1.15e-9 across the domain, refined to
// near machine precision by one Halley step). Confidence-driven sampling
// uses it to turn a requested confidence level into the z multiplier of a
// CI half-width: z = NormalQuantile(1 - α/2).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	// Coefficients of Acklam's approximation (central and tail regimes).
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var z float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		z = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		z = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		z = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement against erfc sharpens the tails.
	e := 0.5*math.Erfc(-z/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(z*z/2)
	return z - u/(1+z*u/2)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a sorted slice using
// linear interpolation. It panics on empty input or unsorted-looking q.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary condenses a batch of observations for experiment tables.
type Summary struct {
	N              int64
	Mean, StdDev   float64
	Min, Max       float64
	P50, P95, P99  float64
	CI95Lo, CI95Hi float64
}

// Summarize computes a Summary from values (which it sorts in place).
func Summarize(values []float64) Summary {
	var acc Accumulator
	for _, v := range values {
		acc.Add(v)
	}
	s := Summary{
		N:      acc.N(),
		Mean:   acc.Mean(),
		StdDev: acc.StdDev(),
		Min:    acc.Min(),
		Max:    acc.Max(),
	}
	s.CI95Lo, s.CI95Hi = acc.MeanCI95()
	if len(values) > 0 {
		slices.Sort(values)
		s.P50 = Quantile(values, 0.5)
		s.P95 = Quantile(values, 0.95)
		s.P99 = Quantile(values, 0.99)
	}
	return s
}

// ChiSquared returns Pearson's X² statistic for observed counts against
// expected counts (Σ (O-E)²/E). It panics on mismatched lengths and on a
// non-positive expectation, which indicates a malformed test design.
func ChiSquared(observed []int64, expected []float64) float64 {
	if len(observed) != len(expected) {
		panic(fmt.Sprintf("stats: chi-squared with %d observed vs %d expected cells",
			len(observed), len(expected)))
	}
	var x2 float64
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			panic(fmt.Sprintf("stats: chi-squared cell %d has expectation %v", i, e))
		}
		d := float64(o) - e
		x2 += d * d / e
	}
	return x2
}

// ChiSquaredUniform is ChiSquared against the uniform expectation
// (total/len cells); it returns the statistic and the degrees of freedom
// len-1.
func ChiSquaredUniform(observed []int64) (x2 float64, df int) {
	var total int64
	for _, o := range observed {
		total += o
	}
	expected := make([]float64, len(observed))
	for i := range expected {
		expected[i] = float64(total) / float64(len(observed))
	}
	return ChiSquared(observed, expected), len(observed) - 1
}

// ChiSquaredPValue returns P(X²_df ≥ x2), the upper tail of the
// chi-squared distribution with df degrees of freedom: the regularized
// upper incomplete gamma Q(df/2, x2/2).
func ChiSquaredPValue(x2 float64, df int) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: chi-squared with %d degrees of freedom", df))
	}
	if x2 <= 0 {
		return 1
	}
	return upperIncompleteGammaQ(float64(df)/2, x2/2)
}

// upperIncompleteGammaQ computes Q(a,x) = Γ(a,x)/Γ(a) using the series
// expansion for x < a+1 and the continued fraction otherwise (Numerical
// Recipes §6.2); both converge quickly for the chi-squared ranges tests
// use.
func upperIncompleteGammaQ(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-12
		tiny    = 1e-300
	)
	if x < a+1 {
		// P(a,x) by series, Q = 1 - P.
		ap := a
		sum := 1.0 / a
		del := sum
		for i := 0; i < maxIter; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*eps {
				break
			}
		}
		logP := -x + a*math.Log(x) - lgamma(a) + math.Log(sum)
		return 1 - math.Exp(logP)
	}
	// Q(a,x) by Lentz's continued fraction.
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lgamma(a)) * h
}

// lgamma wraps math.Lgamma, dropping the sign (arguments here are > 0).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); out-of-range
// observations clamp into the edge bins, so counts always total N.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	n      int64
}

// NewHistogram creates a histogram with the given bin count. It panics if
// bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: %d bins", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%v,%v)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.n++
}

// N returns the number of observations recorded.
func (h *Histogram) N() int64 { return h.n }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}
