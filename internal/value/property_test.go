package value

import (
	"bytes"
	"testing"
	"testing/quick"

	"samplecf/internal/rng"
)

// TestPropertyKeyEncodingOrderPreserving is the contract the B+-tree relies
// on: for ANY two rows under a mixed multi-column schema,
// bytes.Compare(EncodeKey(a), EncodeKey(b)) == CompareRows(a, b).
func TestPropertyKeyEncodingOrderPreserving(t *testing.T) {
	schema := MustSchema(
		Column{Name: "s", Type: Char(6)},
		Column{Name: "i", Type: Int32()},
		Column{Name: "b", Type: Int64()},
		Column{Name: "v", Type: VarChar(4)},
	)
	randRow := func(r *rng.RNG) Row {
		str := make([]byte, r.Intn(7))
		for i := range str {
			// Include bytes below AND above the space pad to stress the
			// padded-comparison semantics.
			str[i] = byte(0x1E + r.Intn(0x60))
		}
		vc := make([]byte, r.Intn(5))
		for i := range vc {
			vc[i] = byte(1 + r.Intn(255)) // avoid 0x00, the varchar pad
		}
		return Row{
			str,
			IntValue(int32(r.Uint32())),
			Int64Value(int64(r.Uint64())),
			vc,
		}
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a, b := randRow(r), randRow(r)
		ka, err := EncodeKey(schema, a, nil)
		if err != nil {
			return false
		}
		kb, err := EncodeKey(schema, b, nil)
		if err != nil {
			return false
		}
		keyCmp := bytes.Compare(ka, kb)
		rowCmp := CompareRows(schema, a, b)
		if keyCmp != rowCmp {
			t.Logf("seed %d: key order %d, row order %d\n a=%q\n b=%q", seed, keyCmp, rowCmp, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRecordRoundTrip: EncodeRecord/DecodeRecord are inverses for
// any valid row.
func TestPropertyRecordRoundTrip(t *testing.T) {
	schema := MustSchema(
		Column{Name: "s", Type: Char(10)},
		Column{Name: "i", Type: Int32()},
	)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		str := make([]byte, r.Intn(11))
		for i := range str {
			str[i] = byte('!' + r.Intn(90)) // printable, no trailing-pad ambiguity
		}
		// A CHAR payload ending in the pad byte is not round-trippable by
		// design (trailing pad is suppressed); normalize like storage does.
		str = bytes.TrimRight(str, " ")
		row := Row{str, IntValue(int32(r.Uint32()))}
		rec, err := EncodeRecord(schema, row, nil)
		if err != nil {
			return false
		}
		back, err := DecodeRecord(schema, rec)
		if err != nil {
			return false
		}
		return bytes.Equal(back[0], row[0]) && bytes.Equal(back[1], row[1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
