// Package value defines the logical type system used by the storage engine,
// the compression codecs, and the estimators.
//
// The paper's analytical model is a single CHAR(k) column; the engine
// nevertheless supports the small set of types a realistic index would hold
// (fixed and variable character data plus 32/64-bit integers) so that the
// "agnostic to the compression technique and schema" property of SampleCF is
// actually exercised rather than assumed.
//
// All columns are NOT NULL: the paper's "null suppression" refers to
// suppressing padding blanks/zeros inside values, not SQL NULLs, and modeling
// SQL NULLs would add bookkeeping without touching any estimation path.
package value

import (
	"fmt"
)

// Kind enumerates the supported logical type kinds.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it is never valid in a schema.
	KindInvalid Kind = iota
	// KindChar is a fixed-length character field padded with spaces,
	// CHAR(k) in SQL terms. Uncompressed storage always uses k bytes.
	KindChar
	// KindVarChar is a variable-length character field with a declared
	// maximum. The uncompressed index representation still reserves the
	// maximum (zero-padded), mirroring the paper's fixed-width model;
	// compression (null suppression) is what reclaims the padding.
	KindVarChar
	// KindInt32 is a 32-bit signed integer stored big-endian.
	KindInt32
	// KindInt64 is a 64-bit signed integer stored big-endian.
	KindInt64
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindChar:
		return "CHAR"
	case KindVarChar:
		return "VARCHAR"
	case KindInt32:
		return "INT"
	case KindInt64:
		return "BIGINT"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Type is a logical column type: a kind plus, for character kinds, a length.
type Type struct {
	Kind   Kind
	Length int // declared length in bytes for KindChar / KindVarChar
}

// Char returns the CHAR(k) type.
func Char(k int) Type { return Type{Kind: KindChar, Length: k} }

// VarChar returns the VARCHAR(max) type.
func VarChar(max int) Type { return Type{Kind: KindVarChar, Length: max} }

// Int32 returns the 32-bit integer type.
func Int32() Type { return Type{Kind: KindInt32, Length: 4} }

// Int64 returns the 64-bit integer type.
func Int64() Type { return Type{Kind: KindInt64, Length: 8} }

// MaxCharLength bounds declared character lengths; one tuple must fit in a
// page (the paper assumes k does not exceed the page size).
const MaxCharLength = 4000

// Validate reports whether the type is well-formed.
func (t Type) Validate() error {
	switch t.Kind {
	case KindChar, KindVarChar:
		if t.Length <= 0 || t.Length > MaxCharLength {
			return fmt.Errorf("value: %s length %d out of range [1,%d]", t.Kind, t.Length, MaxCharLength)
		}
		return nil
	case KindInt32:
		if t.Length != 4 {
			return fmt.Errorf("value: INT must have length 4, got %d", t.Length)
		}
		return nil
	case KindInt64:
		if t.Length != 8 {
			return fmt.Errorf("value: BIGINT must have length 8, got %d", t.Length)
		}
		return nil
	default:
		return fmt.Errorf("value: invalid kind %v", t.Kind)
	}
}

// FixedWidth returns the number of bytes one value of this type occupies in
// the uncompressed, fixed-width record format.
func (t Type) FixedWidth() int { return t.Length }

// String renders the type, e.g. "CHAR(20)".
func (t Type) String() string {
	switch t.Kind {
	case KindChar, KindVarChar:
		return fmt.Sprintf("%s(%d)", t.Kind, t.Length)
	default:
		return t.Kind.String()
	}
}

// PadByte returns the byte used to pad values of this type to FixedWidth.
// CHAR pads with spaces (SQL semantics); all other types pad with zeros.
func (t Type) PadByte() byte {
	if t.Kind == KindChar {
		return ' '
	}
	return 0
}

// IsCharacter reports whether the type holds character data.
func (t Type) IsCharacter() bool {
	return t.Kind == KindChar || t.Kind == KindVarChar
}
