package value

import (
	"bytes"
	"strings"
	"testing"
)

func TestTypeValidate(t *testing.T) {
	cases := []struct {
		typ  Type
		ok   bool
		name string
	}{
		{Char(20), true, "char20"},
		{Char(1), true, "char1"},
		{Char(0), false, "char0"},
		{Char(-1), false, "charNeg"},
		{Char(MaxCharLength), true, "charMax"},
		{Char(MaxCharLength + 1), false, "charTooBig"},
		{VarChar(100), true, "varchar"},
		{Int32(), true, "int32"},
		{Int64(), true, "int64"},
		{Type{Kind: KindInt32, Length: 5}, false, "badInt"},
		{Type{}, false, "zero"},
	}
	for _, c := range cases {
		err := c.typ.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() error = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestTypeString(t *testing.T) {
	if got := Char(20).String(); got != "CHAR(20)" {
		t.Errorf("Char(20).String() = %q", got)
	}
	if got := VarChar(7).String(); got != "VARCHAR(7)" {
		t.Errorf("VarChar(7).String() = %q", got)
	}
	if got := Int32().String(); got != "INT" {
		t.Errorf("Int32().String() = %q", got)
	}
	if got := Int64().String(); got != "BIGINT" {
		t.Errorf("Int64().String() = %q", got)
	}
}

func TestSchemaBasics(t *testing.T) {
	s, err := NewSchema(
		Column{Name: "a", Type: Char(20)},
		Column{Name: "b", Type: Int32()},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumColumns() != 2 {
		t.Fatalf("NumColumns = %d", s.NumColumns())
	}
	if s.RowWidth() != 24 {
		t.Fatalf("RowWidth = %d, want 24", s.RowWidth())
	}
	if i, ok := s.ColumnIndex("b"); !ok || i != 1 {
		t.Fatalf("ColumnIndex(b) = %d,%v", i, ok)
	}
	if _, ok := s.ColumnIndex("zzz"); ok {
		t.Fatal("ColumnIndex found nonexistent column")
	}
	if got := s.String(); got != "(a CHAR(20), b INT)" {
		t.Errorf("String() = %q", got)
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(Column{Name: "", Type: Char(5)}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Type: Char(0)}); err == nil {
		t.Error("invalid type accepted")
	}
	if _, err := NewSchema(
		Column{Name: "a", Type: Char(5)},
		Column{Name: "a", Type: Int32()},
	); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestSchemaProject(t *testing.T) {
	s := MustSchema(
		Column{Name: "a", Type: Char(10)},
		Column{Name: "b", Type: Int32()},
		Column{Name: "c", Type: Int64()},
	)
	p, err := s.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumColumns() != 2 || p.Column(0).Name != "c" || p.Column(1).Name != "a" {
		t.Fatalf("Project produced %s", p)
	}
	if _, err := s.Project("missing"); err == nil {
		t.Error("Project accepted missing column")
	}
}

func TestEncodeDecodeRecordRoundTrip(t *testing.T) {
	s := MustSchema(
		Column{Name: "name", Type: Char(8)},
		Column{Name: "id", Type: Int32()},
		Column{Name: "big", Type: Int64()},
		Column{Name: "note", Type: VarChar(6)},
	)
	row := Row{StringValue("abc"), IntValue(-42), Int64Value(1 << 40), StringValue("xy")}
	rec, err := EncodeRecord(s, row, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != s.RowWidth() {
		t.Fatalf("record length %d, want %d", len(rec), s.RowWidth())
	}
	// CHAR padded with spaces, VARCHAR with zeros.
	if !bytes.Equal(rec[:8], []byte("abc     ")) {
		t.Errorf("char field = %q", rec[:8])
	}
	got, err := DecodeRecord(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !bytes.Equal(got[i], row[i]) {
			t.Errorf("column %d round trip: got %q want %q", i, got[i], row[i])
		}
	}
}

func TestEncodeRecordRejectsBadRows(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: Char(3)}, Column{Name: "b", Type: Int32()})
	cases := []Row{
		{StringValue("toolong"), IntValue(1)},      // char overflow
		{StringValue("ok")},                        // wrong arity
		{StringValue("ok"), []byte{1, 2, 3}},       // short int
		{StringValue("ok"), []byte{1, 2, 3, 4, 5}}, // long int
	}
	for i, row := range cases {
		if _, err := EncodeRecord(s, row, nil); err == nil {
			t.Errorf("case %d: bad row accepted", i)
		}
	}
}

func TestDecodeRecordLengthCheck(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: Char(3)})
	if _, err := DecodeRecord(s, []byte("toolong")); err == nil {
		t.Error("DecodeRecord accepted wrong-length record")
	}
}

func TestNullSuppressedLenChar(t *testing.T) {
	typ := Char(20)
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"abc", 3},
		{"abc   ", 3},      // trailing blanks suppressed
		{"  abc", 5},       // leading blanks are data
		{"abcdefghij", 10}, // Fig 1.a value
		{strings.Repeat("x", 20), 20},
	}
	for _, c := range cases {
		if got := NullSuppressedLen(typ, []byte(c.in)); got != c.want {
			t.Errorf("NullSuppressedLen(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNullSuppressedLenInt(t *testing.T) {
	cases := []struct {
		v    int32
		want int
	}{
		{0, 1},
		{1, 1},
		{127, 1},
		{128, 2}, // 0x0080: the 0x00 is needed to keep sign
		{255, 2},
		{1 << 15, 3},
		{-1, 1},
		{-128, 1},
		{-129, 2},
		{1<<31 - 1, 4},
		{-1 << 31, 4},
	}
	for _, c := range cases {
		if got := NullSuppressedLen(Int32(), IntValue(c.v)); got != c.want {
			t.Errorf("NullSuppressedLen(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSuppressExpandIntRoundTrip(t *testing.T) {
	for _, v := range []int32{0, 1, -1, 127, 128, -128, -129, 65535, -65536, 1<<31 - 1, -1 << 31} {
		enc := IntValue(v)
		sup := SuppressIntPadding(enc)
		back := ExpandIntPadding(sup, 4)
		if DecodeInt32(back) != v {
			t.Errorf("round trip %d: got %d (suppressed %x)", v, DecodeInt32(back), sup)
		}
	}
	for _, v := range []int64{0, -1, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		enc := Int64Value(v)
		back := ExpandIntPadding(SuppressIntPadding(enc), 8)
		if DecodeInt64(back) != v {
			t.Errorf("round trip int64 %d failed", v)
		}
	}
}

func TestCompareValuesChar(t *testing.T) {
	typ := Char(10)
	cases := []struct {
		a, b string
		want int
	}{
		{"abc", "abc", 0},
		{"abc", "abc  ", 0}, // padding-insensitive
		{"abc", "abd", -1},
		{"abd", "abc", 1},
		{"ab", "abc", -1},
		{"abc", "ab", 1},
		{"", "", 0},
		{"", "a", -1},
	}
	for _, c := range cases {
		if got := CompareValues(typ, []byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("CompareValues(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareValuesInt(t *testing.T) {
	for _, c := range []struct {
		a, b int32
		want int
	}{
		{0, 0, 0}, {-5, 3, -1}, {3, -5, 1}, {1 << 30, 1<<30 + 1, -1},
	} {
		if got := CompareValues(Int32(), IntValue(c.a), IntValue(c.b)); got != c.want {
			t.Errorf("CompareValues(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEncodeKeyOrderPreserving(t *testing.T) {
	s := MustSchema(Column{Name: "n", Type: Int32()})
	vals := []int32{-1 << 31, -1000, -1, 0, 1, 77, 1 << 20, 1<<31 - 1}
	var prev []byte
	for _, v := range vals {
		key, err := EncodeKey(s, Row{IntValue(v)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && bytes.Compare(prev, key) >= 0 {
			t.Errorf("key order violated at %d", v)
		}
		prev = key
	}
}

func TestEncodeKeyCharMatchesCompare(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: Char(6)})
	vals := []string{"", "a", "ab", "abc", "b", "zz"}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			ki, _ := EncodeKey(s, Row{StringValue(vals[i])}, nil)
			kj, _ := EncodeKey(s, Row{StringValue(vals[j])}, nil)
			want := CompareValues(Char(6), []byte(vals[i]), []byte(vals[j]))
			if got := bytes.Compare(ki, kj); got != want {
				t.Errorf("key compare (%q,%q) = %d, want %d", vals[i], vals[j], got, want)
			}
		}
	}
}

func TestCompareRows(t *testing.T) {
	s := MustSchema(
		Column{Name: "a", Type: Char(5)},
		Column{Name: "b", Type: Int32()},
	)
	a := Row{StringValue("x"), IntValue(1)}
	b := Row{StringValue("x"), IntValue(2)}
	if got := CompareRows(s, a, b); got != -1 {
		t.Errorf("CompareRows = %d, want -1", got)
	}
	if got := CompareRows(s, b, a); got != 1 {
		t.Errorf("CompareRows = %d, want 1", got)
	}
	if got := CompareRows(s, a, a); got != 0 {
		t.Errorf("CompareRows = %d, want 0", got)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{StringValue("abc"), IntValue(7)}
	c := r.Clone()
	c[0][0] = 'Z'
	if r[0][0] == 'Z' {
		t.Error("Clone did not deep-copy")
	}
}
