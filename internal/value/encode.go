package value

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Row is one logical record: a slice of per-column payloads.
//
// Character payloads are the *unpadded* bytes (e.g. "abc" for a CHAR(20));
// integer payloads are exactly 4 or 8 bytes of big-endian two's complement.
// This representation keeps the null-suppressed ("actual") length of a value
// directly observable, which is the quantity the paper's NS analysis is
// about.
type Row [][]byte

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for i, v := range r {
		out[i] = append([]byte(nil), v...)
	}
	return out
}

// IntValue returns the payload bytes for a 32-bit integer.
func IntValue(v int32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	return b[:]
}

// Int64Value returns the payload bytes for a 64-bit integer.
func Int64Value(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// StringValue returns the payload bytes for a character value.
func StringValue(s string) []byte { return []byte(s) }

// DecodeInt32 interprets a 4-byte payload as int32.
func DecodeInt32(b []byte) int32 { return int32(binary.BigEndian.Uint32(b)) }

// DecodeInt64 interprets an 8-byte payload as int64.
func DecodeInt64(b []byte) int64 { return int64(binary.BigEndian.Uint64(b)) }

// ValidateRow checks a row against the schema: column count, integer widths,
// and character lengths.
func ValidateRow(s *Schema, row Row) error {
	if len(row) != s.NumColumns() {
		return fmt.Errorf("value: row has %d columns, schema %s has %d", len(row), s, s.NumColumns())
	}
	for i, v := range row {
		t := s.Column(i).Type
		switch t.Kind {
		case KindChar, KindVarChar:
			if len(v) > t.Length {
				return fmt.Errorf("value: column %q: payload %d bytes exceeds %s", s.Column(i).Name, len(v), t)
			}
		case KindInt32:
			if len(v) != 4 {
				return fmt.Errorf("value: column %q: INT payload must be 4 bytes, got %d", s.Column(i).Name, len(v))
			}
		case KindInt64:
			if len(v) != 8 {
				return fmt.Errorf("value: column %q: BIGINT payload must be 8 bytes, got %d", s.Column(i).Name, len(v))
			}
		}
	}
	return nil
}

// EncodeRecord appends the fixed-width (uncompressed) encoding of row to dst
// and returns the extended slice. Every column is padded to its FixedWidth
// with the type's pad byte; the result is always exactly s.RowWidth() longer.
func EncodeRecord(s *Schema, row Row, dst []byte) ([]byte, error) {
	if err := ValidateRow(s, row); err != nil {
		return dst, err
	}
	for i, v := range row {
		t := s.Column(i).Type
		dst = append(dst, v...)
		for pad := t.FixedWidth() - len(v); pad > 0; pad-- {
			dst = append(dst, t.PadByte())
		}
	}
	return dst, nil
}

// DecodeRecord parses a fixed-width record back into a Row, trimming the
// padding from character columns. The returned payloads alias rec for
// integers and are sub-slices for character data; callers that need the data
// to outlive rec must Clone.
func DecodeRecord(s *Schema, rec []byte) (Row, error) {
	if len(rec) != s.RowWidth() {
		return nil, fmt.Errorf("value: record is %d bytes, schema %s requires %d", len(rec), s, s.RowWidth())
	}
	row := make(Row, s.NumColumns())
	off := 0
	for i := 0; i < s.NumColumns(); i++ {
		t := s.Column(i).Type
		w := t.FixedWidth()
		field := rec[off : off+w]
		off += w
		if t.IsCharacter() {
			row[i] = TrimPadding(t, field)
		} else {
			row[i] = field
		}
	}
	return row, nil
}

// TrimPadding strips trailing pad bytes from a stored character field,
// returning the null-suppressed payload. Integer fields are returned as-is.
func TrimPadding(t Type, stored []byte) []byte {
	if !t.IsCharacter() {
		return stored
	}
	return bytes.TrimRight(stored, string([]byte{t.PadByte()}))
}

// NullSuppressedLen returns the paper's ℓ for a payload: the number of bytes
// the value occupies once padding (blanks for CHAR, leading sign-extension
// bytes for integers) is suppressed. The result is at least 0 for character
// data and at least 1 for integers.
func NullSuppressedLen(t Type, payload []byte) int {
	switch t.Kind {
	case KindChar, KindVarChar:
		// Payloads are already unpadded, but be robust to padded input.
		return len(TrimPadding(t, payload))
	case KindInt32, KindInt64:
		return len(SuppressIntPadding(payload))
	default:
		return len(payload)
	}
}

// SuppressIntPadding strips the redundant leading sign-extension bytes of a
// big-endian two's complement integer, keeping at least one byte and keeping
// the sign recoverable: a byte is redundant if it equals the extension byte
// (0x00 / 0xFF) and the next byte has the same sign bit.
func SuppressIntPadding(be []byte) []byte {
	if len(be) == 0 {
		return be
	}
	ext := byte(0x00)
	if be[0]&0x80 != 0 {
		ext = 0xFF
	}
	i := 0
	for i < len(be)-1 && be[i] == ext && (be[i+1]&0x80 == ext&0x80) {
		i++
	}
	return be[i:]
}

// ExpandIntPadding is the inverse of SuppressIntPadding: it sign-extends a
// suppressed big-endian integer back to width bytes.
func ExpandIntPadding(suppressed []byte, width int) []byte {
	out := make([]byte, width)
	ext := byte(0x00)
	if len(suppressed) > 0 && suppressed[0]&0x80 != 0 {
		ext = 0xFF
	}
	n := len(suppressed)
	for i := 0; i < width-n; i++ {
		out[i] = ext
	}
	copy(out[width-n:], suppressed)
	return out
}

// EncodeKey appends an order-preserving key encoding of row to dst. For
// character columns the space/zero-padded form is used (so bytes.Compare
// matches SQL CHAR comparison); for integers the sign bit is flipped so that
// unsigned byte comparison matches signed integer order.
func EncodeKey(s *Schema, row Row, dst []byte) ([]byte, error) {
	if err := ValidateRow(s, row); err != nil {
		return dst, err
	}
	for i, v := range row {
		t := s.Column(i).Type
		switch t.Kind {
		case KindChar, KindVarChar:
			dst = append(dst, v...)
			for pad := t.FixedWidth() - len(v); pad > 0; pad-- {
				dst = append(dst, t.PadByte())
			}
		case KindInt32, KindInt64:
			start := len(dst)
			dst = append(dst, v...)
			dst[start] ^= 0x80 // flip sign bit for order preservation
		}
	}
	return dst, nil
}

// CompareValues compares two payloads of the same type with SQL semantics:
// CHAR comparison ignores trailing padding, integers compare numerically.
// The result is -1, 0, or +1.
func CompareValues(t Type, a, b []byte) int {
	switch t.Kind {
	case KindChar, KindVarChar:
		return comparePadded(TrimPadding(t, a), TrimPadding(t, b), t.PadByte())
	case KindInt32:
		av, bv := DecodeInt32(a), DecodeInt32(b)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		default:
			return 0
		}
	case KindInt64:
		av, bv := DecodeInt64(a), DecodeInt64(b)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		default:
			return 0
		}
	default:
		return bytes.Compare(a, b)
	}
}

// comparePadded compares two unpadded strings as if both were padded with pad
// to a common length.
func comparePadded(a, b []byte, pad byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if c := bytes.Compare(a[:n], b[:n]); c != 0 {
		return c
	}
	// The shorter value compares as if extended with pad bytes.
	for _, x := range a[n:] {
		if x != pad {
			if x < pad {
				return -1
			}
			return 1
		}
	}
	for _, x := range b[n:] {
		if x != pad {
			if x > pad {
				return -1
			}
			return 1
		}
	}
	return 0
}

// CompareRows compares two rows column-by-column under the schema.
func CompareRows(s *Schema, a, b Row) int {
	for i := 0; i < s.NumColumns(); i++ {
		if c := CompareValues(s.Column(i).Type, a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}
