package value

import (
	"bytes"
	"testing"
	"testing/quick"

	"samplecf/internal/rng"
)

// arenaTestSchema covers every value kind at mixed widths.
func arenaTestSchema() *Schema {
	return MustSchema(
		Column{Name: "c", Type: Char(9)},
		Column{Name: "i", Type: Int32()},
		Column{Name: "v", Type: VarChar(5)},
		Column{Name: "b", Type: Int64()},
		Column{Name: "c2", Type: Char(1)},
	)
}

// randArenaRow draws a valid row for arenaTestSchema.
func randArenaRow(r *rng.RNG) Row {
	str := make([]byte, r.Intn(10))
	for i := range str {
		str[i] = byte(0x1E + r.Intn(0x60))
	}
	str = bytes.TrimRight(str, " ")
	vc := make([]byte, r.Intn(6))
	for i := range vc {
		vc[i] = byte(1 + r.Intn(255))
	}
	c2 := make([]byte, r.Intn(2))
	for i := range c2 {
		c2[i] = byte('!' + r.Intn(90))
	}
	return Row{
		str,
		IntValue(int32(r.Uint32())),
		vc,
		Int64Value(int64(r.Uint64())),
		c2,
	}
}

// TestPropertyArenaMatchesRowEncoders is the hot path's bit-transparency
// contract: for ANY rows, the arena's record and key buffers are
// byte-for-byte what per-row EncodeRecord/EncodeKey produce.
func TestPropertyArenaMatchesRowEncoders(t *testing.T) {
	schema := arenaTestSchema()
	f := func(seed uint64, nRows uint8) bool {
		r := rng.New(seed)
		n := int(nRows%17) + 1
		ar := NewRecordArena(schema, 0) // zero capacity: growth path exercised
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = randArenaRow(r)
			if err := ar.Append(rows[i]); err != nil {
				t.Logf("seed %d: append: %v", seed, err)
				return false
			}
		}
		if ar.Len() != n {
			return false
		}
		for i, row := range rows {
			wantRec, err := EncodeRecord(schema, row, nil)
			if err != nil {
				return false
			}
			wantKey, err := EncodeKey(schema, row, nil)
			if err != nil {
				return false
			}
			if !bytes.Equal(ar.Rec(i), wantRec) {
				t.Logf("seed %d row %d: rec %x, want %x", seed, i, ar.Rec(i), wantRec)
				return false
			}
			if !bytes.Equal(ar.Key(i), wantKey) {
				t.Logf("seed %d row %d: key %x, want %x", seed, i, ar.Key(i), wantKey)
				return false
			}
			// And the decode path returns the logical row.
			dec, err := ar.Row(i)
			if err != nil || CompareRows(schema, dec, row) != 0 {
				t.Logf("seed %d row %d: decode mismatch (%v)", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyArenaProjection: projecting an arena column subset equals
// encoding the projected rows from scratch, for every key column order the
// estimator can request.
func TestPropertyArenaProjection(t *testing.T) {
	schema := arenaTestSchema()
	projections := [][]int{{0}, {1}, {3}, {2, 4}, {1, 0}, {4, 3, 2, 1, 0}, {0, 1, 2, 3, 4}}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(12)
		ar := NewRecordArena(schema, n)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = randArenaRow(r)
			if err := ar.Append(rows[i]); err != nil {
				return false
			}
		}
		for _, proj := range projections {
			cols := make([]Column, len(proj))
			for i, p := range proj {
				cols[i] = schema.Column(p)
			}
			psch := MustSchema(cols...)
			dst := NewRecordArena(psch, n)
			if err := ar.ProjectTo(dst, proj); err != nil {
				t.Logf("seed %d proj %v: %v", seed, proj, err)
				return false
			}
			for i, row := range rows {
				prow := make(Row, len(proj))
				for c, p := range proj {
					prow[c] = row[p]
				}
				wantRec, err := EncodeRecord(psch, prow, nil)
				if err != nil {
					return false
				}
				wantKey, err := EncodeKey(psch, prow, nil)
				if err != nil {
					return false
				}
				if !bytes.Equal(dst.Rec(i), wantRec) || !bytes.Equal(dst.Key(i), wantKey) {
					t.Logf("seed %d proj %v row %d: projection drifted", seed, proj, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestArenaReservoirOps covers the in-place mutation primitives maintained
// samples use: SetRow, MoveRow, Truncate, AppendFrom, AppendRec.
func TestArenaReservoirOps(t *testing.T) {
	schema := arenaTestSchema()
	r := rng.New(99)
	ar := NewRecordArena(schema, 8)
	rows := make([]Row, 6)
	for i := range rows {
		rows[i] = randArenaRow(r)
		if err := ar.Append(rows[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Replace slot 2 in place.
	repl := randArenaRow(r)
	if err := ar.SetRow(2, repl); err != nil {
		t.Fatal(err)
	}
	wantRec, _ := EncodeRecord(schema, repl, nil)
	wantKey, _ := EncodeKey(schema, repl, nil)
	if !bytes.Equal(ar.Rec(2), wantRec) || !bytes.Equal(ar.Key(2), wantKey) {
		t.Fatal("SetRow did not re-encode slot 2")
	}
	if err := ar.SetRow(17, repl); err == nil {
		t.Fatal("SetRow out of range succeeded")
	}
	// Swap-with-last delete of slot 1.
	ar.MoveRow(1, ar.Len()-1)
	ar.Truncate(ar.Len() - 1)
	if ar.Len() != 5 {
		t.Fatalf("Len after delete = %d, want 5", ar.Len())
	}
	lastRec, _ := EncodeRecord(schema, rows[5], nil)
	if !bytes.Equal(ar.Rec(1), lastRec) {
		t.Fatal("MoveRow did not move the last row into slot 1")
	}
	// Gather a subsample into a fresh arena.
	sub := NewRecordArena(schema, 2)
	if err := sub.AppendFrom(ar, []int64{4, 0}); err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || !bytes.Equal(sub.Rec(1), ar.Rec(0)) || !bytes.Equal(sub.Key(0), ar.Key(4)) {
		t.Fatal("AppendFrom gathered wrong rows")
	}
	if err := sub.AppendFrom(ar, []int64{99}); err == nil {
		t.Fatal("AppendFrom out of range succeeded")
	}
	// Raw-record ingestion matches Append.
	raw := NewRecordArena(schema, 1)
	if err := raw.AppendRec(ar.Rec(0)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw.Key(0), ar.Key(0)) {
		t.Fatal("AppendRec derived a different key")
	}
	if err := raw.AppendRec([]byte{1, 2}); err == nil {
		t.Fatal("AppendRec with short record succeeded")
	}
	// Reset retains capacity and empties.
	raw.Reset()
	if raw.Len() != 0 || len(raw.Recs()) != 0 {
		t.Fatal("Reset did not empty the arena")
	}
}

// FuzzArenaRoundTrip fuzzes mixed-width schemas: any byte blob that decodes
// as a record under some schema must re-encode through the arena to the same
// bytes, with the arena key matching EncodeKey.
func FuzzArenaRoundTrip(f *testing.F) {
	// Schema shape is drawn from the first bytes of the seed: pairs of
	// (kind, width) nibbles.
	f.Add([]byte{0x13, 0x21, 0x30, 0x05, 'h', 'e', 'l', 'l', 'o', 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0x02, 0x40, 'a', 'b', 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		nCols := int(data[0]%4) + 1
		if len(data) < 1+nCols {
			return
		}
		cols := make([]Column, nCols)
		names := []string{"a", "b", "c", "d"}
		for i := 0; i < nCols; i++ {
			sel := data[1+i]
			switch sel % 4 {
			case 0:
				cols[i] = Column{Name: names[i], Type: Char(int(sel/4%13) + 1)}
			case 1:
				cols[i] = Column{Name: names[i], Type: VarChar(int(sel/4%13) + 1)}
			case 2:
				cols[i] = Column{Name: names[i], Type: Int32()}
			default:
				cols[i] = Column{Name: names[i], Type: Int64()}
			}
		}
		schema, err := NewSchema(cols...)
		if err != nil {
			return
		}
		body := data[1+nCols:]
		if len(body) < schema.RowWidth() {
			return
		}
		rec := body[:schema.RowWidth()]
		row, err := DecodeRecord(schema, rec)
		if err != nil {
			return
		}
		// CHAR payloads with trailing pad bytes are normalized by decode;
		// only the decoded row is required to round-trip.
		ar := NewRecordArena(schema, 1)
		if err := ar.Append(row); err != nil {
			t.Fatalf("decoded row failed validation: %v", err)
		}
		wantRec, err := EncodeRecord(schema, row, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantKey, err := EncodeKey(schema, row, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ar.Rec(0), wantRec) {
			t.Fatalf("arena rec %x != EncodeRecord %x", ar.Rec(0), wantRec)
		}
		if !bytes.Equal(ar.Key(0), wantKey) {
			t.Fatalf("arena key %x != EncodeKey %x", ar.Key(0), wantKey)
		}
	})
}

// TestArenaGrowParallelFill pins the sharded bulk-ingestion pattern: an
// arena pre-grown to n rows and filled via SetRow from goroutines owning
// disjoint slot ranges must be byte-identical (records and keys) to one
// built by sequential Append of the same rows.
func TestArenaGrowParallelFill(t *testing.T) {
	schema := arenaTestSchema()
	r := rng.New(31)
	const n = 512
	rows := make([]Row, n)
	want := NewRecordArena(schema, n)
	for i := range rows {
		rows[i] = randArenaRow(r)
		if err := want.Append(rows[i]); err != nil {
			t.Fatal(err)
		}
	}

	got := NewRecordArena(schema, 0)
	got.Grow(n)
	if got.Len() != n {
		t.Fatalf("Len after Grow = %d, want %d", got.Len(), n)
	}
	const shards = 4
	chunk := n / shards
	done := make(chan error, shards)
	for s := 0; s < shards; s++ {
		go func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if err := got.SetRow(i, rows[i]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(s*chunk, (s+1)*chunk)
	}
	for s := 0; s < shards; s++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Recs(), want.Recs()) {
		t.Error("parallel-filled records differ from sequential Append")
	}
	if !bytes.Equal(got.Keys(), want.Keys()) {
		t.Error("parallel-filled keys differ from sequential Append")
	}
}

// TestArenaGrowEdges pins Grow's degenerate inputs.
func TestArenaGrowEdges(t *testing.T) {
	a := NewRecordArena(arenaTestSchema(), 0)
	a.Grow(0)
	a.Grow(-3)
	if a.Len() != 0 {
		t.Fatalf("Len after no-op Grow = %d, want 0", a.Len())
	}
}
